.PHONY: build test check bench harness parallel-bench analyze-bench

build:
	go build ./...

test:
	go test ./...

# check is the strict gate: vet plus the full suite under the race detector.
# The parallel executor (internal/exec) is explicitly designed to be
# race-clean; run this before sending changes.
check:
	go vet ./...
	go test -race ./...

bench:
	go test -bench=. -benchmem

harness:
	go run ./cmd/benchharness

# Serial-vs-parallel wall-clock sweep; writes BENCH_parallel.json.
parallel-bench:
	go run ./cmd/benchharness parallel

# Random query corpus under EXPLAIN ANALYZE; writes BENCH_analyze.json
# (estimate-vs-actual q-error distribution).
analyze-bench:
	go run ./cmd/benchharness analyze
