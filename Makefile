.PHONY: build test check bench harness parallel-bench analyze-bench robustness-bench robustness-check vectorized-bench serving-bench adaptive-bench storage-bench durability-bench compression-bench crash-check bench-smoke

build:
	go build ./...

test:
	go test ./...

# check is the strict gate: vet plus the full suite under the race detector.
# The parallel executor (internal/exec) is explicitly designed to be
# race-clean; run this before sending changes.
check:
	go vet ./...
	go test -race ./...

bench:
	go test -bench=. -benchmem

harness:
	go run ./cmd/benchharness

# Serial-vs-parallel wall-clock sweep; writes BENCH_parallel.json.
parallel-bench:
	go run ./cmd/benchharness parallel

# Random query corpus under EXPLAIN ANALYZE; writes BENCH_analyze.json
# (estimate-vs-actual q-error distribution).
analyze-bench:
	go run ./cmd/benchharness analyze

# Resource-governor sweep: spill overhead under memory budgets plus
# cancellation latency; writes BENCH_robustness.json.
robustness-bench:
	go run ./cmd/benchharness robustness

# Row-vs-vectorized execution of identical plans (scan+filter, hash agg,
# hash join); writes BENCH_vectorized.json. E24 at full size.
vectorized-bench:
	go run ./cmd/benchharness vectorized

# Concurrent serving sweep: exec-literal vs prepared-reoptimize vs
# prepared-cached at 1/8/64/256 sessions; writes BENCH_serving.json. E25 at
# full size.
serving-bench:
	go run ./cmd/benchharness serving

# Adaptive planning tradeoff: greedy fast path vs full DP planning and
# execution time over the short-statement corpus; writes BENCH_adaptive.json.
# E26 at full size.
adaptive-bench:
	go run ./cmd/benchharness adaptive

# Disk-backed columnar segment sweep: cold/warm scans at selectivities
# 0.001/0.1/1.0 with zone-map pruning on and off; writes BENCH_storage.json.
# E27 at full size.
storage-bench:
	go run ./cmd/benchharness storage

# Crash-consistency cost sweep: checksum verification overhead on cold/warm
# scans plus recovery and scrub time vs segment count; writes
# BENCH_durability.json. E28 at full size.
durability-bench:
	go run ./cmd/benchharness durability

# Compressed columnar sweep: dictionary/RLE encoded segments vs the
# DisableCompression control — scan+filter throughput, bytes read and block
# counts at parallelism 1/4/8; writes BENCH_compression.json. E29 at full size.
compression-bench:
	go run ./cmd/benchharness compression

# crash-check is the durability gate: every kill point of the crash matrix
# (InsertBatch, Flush, SortBy killed at each injection site and occurrence,
# including torn writes), the byte-flip corruption matrix over every region
# class, the seal error-path contract and the transient-retry policy, plus the
# recovered-engine equivalence corpus — all under the race detector at a fixed
# GOMAXPROCS. CI runs this on every push.
crash-check:
	GOMAXPROCS=4 go test -race -count=1 \
		-run 'TestCrashMatrix|TestCorruptionMatrix|TestCorruptSegment|TestSealFailure|TestTransientFaultRetry' \
		./internal/storage
	GOMAXPROCS=4 go test -race -count=1 -run 'TestRecoveredEngineEquivalence|TestEngineChecksumOptions' .

# bench-smoke is the fast perf gate: a reduced-size E24 run (row-vs-vectorized
# must still report identical results), a tiny E25 serving sweep under the
# race detector (all three modes must still report identical results), a
# reduced E26 adaptive sweep under the race detector (greedy and DP arms must
# still report identical results), a reduced E27 storage sweep under the race
# detector (disk reads must be bit-identical to memory), a reduced E29
# compression sweep under the race detector (encoded blocks must decode to
# bit-identical results), and the executor suite under -race. CI runs this on every push; it finishes in well under a
# minute.
bench-smoke:
	go run ./cmd/benchharness vectorized 20000
	GOMAXPROCS=4 go run -race ./cmd/benchharness serving 1000 8
	GOMAXPROCS=4 go run -race ./cmd/benchharness adaptive 40 2000
	GOMAXPROCS=4 go run -race ./cmd/benchharness storage 30000
	GOMAXPROCS=4 go run -race ./cmd/benchharness compression 30000
	go test -race -count=1 ./internal/exec/...

# Fault-injection, cancellation, spill and goroutine-leak suites under the
# race detector at a fixed GOMAXPROCS, so worker interleavings are exercised
# the same way everywhere. CI runs this in addition to `make check`.
robustness-check:
	GOMAXPROCS=4 go test -race -count=1 \
		-run 'Spill|Budget|Cancel|Deadline|Fault|Goroutine|MemAccount|FirstError|WorkerPanic|PoolClose' \
		. ./internal/exec
	GOMAXPROCS=4 go test -race -count=1 ./internal/faultfs
