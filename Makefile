.PHONY: build test check bench harness parallel-bench analyze-bench robustness-bench robustness-check

build:
	go build ./...

test:
	go test ./...

# check is the strict gate: vet plus the full suite under the race detector.
# The parallel executor (internal/exec) is explicitly designed to be
# race-clean; run this before sending changes.
check:
	go vet ./...
	go test -race ./...

bench:
	go test -bench=. -benchmem

harness:
	go run ./cmd/benchharness

# Serial-vs-parallel wall-clock sweep; writes BENCH_parallel.json.
parallel-bench:
	go run ./cmd/benchharness parallel

# Random query corpus under EXPLAIN ANALYZE; writes BENCH_analyze.json
# (estimate-vs-actual q-error distribution).
analyze-bench:
	go run ./cmd/benchharness analyze

# Resource-governor sweep: spill overhead under memory budgets plus
# cancellation latency; writes BENCH_robustness.json.
robustness-bench:
	go run ./cmd/benchharness robustness

# Fault-injection, cancellation, spill and goroutine-leak suites under the
# race detector at a fixed GOMAXPROCS, so worker interleavings are exercised
# the same way everywhere. CI runs this in addition to `make check`.
robustness-check:
	GOMAXPROCS=4 go test -race -count=1 \
		-run 'Spill|Budget|Cancel|Deadline|Fault|Goroutine|MemAccount|FirstError|WorkerPanic|PoolClose' \
		. ./internal/exec
	GOMAXPROCS=4 go test -race -count=1 ./internal/faultfs
