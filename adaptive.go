// Adaptive planning plumbing: harvesting analyzed-execution observations
// into the estimator's cardinality overrides, the q-error replan trigger,
// and incremental statistics maintenance on INSERT. The greedy fast path
// itself lives in internal/systemr; this file is the engine-side feedback
// loop that decides when plans should be revisited.
package queryopt

import (
	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/histogram"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/stats"
)

// harvestOverrides promotes measured table-scan cardinalities from one
// analyzed execution into the engine's override store, returning whether any
// override changed materially (the caller's signal to invalidate cached plan
// diagrams). Only scans that actually ran are harvested — a node registered
// by plan setup but never pulled reports ActualRows=0, which is an artifact
// of early termination, not an observation of an empty result. Scans under a
// LIMIT are skipped for the same reason: their row counts reflect the cutoff,
// not the predicate. Re-invoked scans (re-materialized inner sides) record
// the per-invocation average.
func (e *Engine) harvestOverrides(p physical.Plan, md *logical.Metadata, rm *physical.RunMetrics) bool {
	changed := false
	var walk func(p physical.Plan, underLimit bool)
	walk = func(p physical.Plan, underLimit bool) {
		if ts, ok := p.(*physical.TableScan); ok && !underLimit && ts.Table != nil {
			if m := rm.Lookup(p); m != nil && m.Invocations > 0 {
				if fp, ok := stats.FingerprintFilters(md, ts.Table.Name, ts.Filter); ok {
					actual := float64(m.ActualRows) / float64(m.Invocations)
					if e.overrides.Set(ts.Table.Name, fp, actual) {
						changed = true
					}
				}
			}
		}
		if _, ok := p.(*physical.LimitOp); ok {
			underLimit = true
		}
		for _, c := range physical.Children(p) {
			walk(c, underLimit)
		}
	}
	walk(p, false)
	return changed
}

// OverrideCount reports how many feedback-patched cardinality overrides the
// engine currently holds (always 0 unless Options.FeedbackPatching).
func (e *Engine) OverrideCount() int { return e.overrides.Len() }

// markReplan flags a statement family (by fingerprint) for forced
// re-optimization: the next cached execution drops its plan diagram.
func (e *Engine) markReplan(fp string) {
	e.replanMu.Lock()
	e.replan[fp] = struct{}{}
	e.replanMu.Unlock()
}

// consumeReplan reports and clears the replan mark for a statement family.
// The mark is consumed exactly once: the execution that observes it
// re-optimizes (with feedback-patched statistics, if enabled) and re-caches.
func (e *Engine) consumeReplan(fp string) bool {
	e.replanMu.Lock()
	_, ok := e.replan[fp]
	if ok {
		delete(e.replan, fp)
	}
	e.replanMu.Unlock()
	return ok
}

// maintainStats folds one inserted row into the table's statistics
// (Options.IncrementalStats): row and page counts advance, null counts
// track, and existing histograms absorb the value via incremental
// widen/split/merge maintenance. Distinct counts are left to drift — they
// cannot be maintained from inserts alone — and no catalog-version bump is
// issued: incremental maintenance keeps cached plans fresher, it does not
// invalidate them (the feedback loop handles plans that went stale anyway).
// Tables never ANALYZEd have no statistics to maintain and are skipped.
func (e *Engine) maintainStats(def *catalog.Table, row datum.Row) {
	if def == nil || def.Stats == nil {
		return
	}
	st := def.Stats
	if st.RowCount > 0 {
		st.PageCount += st.PageCount / st.RowCount
	}
	st.RowCount++
	buckets := e.opts.Analyze.Buckets
	if buckets <= 0 {
		buckets = 32
	}
	for ord, cs := range st.ColStats {
		if ord >= len(row) {
			continue
		}
		d := row[ord]
		if d.Kind() == datum.KindNull {
			cs.NullCount++
			continue
		}
		if cs.Hist != nil {
			histogram.NewIncremental(cs.Hist, buckets).Insert(d)
		}
	}
}
