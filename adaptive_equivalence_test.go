package queryopt

// adaptive_equivalence_test.go: the adaptive planner — greedy fast path,
// feedback-patched statistics and the q-error replan trigger, all live at
// once — must never change results, only plans. For the same random query
// corpus as the other equivalence nets, engines running fully adaptive at
// parallelism 1, 4 and 8 must return exactly the multiset the plain SystemR
// engine returns (bit-identical floats included) and the identical row order
// whenever the query has an ORDER BY. Every third trial goes through EXPLAIN
// ANALYZE on the adaptive engines, so overrides are harvested and replan
// marks fire mid-corpus — the plans drift, the answers must not.

import (
	"math/rand"
	"strings"
	"testing"
)

func TestAdaptiveQueryEquivalence(t *testing.T) {
	const trials = 25
	degrees := []int{1, 4, 8}
	for seed := int64(1); seed <= 2; seed++ {
		baseline := bigRandSchema(t, Options{Optimizer: SystemR}, seed)
		engines := make([]*Engine, len(degrees))
		for i, d := range degrees {
			engines[i] = bigRandSchema(t, Options{
				Optimizer:             SystemR,
				Parallelism:           d,
				GreedyJoinThreshold:   8,
				FeedbackPatching:      true,
				ReplanQErrorThreshold: 2,
			}, seed)
		}
		rng := rand.New(rand.NewSource(seed * 977))
		for trial := 0; trial < trials; trial++ {
			q := randQuery(rng)
			res, err := baseline.Exec(q)
			if err != nil {
				t.Fatalf("seed %d trial %d baseline: %v\nquery: %s", seed, trial, err, q)
			}
			want := exactRows(res)
			ordered := strings.Contains(q, "ORDER BY")
			var wantOrdered []string
			if ordered {
				for _, r := range res.Rows {
					wantOrdered = append(wantOrdered, exactRow(r))
				}
			}
			for i, d := range degrees {
				var ares *Result
				if trial%3 == 0 {
					// Feed the loop: harvest overrides, maybe mark replans.
					ares, _, err = engines[i].QueryAnalyze(q)
				} else {
					ares, err = engines[i].Exec(q)
				}
				if err != nil {
					t.Fatalf("seed %d trial %d degree %d adaptive: %v\nquery: %s", seed, trial, d, err, q)
				}
				got := exactRows(ares)
				if strings.Join(got, ";") != strings.Join(want, ";") {
					t.Fatalf("seed %d trial %d: adaptive degree %d disagrees with baseline\nquery: %s\nbaseline (%d rows): %.500v\ngot      (%d rows): %.500v\nplan:\n%s",
						seed, trial, d, q, len(want), want, len(got), got, ares.Plan)
				}
				if ordered {
					var rows []string
					for _, r := range ares.Rows {
						rows = append(rows, exactRow(r))
					}
					if strings.Join(rows, ";") != strings.Join(wantOrdered, ";") {
						t.Fatalf("seed %d trial %d: adaptive degree %d row order differs under ORDER BY\nquery: %s\nplan:\n%s",
							seed, trial, d, q, ares.Plan)
					}
				}
			}
		}
		for i := range engines {
			if engines[i].OverrideCount() == 0 {
				t.Errorf("seed %d degree %d: corpus analyzed executions harvested no overrides — the adaptive path was not exercised", seed, degrees[i])
			}
		}
	}
}
