package queryopt

// adaptive_test.go covers the engine-side adaptive planning loop: planning
// tiers surfaced on results and EXPLAIN, feedback-patched statistics flipping
// a stale join plan without changing results, the q-error replan trigger
// forcing one re-optimization of a cached statement family, the
// never-executed/under-LIMIT harvest guards, incremental statistics
// maintenance, and the deduped engine-level feedback report.

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/logical"
	"repro/internal/physical"
)

// staleStatsEngine builds an engine whose statistics for table a are badly
// stale: ANALYZE ran while a held 30 rows, then a grew 200x with no
// re-analyze. Table b's statistics stay accurate (1500 rows), so any planner
// trusting the catalog believes a is the small side of the join.
func staleStatsEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	e := New(opts)
	t.Cleanup(e.Close)
	e.MustExec("CREATE TABLE a (pk INT NOT NULL, k INT, PRIMARY KEY (pk))")
	e.MustExec("CREATE TABLE b (pk INT NOT NULL, k INT, PRIMARY KEY (pk))")
	load := func(table string, start, n int) {
		rows := make([][]any, 0, n)
		for i := 0; i < n; i++ {
			rows = append(rows, []any{int64(start + i), int64((start + i) % 10)})
		}
		if err := e.LoadRows(table, rows); err != nil {
			t.Fatal(err)
		}
	}
	load("a", 0, 30)
	load("b", 0, 1500)
	e.MustExec("ANALYZE")
	// Bulk growth, no ANALYZE: the catalog still says a has 30 rows.
	load("a", 1000, 6000)
	return e
}

const staleJoin = "SELECT a.k, COUNT(*) FROM a, b WHERE a.k = b.k GROUP BY a.k"

// One analyzed execution must be enough for feedback patching to correct the
// stale cardinality and flip the join plan — while the query's results stay
// exactly what an unpatched engine returns.
func TestFeedbackPatchingFlipsStaleJoin(t *testing.T) {
	patched := staleStatsEngine(t, Options{Optimizer: SystemR, FeedbackPatching: true})
	control := staleStatsEngine(t, Options{Optimizer: SystemR})

	before, err := patched.Explain(staleJoin)
	if err != nil {
		t.Fatal(err)
	}
	verBefore := patched.CatalogVersion()
	resAnalyzed, pa, err := patched.QueryAnalyze(staleJoin)
	if err != nil {
		t.Fatal(err)
	}
	if pa.WorstQError < 10 {
		t.Fatalf("fixture not stale enough: worst q-error %v, want a large misestimate", pa.WorstQError)
	}
	if patched.OverrideCount() == 0 {
		t.Fatal("analyzed execution harvested no cardinality overrides")
	}
	if patched.CatalogVersion() == verBefore {
		t.Error("material override did not bump the catalog version (cached plans would stay stale)")
	}

	after, err := patched.Explain(staleJoin)
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Fatalf("feedback-patched statistics did not change the plan:\n%s", before)
	}

	// The plan moved; the answer must not. Compare the analyzed run, the
	// patched engine's post-flip run and the never-patched control exactly.
	want := strings.Join(exactRows(control.MustExec(staleJoin)), ";")
	if got := strings.Join(exactRows(resAnalyzed), ";"); got != want {
		t.Errorf("analyzed run disagrees with control:\n got %s\nwant %s", got, want)
	}
	if got := strings.Join(exactRows(patched.MustExec(staleJoin)), ";"); got != want {
		t.Errorf("post-flip plan disagrees with control:\n got %s\nwant %s\nplan before:\n%s\nplan after:\n%s",
			got, want, before, after)
	}
}

// A worst q-error past ReplanQErrorThreshold marks the statement family: the
// next prepared execution re-optimizes (one plan-cache miss) instead of
// dispatching the cached diagram, and the mark is consumed exactly once.
func TestReplanTriggerReoptimizesOnce(t *testing.T) {
	e := staleStatsEngine(t, Options{Optimizer: SystemR, ReplanQErrorThreshold: 10})
	st, err := e.Prepare(staleJoin)
	if err != nil {
		t.Fatal(err)
	}
	exec := func() *Result {
		t.Helper()
		res, err := st.Exec()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := e.PlanCacheStats()
	if res := exec(); res.PlannerTier == "cached" {
		t.Error("first execution cannot be a cache hit")
	}
	if res := exec(); res.PlannerTier != "cached" {
		t.Errorf("second execution tier = %q, want cached", res.PlannerTier)
	}
	s1 := e.PlanCacheStats()
	if s1.Misses-base.Misses != 1 || s1.Hits-base.Hits != 1 {
		t.Fatalf("warmup: %d misses, %d hits, want 1 and 1", s1.Misses-base.Misses, s1.Hits-base.Hits)
	}

	// Analyzed execution of the same family sees the ~200x scan misestimate.
	if _, pa, err := e.QueryAnalyze(staleJoin); err != nil {
		t.Fatal(err)
	} else if pa.WorstQError <= 10 {
		t.Fatalf("fixture not stale enough: worst q-error %v", pa.WorstQError)
	}

	if res := exec(); res.PlannerTier == "cached" {
		t.Error("execution after the replan mark must re-optimize, not dispatch the cache")
	}
	if res := exec(); res.PlannerTier != "cached" {
		t.Errorf("replan mark not consumed: tier = %q, want cached again", res.PlannerTier)
	}
	s2 := e.PlanCacheStats()
	if s2.Misses-s1.Misses != 1 || s2.Hits-s1.Hits != 1 {
		t.Errorf("after replan: %d misses, %d hits, want exactly 1 and 1", s2.Misses-s1.Misses, s2.Hits-s1.Hits)
	}
}

// The planning tier is visible on results and, when the fast path is enabled,
// on EXPLAIN output; engines without adaptive options keep their EXPLAIN text
// byte-identical to before.
func TestPlannerTierSurfaced(t *testing.T) {
	greedy := staleStatsEngine(t, Options{Optimizer: SystemR, GreedyJoinThreshold: 8})
	plain := staleStatsEngine(t, Options{Optimizer: SystemR})

	if res := greedy.MustExec(staleJoin); res.PlannerTier != "greedy" {
		t.Errorf("join under threshold: tier = %q, want greedy", res.PlannerTier)
	}
	if res := greedy.MustExec("SELECT pk FROM a WHERE k = 3"); res.PlannerTier != "trivial" {
		t.Errorf("single-table statement: tier = %q, want trivial", res.PlannerTier)
	}
	if res := plain.MustExec(staleJoin); res.PlannerTier != "dp" {
		t.Errorf("default join tier = %q, want dp", res.PlannerTier)
	}

	txt, err := greedy.Explain(staleJoin)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt, "-- planner: greedy") {
		t.Errorf("EXPLAIN on an adaptive engine should announce the tier:\n%s", txt)
	}
	plainTxt, err := plain.Explain(staleJoin)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plainTxt, "-- planner") {
		t.Errorf("EXPLAIN without adaptive options must stay unchanged:\n%s", plainTxt)
	}

	st, err := greedy.Prepare(staleJoin)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := st.Exec(); err != nil {
		t.Fatal(err)
	} else if res.PlannerTier != "greedy" {
		t.Errorf("prepared miss tier = %q, want greedy", res.PlannerTier)
	}
	if res, err := st.Exec(); err != nil {
		t.Fatal(err)
	} else if res.PlannerTier != "cached" {
		t.Errorf("prepared hit tier = %q, want cached", res.PlannerTier)
	}
}

// harvestOverrides must skip scans that were registered but never pulled
// (e.g. the inner side of a join whose outer came up empty) and scans under a
// LIMIT, and must average re-invoked scans per invocation.
func TestHarvestOverridesGuards(t *testing.T) {
	newScan := func() (*logical.Metadata, *physical.TableScan) {
		md := logical.NewMetadata()
		tbl := &catalog.Table{Name: "g", Cols: []catalog.Column{{Name: "a", Kind: datum.KindInt}}}
		ids := md.AddTable(tbl, "g")
		return md, &physical.TableScan{Table: tbl, Binding: "g", Cols: ids, ColOrds: []int{0}}
	}

	e := New(Options{FeedbackPatching: true})
	defer e.Close()
	md, scan := newScan()
	rm := physical.NewRunMetrics()
	rm.Node(scan) // registered by setup, never pulled
	if e.harvestOverrides(scan, md, rm) || e.OverrideCount() != 0 {
		t.Errorf("never-executed scan harvested: %d overrides", e.OverrideCount())
	}

	// Twice-invoked scan (re-materialized inner side): per-invocation average.
	m := rm.Node(scan)
	m.ActualRows, m.Invocations = 1200, 2
	if !e.harvestOverrides(scan, md, rm) {
		t.Error("executed scan must harvest a material override")
	}
	if rows, ok := e.overrides.Get("g", ""); !ok || rows != 600 {
		t.Errorf("override = (%v, %v), want the per-invocation average 600", rows, ok)
	}

	// The same executed scan under a LIMIT observes the cutoff, not the
	// predicate: no harvest.
	e2 := New(Options{FeedbackPatching: true})
	defer e2.Close()
	lim := &physical.LimitOp{Input: scan, N: 5}
	if e2.harvestOverrides(lim, md, rm) || e2.OverrideCount() != 0 {
		t.Errorf("scan under LIMIT harvested: %d overrides", e2.OverrideCount())
	}
}

// Options.IncrementalStats folds INSERTs into existing statistics — row
// counts advance and NULL counts track — while the default engine freezes
// statistics between ANALYZE runs, and never-analyzed tables are skipped.
func TestIncrementalStatsMaintenance(t *testing.T) {
	e := New(Options{IncrementalStats: true})
	defer e.Close()
	e.MustExec("CREATE TABLE m (pk INT NOT NULL, v INT, PRIMARY KEY (pk))")
	// Inserting before ANALYZE is fine: no statistics exist yet to maintain.
	e.MustExec("INSERT INTO m VALUES (9999, 1)")
	rows := make([][]any, 0, 30)
	for i := 0; i < 30; i++ {
		rows = append(rows, []any{int64(i), int64(i % 5)})
	}
	if err := e.LoadRows("m", rows); err != nil {
		t.Fatal(err)
	}
	e.MustExec("ANALYZE")
	tbl, ok := e.Catalog().Table("m")
	if !ok || tbl.Stats == nil {
		t.Fatal("table m should be analyzed")
	}
	rc := tbl.Stats.RowCount
	nulls := tbl.Stats.ColStats[1].NullCount
	e.MustExec("INSERT INTO m VALUES (1000, 7)")
	e.MustExec("INSERT INTO m VALUES (1001, NULL)")
	if tbl.Stats.RowCount != rc+2 {
		t.Errorf("RowCount = %v, want %v after two maintained inserts", tbl.Stats.RowCount, rc+2)
	}
	if tbl.Stats.ColStats[1].NullCount != nulls+1 {
		t.Errorf("NullCount = %v, want %v", tbl.Stats.ColStats[1].NullCount, nulls+1)
	}

	frozen := New(Options{})
	defer frozen.Close()
	frozen.MustExec("CREATE TABLE m (pk INT NOT NULL, v INT, PRIMARY KEY (pk))")
	if err := frozen.LoadRows("m", rows); err != nil {
		t.Fatal(err)
	}
	frozen.MustExec("ANALYZE")
	ftbl, _ := frozen.Catalog().Table("m")
	frc := ftbl.Stats.RowCount
	frozen.MustExec("INSERT INTO m VALUES (1000, 7)")
	if ftbl.Stats.RowCount != frc {
		t.Errorf("default engine maintained statistics: RowCount %v, want frozen %v", ftbl.Stats.RowCount, frc)
	}
}

// The engine-level feedback report must not repeat a hot statement: fifty
// analyzed executions of one query collapse to one entry per plan node, each
// carrying that pair's worst q-error.
func TestFeedbackReportDedupesHotStatement(t *testing.T) {
	e := staleStatsEngine(t, Options{Optimizer: SystemR})
	hot := "SELECT pk FROM a WHERE k < 7"
	for i := 0; i < 50; i++ {
		if _, _, err := e.QueryAnalyze(hot); err != nil {
			t.Fatal(err)
		}
	}
	// Genuinely distinct statement families: the ring keys by fingerprint, so
	// queries differing only in literals would (by design) collapse into the
	// hot family above.
	distinct := []string{
		"SELECT pk FROM a WHERE k > 1",
		"SELECT pk FROM a WHERE k <= 2 AND pk > 0",
		"SELECT pk FROM b WHERE k < 3",
		"SELECT pk FROM b WHERE k <> 4",
		staleJoin,
	}
	for _, q := range distinct {
		if _, _, err := e.QueryAnalyze(q); err != nil {
			t.Fatal(err)
		}
	}
	rep := e.FeedbackReport(64)
	if len(rep) == 0 {
		t.Fatal("empty feedback report after 55 analyzed executions")
	}
	seen := make(map[string]bool)
	hotEntries := 0
	for _, en := range rep {
		key := en.Statement + "\x00" + en.Node
		if seen[key] {
			t.Errorf("duplicate report entry for (%q, %q)", en.Statement, en.Node)
		}
		seen[key] = true
		// The hot statement is recorded under its fingerprint: literals
		// become '?'.
		if strings.Contains(en.Statement, "a WHERE k < ?") {
			hotEntries++
		}
		if en.QError < 1 {
			t.Errorf("q-error %v below 1 for %q", en.QError, en.Node)
		}
	}
	if hotEntries == 0 {
		t.Error("hot statement missing from the report entirely")
	}
}
