// EXPLAIN ANALYZE API surface: the structured per-operator runtime metrics
// tree returned by analyzed executions, and the engine's execution-feedback
// report over accumulated estimate-vs-actual observations.
package queryopt

import (
	"context"
	"fmt"

	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/sql"
)

// PlanAnalysis is the outcome of an analyzed execution: the rendered
// EXPLAIN ANALYZE text plus the structured metrics tree.
type PlanAnalysis struct {
	// Text is the plan annotated with runtime metrics, one line per node.
	Text string
	// Root is the structured metrics tree mirroring the physical plan.
	Root *NodeAnalysis
	// WorstQError is the largest per-node q-error among executed nodes (1.0
	// when every estimate was perfect or nothing executed) — the signal the
	// Options.ReplanQErrorThreshold trigger compares against.
	WorstQError float64
}

// NodeAnalysis is one plan node's estimates confronted with its measured
// runtime behaviour.
type NodeAnalysis struct {
	// Op is the operator description as printed by EXPLAIN.
	Op string
	// EstRows is the optimizer's cardinality estimate.
	EstRows float64
	// EstCost is the optimizer's cost estimate for the subtree.
	EstCost float64
	// Executed reports whether the node ran at all; the remaining runtime
	// fields are zero when it did not (e.g. a pruned LIMIT input).
	Executed bool
	// ActualRows is the measured number of rows the node emitted.
	ActualRows int64
	// QError is the misestimation factor max(est/actual, actual/est) with
	// both sides floored at one row. 1.0 means a perfect estimate.
	QError float64
	// Invocations counts node executions (>1 for re-materialized inputs).
	Invocations int64
	// Batches counts morsel batches processed by parallel paths.
	Batches int64
	// Vectorized reports that the node ran on the columnar batch path.
	Vectorized bool
	// WallNanos is inclusive wall time (node plus inputs); SelfNanos is the
	// node's own share after subtracting executed children.
	WallNanos, SelfNanos int64
	// PeakMemRows is the peak number of rows buffered at once.
	PeakMemRows int64
	// PeakMemBytes is the peak working memory the node reserved from the
	// query's memory account, in modeled bytes.
	PeakMemBytes int64
	// Spills counts temp files the node wrote when degrading under the
	// memory budget; SpillBytes is their total size.
	Spills, SpillBytes int64
	// WorkerRows holds per-worker (per-partition for Exchange) row counts;
	// imbalance here is partition skew.
	WorkerRows []int64
	// Children are the node's inputs in plan order.
	Children []*NodeAnalysis
}

// buildAnalysis converts collected run metrics into the public analysis tree.
func buildAnalysis(p physical.Plan, md *logical.Metadata, rm *physical.RunMetrics) *PlanAnalysis {
	pa := &PlanAnalysis{
		Text:        physical.FormatAnalyze(p, md, rm),
		Root:        buildNodeAnalysis(p, md, rm),
		WorstQError: 1,
	}
	pa.Root.Walk(func(n *NodeAnalysis) {
		if n.Executed && n.QError > pa.WorstQError {
			pa.WorstQError = n.QError
		}
	})
	return pa
}

func buildNodeAnalysis(p physical.Plan, md *logical.Metadata, rm *physical.RunMetrics) *NodeAnalysis {
	est, cost := p.Estimate()
	n := &NodeAnalysis{
		Op:      physical.Describe(p, md),
		EstRows: est,
		EstCost: cost,
	}
	if m := rm.Lookup(p); m != nil {
		n.Executed = true
		n.ActualRows = m.ActualRows
		n.QError = physical.QError(est, float64(m.ActualRows))
		n.Invocations = m.Invocations
		n.Batches = m.Batches
		n.Vectorized = m.Vectorized
		n.WallNanos = m.WallNanos
		n.PeakMemRows = m.PeakMemRows
		n.PeakMemBytes = m.PeakMemBytes
		n.Spills = m.Spills
		n.SpillBytes = m.SpillBytes
		n.WorkerRows = append([]int64(nil), m.WorkerRows...)
		n.SelfNanos = m.WallNanos
		for _, c := range physical.Children(p) {
			if cm := rm.Lookup(c); cm != nil {
				n.SelfNanos -= cm.WallNanos
			}
		}
		if n.SelfNanos < 0 {
			n.SelfNanos = 0
		}
	}
	for _, c := range physical.Children(p) {
		n.Children = append(n.Children, buildNodeAnalysis(c, md, rm))
	}
	return n
}

// Walk visits the node and its descendants in pre-order.
func (n *NodeAnalysis) Walk(fn func(*NodeAnalysis)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// QueryAnalyze executes a SELECT with per-operator instrumentation enabled
// and returns both the query result and the runtime-metrics tree — the
// programmatic form of EXPLAIN ANALYZE. The observations are also recorded
// into the engine's feedback ring (see FeedbackReport).
func (e *Engine) QueryAnalyze(text string) (*Result, *PlanAnalysis, error) {
	return e.QueryAnalyzeContext(context.Background(), text)
}

// QueryAnalyzeContext is QueryAnalyze under a context: cancellation and
// deadlines propagate to every execution goroutine (see ExecContext).
func (e *Engine) QueryAnalyzeContext(ctx context.Context, text string) (*Result, *PlanAnalysis, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, nil, fmt.Errorf("queryopt: QueryAnalyze supports SELECT statements only, got %T", stmt)
	}
	return e.run(ctx, sel, false, true, text)
}

// FeedbackEntry is one retained estimate-vs-actual observation.
type FeedbackEntry struct {
	// Statement is the normalized statement family the observation came from
	// (literals and parameters rendered as `?`). Observations from identical
	// operators in different statements stay distinct.
	Statement string
	// Node is the operator description the observation belongs to.
	Node string
	// Est and Actual are the estimated and measured cardinalities.
	Est, Actual float64
	// QError is the misestimation factor between them.
	QError float64
}

// FeedbackLen reports how many observations the engine's feedback ring
// currently retains.
func (e *Engine) FeedbackLen() int { return e.feedback.Len() }

// FeedbackReport returns up to k retained observations ordered by descending
// q-error: the worst cardinality-misestimation offenders seen by analyzed
// executions, i.e. where refreshed statistics would pay off most. Repeated
// observations of the same (statement, operator) pair are deduplicated to
// their worst q-error, so a hot statement cannot flood the report.
func (e *Engine) FeedbackReport(k int) []FeedbackEntry {
	worst := e.feedback.WorstOffenders(k)
	out := make([]FeedbackEntry, len(worst))
	for i, w := range worst {
		out[i] = FeedbackEntry{Statement: w.Statement, Node: w.Node, Est: w.Est, Actual: w.Actual, QError: w.QError}
	}
	return out
}
