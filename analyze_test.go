package queryopt

// analyze_test.go verifies the EXPLAIN ANALYZE subsystem end to end: the
// actual_rows reported on every plan node must equal independently computed
// ground truth (plain Go loops over the generated data) at parallelism 1 and
// 4; freshly ANALYZEd uniform data must yield q-error 1.0 on every node of
// stats-friendly plans; the EXPLAIN ANALYZE statement must coexist with the
// ANALYZE statistics statement; and analyzed executions must feed the
// engine's worst-offenders feedback report.

import (
	"strings"
	"testing"
)

// analyzeFixture is deterministic data big enough (3000 rows) for the morsel
// path: x(pk, g, b, v) with g uniform over 10 values and b uniform over 100,
// and y(pk, w) keyed 0..99.
type analyzeFixture struct {
	eng  *Engine
	xG   []int64
	xB   []int64
	xV   []float64
	yPK  []int64
	rows int
}

func newAnalyzeFixture(t *testing.T, par int) *analyzeFixture {
	t.Helper()
	f := &analyzeFixture{rows: 3000}
	f.eng = New(Options{Parallelism: par})
	t.Cleanup(f.eng.Close)
	f.eng.MustExec(`CREATE TABLE x (pk INT NOT NULL, g INT, b INT, v FLOAT, PRIMARY KEY (pk))`)
	f.eng.MustExec(`CREATE TABLE y (pk INT NOT NULL, w VARCHAR, PRIMARY KEY (pk))`)
	var xs [][]any
	for i := 0; i < f.rows; i++ {
		g, b := int64(i%10), int64((i*7)%100)
		v := float64(i%997) / 4
		f.xG = append(f.xG, g)
		f.xB = append(f.xB, b)
		f.xV = append(f.xV, v)
		xs = append(xs, []any{i, g, b, v})
	}
	if err := f.eng.LoadRows("x", xs); err != nil {
		t.Fatal(err)
	}
	var ys [][]any
	for i := 0; i < 100; i++ {
		f.yPK = append(f.yPK, int64(i))
		ys = append(ys, []any{i, "w"})
	}
	if err := f.eng.LoadRows("y", ys); err != nil {
		t.Fatal(err)
	}
	f.eng.MustExec("ANALYZE")
	return f
}

// sumActual adds up ActualRows over all executed nodes whose description
// contains the given substring.
func sumActual(root *NodeAnalysis, opSubstr string) (total int64, found int) {
	root.Walk(func(n *NodeAnalysis) {
		if n.Executed && strings.Contains(n.Op, opSubstr) {
			total += n.ActualRows
			found++
		}
	})
	return total, found
}

func TestAnalyzeActualRowsMatchTruth(t *testing.T) {
	for _, par := range []int{1, 4} {
		f := newAnalyzeFixture(t, par)

		// Q1: filtered scan. Truth from a plain loop.
		var q1 int64
		for i := range f.xB {
			if f.xB[i] < 50 {
				q1++
			}
		}
		_, pa, err := f.eng.QueryAnalyze(`SELECT pk FROM x WHERE b < 50`)
		if err != nil {
			t.Fatal(err)
		}
		if pa.Root.ActualRows != q1 {
			t.Errorf("par %d Q1: root actual_rows=%d truth=%d", par, pa.Root.ActualRows, q1)
		}
		if got, n := sumActual(pa.Root, "table-scan x"); n != 1 || got != q1 {
			t.Errorf("par %d Q1: scan actual_rows=%d (nodes=%d) truth=%d", par, got, n, q1)
		}

		// Q2: equijoin with a filtered build side. Truth: matches of
		// x.b = y.pk with y.pk < 30.
		var q2 int64
		for i := range f.xB {
			if f.xB[i] < 30 {
				q2++ // y.pk values are exactly 0..99, each once
			}
		}
		_, pa, err = f.eng.QueryAnalyze(`SELECT x.pk, y.w FROM x, y WHERE x.b = y.pk AND y.pk < 30`)
		if err != nil {
			t.Fatal(err)
		}
		if pa.Root.ActualRows != q2 {
			t.Errorf("par %d Q2: root actual_rows=%d truth=%d", par, pa.Root.ActualRows, q2)
		}
		if got, n := sumActual(pa.Root, "join"); n < 1 || got != q2 {
			t.Errorf("par %d Q2: join actual_rows=%d (nodes=%d) truth=%d", par, got, n, q2)
		}

		// Q3: grouped aggregate. Truth: 10 groups from 3000 scanned rows.
		_, pa, err = f.eng.QueryAnalyze(`SELECT g, COUNT(*), SUM(v) FROM x GROUP BY g`)
		if err != nil {
			t.Fatal(err)
		}
		if pa.Root.ActualRows != 10 {
			t.Errorf("par %d Q3: root actual_rows=%d truth=10", par, pa.Root.ActualRows)
		}
		if got, n := sumActual(pa.Root, "group-by"); n != 1 || got != 10 {
			t.Errorf("par %d Q3: group-by actual_rows=%d (nodes=%d) truth=10", par, got, n)
		}
		if got, n := sumActual(pa.Root, "table-scan x"); n != 1 || got != int64(f.rows) {
			t.Errorf("par %d Q3: scan actual_rows=%d (nodes=%d) truth=%d", par, got, n, f.rows)
		}

		// Q4: ORDER BY + LIMIT. The root emits exactly 7 rows.
		res, pa, err := f.eng.QueryAnalyze(`SELECT pk FROM x ORDER BY v LIMIT 7`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 7 || pa.Root.ActualRows != 7 {
			t.Errorf("par %d Q4: rows=%d root actual_rows=%d, want 7", par, len(res.Rows), pa.Root.ActualRows)
		}
	}
}

// TestAnalyzeQErrorOneOnFreshStats: with freshly ANALYZEd uniform data and
// stats-friendly plan shapes (full scans, GROUP BY over an exactly counted
// column, scalar aggregates), every node's estimate matches truth: q-error
// 1.0 throughout the tree.
func TestAnalyzeQErrorOneOnFreshStats(t *testing.T) {
	for _, par := range []int{1, 4} {
		f := newAnalyzeFixture(t, par)
		// Full scans, GROUP BY on an exactly counted column and scalar
		// aggregates are exactly estimable from fresh stats. (Equijoins are
		// not: histogram-join cardinality is bucket-approximate even on
		// uniform data.)
		for _, q := range []string{
			`SELECT pk FROM x`,
			`SELECT g FROM x GROUP BY g`,
			`SELECT COUNT(*) FROM x`,
		} {
			_, pa, err := f.eng.QueryAnalyze(q)
			if err != nil {
				t.Fatalf("par %d %q: %v", par, q, err)
			}
			pa.Root.Walk(func(n *NodeAnalysis) {
				if n.Executed && n.QError != 1.0 {
					t.Errorf("par %d %q: node %q q_err=%.3f (est=%.0f actual=%d), want 1.0",
						par, q, n.Op, n.QError, n.EstRows, n.ActualRows)
				}
			})
		}
	}
}

// TestExplainAnalyzeStatement: the SQL surface. EXPLAIN ANALYZE SELECT
// executes and annotates; plain EXPLAIN does not execute; the ANALYZE
// statistics statement (bare, and under EXPLAIN) still works.
func TestExplainAnalyzeStatement(t *testing.T) {
	f := newAnalyzeFixture(t, 1)

	res, err := f.eng.Exec(`EXPLAIN ANALYZE SELECT g, COUNT(*) FROM x GROUP BY g`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "actual_rows=") || !strings.Contains(res.Plan, "q_err=") {
		t.Errorf("EXPLAIN ANALYZE output lacks runtime metrics:\n%s", res.Plan)
	}
	if len(res.Rows) == 0 || res.Columns[0] != "plan" {
		t.Errorf("EXPLAIN ANALYZE result shape wrong: cols=%v rows=%d", res.Columns, len(res.Rows))
	}

	plain, err := f.eng.Exec(`EXPLAIN SELECT g, COUNT(*) FROM x GROUP BY g`)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plain.Rows {
		if strings.Contains(r[0].(string), "actual_rows=") {
			t.Errorf("plain EXPLAIN must not carry runtime metrics: %v", r[0])
		}
	}

	// The statistics statement still parses and runs, alone and under EXPLAIN.
	if _, err := f.eng.Exec(`ANALYZE x`); err != nil {
		t.Fatalf("ANALYZE statement broken: %v", err)
	}
	if _, err := f.eng.Exec(`ANALYZE`); err != nil {
		t.Fatalf("bare ANALYZE broken: %v", err)
	}
	if _, err := f.eng.Exec(`EXPLAIN ANALYZE x`); err != nil {
		t.Fatalf("EXPLAIN of the ANALYZE statement broken: %v", err)
	}

	// Reference mode cannot produce an analyzed physical plan.
	ref := New(Options{Optimizer: Reference})
	ref.MustExec(`CREATE TABLE z (a INT)`)
	if _, err := ref.Exec(`EXPLAIN ANALYZE SELECT a FROM z`); err == nil {
		t.Error("EXPLAIN ANALYZE in reference mode should error")
	}
}

// TestAnalyzeFeedbackReport: analyzed executions populate the ring; the
// report is sorted by descending q-error and bounded by k.
func TestAnalyzeFeedbackReport(t *testing.T) {
	f := newAnalyzeFixture(t, 1)
	if f.eng.FeedbackLen() != 0 {
		t.Fatalf("fresh engine has %d feedback entries", f.eng.FeedbackLen())
	}
	for _, q := range []string{
		`SELECT pk FROM x WHERE b < 13`,
		`SELECT g, COUNT(*) FROM x WHERE b < 77 GROUP BY g`,
	} {
		if _, _, err := f.eng.QueryAnalyze(q); err != nil {
			t.Fatal(err)
		}
	}
	if f.eng.FeedbackLen() == 0 {
		t.Fatal("analyzed executions recorded no feedback")
	}
	report := f.eng.FeedbackReport(3)
	if len(report) == 0 || len(report) > 3 {
		t.Fatalf("report size %d, want 1..3", len(report))
	}
	for i, e := range report {
		if e.QError < 1 {
			t.Errorf("entry %d: q-error %v < 1", i, e.QError)
		}
		if i > 0 && report[i-1].QError < e.QError {
			t.Errorf("report not sorted: %v before %v", report[i-1].QError, e.QError)
		}
		if e.Node == "" {
			t.Errorf("entry %d lacks a node description", i)
		}
	}
	// Unanalyzed executions must NOT feed the ring.
	n := f.eng.FeedbackLen()
	if _, err := f.eng.Exec(`SELECT pk FROM x WHERE b < 5`); err != nil {
		t.Fatal(err)
	}
	if f.eng.FeedbackLen() != n {
		t.Error("plain Exec leaked observations into the feedback ring")
	}
}

// TestAnalyzeOffNoMetrics: without analyze, execution carries no metrics
// state (the overhead guard is a nil check; see BenchmarkExecAnalyzeOff/On).
func TestAnalyzeOffNoMetrics(t *testing.T) {
	f := newAnalyzeFixture(t, 1)
	res, err := f.eng.Exec(`SELECT COUNT(*) FROM x`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(res.Plan, "actual_rows=") {
		t.Errorf("unanalyzed plan text carries metrics:\n%s", res.Plan)
	}
}
