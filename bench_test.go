package queryopt

// bench_test.go exposes every experiment of the reproduction (E1–E24, one
// per figure/claim of the paper — see DESIGN.md §2) as a testing.B benchmark,
// plus micro-benchmarks of the engine's hot paths. Regenerate the experiment
// tables with:
//
//	go test -bench=. -benchmem
//	go run ./cmd/benchharness        # tables only, faster
import (
	"fmt"
	"testing"

	"repro/internal/experiments"
)

// benchExperiment runs one experiment per iteration and reports its table
// once (experiments are deterministic; the benchmark time measures the cost
// of regenerating the result).
func benchExperiment(b *testing.B, run func() experiments.Table) {
	b.Helper()
	var t experiments.Table
	for i := 0; i < b.N; i++ {
		t = run()
	}
	b.StopTimer()
	if testing.Verbose() {
		fmt.Println(t.Format())
	}
	b.ReportMetric(float64(len(t.Rows)), "table-rows")
}

func BenchmarkE1OperatorTree(b *testing.B) { benchExperiment(b, experiments.E1OperatorTree) }
func BenchmarkE2DPvsNaive(b *testing.B)    { benchExperiment(b, experiments.E2DPvsNaive) }
func BenchmarkE3InterestingOrders(b *testing.B) {
	benchExperiment(b, experiments.E3InterestingOrders)
}
func BenchmarkE4BushyAndStar(b *testing.B)     { benchExperiment(b, experiments.E4BushyAndStar) }
func BenchmarkE5OuterjoinReorder(b *testing.B) { benchExperiment(b, experiments.E5OuterjoinReorder) }
func BenchmarkE6GroupByPushdown(b *testing.B)  { benchExperiment(b, experiments.E6GroupByPushdown) }
func BenchmarkE7ViewMerging(b *testing.B)      { benchExperiment(b, experiments.E7ViewMerging) }
func BenchmarkE8Unnesting(b *testing.B)        { benchExperiment(b, experiments.E8Unnesting) }
func BenchmarkE9MagicSets(b *testing.B)        { benchExperiment(b, experiments.E9MagicSets) }
func BenchmarkE10HistogramAccuracy(b *testing.B) {
	benchExperiment(b, experiments.E10HistogramAccuracy)
}
func BenchmarkE11SamplingAndDistinct(b *testing.B) {
	benchExperiment(b, experiments.E11SamplingAndDistinct)
}
func BenchmarkE12Propagation(b *testing.B) { benchExperiment(b, experiments.E12Propagation) }
func BenchmarkE13BufferModel(b *testing.B) { benchExperiment(b, experiments.E13BufferModel) }
func BenchmarkE14Architectures(b *testing.B) {
	benchExperiment(b, experiments.E14Architectures)
}
func BenchmarkE15ExpensivePredicates(b *testing.B) {
	benchExperiment(b, experiments.E15ExpensivePredicates)
}
func BenchmarkE16MatViews(b *testing.B) { benchExperiment(b, experiments.E16MatViews) }
func BenchmarkE17Parallel(b *testing.B) { benchExperiment(b, experiments.E17Parallel) }
func BenchmarkE18QueryGraph(b *testing.B) {
	benchExperiment(b, experiments.E18QueryGraph)
}
func BenchmarkE19Parametric(b *testing.B) {
	benchExperiment(b, experiments.E19Parametric)
}
func BenchmarkE20JointDistribution(b *testing.B) {
	benchExperiment(b, experiments.E20JointDistribution)
}
func BenchmarkE21ParallelExecution(b *testing.B) {
	benchExperiment(b, experiments.E21ParallelExecution)
}
func BenchmarkE22AnalyzeFeedback(b *testing.B) {
	benchExperiment(b, experiments.E22AnalyzeFeedback)
}
func BenchmarkE23Robustness(b *testing.B) {
	benchExperiment(b, experiments.E23Robustness)
}
func BenchmarkE24Vectorized(b *testing.B) {
	benchExperiment(b, experiments.E24Vectorized)
}

// --- engine micro-benchmarks ---

func benchDB(b *testing.B, rows int) *Engine {
	b.Helper()
	e := New(Options{})
	e.MustExec(`CREATE TABLE emp (eid INT NOT NULL, name VARCHAR, did INT, sal FLOAT, PRIMARY KEY (eid))`)
	e.MustExec(`CREATE TABLE dept (did INT NOT NULL, dname VARCHAR, PRIMARY KEY (did))`)
	e.MustExec(`CREATE INDEX emp_did ON emp (did)`)
	var emp [][]any
	for i := 0; i < rows; i++ {
		emp = append(emp, []any{i, fmt.Sprintf("e%06d", i), i % 100, float64(i%9973) + 0.5})
	}
	if err := e.LoadRows("emp", emp); err != nil {
		b.Fatal(err)
	}
	var dept [][]any
	for dID := 0; dID < 100; dID++ {
		dept = append(dept, []any{dID, fmt.Sprintf("d%03d", dID)})
	}
	if err := e.LoadRows("dept", dept); err != nil {
		b.Fatal(err)
	}
	e.MustExec("ANALYZE")
	return e
}

func BenchmarkParse(b *testing.B) {
	e := benchDB(b, 100)
	q := `SELECT e.name, d.dname FROM emp e, dept d
	      WHERE e.did = d.did AND e.sal > 100 GROUP BY e.name, d.dname ORDER BY d.dname LIMIT 10`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explain(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeJoin3(b *testing.B) {
	benchOptimizer(b, SystemR)
}

func BenchmarkOptimizeJoin3Cascades(b *testing.B) {
	benchOptimizer(b, Cascades)
}

func BenchmarkOptimizeJoin3Starburst(b *testing.B) {
	benchOptimizer(b, Starburst)
}

func benchOptimizer(b *testing.B, kind OptimizerKind) {
	b.Helper()
	e := New(Options{Optimizer: kind})
	e.MustExec(`CREATE TABLE a (x INT NOT NULL, y INT, PRIMARY KEY (x))`)
	e.MustExec(`CREATE TABLE bb (x INT NOT NULL, y INT, PRIMARY KEY (x))`)
	e.MustExec(`CREATE TABLE c (x INT NOT NULL, y INT, PRIMARY KEY (x))`)
	for _, tn := range []string{"a", "bb", "c"} {
		var rows [][]any
		for i := 0; i < 1000; i++ {
			rows = append(rows, []any{i, i % 50})
		}
		if err := e.LoadRows(tn, rows); err != nil {
			b.Fatal(err)
		}
	}
	e.MustExec("ANALYZE")
	q := "SELECT a.y FROM a, bb, c WHERE a.y = bb.x AND bb.y = c.x"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Explain(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecHashJoin(b *testing.B) {
	e := benchDB(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec("SELECT COUNT(*) FROM emp e, dept d WHERE e.did = d.did"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecIndexLookup(b *testing.B) {
	e := benchDB(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec("SELECT name FROM emp WHERE eid = 12345"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecGroupBy(b *testing.B) {
	e := benchDB(b, 20000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec("SELECT did, COUNT(*), AVG(sal) FROM emp GROUP BY did"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecAnalyzeOff / BenchmarkExecAnalyzeOn compare the same query with
// instrumentation disabled and enabled. The off path must stay near the
// pre-instrumentation baseline: runPlan's only added work is a nil check.
func BenchmarkExecAnalyzeOff(b *testing.B) {
	e := benchDB(b, 20000)
	q := "SELECT did, COUNT(*), AVG(sal) FROM emp WHERE sal > 100 GROUP BY did"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecAnalyzeOn(b *testing.B) {
	e := benchDB(b, 20000)
	q := "SELECT did, COUNT(*), AVG(sal) FROM emp WHERE sal > 100 GROUP BY did"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.QueryAnalyze(q); err != nil {
			b.Fatal(err)
		}
	}
}
