// Command benchharness regenerates every table of the reproduction (E1–E18,
// mapped to the paper's figures and claims in DESIGN.md). Run with no
// arguments for everything, or pass experiment ids:
//
//	go run ./cmd/benchharness            # all experiments
//	go run ./cmd/benchharness E2 E10     # a subset
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	start := time.Now()
	if len(os.Args) > 1 {
		for _, id := range os.Args[1:] {
			t, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (E1..E18)\n", id)
				os.Exit(1)
			}
			fmt.Println(t.Format())
		}
		return
	}
	for _, t := range experiments.All() {
		fmt.Println(t.Format())
	}
	fmt.Printf("all experiments completed in %s\n", time.Since(start).Round(time.Millisecond))
}
