// Command benchharness regenerates every table of the reproduction (E1–E29,
// mapped to the paper's figures and claims in DESIGN.md). Run with no
// arguments for everything, or pass experiment ids:
//
//	go run ./cmd/benchharness            # all experiments
//	go run ./cmd/benchharness E2 E10     # a subset
//	go run ./cmd/benchharness parallel   # serial-vs-parallel wall-clock sweep
//	                                     # → BENCH_parallel.json
//	go run ./cmd/benchharness analyze    # random corpus under EXPLAIN ANALYZE
//	                                     # → BENCH_analyze.json (q-error distribution)
//	go run ./cmd/benchharness robustness # memory-budget/spill overhead and
//	                                     # cancellation latency → BENCH_robustness.json
//	go run ./cmd/benchharness vectorized [rows]
//	                                     # row-vs-vectorized execution of identical
//	                                     # plans → BENCH_vectorized.json
//	go run ./cmd/benchharness serving [rows] [perSession]
//	                                     # concurrent sessions: exec-literal vs
//	                                     # prepared-reoptimize vs prepared-cached
//	                                     # → BENCH_serving.json
//	go run ./cmd/benchharness storage [rows]
//	                                     # disk-backed columnar segments: cold/warm
//	                                     # scans, pruned vs unpruned, selectivity
//	                                     # sweep → BENCH_storage.json
//	go run ./cmd/benchharness durability [rows]
//	                                     # checksum verification overhead on
//	                                     # cold/warm scans, recovery time vs
//	                                     # segment count → BENCH_durability.json
//	go run ./cmd/benchharness compression [rows]
//	                                     # dictionary/RLE encoded segments vs
//	                                     # plain: scan+filter throughput, bytes
//	                                     # read, block counts
//	                                     # → BENCH_compression.json
//	go run ./cmd/benchharness adaptive [queries] [rows]
//	                                     # greedy fast path vs full DP: planning
//	                                     # time, execution time, identical results
//	                                     # → BENCH_adaptive.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/servingbench"
)

// parallelBench runs the large serial-vs-parallel comparison and writes
// BENCH_parallel.json: rows/sec and speedup at degrees 1/2/4/8, plus the
// CommCostPerRow calibrated from measured exchange overhead. GOMAXPROCS and
// CPU count are recorded because measured speedup is bounded by cores, not by
// degree.
func parallelBench() error {
	res := experiments.RunParallelBench(150000, []int{1, 2, 4, 8}, 3)
	for _, p := range res.Points {
		fmt.Printf("degree=%d  wall=%.3fs  rows/sec=%.0f  speedup=%.2fx  modeled-response=%.1f\n",
			p.Degree, p.WallSeconds, p.RowsPerSec, p.Speedup, p.ModeledResponseTime)
	}
	fmt.Printf("gomaxprocs=%d cpus=%d calibrated CommCostPerRow=%.4f (default %.4f)\n",
		res.GOMAXPROCS, res.CPUs, res.CalibratedCommCostPerRow, res.DefaultCommCostPerRow)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_parallel.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_parallel.json")
	return nil
}

// analyzeBench runs the random query corpus under per-operator
// instrumentation and writes BENCH_analyze.json: the estimate-vs-actual
// q-error distribution (percentiles, geometric mean, fraction within a factor
// of two) at serial and parallel degrees, with the worst offenders named.
func analyzeBench() error {
	res := experiments.RunAnalyzeBench(200, 20000, []int{1, 4}, 22)
	for _, p := range res.Points {
		fmt.Printf("degree=%d  nodes=%d  geomean=%.2f  p50=%.2f  p90=%.2f  p99=%.2f  max=%.2f  within2x=%.1f%%\n",
			p.Degree, p.Nodes, p.GeoMeanQError, p.P50QError, p.P90QError, p.P99QError, p.MaxQError, p.WithinFactor2*100)
		for _, w := range p.WorstOffenders {
			fmt.Printf("  offender: %-60s est=%-8.0f actual=%-8.0f q_err=%.2f\n", w.Node, w.Est, w.Actual, w.QError)
		}
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_analyze.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_analyze.json")
	return nil
}

// robustnessBench runs the large resource-governor sweep and writes
// BENCH_robustness.json: spill counts, bytes and wall-clock overhead of
// memory-budgeted execution versus in-memory (results verified identical),
// plus the latency of canceling a mid-flight query at degrees 1/4/8.
func robustnessBench() error {
	res := experiments.RunRobustnessBench(150000, []int64{4 << 20, 1 << 20, 64 << 10}, []int{1, 4, 8}, 3)
	for _, p := range res.SpillPoints {
		label := "unlimited"
		if p.BudgetBytes > 0 {
			label = fmt.Sprintf("%dKB", p.BudgetBytes>>10)
		}
		fmt.Printf("budget=%-10s wall=%.3fs  spills=%d  spill_bytes=%d  peak=%d  overhead=%.2fx  identical=%v\n",
			label, p.WallSeconds, p.Spills, p.SpillBytes, p.PeakMemBytes, p.OverheadVsInMemory, p.RowsIdentical)
	}
	for _, c := range res.CancelPoints {
		fmt.Printf("cancel degree=%d  latency=%.2fms  (query %.1fms)\n",
			c.Degree, c.LatencySeconds*1000, c.QuerySeconds*1000)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_robustness.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_robustness.json")
	return nil
}

// vectorizedBench runs the large row-vs-vectorized comparison and writes
// BENCH_vectorized.json: rows/sec for both execution models on the
// scan+filter, hash-aggregation and hash-join microworkloads, plus the
// `identical` flag certifying bit-equal results.
func vectorizedBench(rows int) error {
	res := experiments.RunVectorizedBench(rows, 3)
	for _, w := range res.Workloads {
		fmt.Printf("%-12s row=%.3fs (%.0f rows/s)  vec=%.3fs (%.0f rows/s)  speedup=%.2fx  identical=%v\n",
			w.Workload, w.RowWallSec, w.RowRowsPerSec, w.VecWallSec, w.VecRowsPerSec, w.Speedup, w.Identical)
	}
	fmt.Printf("gomaxprocs=%d cpus=%d (single-threaded comparison)\n", res.GOMAXPROCS, res.CPUs)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_vectorized.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_vectorized.json")
	return nil
}

// storageBench runs the disk-backed columnar segment sweep and writes
// BENCH_storage.json: cold and warm scan wall-clock at selectivities
// 0.001/0.1/1.0 with zone-map pruning on and off, the segments read/pruned
// counts and cold bytes read, plus the bit-identical flag against the
// in-memory heap.
func storageBench(rows int) error {
	res := experiments.RunStorageBench(rows, 0, 3)
	for _, w := range res.Workloads {
		fmt.Printf("sel=%-6.3f %-9s segs=%d/%d pruned  cold=%.3fs  warm=%.3fs  mem=%.3fs  bytes=%d  identical=%v\n",
			w.Selectivity, w.Arm, w.SegmentsRead, w.SegmentsPruned, w.ColdWallSec, w.WarmWallSec, w.MemWallSec, w.ColdBytesRead, w.Identical)
	}
	fmt.Printf("rows=%d segment_rows=%d gomaxprocs=%d cpus=%d\n", res.Rows, res.SegmentRows, res.GOMAXPROCS, res.CPUs)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_storage.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_storage.json")
	return nil
}

// compressionBench runs the compressed-columnar sweep and writes
// BENCH_compression.json: cold/warm scan+filter wall-clock on dictionary +
// run-length encoded segments versus the DisableCompression control at
// parallelism 1/4/8, per-encoding block counts and cold bytes read, the
// serial bytes-reduction and warm-throughput speedup headline ratios, and the
// bit-identical flag against the in-memory heap.
func compressionBench(rows int) error {
	res := experiments.RunCompressionBench(rows, 0, 3)
	for _, w := range res.Workloads {
		fmt.Printf("par=%d %-12s cold=%.3fs  warm=%.3fs  mem=%.3fs  bytes=%d  blocks=%d/%d/%d (dict/rle/plain)  rows/s=%.0f  identical=%v\n",
			w.Parallelism, w.Arm, w.ColdWallSec, w.WarmWallSec, w.MemWallSec,
			w.ColdBytesRead, w.BlocksDict, w.BlocksRLE, w.BlocksPlain,
			w.WarmRowsPerSec, w.Identical)
	}
	fmt.Printf("rows=%d segment_rows=%d gomaxprocs=%d cpus=%d  bytes_reduction=%.2fx  speedup=%.2fx (serial, warm)\n",
		res.Rows, res.SegmentRows, res.GOMAXPROCS, res.CPUs, res.BytesReduction, res.Speedup)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_compression.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_compression.json")
	return nil
}

// servingBench runs the concurrent serving sweep and writes
// BENCH_serving.json: qps and latency percentiles at 1/8/64/256 sessions for
// plain Exec, prepared statements without the plan cache, and prepared
// statements with it — plus the cache hit rate and the bit-identical flag.
func servingBench(rows, perSession int) error {
	res, err := servingbench.Run(rows, perSession, []int{1, 8, 64, 256})
	if err != nil {
		return err
	}
	for _, p := range res.Points {
		fmt.Printf("%-20s sessions=%-4d qps=%-9.0f p50=%.3fms  p99=%.3fms  hit_rate=%.1f%%  identical=%v\n",
			p.Mode, p.Sessions, p.QPS, p.P50Ms, p.P99Ms, p.HitRate*100, p.Identical)
	}
	fmt.Printf("gomaxprocs=%d cpus=%d\n", res.GOMAXPROCS, res.CPUs)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_serving.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_serving.json")
	return nil
}

// adaptiveBench runs the planning-vs-execution tradeoff of the greedy fast
// path over the short-statement corpus and writes BENCH_adaptive.json:
// per-arm planning and execution time, tier counts, the plan speedup and
// execution regression ratios, and the bit-identical flag.
func adaptiveBench(queries, rows int) error {
	res := experiments.RunAdaptiveBench(queries, rows, 5, 7)
	for _, a := range res.Arms {
		fmt.Printf("%-8s mean plan=%.1fµs  mean exec=%.1fµs  total est cost=%.0f  tiers=%v\n",
			a.Name, a.MeanPlanMicros, a.MeanExecMicros, a.TotalEstCost, a.Tiers)
	}
	fmt.Printf("plan speedup=%.2fx  exec regression=%.2fx  identical=%v  (gomaxprocs=%d cpus=%d)\n",
		res.PlanSpeedup, res.ExecRegression, res.IdenticalResults, res.GOMAXPROCS, res.NumCPU)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_adaptive.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_adaptive.json")
	return nil
}

// durabilityBench runs the crash-consistency cost sweep and writes
// BENCH_durability.json: cold/warm full-scan wall-clock with CRC32C
// verification on and off (warm overhead should be ~1.0x — the column cache
// pays verification once per block), recovery and scrub time at increasing
// segment counts, and the identical/clean flags.
func durabilityBench(rows int) error {
	res := experiments.RunDurabilityBench(rows, 0, 5, []int{8, 32, 128})
	for _, w := range res.Scans {
		fmt.Printf("scan %-10s cold=%.3fs  warm=%.3fs  rows=%d  identical=%v\n",
			w.Arm, w.ColdWallSec, w.WarmWallSec, w.OutputRows, w.Identical)
	}
	fmt.Printf("checksum overhead: cold=%.3fx warm=%.3fx\n", res.ColdOverhead, res.WarmOverhead)
	for _, r := range res.Recovery {
		fmt.Printf("recover segs=%-4d rows=%-7d recover=%.3fs  scrub=%.3fs  clean=%v\n",
			r.Segments, r.Rows, r.RecoverWallSec, r.ScrubWallSec, r.Clean)
	}
	fmt.Printf("rows=%d segment_rows=%d gomaxprocs=%d cpus=%d\n", res.Rows, res.SegmentRows, res.GOMAXPROCS, res.CPUs)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_durability.json", append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_durability.json")
	return nil
}

func main() {
	start := time.Now()
	if len(os.Args) > 1 && os.Args[1] == "adaptive" {
		queries, rows := 120, 20000
		if len(os.Args) > 2 {
			if _, err := fmt.Sscanf(os.Args[2], "%d", &queries); err != nil {
				fmt.Fprintf(os.Stderr, "bad query count %q: %v\n", os.Args[2], err)
				os.Exit(1)
			}
		}
		if len(os.Args) > 3 {
			if _, err := fmt.Sscanf(os.Args[3], "%d", &rows); err != nil {
				fmt.Fprintf(os.Stderr, "bad row count %q: %v\n", os.Args[3], err)
				os.Exit(1)
			}
		}
		if err := adaptiveBench(queries, rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("adaptive bench completed in %s\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "serving" {
		// Default table size keeps queries short (OLTP-style): the bench
		// measures dispatch overhead — parse + optimize versus re-bind — and
		// on long scans that overhead amortizes to nothing.
		rows, perSession := 2000, 60
		if len(os.Args) > 2 {
			if _, err := fmt.Sscanf(os.Args[2], "%d", &rows); err != nil {
				fmt.Fprintf(os.Stderr, "bad row count %q: %v\n", os.Args[2], err)
				os.Exit(1)
			}
		}
		if len(os.Args) > 3 {
			if _, err := fmt.Sscanf(os.Args[3], "%d", &perSession); err != nil {
				fmt.Fprintf(os.Stderr, "bad per-session count %q: %v\n", os.Args[3], err)
				os.Exit(1)
			}
		}
		if err := servingBench(rows, perSession); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("serving bench completed in %s\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "vectorized" {
		rows := 150000
		if len(os.Args) > 2 {
			if _, err := fmt.Sscanf(os.Args[2], "%d", &rows); err != nil {
				fmt.Fprintf(os.Stderr, "bad row count %q: %v\n", os.Args[2], err)
				os.Exit(1)
			}
		}
		if err := vectorizedBench(rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("vectorized bench completed in %s\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "durability" {
		rows := 200000
		if len(os.Args) > 2 {
			if _, err := fmt.Sscanf(os.Args[2], "%d", &rows); err != nil {
				fmt.Fprintf(os.Stderr, "bad row count %q: %v\n", os.Args[2], err)
				os.Exit(1)
			}
		}
		if err := durabilityBench(rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("durability bench completed in %s\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "compression" {
		rows := 200000
		if len(os.Args) > 2 {
			if _, err := fmt.Sscanf(os.Args[2], "%d", &rows); err != nil {
				fmt.Fprintf(os.Stderr, "bad row count %q: %v\n", os.Args[2], err)
				os.Exit(1)
			}
		}
		if err := compressionBench(rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("compression bench completed in %s\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "storage" {
		rows := 200000
		if len(os.Args) > 2 {
			if _, err := fmt.Sscanf(os.Args[2], "%d", &rows); err != nil {
				fmt.Fprintf(os.Stderr, "bad row count %q: %v\n", os.Args[2], err)
				os.Exit(1)
			}
		}
		if err := storageBench(rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("storage bench completed in %s\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "robustness" {
		if err := robustnessBench(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("robustness bench completed in %s\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		if err := analyzeBench(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("analyze bench completed in %s\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "parallel" {
		if err := parallelBench(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("parallel bench completed in %s\n", time.Since(start).Round(time.Millisecond))
		return
	}
	if len(os.Args) > 1 {
		for _, id := range os.Args[1:] {
			t, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (E1..E29)\n", id)
				os.Exit(1)
			}
			fmt.Println(t.Format())
		}
		return
	}
	for _, t := range experiments.All() {
		fmt.Println(t.Format())
	}
	fmt.Printf("all experiments completed in %s\n", time.Since(start).Round(time.Millisecond))
}
