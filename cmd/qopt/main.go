// Command qopt is an interactive SQL shell over the embedded engine. It
// reads one statement per line (or runs a single -e statement), supports
// EXPLAIN, and can preload demo datasets:
//
//	go run ./cmd/qopt -demo empdept
//	go run ./cmd/qopt -demo star -optimizer cascades -e "EXPLAIN SELECT ..."
//	echo "SELECT 1" | go run ./cmd/qopt
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	queryopt "repro"
)

func main() {
	optimizer := flag.String("optimizer", "systemr", "optimizer: systemr | starburst | cascades | reference")
	demo := flag.String("demo", "", "preload a demo dataset: empdept | star")
	stmt := flag.String("e", "", "execute one statement and exit")
	useMV := flag.Bool("matviews", true, "answer queries using materialized views")
	par := flag.Int("parallel", 1, "execute with this degree of parallelism (morsel-driven executor, §7.1)")
	analyzeAll := flag.Bool("analyze", false, "run every SELECT as EXPLAIN ANALYZE (per-operator runtime metrics)")
	memBudget := flag.Int64("membudget", 0, "per-query working-memory cap in bytes; operators spill to disk past it (0 = unlimited)")
	vectorize := flag.Bool("vectorize", true, "columnar batch execution with typed kernels (operators without kernels fall back to rows)")
	timeout := flag.Duration("timeout", 0, "per-statement deadline, e.g. 500ms or 10s (0 = none)")
	sessions := flag.Int("sessions", 1, "with -e: run the statement concurrently from this many sessions and report qps")
	planCache := flag.String("plancache", "on", "parameterized plan cache for prepared statements: on | off")
	greedyThreshold := flag.Int("greedy-threshold", 0, "adaptive greedy fast path: join blocks of up to this many relations skip DP (0 = off)")
	replanQError := flag.Float64("replan-qerror", 0, "re-optimize a statement after an analyzed run whose worst q-error exceeds this (0 = off; implies feedback patching)")
	storageDir := flag.String("storage-dir", "", "persist tables as columnar segments under this directory (empty = in-memory)")
	segmentRows := flag.Int("segment-rows", 0, "rows per sealed segment with -storage-dir (0 = default 4096)")
	compression := flag.String("compression", "on", "dictionary/run-length encoding when sealing segments: on | off")
	scrub := flag.Bool("scrub", false, "verify every checksum under -storage-dir and exit (0 = clean, 1 = corruption found)")
	flag.Parse()

	if *scrub {
		if *storageDir == "" {
			fmt.Fprintln(os.Stderr, "-scrub requires -storage-dir")
			os.Exit(1)
		}
		found, err := queryopt.ScrubDir(*storageDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scrub: %v\n", err)
			os.Exit(1)
		}
		for _, ce := range found {
			fmt.Printf("corrupt: table=%s segment=%d region=%s column=%d offset=%d: %s\n",
				ce.Table, ce.Segment, ce.Region, ce.Column, ce.Offset, ce.Detail)
		}
		if len(found) > 0 {
			fmt.Printf("%d corruptions found\n", len(found))
			os.Exit(1)
		}
		fmt.Println("scrub clean")
		return
	}

	opts := queryopt.Options{
		UseMaterializedViews: *useMV, Parallelism: *par, MemBudget: *memBudget,
		GreedyJoinThreshold:   *greedyThreshold,
		ReplanQErrorThreshold: *replanQError,
		StorageDir:            *storageDir,
		SegmentRows:           *segmentRows,
		FeedbackPatching:      *replanQError > 0,
	}
	if !*vectorize {
		opts.Vectorize = queryopt.VectorizeOff
	}
	switch strings.ToLower(*compression) {
	case "on", "":
	case "off":
		opts.DisableCompression = true
	default:
		fmt.Fprintf(os.Stderr, "unknown -compression %q (want on or off)\n", *compression)
		os.Exit(1)
	}
	switch strings.ToLower(*planCache) {
	case "on", "":
	case "off":
		opts.PlanCacheSize = -1
	default:
		fmt.Fprintf(os.Stderr, "unknown -plancache %q (want on or off)\n", *planCache)
		os.Exit(1)
	}
	switch strings.ToLower(*optimizer) {
	case "systemr", "system-r":
		opts.Optimizer = queryopt.SystemR
	case "starburst":
		opts.Optimizer = queryopt.Starburst
	case "cascades", "volcano":
		opts.Optimizer = queryopt.Cascades
	case "reference", "naive":
		opts.Optimizer = queryopt.Reference
	default:
		fmt.Fprintf(os.Stderr, "unknown optimizer %q\n", *optimizer)
		os.Exit(1)
	}
	eng := queryopt.New(opts)
	defer eng.Close()
	switch strings.ToLower(*demo) {
	case "":
	case "empdept":
		loadEmpDept(eng)
		fmt.Println("loaded demo: emp (10000 rows), dept (100 rows); try:")
		fmt.Println("  SELECT d.loc, COUNT(*) FROM emp e, dept d WHERE e.did = d.did GROUP BY d.loc;")
	case "star":
		loadStar(eng)
		fmt.Println("loaded demo: sales (50000 rows), dim_product (200), dim_store (50); try:")
		fmt.Println("  EXPLAIN SELECT s.city, SUM(f.amount) FROM sales f, dim_store s WHERE f.k2 = s.k GROUP BY s.city;")
	default:
		fmt.Fprintf(os.Stderr, "unknown demo %q\n", *demo)
		os.Exit(1)
	}

	if *stmt != "" {
		if *sessions > 1 {
			if !runConcurrent(eng, *stmt, *sessions, *timeout) {
				os.Exit(1)
			}
			return
		}
		if !runStmt(eng, *stmt, *analyzeAll, *timeout) {
			os.Exit(1)
		}
		return
	}
	if *sessions > 1 {
		fmt.Fprintln(os.Stderr, "-sessions requires -e (one statement run concurrently)")
		os.Exit(1)
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminalish()
	if interactive {
		fmt.Print("qopt> ")
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && line != "exit" && line != "quit" {
			runStmt(eng, line, *analyzeAll, *timeout)
		}
		if line == "exit" || line == "quit" {
			break
		}
		if interactive {
			fmt.Print("qopt> ")
		}
	}
}

// runConcurrent executes one statement from n concurrent sessions (10
// executions each) against the shared engine and reports throughput, latency
// percentiles and plan-cache effectiveness. SELECTs go through Prepare so the
// parameterized plan cache is exercised; other statements use plain Exec.
func runConcurrent(eng *queryopt.Engine, stmt string, n int, timeout time.Duration) bool {
	const perSession = 10
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var prep *queryopt.Stmt
	if strings.HasPrefix(strings.ToUpper(strings.TrimSpace(stmt)), "SELECT") {
		if p, err := eng.Prepare(stmt); err == nil && p.NumParams() == 0 {
			prep = p
		}
	}
	lats := make([][]float64, n)
	errs := make([]error, n)
	var rowCount int
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSession; i++ {
				t0 := time.Now()
				var res *queryopt.Result
				var err error
				if prep != nil {
					res, err = prep.ExecContext(ctx)
				} else {
					res, err = eng.ExecContext(ctx, stmt)
				}
				if err != nil {
					errs[g] = err
					return
				}
				lats[g] = append(lats[g], time.Since(t0).Seconds())
				if g == 0 && i == 0 {
					rowCount = len(res.Rows)
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return false
		}
	}
	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	pct := func(p float64) float64 { return all[int(p*float64(len(all)-1))] * 1000 }
	fmt.Printf("%d sessions x %d queries: %.0f qps, p50=%.3fms p99=%.3fms (%d rows each, %.3fs wall)\n",
		n, perSession, float64(len(all))/wall, pct(0.50), pct(0.99), rowCount, wall)
	st := eng.PlanCacheStats()
	if st.Hits+st.Misses > 0 {
		fmt.Printf("plan cache: %d hits, %d misses, %d entries\n", st.Hits, st.Misses, st.Entries)
	}
	return true
}

func isTerminalish() bool {
	fi, err := os.Stdin.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

func runStmt(eng *queryopt.Engine, stmt string, analyze bool, timeout time.Duration) bool {
	// With -analyze, plain SELECTs run as EXPLAIN ANALYZE: the query executes
	// and the output is its plan annotated with runtime metrics.
	if analyze && strings.HasPrefix(strings.ToUpper(strings.TrimSpace(stmt)), "SELECT") {
		stmt = "EXPLAIN ANALYZE " + stmt
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := eng.ExecContext(ctx, stmt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return false
	}
	if len(res.Columns) > 0 {
		fmt.Println(strings.Join(res.Columns, " | "))
	}
	const maxRows = 50
	for i, r := range res.Rows {
		if i == maxRows {
			fmt.Printf("... (%d more rows)\n", len(res.Rows)-maxRows)
			break
		}
		cells := make([]string, len(r))
		for j, v := range r {
			if v == nil {
				cells[j] = "NULL"
			} else {
				cells[j] = fmt.Sprint(v)
			}
		}
		fmt.Println(strings.Join(cells, " | "))
	}
	if len(res.Rows) > 0 || len(res.Columns) > 0 {
		fmt.Printf("(%d rows, %s", len(res.Rows), time.Since(start).Round(time.Microsecond))
		if res.Stats.PagesRead > 0 {
			fmt.Printf(", %d simulated pages", res.Stats.PagesRead)
		}
		if res.Stats.Spills > 0 {
			fmt.Printf(", %d spills (%d bytes)", res.Stats.Spills, res.Stats.SpillBytes)
		}
		if res.Stats.SegmentsRead > 0 || res.Stats.SegmentsPruned > 0 {
			fmt.Printf(", %d/%d segments read", res.Stats.SegmentsRead, res.Stats.SegmentsRead+res.Stats.SegmentsPruned)
		}
		if res.UsedMaterializedView != "" {
			fmt.Printf(", via matview %s", res.UsedMaterializedView)
		}
		fmt.Println(")")
	} else {
		fmt.Println("ok")
	}
	return true
}

func loadEmpDept(eng *queryopt.Engine) {
	eng.MustExec(`CREATE TABLE emp (eid INT NOT NULL, name VARCHAR, did INT, sal FLOAT, age INT, PRIMARY KEY (eid))`)
	eng.MustExec(`CREATE TABLE dept (did INT NOT NULL, dname VARCHAR, loc VARCHAR, budget FLOAT, PRIMARY KEY (did))`)
	eng.MustExec(`CREATE INDEX emp_did ON emp (did)`)
	rng := rand.New(rand.NewSource(1))
	locs := []string{"Denver", "Austin", "Boston", "Seattle"}
	var emp [][]any
	for i := 0; i < 10000; i++ {
		emp = append(emp, []any{i, fmt.Sprintf("emp%05d", i), rng.Intn(100),
			2000.0 + float64(rng.Intn(150000))/10, 20 + rng.Intn(45)})
	}
	must(eng.LoadRows("emp", emp))
	var dept [][]any
	for dID := 0; dID < 100; dID++ {
		dept = append(dept, []any{dID, fmt.Sprintf("dept%03d", dID), locs[dID%len(locs)], float64(50 + rng.Intn(950))})
	}
	must(eng.LoadRows("dept", dept))
	eng.MustExec("ANALYZE")
}

func loadStar(eng *queryopt.Engine) {
	eng.MustExec(`CREATE TABLE sales (k1 INT, k2 INT, qty INT, amount FLOAT)`)
	eng.MustExec(`CREATE TABLE dim_product (k INT NOT NULL, pname VARCHAR, category INT, PRIMARY KEY (k))`)
	eng.MustExec(`CREATE TABLE dim_store (k INT NOT NULL, city VARCHAR, region INT, PRIMARY KEY (k))`)
	eng.MustExec(`CREATE INDEX sales_k1 ON sales (k1)`)
	eng.MustExec(`CREATE INDEX sales_k2 ON sales (k2)`)
	rng := rand.New(rand.NewSource(2))
	var fact [][]any
	for i := 0; i < 50000; i++ {
		fact = append(fact, []any{rng.Intn(200), rng.Intn(50), 1 + rng.Intn(10), float64(rng.Intn(100000)) / 100})
	}
	must(eng.LoadRows("sales", fact))
	var products [][]any
	for k := 0; k < 200; k++ {
		products = append(products, []any{k, fmt.Sprintf("product%03d", k), k % 12})
	}
	must(eng.LoadRows("dim_product", products))
	cities := []string{"Denver", "Austin", "Boston", "Seattle"}
	var stores [][]any
	for k := 0; k < 50; k++ {
		stores = append(stores, []any{k, cities[k%len(cities)], k % 4})
	}
	must(eng.LoadRows("dim_store", stores))
	eng.MustExec("ANALYZE")
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
