package queryopt

// compression_test.go proves compressed columnar storage is invisible to
// query results and visible to the right meters: a compressed engine, an
// uncompressed engine (DisableCompression) and an in-memory engine must
// return bit-identical rows (floats compared as exact hex bits) at every
// parallelism degree, while the compressed engine reads fewer bytes, decodes
// dictionary/run-length blocks, and is costed from its smaller on-disk
// footprint.

import (
	"math/rand"
	"strings"
	"testing"
)

// TestCompressedStorageEquivalence: the random query corpus agrees between
// memory, compressed disk and uncompressed disk at parallelism 1, 4 and 8.
// Small segments force every query across many segment boundaries, and the
// schema's low-cardinality string column makes dictionary encoding engage.
func TestCompressedStorageEquivalence(t *testing.T) {
	const trials = 40
	for _, par := range []int{1, 4, 8} {
		for seed := int64(1); seed <= 2; seed++ {
			mem := randSchemaWith(t, Options{Optimizer: SystemR, Parallelism: par}, seed)
			comp := randSchemaWith(t, Options{
				Optimizer: SystemR, Parallelism: par,
				StorageDir: t.TempDir(), SegmentRows: 32,
			}, seed)
			plain := randSchemaWith(t, Options{
				Optimizer: SystemR, Parallelism: par,
				StorageDir: t.TempDir(), SegmentRows: 32, DisableCompression: true,
			}, seed)
			rng := rand.New(rand.NewSource(seed * 131))
			for trial := 0; trial < trials; trial++ {
				q := randQuery(rng)
				want, err := mem.Exec(q)
				if err != nil {
					t.Fatalf("par %d seed %d trial %d (mem): %v\nquery: %s", par, seed, trial, err, q)
				}
				base := canonRowsHex(want)
				for name, e := range map[string]*Engine{"compressed": comp, "uncompressed": plain} {
					got, err := e.Exec(q)
					if err != nil {
						t.Fatalf("par %d seed %d trial %d (%s): %v\nquery: %s", par, seed, trial, name, err, q)
					}
					rows := canonRowsHex(got)
					if strings.Join(rows, ";") != strings.Join(base, ";") {
						t.Fatalf("par %d seed %d trial %d: %s differs from memory\nquery: %s\nmem (%d rows): %.500v\n%s (%d rows): %.500v\nplan:\n%s",
							par, seed, trial, name, q, len(base), base, name, len(rows), rows, got.Plan)
					}
				}
			}
			mem.Close()
			comp.Close()
			plain.Close()
		}
	}
}

// lowCardEngine loads a table whose string column has 8 distinct long values
// and whose status column is sorted (long runs), the shape compression is
// built for. A 1-byte column cache keeps every read cold so BytesRead and the
// block counters meter real disk work on each query.
func lowCardEngine(t *testing.T, compress bool) *Engine {
	t.Helper()
	e := New(Options{
		StorageDir: t.TempDir(), SegmentRows: 512, SegmentCacheBytes: 1,
		DisableCompression: !compress,
	})
	e.MustExec(`CREATE TABLE ev (id INT NOT NULL, city VARCHAR, n INT)`)
	cities := []string{
		"springfield-north-industrial-park", "springfield-south-riverfront",
		"shelbyville-downtown-exchange", "shelbyville-harbor-terminal",
		"capital-city-financial-district", "capital-city-airport-corridor",
		"ogdenville-rail-junction", "north-haverbrook-monorail-plaza",
	}
	var rows [][]any
	for i := 0; i < 8000; i++ {
		rows = append(rows, []any{i, cities[i%len(cities)], i / 1000})
	}
	if err := e.LoadRows("ev", rows); err != nil {
		t.Fatal(err)
	}
	e.MustExec("ANALYZE")
	return e
}

// TestCompressionBlockCounters: a cold scan over the compressed engine
// decodes dictionary and run-length blocks and reads fewer real bytes than
// the uncompressed control; with DisableCompression every block is plain.
func TestCompressionBlockCounters(t *testing.T) {
	comp := lowCardEngine(t, true)
	defer comp.Close()
	plain := lowCardEngine(t, false)
	defer plain.Close()

	const q = "SELECT COUNT(*) FROM ev WHERE ev.city = 'shelbyville-downtown-exchange'"
	rc, err := comp.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := plain.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if rc.Rows[0][0] != rp.Rows[0][0] || rc.Rows[0][0].(int64) != 1000 {
		t.Fatalf("counts disagree: compressed=%v uncompressed=%v want 1000", rc.Rows[0][0], rp.Rows[0][0])
	}
	if rc.Stats.BlocksDict == 0 {
		t.Fatalf("compressed scan decoded no dictionary blocks: %+v", rc.Stats)
	}
	if rp.Stats.BlocksDict != 0 || rp.Stats.BlocksRLE != 0 {
		t.Fatalf("DisableCompression engine decoded encoded blocks: %+v", rp.Stats)
	}
	if rp.Stats.BlocksPlain == 0 {
		t.Fatalf("uncompressed scan decoded no plain blocks: %+v", rp.Stats)
	}
	if rc.Stats.BytesRead == 0 || rp.Stats.BytesRead == 0 {
		t.Fatalf("cold scans read no bytes: compressed=%d uncompressed=%d",
			rc.Stats.BytesRead, rp.Stats.BytesRead)
	}
	if rc.Stats.BytesRead >= rp.Stats.BytesRead {
		t.Fatalf("compressed scan read %d bytes, uncompressed %d — no reduction",
			rc.Stats.BytesRead, rp.Stats.BytesRead)
	}

	// The sorted n column compresses to runs.
	rc, err = comp.Exec("SELECT COUNT(*) FROM ev WHERE ev.n = 3")
	if err != nil {
		t.Fatal(err)
	}
	if rc.Stats.BlocksRLE == 0 {
		t.Fatalf("scan over the sorted column decoded no run-length blocks: %+v", rc.Stats)
	}
}

// TestDictColumnThroughSpill: a grouping query over the dictionary-encoded
// column under a starvation memory budget must spill and still agree with the
// unbudgeted in-memory engine — encoded vectors decode transparently on the
// row-at-a-time spill path.
func TestDictColumnThroughSpill(t *testing.T) {
	mem := New(Options{})
	defer mem.Close()
	// The query peaks at ~630KB unbudgeted; 256KB forces the aggregation to
	// spill while leaving each spill partition comfortable headroom over the
	// executor's 128KB per-partition floor grant (partition sizes wobble a few
	// hundred bytes with map iteration order — a tighter budget flakes).
	tight := New(Options{
		StorageDir: t.TempDir(), SegmentRows: 512, SegmentCacheBytes: 1,
		MemBudget: 256 << 10,
	})
	defer tight.Close()
	cities := []string{
		"springfield-north-industrial-park", "springfield-south-riverfront",
		"shelbyville-downtown-exchange", "shelbyville-harbor-terminal",
		"capital-city-financial-district", "capital-city-airport-corridor",
		"ogdenville-rail-junction", "north-haverbrook-monorail-plaza",
	}
	var rows [][]any
	for i := 0; i < 4000; i++ {
		rows = append(rows, []any{i, cities[i%len(cities)], i / 1000})
	}
	for _, e := range []*Engine{mem, tight} {
		e.MustExec(`CREATE TABLE ev (id INT NOT NULL, city VARCHAR, n INT)`)
		if err := e.LoadRows("ev", rows); err != nil {
			t.Fatal(err)
		}
		e.MustExec("ANALYZE")
	}

	const q = "SELECT ev.city, ev.id, COUNT(*), SUM(ev.n) FROM ev GROUP BY ev.city, ev.id"
	want, err := mem.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tight.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Spills == 0 {
		t.Fatalf("256KB budget did not spill — the test exercises nothing: %+v", got.Stats)
	}
	a, b := canonRowsHex(want), canonRowsHex(got)
	if strings.Join(a, ";") != strings.Join(b, ";") {
		t.Fatalf("spilled aggregation differs:\nwant %v\ngot  %v", a, b)
	}
}

// TestExplainAnalyzeShowsBlocks: the rendered plan carries the per-encoding
// block counters on compressed disk scans.
func TestExplainAnalyzeShowsBlocks(t *testing.T) {
	e := lowCardEngine(t, true)
	defer e.Close()
	res, err := e.Exec("EXPLAIN ANALYZE SELECT COUNT(*) FROM ev WHERE ev.city <> 'ogdenville-rail-junction'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Plan, "blocks_dict=") || !strings.Contains(res.Plan, "blocks_rle=") {
		t.Fatalf("no block-encoding metrics in plan:\n%s", res.Plan)
	}
	if !strings.Contains(res.Plan, "bytes_read=") {
		t.Fatalf("no bytes_read in plan:\n%s", res.Plan)
	}
}

// TestCompressionCostsEncodedBytes: the optimizer's scan cost comes from the
// encoded on-disk footprint — the same data costs less to scan on the
// compressed engine because its page count is real file bytes over PageSize.
func TestCompressionCostsEncodedBytes(t *testing.T) {
	comp := lowCardEngine(t, true)
	defer comp.Close()
	plain := lowCardEngine(t, false)
	defer plain.Close()
	const q = "SELECT COUNT(*) FROM ev"
	rc, err := comp.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := plain.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if rc.EstCost <= 0 || rp.EstCost <= 0 {
		t.Fatalf("missing cost estimates: compressed=%v uncompressed=%v", rc.EstCost, rp.EstCost)
	}
	if rc.EstCost >= rp.EstCost {
		t.Fatalf("compressed scan costed %v, uncompressed %v — encoded bytes not charged",
			rc.EstCost, rp.EstCost)
	}
}
