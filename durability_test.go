package queryopt

// durability_test.go proves the crash-consistency layer is invisible to
// query semantics: an engine that reopens a flushed StorageDir — taking the
// recovery path (manifest replay, footer verification, checksum-verified
// block decodes) — must answer the random query corpus bit-identically to an
// in-memory engine over the same seeded data, at every parallelism degree.

import (
	"math/rand"
	"strings"
	"testing"
)

// schemaDDL is the DDL of randSchemaWith, repeated here so a reopened engine
// can re-declare the catalog without re-inserting any rows (the manifest
// already owns the data).
var schemaDDL = []string{
	`CREATE TABLE r (pk INT NOT NULL, fk INT, a INT, s VARCHAR, f FLOAT, PRIMARY KEY (pk))`,
	`CREATE TABLE t (pk INT NOT NULL, fk INT, a INT, s VARCHAR, f FLOAT, PRIMARY KEY (pk))`,
	`CREATE TABLE u (pk INT NOT NULL, a INT, s VARCHAR, PRIMARY KEY (pk))`,
	`CREATE INDEX r_fk ON r (fk)`,
	`CREATE INDEX t_a ON t (a)`,
}

// TestRecoveredEngineEquivalence: load + Flush + Close a disk-backed engine,
// then open a brand-new engine over the same directory and run the corpus
// against it. Every result must match the in-memory engine exactly (floats
// as hex bits) at parallelism 1, 4 and 8, recovery must report a clean
// state, and a full scrub must find nothing.
func TestRecoveredEngineEquivalence(t *testing.T) {
	const trials = 25
	const seed = int64(5)
	for _, par := range []int{1, 4, 8} {
		mem := randSchemaWith(t, Options{Optimizer: SystemR, Parallelism: par}, seed)
		dir := t.TempDir()
		writer := randSchemaWith(t, Options{
			Optimizer: SystemR, Parallelism: par,
			StorageDir: dir, SegmentRows: 32,
		}, seed)
		if err := writer.Flush(); err != nil {
			t.Fatal(err)
		}
		writer.Close()

		e := New(Options{
			Optimizer: SystemR, Parallelism: par,
			StorageDir: dir, SegmentRows: 32,
		})
		for _, ddl := range schemaDDL {
			e.MustExec(ddl)
		}
		reports := e.RecoveryReports()
		if len(reports) != 3 {
			t.Fatalf("par %d: %d recovery reports, want 3", par, len(reports))
		}
		for _, rep := range reports {
			if !rep.Clean() {
				t.Fatalf("par %d: recovery of %s not clean: quarantined=%v truncated=%d corrupt=%v",
					par, rep.Table, rep.Quarantined, rep.TruncatedManifestBytes, rep.Corrupt)
			}
			if rep.Rows == 0 {
				t.Fatalf("par %d: recovered table %s has no rows", par, rep.Table)
			}
		}
		if found := e.Scrub(); len(found) != 0 {
			t.Fatalf("par %d: scrub after recovery: %v", par, found[0])
		}
		e.MustExec("ANALYZE")

		rng := rand.New(rand.NewSource(seed * 131))
		for trial := 0; trial < trials; trial++ {
			q := randQuery(rng)
			want, err := mem.Exec(q)
			if err != nil {
				t.Fatalf("par %d trial %d (mem): %v\nquery: %s", par, trial, err, q)
			}
			got, err := e.Exec(q)
			if err != nil {
				t.Fatalf("par %d trial %d (recovered): %v\nquery: %s", par, trial, err, q)
			}
			a, b := canonRowsHex(want), canonRowsHex(got)
			if strings.Join(a, ";") != strings.Join(b, ";") {
				t.Fatalf("par %d trial %d: recovered engine differs from memory\nquery: %s\nmem (%d rows): %.500v\nrecovered (%d rows): %.500v\nplan:\n%s",
					par, trial, q, len(a), a, len(b), b, got.Plan)
			}
		}
		mem.Close()
		e.Close()
	}
}

// TestEngineChecksumOptions: DisableChecksums serves the same rows, and a
// corruption that checksums would catch surfaces as ErrSegmentCorrupt only
// when verification is on.
func TestEngineChecksumOptions(t *testing.T) {
	dir := t.TempDir()
	writer := randSchemaWith(t, Options{Optimizer: SystemR, StorageDir: dir, SegmentRows: 32}, 9)
	if err := writer.Flush(); err != nil {
		t.Fatal(err)
	}
	writer.Close()
	for _, disable := range []bool{false, true} {
		e := New(Options{Optimizer: SystemR, StorageDir: dir, SegmentRows: 32,
			SegmentCacheBytes: 1, DisableChecksums: disable})
		for _, ddl := range schemaDDL {
			e.MustExec(ddl)
		}
		res, err := e.Exec("SELECT COUNT(*) FROM r x")
		if err != nil {
			t.Fatalf("disable=%v: %v", disable, err)
		}
		if res.Rows[0][0].(int64) != 180 {
			t.Fatalf("disable=%v: count = %v, want 180", disable, res.Rows[0][0])
		}
		e.Close()
	}
}
