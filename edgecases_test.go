package queryopt

// edgecases_test.go injects the degenerate shapes §5–§6's machinery must
// survive: empty tables, single rows, all-NULL columns, missing statistics,
// and adversarial mixes — run through every optimizer architecture.

import (
	"fmt"
	"testing"
)

func allKinds() []OptimizerKind {
	return []OptimizerKind{Reference, SystemR, Starburst, Cascades}
}

func TestEmptyTables(t *testing.T) {
	for _, kind := range allKinds() {
		e := New(Options{Optimizer: kind})
		e.MustExec("CREATE TABLE a (x INT NOT NULL, y VARCHAR, PRIMARY KEY (x))")
		e.MustExec("CREATE TABLE b (x INT NOT NULL, z FLOAT, PRIMARY KEY (x))")
		e.MustExec("ANALYZE")
		cases := []struct {
			sql  string
			rows int
		}{
			{"SELECT * FROM a", 0},
			{"SELECT a.y, b.z FROM a, b WHERE a.x = b.x", 0},
			{"SELECT a.y FROM a LEFT OUTER JOIN b ON a.x = b.x", 0},
			{"SELECT COUNT(*), SUM(b.z), MIN(a.y) FROM a, b WHERE a.x = b.x", 1},
			{"SELECT x, COUNT(*) FROM a GROUP BY x", 0},
			{"SELECT DISTINCT y FROM a", 0},
			{"SELECT y FROM a ORDER BY x DESC LIMIT 3", 0},
			{"SELECT y FROM a WHERE x IN (SELECT x FROM b)", 0},
			{"SELECT y FROM a WHERE EXISTS (SELECT 1 FROM b)", 0},
		}
		for _, c := range cases {
			res, err := e.Exec(c.sql)
			if err != nil {
				t.Fatalf("[%v] %s: %v", kind, c.sql, err)
			}
			if len(res.Rows) != c.rows {
				t.Errorf("[%v] %s: rows = %d, want %d", kind, c.sql, len(res.Rows), c.rows)
			}
		}
		// Scalar aggregates over nothing: COUNT 0, others NULL.
		res := e.MustExec("SELECT COUNT(*), SUM(x), AVG(x), MIN(y), MAX(y) FROM a")
		r := res.Rows[0]
		if r[0].(int64) != 0 || r[1] != nil || r[2] != nil || r[3] != nil || r[4] != nil {
			t.Errorf("[%v] empty scalar agg = %v", kind, r)
		}
	}
}

func TestSingleRowTables(t *testing.T) {
	for _, kind := range allKinds() {
		e := New(Options{Optimizer: kind})
		e.MustExec("CREATE TABLE s (x INT, y VARCHAR)")
		e.MustExec("INSERT INTO s VALUES (1, 'only')")
		e.MustExec("ANALYZE")
		res := e.MustExec("SELECT s1.y FROM s s1, s s2 WHERE s1.x = s2.x")
		if len(res.Rows) != 1 || res.Rows[0][0] != "only" {
			t.Errorf("[%v] self-join single row: %v", kind, res.Rows)
		}
		res = e.MustExec("SELECT x, COUNT(*) FROM s GROUP BY x HAVING COUNT(*) > 0")
		if len(res.Rows) != 1 {
			t.Errorf("[%v] single-row group: %v", kind, res.Rows)
		}
	}
}

func TestAllNullColumn(t *testing.T) {
	for _, kind := range allKinds() {
		e := New(Options{Optimizer: kind})
		e.MustExec("CREATE TABLE n (k INT, v INT)")
		rows := make([][]any, 50)
		for i := range rows {
			rows[i] = []any{i, nil}
		}
		if err := e.LoadRows("n", rows); err != nil {
			t.Fatal(err)
		}
		e.MustExec("ANALYZE")
		// Aggregates over all NULLs.
		res := e.MustExec("SELECT COUNT(v), SUM(v), AVG(v), MIN(v) FROM n")
		r := res.Rows[0]
		if r[0].(int64) != 0 || r[1] != nil || r[2] != nil || r[3] != nil {
			t.Errorf("[%v] all-NULL aggregates = %v", kind, r)
		}
		// Grouping on the NULL column: one group.
		res = e.MustExec("SELECT v, COUNT(*) FROM n GROUP BY v")
		if len(res.Rows) != 1 || res.Rows[0][0] != nil || res.Rows[0][1].(int64) != 50 {
			t.Errorf("[%v] NULL group = %v", kind, res.Rows)
		}
		// Equality on NULLs never matches (joins, filters, IN).
		for _, q := range []string{
			"SELECT k FROM n WHERE v = 5",
			"SELECT k FROM n WHERE v = v",
			"SELECT a.k FROM n a, n b WHERE a.v = b.v",
			"SELECT k FROM n WHERE v IN (1, 2, 3)",
		} {
			res := e.MustExec(q)
			if len(res.Rows) != 0 {
				t.Errorf("[%v] %s: NULL equality matched %d rows", kind, q, len(res.Rows))
			}
		}
		// IS NULL matches everything.
		if res := e.MustExec("SELECT k FROM n WHERE v IS NULL"); len(res.Rows) != 50 {
			t.Errorf("[%v] IS NULL rows = %d", kind, len(res.Rows))
		}
	}
}

func TestQueriesWithoutStatistics(t *testing.T) {
	// No ANALYZE at all: optimizers must still produce correct plans from
	// default assumptions.
	for _, kind := range allKinds() {
		e := New(Options{Optimizer: kind})
		e.MustExec("CREATE TABLE u (x INT NOT NULL, y INT, PRIMARY KEY (x))")
		var rows [][]any
		for i := 0; i < 300; i++ {
			rows = append(rows, []any{i, i % 7})
		}
		if err := e.LoadRows("u", rows); err != nil {
			t.Fatal(err)
		}
		res := e.MustExec("SELECT y, COUNT(*) FROM u WHERE x < 100 GROUP BY y")
		if len(res.Rows) != 7 {
			t.Errorf("[%v] stats-less query rows = %d, want 7", kind, len(res.Rows))
		}
	}
}

func TestWideDuplicateHeavyData(t *testing.T) {
	// Many duplicates stress histogram boundaries and group tables.
	for _, kind := range []OptimizerKind{SystemR, Cascades} {
		e := New(Options{Optimizer: kind})
		e.MustExec("CREATE TABLE dup (a INT, b VARCHAR)")
		var rows [][]any
		for i := 0; i < 2000; i++ {
			rows = append(rows, []any{7, "same"})
		}
		rows = append(rows, []any{8, "other"})
		if err := e.LoadRows("dup", rows); err != nil {
			t.Fatal(err)
		}
		e.MustExec("ANALYZE")
		res := e.MustExec("SELECT a, COUNT(*) FROM dup GROUP BY a ORDER BY a")
		if len(res.Rows) != 2 || res.Rows[0][1].(int64) != 2000 {
			t.Errorf("[%v] duplicate-heavy grouping: %v", kind, res.Rows)
		}
		res = e.MustExec("SELECT COUNT(*) FROM dup WHERE a = 7")
		if res.Rows[0][0].(int64) != 2000 {
			t.Errorf("[%v] eq on heavy value: %v", kind, res.Rows)
		}
	}
}

func TestDeepSubqueryNesting(t *testing.T) {
	e := New(Options{})
	e.MustExec("CREATE TABLE d (x INT)")
	e.MustExec("INSERT INTO d VALUES (1), (2), (3)")
	e.MustExec("ANALYZE")
	res := e.MustExec(`SELECT x FROM d WHERE x IN
		(SELECT x FROM d WHERE x IN
			(SELECT x FROM d WHERE x > 1))`)
	if len(res.Rows) != 2 {
		t.Errorf("nested IN rows = %d, want 2", len(res.Rows))
	}
}

func TestManyJoinsGreedyPath(t *testing.T) {
	// 10 relations exceed the DP cap (MaxRelations default 16? force lower).
	e := New(Options{})
	e.opts.SystemR.MaxRelations = 4 // force the greedy fallback
	var from, where string
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("j%d", i)
		e.MustExec("CREATE TABLE " + name + " (pk INT NOT NULL, fk INT, PRIMARY KEY (pk))")
		var rows [][]any
		for r := 0; r < 40; r++ {
			rows = append(rows, []any{r, (r + 1) % 40})
		}
		if err := e.LoadRows(name, rows); err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			from += ", "
			where += fmt.Sprintf(" AND j%d.fk = j%d.pk", i-1, i)
		}
		from += name
	}
	e.MustExec("ANALYZE")
	q := "SELECT COUNT(*) FROM " + from + " WHERE 1 = 1" + where
	res, err := e.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 40 {
		t.Errorf("chain of 8 joins count = %v, want 40", res.Rows[0][0])
	}
}
