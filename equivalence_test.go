package queryopt

// equivalence_test.go is the repository's strongest correctness net: it
// generates random queries over a seeded schema and checks that every
// optimizer architecture — System-R DP, Starburst, Cascades — returns
// exactly the multiset the unoptimized reference evaluator returns. Any
// unsound transformation, join algorithm, or enumeration bug shows up as a
// diff here.

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// randSchema builds one engine with seeded random data.
func randSchema(t *testing.T, kind OptimizerKind, seed int64) *Engine {
	t.Helper()
	return randSchemaWith(t, Options{Optimizer: kind}, seed)
}

// randSchemaWith is randSchema with full control over engine options (used by
// the disk-backed storage equivalence tests).
func randSchemaWith(t *testing.T, opts Options, seed int64) *Engine {
	t.Helper()
	e := New(opts)
	e.MustExec(`CREATE TABLE r (pk INT NOT NULL, fk INT, a INT, s VARCHAR, f FLOAT, PRIMARY KEY (pk))`)
	e.MustExec(`CREATE TABLE t (pk INT NOT NULL, fk INT, a INT, s VARCHAR, f FLOAT, PRIMARY KEY (pk))`)
	e.MustExec(`CREATE TABLE u (pk INT NOT NULL, a INT, s VARCHAR, PRIMARY KEY (pk))`)
	e.MustExec(`CREATE INDEX r_fk ON r (fk)`)
	e.MustExec(`CREATE INDEX t_a ON t (a)`)
	rng := rand.New(rand.NewSource(seed))
	strs := []string{"ant", "bee", "cat", "dog", "elk"}
	load := func(table string, n, fkDom int, withFK bool) {
		var rows [][]any
		for i := 0; i < n; i++ {
			row := []any{i}
			if withFK {
				if rng.Intn(10) == 0 {
					row = append(row, nil)
				} else {
					row = append(row, rng.Intn(fkDom))
				}
			}
			if rng.Intn(12) == 0 {
				row = append(row, nil)
			} else {
				row = append(row, rng.Intn(20))
			}
			row = append(row, strs[rng.Intn(len(strs))])
			if table != "u" {
				if rng.Intn(12) == 0 {
					row = append(row, nil)
				} else {
					row = append(row, float64(rng.Intn(1000))/4)
				}
			}
			rows = append(rows, row)
		}
		if err := e.LoadRows(table, rows); err != nil {
			t.Fatal(err)
		}
	}
	load("r", 180, 60, true)
	load("t", 60, 40, true)
	load("u", 40, 0, false)
	e.MustExec("ANALYZE")
	return e
}

// randQuery emits a random but valid SQL query.
func randQuery(rng *rand.Rand) string {
	cols := []string{"pk", "fk", "a", "s", "f"}
	uCols := []string{"pk", "a", "s"}
	cmp := []string{"=", "<>", "<", "<=", ">", ">="}

	pred := func(binding string, isU bool) string {
		cs := cols
		if isU {
			cs = uCols
		}
		col := binding + "." + cs[rng.Intn(len(cs))]
		switch rng.Intn(7) {
		case 0:
			return col + " IS NULL"
		case 1:
			return col + " IS NOT NULL"
		case 2:
			if strings.HasSuffix(col, ".s") {
				return col + " IN ('ant', 'cat')"
			}
			return col + fmt.Sprintf(" IN (%d, %d, %d)", rng.Intn(20), rng.Intn(20), rng.Intn(60))
		case 3:
			if strings.HasSuffix(col, ".s") {
				return col + " LIKE '%a%'"
			}
			return col + fmt.Sprintf(" BETWEEN %d AND %d", rng.Intn(10), 10+rng.Intn(50))
		default:
			if strings.HasSuffix(col, ".s") {
				return col + " " + cmp[rng.Intn(2)] + " 'cat'"
			}
			if strings.HasSuffix(col, ".f") {
				return col + " " + cmp[rng.Intn(len(cmp))] + fmt.Sprintf(" %d.5", rng.Intn(250))
			}
			return col + " " + cmp[rng.Intn(len(cmp))] + fmt.Sprintf(" %d", rng.Intn(60))
		}
	}

	nTables := 1 + rng.Intn(3)
	bindings := []string{"x"}
	from := "r x"
	var conds []string
	if nTables >= 2 {
		bindings = append(bindings, "y")
		switch rng.Intn(3) {
		case 0:
			from += ", t y"
			conds = append(conds, "x.fk = y.pk")
		case 1:
			from += " JOIN t y ON x.fk = y.pk"
		default:
			from += " LEFT OUTER JOIN t y ON x.fk = y.pk"
		}
	}
	if nTables >= 3 {
		bindings = append(bindings, "z")
		from += ", u z"
		conds = append(conds, "y.a = z.pk")
	}
	for i := 0; i < rng.Intn(3); i++ {
		b := bindings[rng.Intn(len(bindings))]
		conds = append(conds, pred(b, b == "z"))
	}
	// Occasionally a subquery predicate.
	if rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			conds = append(conds, "EXISTS (SELECT 1 FROM u uu WHERE uu.pk = x.a)")
		case 1:
			conds = append(conds, "x.a IN (SELECT zz.a FROM u zz WHERE zz.s = 'cat')")
		default:
			conds = append(conds, "x.f > (SELECT AVG(tt.f) FROM t tt WHERE tt.pk = x.fk)")
		}
	}

	var sb strings.Builder
	// Occasionally a UNION of two single-table arms.
	if nTables == 1 && rng.Intn(5) == 0 {
		all := ""
		if rng.Intn(2) == 0 {
			all = "ALL "
		}
		return fmt.Sprintf("SELECT x.a FROM r x WHERE %s UNION %sSELECT y.a FROM t y WHERE %s",
			pred("x", false), all, pred("y", false))
	}
	sb.WriteString("SELECT ")
	agg := rng.Intn(3) == 0
	if agg {
		sb.WriteString("x.a, COUNT(*), SUM(x.f), MIN(x.s)")
	} else {
		if rng.Intn(4) == 0 {
			sb.WriteString("DISTINCT ")
		}
		sb.WriteString("x.pk, x.s")
		if len(bindings) > 1 {
			sb.WriteString(", y.a")
		}
	}
	sb.WriteString(" FROM " + from)
	if len(conds) > 0 {
		sb.WriteString(" WHERE " + strings.Join(conds, " AND "))
	}
	if agg {
		sb.WriteString(" GROUP BY x.a")
		if rng.Intn(2) == 0 {
			sb.WriteString(" HAVING COUNT(*) >= 1")
		}
		sb.WriteString(" ORDER BY x.a")
	} else if rng.Intn(2) == 0 {
		sb.WriteString(" ORDER BY x.pk")
		if rng.Intn(3) == 0 {
			sb.WriteString(fmt.Sprintf(" LIMIT %d", 1+rng.Intn(20)))
		}
	}
	return sb.String()
}

func canonRows(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		var sb strings.Builder
		for j, v := range r {
			if j > 0 {
				sb.WriteByte('|')
			}
			switch t := v.(type) {
			case nil:
				sb.WriteString("NULL")
			case float64:
				fmt.Fprintf(&sb, "%.6g", t)
			default:
				fmt.Fprint(&sb, t)
			}
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}

func TestRandomQueryEquivalence(t *testing.T) {
	const trials = 60
	kinds := []OptimizerKind{Reference, SystemR, Starburst, Cascades}
	for seed := int64(1); seed <= 3; seed++ {
		engines := make([]*Engine, len(kinds))
		for i, k := range kinds {
			engines[i] = randSchema(t, k, seed)
		}
		rng := rand.New(rand.NewSource(seed * 1000))
		for trial := 0; trial < trials; trial++ {
			q := randQuery(rng)
			var baseline []string
			for i, k := range kinds {
				res, err := engines[i].Exec(q)
				if err != nil {
					t.Fatalf("seed %d trial %d [%v]: %v\nquery: %s", seed, trial, k, err, q)
				}
				got := canonRows(res)
				if i == 0 {
					baseline = got
					continue
				}
				if strings.Join(got, ";") != strings.Join(baseline, ";") {
					plan := res.Plan
					t.Fatalf("seed %d trial %d: %v disagrees with reference\nquery: %s\nref  (%d rows): %.500v\ngot  (%d rows): %.500v\nplan:\n%s",
						seed, trial, k, q, len(baseline), baseline, len(got), got, plan)
				}
			}
		}
	}
}

// TestRandomQueriesOrderByLimitPrefix checks ordered prefixes precisely:
// with ORDER BY x.pk (unique), row order must match exactly, not just as a
// multiset.
func TestRandomOrderedQueries(t *testing.T) {
	kinds := []OptimizerKind{Reference, SystemR, Starburst, Cascades}
	engines := make([]*Engine, len(kinds))
	for i, k := range kinds {
		engines[i] = randSchema(t, k, 42)
	}
	queries := []string{
		"SELECT x.pk FROM r x WHERE x.a > 5 ORDER BY x.pk LIMIT 7",
		"SELECT x.pk, y.pk FROM r x JOIN t y ON x.fk = y.pk ORDER BY x.pk DESC LIMIT 5",
		"SELECT x.a, COUNT(*) FROM r x GROUP BY x.a ORDER BY x.a",
	}
	for _, q := range queries {
		var baseline []string
		for i, k := range kinds {
			res, err := engines[i].Exec(q)
			if err != nil {
				t.Fatalf("[%v] %s: %v", k, q, err)
			}
			var rows []string
			for _, r := range res.Rows {
				rows = append(rows, fmt.Sprint(r...))
			}
			if i == 0 {
				baseline = rows
				continue
			}
			if strings.Join(rows, ";") != strings.Join(baseline, ";") {
				t.Errorf("[%v] %s: ordered rows differ\nref: %v\ngot: %v", k, q, baseline, rows)
			}
		}
	}
}
