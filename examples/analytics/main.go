// Command analytics runs a decision-support (OLAP) scenario on a star
// schema — the workload the paper's §4.1.1 discusses. It shows eager
// aggregation (group-by pushdown) at work and compares the three optimizer
// architectures on the same query.
package main

import (
	"fmt"
	"math/rand"

	queryopt "repro"
)

func buildStar(opts queryopt.Options) *queryopt.Engine {
	eng := queryopt.New(opts)
	eng.MustExec(`CREATE TABLE sales (k1 INT, k2 INT, qty INT, amount FLOAT)`)
	eng.MustExec(`CREATE TABLE dim_product (k INT NOT NULL, pname VARCHAR, category INT, PRIMARY KEY (k))`)
	eng.MustExec(`CREATE TABLE dim_store (k INT NOT NULL, city VARCHAR, region INT, PRIMARY KEY (k))`)
	eng.MustExec(`CREATE INDEX sales_k1 ON sales (k1)`)
	eng.MustExec(`CREATE INDEX sales_k2 ON sales (k2)`)

	rng := rand.New(rand.NewSource(42))
	var fact [][]any
	for i := 0; i < 40000; i++ {
		fact = append(fact, []any{rng.Intn(200), rng.Intn(50), 1 + rng.Intn(10), float64(rng.Intn(100000)) / 100})
	}
	must(eng.LoadRows("sales", fact))
	var products [][]any
	for k := 0; k < 200; k++ {
		products = append(products, []any{k, fmt.Sprintf("product%03d", k), k % 12})
	}
	must(eng.LoadRows("dim_product", products))
	var stores [][]any
	cities := []string{"Denver", "Austin", "Boston", "Seattle"}
	for k := 0; k < 50; k++ {
		stores = append(stores, []any{k, cities[k%len(cities)], k % 4})
	}
	must(eng.LoadRows("dim_store", stores))
	eng.MustExec("ANALYZE")
	return eng
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func main() {
	query := `SELECT s.city, SUM(f.amount), COUNT(*)
	          FROM sales f, dim_store s
	          WHERE f.k2 = s.k
	          GROUP BY s.city ORDER BY s.city`

	fmt.Println("== the decision-support query ==")
	fmt.Println(query)

	fmt.Println("\n== optimizer architecture comparison ==")
	for _, kind := range []queryopt.OptimizerKind{queryopt.SystemR, queryopt.Starburst, queryopt.Cascades} {
		eng := buildStar(queryopt.Options{Optimizer: kind})
		res, err := eng.Exec(query)
		must(err)
		fmt.Printf("--- %v: est cost %.1f, pages %d, rows processed %d\n",
			kind, res.EstCost, res.Stats.PagesRead, res.Stats.RowsProcessed)
		fmt.Println(res.Plan)
	}

	fmt.Println("== eager aggregation (group-by pushdown, Fig. 4) ==")
	with := buildStar(queryopt.Options{})
	without := buildStar(queryopt.Options{DisableRewrites: true})
	rw, err := with.Exec(query)
	must(err)
	ro, err := without.Exec(query)
	must(err)
	fmt.Printf("%-28s %15s %15s\n", "", "rows processed", "hash operations")
	fmt.Printf("%-28s %15d %15d\n", "with eager aggregation", rw.Stats.RowsProcessed, rw.Stats.HashOps)
	fmt.Printf("%-28s %15d %15d\n", "without (plain plan)", ro.Stats.RowsProcessed, ro.Stats.HashOps)

	fmt.Println("\n== results agree ==")
	fmt.Printf("%-10s %14s %8s\n", "city", "sum(amount)", "count")
	for _, r := range rw.Rows {
		fmt.Printf("%-10s %14.2f %8d\n", r[0], r[1], r[2])
	}
	fmt.Println("\n== star query over two dimensions with selective filters ==")
	eng := buildStar(queryopt.Options{})
	star := `SELECT p.pname, s.city, SUM(f.amount)
	         FROM sales f, dim_product p, dim_store s
	         WHERE f.k1 = p.k AND f.k2 = s.k AND p.category = 3 AND s.region = 1
	         GROUP BY p.pname, s.city`
	plan, err := eng.Explain(star)
	must(err)
	fmt.Println(plan)
	res, err := eng.Exec(star)
	must(err)
	fmt.Printf("%d result groups, %d simulated pages read\n", len(res.Rows), res.Stats.PagesRead)

	fmt.Println("\n== CUBE: subtotals at every grouping level (§7.4, [24]) ==")
	cube, err := eng.Exec(`SELECT s.city, p.category, SUM(f.amount)
	        FROM sales f, dim_product p, dim_store s
	        WHERE f.k1 = p.k AND f.k2 = s.k AND p.category < 2 AND s.region < 2
	        GROUP BY CUBE (s.city, p.category)`)
	must(err)
	fmt.Printf("%-10s %-10s %14s\n", "city", "category", "sum(amount)")
	for _, r := range cube.Rows {
		city, cat := "ALL", "ALL"
		if r[0] != nil {
			city = fmt.Sprint(r[0])
		}
		if r[1] != nil {
			cat = fmt.Sprint(r[1])
		}
		fmt.Printf("%-10s %-10s %14.2f\n", city, cat, r[2])
	}
}
