// Command dynamicplans demonstrates parametric query optimization (§7.4 of
// the paper, the Graefe/Ward and Ioannidis et al. direction): the optimal
// plan for `did <= $1` changes with the parameter, a plan diagram captures
// the crossover, and a plan frozen for the wrong parameter pays a large
// penalty that choose-plan dispatch avoids.
package main

import (
	"fmt"

	"repro/internal/datum"
	"repro/internal/parametric"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/workload"
)

func main() {
	fmt.Println("building Emp (100,000 rows, 2,000 departments) ...")
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 100000, Depts: 2000})
	db.Analyze(stats.AnalyzeOptions{Buckets: 40})

	template := "SELECT name FROM Emp WHERE did <= $1"
	var candidates []datum.D
	for _, v := range []int64{1, 5, 20, 100, 400, 1000, 1999} {
		candidates = append(candidates, datum.NewInt(v))
	}
	dp, err := parametric.Prepare(db, template, candidates, systemr.DefaultOptions())
	if err != nil {
		panic(err)
	}

	fmt.Printf("\n== plan diagram for %q ==\n", template)
	for _, r := range dp.Ranges {
		fmt.Printf("  $1 in [%s, %s]  (est cost %8.1f at probe %s):  %s\n",
			r.Lo, r.Hi, r.EstCost, r.Probe, r.Signature)
	}

	fmt.Println("\n== static plan (frozen at $1 = 1) vs dynamic dispatch ==")
	rep := datum.NewInt(1)
	fmt.Printf("%-12s %-16s %-16s %s\n", "$1", "dynamic pages", "static pages", "regret")
	for _, v := range []int64{1, 20, 400, 1999} {
		val := datum.NewInt(v)
		_, dyn, err := dp.Execute(db, val)
		if err != nil {
			panic(err)
		}
		_, static, err := dp.ExecuteStatic(db, rep, val)
		if err != nil {
			panic(err)
		}
		regret := float64(static.PagesRead) / float64(dyn.PagesRead)
		fmt.Printf("%-12d %-16d %-16d %.1fx\n", v, dyn.PagesRead, static.PagesRead, regret)
	}
	fmt.Println("\nthe frozen plan keeps probing the secondary index long after a scan is cheaper —")
	fmt.Println("exactly the risk §7.4 says dynamic plans were invented to avoid.")
}
