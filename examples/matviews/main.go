// Command matviews demonstrates answering queries using materialized views
// (§7.3): exact matches, rollups over coarser groupings, and the cost-based
// choice between base tables and views.
package main

import (
	"fmt"
	"math/rand"

	queryopt "repro"
)

func main() {
	eng := queryopt.New(queryopt.Options{UseMaterializedViews: true})
	eng.MustExec(`CREATE TABLE sales (day INT, product INT, region INT, amount FLOAT)`)
	rng := rand.New(rand.NewSource(11))
	var rows [][]any
	for i := 0; i < 60000; i++ {
		rows = append(rows, []any{rng.Intn(365), rng.Intn(40), rng.Intn(8), float64(rng.Intn(50000)) / 100})
	}
	if err := eng.LoadRows("sales", rows); err != nil {
		panic(err)
	}
	eng.MustExec("ANALYZE")

	fmt.Println("== create a daily-by-product summary ==")
	eng.MustExec(`CREATE MATERIALIZED VIEW daily_product AS
		SELECT s.day AS day, s.product AS product, COUNT(*) AS cnt, SUM(s.amount) AS amt
		FROM sales s GROUP BY s.day, s.product`)
	eng.MustExec("ANALYZE daily_product")

	queries := []struct {
		label string
		sql   string
	}{
		{"exact grouping match", `SELECT s.day, s.product, COUNT(*), SUM(s.amount) FROM sales s GROUP BY s.day, s.product`},
		{"rollup to day", `SELECT s.day, COUNT(*), SUM(s.amount) FROM sales s GROUP BY s.day`},
		{"rollup to product", `SELECT s.product, SUM(s.amount) FROM sales s GROUP BY s.product`},
		{"not answerable (region)", `SELECT s.region, SUM(s.amount) FROM sales s GROUP BY s.region`},
	}
	for _, q := range queries {
		res, err := eng.Exec(q.sql)
		if err != nil {
			panic(err)
		}
		used := res.UsedMaterializedView
		if used == "" {
			used = "(base table)"
		}
		fmt.Printf("%-26s -> answered from %-15s rows=%-6d pages=%-6d est cost=%.1f\n",
			q.label, used, len(res.Rows), res.Stats.PagesRead, res.EstCost)
	}

	fmt.Println("\n== the same rollup without the view ==")
	plain := queryopt.New(queryopt.Options{})
	plain.MustExec(`CREATE TABLE sales (day INT, product INT, region INT, amount FLOAT)`)
	if err := plain.LoadRows("sales", rows); err != nil {
		panic(err)
	}
	plain.MustExec("ANALYZE")
	res, err := plain.Exec(`SELECT s.day, COUNT(*), SUM(s.amount) FROM sales s GROUP BY s.day`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("base-table rollup: pages=%d, est cost=%.1f\n", res.Stats.PagesRead, res.EstCost)
	withView, err := eng.Exec(`SELECT s.day, COUNT(*), SUM(s.amount) FROM sales s GROUP BY s.day`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("view-based rollup: pages=%d, est cost=%.1f  (%.0fx fewer pages)\n",
		withView.Stats.PagesRead, withView.EstCost,
		float64(res.Stats.PagesRead)/float64(max64(withView.Stats.PagesRead, 1)))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
