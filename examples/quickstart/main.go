// Command quickstart is the smallest end-to-end tour of the engine: define a
// schema, load rows, collect statistics, and watch the optimizer pick
// different access paths as predicates change.
package main

import (
	"fmt"

	queryopt "repro"
)

func main() {
	eng := queryopt.New(queryopt.Options{})

	fmt.Println("== schema ==")
	eng.MustExec(`CREATE TABLE emp (
		eid INT NOT NULL, name VARCHAR, did INT, sal FLOAT, age INT,
		PRIMARY KEY (eid))`)
	eng.MustExec(`CREATE TABLE dept (did INT NOT NULL, dname VARCHAR, loc VARCHAR, PRIMARY KEY (did))`)
	eng.MustExec(`CREATE INDEX emp_did ON emp (did)`)

	// Load a few thousand employees across 20 departments.
	var rows [][]any
	locs := []string{"Denver", "Austin", "Boston"}
	for i := 0; i < 5000; i++ {
		rows = append(rows, []any{i, fmt.Sprintf("emp%04d", i), i % 20, 1000.0 + float64(i%997), 20 + i%45})
	}
	if err := eng.LoadRows("emp", rows); err != nil {
		panic(err)
	}
	var depts [][]any
	for d := 0; d < 20; d++ {
		depts = append(depts, []any{d, fmt.Sprintf("dept%02d", d), locs[d%len(locs)]})
	}
	if err := eng.LoadRows("dept", depts); err != nil {
		panic(err)
	}
	eng.MustExec(`ANALYZE`)

	fmt.Println("\n== a selective point lookup uses the primary index ==")
	mustShowPlan(eng, `SELECT name FROM emp WHERE eid = 4321`)

	fmt.Println("== an unselective predicate scans sequentially ==")
	mustShowPlan(eng, `SELECT name FROM emp WHERE sal > 0`)

	fmt.Println("== a join with grouping ==")
	q := `SELECT d.loc, COUNT(*), AVG(e.sal)
	      FROM emp e, dept d
	      WHERE e.did = d.did AND e.age < 30
	      GROUP BY d.loc ORDER BY d.loc`
	mustShowPlan(eng, q)
	res, err := eng.Exec(q)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-10s %8s %12s\n", "loc", "count", "avg(sal)")
	for _, r := range res.Rows {
		fmt.Printf("%-10s %8d %12.2f\n", r[0], r[1], r[2])
	}
	fmt.Printf("\nmeasured: %d simulated pages read, %d rows processed\n",
		res.Stats.PagesRead, res.Stats.RowsProcessed)
	fmt.Printf("estimated: %.0f rows, cost %.1f\n", res.EstRows, res.EstCost)
}

func mustShowPlan(eng *queryopt.Engine, q string) {
	plan, err := eng.Explain(q)
	if err != nil {
		panic(err)
	}
	fmt.Println(q)
	fmt.Println(plan)
}
