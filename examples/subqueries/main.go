// Command subqueries demonstrates §4.2 of the paper: nested SQL queries
// executed with tuple-iteration semantics versus the unnested (merged)
// forms — semijoins for IN/EXISTS, and the outerjoin + group-by form for
// correlated aggregates, including the COUNT bug the paper warns about.
package main

import (
	"fmt"
	"math/rand"

	queryopt "repro"
)

func build(opts queryopt.Options) *queryopt.Engine {
	eng := queryopt.New(opts)
	eng.MustExec(`CREATE TABLE emp (eid INT NOT NULL, name VARCHAR, did INT, sal FLOAT, PRIMARY KEY (eid))`)
	eng.MustExec(`CREATE TABLE dept (did INT NOT NULL, dname VARCHAR, loc VARCHAR, num_machines INT, PRIMARY KEY (did))`)
	eng.MustExec(`CREATE INDEX emp_did ON emp (did)`)
	rng := rand.New(rand.NewSource(7))
	var emps [][]any
	for i := 0; i < 3000; i++ {
		did := any(rng.Intn(60))
		if i%50 == 0 {
			did = nil
		}
		emps = append(emps, []any{i, fmt.Sprintf("e%04d", i), did, 1000 + float64(rng.Intn(9000))})
	}
	must(eng.LoadRows("emp", emps))
	locs := []string{"Denver", "Austin"}
	var depts [][]any
	for d := 0; d < 80; d++ { // departments 60..79 have no employees
		depts = append(depts, []any{d, fmt.Sprintf("dept%02d", d), locs[d%2], rng.Intn(60)})
	}
	must(eng.LoadRows("dept", depts))
	eng.MustExec("ANALYZE")
	return eng
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func run(label string, eng *queryopt.Engine, q string) *queryopt.Result {
	res, err := eng.Exec(q)
	must(err)
	fmt.Printf("%-22s rows=%-5d subquery-evals=%-6d rows-processed=%-8d pages=%d\n",
		label, len(res.Rows), res.Stats.SubqueryEvals, res.Stats.RowsProcessed, res.Stats.PagesRead)
	return res
}

func main() {
	nested := build(queryopt.Options{DisableRewrites: true})
	merged := build(queryopt.Options{})

	fmt.Println("== EXISTS: departments with a high earner (§4.2.2) ==")
	q := `SELECT d.dname FROM dept d WHERE EXISTS
	        (SELECT 1 FROM emp e WHERE e.did = d.did AND e.sal > 9500)`
	a := run("tuple iteration", nested, q)
	b := run("unnested (semijoin)", merged, q)
	check(len(a.Rows) == len(b.Rows))

	fmt.Println("\n== correlated IN with an outer reference ==")
	q = `SELECT e.name FROM emp e WHERE e.did IN
	        (SELECT d.did FROM dept d WHERE d.loc = 'Denver' AND e.sal > 5000)`
	a = run("tuple iteration", nested, q)
	b = run("unnested (semijoin)", merged, q)
	check(len(a.Rows) == len(b.Rows))

	fmt.Println("\n== correlated COUNT: the paper's duplicate/NULL trap ==")
	// Departments with more machines than employees. Departments with ZERO
	// employees must appear — a naive join-based flattening loses them; the
	// correct merged form is a LEFT OUTER JOIN + GROUP BY.
	q = `SELECT d.dname FROM dept d WHERE d.num_machines >=
	        (SELECT COUNT(*) FROM emp e WHERE e.did = d.did)`
	a = run("tuple iteration", nested, q)
	b = run("outerjoin + group-by", merged, q)
	check(len(a.Rows) == len(b.Rows))
	fmt.Println("\nplan for the merged form:")
	plan, err := merged.Explain(q)
	must(err)
	fmt.Println(plan)

	fmt.Println("== NOT IN stays nested when NULLs make the antijoin unsafe ==")
	q = `SELECT d.dname FROM dept d WHERE d.did NOT IN (SELECT e.did FROM emp e)`
	a = run("tuple iteration", nested, q)
	b = run("merged engine", merged, q)
	fmt.Printf("both return %d rows (NULL did poisons NOT IN, so the result is empty)\n",
		len(b.Rows))
	check(len(a.Rows) == len(b.Rows))
}

func check(ok bool) {
	if !ok {
		panic("nested and unnested forms disagree — semantics bug")
	}
	fmt.Println("results agree ✓")
}
