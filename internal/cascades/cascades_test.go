package cascades

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/workload"
)

func buildQuery(t *testing.T, db *workload.DB, q string) *logical.Query {
	t.Helper()
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	query, err := logical.NewBuilder(db.Cat).Build(sel)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	logical.NormalizeQuery(query, logical.DefaultNormalize())
	logical.PruneColumns(query)
	return query
}

func rowStrings(res *exec.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		var sb strings.Builder
		for j, d := range r {
			if j > 0 {
				sb.WriteString("|")
			}
			if !d.IsNull() && d.Kind() == datum.KindFloat {
				fmt.Fprintf(&sb, "%.6g", d.Float())
			} else {
				sb.WriteString(d.String())
			}
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}

func verifyPlan(t *testing.T, db *workload.DB, q *logical.Query, plan physical.Plan) {
	t.Helper()
	ctx := exec.NewCtx(db.Store, q.Meta)
	got, err := exec.RunPlanQuery(plan, q, ctx)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, physical.Format(plan, q.Meta))
	}
	ref := exec.NewCtx(db.Store, q.Meta)
	want, err := ref.RunQuery(q)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	g, w := rowStrings(got), rowStrings(want)
	if strings.Join(g, ";") != strings.Join(w, ";") {
		t.Fatalf("results disagree\nplan: %.300v\nref:  %.300v\n%s", g, w, physical.Format(plan, q.Meta))
	}
}

func TestCascadesBasicQueries(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 2000, Depts: 40})
	db.Analyze(stats.AnalyzeOptions{})
	queries := []string{
		"SELECT name FROM Emp WHERE eid = 7",
		"SELECT name FROM Emp WHERE sal > 10000 ORDER BY sal DESC LIMIT 5",
		"SELECT e.name, d.dname FROM Emp e, Dept d WHERE e.did = d.did AND d.loc = 'Denver'",
		"SELECT d.loc, COUNT(*) FROM Emp e, Dept d WHERE e.did = d.did GROUP BY d.loc",
		"SELECT DISTINCT loc FROM Dept",
		"SELECT e1.name FROM Emp e1, Emp e2 WHERE e1.did = e2.did AND e2.eid = 3",
		"SELECT COUNT(*) FROM Emp",
	}
	for _, qs := range queries {
		q := buildQuery(t, db, qs)
		o := New(stats.NewEstimator(q.Meta), cost.DefaultModel(), DefaultOptions())
		plan, err := o.Optimize(q)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		verifyPlan(t, db, q, plan)
	}
}

func TestCascadesExploresJoinOrders(t *testing.T) {
	db := workload.Chain(workload.ChainConfig{Tables: 4, RowsPer: []int{2000, 100, 1000, 50}, Seed: 3})
	db.Analyze(stats.AnalyzeOptions{})
	q := buildQuery(t, db, workload.ChainQuery(4))
	o := New(stats.NewEstimator(q.Meta), cost.DefaultModel(), DefaultOptions())
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	if o.Metrics.RulesFired == 0 {
		t.Error("exploration should fire transformation rules")
	}
	if o.memo.DedupHits == 0 {
		t.Error("memoization should deduplicate re-derived expressions")
	}
	verifyPlan(t, db, q, plan)
}

func TestCascadesMatchesSystemRPlanQuality(t *testing.T) {
	db := workload.Chain(workload.ChainConfig{Tables: 5, RowsPer: []int{3000, 400, 1500, 100, 600}, Seed: 5})
	db.Analyze(stats.AnalyzeOptions{})
	q := buildQuery(t, db, workload.ChainQuery(5))

	casc := New(stats.NewEstimator(q.Meta), cost.DefaultModel(), DefaultOptions())
	cPlan, err := casc.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Bushy System-R search covers Cascades' space (commute+assoc generate
	// bushy shapes too).
	sys := systemr.New(stats.NewEstimator(q.Meta), cost.DefaultModel(),
		systemr.Options{Bushy: true, InterestingOrders: true, MaxRelations: 16})
	sPlan, err := sys.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	_, cc := cPlan.Estimate()
	_, sc := sPlan.Estimate()
	ratio := cc / sc
	if ratio > 1.5 || ratio < 1/1.5 {
		t.Errorf("plan quality diverges: cascades %v vs systemr %v\ncascades:\n%s\nsystemr:\n%s",
			cc, sc, physical.Format(cPlan, q.Meta), physical.Format(sPlan, q.Meta))
	}
	verifyPlan(t, db, q, cPlan)
}

func TestCascadesPruningReducesWork(t *testing.T) {
	db := workload.Chain(workload.ChainConfig{Tables: 5, RowsPer: []int{1000, 1000, 1000, 1000, 1000}, Seed: 7})
	db.Analyze(stats.AnalyzeOptions{})
	q := buildQuery(t, db, workload.ChainQuery(5))

	pruned := New(stats.NewEstimator(q.Meta), cost.DefaultModel(), Options{Pruning: true, MaxExprs: 200000})
	if _, err := pruned.Optimize(q); err != nil {
		t.Fatal(err)
	}
	full := New(stats.NewEstimator(q.Meta), cost.DefaultModel(), Options{Pruning: false, MaxExprs: 200000})
	if _, err := full.Optimize(q); err != nil {
		t.Fatal(err)
	}
	if pruned.Metrics.PlansCosted > full.Metrics.PlansCosted {
		t.Errorf("pruning should not increase plans costed: %d vs %d",
			pruned.Metrics.PlansCosted, full.Metrics.PlansCosted)
	}
}

func TestCascadesMemoBudget(t *testing.T) {
	db := workload.Chain(workload.ChainConfig{Tables: 6, RowsPer: []int{100, 100, 100, 100, 100, 100}, Seed: 9})
	db.Analyze(stats.AnalyzeOptions{})
	q := buildQuery(t, db, workload.ChainQuery(6))
	o := New(stats.NewEstimator(q.Meta), cost.DefaultModel(), Options{Pruning: true, MaxExprs: 40})
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	// Budget-capped exploration must still produce a correct plan.
	verifyPlan(t, db, q, plan)
	if o.memo.NumExprs() > 200 {
		t.Errorf("memo budget ignored: %d exprs", o.memo.NumExprs())
	}
}

func TestCascadesOuterAndAggregates(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 1500, Depts: 30})
	db.Analyze(stats.AnalyzeOptions{})
	for _, qs := range []string{
		"SELECT d.dname, COUNT(*) FROM Dept d LEFT OUTER JOIN Emp e ON d.did = e.did GROUP BY d.dname",
		"SELECT did, AVG(sal) FROM Emp GROUP BY did ORDER BY did",
	} {
		q := buildQuery(t, db, qs)
		o := New(stats.NewEstimator(q.Meta), cost.DefaultModel(), DefaultOptions())
		plan, err := o.Optimize(q)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		verifyPlan(t, db, q, plan)
	}
}

func TestMemoDedup(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 100, Depts: 10})
	db.Analyze(stats.AnalyzeOptions{})
	q := buildQuery(t, db, "SELECT e.name FROM Emp e, Dept d WHERE e.did = d.did")
	m := NewMemo()
	g1, err := m.Build(q.Root)
	if err != nil {
		t.Fatal(err)
	}
	n := m.NumGroups()
	g2, err := m.Build(q.Root)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 || m.NumGroups() != n {
		t.Error("identical trees must intern to the same groups")
	}
	if m.DedupHits == 0 {
		t.Error("dedup hits should be counted")
	}
}

func TestCascadesStreamGroupByOnIndex(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 5000, Depts: 50})
	db.Analyze(stats.AnalyzeOptions{})
	q := buildQuery(t, db, "SELECT eid, COUNT(*) FROM Emp GROUP BY eid")
	o := New(stats.NewEstimator(q.Meta), cost.DefaultModel(), DefaultOptions())
	plan, err := o.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	var walk func(p physical.Plan)
	walk = func(p physical.Plan) {
		if _, ok := p.(*physical.StreamGroupBy); ok {
			found = true
		}
		for _, c := range physical.Children(p) {
			walk(c)
		}
	}
	walk(plan)
	if !found {
		t.Errorf("grouping on the clustered key should stream:\n%s", physical.Format(plan, q.Meta))
	}
}
