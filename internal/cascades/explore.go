package cascades

import (
	"repro/internal/logical"
)

// Transformation rule names (used for once-per-expression firing control).
const (
	ruleCommute = "join-commute"
	ruleAssoc   = "join-associate"
)

// exploreGroup derives all logically equivalent expressions reachable via
// the transformation rules — goal-driven: child groups are explored first,
// and only groups actually reached from the optimization root are touched
// (unlike Starburst's forward-chaining rewrite phase).
func (o *Optimizer) exploreGroup(g *Group) {
	if g.explored {
		return
	}
	g.explored = true
	// Iterate until no rule produces a new expression (the group's Exprs
	// slice grows during iteration; index-based loop covers additions).
	for i := 0; i < len(g.Exprs); i++ {
		e := g.Exprs[i]
		// Explore children first so associativity sees their join variants.
		for _, cid := range e.Children {
			o.exploreGroup(o.memo.Group(cid))
		}
		if e.Kind != opJoin || e.JoinKind != logical.InnerJoin {
			continue
		}
		o.applyCommute(g, e)
		o.applyAssociate(g, e)
		if o.memo.NumExprs() > o.Opts.MaxExprs {
			return
		}
	}
}

// applyCommute fires Join(A,B) → Join(B,A).
func (o *Optimizer) applyCommute(g *Group, e *MExpr) {
	if e.ruleApplied(ruleCommute) {
		return
	}
	e.markApplied(ruleCommute)
	ne := &MExpr{
		Kind:     opJoin,
		Children: []GroupID{e.Children[1], e.Children[0]},
		JoinKind: logical.InnerJoin,
		On:       e.On,
	}
	// Commuting back is pointless: mark on the new expression too.
	ne.markApplied(ruleCommute)
	if o.memo.insert(g, ne) {
		o.Metrics.RulesFired++
	}
}

// applyAssociate fires Join(Join(x,y,p1), z, p2) → Join(x, Join(y,z,pYZ), pRest)
// for every join expression in the left child group.
func (o *Optimizer) applyAssociate(g *Group, e *MExpr) {
	if e.ruleApplied(ruleAssoc) {
		return
	}
	e.markApplied(ruleAssoc)
	left := o.memo.Group(e.Children[0])
	right := o.memo.Group(e.Children[1])
	for _, le := range left.Exprs {
		if le.Kind != opJoin || le.JoinKind != logical.InnerJoin {
			continue
		}
		x := o.memo.Group(le.Children[0])
		y := o.memo.Group(le.Children[1])
		// Combine all predicates and redistribute.
		all := append(append([]logical.Scalar{}, le.On...), e.On...)
		yz := y.Cols.Union(right.Cols)
		var inner, rest []logical.Scalar
		for _, p := range all {
			if logical.ScalarCols(p).SubsetOf(yz) {
				inner = append(inner, p)
			} else {
				rest = append(rest, p)
			}
		}
		if len(inner) == 0 && !o.Opts.CartesianProducts {
			continue
		}
		innerExpr := &MExpr{
			Kind:     opJoin,
			Children: []GroupID{y.ID, right.ID},
			JoinKind: logical.InnerJoin,
			On:       inner,
		}
		innerGroup := o.memo.internGroup(innerExpr, yz)
		ne := &MExpr{
			Kind:     opJoin,
			Children: []GroupID{x.ID, innerGroup.ID},
			JoinKind: logical.InnerJoin,
			On:       rest,
		}
		if len(rest) == 0 && !o.Opts.CartesianProducts {
			// The top join would be a Cartesian product; skip.
			continue
		}
		if o.memo.insert(g, ne) {
			o.Metrics.RulesFired++
		}
		if o.memo.NumExprs() > o.Opts.MaxExprs {
			return
		}
	}
}
