package cascades

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cost"
	"repro/internal/datum"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/stats"
)

// Options tunes the Cascades search.
type Options struct {
	// CartesianProducts admits cross joins during exploration.
	CartesianProducts bool
	// MaxExprs caps memo growth (a search budget "knob", §6).
	MaxExprs int
	// Pruning enables cost-bound (branch and bound) pruning guided by the
	// promise of already-found plans.
	Pruning bool
}

// DefaultOptions enables pruning with a generous memo budget.
func DefaultOptions() Options {
	return Options{MaxExprs: 200000, Pruning: true}
}

// Metrics counts the work done (E14 compares these with System-R's).
type Metrics struct {
	RulesFired  int // transformation rule applications producing new exprs
	TasksRun    int // optimizeGroup invocations (tasks)
	PlansCosted int // physical alternatives costed
	WinnerHits  int // memoized (group, property) lookups served from cache
}

// winner is the memoized best plan of a group for one required property.
type winner struct {
	plan physical.Plan
	cost float64
}

// Optimizer is a Volcano/Cascades-style optimizer instance.
type Optimizer struct {
	memo    *Memo
	Est     *stats.Estimator
	Model   cost.Model
	Opts    Options
	Metrics Metrics
}

// New returns an optimizer sharing the estimator and cost model types used
// by the System-R implementation.
func New(est *stats.Estimator, model cost.Model, opts Options) *Optimizer {
	if opts.MaxExprs <= 0 {
		opts.MaxExprs = 200000
	}
	return &Optimizer{memo: NewMemo(), Est: est, Model: model, Opts: opts}
}

// Memo exposes the memo for inspection (metrics, tests).
func (o *Optimizer) Memo() *Memo { return o.memo }

// Optimize builds the memo from the query, explores it on demand, and
// returns the best physical plan satisfying the query's ORDER BY.
func (o *Optimizer) Optimize(q *logical.Query) (physical.Plan, error) {
	root := q.Root
	var limitN int64 = -1
	if lim, ok := root.(*logical.Limit); ok && len(q.OrderBy) > 0 {
		root = lim.Input
		limitN = lim.N
	}
	g, err := o.memo.Build(root)
	if err != nil {
		return nil, err
	}
	w, err := o.optGroup(g, q.OrderBy)
	if err != nil {
		return nil, err
	}
	plan := w.plan
	if limitN >= 0 {
		rows, c := plan.Estimate()
		if float64(limitN) < rows {
			rows = float64(limitN)
		}
		plan = &physical.LimitOp{
			Props: physical.Props{Rows: rows, Cost: c + o.Model.Limit(rows)},
			Input: plan, N: limitN,
		}
	}
	return plan, nil
}

// optGroup returns the cheapest plan for the group under the required
// ordering, memoized per (group, ordering) — the "table of plans that have
// been optimized in the past" of §6.2.
func (o *Optimizer) optGroup(g *Group, required logical.Ordering) (*winner, error) {
	key := required.Key()
	if w, ok := g.winners[key]; ok {
		o.Metrics.WinnerHits++
		return w, nil
	}
	o.Metrics.TasksRun++
	o.exploreGroup(g)

	rows := o.Est.Stats(o.memo.Repr(g)).Rows
	best := &winner{cost: math.Inf(1)}
	consider := func(p physical.Plan) {
		if p == nil {
			return
		}
		o.Metrics.PlansCosted++
		p = o.enforce(p, required)
		if _, c := p.Estimate(); c < best.cost {
			best.plan = p
			best.cost = c
		}
	}

	for _, e := range g.Exprs {
		if err := o.implement(g, e, rows, required, best, consider); err != nil {
			return nil, err
		}
	}
	if best.plan == nil {
		return nil, fmt.Errorf("cascades: no plan for group %d", int(g.ID))
	}
	g.winners[key] = best
	return best, nil
}

// enforce adds a Sort when the plan does not provide the required ordering.
func (o *Optimizer) enforce(p physical.Plan, required logical.Ordering) physical.Plan {
	if len(required) == 0 || required.SatisfiedBy(p.Ordering()) {
		return p
	}
	rows, c := p.Estimate()
	return &physical.Sort{
		Props: physical.Props{Rows: rows, Cost: c + o.Model.Sort(rows)},
		Input: p, By: required,
	}
}

// implement generates the physical alternatives for one memo expression.
func (o *Optimizer) implement(g *Group, e *MExpr, rows float64, required logical.Ordering, best *winner, consider func(physical.Plan)) error {
	switch e.Kind {
	case opScan:
		for _, p := range o.scanPaths(e.Scan, nil, rows) {
			consider(p)
		}
	case opValues:
		n := float64(len(e.Values.Rows))
		consider(&physical.ValuesOp{
			Props: physical.Props{Rows: n, Cost: o.Model.Values(n)},
			Cols:  e.Values.Cols, Rows: e.Values.Rows,
		})
	case opSelect:
		child := o.memo.Group(e.Children[0])
		// Fused access paths when the child is a base table.
		for _, ce := range child.Exprs {
			if ce.Kind == opScan {
				for _, p := range o.scanPaths(ce.Scan, e.Filters, rows) {
					consider(p)
				}
			}
		}
		// Generic filter over the child's best plan (ordering preserved, so
		// the requirement pushes down).
		w, err := o.optGroup(child, required)
		if err != nil {
			return err
		}
		cr, cc := w.plan.Estimate()
		consider(&physical.Filter{
			Props: physical.Props{Rows: rows, Cost: cc + o.Model.Filter(cr, len(e.Filters))},
			Input: w.plan, Preds: e.Filters,
		})
	case opProject:
		child := o.memo.Group(e.Children[0])
		// Push the requirement down when every required column passes
		// through unchanged.
		childReq := required
		passthrough := map[logical.ColumnID]bool{}
		for _, it := range e.Items {
			if c, ok := it.Expr.(*logical.Col); ok && c.ID == it.ID {
				passthrough[it.ID] = true
			}
		}
		for _, s := range required {
			if !passthrough[s.Col] {
				childReq = nil
				break
			}
		}
		w, err := o.optGroup(child, childReq)
		if err != nil {
			return err
		}
		cr, cc := w.plan.Estimate()
		consider(&physical.Project{
			Props: physical.Props{Rows: cr, Cost: cc + o.Model.Project(cr, len(e.Items))},
			Input: w.plan, Items: e.Items,
		})
	case opJoin:
		return o.implementJoin(e, rows, best, consider)
	case opGroupBy:
		return o.implementGroupBy(e, rows, consider)
	case opLimit:
		child := o.memo.Group(e.Children[0])
		w, err := o.optGroup(child, required)
		if err != nil {
			return err
		}
		cr, cc := w.plan.Estimate()
		out := math.Min(cr, float64(e.N))
		consider(&physical.LimitOp{
			Props: physical.Props{Rows: out, Cost: cc + o.Model.Limit(out)},
			Input: w.plan, N: e.N,
		})
	case opUnion:
		lw, err := o.optGroup(o.memo.Group(e.Children[0]), nil)
		if err != nil {
			return err
		}
		rw, err := o.optGroup(o.memo.Group(e.Children[1]), nil)
		if err != nil {
			return err
		}
		lr, lc := lw.plan.Estimate()
		rr, rc := rw.plan.Estimate()
		total := lr + rr
		consider(&physical.UnionAll{
			Props: physical.Props{Rows: total, Cost: lc + rc + total*o.Model.CPUTuple},
			Left:  lw.plan, Right: rw.plan,
			LeftCols: e.UnionLeft, RightCols: e.UnionRight, Cols: e.UnionCols,
		})
	}
	return nil
}

// scanPaths mirrors access-path selection for a (possibly filtered) scan.
func (o *Optimizer) scanPaths(scan *logical.Scan, filters []logical.Scalar, outRows float64) []physical.Plan {
	// TableShape charges the seq-scan only the pages left after zone-map
	// segment elimination under these filters.
	tableRows, tablePages := o.Est.TableShape(scan, filters)
	ords := make([]int, len(scan.Cols))
	for i, id := range scan.Cols {
		ords[i] = o.Est.Meta.Column(id).BaseOrd
	}
	var out []physical.Plan
	out = append(out, &physical.TableScan{
		Props: physical.Props{Rows: outRows, Cost: o.Model.SeqScan(tablePages, tableRows, len(filters))},
		Table: scan.Table, Binding: scan.Binding, Cols: scan.Cols, ColOrds: ords, Filter: filters,
	})
	scanStats := o.Est.Stats(scan)
	for _, ix := range scan.Table.Indexes {
		var eqKey datum.Row
		var eqParams []int
		anyParam := false
		matched := map[logical.Scalar]bool{}
		sel := 1.0
		for _, ord := range ix.Cols {
			col, ok := colForOrd(o, scan, ord)
			if !ok {
				break
			}
			found := false
			for _, f := range filters {
				if matched[f] {
					continue
				}
				if v, prm, ok := constEqScalar(f, col); ok {
					eqKey = append(eqKey, v)
					eqParams = append(eqParams, prm)
					if prm != 0 {
						anyParam = true
					}
					matched[f] = true
					sel *= o.Est.Selectivity(f, scanStats)
					found = true
					break
				}
			}
			if !found {
				break
			}
		}
		if !anyParam {
			eqParams = nil
		}
		matchRows := tableRows * sel
		var residual []logical.Scalar
		for _, f := range filters {
			if !matched[f] {
				residual = append(residual, f)
			}
		}
		if len(eqKey) == 0 && len(residual) == len(filters) && len(filters) > 0 {
			continue // unqualified index scan under filters rarely helps
		}
		out = append(out, &physical.IndexScan{
			Props: physical.Props{
				Rows: outRows,
				Cost: o.Model.IndexScan(matchRows, tableRows, tablePages, ix.Clustered) + o.Model.Filter(matchRows, len(residual)),
			},
			Table: scan.Table, Index: ix, Binding: scan.Binding,
			Cols: scan.Cols, ColOrds: ords, EqKey: eqKey, EqKeyParams: eqParams,
			Filter: residual,
		})
	}
	return out
}

func colForOrd(o *Optimizer, scan *logical.Scan, ord int) (logical.ColumnID, bool) {
	for _, id := range scan.Cols {
		if o.Est.Meta.Column(id).BaseOrd == ord {
			return id, true
		}
	}
	return 0, false
}

// constEqScalar extracts col = const, returning the constant's value and the
// parameter ordinal behind it (0 for a plain literal).
func constEqScalar(p logical.Scalar, col logical.ColumnID) (datum.D, int, bool) {
	cmp, ok := p.(*logical.Cmp)
	if !ok || cmp.Op != logical.CmpEq {
		return datum.Null, 0, false
	}
	if c, ok := cmp.L.(*logical.Col); ok && c.ID == col {
		if k, ok := cmp.R.(*logical.Const); ok {
			return k.Val, k.Param, true
		}
	}
	if c, ok := cmp.R.(*logical.Col); ok && c.ID == col {
		if k, ok := cmp.L.(*logical.Const); ok {
			return k.Val, k.Param, true
		}
	}
	return datum.Null, 0, false
}

// implementJoin generates NL, hash and merge alternatives, ordering them by
// promise (a quick lower-bound estimate) so bound pruning can skip the rest.
func (o *Optimizer) implementJoin(e *MExpr, rows float64, best *winner, consider func(physical.Plan)) error {
	left := o.memo.Group(e.Children[0])
	right := o.memo.Group(e.Children[1])
	lStats := o.Est.Stats(o.memo.Repr(left))
	rStats := o.Est.Stats(o.memo.Repr(right))

	// Classify equi keys.
	var lKeys, rKeys []logical.ColumnID
	var extras []logical.Scalar
	for _, p := range e.On {
		if cmp, ok := p.(*logical.Cmp); ok && cmp.Op == logical.CmpEq {
			l, lok := cmp.L.(*logical.Col)
			r, rok := cmp.R.(*logical.Col)
			if lok && rok {
				switch {
				case left.Cols.Contains(l.ID) && right.Cols.Contains(r.ID):
					lKeys = append(lKeys, l.ID)
					rKeys = append(rKeys, r.ID)
					continue
				case left.Cols.Contains(r.ID) && right.Cols.Contains(l.ID):
					lKeys = append(lKeys, r.ID)
					rKeys = append(rKeys, l.ID)
					continue
				}
			}
		}
		extras = append(extras, p)
	}

	type alt struct {
		promise float64
		build   func() (physical.Plan, error)
	}
	var alts []alt
	if len(lKeys) > 0 {
		alts = append(alts, alt{
			promise: o.Model.HashJoin(lStats.Rows, rStats.Rows),
			build: func() (physical.Plan, error) {
				lw, err := o.optGroup(left, nil)
				if err != nil {
					return nil, err
				}
				rw, err := o.optGroup(right, nil)
				if err != nil {
					return nil, err
				}
				return &physical.HashJoin{
					Props: physical.Props{Rows: rows, Cost: lw.cost + rw.cost + o.Model.HashJoin(lStats.Rows, rStats.Rows)},
					Kind:  e.JoinKind, Left: lw.plan, Right: rw.plan,
					LeftKeys: lKeys, RightKeys: rKeys, ExtraOn: extras,
				}, nil
			},
		})
		if e.JoinKind != logical.FullOuterJoin {
			alts = append(alts, alt{
				promise: o.Model.MergeJoin(lStats.Rows, rStats.Rows),
				build: func() (physical.Plan, error) {
					var lOrd, rOrd logical.Ordering
					for i := range lKeys {
						lOrd = append(lOrd, logical.OrderSpec{Col: lKeys[i]})
						rOrd = append(rOrd, logical.OrderSpec{Col: rKeys[i]})
					}
					lw, err := o.optGroup(left, lOrd)
					if err != nil {
						return nil, err
					}
					rw, err := o.optGroup(right, rOrd)
					if err != nil {
						return nil, err
					}
					return &physical.MergeJoin{
						Props: physical.Props{Rows: rows, Cost: lw.cost + rw.cost + o.Model.MergeJoin(lStats.Rows, rStats.Rows)},
						Kind:  e.JoinKind, Left: lw.plan, Right: rw.plan,
						LeftKeys: lKeys, RightKeys: rKeys, ExtraOn: extras,
					}, nil
				},
			})
		}
		// Index nested-loop: the right group must hold a base-table scan
		// (optionally under a Select).
		if scan, filters, ok := o.groupScan(right); ok &&
			(e.JoinKind == logical.InnerJoin || e.JoinKind == logical.LeftOuterJoin ||
				e.JoinKind == logical.SemiJoin || e.JoinKind == logical.AntiJoin) {
			alts = append(alts, alt{
				promise: 0,
				build: func() (physical.Plan, error) {
					lw, err := o.optGroup(left, nil)
					if err != nil {
						return nil, err
					}
					return o.inlPlan(e.JoinKind, lw, scan, filters, lKeys, rKeys, extras, rows), nil
				},
			})
		}
	}
	alts = append(alts, alt{
		promise: lStats.Rows * rStats.Rows * o.Model.CPUEval,
		build: func() (physical.Plan, error) {
			lw, err := o.optGroup(left, nil)
			if err != nil {
				return nil, err
			}
			rw, err := o.optGroup(right, nil)
			if err != nil {
				return nil, err
			}
			return &physical.NLJoin{
				Props: physical.Props{Rows: rows, Cost: lw.cost + o.Model.NLJoin(lStats.Rows, rStats.Rows, rw.cost)},
				Kind:  e.JoinKind, Left: lw.plan, Right: rw.plan, On: e.On,
			}, nil
		},
	})

	sort.Slice(alts, func(i, j int) bool { return alts[i].promise < alts[j].promise })
	for _, a := range alts {
		if o.Opts.Pruning && best.plan != nil && a.promise >= best.cost {
			continue // the operator alone already exceeds the best full plan
		}
		p, err := a.build()
		if err != nil {
			return err
		}
		consider(p)
	}
	return nil
}

// groupScan finds a Scan (or Select over Scan) expression in the group.
func (o *Optimizer) groupScan(g *Group) (*logical.Scan, []logical.Scalar, bool) {
	for _, e := range g.Exprs {
		if e.Kind == opScan {
			return e.Scan, nil, true
		}
		if e.Kind == opSelect {
			child := o.memo.Group(e.Children[0])
			for _, ce := range child.Exprs {
				if ce.Kind == opScan {
					return ce.Scan, e.Filters, true
				}
			}
		}
	}
	return nil, nil, false
}

// inlPlan builds an index nested-loop plan if an index matches, else nil.
func (o *Optimizer) inlPlan(kind logical.JoinKind, lw *winner, scan *logical.Scan, filters []logical.Scalar,
	lKeys, rKeys []logical.ColumnID, extras []logical.Scalar, rows float64) physical.Plan {
	// Index probes fetch by row ID; pruning does not apply, so no filters.
	tableRows, tablePages := o.Est.TableShape(scan, nil)
	rStats := o.Est.Stats(scan)
	var bestPlan physical.Plan
	bestCost := math.Inf(1)
	for _, ix := range scan.Table.Indexes {
		var outerKeys []logical.ColumnID
		used := map[int]bool{}
		for _, ord := range ix.Cols {
			col, ok := colForOrd(o, scan, ord)
			if !ok {
				break
			}
			found := -1
			for ki := range rKeys {
				if !used[ki] && rKeys[ki] == col {
					found = ki
					break
				}
			}
			if found < 0 {
				break
			}
			used[found] = true
			outerKeys = append(outerKeys, lKeys[found])
		}
		if len(outerKeys) == 0 {
			continue
		}
		var residual []logical.Scalar
		for ki := range rKeys {
			if !used[ki] {
				residual = append(residual, &logical.Cmp{Op: logical.CmpEq,
					L: &logical.Col{ID: lKeys[ki]}, R: &logical.Col{ID: rKeys[ki]}})
			}
		}
		residual = append(residual, extras...)
		residual = append(residual, filters...)
		dist := ix.DistinctKeys
		if dist <= 0 {
			if col, ok := colForOrd(o, scan, ix.Cols[0]); ok {
				if cs, ok := rStats.Cols[col]; ok && cs != nil {
					dist = cs.Distinct
				}
			}
		}
		if dist <= 0 {
			dist = 1
		}
		lRows, _ := lw.plan.Estimate()
		matchPerOuter := tableRows / dist
		c := lw.cost + o.Model.INLJoin(lRows, matchPerOuter, tableRows, tablePages, ix.Clustered) +
			o.Model.Filter(lRows*matchPerOuter, len(residual))
		if c >= bestCost {
			continue
		}
		bestCost = c
		ords := make([]int, len(scan.Cols))
		for i, id := range scan.Cols {
			ords[i] = o.Est.Meta.Column(id).BaseOrd
		}
		bestPlan = &physical.INLJoin{
			Props: physical.Props{Rows: rows, Cost: c},
			Kind:  kind, Left: lw.plan,
			Table: scan.Table, Index: ix, Binding: scan.Binding,
			Cols: scan.Cols, ColOrds: ords,
			LeftKeys: outerKeys, ExtraOn: residual,
		}
	}
	return bestPlan
}

// implementGroupBy generates hash and stream aggregation.
func (o *Optimizer) implementGroupBy(e *MExpr, rows float64, consider func(physical.Plan)) error {
	child := o.memo.Group(e.Children[0])
	w, err := o.optGroup(child, nil)
	if err != nil {
		return err
	}
	cr, _ := w.plan.Estimate()
	consider(&physical.HashGroupBy{
		Props: physical.Props{Rows: rows, Cost: w.cost + o.Model.HashGroupBy(cr, len(e.Aggs))},
		Input: w.plan, GroupCols: e.GroupCols, Aggs: e.Aggs,
	})
	if len(e.GroupCols) > 0 {
		var want logical.Ordering
		for _, c := range e.GroupCols {
			want = append(want, logical.OrderSpec{Col: c})
		}
		sw, err := o.optGroup(child, want)
		if err != nil {
			return err
		}
		scr, _ := sw.plan.Estimate()
		consider(&physical.StreamGroupBy{
			Props: physical.Props{Rows: rows, Cost: sw.cost + o.Model.StreamGroupBy(scr, len(e.Aggs))},
			Input: sw.plan, GroupCols: e.GroupCols, Aggs: e.Aggs,
		})
	}
	return nil
}
