// Package cascades implements the Volcano/Cascades extensible optimizer of
// §6.2 of the paper: a memo of equivalence groups, top-down goal-driven rule
// application with memoization ("optimize this group for this required
// property"), transformation rules (join commutativity/associativity),
// implementation rules (scan/join/aggregate algorithms) and enforcers (sort).
// It shares the cost model and statistics framework with the System-R
// optimizer so E14 compares search strategies, not cost models.
package cascades

import (
	"fmt"
	"strings"

	"repro/internal/logical"
)

// GroupID identifies one equivalence class in the memo.
type GroupID int

// opKind tags memo expressions.
type opKind uint8

const (
	opScan opKind = iota
	opValues
	opSelect
	opProject
	opJoin
	opGroupBy
	opLimit
	opUnion
)

// MExpr is one logical expression in the memo: an operator whose relational
// children are memo groups.
type MExpr struct {
	Kind     opKind
	Children []GroupID

	// Payloads (by kind).
	Scan      *logical.Scan
	Values    *logical.Values
	Filters   []logical.Scalar
	Items     []logical.ProjectItem
	JoinKind  logical.JoinKind
	On        []logical.Scalar
	GroupCols []logical.ColumnID
	Aggs      []logical.AggItem
	N         int64
	// Union payload: aligned column lists.
	UnionLeft, UnionRight, UnionCols []logical.ColumnID

	// applied records transformation rules already fired on this expression.
	applied map[string]bool
}

func (e *MExpr) ruleApplied(name string) bool { return e.applied[name] }
func (e *MExpr) markApplied(name string) {
	if e.applied == nil {
		e.applied = map[string]bool{}
	}
	e.applied[name] = true
}

// fingerprint canonically identifies the expression for deduplication.
func (e *MExpr) fingerprint() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d[", e.Kind)
	for _, c := range e.Children {
		fmt.Fprintf(&sb, "g%d,", int(c))
	}
	sb.WriteByte(']')
	switch e.Kind {
	case opScan:
		fmt.Fprintf(&sb, "%s/%s%v", e.Scan.Table.Name, e.Scan.Binding, e.Scan.Cols)
	case opValues:
		fmt.Fprintf(&sb, "values%d", len(e.Values.Rows))
	case opSelect:
		writeScalars(&sb, e.Filters)
	case opProject:
		for _, it := range e.Items {
			fmt.Fprintf(&sb, "@%d=%s;", int(it.ID), it.Expr)
		}
	case opJoin:
		fmt.Fprintf(&sb, "%d:", e.JoinKind)
		writeScalars(&sb, e.On)
	case opGroupBy:
		fmt.Fprintf(&sb, "%v:", e.GroupCols)
		for _, a := range e.Aggs {
			sb.WriteString(a.String())
			sb.WriteByte(';')
		}
	case opLimit:
		fmt.Fprintf(&sb, "%d", e.N)
	case opUnion:
		fmt.Fprintf(&sb, "%v|%v|%v", e.UnionLeft, e.UnionRight, e.UnionCols)
	}
	return sb.String()
}

// writeScalars writes predicates order-insensitively (a conjunction set).
func writeScalars(sb *strings.Builder, ss []logical.Scalar) {
	strs := make([]string, len(ss))
	for i, s := range ss {
		strs[i] = s.String()
	}
	// Insertion sort: small lists.
	for i := 1; i < len(strs); i++ {
		for j := i; j > 0 && strs[j] < strs[j-1]; j-- {
			strs[j], strs[j-1] = strs[j-1], strs[j]
		}
	}
	for _, s := range strs {
		sb.WriteString(s)
		sb.WriteByte('&')
	}
}

// Group is one equivalence class: a set of logically equivalent expressions
// plus logical properties and the memoized winners per required property.
type Group struct {
	ID    GroupID
	Exprs []*MExpr
	// Cols is the output column set (a logical property).
	Cols logical.ColSet
	// repr is a representative logical tree used for statistics.
	repr logical.RelExpr
	// winners memoizes the best plan per required-ordering key.
	winners  map[string]*winner
	explored bool
}

// Memo is the deduplicated space of explored expressions.
type Memo struct {
	groups []*Group
	index  map[string]GroupID // fingerprint → owning group
	// Metrics
	DedupHits int
}

// NewMemo returns an empty memo.
func NewMemo() *Memo {
	return &Memo{index: map[string]GroupID{}}
}

// Group returns the group with the given id.
func (m *Memo) Group(id GroupID) *Group { return m.groups[id] }

// NumGroups returns the number of groups.
func (m *Memo) NumGroups() int { return len(m.groups) }

// NumExprs counts all memo expressions.
func (m *Memo) NumExprs() int {
	n := 0
	for _, g := range m.groups {
		n += len(g.Exprs)
	}
	return n
}

// newGroup allocates an empty group.
func (m *Memo) newGroup(cols logical.ColSet) *Group {
	g := &Group{ID: GroupID(len(m.groups)), Cols: cols, winners: map[string]*winner{}}
	m.groups = append(m.groups, g)
	return g
}

// insert adds an expression to a group (or records a dedup hit if it exists
// anywhere). It returns true if the expression was new.
func (m *Memo) insert(g *Group, e *MExpr) bool {
	fp := e.fingerprint()
	if _, ok := m.index[fp]; ok {
		m.DedupHits++
		return false
	}
	m.index[fp] = g.ID
	g.Exprs = append(g.Exprs, e)
	return true
}

// internGroup finds the group owning an equivalent expression, or creates a
// new group holding it.
func (m *Memo) internGroup(e *MExpr, cols logical.ColSet) *Group {
	fp := e.fingerprint()
	if gid, ok := m.index[fp]; ok {
		m.DedupHits++
		return m.groups[gid]
	}
	g := m.newGroup(cols)
	m.index[fp] = g.ID
	g.Exprs = append(g.Exprs, e)
	return g
}

// Build translates a logical tree into the memo, returning the root group.
func (m *Memo) Build(rel logical.RelExpr) (*Group, error) {
	e, cols, err := m.convert(rel)
	if err != nil {
		return nil, err
	}
	return m.internGroup(e, cols), nil
}

func (m *Memo) convert(rel logical.RelExpr) (*MExpr, logical.ColSet, error) {
	switch t := rel.(type) {
	case *logical.Scan:
		return &MExpr{Kind: opScan, Scan: t}, t.OutputCols(), nil
	case *logical.Values:
		return &MExpr{Kind: opValues, Values: t}, t.OutputCols(), nil
	case *logical.Select:
		cg, err := m.Build(t.Input)
		if err != nil {
			return nil, logical.ColSet{}, err
		}
		return &MExpr{Kind: opSelect, Children: []GroupID{cg.ID}, Filters: t.Filters}, cg.Cols, nil
	case *logical.Project:
		cg, err := m.Build(t.Input)
		if err != nil {
			return nil, logical.ColSet{}, err
		}
		return &MExpr{Kind: opProject, Children: []GroupID{cg.ID}, Items: t.Items}, t.OutputCols(), nil
	case *logical.Join:
		lg, err := m.Build(t.Left)
		if err != nil {
			return nil, logical.ColSet{}, err
		}
		rg, err := m.Build(t.Right)
		if err != nil {
			return nil, logical.ColSet{}, err
		}
		cols := lg.Cols
		if t.Kind.PreservesRight() {
			cols = cols.Union(rg.Cols)
		}
		return &MExpr{Kind: opJoin, Children: []GroupID{lg.ID, rg.ID}, JoinKind: t.Kind, On: t.On}, cols, nil
	case *logical.GroupBy:
		cg, err := m.Build(t.Input)
		if err != nil {
			return nil, logical.ColSet{}, err
		}
		return &MExpr{Kind: opGroupBy, Children: []GroupID{cg.ID}, GroupCols: t.GroupCols, Aggs: t.Aggs}, t.OutputCols(), nil
	case *logical.Limit:
		cg, err := m.Build(t.Input)
		if err != nil {
			return nil, logical.ColSet{}, err
		}
		return &MExpr{Kind: opLimit, Children: []GroupID{cg.ID}, N: t.N}, cg.Cols, nil
	case *logical.Union:
		lg, err := m.Build(t.Left)
		if err != nil {
			return nil, logical.ColSet{}, err
		}
		rg, err := m.Build(t.Right)
		if err != nil {
			return nil, logical.ColSet{}, err
		}
		return &MExpr{Kind: opUnion, Children: []GroupID{lg.ID, rg.ID},
			UnionLeft: t.LeftCols, UnionRight: t.RightCols, UnionCols: t.Cols}, t.OutputCols(), nil
	}
	return nil, logical.ColSet{}, fmt.Errorf("cascades: cannot memoize %T", rel)
}

// Repr returns a representative logical expression for the group, used to
// compute its statistics (statistics are logical properties shared by all
// group members).
func (m *Memo) Repr(g *Group) logical.RelExpr {
	if g.repr != nil {
		return g.repr
	}
	e := g.Exprs[0]
	g.repr = m.exprRepr(e)
	return g.repr
}

func (m *Memo) exprRepr(e *MExpr) logical.RelExpr {
	child := func(i int) logical.RelExpr { return m.Repr(m.groups[e.Children[i]]) }
	switch e.Kind {
	case opScan:
		return e.Scan
	case opValues:
		return e.Values
	case opSelect:
		return &logical.Select{Input: child(0), Filters: e.Filters}
	case opProject:
		return &logical.Project{Input: child(0), Items: e.Items}
	case opJoin:
		return &logical.Join{Kind: e.JoinKind, Left: child(0), Right: child(1), On: e.On}
	case opGroupBy:
		return &logical.GroupBy{Input: child(0), GroupCols: e.GroupCols, Aggs: e.Aggs}
	case opLimit:
		return &logical.Limit{Input: child(0), N: e.N}
	case opUnion:
		return &logical.Union{Left: child(0), Right: child(1),
			LeftCols: e.UnionLeft, RightCols: e.UnionRight, Cols: e.UnionCols}
	}
	panic("cascades: unknown op")
}
