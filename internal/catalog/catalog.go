// Package catalog holds schema metadata: tables, columns, indexes, views and
// the per-table statistical summaries (§5.1.1) consumed by the cost model.
package catalog

import (
	"fmt"
	"strings"

	"repro/internal/datum"
	"repro/internal/histogram"
)

// Column describes one table column.
type Column struct {
	Name    string
	Kind    datum.Kind
	NotNull bool
}

// Index describes a secondary access path over a table. Cols are column
// ordinals, leading column first. At most one index per table may be
// Clustered (the heap is ordered by it, making range scans sequential).
type Index struct {
	Name      string
	Cols      []int
	Unique    bool
	Clustered bool
	// DistinctKeys is the total count of distinct column-value combinations
	// in the index — the multi-column summary statistic of §5.1.1. Zero
	// means unknown.
	DistinctKeys float64
}

// Table is the schema entry for a base table.
type Table struct {
	Name    string
	Cols    []Column
	Indexes []*Index
	// PrimaryKey holds column ordinals of the primary key (may be empty).
	PrimaryKey []int
	Stats      *TableStats
}

// Ordinal returns the ordinal of the named column, or -1.
func (t *Table) Ordinal(col string) int {
	for i, c := range t.Cols {
		if strings.EqualFold(c.Name, col) {
			return i
		}
	}
	return -1
}

// ClusteredIndex returns the table's clustered index, or nil.
func (t *Table) ClusteredIndex() *Index {
	for _, ix := range t.Indexes {
		if ix.Clustered {
			return ix
		}
	}
	return nil
}

// IndexWithLeading returns indexes whose leading column is the given ordinal.
func (t *Table) IndexWithLeading(ord int) []*Index {
	var out []*Index
	for _, ix := range t.Indexes {
		if len(ix.Cols) > 0 && ix.Cols[0] == ord {
			out = append(out, ix)
		}
	}
	return out
}

// TableStats is the statistical summary of a stored table: row count, page
// count and per-column statistics.
type TableStats struct {
	RowCount  float64
	PageCount float64
	ColStats  map[int]*ColumnStats // keyed by column ordinal
	// Joint holds optional two-dimensional histograms capturing the joint
	// distribution of column pairs (§5.1.1), keyed by ordinal pairs.
	Joint map[[2]int]*histogram.Hist2D
}

// ColumnStats summarizes one column's data distribution.
type ColumnStats struct {
	DistinctCount float64
	NullCount     float64
	// SecondMin/SecondMax follow the practice the paper describes: the
	// second-lowest and second-highest values are kept because the extremes
	// are often outliers.
	SecondMin datum.D
	SecondMax datum.D
	Hist      *histogram.Histogram // may be nil (no histogram collected)
}

// View is a named virtual table defined by SQL text; the definition is
// parsed and inlined (or not) by the optimizer's view-merging machinery.
type View struct {
	Name string
	SQL  string
}

// MaterializedView is a view whose result has been computed and stored; the
// optimizer may substitute it transparently (§7.3).
type MaterializedView struct {
	Name string
	SQL  string
	// Table is the backing stored table holding the view's rows.
	Table *Table
}

// Catalog maps names to schema objects. Names are case-insensitive.
type Catalog struct {
	tables   map[string]*Table
	views    map[string]*View
	matviews map[string]*MaterializedView
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{
		tables:   make(map[string]*Table),
		views:    make(map[string]*View),
		matviews: make(map[string]*MaterializedView),
	}
}

func key(name string) string { return strings.ToLower(name) }

// AddTable registers a table. It returns an error on duplicate names or
// invalid definitions.
func (c *Catalog) AddTable(t *Table) error {
	k := key(t.Name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("catalog: %q already defined as a view", t.Name)
	}
	if len(t.Cols) == 0 {
		return fmt.Errorf("catalog: table %q has no columns", t.Name)
	}
	seen := map[string]bool{}
	for _, col := range t.Cols {
		ck := key(col.Name)
		if seen[ck] {
			return fmt.Errorf("catalog: table %q has duplicate column %q", t.Name, col.Name)
		}
		seen[ck] = true
	}
	clustered := 0
	for _, ix := range t.Indexes {
		if ix.Clustered {
			clustered++
		}
		for _, ord := range ix.Cols {
			if ord < 0 || ord >= len(t.Cols) {
				return fmt.Errorf("catalog: index %q references invalid ordinal %d", ix.Name, ord)
			}
		}
	}
	if clustered > 1 {
		return fmt.Errorf("catalog: table %q has %d clustered indexes", t.Name, clustered)
	}
	if t.Stats == nil {
		t.Stats = &TableStats{ColStats: make(map[int]*ColumnStats)}
	}
	c.tables[k] = t
	return nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[key(name)]
	return t, ok
}

// Tables returns all registered tables (no particular order).
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	return out
}

// AddView registers a view definition.
func (c *Catalog) AddView(v *View) error {
	k := key(v.Name)
	if _, ok := c.tables[k]; ok {
		return fmt.Errorf("catalog: %q already defined as a table", v.Name)
	}
	if _, ok := c.views[k]; ok {
		return fmt.Errorf("catalog: view %q already exists", v.Name)
	}
	c.views[k] = v
	return nil
}

// View looks up a view by name.
func (c *Catalog) View(name string) (*View, bool) {
	v, ok := c.views[key(name)]
	return v, ok
}

// AddMaterializedView registers a materialized view with its backing table.
func (c *Catalog) AddMaterializedView(mv *MaterializedView) error {
	k := key(mv.Name)
	if _, ok := c.matviews[k]; ok {
		return fmt.Errorf("catalog: materialized view %q already exists", mv.Name)
	}
	c.matviews[k] = mv
	return nil
}

// MaterializedViews returns all registered materialized views.
func (c *Catalog) MaterializedViews() []*MaterializedView {
	out := make([]*MaterializedView, 0, len(c.matviews))
	for _, mv := range c.matviews {
		out = append(out, mv)
	}
	return out
}

// ColStats returns the stats for a column ordinal, creating the container if
// needed.
func (s *TableStats) ColStatsFor(ord int) *ColumnStats {
	if s.ColStats == nil {
		s.ColStats = make(map[int]*ColumnStats)
	}
	cs, ok := s.ColStats[ord]
	if !ok {
		cs = &ColumnStats{}
		s.ColStats[ord] = cs
	}
	return cs
}
