package catalog

import (
	"testing"

	"repro/internal/datum"
)

func empDef() *Table {
	return &Table{
		Name: "Emp",
		Cols: []Column{
			{Name: "eid", Kind: datum.KindInt, NotNull: true},
			{Name: "name", Kind: datum.KindString},
			{Name: "did", Kind: datum.KindInt},
			{Name: "sal", Kind: datum.KindFloat},
		},
		PrimaryKey: []int{0},
		Indexes: []*Index{
			{Name: "emp_pk", Cols: []int{0}, Unique: true, Clustered: true},
			{Name: "emp_did", Cols: []int{2}},
		},
	}
}

func TestAddAndLookupTable(t *testing.T) {
	c := New()
	if err := c.AddTable(empDef()); err != nil {
		t.Fatal(err)
	}
	tab, ok := c.Table("EMP") // case-insensitive
	if !ok {
		t.Fatal("lookup failed")
	}
	if tab.Ordinal("DID") != 2 {
		t.Errorf("Ordinal(DID) = %d", tab.Ordinal("DID"))
	}
	if tab.Ordinal("nope") != -1 {
		t.Error("missing column should return -1")
	}
	if ci := tab.ClusteredIndex(); ci == nil || ci.Name != "emp_pk" {
		t.Error("clustered index lookup failed")
	}
	if ixs := tab.IndexWithLeading(2); len(ixs) != 1 || ixs[0].Name != "emp_did" {
		t.Error("IndexWithLeading(2) failed")
	}
	if len(c.Tables()) != 1 {
		t.Error("Tables() should list one table")
	}
}

func TestAddTableErrors(t *testing.T) {
	c := New()
	if err := c.AddTable(empDef()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(empDef()); err == nil {
		t.Error("duplicate table should fail")
	}
	if err := c.AddTable(&Table{Name: "nocols"}); err == nil {
		t.Error("no columns should fail")
	}
	if err := c.AddTable(&Table{Name: "dup", Cols: []Column{
		{Name: "a", Kind: datum.KindInt}, {Name: "A", Kind: datum.KindInt},
	}}); err == nil {
		t.Error("duplicate column names should fail")
	}
	if err := c.AddTable(&Table{Name: "badix", Cols: []Column{{Name: "a", Kind: datum.KindInt}},
		Indexes: []*Index{{Name: "x", Cols: []int{5}}}}); err == nil {
		t.Error("out-of-range index ordinal should fail")
	}
	if err := c.AddTable(&Table{Name: "twoclustered", Cols: []Column{{Name: "a", Kind: datum.KindInt}},
		Indexes: []*Index{
			{Name: "x", Cols: []int{0}, Clustered: true},
			{Name: "y", Cols: []int{0}, Clustered: true},
		}}); err == nil {
		t.Error("two clustered indexes should fail")
	}
}

func TestViews(t *testing.T) {
	c := New()
	if err := c.AddView(&View{Name: "v1", SQL: "SELECT 1"}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddView(&View{Name: "V1", SQL: "SELECT 2"}); err == nil {
		t.Error("duplicate view should fail")
	}
	if _, ok := c.View("v1"); !ok {
		t.Error("view lookup failed")
	}
	if err := c.AddTable(&Table{Name: "v1", Cols: []Column{{Name: "a", Kind: datum.KindInt}}}); err == nil {
		t.Error("table shadowing view should fail")
	}
	if err := c.AddTable(empDef()); err != nil {
		t.Fatal(err)
	}
	if err := c.AddView(&View{Name: "emp", SQL: "SELECT 1"}); err == nil {
		t.Error("view shadowing table should fail")
	}
}

func TestMaterializedViews(t *testing.T) {
	c := New()
	mv := &MaterializedView{Name: "mv1", SQL: "SELECT did FROM emp"}
	if err := c.AddMaterializedView(mv); err != nil {
		t.Fatal(err)
	}
	if err := c.AddMaterializedView(mv); err == nil {
		t.Error("duplicate matview should fail")
	}
	if got := c.MaterializedViews(); len(got) != 1 || got[0].Name != "mv1" {
		t.Error("MaterializedViews() wrong")
	}
}

func TestColStatsFor(t *testing.T) {
	s := &TableStats{}
	cs := s.ColStatsFor(3)
	cs.DistinctCount = 7
	if s.ColStatsFor(3).DistinctCount != 7 {
		t.Error("ColStatsFor should return the same container")
	}
}
