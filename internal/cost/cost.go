// Package cost implements the cost model of §5.2 of the paper: per-operator
// CPU and I/O formulas over statistical properties of the inputs, combined
// into one comparable metric, with an optional buffer-utilization model in
// the spirit of Mackert/Lohman's R* validation ([40]).
package cost

import "math"

// Model holds the cost parameters. The unit is "sequential page read = 1.0".
type Model struct {
	SeqPage  float64 // sequential page I/O
	RandPage float64 // random page I/O
	CPUTuple float64 // per-tuple processing
	CPUEval  float64 // per-predicate/expression evaluation
	CPUHash  float64 // per-tuple hash table build/probe
	// RowsPerPage approximates heap packing when only row counts are known.
	RowsPerPage float64
	// BufferPages is the modeled buffer pool size; 0 disables the buffer
	// model (every page access pays full I/O cost).
	BufferPages float64
	// CommCostPerRow models network transfer in parallel plans (§7.1).
	CommCostPerRow float64
}

// DefaultModel mirrors the classical System-R-era parameter ratios.
func DefaultModel() Model {
	return Model{
		SeqPage:        1.0,
		RandPage:       4.0,
		CPUTuple:       0.01,
		CPUEval:        0.002,
		CPUHash:        0.015,
		RowsPerPage:    64,
		BufferPages:    256,
		CommCostPerRow: 0.005,
	}
}

// CalibrateCommPerRow converts measured exchange overhead into the model's
// cost units so CommCostPerRow can be set from a real run instead of guessed.
// The model's unit is "one sequential page read", which the executor
// approximates as the measured time to scan one page worth of rows; the
// per-row exchange overhead (partition hash + transfer through the fan-in)
// divided by that unit is the calibrated CommCostPerRow. Non-positive inputs
// (e.g. a run too fast to time) fall back to the default.
func CalibrateCommPerRow(exchangeSecPerRow, scanSecPerPage float64) float64 {
	if exchangeSecPerRow <= 0 || scanSecPerPage <= 0 {
		return DefaultModel().CommCostPerRow
	}
	return exchangeSecPerRow / scanSecPerPage
}

// pages converts a row count to a page estimate.
func (m Model) pages(rows float64) float64 {
	if m.RowsPerPage <= 0 {
		return rows
	}
	return math.Ceil(rows / m.RowsPerPage)
}

// hitRatio returns the fraction of page re-reads served by the buffer pool
// when cycling over `pages` pages — the simplified Mackert/Lohman model. With
// BufferPages == 0 the buffer model is off and re-reads always pay I/O.
func (m Model) hitRatio(pages float64) float64 {
	if m.BufferPages <= 0 || pages <= 0 {
		return 0
	}
	if pages <= m.BufferPages {
		return 1
	}
	return m.BufferPages / pages
}

// SeqScan costs a full heap scan.
func (m Model) SeqScan(pages, rows float64, preds int) float64 {
	return pages*m.SeqPage + rows*(m.CPUTuple+float64(preds)*m.CPUEval)
}

// IndexScan costs an index lookup returning matchRows of tableRows rows.
// Clustered indexes read matching pages sequentially; non-clustered ones pay
// a random fetch per matching row, moderated by the buffer hit ratio.
func (m Model) IndexScan(matchRows, tableRows, tablePages float64, clustered bool) float64 {
	if matchRows < 0 {
		matchRows = 0
	}
	height := indexHeight(tableRows)
	cpu := matchRows * m.CPUTuple
	if clustered {
		frac := 0.0
		if tableRows > 0 {
			frac = matchRows / tableRows
		}
		return height*m.RandPage + math.Ceil(tablePages*frac)*m.SeqPage + cpu
	}
	// Non-clustered: one random page per matching row, except buffer hits.
	fetches := matchRows * (1 - m.hitRatio(tablePages))
	// Even with a perfect buffer the first tablePages reads are cold.
	minFetches := math.Min(matchRows, tablePages)
	if fetches < minFetches {
		fetches = minFetches
	}
	return height*m.RandPage + fetches*m.RandPage + cpu
}

func indexHeight(rows float64) float64 {
	if rows < 2 {
		return 1
	}
	return math.Max(1, math.Ceil(math.Log(rows)/math.Log(100)))
}

// Filter costs predicate evaluation over rows.
func (m Model) Filter(rows float64, preds int) float64 {
	return rows * float64(preds) * m.CPUEval
}

// Project costs expression evaluation over rows.
func (m Model) Project(rows float64, exprs int) float64 {
	return rows * float64(exprs) * m.CPUEval
}

// Sort costs an in-memory/external sort of rows.
func (m Model) Sort(rows float64) float64 {
	if rows < 2 {
		return m.CPUTuple
	}
	n := rows * math.Log2(rows) * m.CPUTuple
	// External runs: pages written+read once when exceeding the buffer.
	pages := m.pages(rows)
	if m.BufferPages > 0 && pages > m.BufferPages {
		n += 2 * pages * m.SeqPage
	}
	return n
}

// NLJoin costs a tuple nested-loop join where the inner subtree must be
// re-evaluated per outer row (its cost is innerCost). Buffering of the inner
// as pages is modeled via the hit ratio.
func (m Model) NLJoin(outerRows, innerRows, innerCost float64) float64 {
	if outerRows < 1 {
		outerRows = 1
	}
	innerPages := m.pages(innerRows)
	hit := m.hitRatio(innerPages)
	// First pass pays full inner cost; re-scans pay only the miss fraction
	// of the I/O plus full CPU.
	rescan := innerCost*(1-hit) + innerRows*m.CPUTuple
	return innerCost + (outerRows-1)*rescan + outerRows*innerRows*m.CPUEval
}

// INLJoin costs an index nested-loop join: one index probe per outer row.
// Repeated probes benefit from locality of reference (the DB2 observation
// [17] and the Mackert/Lohman buffer model [40]): upper index levels and
// previously fetched data pages are served from the buffer pool, so warm
// probes pay only the miss fraction of their page fetches.
func (m Model) INLJoin(outerRows, matchPerOuter, tableRows, tablePages float64, clustered bool) float64 {
	probe := m.IndexScan(matchPerOuter, tableRows, tablePages, clustered)
	if outerRows <= 1 {
		return probe + outerRows*m.CPUTuple
	}
	hit := m.hitRatio(tablePages)
	var warm float64
	if clustered {
		warm = probe*(1-hit) + matchPerOuter*m.CPUTuple
	} else {
		fetches := math.Min(matchPerOuter, tablePages)
		warm = (indexHeight(tableRows)+fetches)*m.RandPage*(1-hit) + matchPerOuter*m.CPUTuple
	}
	return probe + (outerRows-1)*warm + outerRows*m.CPUTuple
}

// MergeJoin costs merging two sorted inputs (excluding any sorts, which are
// costed as explicit enforcers).
func (m Model) MergeJoin(leftRows, rightRows float64) float64 {
	return (leftRows + rightRows) * m.CPUTuple
}

// HashJoin costs building on the right input and probing with the left.
func (m Model) HashJoin(leftRows, rightRows float64) float64 {
	c := rightRows*m.CPUHash + leftRows*m.CPUHash
	// Spill when the build side exceeds memory.
	buildPages := m.pages(rightRows)
	if m.BufferPages > 0 && buildPages > m.BufferPages {
		c += 2 * (buildPages + m.pages(leftRows)) * m.SeqPage
	}
	return c
}

// HashGroupBy costs hash aggregation.
func (m Model) HashGroupBy(rows float64, aggs int) float64 {
	return rows*m.CPUHash + rows*float64(aggs)*m.CPUEval
}

// StreamGroupBy costs streaming aggregation over sorted input.
func (m Model) StreamGroupBy(rows float64, aggs int) float64 {
	return rows*m.CPUTuple + rows*float64(aggs)*m.CPUEval
}

// Exchange costs repartitioning rows across degree workers (§7.1, Hasan's
// communication cost).
func (m Model) Exchange(rows float64, degree int) float64 {
	if degree <= 1 {
		return 0
	}
	return rows * m.CommCostPerRow
}

// Limit is free beyond passing tuples.
func (m Model) Limit(rows float64) float64 { return rows * m.CPUTuple * 0.1 }

// Values costs materializing literal rows.
func (m Model) Values(rows float64) float64 { return rows * m.CPUTuple }
