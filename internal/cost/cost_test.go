package cost

import "testing"

func TestScanCostsMonotone(t *testing.T) {
	m := DefaultModel()
	if m.SeqScan(10, 640, 1) >= m.SeqScan(100, 6400, 1) {
		t.Error("bigger table should cost more")
	}
	if m.SeqScan(10, 640, 0) >= m.SeqScan(10, 640, 5) {
		t.Error("more predicates should cost more")
	}
}

func TestIndexScanClusteredCheaper(t *testing.T) {
	m := DefaultModel()
	cl := m.IndexScan(1000, 100000, 2000, true)
	ncl := m.IndexScan(1000, 100000, 2000, false)
	if cl >= ncl {
		t.Errorf("clustered (%v) should beat non-clustered (%v) for many matches", cl, ncl)
	}
}

func TestIndexVsSeqScanCrossover(t *testing.T) {
	m := DefaultModel()
	tableRows, tablePages := 100000.0, 2000.0
	seq := m.SeqScan(tablePages, tableRows, 1)
	// Very selective: index should win.
	if ix := m.IndexScan(10, tableRows, tablePages, false); ix >= seq {
		t.Errorf("selective index scan (%v) should beat seq scan (%v)", ix, seq)
	}
	// Unselective: seq scan should win.
	if ix := m.IndexScan(80000, tableRows, tablePages, false); ix <= seq {
		t.Errorf("unselective index scan (%v) should lose to seq scan (%v)", ix, seq)
	}
}

func TestBufferModelChangesINLJoin(t *testing.T) {
	with := DefaultModel()
	with.BufferPages = 10000
	without := DefaultModel()
	without.BufferPages = 0
	// Inner table fits in buffer: repeated probes should be much cheaper
	// with the buffer model on.
	cWith := with.INLJoin(1000, 5, 10000, 200, false)
	cWithout := without.INLJoin(1000, 5, 10000, 200, false)
	if cWith >= cWithout {
		t.Errorf("buffer model should reduce INL cost: with=%v without=%v", cWith, cWithout)
	}
}

func TestNLJoinBufferedInner(t *testing.T) {
	m := DefaultModel()
	// Tiny inner relation: rescans should be nearly free I/O-wise.
	small := m.NLJoin(1000, 10, 1.0)
	big := m.NLJoin(1000, 100000, 2000.0)
	if small >= big {
		t.Error("small inner should be much cheaper")
	}
}

func TestSortSpills(t *testing.T) {
	m := DefaultModel()
	inMem := m.Sort(1000)
	spill := m.Sort(1000000)
	if inMem >= spill {
		t.Error("bigger sort should cost more")
	}
	if m.Sort(1) <= 0 {
		t.Error("sort of one row should still have nonzero cost")
	}
}

func TestHashJoinSpills(t *testing.T) {
	m := DefaultModel()
	fit := m.HashJoin(10000, 1000)
	spill := m.HashJoin(10000, 10000000)
	if fit >= spill {
		t.Error("spilling hash join should cost more")
	}
}

func TestMergeVsHashVsNL(t *testing.T) {
	m := DefaultModel()
	// For large equal inputs (already sorted), merge should beat hash
	// slightly and both should crush NL.
	l, r := 100000.0, 100000.0
	mj := m.MergeJoin(l, r)
	hj := m.HashJoin(l, r)
	nl := m.NLJoin(l, r, 2000)
	if mj >= hj {
		t.Errorf("merge (%v) should beat hash (%v) on sorted inputs", mj, hj)
	}
	if hj >= nl {
		t.Errorf("hash (%v) should beat NL (%v)", hj, nl)
	}
}

func TestGroupByAndMisc(t *testing.T) {
	m := DefaultModel()
	if m.HashGroupBy(1000, 2) <= m.StreamGroupBy(1000, 2) {
		t.Error("stream group-by should be cheaper than hash")
	}
	if m.Exchange(1000, 1) != 0 {
		t.Error("degree-1 exchange should be free")
	}
	if m.Exchange(1000, 4) <= 0 {
		t.Error("repartitioning should cost")
	}
	if m.Limit(100) < 0 || m.Values(10) <= 0 {
		t.Error("limit/values sanity")
	}
	if m.Filter(100, 2) <= 0 || m.Project(100, 2) <= 0 {
		t.Error("filter/project sanity")
	}
}

func TestHitRatio(t *testing.T) {
	m := DefaultModel()
	if m.hitRatio(100) != 1 {
		t.Error("table smaller than buffer should fully hit")
	}
	if h := m.hitRatio(512); h <= 0 || h >= 1 {
		t.Errorf("partial hit ratio = %v", h)
	}
	m.BufferPages = 0
	if m.hitRatio(10) != 0 {
		t.Error("disabled buffer model should never hit")
	}
}
