package datum

// compare_bench_test.go pins down the same-kind fast path in Compare: a
// correctness check against the generic family-resolution path over random
// datum pairs, and BenchmarkDatumCompare measuring the fast path against the
// generic baseline it replaced for the hot same-kind cases.

import (
	"math/rand"
	"testing"
)

// genericCompare is the pre-fast-path implementation: always resolve the
// comparison family via rank(), then dispatch. Kept here as the benchmark
// baseline and the reference the fast path must agree with.
func genericCompare(a, b D) int {
	ra, rb := rank(a.k), rank(b.k)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch a.k {
	case KindNull:
		return 0
	case KindBool:
		return cmpInt64(a.i, b.i)
	case KindInt:
		if b.k == KindFloat {
			return cmpFloat64(float64(a.i), b.f)
		}
		return cmpInt64(a.i, b.i)
	case KindFloat:
		if b.k == KindInt {
			return cmpFloat64(a.f, float64(b.i))
		}
		return cmpFloat64(a.f, b.f)
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
		return 0
	}
	return 0
}

func randCmpDatum(rng *rand.Rand) D {
	switch rng.Intn(5) {
	case 0:
		return Null
	case 1:
		return NewBool(rng.Intn(2) == 0)
	case 2:
		return NewInt(int64(rng.Intn(20) - 10))
	case 3:
		return NewFloat(float64(rng.Intn(40))/4 - 5)
	default:
		return NewString([]string{"", "ant", "bee", "cat"}[rng.Intn(4)])
	}
}

// TestCompareFastPathMatchesGeneric: the same-kind fast path must be
// observationally identical to the generic family-resolution path.
func TestCompareFastPathMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20000; trial++ {
		a, b := randCmpDatum(rng), randCmpDatum(rng)
		if got, want := Compare(a, b), genericCompare(a, b); got != want {
			t.Fatalf("Compare(%s, %s) = %d, generic path says %d", a, b, got, want)
		}
	}
}

// comparePairs builds same-kind pairs of one kind, the case the fast path
// targets.
func comparePairs(kind Kind, n int) ([]D, []D) {
	rng := rand.New(rand.NewSource(7))
	a, b := make([]D, n), make([]D, n)
	for i := 0; i < n; i++ {
		for {
			x, y := randCmpDatum(rng), randCmpDatum(rng)
			if x.k == kind && y.k == kind {
				a[i], b[i] = x, y
				break
			}
		}
	}
	return a, b
}

func BenchmarkDatumCompare(b *testing.B) {
	const n = 1024
	for _, tc := range []struct {
		name string
		kind Kind
	}{
		{"int", KindInt},
		{"float", KindFloat},
		{"string", KindString},
	} {
		xs, ys := comparePairs(tc.kind, n)
		b.Run(tc.name+"/fast", func(b *testing.B) {
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += Compare(xs[i%n], ys[i%n])
			}
			_ = sink
		})
		b.Run(tc.name+"/generic", func(b *testing.B) {
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += genericCompare(xs[i%n], ys[i%n])
			}
			_ = sink
		})
	}
}
