// Package datum implements the value model shared by every layer of the
// engine: NULL-aware typed scalar values, rows, comparison, and hashing.
//
// Datums are small value types (no pointers except for strings) so that rows
// can be copied cheaply and stored compactly in the in-memory storage engine.
// SQL three-valued comparison semantics live in the expression evaluator; this
// package provides total-order comparison (NULL first) used by sorting,
// merge joins and index structures.
package datum

import (
	"fmt"
	"hash/maphash"
	"math"
	"strconv"
)

// Kind identifies the dynamic type of a Datum.
type Kind uint8

// The supported scalar kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Numeric reports whether values of this kind participate in arithmetic.
func (k Kind) Numeric() bool { return k == KindInt || k == KindFloat }

// D is a single SQL value. The zero value is NULL.
type D struct {
	k Kind
	i int64 // also holds bool as 0/1
	f float64
	s string
}

// Null is the SQL NULL value.
var Null = D{}

// NewInt returns an INTEGER datum.
func NewInt(v int64) D { return D{k: KindInt, i: v} }

// NewFloat returns a FLOAT datum.
func NewFloat(v float64) D { return D{k: KindFloat, f: v} }

// NewString returns a VARCHAR datum.
func NewString(v string) D { return D{k: KindString, s: v} }

// NewBool returns a BOOLEAN datum.
func NewBool(v bool) D {
	var i int64
	if v {
		i = 1
	}
	return D{k: KindBool, i: i}
}

// Kind returns the datum's dynamic type.
func (d D) Kind() Kind { return d.k }

// IsNull reports whether the datum is SQL NULL.
func (d D) IsNull() bool { return d.k == KindNull }

// Int returns the integer value. It panics on non-integer datums.
func (d D) Int() int64 {
	if d.k != KindInt {
		panic(fmt.Sprintf("datum: Int() on %s", d.k))
	}
	return d.i
}

// Float returns the float value of a FLOAT or INTEGER datum.
func (d D) Float() float64 {
	switch d.k {
	case KindFloat:
		return d.f
	case KindInt:
		return float64(d.i)
	}
	panic(fmt.Sprintf("datum: Float() on %s", d.k))
}

// Str returns the string value. It panics on non-string datums.
func (d D) Str() string {
	if d.k != KindString {
		panic(fmt.Sprintf("datum: Str() on %s", d.k))
	}
	return d.s
}

// Bool returns the boolean value. It panics on non-boolean datums.
func (d D) Bool() bool {
	if d.k != KindBool {
		panic(fmt.Sprintf("datum: Bool() on %s", d.k))
	}
	return d.i != 0
}

// String renders the datum for display and EXPLAIN output.
func (d D) String() string {
	switch d.k {
	case KindNull:
		return "NULL"
	case KindBool:
		if d.i != 0 {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(d.i, 10)
	case KindFloat:
		return strconv.FormatFloat(d.f, 'g', -1, 64)
	case KindString:
		return "'" + d.s + "'"
	default:
		return "?"
	}
}

// Compare imposes a total order over all datums: NULL < BOOL < numeric <
// STRING; integers and floats compare by numeric value. It returns -1, 0 or
// +1. This is the order used by sorts, merge joins and ordered indexes; SQL
// NULL comparison semantics are handled above this layer.
func Compare(a, b D) int {
	// Same-kind fast path: the overwhelmingly common case in sorts, merge
	// joins and group-key checks skips the rank() family resolution entirely
	// (BenchmarkDatumCompare measures the delta against the generic path).
	if a.k == b.k {
		switch a.k {
		case KindInt:
			return cmpInt64(a.i, b.i)
		case KindFloat:
			return cmpFloat64(a.f, b.f)
		case KindString:
			switch {
			case a.s < b.s:
				return -1
			case a.s > b.s:
				return 1
			}
			return 0
		case KindBool:
			return cmpInt64(a.i, b.i)
		case KindNull:
			return 0
		}
	}
	ra, rb := rank(a.k), rank(b.k)
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch a.k {
	case KindNull:
		return 0
	case KindBool:
		return cmpInt64(a.i, b.i)
	case KindInt:
		if b.k == KindFloat {
			return cmpFloat64(float64(a.i), b.f)
		}
		return cmpInt64(a.i, b.i)
	case KindFloat:
		if b.k == KindInt {
			return cmpFloat64(a.f, float64(b.i))
		}
		return cmpFloat64(a.f, b.f)
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		}
		return 0
	}
	return 0
}

// rank groups kinds into comparison families; INT and FLOAT share a family so
// that 1 == 1.0.
func rank(k Kind) int {
	switch k {
	case KindNull:
		return 0
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 2
	case KindString:
		return 3
	}
	return 4
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat64(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Equal reports a == b under Compare. NULL equals NULL here (used for
// grouping and duplicate elimination, which treat NULLs as equal per SQL).
func Equal(a, b D) bool { return Compare(a, b) == 0 }

var hashSeed = maphash.MakeSeed()

// HashInto mixes the datum into h. Datums that compare equal hash equally
// (in particular 1 and 1.0).
func (d D) HashInto(h *maphash.Hash) {
	switch d.k {
	case KindNull:
		h.WriteByte(0)
	case KindBool:
		h.WriteByte(1)
		h.WriteByte(byte(d.i))
	case KindInt:
		h.WriteByte(2)
		writeUint64(h, math.Float64bits(float64(d.i)))
	case KindFloat:
		h.WriteByte(2)
		writeUint64(h, math.Float64bits(d.f))
	case KindString:
		h.WriteByte(3)
		h.WriteString(d.s)
	}
}

func writeUint64(h *maphash.Hash, v uint64) {
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	h.Write(buf[:])
}

// Hash returns a hash of the datum, consistent with Equal.
func (d D) Hash() uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	d.HashInto(&h)
	return h.Sum64()
}

// Size returns the modeled width of the datum in bytes, used by the cost
// model and page accounting in storage.
func (d D) Size() int {
	switch d.k {
	case KindNull:
		return 1
	case KindBool:
		return 1
	case KindInt, KindFloat:
		return 8
	case KindString:
		return 1 + len(d.s)
	}
	return 1
}
