package datum

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindBool:   "BOOLEAN",
		KindInt:    "INTEGER",
		KindFloat:  "FLOAT",
		KindString: "VARCHAR",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestAccessors(t *testing.T) {
	if got := NewInt(42).Int(); got != 42 {
		t.Errorf("Int() = %d", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Errorf("Float() = %v", got)
	}
	if got := NewInt(3).Float(); got != 3.0 {
		t.Errorf("int widened Float() = %v", got)
	}
	if got := NewString("x").Str(); got != "x" {
		t.Errorf("Str() = %q", got)
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool() broken")
	}
	if !Null.IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull() broken")
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Int on string", func() { NewString("a").Int() })
	mustPanic("Float on bool", func() { NewBool(true).Float() })
	mustPanic("Str on int", func() { NewInt(1).Str() })
	mustPanic("Bool on null", func() { Null.Bool() })
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b D
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(1), 1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(1), NewFloat(1.0), 0},
		{NewFloat(1.5), NewInt(2), -1},
		{NewInt(3), NewFloat(2.5), 1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("a"), 1},
		{NewString("a"), NewString("a"), 0},
		{Null, NewInt(-1 << 60), -1},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewInt(0), -1}, // bool family < numeric family
		{NewInt(1), NewString(""), -1}, // numeric family < string family
		{Null, Null, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Compare(c.b, c.a); got != -c.want {
			t.Errorf("Compare(%s, %s) = %d, want %d (antisymmetry)", c.b, c.a, got, -c.want)
		}
	}
}

func randDatum(r *rand.Rand) D {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return NewBool(r.Intn(2) == 0)
	case 2:
		return NewInt(int64(r.Intn(20) - 10))
	case 3:
		return NewFloat(float64(r.Intn(40))/2 - 10)
	default:
		return NewString(string(rune('a' + r.Intn(5))))
	}
}

// Property: Compare is a total order (transitive via sort consistency) and
// Equal datums hash identically.
func TestCompareHashProperty(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		ds := make([]D, 30)
		for i := range ds {
			ds[i] = randDatum(r)
		}
		sort.Slice(ds, func(i, j int) bool { return Compare(ds[i], ds[j]) < 0 })
		for i := 1; i < len(ds); i++ {
			if Compare(ds[i-1], ds[i]) > 0 {
				t.Fatalf("sort not consistent at %d: %s > %s", i, ds[i-1], ds[i])
			}
			if Equal(ds[i-1], ds[i]) && ds[i-1].Hash() != ds[i].Hash() {
				t.Fatalf("equal datums with different hashes: %s, %s", ds[i-1], ds[i])
			}
		}
	}
}

func TestIntFloatHashEqual(t *testing.T) {
	if NewInt(7).Hash() != NewFloat(7).Hash() {
		t.Error("7 and 7.0 must hash equal")
	}
}

func TestCompareReflexiveQuick(t *testing.T) {
	f := func(a int64, b float64, s string) bool {
		for _, d := range []D{NewInt(a), NewFloat(b), NewString(s)} {
			if Compare(d, d) != 0 || !Equal(d, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	cases := map[string]D{
		"NULL":  Null,
		"true":  NewBool(true),
		"false": NewBool(false),
		"42":    NewInt(42),
		"2.5":   NewFloat(2.5),
		"'hi'":  NewString("hi"),
	}
	for want, d := range cases {
		if got := d.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestSize(t *testing.T) {
	if Null.Size() != 1 || NewBool(true).Size() != 1 {
		t.Error("null/bool size")
	}
	if NewInt(1).Size() != 8 || NewFloat(1).Size() != 8 {
		t.Error("numeric size")
	}
	if NewString("abc").Size() != 4 {
		t.Error("string size")
	}
}

func TestRowCloneConcat(t *testing.T) {
	r := Row{NewInt(1), NewString("a")}
	c := r.Clone()
	c[0] = NewInt(9)
	if r[0].Int() != 1 {
		t.Error("Clone aliases original")
	}
	cat := r.Concat(Row{NewBool(true)})
	if len(cat) != 3 || !cat[2].Bool() {
		t.Error("Concat wrong")
	}
	if r.Size() != 8+2 {
		t.Errorf("Row.Size = %d", r.Size())
	}
	if got := r.String(); got != "(1, 'a')" {
		t.Errorf("Row.String = %q", got)
	}
}

func TestRowHashEqualOn(t *testing.T) {
	a := Row{NewInt(1), NewString("x"), Null}
	b := Row{NewString("x"), NewInt(1), Null}
	if !EqualOn(a, b, []int{0, 1, 2}, []int{1, 0, 2}) {
		t.Error("EqualOn should match with remapped cols (NULL = NULL)")
	}
	if a.Hash([]int{0, 1}) != b.Hash([]int{1, 0}) {
		t.Error("hash should agree on equal column sequences")
	}
	if EqualOn(a, b, []int{0}, []int{0}) {
		t.Error("1 vs 'x' should differ")
	}
}

func TestCompareRows(t *testing.T) {
	a := Row{NewInt(1), NewInt(5)}
	b := Row{NewInt(1), NewInt(3)}
	spec := []SortSpec{{Col: 0}, {Col: 1}}
	if CompareRows(a, b, spec) != 1 {
		t.Error("a should sort after b")
	}
	desc := []SortSpec{{Col: 1, Desc: true}}
	if CompareRows(a, b, desc) != -1 {
		t.Error("desc should invert")
	}
	if CompareRows(a, a, spec) != 0 {
		t.Error("reflexive")
	}
}
