package datum

import (
	"hash/maphash"
	"strings"
)

// Row is a tuple of datums. Rows flow between physical operators and are
// stored in heap tables.
type Row []D

// Clone returns a copy of the row that does not alias r's backing array.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Concat returns a new row holding r followed by s.
func (r Row) Concat(s Row) Row {
	out := make(Row, 0, len(r)+len(s))
	out = append(out, r...)
	out = append(out, s...)
	return out
}

// Size returns the modeled byte width of the row.
func (r Row) Size() int {
	n := 0
	for _, d := range r {
		n += d.Size()
	}
	return n
}

// String renders the row as "(v1, v2, ...)".
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, d := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Hash hashes the datums of r at the given column offsets; it is consistent
// with equality of those columns under Equal.
func (r Row) Hash(cols []int) uint64 {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	for _, c := range cols {
		r[c].HashInto(&h)
	}
	return h.Sum64()
}

// EqualOn reports whether rows a and b agree on the given column offsets
// (NULL = NULL, the grouping interpretation).
func EqualOn(a, b Row, acols, bcols []int) bool {
	for i := range acols {
		if !Equal(a[acols[i]], b[bcols[i]]) {
			return false
		}
	}
	return true
}

// SortSpec describes one sort key: a column offset and direction.
type SortSpec struct {
	Col  int
	Desc bool
}

// CompareRows compares a and b under the given sort specification.
func CompareRows(a, b Row, spec []SortSpec) int {
	for _, s := range spec {
		c := Compare(a[s.Col], b[s.Col])
		if c != 0 {
			if s.Desc {
				return -c
			}
			return c
		}
	}
	return 0
}
