// Column vectors for the vectorized execution path: one typed slice per
// column plus a NULL bitmap, so tight kernels in the executor can loop over
// raw []int64/[]float64/[]string without per-row interface dispatch. Vectors
// live in this package (not exec) so the storage engine can fill them
// directly from heap rows.
package datum

import "sort"

// StrDict is a sorted string dictionary shared by dictionary-encoded vectors.
// Vals is sorted ascending and free of duplicates, so a code comparison
// orders the same way as the string comparison it stands for, and a constant
// translates to code space with one binary search. Dictionaries are immutable
// after construction and compared by pointer: two vectors with the same Dict
// pointer speak the same code space.
type StrDict struct {
	Vals []string
}

// Code returns the code of s and whether s is present in the dictionary.
func (d *StrDict) Code(s string) (int64, bool) {
	i := sort.SearchStrings(d.Vals, s)
	if i < len(d.Vals) && d.Vals[i] == s {
		return int64(i), true
	}
	return 0, false
}

// CodeFloor returns the number of dictionary entries < s — the first code
// whose value is >= s. Range predicates on encoded columns translate their
// constant bound to this code interval once and then compare codes.
func (d *StrDict) CodeFloor(s string) int64 {
	return int64(sort.SearchStrings(d.Vals, s))
}

// Bytes returns the modeled heap size of the dictionary payload: string
// bytes plus a header per entry, matching the accounting D.Size uses.
func (d *StrDict) Bytes() int64 {
	total := int64(0)
	for _, s := range d.Vals {
		total += int64(16 + len(s))
	}
	return total
}

// Bitmap is a packed NULL bitmap: bit i set means row i is NULL.
type Bitmap []uint64

// NewBitmap returns a bitmap able to hold n bits, all clear.
func NewBitmap(n int) Bitmap { return make(Bitmap, (n+63)/64) }

// Get reports whether bit i is set. Bits beyond the bitmap's length are
// clear (the bitmap only grows to the highest bit ever set).
func (b Bitmap) Get(i int) bool {
	w := i >> 6
	if w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(i)&63)) != 0
}

// Set sets bit i, growing the bitmap as needed.
func (b *Bitmap) Set(i int) {
	for len(*b) <= i>>6 {
		*b = append(*b, 0)
	}
	(*b)[i>>6] |= 1 << (uint(i) & 63)
}

// Vec is one column of a batch. The representation is chosen by kind:
//
//	KindInt, KindBool → Ints (bools stored 0/1)
//	KindFloat         → Floats
//	KindString        → Strs
//	KindNull          → no payload (every row is NULL)
//	boxed             → Ds (datums; the correctness fallback for columns
//	                    whose stored values mix kinds, e.g. an INT column
//	                    holding FLOAT datums via numeric coercion)
//
// NULL rows are tracked in the bitmap; the payload slot of a NULL row holds
// the zero value and must not be read.
//
// A KindString vector may additionally be dictionary-encoded: Dict is
// non-nil, per-row codes live in Ints (indices into Dict.Vals, 0 for NULL
// rows) and Strs is unused. Kernels that understand the encoding operate on
// the codes directly; everything else sees correct values through D, which
// decodes transparently.
type Vec struct {
	kind Kind
	n    int
	// anyKind marks the boxed representation; kind is then the kind of the
	// first non-null value, for diagnostics only.
	anyKind bool

	Ints   []int64
	Floats []float64
	Strs   []string
	Ds     []D

	// Dict marks the dictionary-encoded string representation; codes are in
	// Ints. Nil for every other representation.
	Dict *StrDict

	nulls    Bitmap
	numNulls int
}

// NewVec returns an empty vector of the given kind with room for capacity
// rows.
func NewVec(k Kind, capacity int) *Vec {
	v := &Vec{kind: k}
	v.grow(capacity)
	return v
}

// NewAnyVec returns an empty boxed-representation vector.
func NewAnyVec(capacity int) *Vec {
	return &Vec{anyKind: true, Ds: make([]D, 0, capacity)}
}

// NewTypedVec assembles a typed vector directly from its parts — the decode
// path of the columnar segment format, which reads whole payload slices and
// must not pay a per-value append. Exactly one payload slice matching k must
// be populated (none for KindNull); NULL slots must hold the payload's zero
// value, and nulls may be nil when numNulls is 0.
func NewTypedVec(k Kind, n int, ints []int64, floats []float64, strs []string, nulls Bitmap, numNulls int) *Vec {
	return &Vec{kind: k, n: n, Ints: ints, Floats: floats, Strs: strs, nulls: nulls, numNulls: numNulls}
}

// NewBoxedVec wraps datums in a boxed vector without copying.
func NewBoxedVec(ds []D) *Vec {
	return &Vec{anyKind: true, n: len(ds), Ds: ds}
}

// NewDictVec assembles a dictionary-encoded string vector from its parts —
// the decode path of dictionary column blocks. codes index dict.Vals; NULL
// rows must hold code 0 and be marked in nulls.
func NewDictVec(n int, codes []int64, dict *StrDict, nulls Bitmap, numNulls int) *Vec {
	return &Vec{kind: KindString, n: n, Ints: codes, Dict: dict, nulls: nulls, numNulls: numNulls}
}

// materializeDict decodes a dictionary-encoded vector to the plain string
// representation in place. Only caller-owned vectors may be materialized;
// shared (cached) vectors are always the src side of an append.
func (v *Vec) materializeDict() {
	if v.Dict == nil {
		return
	}
	strs := make([]string, v.n)
	for i := 0; i < v.n; i++ {
		if v.numNulls == 0 || !v.nulls.Get(i) {
			strs[i] = v.Dict.Vals[v.Ints[i]]
		}
	}
	v.Strs = strs
	v.Ints = v.Ints[:0]
	v.Dict = nil
}

func (v *Vec) grow(capacity int) {
	if capacity <= 0 {
		return
	}
	switch v.kind {
	case KindInt, KindBool:
		if v.Ints == nil {
			v.Ints = make([]int64, 0, capacity)
		}
	case KindFloat:
		if v.Floats == nil {
			v.Floats = make([]float64, 0, capacity)
		}
	case KindString:
		if v.Strs == nil {
			v.Strs = make([]string, 0, capacity)
		}
	}
}

// Kind returns the vector's static kind.
func (v *Vec) Kind() Kind { return v.kind }

// Boxed reports whether the vector uses the boxed (KindAny) representation.
func (v *Vec) Boxed() bool { return v.anyKind }

// Len returns the number of rows.
func (v *Vec) Len() int { return v.n }

// HasNulls reports whether any row is NULL.
func (v *Vec) HasNulls() bool { return v.numNulls > 0 }

// NumNulls returns the number of NULL rows.
func (v *Vec) NumNulls() int { return v.numNulls }

// Null reports whether row i is NULL.
func (v *Vec) Null(i int) bool {
	if v.anyKind {
		return v.Ds[i].IsNull()
	}
	if v.kind == KindNull {
		return true
	}
	return v.numNulls > 0 && v.nulls.Get(i)
}

// Nulls exposes the bitmap (nil when the vector has no NULLs). Not
// meaningful for boxed or all-NULL vectors.
func (v *Vec) Nulls() Bitmap {
	if v.numNulls == 0 {
		return nil
	}
	return v.nulls
}

// Reset empties the vector in place, keeping its backing storage.
func (v *Vec) Reset(k Kind) {
	v.kind = k
	v.anyKind = false
	v.Dict = nil
	v.n = 0
	v.numNulls = 0
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Strs = v.Strs[:0]
	v.Ds = v.Ds[:0]
	for i := range v.nulls {
		v.nulls[i] = 0
	}
}

// AppendNull appends a NULL row.
func (v *Vec) AppendNull() {
	if v.anyKind {
		v.Ds = append(v.Ds, Null)
		v.n++
		return
	}
	v.nulls.Set(v.n)
	v.numNulls++
	if v.Dict != nil {
		v.Ints = append(v.Ints, 0)
		v.n++
		return
	}
	switch v.kind {
	case KindInt, KindBool:
		v.Ints = append(v.Ints, 0)
	case KindFloat:
		v.Floats = append(v.Floats, 0)
	case KindString:
		v.Strs = append(v.Strs, "")
	}
	v.n++
}

// AppendD appends a datum, upgrading to the boxed representation when the
// datum's kind does not match the vector's (numeric coercion lets an INT
// column store FLOAT datums, so typed fills must tolerate strays).
func (v *Vec) AppendD(d D) {
	if v.anyKind {
		v.Ds = append(v.Ds, d)
		v.n++
		return
	}
	if d.k == KindNull {
		v.AppendNull()
		return
	}
	if v.Dict != nil {
		if d.k == KindString {
			if code, ok := v.Dict.Code(d.s); ok {
				v.Ints = append(v.Ints, code)
				v.n++
				return
			}
		}
		// Value outside the dictionary (or a stray kind): decode in place
		// and take the plain path below.
		v.materializeDict()
	}
	if d.k != v.kind {
		if v.kind == KindNull && v.n == v.numNulls {
			// An all-NULL vector adopts the kind of its first value.
			v.retype(d.k)
		} else {
			v.upgradeAny()
		}
		v.AppendD(d)
		return
	}
	switch v.kind {
	case KindInt, KindBool:
		v.Ints = append(v.Ints, d.i)
	case KindFloat:
		v.Floats = append(v.Floats, d.f)
	case KindString:
		v.Strs = append(v.Strs, d.s)
	}
	v.n++
}

// retype switches an all-NULL vector to a typed representation.
func (v *Vec) retype(k Kind) {
	v.kind = k
	for i := 0; i < v.n; i++ {
		switch k {
		case KindInt, KindBool:
			v.Ints = append(v.Ints, 0)
		case KindFloat:
			v.Floats = append(v.Floats, 0)
		case KindString:
			v.Strs = append(v.Strs, "")
		}
		v.nulls.Set(i)
	}
}

// upgradeAny converts the vector to the boxed representation in place.
func (v *Vec) upgradeAny() {
	ds := make([]D, v.n, v.n+8)
	for i := 0; i < v.n; i++ {
		ds[i] = v.D(i)
	}
	v.anyKind = true
	v.Ds = ds
	v.Ints, v.Floats, v.Strs = nil, nil, nil
	v.Dict = nil
}

// D reconstructs row i as a datum.
func (v *Vec) D(i int) D {
	if v.anyKind {
		return v.Ds[i]
	}
	if v.kind == KindNull || (v.numNulls > 0 && v.nulls.Get(i)) {
		return Null
	}
	if v.Dict != nil {
		return D{k: KindString, s: v.Dict.Vals[v.Ints[i]]}
	}
	switch v.kind {
	case KindInt:
		return D{k: KindInt, i: v.Ints[i]}
	case KindBool:
		return D{k: KindBool, i: v.Ints[i]}
	case KindFloat:
		return D{k: KindFloat, f: v.Floats[i]}
	case KindString:
		return D{k: KindString, s: v.Strs[i]}
	}
	return Null
}

// canAdoptDict reports whether v may take on src's dictionary: v must be an
// empty plain string vector (or already share the dictionary), so adopting
// changes no existing row.
func (v *Vec) canAdoptDict(dict *StrDict) bool {
	if v.Dict == dict {
		return true
	}
	return v.Dict == nil && !v.anyKind && v.kind == KindString && v.n == 0
}

// AppendVec appends row i of src (any representation) to v. Rows gathered
// from a dictionary-encoded source stay encoded when v shares (or can adopt)
// the source dictionary.
func (v *Vec) AppendVec(src *Vec, i int) {
	if src.Dict != nil && v.canAdoptDict(src.Dict) {
		v.Dict = src.Dict
		if src.numNulls > 0 && src.nulls.Get(i) {
			v.nulls.Set(v.n)
			v.numNulls++
		}
		v.Ints = append(v.Ints, src.Ints[i])
		v.n++
		return
	}
	v.AppendD(src.D(i))
}

// AppendRange appends rows [lo, hi) of src to v. When both vectors share the
// same typed representation the payload is bulk-copied with one append and
// only the NULL bits are walked; mismatched or boxed representations fall
// back to per-row AppendD (which upgrades v as needed).
func (v *Vec) AppendRange(src *Vec, lo, hi int) {
	if hi <= lo {
		return
	}
	if v.Dict != nil || src.Dict != nil {
		if src.Dict != nil && v.canAdoptDict(src.Dict) {
			// Same (or adoptable) code space: bulk-copy the codes and walk
			// only the NULL bits — the scan stays encoded across segments.
			v.Dict = src.Dict
			v.Ints = append(v.Ints, src.Ints[lo:hi]...)
			if src.numNulls > 0 {
				for i := lo; i < hi; i++ {
					if src.nulls.Get(i) {
						v.nulls.Set(v.n + i - lo)
						v.numNulls++
					}
				}
			}
			v.n += hi - lo
			return
		}
		if v.Dict != nil {
			v.materializeDict()
		}
		if src.Dict != nil {
			for i := lo; i < hi; i++ {
				v.AppendD(src.D(i))
			}
			return
		}
	}
	if v.anyKind || src.anyKind || v.kind != src.kind || v.kind == KindNull {
		for i := lo; i < hi; i++ {
			v.AppendD(src.D(i))
		}
		return
	}
	switch v.kind {
	case KindInt, KindBool:
		v.Ints = append(v.Ints, src.Ints[lo:hi]...)
	case KindFloat:
		v.Floats = append(v.Floats, src.Floats[lo:hi]...)
	case KindString:
		v.Strs = append(v.Strs, src.Strs[lo:hi]...)
	}
	if src.numNulls > 0 {
		for i := lo; i < hi; i++ {
			if src.nulls.Get(i) {
				v.nulls.Set(v.n + i - lo)
				v.numNulls++
			}
		}
	}
	v.n += hi - lo
}

// AppendRowsCol appends column ord of each row to v — the bulk form of
// AppendD for heap scans. Rows whose value already matches v's typed
// representation skip AppendD's per-value dynamic-kind dispatch; the first
// stray kind (numeric coercion allows them) falls back to AppendD for the
// remainder of the slice.
func (v *Vec) AppendRowsCol(rows []Row, ord int) {
	if v.Dict != nil {
		v.materializeDict()
	}
	if v.anyKind {
		for _, r := range rows {
			v.Ds = append(v.Ds, r[ord])
		}
		v.n += len(rows)
		return
	}
	switch v.kind {
	case KindInt, KindBool:
		for ri, r := range rows {
			d := r[ord]
			if d.k == v.kind {
				v.Ints = append(v.Ints, d.i)
				v.n++
			} else if d.k == KindNull {
				v.AppendNull()
			} else {
				v.appendRowsColSlow(rows[ri:], ord)
				return
			}
		}
	case KindFloat:
		for ri, r := range rows {
			d := r[ord]
			if d.k == KindFloat {
				v.Floats = append(v.Floats, d.f)
				v.n++
			} else if d.k == KindNull {
				v.AppendNull()
			} else {
				v.appendRowsColSlow(rows[ri:], ord)
				return
			}
		}
	case KindString:
		for ri, r := range rows {
			d := r[ord]
			if d.k == KindString {
				v.Strs = append(v.Strs, d.s)
				v.n++
			} else if d.k == KindNull {
				v.AppendNull()
			} else {
				v.appendRowsColSlow(rows[ri:], ord)
				return
			}
		}
	default:
		v.appendRowsColSlow(rows, ord)
	}
}

func (v *Vec) appendRowsColSlow(rows []Row, ord int) {
	for _, r := range rows {
		v.AppendD(r[ord])
	}
}

// DataBytes returns the modeled width of the rows selected by sel (all rows
// when sel is nil), matching D.Size over the reconstructed datums — used so
// batch memory reservations agree with the row path's accounting.
func (v *Vec) DataBytes(sel []int32) int64 {
	var total int64
	if sel == nil {
		for i := 0; i < v.n; i++ {
			total += int64(v.D(i).Size())
		}
		return total
	}
	for _, i := range sel {
		total += int64(v.D(int(i)).Size())
	}
	return total
}
