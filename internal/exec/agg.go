package exec

import (
	"fmt"

	"repro/internal/datum"
	"repro/internal/logical"
)

// aggAcc accumulates one aggregate over a group.
type aggAcc interface {
	add(v datum.D)
	// merge folds another accumulator of the same concrete type into this
	// one — used by parallel aggregation to combine thread-local partials at
	// the pipeline barrier (§7.1).
	merge(o aggAcc)
	result() datum.D
}

func newAgg(item logical.AggItem) aggAcc {
	var base aggAcc
	switch item.Fn {
	case logical.AggCount:
		base = &countAcc{star: item.Arg == nil}
	case logical.AggSum:
		base = &sumAcc{}
	case logical.AggAvg:
		base = &avgAcc{}
	case logical.AggMin:
		base = &minmaxAcc{min: true}
	case logical.AggMax:
		base = &minmaxAcc{}
	default:
		panic(fmt.Sprintf("exec: unknown aggregate %v", item.Fn))
	}
	if item.Distinct {
		return &distinctAcc{inner: base, seen: map[uint64][]datum.D{}}
	}
	return base
}

type countAcc struct {
	star bool
	n    int64
}

func (a *countAcc) add(v datum.D) {
	if a.star || !v.IsNull() {
		a.n++
	}
}
func (a *countAcc) merge(o aggAcc)  { a.n += o.(*countAcc).n }
func (a *countAcc) result() datum.D { return datum.NewInt(a.n) }

// sumAcc sums ints exactly in int64; float inputs switch it to a compensated
// exact float sum so the result is bit-identical whether rows arrive in one
// serial stream or as morsel partials merged at any parallelism degree.
type sumAcc struct {
	any     bool
	isFloat bool
	i       int64
	f       compSum
}

func (a *sumAcc) add(v datum.D) {
	if v.IsNull() {
		return
	}
	a.any = true
	if v.Kind() == datum.KindFloat || a.isFloat {
		a.promote()
		a.f.add(v.Float())
		return
	}
	a.i += v.Int()
}

// promote switches an int-typed accumulator to the float path, carrying the
// integer partial sum into the expansion.
func (a *sumAcc) promote() {
	if !a.isFloat {
		a.f.add(float64(a.i))
		a.isFloat = true
	}
}

func (a *sumAcc) merge(o aggAcc) {
	b := o.(*sumAcc)
	if !b.any {
		return
	}
	a.any = true
	if b.isFloat || a.isFloat {
		a.promote()
		if b.isFloat {
			a.f.merge(&b.f)
		} else {
			a.f.add(float64(b.i))
		}
		return
	}
	a.i += b.i
}

func (a *sumAcc) result() datum.D {
	if !a.any {
		return datum.Null
	}
	if a.isFloat {
		return datum.NewFloat(a.f.value())
	}
	return datum.NewInt(a.i)
}

// avgAcc carries an exact sum and a count; like sumAcc, the division happens
// once at result time over the order-independent exact sum, so parallel and
// serial AVG agree to the bit.
type avgAcc struct {
	n   int64
	sum compSum
}

func (a *avgAcc) add(v datum.D) {
	if v.IsNull() {
		return
	}
	a.n++
	a.sum.add(v.Float())
}

func (a *avgAcc) merge(o aggAcc) {
	b := o.(*avgAcc)
	a.n += b.n
	a.sum.merge(&b.sum)
}

func (a *avgAcc) result() datum.D {
	if a.n == 0 {
		return datum.Null
	}
	return datum.NewFloat(a.sum.value() / float64(a.n))
}

type minmaxAcc struct {
	min bool
	any bool
	val datum.D
}

func (a *minmaxAcc) add(v datum.D) {
	if v.IsNull() {
		return
	}
	if !a.any {
		a.any = true
		a.val = v
		return
	}
	c := datum.Compare(v, a.val)
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.val = v
	}
}

func (a *minmaxAcc) merge(o aggAcc) {
	b := o.(*minmaxAcc)
	if b.any {
		a.add(b.val)
	}
}

func (a *minmaxAcc) result() datum.D {
	if !a.any {
		return datum.Null
	}
	return a.val
}

// distinctAcc deduplicates inputs before feeding the inner accumulator.
type distinctAcc struct {
	inner aggAcc
	seen  map[uint64][]datum.D
}

func (a *distinctAcc) add(v datum.D) {
	if v.IsNull() {
		return
	}
	h := v.Hash()
	for _, prev := range a.seen[h] {
		if datum.Equal(prev, v) {
			return
		}
	}
	a.seen[h] = append(a.seen[h], v)
	a.inner.add(v)
}

func (a *distinctAcc) merge(o aggAcc) {
	// Replaying the other side's distinct values through add keeps the
	// combined deduplication exact.
	for _, vs := range o.(*distinctAcc).seen {
		for _, v := range vs {
			a.add(v)
		}
	}
}

func (a *distinctAcc) result() datum.D { return a.inner.result() }

// groupTable accumulates groups keyed by grouping-column values. When mem is
// set, every new group reserves its modeled footprint from the account and
// add/ensure fail with the budget error instead of growing — the caller then
// degrades to spillGroupBy.
type groupTable struct {
	aggs     []logical.AggItem
	groups   map[uint64][]*groupEntry
	order    []*groupEntry // insertion order for determinism
	scalar   bool          // no group cols: always exactly one group
	groupLen int
	mem      *MemAccount // optional memory account, charged per group
	memOp    string      // operator name reported on budget errors
	floor    int64       // minimal working set always granted (spill partitions)
	charged  int64       // bytes reserved so far; returned by release
}

type groupEntry struct {
	key  datum.Row
	accs []aggAcc
}

func newGroupTable(groupLen int, aggs []logical.AggItem) *groupTable {
	gt := &groupTable{
		aggs:     aggs,
		groups:   map[uint64][]*groupEntry{},
		scalar:   groupLen == 0,
		groupLen: groupLen,
	}
	if gt.scalar {
		// mem is never set this early, so the single global group cannot fail.
		gt.ensure(nil, 0)
	}
	return gt
}

// presize pre-allocates the hash buckets and insertion-order slice for an
// expected group count — the optimizer's cardinality estimate, so a
// well-estimated aggregation never rehashes while growing. Call before the
// first add; no-op for scalar tables (their single group already exists).
func (gt *groupTable) presize(hint int) {
	if gt.scalar || hint <= 0 {
		return
	}
	if hint > 1<<20 {
		hint = 1 << 20 // a wild overestimate must not make presizing the cost
	}
	gt.groups = make(map[uint64][]*groupEntry, hint)
	gt.order = make([]*groupEntry, 0, hint)
}

// entryBytes models the footprint of one group: key data plus bookkeeping
// plus a fixed per-accumulator cost.
func (gt *groupTable) entryBytes(key datum.Row) int64 {
	return int64(key.Size()) + entryOverhead + int64(48*len(gt.aggs))
}

// release returns every byte this table reserved to the account.
func (gt *groupTable) release() {
	if gt.mem != nil && gt.charged > 0 {
		gt.mem.Shrink(gt.charged)
		gt.charged = 0
	}
}

func (gt *groupTable) ensure(key datum.Row, hash uint64) (*groupEntry, error) {
	for _, e := range gt.groups[hash] {
		if keysEqual(e.key, key) {
			return e, nil
		}
	}
	if gt.mem != nil {
		n := gt.entryBytes(key)
		if err := gt.mem.GrowFloor(gt.memOp, n, gt.charged, gt.floor); err != nil {
			return nil, err
		}
		gt.charged += n
	}
	e := &groupEntry{key: key, accs: make([]aggAcc, len(gt.aggs))}
	for i, a := range gt.aggs {
		e.accs[i] = newAgg(a)
	}
	gt.groups[hash] = append(gt.groups[hash], e)
	gt.order = append(gt.order, e)
	return e, nil
}

func keysEqual(a, b datum.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !datum.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// add feeds one input row: key values plus the evaluated aggregate arguments
// (one per agg; COUNT(*) entries get a non-NULL placeholder). It fails only
// when creating the group would exceed the memory budget.
func (gt *groupTable) add(key datum.Row, hash uint64, argVals []datum.D) error {
	if gt.scalar {
		key, hash = nil, 0 // single global group
	}
	e, err := gt.ensure(key, hash)
	if err != nil {
		return err
	}
	for i := range gt.aggs {
		e.accs[i].add(argVals[i])
	}
	return nil
}

// mergeFrom folds another table's groups into gt (same group layout and
// aggregates) — the merge phase of two-phase parallel aggregation.
func (gt *groupTable) mergeFrom(o *groupTable) error {
	for _, e := range o.order {
		var h uint64
		if !gt.scalar && len(e.key) > 0 {
			h = e.key.Hash(seqOffsets(len(e.key)))
		}
		dst, err := gt.ensure(e.key, h)
		if err != nil {
			return err
		}
		for i := range gt.aggs {
			dst.accs[i].merge(e.accs[i])
		}
	}
	return nil
}

// rows emits one output row per group: key columns then aggregate results.
func (gt *groupTable) rows() []datum.Row {
	out := make([]datum.Row, 0, len(gt.order))
	for _, e := range gt.order {
		row := make(datum.Row, 0, gt.groupLen+len(gt.aggs))
		row = append(row, e.key...)
		for _, acc := range e.accs {
			row = append(row, acc.result())
		}
		out = append(out, row)
	}
	return out
}
