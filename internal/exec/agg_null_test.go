package exec

// agg_null_test.go pins SQL NULL semantics for every aggregate across every
// execution path: COUNT returns 0 over all-NULL or empty input while
// SUM/AVG/MIN/MAX return NULL — identically whether the accumulator sees rows
// serially (add), is a parallel thread-local partial, or is the merge target
// of partials at the two-phase barrier (merge), with and without DISTINCT.

import (
	"testing"

	"repro/internal/datum"
	"repro/internal/logical"
)

func aggItems() []logical.AggItem {
	arg := logical.Scalar(&logical.Col{})
	return []logical.AggItem{
		{Fn: logical.AggCount},           // COUNT(*)
		{Fn: logical.AggCount, Arg: arg}, // COUNT(x)
		{Fn: logical.AggSum, Arg: arg},
		{Fn: logical.AggAvg, Arg: arg},
		{Fn: logical.AggMin, Arg: arg},
		{Fn: logical.AggMax, Arg: arg},
		{Fn: logical.AggCount, Arg: arg, Distinct: true},
		{Fn: logical.AggSum, Arg: arg, Distinct: true},
		{Fn: logical.AggAvg, Arg: arg, Distinct: true},
	}
}

// wantOverNulls is the required result per aggregate when every input is NULL
// (or there is no input at all). COUNT(*) over n all-NULL rows counts n, so it
// is checked separately.
func wantNullResult(item logical.AggItem) datum.D {
	if item.Fn == logical.AggCount && item.Arg != nil {
		return datum.NewInt(0)
	}
	return datum.Null
}

func TestAggNullSerialAdd(t *testing.T) {
	for _, item := range aggItems() {
		if item.Fn == logical.AggCount && item.Arg == nil {
			continue // COUNT(*) counts rows regardless of NULLs
		}
		acc := newAgg(item)
		for i := 0; i < 5; i++ {
			acc.add(datum.Null)
		}
		if got, want := acc.result(), wantNullResult(item); !datum.Equal(got, want) && !(got.IsNull() && want.IsNull()) {
			t.Errorf("%v over all-NULL via add: got %v want %v", item, got, want)
		}
	}
}

func TestAggNullEmptyAccumulator(t *testing.T) {
	for _, item := range aggItems() {
		acc := newAgg(item)
		got := acc.result()
		want := wantNullResult(item)
		if item.Fn == logical.AggCount && item.Arg == nil {
			want = datum.NewInt(0)
		}
		if !datum.Equal(got, want) && !(got.IsNull() && want.IsNull()) {
			t.Errorf("%v over empty input: got %v want %v", item, got, want)
		}
	}
}

// TestAggNullMergePaths: merging (a) two all-NULL partials, (b) an all-NULL
// partial into an empty one, and (c) an empty partial into one holding real
// values must behave exactly like the serial path.
func TestAggNullMergePaths(t *testing.T) {
	for _, item := range aggItems() {
		if item.Fn == logical.AggCount && item.Arg == nil {
			continue
		}
		// (a) + (b): all combinations of {empty, all-NULL} partials → NULL/0.
		for _, leftNulls := range []int{0, 3} {
			for _, rightNulls := range []int{0, 3} {
				left, right := newAgg(item), newAgg(item)
				for i := 0; i < leftNulls; i++ {
					left.add(datum.Null)
				}
				for i := 0; i < rightNulls; i++ {
					right.add(datum.Null)
				}
				left.merge(right)
				got, want := left.result(), wantNullResult(item)
				if !datum.Equal(got, want) && !(got.IsNull() && want.IsNull()) {
					t.Errorf("%v merge (%d nulls + %d nulls): got %v want %v",
						item, leftNulls, rightNulls, got, want)
				}
			}
		}
		// (c) an empty/all-NULL partial merged into real values is a no-op.
		withVals, empty := newAgg(item), newAgg(item)
		serial := newAgg(item)
		for _, v := range []int64{4, 2, 9} {
			withVals.add(datum.NewInt(v))
			serial.add(datum.NewInt(v))
		}
		empty.add(datum.Null)
		withVals.merge(empty)
		if got, want := withVals.result(), serial.result(); !datum.Equal(got, want) {
			t.Errorf("%v merge of all-NULL partial changed result: got %v want %v", item, got, want)
		}
	}
}

// TestGroupTableNullMerge drives the same semantics through groupTable's
// two-phase mergeFrom — the path runGroupByParallel actually takes.
func TestGroupTableNullMerge(t *testing.T) {
	items := aggItems()
	argVals := func(v datum.D) []datum.D {
		vals := make([]datum.D, len(items))
		for i, it := range items {
			if it.Fn == logical.AggCount && it.Arg == nil {
				vals[i] = datum.NewInt(1) // COUNT(*) placeholder
			} else {
				vals[i] = v
			}
		}
		return vals
	}
	key := datum.Row{datum.NewInt(7)}
	hash := key.Hash(seqOffsets(1))

	// Serial: 4 NULL rows in one table.
	serial := newGroupTable(1, items)
	for i := 0; i < 4; i++ {
		serial.add(key, hash, argVals(datum.Null))
	}
	// Parallel: the same 4 NULL rows split 3/1 across partials, merged.
	p1, p2 := newGroupTable(1, items), newGroupTable(1, items)
	for i := 0; i < 3; i++ {
		p1.add(key, hash, argVals(datum.Null))
	}
	p2.add(key, hash, argVals(datum.Null))
	final := newGroupTable(1, items)
	final.mergeFrom(p1)
	final.mergeFrom(p2)

	srows, frows := serial.rows(), final.rows()
	if len(srows) != 1 || len(frows) != 1 {
		t.Fatalf("group counts differ: serial=%d merged=%d", len(srows), len(frows))
	}
	for c := range srows[0] {
		s, f := srows[0][c], frows[0][c]
		if s.IsNull() != f.IsNull() || (!s.IsNull() && !datum.Equal(s, f)) {
			t.Errorf("column %d differs: serial=%v merged=%v", c, s, f)
		}
	}
	// And the values themselves are right: group key 7, COUNT(*)=4, both
	// COUNT(x) forms 0, every SUM/AVG/MIN/MAX NULL. Layout mirrors aggItems:
	// key, COUNT(*), COUNT(x), SUM, AVG, MIN, MAX, COUNT(DISTINCT),
	// SUM(DISTINCT), AVG(DISTINCT).
	want := []string{"7", "4", "0", "NULL", "NULL", "NULL", "NULL", "0", "NULL", "NULL"}
	for i, w := range want {
		got := srows[0][i].String()
		if srows[0][i].IsNull() {
			got = "NULL"
		}
		if got != w {
			t.Errorf("column %d = %s, want %s", i, got, w)
		}
	}
}
