// Columnar batches for the vectorized execution path (§5.2's CPU-per-row
// constant attacked directly): a Batch is a set of typed column vectors plus
// an optional selection vector naming the live rows. Scans produce batches
// straight from storage, kernels in kernels.go filter/hash/aggregate them
// without per-row interface dispatch, and ToRows materializes the boundary
// back to the row engine for operators without a vectorized implementation.
package exec

import (
	"sync"

	"repro/internal/datum"
	"repro/internal/logical"
)

// Batch is a columnar morsel: one vector per output column, all the same
// length, plus a selection vector. A nil Sel means every row is live;
// otherwise Sel holds the live row indices in ascending order. Kernels
// refine Sel instead of copying survivors, so a filter costs one index
// write per passing row.
type Batch struct {
	Cols []logical.ColumnID
	Vecs []*datum.Vec
	Sel  []int32
	n    int
}

// NumRows returns the number of live (selected) rows.
func (b *Batch) NumRows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.n
}

// Len returns the physical row count before selection.
func (b *Batch) Len() int { return b.n }

// colIndex returns the vector offset of a column ID, or -1.
func (b *Batch) colIndex(id logical.ColumnID) int {
	for i, c := range b.Cols {
		if c == id {
			return i
		}
	}
	return -1
}

// ToRows materializes the live rows in selection order.
func (b *Batch) ToRows() []datum.Row {
	nr := b.NumRows()
	if nr == 0 {
		return nil
	}
	out := make([]datum.Row, nr)
	cells := make(datum.Row, nr*len(b.Vecs))
	for i := range out {
		out[i], cells = cells[:len(b.Vecs):len(b.Vecs)], cells[len(b.Vecs):]
	}
	for ci, v := range b.Vecs {
		if b.Sel != nil {
			for k, i := range b.Sel {
				out[k][ci] = v.D(int(i))
			}
			continue
		}
		for i := 0; i < b.n; i++ {
			out[i][ci] = v.D(i)
		}
	}
	return out
}

// batchFromRows converts row-engine output to a batch. Column kinds are
// inferred from the data (mixed-kind columns fall back to the boxed vector
// representation), so the conversion never fails.
func batchFromRows(layout []logical.ColumnID, rows []datum.Row) *Batch {
	b := &Batch{Cols: layout, Vecs: make([]*datum.Vec, len(layout)), n: len(rows)}
	for ci := range layout {
		kind := datum.KindNull
		for _, r := range rows {
			if k := r[ci].Kind(); k != datum.KindNull {
				kind = k
				break
			}
		}
		v := datum.NewVec(kind, len(rows))
		for _, r := range rows {
			v.AppendD(r[ci])
		}
		b.Vecs[ci] = v
	}
	return b
}

// batchRowBytes models the batch's live rows exactly like rowSetBytes models
// materialized rows, so vectorized operators trip the same memory-budget
// thresholds as their row-mode counterparts.
func batchRowBytes(b *Batch) int64 {
	var total int64
	for _, v := range b.Vecs {
		total += v.DataBytes(b.Sel)
	}
	return total + int64(b.NumRows())*entryOverhead
}

// --- scratch pools (satellite: cut allocations in the morsel executor) ---

// selPool recycles selection vectors and chunk-local index scratch.
var selPool = sync.Pool{New: func() any { s := make([]int32, 0, MorselSize); return &s }}

func getSel() []int32 { return (*selPool.Get().(*[]int32))[:0] }

func putSel(s []int32) {
	if cap(s) == 0 {
		return
	}
	selPool.Put(&s)
}

// hashPool recycles per-chunk hash scratch for join/agg probes.
var hashPool = sync.Pool{New: func() any { h := make([]uint64, 0, MorselSize); return &h }}

func getHashBuf(n int) []uint64 {
	h := (*hashPool.Get().(*[]uint64))[:0]
	if cap(h) < n {
		h = make([]uint64, 0, n)
	}
	return h[:n]
}

func putHashBuf(h []uint64) {
	if cap(h) == 0 {
		return
	}
	hashPool.Put(&h)
}

// rowBufPool recycles the per-morsel []datum.Row output buffers of the
// parallel row paths. Only the slice header's backing array is reused — the
// rows themselves escape into the flattened result.
var rowBufPool = sync.Pool{New: func() any { s := make([]datum.Row, 0, MorselSize); return &s }}

func getRowBuf() []datum.Row { return (*rowBufPool.Get().(*[]datum.Row))[:0] }

func putRowBuf(s []datum.Row) {
	if cap(s) == 0 {
		return
	}
	for i := range s {
		s[i] = nil
	}
	rowBufPool.Put(&s)
}

// concatMorselsPooled flattens per-morsel outputs in morsel order and
// returns each morsel buffer to the pool.
func concatMorselsPooled(outs [][]datum.Row) []datum.Row {
	flat := concatMorsels(outs)
	for i, o := range outs {
		if o != nil {
			putRowBuf(o)
			outs[i] = nil
		}
	}
	return flat
}
