package exec

// Error-propagation and cancellation tests for the morsel-driven engine: the
// resource governor's guarantee is that a failure raised by ANY worker, at
// ANY parallelism degree, surfaces to the caller exactly once, picks the
// deterministic winner (the error of the earliest morsel), unwinds promptly,
// and leaks no goroutines.

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/datum"
	"repro/internal/faultfs"
	"repro/internal/logical"
	"repro/internal/physical"
)

// TestFirstErrorWinsDeterministically: two workers fail with distinct errors
// on distinct morsels; whenever both errors are raised, the winner must be
// the error of the earliest morsel, at every degree, on every repetition.
// The channel handshake guarantees the late error is only raised after the
// early one is committed, so the outcome is fully deterministic.
func TestFirstErrorWinsDeterministically(t *testing.T) {
	errEarly := errors.New("early morsel failure")
	errLate := errors.New("late morsel failure")
	for _, degree := range []int{2, 4, 8} {
		for rep := 0; rep < 20; rep++ {
			earlyRaised := make(chan struct{})
			c := NewCtx(nil, nil)
			c.Parallelism = degree
			err := c.forMorsels(20*MorselSize, func(wc *Ctx, m, lo, hi int) error {
				switch m {
				case 4:
					close(earlyRaised)
					return errEarly
				case 13:
					// Don't fail until the early error is guaranteed to be
					// in flight; its worker records it even after abort.
					<-earlyRaised
					return errLate
				}
				return nil
			})
			c.Close()
			if !errors.Is(err, errEarly) {
				t.Fatalf("degree %d rep %d: got %v, want the earlier morsel's error", degree, rep, err)
			}
			if errors.Is(err, errLate) {
				t.Fatalf("degree %d rep %d: late error leaked through", degree, rep)
			}
		}
	}
}

// TestWorkerPanicBecomesError: a panicking worker must surface as an error,
// not crash the process or deadlock the barrier.
func TestWorkerPanicBecomesError(t *testing.T) {
	c := NewCtx(nil, nil)
	c.Parallelism = 4
	defer c.Close()
	err := c.runWorkers(4, func(w int, wc *Ctx) error {
		if w == 2 {
			panic("worker exploded")
		}
		return nil
	})
	if err == nil || !containsStr(err.Error(), "panic") {
		t.Fatalf("got %v, want panic error", err)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestInjectedScanFaultPropagatesAtAllDegrees: one injected scan-batch error
// must surface exactly once from a parallel scan, with identical behaviour at
// every degree, and the error must be the injected one.
func TestInjectedScanFaultPropagatesAtAllDegrees(t *testing.T) {
	f := newParFixture(t, 6000, 0, 3)
	boom := errors.New("disk read failed")
	for _, degree := range []int{1, 2, 4, 8} {
		c := f.ctx(t, degree)
		c.Faults = faultfs.New(faultfs.Rule{Op: "scan", After: 3, Err: boom})
		_, err := Run(f.rScan, c)
		if !errors.Is(err, boom) {
			t.Fatalf("degree %d: got %v, want injected error", degree, err)
		}
	}
}

// TestInjectedSpillFaultPropagates: errors injected into spill-file I/O
// surface from the degraded operators.
func TestInjectedSpillFaultPropagates(t *testing.T) {
	boom := errors.New("tempfs full")
	for _, op := range []string{"spill.create", "spill.write", "spill.read"} {
		c := spillCtx(t, 1)
		c.Faults = faultfs.New(faultfs.Rule{Op: op, After: 1, Err: boom})
		rows := randSpillRows(rand.New(rand.NewSource(99)), 3000)
		_, err := c.externalSortRows(rows, []datum.SortSpec{{Col: 1}})
		if !errors.Is(err, boom) {
			t.Fatalf("op %s: got %v, want injected error", op, err)
		}
	}
}

// TestCancellationStopsParallelScan: canceling mid-scan returns
// context.Canceled promptly at every degree; exceeding a deadline returns
// context.DeadlineExceeded.
func TestCancellationStopsParallelScan(t *testing.T) {
	f := newParFixture(t, 8000, 0, 5)
	for _, degree := range []int{1, 4, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already canceled: the first batch boundary must see it
		c := f.ctx(t, degree)
		c.Context = ctx
		_, err := Run(f.rScan, c)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("degree %d: got %v, want context.Canceled", degree, err)
		}
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	c := f.ctx(t, 4)
	c.Context = ctx
	if _, err := Run(f.rScan, c); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

// leakCheckedPlan builds a parallel aggregation plan over the fixture — a
// shape that fans work out to every pool worker.
func leakCheckedPlan(f *parFixture) physical.Plan {
	k, v := f.rCols[0], f.rCols[1]
	return &physical.HashGroupBy{
		Input:     f.rScan,
		GroupCols: []logical.ColumnID{k},
		Aggs:      []logical.AggItem{{ID: 100, Fn: logical.AggSum, Arg: &logical.Col{ID: v}}},
	}
}

// TestNoGoroutineLeaks: after normal completion, injected failure, and
// cancellation of an Exchange-bearing plan at degrees 1, 4 and 8 — followed
// by pool shutdown — the process goroutine count returns to its baseline.
// Pool.Close waits for worker exit, so this is deterministic up to runtime
// background goroutines (hence the settle loop).
func TestNoGoroutineLeaks(t *testing.T) {
	f := newParFixture(t, 6000, 0, 9)
	plan := leakCheckedPlan(f)
	baseline := runtime.NumGoroutine()
	for _, degree := range []int{1, 4, 8} {
		// Normal completion.
		c := NewCtx(f.store, f.md)
		c.Parallelism = degree
		if _, err := Run(plan, c); err != nil {
			t.Fatalf("degree %d: %v", degree, err)
		}
		c.Close()
		// Injected failure mid-plan.
		c = NewCtx(f.store, f.md)
		c.Parallelism = degree
		c.Faults = faultfs.New(faultfs.Rule{Op: "scan", After: 2})
		if _, err := Run(plan, c); !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("degree %d: fault run returned %v", degree, err)
		}
		c.Close()
		// Cancellation mid-plan.
		ctx, cancel := context.WithCancel(context.Background())
		c = NewCtx(f.store, f.md)
		c.Parallelism = degree
		c.Context = ctx
		cancel()
		if _, err := Run(plan, c); !errors.Is(err, context.Canceled) {
			t.Fatalf("degree %d: cancel run returned %v", degree, err)
		}
		c.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestPoolCloseWaitsForWorkers: Close must not return while workers are
// mid-job (the property the leak test depends on).
func TestPoolCloseWaitsForWorkers(t *testing.T) {
	p := NewPool(4)
	running := make(chan struct{})
	done := make(chan struct{})
	p.submit(func() {
		close(running)
		time.Sleep(50 * time.Millisecond)
		close(done)
	})
	<-running
	p.Close()
	select {
	case <-done:
	default:
		t.Fatal("Pool.Close returned before the in-flight job finished")
	}
}
