// Package exec implements query execution: a Volcano-style iterator engine
// over physical plans (Figure 1 of the paper) and a naive recursive evaluator
// over logical trees. The naive evaluator serves three roles: the reference
// implementation for correctness tests, the tuple-iteration semantics used to
// evaluate correlated subqueries that were not unnested (the baseline §4.2
// improves on), and the executor for Values rows.
package exec

import (
	"context"
	"fmt"

	"repro/internal/datum"
	"repro/internal/faultfs"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/storage"
)

// Counters tallies simulated resource usage during execution, letting
// experiments compare measured work against the cost model's predictions.
type Counters struct {
	PagesRead     int64 // simulated page touches
	RowsProcessed int64 // rows flowing through operators
	IndexSeeks    int64
	SubqueryEvals int64 // naive (tuple-iteration) subquery executions
	Comparisons   int64 // sort/merge comparisons
	HashOps       int64 // hash table inserts + probes
	ExchangedRows int64 // rows crossing exchange operators
	Spills        int64 // spill files written by budget-degraded operators
	SpillBytes    int64 // bytes written to spill files

	// Disk-backed storage (zero for in-memory tables): columnar segments a
	// scan read vs eliminated by zone maps, and real segment-file bytes read
	// from disk (cache misses only).
	SegmentsRead   int64
	SegmentsPruned int64
	BytesRead      int64

	// Column-block decodes by representation (cold reads only, like
	// BytesRead): dictionary, run-length, and plain typed/boxed blocks.
	BlocksDict  int64
	BlocksRLE   int64
	BlocksPlain int64
}

// Ctx is the runtime context shared by all operators of one execution.
type Ctx struct {
	Store    *storage.Store
	Meta     *logical.Metadata
	Counters Counters
	// Buffer simulates the buffer pool: page touches served from it do not
	// count as PagesRead, mirroring the cost model's §5.2 buffer modeling.
	Buffer *PageBuffer
	// Parallelism is the worker-pool degree of the morsel-driven parallel
	// engine (§7.1 made real): values > 1 execute scans, hash joins, hash
	// aggregation, sorts and exchanges on that many workers. 0 or 1 selects
	// the serial path.
	Parallelism int
	// Pool is the shared worker pool. When nil it is created lazily, sized
	// Parallelism (or GOMAXPROCS when Parallelism is 0). Set it explicitly to
	// share one pool across many executions; lazily created pools are owned
	// by the Ctx and released by Close.
	Pool    *Pool
	ownPool bool
	// Context, when non-nil, cancels the execution: every operator checks it
	// at batch boundaries (one morsel on the parallel paths, one morsel-sized
	// stretch of rows on the serial ones), so a canceled or timed-out query
	// returns the context's error within about one batch of work. Workers
	// always rejoin their pipeline barrier before the error surfaces — a
	// canceled query leaks no goroutines and its partial counters and metrics
	// are still merged.
	Context context.Context
	// Mem is the query's memory account (shared by all workers). Sort
	// buffers, hash-join builds and hash-aggregation tables reserve their
	// working memory here; when the reservation fails, the operator degrades
	// to its spilling implementation (external merge sort, grace hash join,
	// partitioned aggregation). Nil means no accounting.
	Mem *MemAccount
	// Faults, when non-nil, injects errors and latency into storage-scan
	// batches and spill I/O — the fault harness used to prove clean error
	// propagation at any parallelism degree.
	Faults *faultfs.Injector
	// TempDir overrides the directory for spill files (default os.TempDir).
	TempDir string
	// Vectorize enables the columnar batch path (vector.go): operators whose
	// predicates, projections and aggregates all have typed kernels run over
	// column vectors; everything else falls back to the row engine
	// automatically. NewCtx turns it on; a zero-value Ctx runs rows only.
	Vectorize bool
	// NoPrune disables zone-map segment elimination on disk-backed tables
	// (every segment is read and filtered) — the control arm of the storage
	// benchmarks. No effect on in-memory tables.
	NoPrune bool
	// Metrics, when non-nil, collects per-operator runtime metrics (EXPLAIN
	// ANALYZE): actual rows, invocations, morsel batches, wall time, peak
	// buffered rows and per-worker row counts. Enable with EnableAnalyze.
	// When nil — the default — the analyze hooks cost one pointer check per
	// operator invocation, so the instrumented engine stays as fast as the
	// uninstrumented one (BenchmarkExecAnalyzeOff/On measures this).
	Metrics *physical.RunMetrics
	// curNode is the metrics record of the operator currently executing on
	// the coordinating goroutine. Workers never touch it: per-worker stats
	// travel through child contexts and are folded in at pipeline barriers.
	curNode *physical.NodeMetrics
	// bar is the abort barrier of the runWorkers call this (child) context
	// belongs to; nil on the coordinating context.
	bar *barrier
}

// EnableAnalyze turns on per-operator metrics collection for executions
// through this context, returning the collection that Run fills.
func (c *Ctx) EnableAnalyze() *physical.RunMetrics {
	if c.Metrics == nil {
		c.Metrics = physical.NewRunMetrics()
	}
	return c.Metrics
}

// noteMem records a peak-buffered-rows observation (hash-table build sizes,
// group tables, sort buffers) against the operator currently being analyzed.
func (c *Ctx) noteMem(n int64) {
	if c.curNode != nil {
		c.curNode.NoteMem(n)
	}
}

// noteMemBytes records a peak-working-memory observation in bytes — the
// metric EXPLAIN ANALYZE derives from the memory account's reservations.
func (c *Ctx) noteMemBytes(n int64) {
	if c.curNode != nil {
		c.curNode.NoteMemBytes(n)
	}
}

// noteSpill records spill activity (files written, bytes) against both the
// execution counters and the operator currently being analyzed.
func (c *Ctx) noteSpill(files, bytes int64) {
	c.Counters.Spills += files
	c.Counters.SpillBytes += bytes
	if c.curNode != nil {
		c.curNode.NoteSpill(files, bytes)
	}
}

// noteSegments records segment-elimination outcomes against both the
// execution counters and the operator currently being analyzed.
func (c *Ctx) noteSegments(read, pruned int64) {
	c.Counters.SegmentsRead += read
	c.Counters.SegmentsPruned += pruned
	if c.curNode != nil {
		c.curNode.SegmentsRead += read
		c.curNode.SegmentsPruned += pruned
	}
}

// noteReadBytes records real segment-file bytes a storage call read from
// disk. Workers accumulate into their private counters; the coordinator's
// runWorkers barrier folds the total into the analyzed node.
func (c *Ctx) noteReadBytes(n int64) {
	if n == 0 {
		return
	}
	c.Counters.BytesRead += n
	if c.curNode != nil {
		c.curNode.BytesRead += n
	}
}

// noteScan folds one storage call's ScanCtx observations — bytes read from
// disk and column blocks decoded, by representation — into the counters and
// the analyzed node.
func (c *Ctx) noteScan(sc *storage.ScanCtx) {
	c.noteReadBytes(sc.BytesRead)
	if sc.BlocksDict == 0 && sc.BlocksRLE == 0 && sc.BlocksPlain == 0 {
		return
	}
	c.Counters.BlocksDict += sc.BlocksDict
	c.Counters.BlocksRLE += sc.BlocksRLE
	c.Counters.BlocksPlain += sc.BlocksPlain
	if c.curNode != nil {
		c.curNode.BlocksDict += sc.BlocksDict
		c.curNode.BlocksRLE += sc.BlocksRLE
		c.curNode.BlocksPlain += sc.BlocksPlain
	}
}

// The storage read API takes a per-call ScanCtx carrying the fault injector
// and returning real bytes read; these wrappers thread both ends so
// operators keep one-line call sites.

func (c *Ctx) tableRows(tab *storage.Table) ([]datum.Row, error) {
	sc := storage.ScanCtx{Faults: c.Faults}
	rows, err := tab.Rows(&sc)
	c.noteScan(&sc)
	return rows, err
}

func (c *Ctx) rowsRange(tab *storage.Table, lo, hi int) ([]datum.Row, error) {
	sc := storage.ScanCtx{Faults: c.Faults}
	rows, err := tab.RowsRange(&sc, lo, hi)
	c.noteScan(&sc)
	return rows, err
}

func (c *Ctx) rowAt(tab *storage.Table, id int) (datum.Row, error) {
	sc := storage.ScanCtx{Faults: c.Faults}
	r, err := tab.Row(&sc, id)
	c.noteScan(&sc)
	return r, err
}

func (c *Ctx) colValue(tab *storage.Table, id, ord int) (datum.D, error) {
	sc := storage.ScanCtx{Faults: c.Faults}
	d, err := tab.ColValue(&sc, id, ord)
	c.noteScan(&sc)
	return d, err
}

func (c *Ctx) fillRange(tab *storage.Table, ord, lo, hi int, v *datum.Vec) error {
	sc := storage.ScanCtx{Faults: c.Faults}
	err := tab.FillColumnRange(&sc, ord, lo, hi, v)
	c.noteScan(&sc)
	return err
}

func (c *Ctx) fillIDs(tab *storage.Table, ord int, ids []int, v *datum.Vec) error {
	sc := storage.ScanCtx{Faults: c.Faults}
	err := tab.FillColumnIDs(&sc, ord, ids, v)
	c.noteScan(&sc)
	return err
}

// canceled returns the context's error once the execution has been canceled
// or has exceeded its deadline, nil otherwise. Cheap enough for batch
// boundaries (one atomic load inside Context.Err).
func (c *Ctx) canceled() error {
	if c.Context == nil {
		return nil
	}
	return context.Cause(c.Context)
}

// step is the per-batch governor checkpoint: fault injection on the named
// operation stream first (so injected latency is felt before cancellation is
// observed), then cancellation.
func (c *Ctx) step(op string) error {
	if c.Faults != nil {
		if err := c.Faults.Check(op); err != nil {
			return err
		}
	}
	return c.canceled()
}

// NewCtx returns a context over the given store and metadata, with a buffer
// pool sized like cost.DefaultModel (256 pages).
func NewCtx(store *storage.Store, md *logical.Metadata) *Ctx {
	return &Ctx{Store: store, Meta: md, Buffer: NewPageBuffer(256), Vectorize: true}
}

// Close releases a lazily created worker pool. It is safe to call on any
// Ctx, including serial ones.
func (c *Ctx) Close() {
	if c.ownPool && c.Pool != nil {
		c.Pool.Close()
		c.Pool = nil
		c.ownPool = false
	}
}

// parallel reports whether the morsel-driven engine is enabled.
func (c *Ctx) parallel() bool { return c.Parallelism > 1 }

// workers returns the configured degree of parallelism (at least 1).
func (c *Ctx) workers() int {
	if c.Parallelism > 1 {
		return c.Parallelism
	}
	return 1
}

// child returns a per-worker context sharing the store, metadata and the
// governor state (cancellation context, memory account, fault injector) but
// owning private counters and a private simulated buffer pool, so workers
// never race on mutable state. Workers run serially inside (Parallelism 1).
func (c *Ctx) child() *Ctx {
	return &Ctx{
		Store: c.Store, Meta: c.Meta, Buffer: NewPageBuffer(c.Buffer.Cap()),
		Context: c.Context, Mem: c.Mem, Faults: c.Faults, TempDir: c.TempDir,
		Vectorize: c.Vectorize, NoPrune: c.NoPrune,
	}
}

// add folds another worker's counters into c — called only at pipeline
// barriers, after the worker has finished.
func (cs *Counters) add(o Counters) {
	cs.PagesRead += o.PagesRead
	cs.RowsProcessed += o.RowsProcessed
	cs.IndexSeeks += o.IndexSeeks
	cs.SubqueryEvals += o.SubqueryEvals
	cs.Comparisons += o.Comparisons
	cs.HashOps += o.HashOps
	cs.ExchangedRows += o.ExchangedRows
	cs.Spills += o.Spills
	cs.SpillBytes += o.SpillBytes
	cs.SegmentsRead += o.SegmentsRead
	cs.SegmentsPruned += o.SegmentsPruned
	cs.BytesRead += o.BytesRead
	cs.BlocksDict += o.BlocksDict
	cs.BlocksRLE += o.BlocksRLE
	cs.BlocksPlain += o.BlocksPlain
}

// PageBuffer is a FIFO page cache keyed by (table, page number).
type PageBuffer struct {
	cap   int
	m     map[pageKey]struct{}
	order []pageKey
	next  int
}

type pageKey struct {
	table string
	page  int
}

// NewPageBuffer returns a buffer holding up to capacity pages (0 disables
// caching: every touch is a read).
func NewPageBuffer(capacity int) *PageBuffer {
	return &PageBuffer{cap: capacity, m: make(map[pageKey]struct{})}
}

// Cap returns the buffer's configured capacity in pages.
func (b *PageBuffer) Cap() int {
	if b == nil {
		return 0
	}
	return b.cap
}

// Touch accesses a page, returning true on a buffer hit.
func (b *PageBuffer) Touch(table string, page int) bool {
	if b == nil || b.cap <= 0 {
		return false
	}
	k := pageKey{table, page}
	if _, ok := b.m[k]; ok {
		return true
	}
	if len(b.order) < b.cap {
		b.order = append(b.order, k)
	} else {
		delete(b.m, b.order[b.next])
		b.order[b.next] = k
		b.next = (b.next + 1) % b.cap
	}
	b.m[k] = struct{}{}
	return false
}

// touchPage charges one page access through the buffer.
func (c *Ctx) touchPage(table string, page int) {
	if !c.Buffer.Touch(table, page) {
		c.Counters.PagesRead++
	}
}

// touchRow charges the page holding a row id.
func (c *Ctx) touchRow(tab *storage.Table, rowID int) {
	rpp := rowsPerPage(tab)
	c.touchPage(tab.Def.Name, rowID/rpp)
}

func rowsPerPage(tab *storage.Table) int {
	rc, pc := tab.RowCount(), tab.PageCount()
	if rc == 0 || pc == 0 {
		return 1
	}
	rpp := (rc + pc - 1) / pc
	if rpp < 1 {
		rpp = 1
	}
	return rpp
}

// touchScan charges a full sequential scan of the table.
func (c *Ctx) touchScan(tab *storage.Table) {
	pages := tab.PageCount()
	for p := 0; p < pages; p++ {
		c.touchPage(tab.Def.Name, p)
	}
}

// Result is a materialized relation: a layout and rows in that layout.
type Result struct {
	Cols []logical.ColumnID
	Rows []datum.Row
}

// ColIndex returns the row offset of a column ID, or -1.
func (r *Result) ColIndex(id logical.ColumnID) int {
	for i, c := range r.Cols {
		if c == id {
			return i
		}
	}
	return -1
}

// env binds column IDs to values for scalar evaluation; parent chains
// implement correlation into outer query blocks.
type env struct {
	cols   map[logical.ColumnID]int
	row    datum.Row
	parent *env
}

func newEnv(layout []logical.ColumnID, parent *env) *env {
	m := make(map[logical.ColumnID]int, len(layout))
	for i, c := range layout {
		m[c] = i
	}
	return &env{cols: m, parent: parent}
}

func (e *env) lookup(id logical.ColumnID) (datum.D, error) {
	for cur := e; cur != nil; cur = cur.parent {
		if i, ok := cur.cols[id]; ok {
			if i >= len(cur.row) {
				return datum.Null, fmt.Errorf("exec: row too short for column @%d", int(id))
			}
			return cur.row[i], nil
		}
	}
	return datum.Null, fmt.Errorf("exec: unbound column @%d", int(id))
}

// evalCtx builds a logical.EvalContext over an env, wiring subquery
// evaluation to the naive evaluator.
func (c *Ctx) evalCtx(e *env) *logical.EvalContext {
	return &logical.EvalContext{
		Lookup: e.lookup,
		EvalSubquery: func(sub *logical.Subquery, _ *logical.EvalContext) (datum.D, error) {
			return c.evalSubquery(sub, e)
		},
	}
}

// evalSubquery executes a subquery with tuple-iteration semantics against the
// current bindings.
func (c *Ctx) evalSubquery(sub *logical.Subquery, e *env) (datum.D, error) {
	c.Counters.SubqueryEvals++
	res, err := c.EvalLogical(sub.Plan, e)
	if err != nil {
		return datum.Null, err
	}
	switch sub.Mode {
	case logical.SubExists:
		return datum.NewBool(len(res.Rows) > 0), nil
	case logical.SubIn:
		val, err := logical.Eval(sub.Scalar, c.evalCtx(e))
		if err != nil {
			return datum.Null, err
		}
		off := subqueryCol(res, sub)
		sawNull := val.IsNull()
		for _, r := range res.Rows {
			if off >= len(r) {
				continue
			}
			if r[off].IsNull() || val.IsNull() {
				sawNull = true
				continue
			}
			if datum.Compare(val, r[off]) == 0 {
				return datum.NewBool(true), nil
			}
		}
		if sawNull && len(res.Rows) > 0 {
			return datum.Null, nil
		}
		return datum.NewBool(false), nil
	case logical.SubScalar:
		switch len(res.Rows) {
		case 0:
			return datum.Null, nil
		case 1:
			off := subqueryCol(res, sub)
			if off >= len(res.Rows[0]) {
				return datum.Null, nil
			}
			return res.Rows[0][off], nil
		default:
			return datum.Null, fmt.Errorf("exec: scalar subquery returned %d rows", len(res.Rows))
		}
	}
	return datum.Null, fmt.Errorf("exec: unknown subquery mode %v", sub.Mode)
}

// filterRow reports whether the row passes all predicates (TRUE only).
func (c *Ctx) filterRow(preds []logical.Scalar, e *env) (bool, error) {
	ectx := c.evalCtx(e)
	for _, p := range preds {
		v, err := logical.Eval(p, ectx)
		if err != nil {
			return false, err
		}
		if !logical.TruthValue(v) {
			return false, nil
		}
	}
	return true, nil
}

// scanLayoutOrds maps a list of query column IDs to base-table ordinals via
// metadata.
func (c *Ctx) scanOrds(cols []logical.ColumnID) []int {
	ords := make([]int, len(cols))
	for i, id := range cols {
		ords[i] = c.Meta.Column(id).BaseOrd
	}
	return ords
}

// projectRow builds the scan output row from a stored row.
func projectRow(stored datum.Row, ords []int) datum.Row {
	out := make(datum.Row, len(ords))
	for i, o := range ords {
		out[i] = stored[o]
	}
	return out
}

// subqueryCol locates the subquery's value column in the result layout.
func subqueryCol(res *Result, sub *logical.Subquery) int {
	if sub.OutCol != 0 {
		if off := res.ColIndex(sub.OutCol); off >= 0 {
			return off
		}
	}
	return 0
}
