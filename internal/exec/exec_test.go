package exec

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/sql"
	"repro/internal/storage"
)

type fixture struct {
	cat   *catalog.Catalog
	store *storage.Store
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	cat := catalog.New()
	store := storage.NewStore()
	emp := &catalog.Table{
		Name: "Emp",
		Cols: []catalog.Column{
			{Name: "eid", Kind: datum.KindInt, NotNull: true},
			{Name: "name", Kind: datum.KindString},
			{Name: "did", Kind: datum.KindInt},
			{Name: "sal", Kind: datum.KindFloat},
		},
		Indexes: []*catalog.Index{
			{Name: "emp_eid", Cols: []int{0}, Unique: true, Clustered: true},
			{Name: "emp_did", Cols: []int{2}},
		},
	}
	dept := &catalog.Table{
		Name: "Dept",
		Cols: []catalog.Column{
			{Name: "did", Kind: datum.KindInt, NotNull: true},
			{Name: "dname", Kind: datum.KindString},
		},
	}
	if err := cat.AddTable(emp); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(dept); err != nil {
		t.Fatal(err)
	}
	et, _ := store.CreateTable(emp)
	dt, _ := store.CreateTable(dept)
	rows := []datum.Row{
		{datum.NewInt(1), datum.NewString("alice"), datum.NewInt(10), datum.NewFloat(100)},
		{datum.NewInt(2), datum.NewString("bob"), datum.NewInt(10), datum.NewFloat(200)},
		{datum.NewInt(3), datum.NewString("carol"), datum.NewInt(20), datum.NewFloat(300)},
		{datum.NewInt(4), datum.NewString("dave"), datum.Null, datum.NewFloat(50)},
		{datum.NewInt(5), datum.NewString("erin"), datum.NewInt(30), datum.Null},
	}
	if err := et.InsertBatch(rows); err != nil {
		t.Fatal(err)
	}
	if err := dt.InsertBatch([]datum.Row{
		{datum.NewInt(10), datum.NewString("eng")},
		{datum.NewInt(20), datum.NewString("sales")},
		{datum.NewInt(40), datum.NewString("empty")},
	}); err != nil {
		t.Fatal(err)
	}
	return &fixture{cat: cat, store: store}
}

func (f *fixture) query(t *testing.T, q string) *logical.Query {
	t.Helper()
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	query, err := logical.NewBuilder(f.cat).Build(sel)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return query
}

func (f *fixture) run(t *testing.T, q string) *Result {
	t.Helper()
	query := f.query(t, q)
	ctx := NewCtx(f.store, query.Meta)
	res, err := ctx.RunQuery(query)
	if err != nil {
		t.Fatalf("run %q: %v", q, err)
	}
	return res
}

// rowStrings renders rows as sorted strings for multiset comparison.
func rowStrings(res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r.String()
	}
	sort.Strings(out)
	return out
}

func expectRows(t *testing.T, res *Result, want ...string) {
	t.Helper()
	got := rowStrings(res)
	sort.Strings(want)
	if len(got) != len(want) {
		t.Fatalf("got %d rows %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d = %s, want %s\nall: %v", i, got[i], want[i], got)
		}
	}
}

func TestNaiveSelectProject(t *testing.T) {
	f := newFixture(t)
	res := f.run(t, "SELECT name FROM Emp WHERE sal > 100")
	expectRows(t, res, "('bob')", "('carol')")
}

func TestNaiveNullComparisons(t *testing.T) {
	f := newFixture(t)
	// erin's sal is NULL: excluded from both branches.
	res := f.run(t, "SELECT name FROM Emp WHERE sal > 0 OR sal <= 0")
	if len(res.Rows) != 4 {
		t.Errorf("NULL sal must not satisfy either branch: %v", rowStrings(res))
	}
	res = f.run(t, "SELECT name FROM Emp WHERE sal IS NULL")
	expectRows(t, res, "('erin')")
}

func TestNaiveJoin(t *testing.T) {
	f := newFixture(t)
	res := f.run(t, "SELECT e.name, d.dname FROM Emp e, Dept d WHERE e.did = d.did")
	expectRows(t, res, "('alice', 'eng')", "('bob', 'eng')", "('carol', 'sales')")
}

func TestNaiveLeftOuterJoin(t *testing.T) {
	f := newFixture(t)
	res := f.run(t, "SELECT e.name, d.dname FROM Emp e LEFT OUTER JOIN Dept d ON e.did = d.did")
	expectRows(t, res,
		"('alice', 'eng')", "('bob', 'eng')", "('carol', 'sales')",
		"('dave', NULL)", "('erin', NULL)")
}

func TestNaiveFullOuterJoin(t *testing.T) {
	f := newFixture(t)
	res := f.run(t, "SELECT e.name, d.dname FROM Emp e FULL OUTER JOIN Dept d ON e.did = d.did")
	expectRows(t, res,
		"('alice', 'eng')", "('bob', 'eng')", "('carol', 'sales')",
		"('dave', NULL)", "('erin', NULL)", "(NULL, 'empty')")
}

func TestNaiveGroupByAndHaving(t *testing.T) {
	f := newFixture(t)
	res := f.run(t, "SELECT did, COUNT(*), SUM(sal) FROM Emp GROUP BY did HAVING COUNT(*) >= 1 ORDER BY did")
	// NULL did forms its own group; order: NULL first.
	got := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		got[i] = r.String()
	}
	want := []string{"(NULL, 1, 50)", "(10, 2, 300)", "(20, 1, 300)", "(30, 1, NULL)"}
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestNaiveScalarAggEmptyInput(t *testing.T) {
	f := newFixture(t)
	res := f.run(t, "SELECT COUNT(*), SUM(sal), MIN(sal), AVG(sal) FROM Emp WHERE sal > 100000")
	expectRows(t, res, "(0, NULL, NULL, NULL)")
}

func TestNaiveDistinctAndCountDistinct(t *testing.T) {
	f := newFixture(t)
	res := f.run(t, "SELECT DISTINCT did FROM Emp")
	if len(res.Rows) != 4 { // 10, 20, 30, NULL
		t.Errorf("distinct dids = %v", rowStrings(res))
	}
	res = f.run(t, "SELECT COUNT(DISTINCT did) FROM Emp")
	expectRows(t, res, "(3)") // NULL not counted
}

func TestNaiveOrderByLimit(t *testing.T) {
	f := newFixture(t)
	res := f.run(t, "SELECT name FROM Emp ORDER BY sal DESC LIMIT 2")
	// SQL applies ORDER BY before LIMIT: top-2 salaries are carol, bob.
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "carol" || res.Rows[1][0].Str() != "bob" {
		t.Fatalf("ORDER BY must run before LIMIT: %v", rowStrings(res))
	}
}

func TestNaiveCorrelatedIn(t *testing.T) {
	f := newFixture(t)
	// The paper's §4.2.2 pattern.
	res := f.run(t, `SELECT e.name FROM Emp e WHERE e.did IN
		(SELECT d.did FROM Dept d WHERE d.dname = 'eng' AND e.sal > 50)`)
	expectRows(t, res, "('alice')", "('bob')")
}

func TestNaiveExistsAndNotExists(t *testing.T) {
	f := newFixture(t)
	res := f.run(t, `SELECT d.dname FROM Dept d WHERE EXISTS (SELECT 1 FROM Emp e WHERE e.did = d.did)`)
	expectRows(t, res, "('eng')", "('sales')")
	res = f.run(t, `SELECT d.dname FROM Dept d WHERE NOT EXISTS (SELECT 1 FROM Emp e WHERE e.did = d.did)`)
	expectRows(t, res, "('empty')")
}

func TestNaiveScalarSubquery(t *testing.T) {
	f := newFixture(t)
	res := f.run(t, `SELECT e.name FROM Emp e WHERE e.sal > (SELECT AVG(e2.sal) FROM Emp e2)`)
	// avg = (100+200+300+50)/4 = 162.5
	expectRows(t, res, "('bob')", "('carol')")
}

func TestNaiveInSubqueryNullSemantics(t *testing.T) {
	f := newFixture(t)
	// NOT IN with NULL in subquery result: nothing qualifies.
	res := f.run(t, `SELECT d.dname FROM Dept d WHERE d.did NOT IN (SELECT e.did FROM Emp e)`)
	if len(res.Rows) != 0 {
		t.Errorf("NOT IN over NULL-containing set must be empty, got %v", rowStrings(res))
	}
}

// --- Physical engine tests ---

// scanPlan builds a TableScan for all columns of a logical scan.
func scanPlan(t *testing.T, q *logical.Query, binding string) *physical.TableScan {
	t.Helper()
	var scan *logical.Scan
	logical.VisitRel(q.Root, func(e logical.RelExpr) {
		if s, ok := e.(*logical.Scan); ok && strings.EqualFold(s.Binding, binding) {
			scan = s
		}
	})
	if scan == nil {
		t.Fatalf("no scan for binding %s", binding)
	}
	ords := make([]int, len(scan.Cols))
	for i, id := range scan.Cols {
		ords[i] = q.Meta.Column(id).BaseOrd
	}
	return &physical.TableScan{Table: scan.Table, Binding: scan.Binding, Cols: scan.Cols, ColOrds: ords}
}

func colID(t *testing.T, q *logical.Query, binding, name string) logical.ColumnID {
	t.Helper()
	for i := 1; i <= q.Meta.NumColumns(); i++ {
		cm := q.Meta.Column(logical.ColumnID(i))
		if strings.EqualFold(cm.Binding, binding) && strings.EqualFold(cm.Name, name) {
			return logical.ColumnID(i)
		}
	}
	t.Fatalf("no column %s.%s", binding, name)
	return 0
}

func TestPhysicalJoinVariantsAgree(t *testing.T) {
	f := newFixture(t)
	q := f.query(t, "SELECT e.name, d.dname FROM Emp e, Dept d WHERE e.did = d.did")
	eScan := scanPlan(t, q, "e")
	dScan := scanPlan(t, q, "d")
	eDid := colID(t, q, "e", "did")
	dDid := colID(t, q, "d", "did")
	onPred := []logical.Scalar{&logical.Cmp{Op: logical.CmpEq, L: &logical.Col{ID: eDid}, R: &logical.Col{ID: dDid}}}

	for _, kind := range []logical.JoinKind{logical.InnerJoin, logical.LeftOuterJoin, logical.SemiJoin, logical.AntiJoin} {
		var plans []physical.Plan
		plans = append(plans, &physical.NLJoin{Kind: kind, Left: eScan, Right: dScan, On: onPred})
		plans = append(plans, &physical.HashJoin{
			Kind: kind, Left: eScan, Right: dScan,
			LeftKeys: []logical.ColumnID{eDid}, RightKeys: []logical.ColumnID{dDid},
		})
		plans = append(plans, &physical.MergeJoin{
			Kind: kind,
			Left: &physical.Sort{Input: eScan, By: logical.Ordering{{Col: eDid}}},
			Right: &physical.Sort{
				Input: dScan, By: logical.Ordering{{Col: dDid}}},
			LeftKeys: []logical.ColumnID{eDid}, RightKeys: []logical.ColumnID{dDid},
		})
		plans = append(plans, &physical.INLJoin{
			Kind: kind, Left: dummySwap(kind, eScan), Table: dScan.Table, Index: nil,
		})
		_ = plans[3]
		plans = plans[:3] // INLJoin needs an index on Dept; skip here

		var baseline []string
		for pi, p := range plans {
			ctx := NewCtx(f.store, q.Meta)
			res, err := Run(p, ctx)
			if err != nil {
				t.Fatalf("kind %v plan %d: %v", kind, pi, err)
			}
			got := rowStrings(res)
			if pi == 0 {
				baseline = got
				continue
			}
			if strings.Join(got, ";") != strings.Join(baseline, ";") {
				t.Errorf("kind %v: plan %d disagrees\nNL:   %v\nthis: %v", kind, pi, baseline, got)
			}
		}
	}
}

func dummySwap(_ logical.JoinKind, p physical.Plan) physical.Plan { return p }

func TestPhysicalINLJoin(t *testing.T) {
	f := newFixture(t)
	q := f.query(t, "SELECT d.dname, e.name FROM Dept d, Emp e WHERE d.did = e.did")
	dScan := scanPlan(t, q, "d")
	var eScanL *logical.Scan
	logical.VisitRel(q.Root, func(e logical.RelExpr) {
		if s, ok := e.(*logical.Scan); ok && strings.EqualFold(s.Binding, "e") {
			eScanL = s
		}
	})
	emp, _ := f.cat.Table("Emp")
	var didIx *catalog.Index
	for _, ix := range emp.Indexes {
		if ix.Name == "emp_did" {
			didIx = ix
		}
	}
	ords := make([]int, len(eScanL.Cols))
	for i, id := range eScanL.Cols {
		ords[i] = q.Meta.Column(id).BaseOrd
	}
	inl := &physical.INLJoin{
		Kind:     logical.InnerJoin,
		Left:     dScan,
		Table:    emp,
		Index:    didIx,
		Binding:  "e",
		Cols:     eScanL.Cols,
		ColOrds:  ords,
		LeftKeys: []logical.ColumnID{colID(t, q, "d", "did")},
	}
	ctx := NewCtx(f.store, q.Meta)
	res, err := Run(inl, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("INL join rows = %d, want 3: %v", len(res.Rows), rowStrings(res))
	}
	if ctx.Counters.IndexSeeks != 3 { // one per Dept row
		t.Errorf("index seeks = %d, want 3", ctx.Counters.IndexSeeks)
	}
}

func TestPhysicalIndexScan(t *testing.T) {
	f := newFixture(t)
	q := f.query(t, "SELECT e.eid, e.name FROM Emp e WHERE e.eid = 3")
	emp, _ := f.cat.Table("Emp")
	sc := scanPlan(t, q, "e")
	is := &physical.IndexScan{
		Table: emp, Index: emp.Indexes[0], Binding: "e",
		Cols: sc.Cols, ColOrds: sc.ColOrds,
		EqKey: datum.Row{datum.NewInt(3)},
	}
	ctx := NewCtx(f.store, q.Meta)
	res, err := Run(is, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int() != 3 {
		t.Errorf("index scan rows = %v", rowStrings(res))
	}
	// Range scan.
	is2 := &physical.IndexScan{
		Table: emp, Index: emp.Indexes[0], Binding: "e",
		Cols: sc.Cols, ColOrds: sc.ColOrds,
		Lo: datum.NewInt(2), LoIncl: true, Hi: datum.NewInt(4), HiIncl: false,
	}
	ctx = NewCtx(f.store, q.Meta)
	res, err = Run(is2, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("range scan rows = %d, want 2", len(res.Rows))
	}
	// Ordering property: index scan output is sorted by eid.
	if got := is2.Ordering(); len(got) == 0 {
		t.Error("index scan should declare its ordering")
	}
}

func TestPhysicalGroupByStreamVsHash(t *testing.T) {
	f := newFixture(t)
	q := f.query(t, "SELECT e.did, COUNT(*) FROM Emp e GROUP BY e.did")
	sc := scanPlan(t, q, "e")
	did := colID(t, q, "e", "did")
	var aggs []logical.AggItem
	var g *logical.GroupBy
	logical.VisitRel(q.Root, func(e logical.RelExpr) {
		if gb, ok := e.(*logical.GroupBy); ok {
			g = gb
		}
	})
	aggs = g.Aggs
	hashPlan := &physical.HashGroupBy{Input: sc, GroupCols: []logical.ColumnID{did}, Aggs: aggs}
	streamPlan := &physical.StreamGroupBy{
		Input:     &physical.Sort{Input: sc, By: logical.Ordering{{Col: did}}},
		GroupCols: []logical.ColumnID{did},
		Aggs:      aggs,
	}
	ctx1 := NewCtx(f.store, q.Meta)
	r1, err := Run(hashPlan, ctx1)
	if err != nil {
		t.Fatal(err)
	}
	ctx2 := NewCtx(f.store, q.Meta)
	r2, err := Run(streamPlan, ctx2)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(rowStrings(r1), ";") != strings.Join(rowStrings(r2), ";") {
		t.Errorf("hash vs stream group-by disagree:\n%v\n%v", rowStrings(r1), rowStrings(r2))
	}
}

func TestPhysicalSortFilterProjectLimit(t *testing.T) {
	f := newFixture(t)
	q := f.query(t, "SELECT e.name FROM Emp e")
	sc := scanPlan(t, q, "e")
	sal := colID(t, q, "e", "sal")
	name := colID(t, q, "e", "name")
	plan := &physical.LimitOp{
		N: 2,
		Input: &physical.Project{
			Input: &physical.Sort{
				Input: &physical.Filter{
					Input: sc,
					Preds: []logical.Scalar{&logical.Cmp{Op: logical.CmpGt, L: &logical.Col{ID: sal}, R: &logical.Const{Val: datum.NewFloat(60)}}},
				},
				By: logical.Ordering{{Col: sal, Desc: true}},
			},
			Items: []logical.ProjectItem{{ID: name, Expr: &logical.Col{ID: name}}},
		},
	}
	ctx := NewCtx(f.store, q.Meta)
	res, err := Run(plan, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Str() != "carol" || res.Rows[1][0].Str() != "bob" {
		t.Errorf("pipeline result: %v", rowStrings(res))
	}
}

func TestMergeJoinNullKeys(t *testing.T) {
	f := newFixture(t)
	q := f.query(t, "SELECT e.name, d.dname FROM Emp e LEFT OUTER JOIN Dept d ON e.did = d.did")
	eScan := scanPlan(t, q, "e")
	dScan := scanPlan(t, q, "d")
	eDid := colID(t, q, "e", "did")
	dDid := colID(t, q, "d", "did")
	mj := &physical.MergeJoin{
		Kind:     logical.LeftOuterJoin,
		Left:     &physical.Sort{Input: eScan, By: logical.Ordering{{Col: eDid}}},
		Right:    &physical.Sort{Input: dScan, By: logical.Ordering{{Col: dDid}}},
		LeftKeys: []logical.ColumnID{eDid}, RightKeys: []logical.ColumnID{dDid},
	}
	ctx := NewCtx(f.store, q.Meta)
	res, err := Run(mj, ctx)
	if err != nil {
		t.Fatal(err)
	}
	// dave (NULL did) must appear NULL-padded, not joined.
	if len(res.Rows) != 5 {
		t.Errorf("LOJ merge rows = %d, want 5: %v", len(res.Rows), rowStrings(res))
	}
}

// Property: on random data, NL / hash / merge joins agree for every kind.
func TestJoinEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cat := catalog.New()
	a := &catalog.Table{Name: "A", Cols: []catalog.Column{
		{Name: "x", Kind: datum.KindInt}, {Name: "p", Kind: datum.KindInt}}}
	b := &catalog.Table{Name: "B", Cols: []catalog.Column{
		{Name: "y", Kind: datum.KindInt}, {Name: "q", Kind: datum.KindInt}}}
	if err := cat.AddTable(a); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(b); err != nil {
		t.Fatal(err)
	}
	store := storage.NewStore()
	at, _ := store.CreateTable(a)
	bt, _ := store.CreateTable(b)

	for trial := 0; trial < 10; trial++ {
		// Regenerate data each trial.
		at2, bt2 := at, bt
		if trial > 0 {
			// new store to reset rows
			store = storage.NewStore()
			at2, _ = store.CreateTable(a)
			bt2, _ = store.CreateTable(b)
		}
		mkVal := func() datum.D {
			if rng.Intn(8) == 0 {
				return datum.Null
			}
			return datum.NewInt(int64(rng.Intn(5)))
		}
		for i := 0; i < 20; i++ {
			at2.Insert(datum.Row{mkVal(), datum.NewInt(int64(i))})
		}
		for i := 0; i < 15; i++ {
			bt2.Insert(datum.Row{mkVal(), datum.NewInt(int64(i + 100))})
		}

		md := logical.NewMetadata()
		aCols := md.AddTable(a, "a")
		bCols := md.AddTable(b, "b")
		aScan := &physical.TableScan{Table: a, Binding: "a", Cols: aCols, ColOrds: []int{0, 1}}
		bScan := &physical.TableScan{Table: b, Binding: "b", Cols: bCols, ColOrds: []int{0, 1}}
		on := []logical.Scalar{&logical.Cmp{Op: logical.CmpEq, L: &logical.Col{ID: aCols[0]}, R: &logical.Col{ID: bCols[0]}}}

		for _, kind := range []logical.JoinKind{logical.InnerJoin, logical.LeftOuterJoin, logical.FullOuterJoin, logical.SemiJoin, logical.AntiJoin} {
			nl := &physical.NLJoin{Kind: kind, Left: aScan, Right: bScan, On: on}
			hj := &physical.HashJoin{Kind: kind, Left: aScan, Right: bScan,
				LeftKeys: []logical.ColumnID{aCols[0]}, RightKeys: []logical.ColumnID{bCols[0]}}
			plans := []physical.Plan{nl, hj}
			if kind != logical.FullOuterJoin {
				plans = append(plans, &physical.MergeJoin{Kind: kind,
					Left:     &physical.Sort{Input: aScan, By: logical.Ordering{{Col: aCols[0]}}},
					Right:    &physical.Sort{Input: bScan, By: logical.Ordering{{Col: bCols[0]}}},
					LeftKeys: []logical.ColumnID{aCols[0]}, RightKeys: []logical.ColumnID{bCols[0]}})
			}
			var baseline []string
			for pi, p := range plans {
				ctx := NewCtx(store, md)
				res, err := Run(p, ctx)
				if err != nil {
					t.Fatalf("trial %d kind %v plan %d: %v", trial, kind, pi, err)
				}
				got := rowStrings(res)
				if pi == 0 {
					baseline = got
				} else if strings.Join(got, ";") != strings.Join(baseline, ";") {
					t.Fatalf("trial %d kind %v: plan %d disagrees\nbase: %v\ngot:  %v", trial, kind, pi, baseline, got)
				}
			}
		}
	}
}

func TestCountersAccumulate(t *testing.T) {
	f := newFixture(t)
	q := f.query(t, "SELECT e.name FROM Emp e")
	sc := scanPlan(t, q, "e")
	ctx := NewCtx(f.store, q.Meta)
	if _, err := Run(sc, ctx); err != nil {
		t.Fatal(err)
	}
	if ctx.Counters.PagesRead < 1 || ctx.Counters.RowsProcessed != 5 {
		t.Errorf("counters: %+v", ctx.Counters)
	}
}

func TestExchangePassthrough(t *testing.T) {
	f := newFixture(t)
	q := f.query(t, "SELECT e.name FROM Emp e")
	sc := scanPlan(t, q, "e")
	ex := &physical.Exchange{Input: sc, Degree: 4}
	ctx := NewCtx(f.store, q.Meta)
	res, err := Run(ex, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 || ctx.Counters.ExchangedRows != 5 {
		t.Errorf("exchange: rows=%d counter=%d", len(res.Rows), ctx.Counters.ExchangedRows)
	}
}
