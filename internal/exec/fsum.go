package exec

import "math"

// compSum is an exact floating-point accumulator: it maintains the running
// sum as a list of non-overlapping partials (Shewchuk's expansion arithmetic,
// the algorithm behind CPython's math.fsum) and rounds only once, when the
// value is read. Because the retained expansion is the exact real-number sum
// of everything added, the rounded result is independent of the order values
// arrive in — summing morsel partials merged at a pipeline barrier yields the
// same bits as one serial left-to-right pass. That makes parallel SUM/AVG
// bit-identical to serial at every degree, where a plain (or even Kahan)
// running sum would drift with the partition boundaries.
type compSum struct {
	partials []float64
	// special accumulates infinities and NaNs outside the expansion (two-sum
	// algebra is only exact for finite values).
	special    float64
	hasSpecial bool
}

// add folds x into the expansion, keeping partials non-overlapping and
// ordered by increasing magnitude.
func (c *compSum) add(x float64) {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		c.special += x
		c.hasSpecial = true
		return
	}
	i := 0
	for _, y := range c.partials {
		if math.Abs(x) < math.Abs(y) {
			x, y = y, x
		}
		hi := x + y
		lo := y - (hi - x)
		if lo != 0 {
			c.partials[i] = lo
			i++
		}
		x = hi
	}
	c.partials = append(c.partials[:i], x)
}

// merge folds another accumulator's exact state into this one. Partials are
// themselves ordinary floats, so replaying them through add preserves
// exactness.
func (c *compSum) merge(o *compSum) {
	for _, p := range o.partials {
		c.add(p)
	}
	if o.hasSpecial {
		c.special += o.special
		c.hasSpecial = true
	}
}

// value returns the correctly rounded (round-half-even) sum of the expansion.
func (c *compSum) value() float64 {
	if c.hasSpecial {
		return c.special
	}
	n := len(c.partials)
	if n == 0 {
		return 0
	}
	// Sum from largest to smallest; stop at the first partial that does not
	// fit, then nudge for a half-ulp tie so the result is the exact sum
	// rounded once (CPython fsum's rounding step).
	i := n - 1
	hi := c.partials[i]
	var lo float64
	for i > 0 {
		x := hi
		i--
		y := c.partials[i]
		hi = x + y
		yr := hi - x
		lo = y - yr
		if lo != 0 {
			break
		}
	}
	if i > 0 && ((lo < 0 && c.partials[i-1] < 0) || (lo > 0 && c.partials[i-1] > 0)) {
		y := lo * 2
		x := hi + y
		if y == x-hi {
			hi = x
		}
	}
	return hi
}
