package exec

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datum"
)

// TestCompSumOrderIndependent: any partitioning and ordering of the same
// multiset of floats must round to the same bits.
func TestCompSumOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		vals := make([]float64, n)
		for i := range vals {
			// Wildly mixed magnitudes to provoke cancellation.
			vals[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(20)-10))
		}
		var serial compSum
		for _, v := range vals {
			serial.add(v)
		}
		want := serial.value()

		// Shuffled two-phase: random partition count, random order inside.
		perm := rng.Perm(n)
		parts := 1 + rng.Intn(8)
		partials := make([]compSum, parts)
		for i, pi := range perm {
			partials[i%parts].add(vals[pi])
		}
		var merged compSum
		for i := range partials {
			merged.merge(&partials[i])
		}
		if got := merged.value(); got != want {
			t.Fatalf("trial %d: serial=%x merged=%x (n=%d parts=%d)", trial, want, got, n, parts)
		}
	}
}

// TestCompSumExact: the expansion is exact where a naive sum is not.
func TestCompSumExact(t *testing.T) {
	var c compSum
	c.add(1e16)
	c.add(1)
	c.add(-1e16)
	if got := c.value(); got != 1 {
		t.Fatalf("1e16 + 1 - 1e16 = %v, want 1", got)
	}
	var d compSum
	for i := 0; i < 10; i++ {
		d.add(0.1)
	}
	naive := 0.0
	for i := 0; i < 10; i++ {
		naive += 0.1
	}
	if got := d.value(); got != 1.0 {
		t.Fatalf("10 * 0.1 = %v, want exactly 1.0 (naive gives %v)", got, naive)
	}
}

// TestCompSumSpecials: infinities and NaNs still propagate.
func TestCompSumSpecials(t *testing.T) {
	var c compSum
	c.add(1)
	c.add(math.Inf(1))
	if got := c.value(); !math.IsInf(got, 1) {
		t.Fatalf("sum with +Inf = %v", got)
	}
	var d compSum
	d.add(math.Inf(1))
	d.add(math.Inf(-1))
	if got := d.value(); !math.IsNaN(got) {
		t.Fatalf("+Inf + -Inf = %v, want NaN", got)
	}
}

// TestSumAvgAccBitIdentical: the SQL accumulators built on compSum agree
// between one serial accumulator and merged partials, bit for bit.
func TestSumAvgAccBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]datum.D, 400)
	for i := range vals {
		vals[i] = datum.NewFloat((rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(12)-6)))
	}
	for _, parts := range []int{2, 3, 8} {
		serialSum, serialAvg := &sumAcc{}, &avgAcc{}
		for _, v := range vals {
			serialSum.add(v)
			serialAvg.add(v)
		}
		sums := make([]*sumAcc, parts)
		avgs := make([]*avgAcc, parts)
		for i := range sums {
			sums[i], avgs[i] = &sumAcc{}, &avgAcc{}
		}
		for i, v := range vals {
			sums[i%parts].add(v)
			avgs[i%parts].add(v)
		}
		mergedSum, mergedAvg := &sumAcc{}, &avgAcc{}
		for i := range sums {
			mergedSum.merge(sums[i])
			mergedAvg.merge(avgs[i])
		}
		if a, b := serialSum.result().Float(), mergedSum.result().Float(); a != b {
			t.Errorf("SUM differs at %d partitions: serial=%x merged=%x", parts, a, b)
		}
		if a, b := serialAvg.result().Float(), mergedAvg.result().Float(); a != b {
			t.Errorf("AVG differs at %d partitions: serial=%x merged=%x", parts, a, b)
		}
	}
}
