package exec

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestNoBareGoroutinesInExec enforces the resource-governor invariant that
// every goroutine in this package is launched through the Pool helpers in
// parallel.go: pool workers are the only place Close can wait on, so a bare
// `go func` anywhere else could outlive the query and leak past
// cancellation. New concurrency must go through Pool.submit/runWorkers.
func TestNoBareGoroutinesInExec(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if name == "parallel.go" {
			continue // the pool implementation itself
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				t.Errorf("%s: bare go statement — route goroutines through the Pool in parallel.go",
					fset.Position(g.Pos()))
			}
			return true
		})
	}
}
