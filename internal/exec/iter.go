package exec

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/datum"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/storage"
)

// Run executes a physical plan to completion and returns the materialized
// result in the plan's layout.
func Run(p physical.Plan, c *Ctx) (*Result, error) {
	rows, err := c.runPlan(p)
	if err != nil {
		return nil, err
	}
	return &Result{Cols: p.Columns(), Rows: rows}, nil
}

// RunPlanQuery executes a physical plan for a query: run, order, project.
func RunPlanQuery(p physical.Plan, q *logical.Query, c *Ctx) (*Result, error) {
	res, err := Run(p, c)
	if err != nil {
		return nil, err
	}
	if len(q.OrderBy) > 0 && !q.OrderBy.SatisfiedBy(p.Ordering()) {
		if err := c.sortResult(res, q.OrderBy); err != nil {
			return nil, err
		}
	}
	return presentation(res, q)
}

// sortResult sorts rows in place by the ordering over the result layout. An
// ORDER BY column missing from the layout is an execution error — silently
// returning unsorted rows would hide a planner bug.
func (c *Ctx) sortResult(res *Result, by logical.Ordering) error {
	spec := make([]datum.SortSpec, len(by))
	for i, o := range by {
		off := res.ColIndex(o.Col)
		if off < 0 {
			return fmt.Errorf("exec: ORDER BY column @%d not in result layout", int(o.Col))
		}
		spec[i] = datum.SortSpec{Col: off, Desc: o.Desc}
	}
	c.noteMem(int64(len(res.Rows)))
	need := rowSetBytes(res.Rows)
	if err := c.Mem.Grow("sort", need); err != nil {
		// The sort buffer does not fit the budget: degrade to an external
		// merge sort, which emits the identical stable order.
		rows, serr := c.externalSortRows(res.Rows, spec)
		if serr != nil {
			return serr
		}
		res.Rows = rows
		return nil
	}
	defer c.Mem.Shrink(need)
	c.noteMemBytes(need)
	if c.parallel() && len(res.Rows) >= minParallelRows {
		res.Rows = c.sortRowsParallel(res.Rows, spec)
		return nil
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		c.Counters.Comparisons++
		return datum.CompareRows(res.Rows[i], res.Rows[j], spec) < 0
	})
	return nil
}

// runPlan executes one operator, metering it when analyze mode is on. The
// nil check is the entire cost of the instrumentation when analyze is off.
// Every operator entry doubles as a cancellation checkpoint.
func (c *Ctx) runPlan(p physical.Plan) ([]datum.Row, error) {
	if err := c.canceled(); err != nil {
		return nil, err
	}
	if c.Metrics == nil {
		return c.execPlan(p)
	}
	m := c.Metrics.Node(p)
	m.Invocations++
	prev := c.curNode
	c.curNode = m
	start := time.Now()
	rows, err := c.execPlan(p)
	m.WallNanos += time.Since(start).Nanoseconds()
	m.ActualRows += int64(len(rows))
	c.curNode = prev
	return rows, err
}

// execPlan dispatches on the operator type. Operators materialize their
// output; inner operators of joins may be re-materialized only once (the
// engine caches nothing across calls — joins materialize inputs explicitly).
func (c *Ctx) execPlan(p physical.Plan) ([]datum.Row, error) {
	if c.Vectorize {
		if rows, ok, err := c.execVectorized(p); ok {
			return rows, err
		}
	}
	switch t := p.(type) {
	case *physical.TableScan:
		return c.runTableScan(t)
	case *physical.IndexScan:
		return c.runIndexScan(t)
	case *physical.ValuesOp:
		res, err := c.naiveValues(&logical.Values{Cols: t.Cols, Rows: t.Rows}, nil)
		if err != nil {
			return nil, err
		}
		return res.Rows, nil
	case *physical.Filter:
		in, err := c.runPlan(t.Input)
		if err != nil {
			return nil, err
		}
		if c.parallel() && len(in) >= minParallelRows {
			return c.filterRowsParallel(in, t.Input.Columns(), t.Preds)
		}
		e := newEnv(t.Input.Columns(), nil)
		var out []datum.Row
		for _, r := range in {
			c.Counters.RowsProcessed++
			e.row = r
			ok, err := c.filterRow(t.Preds, e)
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, r)
			}
		}
		return out, nil
	case *physical.Project:
		in, err := c.runPlan(t.Input)
		if err != nil {
			return nil, err
		}
		if c.parallel() && len(in) >= minParallelRows {
			return c.projectRowsParallel(in, t.Input.Columns(), t.Items)
		}
		e := newEnv(t.Input.Columns(), nil)
		ectx := c.evalCtx(e)
		out := make([]datum.Row, 0, len(in))
		for _, r := range in {
			c.Counters.RowsProcessed++
			e.row = r
			nr := make(datum.Row, len(t.Items))
			for i, it := range t.Items {
				v, err := logical.Eval(it.Expr, ectx)
				if err != nil {
					return nil, err
				}
				nr[i] = v
			}
			out = append(out, nr)
		}
		return out, nil
	case *physical.Sort:
		in, err := c.runPlan(t.Input)
		if err != nil {
			return nil, err
		}
		res := &Result{Cols: t.Input.Columns(), Rows: in}
		if err := c.sortResult(res, t.By); err != nil {
			return nil, err
		}
		return res.Rows, nil
	case *physical.NLJoin:
		return c.runNLJoin(t)
	case *physical.INLJoin:
		return c.runINLJoin(t)
	case *physical.MergeJoin:
		return c.runMergeJoin(t)
	case *physical.HashJoin:
		return c.runHashJoin(t)
	case *physical.HashGroupBy:
		return c.runGroupBy(t.Input, t.GroupCols, t.Aggs, true, t.Rows)
	case *physical.StreamGroupBy:
		return c.runGroupBy(t.Input, t.GroupCols, t.Aggs, false, t.Rows)
	case *physical.LimitOp:
		in, err := c.runPlan(t.Input)
		if err != nil {
			return nil, err
		}
		if int64(len(in)) > t.N {
			in = in[:t.N]
		}
		return in, nil
	case *physical.Exchange:
		return c.runExchange(t)
	case *physical.UnionAll:
		left, err := c.runPlan(t.Left)
		if err != nil {
			return nil, err
		}
		right, err := c.runPlan(t.Right)
		if err != nil {
			return nil, err
		}
		out := &Result{Cols: t.Cols}
		if err := appendAligned(out, &Result{Cols: t.Left.Columns(), Rows: left}, t.LeftCols); err != nil {
			return nil, err
		}
		if err := appendAligned(out, &Result{Cols: t.Right.Columns(), Rows: right}, t.RightCols); err != nil {
			return nil, err
		}
		c.Counters.RowsProcessed += int64(len(out.Rows))
		return out.Rows, nil
	}
	return nil, fmt.Errorf("exec: unknown physical operator %T", p)
}

func (c *Ctx) runTableScan(t *physical.TableScan) ([]datum.Row, error) {
	tab, ok := c.Store.Table(t.Table.Name)
	if !ok {
		return nil, fmt.Errorf("exec: no storage for table %s", t.Table.Name)
	}
	if pruner := c.buildPruner(tab, t.Filter, t.Cols, t.ColOrds); pruner != nil {
		return c.runTableScanSegments(t, tab, pruner)
	}
	c.touchScan(tab)
	rows, err := c.tableRows(tab)
	if err != nil {
		return nil, err
	}
	if c.parallel() && len(rows) >= minParallelRows {
		return c.scanRowsParallel(rows, t.Cols, t.ColOrds, t.Filter)
	}
	var out []datum.Row
	e := newEnv(t.Cols, nil)
	for i, r := range rows {
		// One checkpoint per batch of MorselSize rows — the same cadence (and
		// fault-injection op stream) as the parallel scan's morsels.
		if i%MorselSize == 0 {
			if err := c.step("scan"); err != nil {
				return nil, err
			}
		}
		c.Counters.RowsProcessed++
		pr := projectRow(r, t.ColOrds)
		if len(t.Filter) > 0 {
			e.row = pr
			ok, err := c.filterRow(t.Filter, e)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out = append(out, pr)
	}
	return out, nil
}

// runTableScanSegments is the row-path scan over a disk-backed table:
// zone-map-eliminated segments are never materialized, full-match segments
// skip filter evaluation (when the whole conjunction compiled), everything
// else runs the normal project+filter loop.
func (c *Ctx) runTableScanSegments(t *physical.TableScan, tab *storage.Table, pruner *scanPruner) ([]datum.Row, error) {
	c.notePruner(tab, pruner)
	regions := pruner.liveRegions()
	if c.parallel() {
		total := 0
		for _, rg := range regions {
			total += rg.hi - rg.lo
		}
		if total >= minParallelRows {
			all := make([]datum.Row, 0, total)
			for _, rg := range regions {
				rows, err := c.rowsRange(tab, rg.lo, rg.hi)
				if err != nil {
					return nil, err
				}
				all = append(all, rows...)
			}
			// Region order preserves row order, so the morsel fan-out keeps
			// the serial output order (filters re-run even on full-match
			// regions — same rows either way).
			return c.scanRowsParallel(all, t.Cols, t.ColOrds, t.Filter)
		}
	}
	var out []datum.Row
	e := newEnv(t.Cols, nil)
	for _, rg := range regions {
		rows, err := c.rowsRange(tab, rg.lo, rg.hi)
		if err != nil {
			return nil, err
		}
		skipFilter := pruner.full && rg.disp == storage.ZoneAll
		for i, r := range rows {
			if i%MorselSize == 0 {
				if err := c.step("scan"); err != nil {
					return nil, err
				}
			}
			c.Counters.RowsProcessed++
			pr := projectRow(r, t.ColOrds)
			if !skipFilter && len(t.Filter) > 0 {
				e.row = pr
				ok, err := c.filterRow(t.Filter, e)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			out = append(out, pr)
		}
	}
	return out, nil
}

func (c *Ctx) runIndexScan(t *physical.IndexScan) ([]datum.Row, error) {
	tab, ok := c.Store.Table(t.Table.Name)
	if !ok {
		return nil, fmt.Errorf("exec: no storage for table %s", t.Table.Name)
	}
	ix, err := tab.Index(t.Index.Name)
	if err != nil {
		return nil, err
	}
	c.Counters.IndexSeeks++
	var ids []int
	switch {
	case len(t.EqKey) > 0 && (!t.Lo.IsNull() || !t.Hi.IsNull()):
		// Equality prefix + range on the next column: fetch eq matches and
		// post-filter on the range column.
		ids = ix.SeekEq(t.EqKey)
		rangeOrd := t.Index.Cols[len(t.EqKey)]
		ids, err = c.filterIDsByRange(tab, ids, rangeOrd, t.Lo, t.LoIncl, t.Hi, t.HiIncl)
		if err != nil {
			return nil, err
		}
	case len(t.EqKey) > 0:
		ids = ix.SeekEq(t.EqKey)
	default:
		ids = ix.SeekRange(t.Lo, t.LoIncl, t.Hi, t.HiIncl)
	}
	for _, id := range ids {
		c.touchRow(tab, id)
	}
	if c.parallel() && len(ids) >= minParallelRows {
		return c.fetchRowsParallel(tab, ids, t.Cols, t.ColOrds, t.Filter)
	}
	e := newEnv(t.Cols, nil)
	var out []datum.Row
	for i, id := range ids {
		if i%MorselSize == 0 {
			if err := c.step("scan"); err != nil {
				return nil, err
			}
		}
		c.Counters.RowsProcessed++
		r, err := c.rowAt(tab, id)
		if err != nil {
			return nil, err
		}
		pr := projectRow(r, t.ColOrds)
		if len(t.Filter) > 0 {
			e.row = pr
			ok, err := c.filterRow(t.Filter, e)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
		}
		out = append(out, pr)
	}
	return out, nil
}

func (c *Ctx) filterIDsByRange(tab *storage.Table, ids []int, ord int, lo datum.D, loIncl bool, hi datum.D, hiIncl bool) ([]int, error) {
	var out []int
	for _, id := range ids {
		v, err := c.colValue(tab, id, ord)
		if err != nil {
			return nil, err
		}
		if v.IsNull() {
			continue
		}
		if !lo.IsNull() {
			cmp := datum.Compare(v, lo)
			if cmp < 0 || (cmp == 0 && !loIncl) {
				continue
			}
		}
		if !hi.IsNull() {
			cmp := datum.Compare(v, hi)
			if cmp > 0 || (cmp == 0 && !hiIncl) {
				continue
			}
		}
		out = append(out, id)
	}
	return out, nil
}

func (c *Ctx) runNLJoin(t *physical.NLJoin) ([]datum.Row, error) {
	left, err := c.runPlan(t.Left)
	if err != nil {
		return nil, err
	}
	right, err := c.runPlan(t.Right)
	if err != nil {
		return nil, err
	}
	leftRes := &Result{Cols: t.Left.Columns(), Rows: left}
	rightRes := &Result{Cols: t.Right.Columns(), Rows: right}
	if c.parallel() && len(left)*max(len(right), 1) >= minParallelRows {
		return c.runNLJoinParallel(t, leftRes, rightRes)
	}
	lj := &logical.Join{Kind: t.Kind, On: t.On}
	return c.joinMaterialized(lj, leftRes, rightRes)
}

// joinMaterialized performs the generic nested-loop join over materialized
// inputs (shared with the naive engine's semantics).
func (c *Ctx) joinMaterialized(t *logical.Join, left, right *Result) ([]datum.Row, error) {
	combined := append(append([]logical.ColumnID{}, left.Cols...), right.Cols...)
	e := newEnv(combined, nil)
	var out []datum.Row
	rightWidth := len(right.Cols)
	rightMatched := make([]bool, len(right.Rows))
	// Aim for one cancellation check per ~MorselSize processed row pairs.
	checkEvery := MorselSize/(len(right.Rows)+1) + 1
	for li, lr := range left.Rows {
		if li%checkEvery == 0 {
			if err := c.canceled(); err != nil {
				return nil, err
			}
		}
		matched := false
		for ri, rr := range right.Rows {
			c.Counters.RowsProcessed++
			e.row = lr.Concat(rr)
			ok, err := c.filterRow(t.On, e)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			matched = true
			rightMatched[ri] = true
			switch t.Kind {
			case logical.InnerJoin, logical.LeftOuterJoin, logical.FullOuterJoin:
				out = append(out, lr.Concat(rr))
			case logical.SemiJoin:
				out = append(out, lr)
			}
			if t.Kind == logical.SemiJoin || t.Kind == logical.AntiJoin {
				break
			}
		}
		switch t.Kind {
		case logical.LeftOuterJoin, logical.FullOuterJoin:
			if !matched {
				out = append(out, lr.Concat(nullRow(rightWidth)))
			}
		case logical.AntiJoin:
			if !matched {
				out = append(out, lr)
			}
		}
	}
	if t.Kind == logical.FullOuterJoin {
		leftWidth := len(left.Cols)
		for ri, rr := range right.Rows {
			if !rightMatched[ri] {
				out = append(out, nullRow(leftWidth).Concat(rr))
			}
		}
	}
	return out, nil
}

func (c *Ctx) runINLJoin(t *physical.INLJoin) ([]datum.Row, error) {
	left, err := c.runPlan(t.Left)
	if err != nil {
		return nil, err
	}
	tab, ok := c.Store.Table(t.Table.Name)
	if !ok {
		return nil, fmt.Errorf("exec: no storage for table %s", t.Table.Name)
	}
	ix, err := tab.Index(t.Index.Name)
	if err != nil {
		return nil, err
	}
	leftLayout := t.Left.Columns()
	keyOffsets := make([]int, len(t.LeftKeys))
	for i, k := range t.LeftKeys {
		off := (&Result{Cols: leftLayout}).ColIndex(k)
		if off < 0 {
			return nil, fmt.Errorf("exec: INL key @%d not in outer layout", int(k))
		}
		keyOffsets[i] = off
	}
	if c.parallel() && len(left) >= minParallelRows {
		return c.runINLJoinParallel(t, left, tab, ix, keyOffsets)
	}
	combined := append(append([]logical.ColumnID{}, leftLayout...), t.Cols...)
	e := newEnv(combined, nil)
	innerWidth := len(t.Cols)
	var out []datum.Row
	for li, lr := range left {
		if li%MorselSize == 0 {
			if err := c.canceled(); err != nil {
				return nil, err
			}
		}
		// NULL keys never match under SQL equality.
		key := make(datum.Row, len(keyOffsets))
		nullKey := false
		for i, off := range keyOffsets {
			key[i] = lr[off]
			if key[i].IsNull() {
				nullKey = true
			}
		}
		matched := false
		if !nullKey {
			c.Counters.IndexSeeks++
			ids := ix.SeekEq(key)
			for _, id := range ids {
				c.touchRow(tab, id)
			}
			for _, id := range ids {
				c.Counters.RowsProcessed++
				ir, err := c.rowAt(tab, id)
				if err != nil {
					return nil, err
				}
				rr := projectRow(ir, t.ColOrds)
				e.row = lr.Concat(rr)
				ok, err := c.filterRow(t.ExtraOn, e)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				matched = true
				switch t.Kind {
				case logical.InnerJoin, logical.LeftOuterJoin:
					out = append(out, lr.Concat(rr))
				case logical.SemiJoin:
					out = append(out, lr)
				}
				if t.Kind == logical.SemiJoin || t.Kind == logical.AntiJoin {
					break
				}
			}
		}
		switch t.Kind {
		case logical.LeftOuterJoin:
			if !matched {
				out = append(out, lr.Concat(nullRow(innerWidth)))
			}
		case logical.AntiJoin:
			if !matched {
				out = append(out, lr)
			}
		}
	}
	return out, nil
}

func (c *Ctx) runMergeJoin(t *physical.MergeJoin) ([]datum.Row, error) {
	left, err := c.runPlan(t.Left)
	if err != nil {
		return nil, err
	}
	right, err := c.runPlan(t.Right)
	if err != nil {
		return nil, err
	}
	leftLayout, rightLayout := t.Left.Columns(), t.Right.Columns()
	lOff, err := offsetsOf(leftLayout, t.LeftKeys)
	if err != nil {
		return nil, err
	}
	rOff, err := offsetsOf(rightLayout, t.RightKeys)
	if err != nil {
		return nil, err
	}
	combined := append(append([]logical.ColumnID{}, leftLayout...), rightLayout...)
	e := newEnv(combined, nil)
	rightWidth := len(rightLayout)
	var out []datum.Row

	li, ri := 0, 0
	for iters := 0; li < len(left); iters++ {
		if iters%MorselSize == 0 {
			if err := c.canceled(); err != nil {
				return nil, err
			}
		}
		lr := left[li]
		if hasNullAt(lr, lOff) {
			// NULL keys match nothing.
			if t.Kind == logical.LeftOuterJoin {
				out = append(out, lr.Concat(nullRow(rightWidth)))
			} else if t.Kind == logical.AntiJoin {
				out = append(out, lr)
			}
			li++
			continue
		}
		// Advance right until >= left key.
		for ri < len(right) && (hasNullAt(right[ri], rOff) || compareKeys(right[ri], rOff, lr, lOff, &c.Counters) < 0) {
			ri++
		}
		// Collect the right group equal to the left key.
		rj := ri
		for rj < len(right) && compareKeys(right[rj], rOff, lr, lOff, &c.Counters) == 0 {
			rj++
		}
		// Emit all left rows with this key against the group.
		lj := li
		for lj < len(left) && compareKeys(left[lj], lOff, lr, lOff, &c.Counters) == 0 {
			curr := left[lj]
			matched := false
			for k := ri; k < rj; k++ {
				c.Counters.RowsProcessed++
				e.row = curr.Concat(right[k])
				ok, err := c.filterRow(t.ExtraOn, e)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				matched = true
				switch t.Kind {
				case logical.InnerJoin, logical.LeftOuterJoin:
					out = append(out, curr.Concat(right[k]))
				case logical.SemiJoin:
					out = append(out, curr)
				}
				if t.Kind == logical.SemiJoin || t.Kind == logical.AntiJoin {
					break
				}
			}
			switch t.Kind {
			case logical.LeftOuterJoin:
				if !matched {
					out = append(out, curr.Concat(nullRow(rightWidth)))
				}
			case logical.AntiJoin:
				if !matched {
					out = append(out, curr)
				}
			}
			lj++
		}
		li = lj
	}
	return out, nil
}

func offsetsOf(layout []logical.ColumnID, keys []logical.ColumnID) ([]int, error) {
	res := &Result{Cols: layout}
	out := make([]int, len(keys))
	for i, k := range keys {
		off := res.ColIndex(k)
		if off < 0 {
			return nil, fmt.Errorf("exec: key column @%d not in layout", int(k))
		}
		out[i] = off
	}
	return out, nil
}

func hasNullAt(r datum.Row, offs []int) bool {
	for _, o := range offs {
		if r[o].IsNull() {
			return true
		}
	}
	return false
}

func compareKeys(a datum.Row, aOff []int, b datum.Row, bOff []int, counters *Counters) int {
	counters.Comparisons++
	for i := range aOff {
		c := datum.Compare(a[aOff[i]], b[bOff[i]])
		if c != 0 {
			return c
		}
	}
	return 0
}

func (c *Ctx) runHashJoin(t *physical.HashJoin) ([]datum.Row, error) {
	left, err := c.runPlan(t.Left)
	if err != nil {
		return nil, err
	}
	right, err := c.runPlan(t.Right)
	if err != nil {
		return nil, err
	}
	leftLayout, rightLayout := t.Left.Columns(), t.Right.Columns()
	lOff, err := offsetsOf(leftLayout, t.LeftKeys)
	if err != nil {
		return nil, err
	}
	rOff, err := offsetsOf(rightLayout, t.RightKeys)
	if err != nil {
		return nil, err
	}
	buildBytes := rowSetBytes(right)
	if err := c.Mem.Grow("hash join build", buildBytes); err != nil {
		// The build side does not fit the budget: degrade to a grace hash
		// join, which partitions it to disk and emits the identical rows.
		return c.graceHashJoin(t, left, right, lOff, rOff)
	}
	defer c.Mem.Shrink(buildBytes)
	c.noteMemBytes(buildBytes)
	if c.parallel() && len(left)+len(right) >= minParallelRows {
		return c.runHashJoinParallel(t, left, right, lOff, rOff)
	}
	// Build on the right.
	build := make(map[uint64][]int, len(right))
	for i, rr := range right {
		if hasNullAt(rr, rOff) {
			continue
		}
		c.Counters.HashOps++
		h := rr.Hash(rOff)
		build[h] = append(build[h], i)
	}
	c.noteMem(int64(len(right)))
	combined := append(append([]logical.ColumnID{}, leftLayout...), rightLayout...)
	e := newEnv(combined, nil)
	rightWidth := len(rightLayout)
	rightMatched := make([]bool, len(right))
	var out []datum.Row
	for li, lr := range left {
		if li%MorselSize == 0 {
			if err := c.canceled(); err != nil {
				return nil, err
			}
		}
		matched := false
		if !hasNullAt(lr, lOff) {
			c.Counters.HashOps++
			h := lr.Hash(lOff)
			for _, ri := range build[h] {
				rr := right[ri]
				if !datum.EqualOn(lr, rr, lOff, rOff) {
					continue
				}
				c.Counters.RowsProcessed++
				e.row = lr.Concat(rr)
				ok, err := c.filterRow(t.ExtraOn, e)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				matched = true
				rightMatched[ri] = true
				switch t.Kind {
				case logical.InnerJoin, logical.LeftOuterJoin, logical.FullOuterJoin:
					out = append(out, lr.Concat(rr))
				case logical.SemiJoin:
					out = append(out, lr)
				}
				if t.Kind == logical.SemiJoin || t.Kind == logical.AntiJoin {
					break
				}
			}
		}
		switch t.Kind {
		case logical.LeftOuterJoin, logical.FullOuterJoin:
			if !matched {
				out = append(out, lr.Concat(nullRow(rightWidth)))
			}
		case logical.AntiJoin:
			if !matched {
				out = append(out, lr)
			}
		}
	}
	if t.Kind == logical.FullOuterJoin {
		leftWidth := len(leftLayout)
		for ri, rr := range right {
			if !rightMatched[ri] {
				out = append(out, nullRow(leftWidth).Concat(rr))
			}
		}
	}
	return out, nil
}

func (c *Ctx) runGroupBy(input physical.Plan, groupCols []logical.ColumnID, aggs []logical.AggItem, hash bool, estGroups float64) ([]datum.Row, error) {
	in, err := c.runPlan(input)
	if err != nil {
		return nil, err
	}
	layout := input.Columns()
	keyOff, err := offsetsOf(layout, groupCols)
	if err != nil {
		return nil, err
	}
	if hash && c.parallel() && len(in) >= minParallelRows {
		out, err := c.runGroupByParallel(in, layout, keyOff, groupCols, aggs)
		if err != nil && isBudgetErr(err) {
			// Thread-local tables did not fit: degrade to the (serial)
			// partition-and-spill aggregation.
			return c.spillGroupBy(in, layout, keyOff, groupCols, aggs)
		}
		return out, err
	}
	gt := newGroupTable(len(groupCols), aggs)
	gt.presize(int(estGroups))
	if hash {
		// Stream aggregation over sorted input holds one group at a time in a
		// real iterator engine; only the hash table is budgeted working memory.
		gt.mem = c.Mem
		gt.memOp = "hash aggregation"
	}
	defer gt.release()
	e := newEnv(layout, nil)
	ectx := c.evalCtx(e)
	for ri, r := range in {
		if ri%MorselSize == 0 {
			if err := c.canceled(); err != nil {
				return nil, err
			}
		}
		c.Counters.RowsProcessed++
		if hash {
			c.Counters.HashOps++
		}
		e.row = r
		key := make(datum.Row, len(keyOff))
		for i, off := range keyOff {
			key[i] = r[off]
		}
		args := make([]datum.D, len(aggs))
		for i, a := range aggs {
			if a.Arg == nil {
				args[i] = datum.NewInt(1)
				continue
			}
			v, err := logical.Eval(a.Arg, ectx)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		if err := gt.add(key, key.Hash(seqOffsets(len(key))), args); err != nil {
			if isBudgetErr(err) {
				gt.release()
				return c.spillGroupBy(in, layout, keyOff, groupCols, aggs)
			}
			return nil, err
		}
	}
	c.noteMem(int64(len(gt.order)))
	c.noteMemBytes(gt.charged)
	return gt.rows(), nil
}
