// Typed kernels for the vectorized path: predicate filtering over raw
// []int64/[]float64/[]string column slices writing selection vectors, hash
// computation for join/aggregation probes, and the accumulate loops of
// SUM/COUNT/MIN/MAX/AVG. Every kernel replicates the row engine's SQL
// semantics exactly — three-valued comparison (a NULL operand is never
// TRUE), the INT/FLOAT comparison family of datum.Compare (so 1 = 1.0), and
// fsum's compensated summation — which is what makes the vectorized output
// bit-identical to serial row-mode execution.
package exec

import (
	"math"

	"repro/internal/datum"
	"repro/internal/logical"
)

// --- predicate compilation ---

// Forms a compiled predicate can take.
const (
	predColConst uint8 = iota // col op constant
	predColCol                // col op col
	predIsNull                // col IS NULL
	predIsNotNull             // col IS NOT NULL
	predNever                 // never TRUE (e.g. comparison against NULL)
)

// compiledPred is one kernel-executable predicate over batch columns.
type compiledPred struct {
	form uint8
	col  int // offset of the left column in the batch layout
	col2 int // offset of the right column (predColCol)
	op   logical.CmpOp
	c    datum.D // constant operand (predColConst)
}

// compilePreds translates a pushed-down predicate list into kernel programs.
// It handles comparisons between columns and constants (and IS [NOT] NULL);
// anything else — LIKE, arithmetic, IN lists, subqueries, UDFs — reports
// false and the operator falls back to row-at-a-time evaluation.
func compilePreds(preds []logical.Scalar, layout []logical.ColumnID) ([]compiledPred, bool) {
	find := func(id logical.ColumnID) int {
		for i, c := range layout {
			if c == id {
				return i
			}
		}
		return -1
	}
	out := make([]compiledPred, 0, len(preds))
	for _, p := range preds {
		switch t := p.(type) {
		case *logical.Cmp:
			if t.Op == logical.CmpLike {
				return nil, false
			}
			lc, lIsCol := t.L.(*logical.Col)
			rc, rIsCol := t.R.(*logical.Col)
			lk, lIsConst := t.L.(*logical.Const)
			rk, rIsConst := t.R.(*logical.Const)
			switch {
			case lIsCol && rIsCol:
				a, b := find(lc.ID), find(rc.ID)
				if a < 0 || b < 0 {
					return nil, false
				}
				out = append(out, compiledPred{form: predColCol, col: a, col2: b, op: t.Op})
			case lIsCol && rIsConst:
				a := find(lc.ID)
				if a < 0 {
					return nil, false
				}
				if rk.Val.IsNull() {
					out = append(out, compiledPred{form: predNever})
					continue
				}
				out = append(out, compiledPred{form: predColConst, col: a, op: t.Op, c: rk.Val})
			case lIsConst && rIsCol:
				a := find(rc.ID)
				if a < 0 {
					return nil, false
				}
				if lk.Val.IsNull() {
					out = append(out, compiledPred{form: predNever})
					continue
				}
				out = append(out, compiledPred{form: predColConst, col: a, op: t.Op.Commute(), c: lk.Val})
			default:
				return nil, false
			}
		case *logical.IsNull:
			col, ok := t.E.(*logical.Col)
			if !ok {
				return nil, false
			}
			a := find(col.ID)
			if a < 0 {
				return nil, false
			}
			form := predIsNull
			if t.Negated {
				form = predIsNotNull
			}
			out = append(out, compiledPred{form: form, col: a})
		default:
			return nil, false
		}
	}
	return out, true
}

// cmpMatches applies a comparison operator to a three-way compare result.
func cmpMatches(op logical.CmpOp, c int) bool {
	switch op {
	case logical.CmpEq:
		return c == 0
	case logical.CmpNe:
		return c != 0
	case logical.CmpLt:
		return c < 0
	case logical.CmpLe:
		return c <= 0
	case logical.CmpGt:
		return c > 0
	case logical.CmpGe:
		return c >= 0
	}
	return false
}

// family mirrors datum.Compare's rank(): NULL < BOOL < numeric < STRING.
func family(k datum.Kind) int {
	switch k {
	case datum.KindNull:
		return 0
	case datum.KindBool:
		return 1
	case datum.KindInt, datum.KindFloat:
		return 2
	case datum.KindString:
		return 3
	}
	return 4
}

// applyPred refines sel by one compiled predicate, appending survivors to
// out (which must be empty) and returning it.
func applyPred(b *Batch, p compiledPred, sel []int32, out []int32) []int32 {
	switch p.form {
	case predNever:
		return out
	case predIsNull:
		v := b.Vecs[p.col]
		for _, i := range sel {
			if v.Null(int(i)) {
				out = append(out, i)
			}
		}
		return out
	case predIsNotNull:
		v := b.Vecs[p.col]
		for _, i := range sel {
			if !v.Null(int(i)) {
				out = append(out, i)
			}
		}
		return out
	case predColConst:
		return selColConst(b.Vecs[p.col], p.op, p.c, sel, out)
	case predColCol:
		return selColCol(b.Vecs[p.col], b.Vecs[p.col2], p.op, sel, out)
	}
	return out
}

// selColConst selects rows where col op const is TRUE.
func selColConst(v *datum.Vec, op logical.CmpOp, c datum.D, sel, out []int32) []int32 {
	if v.Boxed() {
		for _, i := range sel {
			l := v.D(int(i))
			if l.IsNull() {
				continue
			}
			if cmpMatches(op, datum.Compare(l, c)) {
				out = append(out, i)
			}
		}
		return out
	}
	vk := v.Kind()
	if vk == datum.KindNull {
		return out
	}
	if family(vk) != family(c.Kind()) {
		// Cross-family comparisons have a fixed outcome for every non-NULL
		// value (datum.Compare orders whole families), so the predicate
		// collapses to "IS NOT NULL" or "never".
		if cmpMatches(op, cmpInts(family(vk), family(c.Kind()))) {
			for _, i := range sel {
				if !v.Null(int(i)) {
					out = append(out, i)
				}
			}
		}
		return out
	}
	nulls := v.Nulls()
	switch vk {
	case datum.KindInt:
		if c.Kind() == datum.KindFloat {
			return selIntColFloatConst(v.Ints, nulls, op, c.Float(), sel, out)
		}
		return selOrd(v.Ints, nulls, op, c.Int(), sel, out)
	case datum.KindFloat:
		return selOrd(v.Floats, nulls, op, c.Float(), sel, out)
	case datum.KindString:
		if v.Dict != nil {
			return selDictConst(v, op, c.Str(), sel, out)
		}
		return selOrd(v.Strs, nulls, op, c.Str(), sel, out)
	case datum.KindBool:
		var ci int64
		if c.Bool() {
			ci = 1
		}
		return selOrd(v.Ints, nulls, op, ci, sel, out)
	}
	return out
}

// selDictConst compares a dictionary-encoded string column against a string
// constant without decoding a single row: the constant translates to code
// space once (a binary search over the sorted dictionary), and because the
// dictionary is sorted, every comparison operator becomes the corresponding
// integer comparison over the codes. Constants absent from the dictionary
// collapse equality to no match — the typical case when a filter's value
// never occurs in a segment — and inequality bounds round to the adjacent
// code interval.
func selDictConst(v *datum.Vec, op logical.CmpOp, c string, sel, out []int32) []int32 {
	nulls := v.Nulls()
	dict := v.Dict
	code, found := dict.Code(c)
	switch op {
	case logical.CmpEq:
		if !found {
			return out
		}
		return selOrd(v.Ints, nulls, logical.CmpEq, code, sel, out)
	case logical.CmpNe:
		if !found {
			// Every non-NULL value differs from an absent constant.
			for _, i := range sel {
				if !nulls.Get(int(i)) {
					out = append(out, i)
				}
			}
			return out
		}
		return selOrd(v.Ints, nulls, logical.CmpNe, code, sel, out)
	case logical.CmpLt:
		// value < c  ⇔  code < |{entries < c}|.
		return selOrd(v.Ints, nulls, logical.CmpLt, dict.CodeFloor(c), sel, out)
	case logical.CmpGe:
		return selOrd(v.Ints, nulls, logical.CmpGe, dict.CodeFloor(c), sel, out)
	case logical.CmpLe:
		// value <= c ⇔ code < |{entries <= c}|.
		bound := dict.CodeFloor(c)
		if found {
			bound++
		}
		return selOrd(v.Ints, nulls, logical.CmpLt, bound, sel, out)
	case logical.CmpGt:
		bound := dict.CodeFloor(c)
		if found {
			bound++
		}
		return selOrd(v.Ints, nulls, logical.CmpGe, bound, sel, out)
	}
	return out
}

// selColCol selects rows where colA op colB is TRUE.
func selColCol(a, b *datum.Vec, op logical.CmpOp, sel, out []int32) []int32 {
	if a.Boxed() || b.Boxed() {
		for _, i := range sel {
			l, r := a.D(int(i)), b.D(int(i))
			if l.IsNull() || r.IsNull() {
				continue
			}
			if cmpMatches(op, datum.Compare(l, r)) {
				out = append(out, i)
			}
		}
		return out
	}
	ak, bk := a.Kind(), b.Kind()
	if ak == datum.KindNull || bk == datum.KindNull {
		return out
	}
	if family(ak) != family(bk) {
		if cmpMatches(op, cmpInts(family(ak), family(bk))) {
			for _, i := range sel {
				if !a.Null(int(i)) && !b.Null(int(i)) {
					out = append(out, i)
				}
			}
		}
		return out
	}
	if a.Dict != nil || b.Dict != nil {
		if a.Dict != nil && a.Dict == b.Dict {
			// Same code space: the sorted dictionary makes code order string
			// order, so the whole comparison runs on integers.
			return selOrd2(a.Ints, b.Ints, a.Nulls(), b.Nulls(), op, sel, out)
		}
		for _, i := range sel {
			if a.Null(int(i)) || b.Null(int(i)) {
				continue
			}
			if cmpMatches(op, datum.Compare(a.D(int(i)), b.D(int(i)))) {
				out = append(out, i)
			}
		}
		return out
	}
	an, bn := a.Nulls(), b.Nulls()
	switch {
	case ak == datum.KindInt && bk == datum.KindInt:
		return selOrd2(a.Ints, b.Ints, an, bn, op, sel, out)
	case ak == datum.KindFloat && bk == datum.KindFloat:
		return selOrd2(a.Floats, b.Floats, an, bn, op, sel, out)
	case ak == datum.KindString && bk == datum.KindString:
		return selOrd2(a.Strs, b.Strs, an, bn, op, sel, out)
	case ak == datum.KindBool && bk == datum.KindBool:
		return selOrd2(a.Ints, b.Ints, an, bn, op, sel, out)
	case ak == datum.KindInt && bk == datum.KindFloat:
		for _, i := range sel {
			if an.Get(int(i)) || bn.Get(int(i)) {
				continue
			}
			if cmpMatches(op, cmpF(float64(a.Ints[i]), b.Floats[i])) {
				out = append(out, i)
			}
		}
		return out
	case ak == datum.KindFloat && bk == datum.KindInt:
		for _, i := range sel {
			if an.Get(int(i)) || bn.Get(int(i)) {
				continue
			}
			if cmpMatches(op, cmpF(a.Floats[i], float64(b.Ints[i]))) {
				out = append(out, i)
			}
		}
		return out
	}
	return out
}

func cmpInts(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// cmpF replicates datum's cmpFloat64 (NaN compares "equal" to everything,
// matching the row engine).
func cmpF(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// selOrd is the column-vs-constant selection kernel over an ordered element
// type. All comparisons are expressed through < only, so float semantics
// match datum.Compare's three-way result (including NaN behaviour) exactly.
func selOrd[T int64 | float64 | string](vals []T, nulls datum.Bitmap, op logical.CmpOp, c T, sel, out []int32) []int32 {
	switch op {
	case logical.CmpEq:
		for _, i := range sel {
			if v := vals[i]; !nulls.Get(int(i)) && !(v < c) && !(c < v) {
				out = append(out, i)
			}
		}
	case logical.CmpNe:
		for _, i := range sel {
			if v := vals[i]; !nulls.Get(int(i)) && (v < c || c < v) {
				out = append(out, i)
			}
		}
	case logical.CmpLt:
		for _, i := range sel {
			if vals[i] < c && !nulls.Get(int(i)) {
				out = append(out, i)
			}
		}
	case logical.CmpLe:
		for _, i := range sel {
			if !(c < vals[i]) && !nulls.Get(int(i)) {
				out = append(out, i)
			}
		}
	case logical.CmpGt:
		for _, i := range sel {
			if c < vals[i] && !nulls.Get(int(i)) {
				out = append(out, i)
			}
		}
	case logical.CmpGe:
		for _, i := range sel {
			if !(vals[i] < c) && !nulls.Get(int(i)) {
				out = append(out, i)
			}
		}
	}
	return out
}

// selIntColFloatConst compares an INT column against a FLOAT constant by
// numeric value, like datum.Compare's shared INT/FLOAT family.
func selIntColFloatConst(vals []int64, nulls datum.Bitmap, op logical.CmpOp, c float64, sel, out []int32) []int32 {
	for _, i := range sel {
		if nulls.Get(int(i)) {
			continue
		}
		if cmpMatches(op, cmpF(float64(vals[i]), c)) {
			out = append(out, i)
		}
	}
	return out
}

// selOrd2 is the column-vs-column selection kernel.
func selOrd2[T int64 | float64 | string](a, b []T, an, bn datum.Bitmap, op logical.CmpOp, sel, out []int32) []int32 {
	for _, i := range sel {
		if an.Get(int(i)) || bn.Get(int(i)) {
			continue
		}
		l, r := a[i], b[i]
		var c int
		switch {
		case l < r:
			c = -1
		case r < l:
			c = 1
		}
		if cmpMatches(op, c) {
			out = append(out, i)
		}
	}
	return out
}

// --- hash kernels ---

const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func fnvMix(h, v uint64) uint64 { return (h ^ v) * fnvPrime64 }

// hashInit resets the per-row hash accumulators.
func hashInit(h []uint64) {
	for i := range h {
		h[i] = fnvOffset64
	}
}

// hashCombineVec folds one key column into the per-row hashes. The encoding
// mirrors datum.HashInto — a family tag, then INT and FLOAT both hashed as
// the float's bit pattern — so rows that compare equal (1 and 1.0, NULL and
// NULL) hash equal, exactly like the row engine's key hashing.
func hashCombineVec(v *datum.Vec, sel []int32, h []uint64) {
	if v.Boxed() || v.Kind() == datum.KindNull {
		for k, i := range sel {
			h[k] = hashCombineD(h[k], v.D(int(i)))
		}
		return
	}
	nulls := v.Nulls()
	switch v.Kind() {
	case datum.KindInt:
		for k, i := range sel {
			if nulls.Get(int(i)) {
				h[k] = fnvMix(h[k], 0)
				continue
			}
			h[k] = fnvMix(fnvMix(h[k], 2), math.Float64bits(float64(v.Ints[i])))
		}
	case datum.KindFloat:
		for k, i := range sel {
			if nulls.Get(int(i)) {
				h[k] = fnvMix(h[k], 0)
				continue
			}
			h[k] = fnvMix(fnvMix(h[k], 2), math.Float64bits(v.Floats[i]))
		}
	case datum.KindString:
		if v.Dict != nil {
			// Hash through the dictionary: the codes stay encoded, the hashed
			// bytes are the looked-up string with the usual family tag, so a
			// dict-encoded build side meets a plain probe side (or a different
			// dictionary) on equal hashes.
			vals := v.Dict.Vals
			for k, i := range sel {
				if nulls.Get(int(i)) {
					h[k] = fnvMix(h[k], 0)
					continue
				}
				x := fnvMix(h[k], 3)
				s := vals[v.Ints[i]]
				for j := 0; j < len(s); j++ {
					x = fnvMix(x, uint64(s[j]))
				}
				h[k] = x
			}
			return
		}
		for k, i := range sel {
			if nulls.Get(int(i)) {
				h[k] = fnvMix(h[k], 0)
				continue
			}
			x := fnvMix(h[k], 3)
			s := v.Strs[i]
			for j := 0; j < len(s); j++ {
				x = fnvMix(x, uint64(s[j]))
			}
			h[k] = x
		}
	case datum.KindBool:
		for k, i := range sel {
			if nulls.Get(int(i)) {
				h[k] = fnvMix(h[k], 0)
				continue
			}
			h[k] = fnvMix(fnvMix(h[k], 1), uint64(v.Ints[i]))
		}
	}
}

// hashCombineD is the boxed-representation fallback with the same encoding.
func hashCombineD(h uint64, d datum.D) uint64 {
	switch d.Kind() {
	case datum.KindNull:
		return fnvMix(h, 0)
	case datum.KindBool:
		var b uint64
		if d.Bool() {
			b = 1
		}
		return fnvMix(fnvMix(h, 1), b)
	case datum.KindInt:
		return fnvMix(fnvMix(h, 2), math.Float64bits(float64(d.Int())))
	case datum.KindFloat:
		return fnvMix(fnvMix(h, 2), math.Float64bits(d.Float()))
	case datum.KindString:
		x := fnvMix(h, 3)
		s := d.Str()
		for j := 0; j < len(s); j++ {
			x = fnvMix(x, uint64(s[j]))
		}
		return x
	}
	return h
}

// --- aggregate accumulate kernels ---

// vecAccumulator is one aggregate's state over all groups. accumulate is
// called once per batch (one interface dispatch per batch, not per row); the
// inner loops are typed. gids maps each selected row to its group id.
type vecAccumulator interface {
	ensure(nGroups int)
	accumulate(v *datum.Vec, sel []int32, gids []int32)
	result(g int) datum.D
}

// newVecAccumulator picks the typed accumulator for an aggregate given the
// argument vector's runtime representation (nil arg means COUNT(*)). It
// returns nil when no kernel applies (DISTINCT, boxed arguments, or kinds
// the aggregate's typed loops do not cover) — the caller then falls back to
// row-mode aggregation.
func newVecAccumulator(item logical.AggItem, arg *datum.Vec) vecAccumulator {
	if item.Distinct {
		return nil
	}
	if item.Arg == nil {
		if item.Fn != logical.AggCount {
			return nil
		}
		return &countVecAcc{star: true}
	}
	if arg == nil {
		return nil
	}
	if arg.Boxed() {
		// Mixed-kind columns replay the row accumulators value-wise; the
		// per-row cost only arises for data that defeated the typed fill.
		return &boxedVecAcc{item: item}
	}
	k := arg.Kind()
	switch item.Fn {
	case logical.AggCount:
		return &countVecAcc{}
	case logical.AggSum:
		switch k {
		case datum.KindInt:
			return &sumIntVecAcc{}
		case datum.KindFloat:
			return &sumFloatVecAcc{}
		case datum.KindNull:
			return &nullArgVecAcc{}
		}
	case logical.AggAvg:
		switch k {
		case datum.KindInt, datum.KindFloat:
			return &avgVecAcc{}
		case datum.KindNull:
			return &nullArgVecAcc{}
		}
	case logical.AggMin, logical.AggMax:
		min := item.Fn == logical.AggMin
		switch k {
		case datum.KindInt, datum.KindBool:
			return &minmaxIntVecAcc{min: min, kind: k}
		case datum.KindFloat:
			return &minmaxFloatVecAcc{min: min}
		case datum.KindString:
			return &minmaxStrVecAcc{min: min}
		case datum.KindNull:
			return &nullArgVecAcc{}
		}
	}
	// Combinations without a typed kernel (SUM over a string column, ...)
	// replay the row accumulators so semantics stay identical.
	return &boxedVecAcc{item: item}
}

// countVecAcc implements COUNT(*) and COUNT(col).
type countVecAcc struct {
	star bool
	n    []int64
}

func (a *countVecAcc) ensure(n int) {
	for len(a.n) < n {
		a.n = append(a.n, 0)
	}
}

func (a *countVecAcc) accumulate(v *datum.Vec, sel []int32, gids []int32) {
	if a.star {
		for k := range sel {
			a.n[gids[k]]++
		}
		return
	}
	for k, i := range sel {
		if !v.Null(int(i)) {
			a.n[gids[k]]++
		}
	}
}

func (a *countVecAcc) result(g int) datum.D { return datum.NewInt(a.n[g]) }

// sumIntVecAcc sums an INT column exactly in int64 (a typed vector cannot
// contain floats, so the row path's float promotion can never trigger).
type sumIntVecAcc struct {
	any  []bool
	sums []int64
}

func (a *sumIntVecAcc) ensure(n int) {
	for len(a.any) < n {
		a.any = append(a.any, false)
		a.sums = append(a.sums, 0)
	}
}

func (a *sumIntVecAcc) accumulate(v *datum.Vec, sel []int32, gids []int32) {
	nulls := v.Nulls()
	for k, i := range sel {
		if nulls.Get(int(i)) {
			continue
		}
		g := gids[k]
		a.any[g] = true
		a.sums[g] += v.Ints[i]
	}
}

func (a *sumIntVecAcc) result(g int) datum.D {
	if !a.any[g] {
		return datum.Null
	}
	return datum.NewInt(a.sums[g])
}

// sumFloatVecAcc sums a FLOAT column with the same compensated summation as
// the row path's sumAcc — including the initial 0.0 carried in by its
// int→float promotion — so results are bit-identical.
type sumFloatVecAcc struct {
	any  []bool
	sums []compSum
}

func (a *sumFloatVecAcc) ensure(n int) {
	for len(a.any) < n {
		a.any = append(a.any, false)
		a.sums = append(a.sums, compSum{})
	}
}

func (a *sumFloatVecAcc) accumulate(v *datum.Vec, sel []int32, gids []int32) {
	nulls := v.Nulls()
	for k, i := range sel {
		if nulls.Get(int(i)) {
			continue
		}
		g := gids[k]
		if !a.any[g] {
			a.any[g] = true
			a.sums[g].add(0)
		}
		a.sums[g].add(v.Floats[i])
	}
}

func (a *sumFloatVecAcc) result(g int) datum.D {
	if !a.any[g] {
		return datum.Null
	}
	return datum.NewFloat(a.sums[g].value())
}

// avgVecAcc mirrors avgAcc: exact order-independent sum, one division at
// result time.
type avgVecAcc struct {
	n    []int64
	sums []compSum
}

func (a *avgVecAcc) ensure(n int) {
	for len(a.n) < n {
		a.n = append(a.n, 0)
		a.sums = append(a.sums, compSum{})
	}
}

func (a *avgVecAcc) accumulate(v *datum.Vec, sel []int32, gids []int32) {
	nulls := v.Nulls()
	if v.Kind() == datum.KindInt {
		for k, i := range sel {
			if nulls.Get(int(i)) {
				continue
			}
			g := gids[k]
			a.n[g]++
			a.sums[g].add(float64(v.Ints[i]))
		}
		return
	}
	for k, i := range sel {
		if nulls.Get(int(i)) {
			continue
		}
		g := gids[k]
		a.n[g]++
		a.sums[g].add(v.Floats[i])
	}
}

func (a *avgVecAcc) result(g int) datum.D {
	if a.n[g] == 0 {
		return datum.Null
	}
	return datum.NewFloat(a.sums[g].value() / float64(a.n[g]))
}

// minmaxIntVecAcc tracks MIN/MAX over INT (or BOOL, stored 0/1) columns.
type minmaxIntVecAcc struct {
	min  bool
	kind datum.Kind
	any  []bool
	vals []int64
}

func (a *minmaxIntVecAcc) ensure(n int) {
	for len(a.any) < n {
		a.any = append(a.any, false)
		a.vals = append(a.vals, 0)
	}
}

func (a *minmaxIntVecAcc) accumulate(v *datum.Vec, sel []int32, gids []int32) {
	nulls := v.Nulls()
	for k, i := range sel {
		if nulls.Get(int(i)) {
			continue
		}
		g := gids[k]
		x := v.Ints[i]
		if !a.any[g] {
			a.any[g], a.vals[g] = true, x
			continue
		}
		if (a.min && x < a.vals[g]) || (!a.min && x > a.vals[g]) {
			a.vals[g] = x
		}
	}
}

func (a *minmaxIntVecAcc) result(g int) datum.D {
	if !a.any[g] {
		return datum.Null
	}
	if a.kind == datum.KindBool {
		return datum.NewBool(a.vals[g] != 0)
	}
	return datum.NewInt(a.vals[g])
}

// minmaxFloatVecAcc tracks MIN/MAX over FLOAT columns; strict < / >
// replacement matches datum.Compare's NaN behaviour in the row accumulator.
type minmaxFloatVecAcc struct {
	min  bool
	any  []bool
	vals []float64
}

func (a *minmaxFloatVecAcc) ensure(n int) {
	for len(a.any) < n {
		a.any = append(a.any, false)
		a.vals = append(a.vals, 0)
	}
}

func (a *minmaxFloatVecAcc) accumulate(v *datum.Vec, sel []int32, gids []int32) {
	nulls := v.Nulls()
	for k, i := range sel {
		if nulls.Get(int(i)) {
			continue
		}
		g := gids[k]
		x := v.Floats[i]
		if !a.any[g] {
			a.any[g], a.vals[g] = true, x
			continue
		}
		if (a.min && x < a.vals[g]) || (!a.min && x > a.vals[g]) {
			a.vals[g] = x
		}
	}
}

func (a *minmaxFloatVecAcc) result(g int) datum.D {
	if !a.any[g] {
		return datum.Null
	}
	return datum.NewFloat(a.vals[g])
}

// minmaxStrVecAcc tracks MIN/MAX over VARCHAR columns.
type minmaxStrVecAcc struct {
	min  bool
	any  []bool
	vals []string
}

func (a *minmaxStrVecAcc) ensure(n int) {
	for len(a.any) < n {
		a.any = append(a.any, false)
		a.vals = append(a.vals, "")
	}
}

func (a *minmaxStrVecAcc) accumulate(v *datum.Vec, sel []int32, gids []int32) {
	nulls := v.Nulls()
	if v.Dict != nil {
		// Dictionary-encoded batches read candidates through the dictionary;
		// the per-group best stays a string, so batches carrying different
		// dictionaries still fold into one answer.
		vals := v.Dict.Vals
		for k, i := range sel {
			if nulls.Get(int(i)) {
				continue
			}
			g := gids[k]
			x := vals[v.Ints[i]]
			if !a.any[g] {
				a.any[g], a.vals[g] = true, x
				continue
			}
			if (a.min && x < a.vals[g]) || (!a.min && x > a.vals[g]) {
				a.vals[g] = x
			}
		}
		return
	}
	for k, i := range sel {
		if nulls.Get(int(i)) {
			continue
		}
		g := gids[k]
		x := v.Strs[i]
		if !a.any[g] {
			a.any[g], a.vals[g] = true, x
			continue
		}
		if (a.min && x < a.vals[g]) || (!a.min && x > a.vals[g]) {
			a.vals[g] = x
		}
	}
}

func (a *minmaxStrVecAcc) result(g int) datum.D {
	if !a.any[g] {
		return datum.Null
	}
	return datum.NewString(a.vals[g])
}

// nullArgVecAcc handles aggregates whose argument column is entirely NULL:
// every SUM/AVG/MIN/MAX over it is NULL.
type nullArgVecAcc struct{ n int }

func (a *nullArgVecAcc) ensure(n int) {
	if n > a.n {
		a.n = n
	}
}
func (a *nullArgVecAcc) accumulate(*datum.Vec, []int32, []int32) {}
func (a *nullArgVecAcc) result(int) datum.D                      { return datum.Null }

// boxedVecAcc replays the row engine's accumulator per value for mixed-kind
// (boxed) argument columns — correctness fallback, not a fast path.
type boxedVecAcc struct {
	item logical.AggItem
	accs []aggAcc
}

func (a *boxedVecAcc) ensure(n int) {
	for len(a.accs) < n {
		a.accs = append(a.accs, newAgg(a.item))
	}
}

func (a *boxedVecAcc) accumulate(v *datum.Vec, sel []int32, gids []int32) {
	for k, i := range sel {
		a.accs[gids[k]].add(v.D(int(i)))
	}
}

func (a *boxedVecAcc) result(g int) datum.D { return a.accs[g].result() }
