package exec

// kernels_test.go checks every typed kernel against a row-at-a-time reference
// built from datum.Compare / the row engine's aggregate accumulators, with the
// NULL-bitmap edge cases the batch path must survive: all-NULL columns,
// alternating NULLs, empty selection vectors, and boxed (mixed-kind) vectors.

import (
	"fmt"
	"testing"

	"repro/internal/datum"
	"repro/internal/logical"
)

// mkVec builds a vector by appending datums; AppendD retypes an all-NULL
// vector on its first value and upgrades to boxed on a kind mismatch, exactly
// like storage fills do.
func mkVec(ds ...datum.D) *datum.Vec {
	v := datum.NewVec(datum.KindNull, len(ds))
	for _, d := range ds {
		v.AppendD(d)
	}
	return v
}

// mkBoxed forces the boxed representation.
func mkBoxed(ds ...datum.D) *datum.Vec {
	v := datum.NewAnyVec(len(ds))
	for _, d := range ds {
		v.AppendD(d)
	}
	return v
}

// nullPattern applies a NULL pattern to a dense value list: "dense" keeps all
// values, "allnull" blanks every row, "alternate" blanks odd rows.
func nullPattern(pattern string, ds []datum.D) []datum.D {
	out := append([]datum.D(nil), ds...)
	for i := range out {
		switch pattern {
		case "allnull":
			out[i] = datum.Null
		case "alternate":
			if i%2 == 1 {
				out[i] = datum.Null
			}
		}
	}
	return out
}

func intCol(n int) []datum.D {
	ds := make([]datum.D, n)
	for i := range ds {
		ds[i] = datum.NewInt(int64(i % 17))
	}
	return ds
}

func floatCol(n int) []datum.D {
	ds := make([]datum.D, n)
	for i := range ds {
		ds[i] = datum.NewFloat(float64(i%13) + 0.25)
	}
	return ds
}

func strCol(n int) []datum.D {
	words := []string{"ant", "bee", "cat", "dog", "elk"}
	ds := make([]datum.D, n)
	for i := range ds {
		ds[i] = datum.NewString(words[i%len(words)])
	}
	return ds
}

var allCmpOps = []logical.CmpOp{
	logical.CmpEq, logical.CmpNe, logical.CmpLt,
	logical.CmpLe, logical.CmpGt, logical.CmpGe,
}

// refSelConst is the row-engine truth for col op const: NULL operands are
// never TRUE, everything else goes through datum.Compare.
func refSelConst(v *datum.Vec, op logical.CmpOp, c datum.D, sel []int32) []int32 {
	out := []int32{}
	for _, i := range sel {
		l := v.D(int(i))
		if l.IsNull() || c.IsNull() {
			continue
		}
		if cmpMatches(op, datum.Compare(l, c)) {
			out = append(out, i)
		}
	}
	return out
}

func refSelCol(a, b *datum.Vec, op logical.CmpOp, sel []int32) []int32 {
	out := []int32{}
	for _, i := range sel {
		l, r := a.D(int(i)), b.D(int(i))
		if l.IsNull() || r.IsNull() {
			continue
		}
		if cmpMatches(op, datum.Compare(l, r)) {
			out = append(out, i)
		}
	}
	return out
}

func selEqual(t *testing.T, label string, got, want []int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d survivors, reference has %d\ngot %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: survivor %d = row %d, reference row %d", label, i, got[i], want[i])
		}
	}
}

func TestFilterKernelSelColConst(t *testing.T) {
	const n = 129 // crosses a bitmap word boundary
	sel := identSel(n)
	consts := []datum.D{
		datum.NewInt(5), datum.NewFloat(5.5), datum.NewFloat(5),
		datum.NewString("cat"), datum.NewBool(true),
	}
	cols := map[string][]datum.D{"int": intCol(n), "float": floatCol(n), "str": strCol(n)}
	for colName, dense := range cols {
		for _, pattern := range []string{"dense", "allnull", "alternate"} {
			ds := nullPattern(pattern, dense)
			for _, vec := range []*datum.Vec{mkVec(ds...), mkBoxed(ds...)} {
				repr := "typed"
				if vec.Boxed() {
					repr = "boxed"
				}
				for _, op := range allCmpOps {
					for _, c := range consts {
						label := fmt.Sprintf("%s/%s/%s op=%v const=%s", colName, pattern, repr, op, c)
						got := selColConst(vec, op, c, sel, nil)
						selEqual(t, label, got, refSelConst(vec, op, c, sel))
						// An empty selection vector stays empty.
						if out := selColConst(vec, op, c, nil, nil); len(out) != 0 {
							t.Fatalf("%s: empty sel produced %v", label, out)
						}
					}
				}
			}
		}
	}
}

func TestFilterKernelSelColCol(t *testing.T) {
	const n = 129
	sel := identSel(n)
	// Pairs cover same-kind, INT/FLOAT mixed-family-representation, and
	// cross-family (int vs string) columns.
	pairs := [][2][]datum.D{
		{intCol(n), intCol(n)},
		{floatCol(n), floatCol(n)},
		{strCol(n), strCol(n)},
		{intCol(n), floatCol(n)},
		{floatCol(n), intCol(n)},
		{intCol(n), strCol(n)},
	}
	for pi, pair := range pairs {
		for _, pa := range []string{"dense", "allnull", "alternate"} {
			for _, pb := range []string{"dense", "alternate"} {
				da, db := nullPattern(pa, pair[0]), nullPattern(pb, pair[1])
				vecs := [][2]*datum.Vec{
					{mkVec(da...), mkVec(db...)},
					{mkBoxed(da...), mkVec(db...)},
				}
				for _, vp := range vecs {
					a, b := vp[0], vp[1]
					for _, op := range allCmpOps {
						label := fmt.Sprintf("pair%d/%s-%s boxed=%v op=%v", pi, pa, pb, a.Boxed(), op)
						got := selColCol(a, b, op, sel, nil)
						selEqual(t, label, got, refSelCol(a, b, op, sel))
						if out := selColCol(a, b, op, nil, nil); len(out) != 0 {
							t.Fatalf("%s: empty sel produced %v", label, out)
						}
					}
				}
			}
		}
	}
}

// TestHashKernelMatchesBoxed: the typed hash loops must produce exactly the
// value hashCombineD produces for the reconstructed datum — that identity is
// what makes vectorized hash tables agree with row-mode spill partitioning.
func TestHashKernelMatchesBoxed(t *testing.T) {
	const n = 129
	sel := identSel(n)
	cols := [][]datum.D{intCol(n), floatCol(n), strCol(n)}
	bools := make([]datum.D, n)
	for i := range bools {
		bools[i] = datum.NewBool(i%3 == 0)
	}
	cols = append(cols, bools)
	for ci, dense := range cols {
		for _, pattern := range []string{"dense", "allnull", "alternate"} {
			ds := nullPattern(pattern, dense)
			vec := mkVec(ds...)
			got := make([]uint64, n)
			hashInit(got)
			hashCombineVec(vec, sel, got)
			for k, i := range sel {
				want := hashCombineD(fnvOffset64, vec.D(int(i)))
				if got[k] != want {
					t.Fatalf("col %d pattern %s row %d: typed hash %x, boxed %x", ci, pattern, i, got[k], want)
				}
			}
			// Empty selection vector: no accumulator is touched.
			empty := []uint64{}
			hashCombineVec(vec, nil, empty)
		}
	}
	// Values that compare equal hash equal across representations: 1 and 1.0.
	iv, fv := mkVec(datum.NewInt(1)), mkVec(datum.NewFloat(1))
	hi, hf := make([]uint64, 1), make([]uint64, 1)
	hashInit(hi)
	hashInit(hf)
	hashCombineVec(iv, identSel(1), hi)
	hashCombineVec(fv, identSel(1), hf)
	if hi[0] != hf[0] {
		t.Errorf("INT 1 and FLOAT 1.0 hash differently: %x vs %x", hi[0], hf[0])
	}
}

// aggCase is one aggregate function under kernel test.
type aggCase struct {
	name string
	item logical.AggItem
}

func aggCases() []aggCase {
	arg := &logical.Col{ID: 1}
	return []aggCase{
		{"count-star", logical.AggItem{Fn: logical.AggCount}},
		{"count", logical.AggItem{Fn: logical.AggCount, Arg: arg}},
		{"sum", logical.AggItem{Fn: logical.AggSum, Arg: arg}},
		{"avg", logical.AggItem{Fn: logical.AggAvg, Arg: arg}},
		{"min", logical.AggItem{Fn: logical.AggMin, Arg: arg}},
		{"max", logical.AggItem{Fn: logical.AggMax, Arg: arg}},
	}
}

// TestVecAccumulatorsMatchRowAccumulators drives every typed accumulator and
// the row engine's aggAcc over the same values/NULL pattern/group assignment
// and requires bit-identical results (compared by exact String form).
func TestVecAccumulatorsMatchRowAccumulators(t *testing.T) {
	const n, nGroups = 129, 7
	sel := identSel(n)
	gids := make([]int32, n)
	for i := range gids {
		gids[i] = int32(i % nGroups)
	}
	cols := map[string][]datum.D{"int": intCol(n), "float": floatCol(n), "str": strCol(n)}
	for colName, dense := range cols {
		for _, pattern := range []string{"dense", "allnull", "alternate"} {
			ds := nullPattern(pattern, dense)
			for _, vec := range []*datum.Vec{mkVec(ds...), mkBoxed(ds...)} {
				repr := "typed"
				if vec.Boxed() {
					repr = "boxed"
				}
				for _, tc := range aggCases() {
					if colName == "str" && (tc.name == "sum" || tc.name == "avg") {
						continue // SUM/AVG over strings is rejected upstream
					}
					label := fmt.Sprintf("%s/%s/%s/%s", tc.name, colName, pattern, repr)
					acc := newVecAccumulator(tc.item, vec)
					if acc == nil {
						t.Fatalf("%s: no accumulator", label)
					}
					acc.ensure(nGroups)
					acc.accumulate(vec, sel, gids)
					ref := make([]aggAcc, nGroups)
					for g := range ref {
						ref[g] = newAgg(tc.item)
					}
					for k, i := range sel {
						ref[gids[k]].add(vec.D(int(i)))
					}
					for g := 0; g < nGroups; g++ {
						got, want := acc.result(g), ref[g].result()
						if got.String() != want.String() {
							t.Fatalf("%s group %d: kernel %s, row engine %s", label, g, got, want)
						}
					}
					// Empty selection vector: every group stays at its
					// initial state (NULL, or 0 for COUNT).
					fresh := newVecAccumulator(tc.item, vec)
					fresh.ensure(nGroups)
					fresh.accumulate(vec, nil, nil)
					for g := 0; g < nGroups; g++ {
						if got, want := fresh.result(g), newAgg(tc.item).result(); got.String() != want.String() {
							t.Fatalf("%s group %d after empty sel: kernel %s, fresh row acc %s", label, g, got, want)
						}
					}
				}
			}
		}
	}
}

// TestGroupTablePresize: pre-sizing from a cardinality estimate must not
// change grouping results, and the scalar table ignores hints.
func TestGroupTablePresize(t *testing.T) {
	aggs := []logical.AggItem{{Fn: logical.AggCount}}
	plain := newGroupTable(1, aggs)
	sized := newGroupTable(1, aggs)
	sized.presize(64)
	for i := 0; i < 100; i++ {
		key := datum.Row{datum.NewInt(int64(i % 10))}
		h := hashCombineD(fnvOffset64, key[0])
		if _, err := plain.ensure(key, h); err != nil {
			t.Fatal(err)
		}
		if _, err := sized.ensure(key, h); err != nil {
			t.Fatal(err)
		}
	}
	if len(plain.order) != len(sized.order) {
		t.Fatalf("presized table found %d groups, plain %d", len(sized.order), len(plain.order))
	}
	scalar := newGroupTable(0, aggs)
	scalar.presize(1 << 30) // must not allocate for the scalar group
	if !scalar.scalar {
		t.Fatal("scalar flag lost")
	}
}

// --- kernel benchmarks ---

func benchIntVec(n int) *datum.Vec {
	v := datum.NewVec(datum.KindInt, n)
	for i := 0; i < n; i++ {
		v.AppendD(datum.NewInt(int64(i % 1024)))
	}
	return v
}

func BenchmarkFilterKernel(b *testing.B) {
	const n = 65536
	v := benchIntVec(n)
	sel := identSel(n)
	out := make([]int32, 0, n)
	c := datum.NewInt(512)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out = selColConst(v, logical.CmpLt, c, sel, out[:0])
	}
	if len(out) != n/2 {
		b.Fatalf("selectivity drifted: %d of %d", len(out), n)
	}
}

func BenchmarkHashKernel(b *testing.B) {
	const n = 65536
	v := benchIntVec(n)
	sel := identSel(n)
	h := make([]uint64, n)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hashInit(h)
		hashCombineVec(v, sel, h)
	}
}

func BenchmarkVectorizedAgg(b *testing.B) {
	const n, nGroups = 65536, 64
	v := datum.NewVec(datum.KindFloat, n)
	for i := 0; i < n; i++ {
		v.AppendD(datum.NewFloat(float64(i%997) + 0.5))
	}
	sel := identSel(n)
	gids := make([]int32, n)
	for i := range gids {
		gids[i] = int32(i % nGroups)
	}
	item := logical.AggItem{Fn: logical.AggSum, Arg: &logical.Col{ID: 1}}
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := newVecAccumulator(item, v)
		acc.ensure(nGroups)
		acc.accumulate(v, sel, gids)
	}
}
