package exec

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrMemoryBudgetExceeded is the sentinel for queries that cannot run within
// Options.MemBudget even after spilling; match it with errors.Is. The
// concrete error carries the operator and the sizes involved.
var ErrMemoryBudgetExceeded = errors.New("exec: memory budget exceeded")

// BudgetExceededError reports the operator whose working memory cannot fit
// the budget even in its degraded (spilling) mode. It unwraps to
// ErrMemoryBudgetExceeded.
type BudgetExceededError struct {
	// Op names the operator that could not fit (e.g. "hash join build
	// partition", "hash aggregation partition").
	Op string
	// NeedBytes is the reservation that failed; BudgetBytes the configured
	// cap; UsedBytes the account's usage at the time.
	NeedBytes, BudgetBytes, UsedBytes int64
}

func (e *BudgetExceededError) Error() string {
	return fmt.Sprintf("exec: memory budget exceeded: %s needs %d bytes (budget %d, in use %d)",
		e.Op, e.NeedBytes, e.BudgetBytes, e.UsedBytes)
}

// Unwrap makes errors.Is(err, ErrMemoryBudgetExceeded) hold.
func (e *BudgetExceededError) Unwrap() error { return ErrMemoryBudgetExceeded }

// MemAccount is the per-query memory account of the resource governor
// (§5.2's buffer-dependent operator costs made a runtime contract): every
// memory-intensive operator — hash-join builds, hash-aggregation tables,
// sort buffers — reserves its working memory here before using it, and
// releases it when done. One account is shared by all workers of a query, so
// all methods are atomic. A zero Budget means accounting only (no cap).
type MemAccount struct {
	used   atomic.Int64
	peak   atomic.Int64
	budget int64
	// parent, when set, is a shared pool account every reservation is also
	// charged to: per-query accounts chain to the engine-wide total so that
	// many concurrent queries cannot collectively exceed the server budget.
	parent *MemAccount
}

// NewMemAccount returns an account capped at budget bytes (<= 0 = unlimited).
func NewMemAccount(budget int64) *MemAccount {
	if budget < 0 {
		budget = 0
	}
	return &MemAccount{budget: budget}
}

// NewMemAccountWithParent returns an account capped at budget bytes whose
// reservations are additionally charged to (and bounded by) parent. A nil
// parent behaves like NewMemAccount.
func NewMemAccountWithParent(budget int64, parent *MemAccount) *MemAccount {
	a := NewMemAccount(budget)
	a.parent = parent
	return a
}

// Budget returns the configured cap in bytes (0 = unlimited).
func (a *MemAccount) Budget() int64 {
	if a == nil {
		return 0
	}
	return a.budget
}

// Used returns the bytes currently reserved.
func (a *MemAccount) Used() int64 {
	if a == nil {
		return 0
	}
	return a.used.Load()
}

// Peak returns the high-water mark of reserved bytes.
func (a *MemAccount) Peak() int64 {
	if a == nil {
		return 0
	}
	return a.peak.Load()
}

// Available returns how many more bytes fit under the budget; unlimited
// accounts (and nil) report a large positive number.
func (a *MemAccount) Available() int64 {
	if a == nil || a.budget <= 0 {
		return int64(1) << 62
	}
	av := a.budget - a.used.Load()
	if av < 0 {
		av = 0
	}
	return av
}

// Grow reserves n bytes, failing with a *BudgetExceededError (wrapping
// ErrMemoryBudgetExceeded) when the reservation would exceed the budget.
// Operators that can degrade respond to the failure by spilling; operators
// that cannot propagate it. A nil account always succeeds.
func (a *MemAccount) Grow(op string, n int64) error {
	if a == nil || n <= 0 {
		return nil
	}
	for {
		cur := a.used.Load()
		next := cur + n
		if a.budget > 0 && next > a.budget {
			return &BudgetExceededError{Op: op, NeedBytes: n, BudgetBytes: a.budget, UsedBytes: cur}
		}
		if a.used.CompareAndSwap(cur, next) {
			a.notePeak(next)
			break
		}
	}
	if a.parent != nil {
		if err := a.parent.Grow(op, n); err != nil {
			// The pool is exhausted: roll the local reservation back so the
			// failed query releases exactly what it still holds.
			a.used.Add(-n)
			return err
		}
	}
	return nil
}

// GrowFloor reserves n more bytes for an operator that has already reserved
// have bytes, granting the reservation unconditionally while have+n stays
// within floor — the operator's minimal working set. Degraded (spilling)
// operators use it so that arbitrarily small budgets still let one partition
// make progress; reservations beyond the floor must fit the budget like Grow,
// so a partition that outgrows both the floor and the budget still fails with
// the typed error.
func (a *MemAccount) GrowFloor(op string, n, have, floor int64) error {
	if a == nil || n <= 0 {
		return nil
	}
	if have+n <= floor {
		a.forceGrow(n)
		return nil
	}
	return a.Grow(op, n)
}

// forceGrow charges n bytes unconditionally, on this account and up the
// parent chain — floor grants must land in the shared pool's books too, so
// the documented overshoot (at most admitted-queries × floor) stays visible
// in Used/Peak rather than silently uncounted.
func (a *MemAccount) forceGrow(n int64) {
	if a == nil || n <= 0 {
		return
	}
	a.notePeak(a.used.Add(n))
	a.parent.forceGrow(n)
}

// Shrink releases n bytes previously reserved with Grow, on this account and
// up the parent chain.
func (a *MemAccount) Shrink(n int64) {
	if a == nil || n <= 0 {
		return
	}
	if next := a.used.Add(-n); next < 0 {
		// Release imbalance is a programming error; clamp rather than poison
		// subsequent queries on a shared account.
		a.used.Store(0)
	}
	a.parent.Shrink(n)
}

// NotePeak records a transient high-water observation of n bytes above the
// current usage without reserving it — used at materialization points
// (exchange buffers) that must complete regardless of the budget, so that
// Peak and EXPLAIN ANALYZE stay honest about them.
func (a *MemAccount) NotePeak(n int64) {
	if a == nil || n <= 0 {
		return
	}
	a.notePeak(a.used.Load() + n)
}

func (a *MemAccount) notePeak(v int64) {
	for {
		p := a.peak.Load()
		if v <= p || a.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// entryOverhead is the modeled per-row bookkeeping cost (hash-table entry,
// run index, group pointer) charged on top of the row's data bytes.
const entryOverhead = 24
