package exec

import (
	"errors"
	"testing"
)

func TestMemAccountParentCharging(t *testing.T) {
	pool := NewMemAccount(1000)
	q1 := NewMemAccountWithParent(600, pool)
	q2 := NewMemAccountWithParent(600, pool)

	if err := q1.Grow("op", 500); err != nil {
		t.Fatal(err)
	}
	if pool.Used() != 500 {
		t.Fatalf("pool.Used = %d, want 500", pool.Used())
	}
	// q2 fits its own budget but not the pool remainder: typed error, and the
	// failed local reservation is rolled back.
	err := q2.Grow("op", 600)
	if !errors.Is(err, ErrMemoryBudgetExceeded) {
		t.Fatalf("pool-exhausted Grow = %v, want ErrMemoryBudgetExceeded", err)
	}
	if q2.Used() != 0 {
		t.Fatalf("q2.Used after failed Grow = %d, want 0 (rolled back)", q2.Used())
	}
	// A smaller reservation still fits.
	if err := q2.Grow("op", 400); err != nil {
		t.Fatal(err)
	}
	if pool.Used() != 900 {
		t.Fatalf("pool.Used = %d, want 900", pool.Used())
	}
	// Shrink releases on both levels.
	q1.Shrink(500)
	if pool.Used() != 400 || q1.Used() != 0 {
		t.Fatalf("after shrink: pool=%d q1=%d", pool.Used(), q1.Used())
	}
}

func TestMemAccountFloorChargesParent(t *testing.T) {
	pool := NewMemAccount(100)
	q := NewMemAccountWithParent(100, pool)
	// Floor grants succeed even past the pool budget (bounded overshoot) but
	// must still be visible in the pool's books.
	if err := q.GrowFloor("op", 150, 0, 200); err != nil {
		t.Fatal(err)
	}
	if pool.Used() != 150 || q.Used() != 150 {
		t.Fatalf("floor grant not charged through: pool=%d q=%d", pool.Used(), q.Used())
	}
	// Beyond the floor the pool budget applies again.
	if err := q.GrowFloor("op", 100, 150, 200); !errors.Is(err, ErrMemoryBudgetExceeded) {
		t.Fatalf("beyond-floor GrowFloor = %v, want ErrMemoryBudgetExceeded", err)
	}
	q.Shrink(150)
	if pool.Used() != 0 {
		t.Fatalf("pool.Used after release = %d, want 0", pool.Used())
	}
}
