package exec

import (
	"errors"
	"sync"
	"testing"
)

func TestMemAccountGrowShrinkPeak(t *testing.T) {
	a := NewMemAccount(1000)
	if err := a.Grow("op", 600); err != nil {
		t.Fatal(err)
	}
	if err := a.Grow("op", 300); err != nil {
		t.Fatal(err)
	}
	if got := a.Used(); got != 900 {
		t.Fatalf("used = %d, want 900", got)
	}
	err := a.Grow("hash join build", 200)
	if err == nil {
		t.Fatal("overflow Grow succeeded")
	}
	if !errors.Is(err, ErrMemoryBudgetExceeded) {
		t.Fatalf("overflow error %v does not match sentinel", err)
	}
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("overflow error %T is not *BudgetExceededError", err)
	}
	if be.Op != "hash join build" || be.NeedBytes != 200 || be.BudgetBytes != 1000 || be.UsedBytes != 900 {
		t.Fatalf("error fields wrong: %+v", be)
	}
	a.Shrink(500)
	if got := a.Used(); got != 400 {
		t.Fatalf("used after shrink = %d, want 400", got)
	}
	if got := a.Peak(); got != 900 {
		t.Fatalf("peak = %d, want 900", got)
	}
	if got := a.Available(); got != 600 {
		t.Fatalf("available = %d, want 600", got)
	}
}

func TestMemAccountUnlimitedAndNil(t *testing.T) {
	var nilAcc *MemAccount
	if err := nilAcc.Grow("op", 1<<40); err != nil {
		t.Fatalf("nil account failed: %v", err)
	}
	nilAcc.Shrink(5)
	nilAcc.NotePeak(5)
	unlimited := NewMemAccount(0)
	if err := unlimited.Grow("op", 1<<40); err != nil {
		t.Fatalf("unlimited account failed: %v", err)
	}
	if unlimited.Available() < 1<<40 {
		t.Fatal("unlimited account reports small availability")
	}
}

func TestMemAccountNotePeakDoesNotReserve(t *testing.T) {
	a := NewMemAccount(100)
	a.NotePeak(1 << 20)
	if a.Used() != 0 {
		t.Fatal("NotePeak reserved memory")
	}
	if a.Peak() != 1<<20 {
		t.Fatalf("peak = %d", a.Peak())
	}
	// The budget is still fully available.
	if err := a.Grow("op", 100); err != nil {
		t.Fatalf("Grow after NotePeak failed: %v", err)
	}
}

func TestMemAccountGrowFloor(t *testing.T) {
	a := NewMemAccount(100)
	// Within the floor: granted even though it exceeds the budget.
	if err := a.GrowFloor("part", 5000, 0, 64<<10); err != nil {
		t.Fatalf("floored grow failed: %v", err)
	}
	if a.Used() != 5000 {
		t.Fatalf("used = %d", a.Used())
	}
	// Beyond the floor: back to budget enforcement.
	if err := a.GrowFloor("part", 70<<10, 5000, 64<<10); err == nil {
		t.Fatal("grow past floor and budget succeeded")
	}
	a.Shrink(5000)
}

// TestMemAccountConcurrentGrow: workers racing on one account never push
// usage past the budget, and every successful Grow is balanced by Shrink.
func TestMemAccountConcurrentGrow(t *testing.T) {
	const budget = 1 << 20
	a := NewMemAccount(budget)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if err := a.Grow("op", 1024); err == nil {
					if a.Used() > budget {
						t.Error("usage exceeded budget")
					}
					a.Shrink(1024)
				}
			}
		}()
	}
	wg.Wait()
	if a.Used() != 0 {
		t.Fatalf("unbalanced account: used = %d", a.Used())
	}
}
