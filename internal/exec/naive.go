package exec

import (
	"fmt"

	"repro/internal/datum"
	"repro/internal/logical"
)

// EvalLogical executes a logical tree directly by recursive materialization —
// the reference evaluator. outer supplies bindings for correlated columns
// (nil at the top level).
func (c *Ctx) EvalLogical(rel logical.RelExpr, outer *env) (*Result, error) {
	switch t := rel.(type) {
	case *logical.Scan:
		return c.naiveScan(t)
	case *logical.Values:
		return c.naiveValues(t, outer)
	case *logical.Select:
		in, err := c.EvalLogical(t.Input, outer)
		if err != nil {
			return nil, err
		}
		out := &Result{Cols: in.Cols}
		e := newEnv(in.Cols, outer)
		for _, r := range in.Rows {
			e.row = r
			ok, err := c.filterRow(t.Filters, e)
			if err != nil {
				return nil, err
			}
			if ok {
				out.Rows = append(out.Rows, r)
			}
		}
		c.Counters.RowsProcessed += int64(len(in.Rows))
		return out, nil
	case *logical.Project:
		in, err := c.EvalLogical(t.Input, outer)
		if err != nil {
			return nil, err
		}
		out := &Result{Cols: make([]logical.ColumnID, len(t.Items))}
		for i, it := range t.Items {
			out.Cols[i] = it.ID
		}
		e := newEnv(in.Cols, outer)
		ectx := c.evalCtx(e)
		for _, r := range in.Rows {
			e.row = r
			nr := make(datum.Row, len(t.Items))
			for i, it := range t.Items {
				v, err := logical.Eval(it.Expr, ectx)
				if err != nil {
					return nil, err
				}
				nr[i] = v
			}
			out.Rows = append(out.Rows, nr)
		}
		c.Counters.RowsProcessed += int64(len(in.Rows))
		return out, nil
	case *logical.Join:
		return c.naiveJoin(t, outer)
	case *logical.GroupBy:
		return c.naiveGroupBy(t, outer)
	case *logical.Limit:
		in, err := c.EvalLogical(t.Input, outer)
		if err != nil {
			return nil, err
		}
		n := int(t.N)
		if n > len(in.Rows) {
			n = len(in.Rows)
		}
		return &Result{Cols: in.Cols, Rows: in.Rows[:n]}, nil
	case *logical.Union:
		left, err := c.EvalLogical(t.Left, outer)
		if err != nil {
			return nil, err
		}
		right, err := c.EvalLogical(t.Right, outer)
		if err != nil {
			return nil, err
		}
		out := &Result{Cols: t.Cols}
		if err := appendAligned(out, left, t.LeftCols); err != nil {
			return nil, err
		}
		if err := appendAligned(out, right, t.RightCols); err != nil {
			return nil, err
		}
		c.Counters.RowsProcessed += int64(len(out.Rows))
		return out, nil
	}
	return nil, fmt.Errorf("exec: cannot evaluate %T", rel)
}

func (c *Ctx) naiveScan(t *logical.Scan) (*Result, error) {
	tab, ok := c.Store.Table(t.Table.Name)
	if !ok {
		return nil, fmt.Errorf("exec: no storage for table %s", t.Table.Name)
	}
	ords := c.scanOrds(t.Cols)
	out := &Result{Cols: t.Cols}
	rows, err := c.tableRows(tab)
	if err != nil {
		return nil, err
	}
	c.touchScan(tab)
	c.Counters.RowsProcessed += int64(len(rows))
	for _, r := range rows {
		out.Rows = append(out.Rows, projectRow(r, ords))
	}
	return out, nil
}

func (c *Ctx) naiveValues(t *logical.Values, outer *env) (*Result, error) {
	out := &Result{Cols: t.Cols}
	e := newEnv(nil, outer)
	ectx := c.evalCtx(e)
	for _, row := range t.Rows {
		nr := make(datum.Row, len(row))
		for i, s := range row {
			v, err := logical.Eval(s, ectx)
			if err != nil {
				return nil, err
			}
			nr[i] = v
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

func (c *Ctx) naiveJoin(t *logical.Join, outer *env) (*Result, error) {
	left, err := c.EvalLogical(t.Left, outer)
	if err != nil {
		return nil, err
	}
	right, err := c.EvalLogical(t.Right, outer)
	if err != nil {
		return nil, err
	}
	combined := append(append([]logical.ColumnID{}, left.Cols...), right.Cols...)
	e := newEnv(combined, outer)
	outCols := left.Cols
	if t.Kind.PreservesRight() {
		outCols = combined
	}
	out := &Result{Cols: outCols}
	rightWidth := len(right.Cols)
	rightMatched := make([]bool, len(right.Rows)) // for FULL OUTER

	for _, lr := range left.Rows {
		matched := false
		for ri, rr := range right.Rows {
			c.Counters.RowsProcessed++
			e.row = lr.Concat(rr)
			ok, err := c.filterRow(t.On, e)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			matched = true
			rightMatched[ri] = true
			switch t.Kind {
			case logical.InnerJoin, logical.LeftOuterJoin, logical.FullOuterJoin:
				out.Rows = append(out.Rows, lr.Concat(rr))
			case logical.SemiJoin:
				out.Rows = append(out.Rows, lr)
			case logical.AntiJoin:
				// handled below
			}
			if t.Kind == logical.SemiJoin || t.Kind == logical.AntiJoin {
				break
			}
		}
		switch t.Kind {
		case logical.LeftOuterJoin, logical.FullOuterJoin:
			if !matched {
				out.Rows = append(out.Rows, lr.Concat(nullRow(rightWidth)))
			}
		case logical.AntiJoin:
			if !matched {
				out.Rows = append(out.Rows, lr)
			}
		}
	}
	if t.Kind == logical.FullOuterJoin {
		leftWidth := len(left.Cols)
		for ri, rr := range right.Rows {
			if !rightMatched[ri] {
				out.Rows = append(out.Rows, nullRow(leftWidth).Concat(rr))
			}
		}
	}
	return out, nil
}

func nullRow(n int) datum.Row {
	r := make(datum.Row, n)
	for i := range r {
		r[i] = datum.Null
	}
	return r
}

func (c *Ctx) naiveGroupBy(t *logical.GroupBy, outer *env) (*Result, error) {
	in, err := c.EvalLogical(t.Input, outer)
	if err != nil {
		return nil, err
	}
	keyOffsets := make([]int, len(t.GroupCols))
	for i, gcol := range t.GroupCols {
		off := in.ColIndex(gcol)
		if off < 0 {
			return nil, fmt.Errorf("exec: group column @%d not in input", int(gcol))
		}
		keyOffsets[i] = off
	}
	gt := newGroupTable(len(t.GroupCols), t.Aggs)
	e := newEnv(in.Cols, outer)
	ectx := c.evalCtx(e)
	for _, r := range in.Rows {
		c.Counters.RowsProcessed++
		e.row = r
		key := make(datum.Row, len(keyOffsets))
		for i, off := range keyOffsets {
			key[i] = r[off]
		}
		args := make([]datum.D, len(t.Aggs))
		for i, a := range t.Aggs {
			if a.Arg == nil {
				args[i] = datum.NewInt(1) // COUNT(*) placeholder
				continue
			}
			v, err := logical.Eval(a.Arg, ectx)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		c.Counters.HashOps++
		if err := gt.add(key, key.Hash(seqOffsets(len(key))), args); err != nil {
			return nil, err
		}
	}
	// Layout is group cols then aggs, matching gt.rows().
	out := &Result{
		Cols: append(append([]logical.ColumnID{}, t.GroupCols...), aggIDs(t.Aggs)...),
		Rows: gt.rows(),
	}
	return out, nil
}

func aggIDs(aggs []logical.AggItem) []logical.ColumnID {
	out := make([]logical.ColumnID, len(aggs))
	for i, a := range aggs {
		out[i] = a.ID
	}
	return out
}

func seqOffsets(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// RunQuery executes a full logical query with the naive engine: evaluate the
// root, apply the required ordering, and project the presentation columns.
// SQL applies ORDER BY before LIMIT, so when the root is a Limit the sort
// happens on its input.
func (c *Ctx) RunQuery(q *logical.Query) (*Result, error) {
	root := q.Root
	var limit int64 = -1
	if lim, ok := root.(*logical.Limit); ok && len(q.OrderBy) > 0 {
		root = lim.Input
		limit = lim.N
	}
	res, err := c.EvalLogical(root, nil)
	if err != nil {
		return nil, err
	}
	if len(q.OrderBy) > 0 {
		if err := c.sortResult(res, q.OrderBy); err != nil {
			return nil, err
		}
	}
	if limit >= 0 && int64(len(res.Rows)) > limit {
		res.Rows = res.Rows[:limit]
	}
	return presentation(res, q)
}

// presentation projects a result to the query's declared output columns.
func presentation(res *Result, q *logical.Query) (*Result, error) {
	offsets := make([]int, len(q.ResultCols))
	for i, id := range q.ResultCols {
		off := res.ColIndex(id)
		if off < 0 {
			return nil, fmt.Errorf("exec: result column @%d missing from plan output", int(id))
		}
		offsets[i] = off
	}
	out := &Result{Cols: q.ResultCols}
	for _, r := range res.Rows {
		nr := make(datum.Row, len(offsets))
		for i, off := range offsets {
			nr[i] = r[off]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out, nil
}

// appendAligned appends src rows to dst, reordering columns per the aligned
// column list.
func appendAligned(dst *Result, src *Result, cols []logical.ColumnID) error {
	offs := make([]int, len(cols))
	for i, c := range cols {
		off := src.ColIndex(c)
		if off < 0 {
			return fmt.Errorf("exec: union column @%d missing from arm", int(c))
		}
		offs[i] = off
	}
	for _, r := range src.Rows {
		nr := make(datum.Row, len(offs))
		for i, off := range offs {
			nr[i] = r[off]
		}
		dst.Rows = append(dst.Rows, nr)
	}
	return nil
}
