// Morsel-driven parallel execution (§7.1 made real): the operators in this
// file run on a shared worker pool instead of being cost-modeled only. Scans
// split their input into morsels of ~1024 rows claimed by workers; hash joins
// partition the build side in parallel, build one hash table per partition and
// probe morsel-wise; hash aggregation pre-aggregates into thread-local tables
// merged at the pipeline barrier; Exchange operators are *executed* — goroutine
// fan-out over hash/round-robin partitions and fan-in that concatenates, or
// merges order-preservingly when a MergeOrdering is present.
//
// Every worker gets a private Ctx (counters, simulated buffer) merged into the
// parent at the barrier, so the engine is race-free under `go test -race`.
// Parallel operators are written to emit the same rows in the same order as
// their serial counterparts wherever the serial order is observable: scans,
// filters, projections, nested-loop and hash joins concatenate per-morsel
// outputs in morsel order, and sorts/merging exchanges reproduce the stable
// serial order exactly. Hash aggregation emits groups in a deterministic but
// engine-specific order (group output is unordered in SQL).
package exec

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/datum"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/storage"
)

// MorselSize is the number of rows a worker claims at a time. Small enough to
// balance skewed pipelines, large enough to amortize scheduling.
const MorselSize = 1024

// minParallelRows is the input size below which operators stay serial: the
// fan-out overhead would exceed the work.
const minParallelRows = 2 * MorselSize

// Pool is a fixed-size worker pool shared by all parallel operators of one or
// more executions. Workers run until Close. All goroutines of the parallel
// engine live here: operators never spawn bare goroutines (enforced by
// TestNoBareGoroutinesInExec), which is what makes the zero-leak guarantee
// checkable — after Close returns, every pool goroutine has exited.
type Pool struct {
	size int
	jobs chan func()
	wg   sync.WaitGroup

	// mu serializes submits against Close so a submit can never hit a closed
	// channel: senders hold mu across the channel send, and Close flips
	// closed before closing the channel. Late submitters get ErrPoolClosed
	// instead of a panic.
	mu     sync.Mutex
	closed bool
}

// ErrPoolClosed is returned by submissions that arrive after Close. Engines
// that share one pool across queries surface it to callers racing shutdown;
// match with errors.Is.
var ErrPoolClosed = errors.New("exec: worker pool closed")

// NewPool starts a pool with the given number of workers (<= 0 means
// GOMAXPROCS).
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	p := &Pool{size: size, jobs: make(chan func())}
	p.wg.Add(size)
	for i := 0; i < size; i++ {
		go func() {
			defer p.wg.Done()
			for f := range p.jobs {
				f()
			}
		}()
	}
	return p
}

// Size returns the number of workers.
func (p *Pool) Size() int { return p.size }

// Close releases the pool's workers and blocks until they have all exited,
// so callers can assert the goroutine count is back to baseline. In-flight
// submissions (already holding the submit lock) drain to a worker first;
// submissions arriving after Close get ErrPoolClosed. Safe to call more
// than once.
func (p *Pool) Close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// submit hands f to a worker, blocking until one accepts it. Holding mu
// across the send cannot deadlock Close: workers keep draining jobs until
// the channel closes, and the channel only closes under this same lock.
func (p *Pool) submit(f func()) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrPoolClosed
	}
	p.jobs <- f
	return nil
}

// barrier is the shared abort state of one runWorkers call: the first
// failing worker raises it, and the others stop claiming work at their next
// morsel boundary instead of finishing the pipeline nobody will read.
type barrier struct{ failed atomic.Bool }

func (b *barrier) abort()        { b.failed.Store(true) }
func (b *barrier) aborted() bool { return b != nil && b.failed.Load() }

// errBarrierAborted is returned by workers that stopped early because a
// sibling already failed. It never wins error selection and never escapes
// runWorkers.
var errBarrierAborted = errors.New("exec: barrier aborted by sibling failure")

// seqError tags a worker error with its deterministic sequence position —
// the morsel index for morsel-driven loops — so error selection at the
// barrier does not depend on goroutine scheduling.
type seqError struct {
	seq int
	err error
}

func (e *seqError) Error() string { return e.err.Error() }
func (e *seqError) Unwrap() error { return e.err }

// ensurePool returns the shared pool, creating (and owning) one on demand.
func (c *Ctx) ensurePool() *Pool {
	if c.Pool == nil {
		c.Pool = NewPool(c.Parallelism)
		c.ownPool = true
	}
	return c.Pool
}

// runWorkers runs fn(w, workerCtx) for w in [0, n) on the pool and blocks
// until all return — a pipeline barrier. Each worker gets a private child Ctx;
// the children's counters are merged into c at the barrier (on success AND on
// failure, so canceled queries still report their partial work). Worker
// panics are converted to errors so a failing morsel cannot kill the process.
//
// Error discipline: the first failure (by deterministic sequence position —
// morsel index when fn tags errors with seqError, worker index otherwise)
// wins; later failures are dropped, and workers that observed the barrier's
// abort flag and stopped early never contribute an error at all. The same
// error therefore surfaces on every run regardless of goroutine scheduling.
func (c *Ctx) runWorkers(n int, fn func(w int, wc *Ctx) error) error {
	if n < 1 {
		n = 1
	}
	pool := c.ensurePool()
	children := make([]*Ctx, n)
	errs := make([]error, n)
	bar := &barrier{}
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		w := w
		wc := c.child()
		wc.bar = bar
		children[w] = wc
		if err := pool.submit(func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[w] = fmt.Errorf("exec: worker %d panic: %v", w, r)
					bar.abort()
				}
			}()
			if err := fn(w, wc); err != nil {
				errs[w] = err
				bar.abort()
			}
		}); err != nil {
			// Pool closed under us (engine shutdown racing a query): the
			// worker never ran, so balance the barrier ourselves and let the
			// typed error surface. Earlier workers that did start see the
			// abort flag at their next morsel boundary.
			errs[w] = err
			bar.abort()
			wg.Done()
		}
	}
	wg.Wait()
	for w, wc := range children {
		c.Counters.add(wc.Counters)
		// Per-worker row counts merge into the analyzed operator at the
		// barrier — same discipline as the counters, so analyze mode stays
		// race-clean. Zero-row phases (e.g. hash builds) are not recorded.
		if c.curNode != nil && wc.Counters.RowsProcessed > 0 {
			c.curNode.AddWorkerRows(w, wc.Counters.RowsProcessed)
		}
		// Workers have no curNode, so their segment-file bytes and block
		// decodes only reached their private counters; credit the analyzed
		// node here.
		if c.curNode != nil && wc.Counters.BytesRead > 0 {
			c.curNode.BytesRead += wc.Counters.BytesRead
		}
		if c.curNode != nil {
			c.curNode.BlocksDict += wc.Counters.BlocksDict
			c.curNode.BlocksRLE += wc.Counters.BlocksRLE
			c.curNode.BlocksPlain += wc.Counters.BlocksPlain
		}
	}
	return firstError(errs)
}

// firstError picks the winning error from a barrier: the smallest sequence
// position (ties broken by worker index, which only matters for untagged
// errors), skipping abort sentinels.
func firstError(errs []error) error {
	best, bestSeq := error(nil), 0
	for w, err := range errs {
		if err == nil || errors.Is(err, errBarrierAborted) {
			continue
		}
		seq := w
		var se *seqError
		if errors.As(err, &se) {
			seq = se.seq
			err = se.err
		}
		if best == nil || seq < bestSeq {
			best, bestSeq = err, seq
		}
	}
	return best
}

func numMorsels(n int) int { return (n + MorselSize - 1) / MorselSize }

// forMorsels fans n items out as morsels over the pool. Morsels are assigned
// by static striding (worker w takes morsels w, w+W, ...), which keeps every
// run deterministic. fn receives the morsel index and its [lo, hi) bounds.
//
// Each morsel boundary is a governor checkpoint: workers stop when the query
// is canceled or a sibling worker has already failed, so errors and
// cancellations surface within about one morsel of work. Errors are tagged
// with their morsel index, making "first error wins" mean first in morsel
// order, not first in wall-clock order.
func (c *Ctx) forMorsels(n int, fn func(wc *Ctx, m, lo, hi int) error) error {
	nm := numMorsels(n)
	if nm == 0 {
		return nil
	}
	if c.curNode != nil {
		c.curNode.Batches += int64(nm)
	}
	w := c.workers()
	if w > nm {
		w = nm
	}
	return c.runWorkers(w, func(wk int, wc *Ctx) error {
		for m := wk; m < nm; m += w {
			if wc.bar.aborted() {
				return errBarrierAborted
			}
			if err := wc.canceled(); err != nil {
				return &seqError{seq: m, err: err}
			}
			lo := m * MorselSize
			hi := lo + MorselSize
			if hi > n {
				hi = n
			}
			if err := fn(wc, m, lo, hi); err != nil {
				return &seqError{seq: m, err: err}
			}
		}
		return nil
	})
}

// concatMorsels flattens per-morsel outputs in morsel order, so parallel
// operators keep the serial row order.
func concatMorsels(outs [][]datum.Row) []datum.Row {
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	if total == 0 {
		return nil
	}
	flat := make([]datum.Row, 0, total)
	for _, o := range outs {
		flat = append(flat, o...)
	}
	return flat
}

// --- parallel scans, filter, project ---

// scanRowsParallel applies projection and pushed-down filters to base rows
// morsel-wise.
func (c *Ctx) scanRowsParallel(rows []datum.Row, cols []logical.ColumnID, colOrds []int, filter []logical.Scalar) ([]datum.Row, error) {
	outs := make([][]datum.Row, numMorsels(len(rows)))
	err := c.forMorsels(len(rows), func(wc *Ctx, m, lo, hi int) error {
		if err := wc.step("scan"); err != nil {
			return err
		}
		e := newEnv(cols, nil)
		out := getRowBuf()
		for _, r := range rows[lo:hi] {
			wc.Counters.RowsProcessed++
			pr := projectRow(r, colOrds)
			if len(filter) > 0 {
				e.row = pr
				ok, err := wc.filterRow(filter, e)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			out = append(out, pr)
		}
		outs[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concatMorselsPooled(outs), nil
}

// filterRowsParallel evaluates predicates over already-projected rows.
func (c *Ctx) filterRowsParallel(in []datum.Row, layout []logical.ColumnID, preds []logical.Scalar) ([]datum.Row, error) {
	outs := make([][]datum.Row, numMorsels(len(in)))
	err := c.forMorsels(len(in), func(wc *Ctx, m, lo, hi int) error {
		e := newEnv(layout, nil)
		out := getRowBuf()
		for _, r := range in[lo:hi] {
			wc.Counters.RowsProcessed++
			e.row = r
			ok, err := wc.filterRow(preds, e)
			if err != nil {
				return err
			}
			if ok {
				out = append(out, r)
			}
		}
		outs[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concatMorselsPooled(outs), nil
}

// projectRowsParallel computes projection items over morsels.
func (c *Ctx) projectRowsParallel(in []datum.Row, layout []logical.ColumnID, items []logical.ProjectItem) ([]datum.Row, error) {
	outs := make([][]datum.Row, numMorsels(len(in)))
	err := c.forMorsels(len(in), func(wc *Ctx, m, lo, hi int) error {
		e := newEnv(layout, nil)
		ectx := wc.evalCtx(e)
		out := make([]datum.Row, 0, hi-lo)
		for _, r := range in[lo:hi] {
			wc.Counters.RowsProcessed++
			e.row = r
			nr := make(datum.Row, len(items))
			for i, it := range items {
				v, err := logical.Eval(it.Expr, ectx)
				if err != nil {
					return err
				}
				nr[i] = v
			}
			out = append(out, nr)
		}
		outs[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concatMorsels(outs), nil
}

// --- partitioned parallel hash join ---

// runHashJoinParallel executes a hash join as: parallel hash-partition of the
// build (right) side → one hash table per partition built in parallel →
// morsel-parallel probe of the partitioned table. Bucket lists preserve the
// build side's original row order, so each probe row sees its matches in
// exactly the serial order and the concatenated output is serial-identical.
func (c *Ctx) runHashJoinParallel(t *physical.HashJoin, left, right []datum.Row, lOff, rOff []int) ([]datum.Row, error) {
	nParts := c.workers()
	nmBuild := numMorsels(len(right))
	// Fan-out: each morsel partitions its build rows by hash, keeping indices
	// in row order.
	parts := make([][][]int, nmBuild)
	err := c.forMorsels(len(right), func(wc *Ctx, m, lo, hi int) error {
		loc := make([][]int, nParts)
		for i := lo; i < hi; i++ {
			rr := right[i]
			if hasNullAt(rr, rOff) {
				continue // NULL keys never match; FullOuter emits them later
			}
			wc.Counters.HashOps++
			p := int(rr.Hash(rOff) % uint64(nParts))
			loc[p] = append(loc[p], i)
		}
		parts[m] = loc
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Per-partition build: concatenating morsel lists in morsel order keeps
	// bucket entries in global build-row order (matching the serial build).
	builds := make([]map[uint64][]int, nParts)
	err = c.runWorkers(nParts, func(w int, wc *Ctx) error {
		// Pre-size for an even partition split: rehash churn on the build is
		// pure overhead, and skew only makes one map larger than its hint.
		b := make(map[uint64][]int, len(right)/nParts+1)
		for m := 0; m < nmBuild; m++ {
			if m%64 == 0 {
				if wc.bar.aborted() {
					return errBarrierAborted
				}
				if err := wc.canceled(); err != nil {
					return err
				}
			}
			for _, i := range parts[m][w] {
				h := right[i].Hash(rOff)
				b[h] = append(b[h], i)
			}
		}
		builds[w] = b
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.noteMem(int64(len(right)))

	// Morsel-parallel probe.
	leftLayout, rightLayout := t.Left.Columns(), t.Right.Columns()
	combined := append(append([]logical.ColumnID{}, leftLayout...), rightLayout...)
	rightWidth := len(rightLayout)
	nmProbe := numMorsels(len(left))
	outs := make([][]datum.Row, nmProbe)
	needMatched := t.Kind == logical.FullOuterJoin
	var matchedMu sync.Mutex
	var workerMatched [][]bool
	err = c.forMorsels(len(left), func(wc *Ctx, m, lo, hi int) error {
		e := newEnv(combined, nil)
		var out []datum.Row
		var matched []bool
		for _, lr := range left[lo:hi] {
			lrMatched := false
			if !hasNullAt(lr, lOff) {
				wc.Counters.HashOps++
				h := lr.Hash(lOff)
				bucket := builds[int(h%uint64(nParts))][h]
				for _, ri := range bucket {
					rr := right[ri]
					if !datum.EqualOn(lr, rr, lOff, rOff) {
						continue
					}
					wc.Counters.RowsProcessed++
					e.row = lr.Concat(rr)
					ok, err := wc.filterRow(t.ExtraOn, e)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
					lrMatched = true
					if needMatched {
						if matched == nil {
							matched = make([]bool, len(right))
						}
						matched[ri] = true
					}
					switch t.Kind {
					case logical.InnerJoin, logical.LeftOuterJoin, logical.FullOuterJoin:
						out = append(out, lr.Concat(rr))
					case logical.SemiJoin:
						out = append(out, lr)
					}
					if t.Kind == logical.SemiJoin || t.Kind == logical.AntiJoin {
						break
					}
				}
			}
			switch t.Kind {
			case logical.LeftOuterJoin, logical.FullOuterJoin:
				if !lrMatched {
					out = append(out, lr.Concat(nullRow(rightWidth)))
				}
			case logical.AntiJoin:
				if !lrMatched {
					out = append(out, lr)
				}
			}
		}
		outs[m] = out
		if matched != nil {
			matchedMu.Lock()
			workerMatched = append(workerMatched, matched)
			matchedMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := concatMorsels(outs)
	if needMatched {
		rightMatched := make([]bool, len(right))
		for _, wm := range workerMatched {
			for i, b := range wm {
				if b {
					rightMatched[i] = true
				}
			}
		}
		leftWidth := len(leftLayout)
		for ri, rr := range right {
			if !rightMatched[ri] {
				out = append(out, nullRow(leftWidth).Concat(rr))
			}
		}
	}
	return out, nil
}

// --- parallel nested-loop and index-nested-loop probes ---

// runNLJoinParallel splits the outer input into morsels probed against the
// fully materialized inner. Per-morsel concatenation keeps the serial order.
func (c *Ctx) runNLJoinParallel(t *physical.NLJoin, left, right *Result) ([]datum.Row, error) {
	combined := append(append([]logical.ColumnID{}, left.Cols...), right.Cols...)
	rightWidth := len(right.Cols)
	nm := numMorsels(len(left.Rows))
	outs := make([][]datum.Row, nm)
	needMatched := t.Kind == logical.FullOuterJoin
	var matchedMu sync.Mutex
	var workerMatched [][]bool
	err := c.forMorsels(len(left.Rows), func(wc *Ctx, m, lo, hi int) error {
		e := newEnv(combined, nil)
		var out []datum.Row
		var matchedR []bool
		if needMatched {
			matchedR = make([]bool, len(right.Rows))
		}
		for _, lr := range left.Rows[lo:hi] {
			matched := false
			for ri, rr := range right.Rows {
				wc.Counters.RowsProcessed++
				e.row = lr.Concat(rr)
				ok, err := wc.filterRow(t.On, e)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
				matched = true
				if needMatched {
					matchedR[ri] = true
				}
				switch t.Kind {
				case logical.InnerJoin, logical.LeftOuterJoin, logical.FullOuterJoin:
					out = append(out, lr.Concat(rr))
				case logical.SemiJoin:
					out = append(out, lr)
				}
				if t.Kind == logical.SemiJoin || t.Kind == logical.AntiJoin {
					break
				}
			}
			switch t.Kind {
			case logical.LeftOuterJoin, logical.FullOuterJoin:
				if !matched {
					out = append(out, lr.Concat(nullRow(rightWidth)))
				}
			case logical.AntiJoin:
				if !matched {
					out = append(out, lr)
				}
			}
		}
		outs[m] = out
		if matchedR != nil {
			matchedMu.Lock()
			workerMatched = append(workerMatched, matchedR)
			matchedMu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := concatMorsels(outs)
	if needMatched {
		rightMatched := make([]bool, len(right.Rows))
		for _, wm := range workerMatched {
			for i, b := range wm {
				if b {
					rightMatched[i] = true
				}
			}
		}
		leftWidth := len(left.Cols)
		for ri, rr := range right.Rows {
			if !rightMatched[ri] {
				out = append(out, nullRow(leftWidth).Concat(rr))
			}
		}
	}
	return out, nil
}

// runINLJoinParallel probes the inner table's index with morsels of outer
// rows — the parallel index scan of §7.1 (the index is shared storage, so
// probes stay local to each worker).
func (c *Ctx) runINLJoinParallel(t *physical.INLJoin, left []datum.Row, tab *storage.Table, ix *storage.IndexData, keyOffsets []int) ([]datum.Row, error) {
	leftLayout := t.Left.Columns()
	combined := append(append([]logical.ColumnID{}, leftLayout...), t.Cols...)
	innerWidth := len(t.Cols)
	outs := make([][]datum.Row, numMorsels(len(left)))
	err := c.forMorsels(len(left), func(wc *Ctx, m, lo, hi int) error {
		e := newEnv(combined, nil)
		var out []datum.Row
		for _, lr := range left[lo:hi] {
			key := make(datum.Row, len(keyOffsets))
			nullKey := false
			for i, off := range keyOffsets {
				key[i] = lr[off]
				if key[i].IsNull() {
					nullKey = true
				}
			}
			matched := false
			if !nullKey {
				wc.Counters.IndexSeeks++
				ids := ix.SeekEq(key)
				for _, id := range ids {
					wc.touchRow(tab, id)
				}
				for _, id := range ids {
					wc.Counters.RowsProcessed++
					ir, err := wc.rowAt(tab, id)
					if err != nil {
						return err
					}
					rr := projectRow(ir, t.ColOrds)
					e.row = lr.Concat(rr)
					ok, err := wc.filterRow(t.ExtraOn, e)
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
					matched = true
					switch t.Kind {
					case logical.InnerJoin, logical.LeftOuterJoin:
						out = append(out, lr.Concat(rr))
					case logical.SemiJoin:
						out = append(out, lr)
					}
					if t.Kind == logical.SemiJoin || t.Kind == logical.AntiJoin {
						break
					}
				}
			}
			switch t.Kind {
			case logical.LeftOuterJoin:
				if !matched {
					out = append(out, lr.Concat(nullRow(innerWidth)))
				}
			case logical.AntiJoin:
				if !matched {
					out = append(out, lr)
				}
			}
		}
		outs[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concatMorsels(outs), nil
}

// fetchRowsParallel projects and filters fetched row ids morsel-wise (the
// fetch phase of a parallel index scan).
func (c *Ctx) fetchRowsParallel(tab *storage.Table, ids []int, cols []logical.ColumnID, colOrds []int, filter []logical.Scalar) ([]datum.Row, error) {
	outs := make([][]datum.Row, numMorsels(len(ids)))
	err := c.forMorsels(len(ids), func(wc *Ctx, m, lo, hi int) error {
		if err := wc.step("scan"); err != nil {
			return err
		}
		e := newEnv(cols, nil)
		out := getRowBuf()
		for _, id := range ids[lo:hi] {
			wc.Counters.RowsProcessed++
			r, err := wc.rowAt(tab, id)
			if err != nil {
				return err
			}
			pr := projectRow(r, colOrds)
			if len(filter) > 0 {
				e.row = pr
				ok, err := wc.filterRow(filter, e)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			out = append(out, pr)
		}
		outs[m] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return concatMorselsPooled(outs), nil
}

// --- parallel hash aggregation ---

// runGroupByParallel pre-aggregates morsels into thread-local group tables and
// merges them at the barrier — the classic two-phase parallel aggregation.
func (c *Ctx) runGroupByParallel(in []datum.Row, layout []logical.ColumnID, keyOff []int, groupCols []logical.ColumnID, aggs []logical.AggItem) ([]datum.Row, error) {
	nm := numMorsels(len(in))
	nW := c.workers()
	if nW > nm {
		nW = nm
	}
	tables := make([]*groupTable, nW)
	err := c.runWorkers(nW, func(w int, wc *Ctx) error {
		gt := newGroupTable(len(groupCols), aggs)
		// All thread-local tables draw on the query's shared account; the
		// caller degrades to spillGroupBy when any of them trips the budget.
		gt.mem = c.Mem
		gt.memOp = "hash aggregation"
		tables[w] = gt
		e := newEnv(layout, nil)
		ectx := wc.evalCtx(e)
		for m := w; m < nm; m += nW {
			if wc.bar.aborted() {
				return errBarrierAborted
			}
			if err := wc.canceled(); err != nil {
				return &seqError{seq: m, err: err}
			}
			lo := m * MorselSize
			hi := lo + MorselSize
			if hi > len(in) {
				hi = len(in)
			}
			for _, r := range in[lo:hi] {
				wc.Counters.RowsProcessed++
				wc.Counters.HashOps++
				e.row = r
				key := make(datum.Row, len(keyOff))
				for i, off := range keyOff {
					key[i] = r[off]
				}
				args := make([]datum.D, len(aggs))
				for i, a := range aggs {
					if a.Arg == nil {
						args[i] = datum.NewInt(1)
						continue
					}
					v, err := logical.Eval(a.Arg, ectx)
					if err != nil {
						return err
					}
					args[i] = v
				}
				if err := gt.add(key, key.Hash(seqOffsets(len(key))), args); err != nil {
					return &seqError{seq: m, err: err}
				}
			}
		}
		return nil
	})
	release := func() {
		for _, gt := range tables {
			if gt != nil {
				gt.release()
			}
		}
	}
	defer release()
	if err != nil {
		return nil, err
	}
	// Peak memory: the thread-local tables coexist until the merge completes.
	var partial int64
	var partialBytes int64
	for _, gt := range tables {
		if gt != nil {
			partial += int64(len(gt.order))
			partialBytes += gt.charged
		}
	}
	final := newGroupTable(len(groupCols), aggs)
	final.mem = c.Mem
	final.memOp = "hash aggregation"
	defer final.release()
	for _, gt := range tables {
		if gt != nil {
			if err := final.mergeFrom(gt); err != nil {
				return nil, err
			}
		}
	}
	c.noteMem(partial + int64(len(final.order)))
	c.noteMemBytes(partialBytes + final.charged)
	return final.rows(), nil
}

// --- parallel sort ---

// sortRowsParallel sorts rows by spec with contiguous chunk sorts on workers
// followed by a k-way merge. Ties break on the original row position, so the
// result is exactly the serial stable sort.
func (c *Ctx) sortRowsParallel(rows []datum.Row, spec []datum.SortSpec) []datum.Row {
	nW := c.workers()
	chunk := (len(rows) + nW - 1) / nW
	runs := make([][]int, 0, nW)
	for lo := 0; lo < len(rows); lo += chunk {
		hi := lo + chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		run := make([]int, hi-lo)
		for i := range run {
			run[i] = lo + i
		}
		runs = append(runs, run)
	}
	// Chunk sorts: index sorts with the original position as tiebreaker make
	// each run a contiguous slice of the stable global order.
	_ = c.runWorkers(len(runs), func(w int, wc *Ctx) error {
		run := runs[w]
		sort.Slice(run, func(a, b int) bool {
			wc.Counters.Comparisons++
			cmp := datum.CompareRows(rows[run[a]], rows[run[b]], spec)
			if cmp != 0 {
				return cmp < 0
			}
			return run[a] < run[b]
		})
		return nil
	})
	return mergeRuns(rows, runs, spec, &c.Counters)
}

// mergeRuns k-way merges index runs that are each sorted by (spec, index),
// breaking key ties on the original index — an order-preserving fan-in.
func mergeRuns(rows []datum.Row, runs [][]int, spec []datum.SortSpec, counters *Counters) []datum.Row {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]datum.Row, 0, total)
	heads := make([]int, len(runs))
	for {
		best := -1
		for r := range runs {
			if heads[r] >= len(runs[r]) {
				continue
			}
			if best < 0 {
				best = r
				continue
			}
			counters.Comparisons++
			ri, bi := runs[r][heads[r]], runs[best][heads[best]]
			cmp := datum.CompareRows(rows[ri], rows[bi], spec)
			if cmp < 0 || (cmp == 0 && ri < bi) {
				best = r
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, rows[runs[best][heads[best]]])
		heads[best]++
	}
}

// --- executed Exchange ---

// runExchange executes an Exchange operator for real: goroutine fan-out that
// hash- or round-robin-partitions the input stream Degree ways, and a fan-in
// that concatenates the partitions — or, when MergeOrdering is present,
// merges them order-preservingly so the input's sort order survives the
// repartitioning. On the serial path the exchange degenerates to a pass-through
// that only counts exchanged rows, as before.
func (c *Ctx) runExchange(t *physical.Exchange) ([]datum.Row, error) {
	in, err := c.runPlan(t.Input)
	if err != nil {
		return nil, err
	}
	c.Counters.ExchangedRows += int64(len(in))
	// The exchange buffer is a materialization point: it must complete
	// regardless of the budget, so its footprint is observed, not reserved.
	c.Mem.NotePeak(rowSetBytes(in))
	if !c.parallel() || len(in) < minParallelRows {
		return in, nil
	}
	degree := t.Degree
	if degree < 2 {
		degree = c.workers()
	}
	layout := t.Input.Columns()

	// Fan-out: partition indices morsel-wise (stable within each morsel).
	nm := numMorsels(len(in))
	parts := make([][][]int, nm)
	if len(t.PartitionCols) > 0 {
		pOff, err := offsetsOf(layout, t.PartitionCols)
		if err != nil {
			return nil, err
		}
		err = c.forMorsels(len(in), func(wc *Ctx, m, lo, hi int) error {
			loc := make([][]int, degree)
			for i := lo; i < hi; i++ {
				wc.Counters.HashOps++
				p := int(in[i].Hash(pOff) % uint64(degree))
				loc[p] = append(loc[p], i)
			}
			parts[m] = loc
			return nil
		})
		if err != nil {
			return nil, err
		}
	} else {
		// Round-robin by morsel.
		err = c.forMorsels(len(in), func(wc *Ctx, m, lo, hi int) error {
			loc := make([][]int, degree)
			ids := make([]int, hi-lo)
			for i := range ids {
				ids[i] = lo + i
			}
			loc[m%degree] = ids
			parts[m] = loc
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	// Fan-in: one consumer per partition gathers its stream in morsel order,
	// which preserves the producer's row order within each partition.
	streams := make([][]int, degree)
	nCons := min(c.workers(), degree)
	err = c.runWorkers(nCons, func(w int, wc *Ctx) error {
		for p := w; p < degree; p += nCons {
			var ids []int
			for m := 0; m < nm; m++ {
				ids = append(ids, parts[m][p]...)
			}
			streams[p] = ids
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if c.curNode != nil {
		// Per-partition row counts are the exchange's skew signal: a hash
		// partitioning that lands most rows in one stream shows up here.
		for p := range streams {
			c.curNode.AddWorkerRows(p, int64(len(streams[p])))
		}
		c.curNode.NoteMem(int64(len(in)))
	}

	if len(t.MergeOrdering) > 0 {
		// Order-preserving merge: each partition is a subsequence of the
		// (sorted) input, so merging by (key, original index) reproduces the
		// input order exactly.
		spec := make([]datum.SortSpec, len(t.MergeOrdering))
		for i, o := range t.MergeOrdering {
			off := (&Result{Cols: layout}).ColIndex(o.Col)
			if off < 0 {
				return nil, fmt.Errorf("exec: exchange merge column @%d not in layout", int(o.Col))
			}
			spec[i] = datum.SortSpec{Col: off, Desc: o.Desc}
		}
		return mergeRuns(in, streams, spec, &c.Counters), nil
	}
	out := make([]datum.Row, 0, len(in))
	for _, ids := range streams {
		for _, i := range ids {
			out = append(out, in[i])
		}
	}
	return out, nil
}
