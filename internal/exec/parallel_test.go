package exec

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/storage"
)

// parFixture holds two tables big enough to cross the minParallelRows
// threshold, with small key domains (duplicates) and ~10% NULL keys so every
// join/group edge case is exercised.
type parFixture struct {
	store        *storage.Store
	md           *logical.Metadata
	r, s         *catalog.Table
	rCols, sCols []logical.ColumnID
	rScan, sScan *physical.TableScan
}

func newParFixture(t testing.TB, nR, nS int, seed int64) *parFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	r := &catalog.Table{Name: "R", Cols: []catalog.Column{
		{Name: "k", Kind: datum.KindInt},
		{Name: "v", Kind: datum.KindInt},
		{Name: "f", Kind: datum.KindFloat},
	}}
	s := &catalog.Table{Name: "S", Cols: []catalog.Column{
		{Name: "k", Kind: datum.KindInt},
		{Name: "w", Kind: datum.KindInt},
	}}
	store := storage.NewStore()
	rt, err := store.CreateTable(r)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.CreateTable(s)
	if err != nil {
		t.Fatal(err)
	}
	mkKey := func() datum.D {
		if rng.Intn(10) == 0 {
			return datum.Null
		}
		return datum.NewInt(int64(rng.Intn(40)))
	}
	rRows := make([]datum.Row, nR)
	for i := range rRows {
		rRows[i] = datum.Row{mkKey(), datum.NewInt(int64(i)), datum.NewFloat(float64(rng.Intn(1000)) / 4)}
	}
	if err := rt.InsertBatch(rRows); err != nil {
		t.Fatal(err)
	}
	sRows := make([]datum.Row, nS)
	for i := range sRows {
		sRows[i] = datum.Row{mkKey(), datum.NewInt(int64(i + 1_000_000))}
	}
	if err := st.InsertBatch(sRows); err != nil {
		t.Fatal(err)
	}
	md := logical.NewMetadata()
	rCols := md.AddTable(r, "r")
	sCols := md.AddTable(s, "s")
	return &parFixture{
		store: store, md: md, r: r, s: s, rCols: rCols, sCols: sCols,
		rScan: &physical.TableScan{Table: r, Binding: "r", Cols: rCols, ColOrds: []int{0, 1, 2}},
		sScan: &physical.TableScan{Table: s, Binding: "s", Cols: sCols, ColOrds: []int{0, 1}},
	}
}

// ctx returns an execution context at the given degree; parallel contexts own
// a pool released at test cleanup.
func (f *parFixture) ctx(t testing.TB, degree int) *Ctx {
	c := NewCtx(f.store, f.md)
	if degree > 1 {
		c.Parallelism = degree
		t.Cleanup(c.Close)
	}
	return c
}

// runBoth executes plan serially and at the given degrees, requiring the
// parallel runs to reproduce the serial rows — exactly when exact is set,
// as a multiset otherwise.
func runBoth(t *testing.T, f *parFixture, plan physical.Plan, exact bool, degrees ...int) (*Ctx, *Result) {
	t.Helper()
	serialCtx := f.ctx(t, 1)
	want, err := Run(plan, serialCtx)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for _, d := range degrees {
		pc := f.ctx(t, d)
		got, err := Run(plan, pc)
		if err != nil {
			t.Fatalf("degree %d: %v", d, err)
		}
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("degree %d: %d rows, serial %d", d, len(got.Rows), len(want.Rows))
		}
		if exact {
			for i := range want.Rows {
				if want.Rows[i].String() != got.Rows[i].String() {
					t.Fatalf("degree %d: row %d = %s, serial %s", d, i, got.Rows[i], want.Rows[i])
				}
			}
		} else if strings.Join(rowStrings(got), ";") != strings.Join(rowStrings(want), ";") {
			t.Fatalf("degree %d: multiset differs from serial", d)
		}
	}
	return serialCtx, want
}

func TestParallelScanFilterProjectMatchesSerial(t *testing.T) {
	f := newParFixture(t, 6000, 0, 1)
	k, v := f.rCols[0], f.rCols[1]
	plan := &physical.Project{
		Input: &physical.Filter{
			Input: f.rScan,
			Preds: []logical.Scalar{&logical.Cmp{Op: logical.CmpLt, L: &logical.Col{ID: k}, R: &logical.Const{Val: datum.NewInt(30)}}},
		},
		Items: []logical.ProjectItem{
			{ID: v, Expr: &logical.Col{ID: v}},
			{ID: k, Expr: &logical.Arith{Op: logical.ArithAdd, L: &logical.Col{ID: k}, R: &logical.Const{Val: datum.NewInt(7)}}},
		},
	}
	sc, _ := runBoth(t, f, plan, true, 2, 4, 8)

	// Counter parity: the same rows are processed regardless of degree.
	pc := f.ctx(t, 4)
	if _, err := Run(plan, pc); err != nil {
		t.Fatal(err)
	}
	if pc.Counters.RowsProcessed != sc.Counters.RowsProcessed {
		t.Errorf("RowsProcessed: parallel %d, serial %d", pc.Counters.RowsProcessed, sc.Counters.RowsProcessed)
	}
}

// Filters pushed into the scan node itself take the scanRowsParallel path.
func TestParallelTableScanWithPushedFilter(t *testing.T) {
	f := newParFixture(t, 5000, 0, 2)
	v := f.rCols[1]
	scan := &physical.TableScan{
		Table: f.r, Binding: "r", Cols: f.rCols, ColOrds: []int{0, 1, 2},
		Filter: []logical.Scalar{&logical.Cmp{Op: logical.CmpGe, L: &logical.Col{ID: v}, R: &logical.Const{Val: datum.NewInt(1000)}}},
	}
	runBoth(t, f, scan, true, 4)
}

func TestParallelHashJoinMatchesSerial(t *testing.T) {
	f := newParFixture(t, 4000, 2500, 3)
	rk, sk := f.rCols[0], f.sCols[0]
	for _, kind := range []logical.JoinKind{
		logical.InnerJoin, logical.LeftOuterJoin, logical.FullOuterJoin,
		logical.SemiJoin, logical.AntiJoin,
	} {
		plan := &physical.HashJoin{
			Kind: kind, Left: f.rScan, Right: f.sScan,
			LeftKeys: []logical.ColumnID{rk}, RightKeys: []logical.ColumnID{sk},
		}
		sc, want := runBoth(t, f, plan, true, 2, 8)
		if len(want.Rows) == 0 {
			t.Fatalf("kind %v: degenerate fixture, no rows", kind)
		}
		pc := f.ctx(t, 4)
		if _, err := Run(plan, pc); err != nil {
			t.Fatal(err)
		}
		if pc.Counters.HashOps != sc.Counters.HashOps {
			t.Errorf("kind %v HashOps: parallel %d, serial %d", kind, pc.Counters.HashOps, sc.Counters.HashOps)
		}
	}
}

func TestParallelHashJoinExtraPredicate(t *testing.T) {
	f := newParFixture(t, 4000, 2500, 4)
	rk, rv, sk, sw := f.rCols[0], f.rCols[1], f.sCols[0], f.sCols[1]
	plan := &physical.HashJoin{
		Kind: logical.InnerJoin, Left: f.rScan, Right: f.sScan,
		LeftKeys: []logical.ColumnID{rk}, RightKeys: []logical.ColumnID{sk},
		ExtraOn: []logical.Scalar{&logical.Cmp{
			Op: logical.CmpLt,
			L:  &logical.Arith{Op: logical.ArithAdd, L: &logical.Col{ID: rv}, R: &logical.Const{Val: datum.NewInt(1_000_000)}},
			R:  &logical.Col{ID: sw},
		}},
	}
	runBoth(t, f, plan, true, 4)
}

func TestParallelNLJoinMatchesSerial(t *testing.T) {
	f := newParFixture(t, 3000, 40, 5)
	rk, sk := f.rCols[0], f.sCols[0]
	on := []logical.Scalar{&logical.Cmp{Op: logical.CmpEq, L: &logical.Col{ID: rk}, R: &logical.Col{ID: sk}}}
	for _, kind := range []logical.JoinKind{logical.InnerJoin, logical.FullOuterJoin, logical.AntiJoin} {
		plan := &physical.NLJoin{Kind: kind, Left: f.rScan, Right: f.sScan, On: on}
		runBoth(t, f, plan, true, 4)
	}
}

func TestParallelHashAggMatchesSerial(t *testing.T) {
	f := newParFixture(t, 6000, 0, 6)
	k, v, fl := f.rCols[0], f.rCols[1], f.rCols[2]
	aggs := []logical.AggItem{
		{ID: 100, Fn: logical.AggCount},
		{ID: 101, Fn: logical.AggSum, Arg: &logical.Col{ID: v}},
		{ID: 102, Fn: logical.AggAvg, Arg: &logical.Col{ID: fl}},
		{ID: 103, Fn: logical.AggMin, Arg: &logical.Col{ID: v}},
		{ID: 104, Fn: logical.AggMax, Arg: &logical.Col{ID: fl}},
		{ID: 105, Fn: logical.AggCount, Arg: &logical.Col{ID: fl}, Distinct: true},
	}
	plan := &physical.HashGroupBy{Input: f.rScan, GroupCols: []logical.ColumnID{k}, Aggs: aggs}
	// Group emission order is engine-specific: compare as multisets.
	sc, want := runBoth(t, f, plan, false, 2, 4, 8)
	if len(want.Rows) != 41 { // 40 key values + NULL group
		t.Fatalf("groups = %d, want 41", len(want.Rows))
	}
	pc := f.ctx(t, 4)
	if _, err := Run(plan, pc); err != nil {
		t.Fatal(err)
	}
	if pc.Counters.HashOps != sc.Counters.HashOps || pc.Counters.RowsProcessed != sc.Counters.RowsProcessed {
		t.Errorf("counters: parallel %+v, serial %+v", pc.Counters, sc.Counters)
	}
}

// Scalar aggregation (no group columns) must produce its single row at any
// degree, including the empty-input global group.
func TestParallelScalarAggMatchesSerial(t *testing.T) {
	f := newParFixture(t, 4000, 0, 7)
	v := f.rCols[1]
	aggs := []logical.AggItem{
		{ID: 100, Fn: logical.AggCount},
		{ID: 101, Fn: logical.AggSum, Arg: &logical.Col{ID: v}},
	}
	plan := &physical.HashGroupBy{Input: f.rScan, Aggs: aggs}
	runBoth(t, f, plan, true, 4)
}

func TestParallelSortIsStable(t *testing.T) {
	// Key domain of 40 over 6000 rows → long runs of ties; stability demands
	// ties keep their input (insertion) order, which v encodes.
	f := newParFixture(t, 6000, 0, 8)
	k := f.rCols[0]
	plan := &physical.Sort{Input: f.rScan, By: logical.Ordering{{Col: k, Desc: true}}}
	runBoth(t, f, plan, true, 2, 4, 8)
}

func TestParallelExchangeHashPartition(t *testing.T) {
	f := newParFixture(t, 6000, 0, 9)
	k := f.rCols[0]
	// Hash exchange without a merge ordering: row multiset is preserved, and
	// within each partition the input order is (verified via the serial run
	// being a pass-through).
	ex := &physical.Exchange{Input: f.rScan, Degree: 4, PartitionCols: []logical.ColumnID{k}}
	sc, _ := runBoth(t, f, ex, false, 2, 4)
	if sc.Counters.ExchangedRows != 6000 {
		t.Errorf("ExchangedRows = %d, want 6000", sc.Counters.ExchangedRows)
	}
}

func TestParallelExchangeMergePreservesOrder(t *testing.T) {
	f := newParFixture(t, 6000, 0, 10)
	k, v := f.rCols[0], f.rCols[1]
	// Sorted input through a hash exchange with MergeOrdering: the output
	// must be the exact sorted order, i.e. the exchange is order-preserving.
	ex := &physical.Exchange{
		Input:         &physical.Sort{Input: f.rScan, By: logical.Ordering{{Col: k}}},
		Degree:        4,
		PartitionCols: []logical.ColumnID{v},
		MergeOrdering: logical.Ordering{{Col: k}},
	}
	runBoth(t, f, ex, true, 2, 4, 8)
}

func TestParallelExchangeRoundRobin(t *testing.T) {
	f := newParFixture(t, 5000, 0, 11)
	ex := &physical.Exchange{Input: f.rScan, Degree: 3}
	runBoth(t, f, ex, false, 4)
}

func TestExchangeMergeColumnMissing(t *testing.T) {
	f := newParFixture(t, 5000, 0, 12)
	ex := &physical.Exchange{
		Input:         f.rScan,
		Degree:        4,
		MergeOrdering: logical.Ordering{{Col: 9999}},
	}
	pc := f.ctx(t, 4)
	if _, err := Run(ex, pc); err == nil || !strings.Contains(err.Error(), "merge column") {
		t.Fatalf("want merge-column error, got %v", err)
	}
}

// A predicate that panics in a worker must surface as an error, not kill the
// process.
func TestParallelWorkerPanicBecomesError(t *testing.T) {
	f := newParFixture(t, 5000, 0, 13)
	k := f.rCols[0]
	boom := &logical.UDPRef{
		Name: "boom", Args: []logical.Scalar{&logical.Col{ID: k}},
		PerTupleCost: 1, Selectivity: 0.5,
		EvalFn: func([]datum.D) bool { panic("kaboom") },
	}
	plan := &physical.Filter{Input: f.rScan, Preds: []logical.Scalar{boom}}
	pc := f.ctx(t, 4)
	if _, err := Run(plan, pc); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("want panic-derived error, got %v", err)
	}
}

func TestSortResultMissingColumnError(t *testing.T) {
	f := newParFixture(t, 10, 0, 14)
	c := f.ctx(t, 1)
	res := &Result{Cols: f.rCols, Rows: []datum.Row{{datum.NewInt(1), datum.NewInt(2), datum.NewFloat(3)}}}
	err := c.sortResult(res, logical.Ordering{{Col: 9999}})
	if err == nil || !strings.Contains(err.Error(), "ORDER BY column") {
		t.Fatalf("want missing-column error, got %v", err)
	}
}

// The pool is shared across queries of one context and survives reuse.
func TestPoolReuseAcrossRuns(t *testing.T) {
	f := newParFixture(t, 4000, 2500, 15)
	pc := f.ctx(t, 4)
	rk, sk := f.rCols[0], f.sCols[0]
	plan := &physical.HashJoin{
		Kind: logical.InnerJoin, Left: f.rScan, Right: f.sScan,
		LeftKeys: []logical.ColumnID{rk}, RightKeys: []logical.ColumnID{sk},
	}
	var n int
	for i := 0; i < 3; i++ {
		res, err := Run(plan, pc)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			n = len(res.Rows)
		} else if len(res.Rows) != n {
			t.Fatalf("run %d: %d rows, first run %d", i, len(res.Rows), n)
		}
	}
}
