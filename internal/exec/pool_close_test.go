package exec

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// Close racing active submitters must drain cleanly: jobs already past the
// submit lock run to completion, and late submitters get the typed error
// instead of a send-on-closed-channel panic.
func TestPoolCloseDrainsInFlightSubmits(t *testing.T) {
	p := NewPool(2)
	const jobs = 64
	var ran, rejected int
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			err := p.submit(func() {
				time.Sleep(100 * time.Microsecond)
				mu.Lock()
				ran++
				mu.Unlock()
			})
			if err != nil {
				if !errors.Is(err, ErrPoolClosed) {
					t.Errorf("submit error = %v, want ErrPoolClosed", err)
				}
				mu.Lock()
				rejected++
				mu.Unlock()
			}
		}()
	}
	close(start)
	time.Sleep(2 * time.Millisecond) // let some submits land before Close
	p.Close()
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if ran+rejected != jobs {
		t.Fatalf("accounted %d+%d jobs, want %d", ran, rejected, jobs)
	}
	// After Close returns, every submission must be rejected.
	if err := p.submit(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("post-Close submit error = %v, want ErrPoolClosed", err)
	}
}

// runWorkers on a closed pool must return the typed error without hanging on
// its barrier (the wg.Done compensation path).
func TestRunWorkersOnClosedPool(t *testing.T) {
	p := NewPool(2)
	p.Close()
	c := NewCtx(nil, nil)
	c.Pool = p
	c.Parallelism = 2
	done := make(chan error, 1)
	go func() {
		done <- c.runWorkers(4, func(w int, wc *Ctx) error { return nil })
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("runWorkers error = %v, want ErrPoolClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("runWorkers hung on a closed pool")
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // must not panic or hang
}
