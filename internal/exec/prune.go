// Zone-map segment elimination for scans over disk-backed tables. The scan's
// pushed-down conjuncts are compiled to storage.ZonePred (base-table column
// ordinal + constant), confronted with each sealed segment's min/max
// zone maps and NULL counts, and every segment the predicate cannot match is
// skipped without touching disk. Segments the predicate provably matches on
// every row additionally skip filter evaluation. The same compiled form backs
// the optimizer's pruned-page cost (storage.Table.PrunedPageCount), so plan
// choice and execution reason from one mechanism.
package exec

import (
	"math"
	"sort"

	"repro/internal/datum"
	"repro/internal/logical"
	"repro/internal/storage"
)

// zoneOpOf maps a comparison operator to its zone-map form (LIKE has none).
func zoneOpOf(op logical.CmpOp) (storage.ZoneOp, bool) {
	switch op {
	case logical.CmpEq:
		return storage.ZoneEq, true
	case logical.CmpNe:
		return storage.ZoneNe, true
	case logical.CmpLt:
		return storage.ZoneLt, true
	case logical.CmpLe:
		return storage.ZoneLe, true
	case logical.CmpGt:
		return storage.ZoneGt, true
	case logical.CmpGe:
		return storage.ZoneGe, true
	}
	return 0, false
}

// zoneConstOK rejects constants zone maps cannot reason about: NaN floats
// compare as equal to everything under datum.Compare's float ordering, so a
// min/max range says nothing about them.
func zoneConstOK(d datum.D) bool {
	return !(d.Kind() == datum.KindFloat && math.IsNaN(d.Float()))
}

// compileZonePreds translates pushed-down conjuncts into zone predicates over
// base-table ordinals (via ordOf). Conjuncts it cannot express are simply
// dropped — pruning on the rest stays sound because dropping a conjunct only
// widens what a segment may contain. full reports that every conjunct was
// compiled, which is what permits skipping filter evaluation on full-match
// segments.
func compileZonePreds(filters []logical.Scalar, ordOf func(logical.ColumnID) (int, bool)) (preds []storage.ZonePred, full bool) {
	full = true
	for _, p := range filters {
		switch t := p.(type) {
		case *logical.Cmp:
			var colRef *logical.Col
			var cst *logical.Const
			op := t.Op
			if lc, ok := t.L.(*logical.Col); ok {
				if rk, ok := t.R.(*logical.Const); ok {
					colRef, cst = lc, rk
				}
			} else if rc, ok := t.R.(*logical.Col); ok {
				if lk, ok := t.L.(*logical.Const); ok {
					colRef, cst, op = rc, lk, t.Op.Commute()
				}
			}
			if colRef == nil || cst == nil {
				full = false
				continue
			}
			ord, ok := ordOf(colRef.ID)
			if !ok {
				full = false
				continue
			}
			if cst.Val.IsNull() {
				// col <op> NULL is never TRUE: the whole scan is empty.
				preds = append(preds, storage.ZonePred{Ord: ord, Form: storage.ZoneNever})
				continue
			}
			zop, ok := zoneOpOf(op)
			if !ok || !zoneConstOK(cst.Val) {
				full = false
				continue
			}
			preds = append(preds, storage.ZonePred{Ord: ord, Form: storage.ZoneCmp, Op: zop, C: cst.Val})
		case *logical.IsNull:
			col, ok := t.E.(*logical.Col)
			if !ok {
				full = false
				continue
			}
			ord, ok := ordOf(col.ID)
			if !ok {
				full = false
				continue
			}
			form := storage.ZoneIsNull
			if t.Negated {
				form = storage.ZoneIsNotNull
			}
			preds = append(preds, storage.ZonePred{Ord: ord, Form: form})
		case *logical.InList:
			if t.Negated {
				full = false
				continue
			}
			col, ok := t.E.(*logical.Col)
			if !ok {
				full = false
				continue
			}
			ord, ok := ordOf(col.ID)
			if !ok {
				full = false
				continue
			}
			list := make([]datum.D, 0, len(t.List))
			usable := true
			for _, e := range t.List {
				k, ok := e.(*logical.Const)
				if !ok || k.Val.IsNull() || !zoneConstOK(k.Val) {
					usable = false
					break
				}
				list = append(list, k.Val)
			}
			if !usable {
				full = false
				continue
			}
			if len(list) == 0 {
				preds = append(preds, storage.ZonePred{Ord: ord, Form: storage.ZoneNever})
				continue
			}
			preds = append(preds, storage.ZonePred{Ord: ord, Form: storage.ZoneIn, List: list})
		default:
			full = false
		}
	}
	return preds, full
}

// CompileScanZonePreds is compileZonePreds for callers outside the executor
// (the optimizer's pruned-page costing): ords maps each scan output column to
// its base-table ordinal.
func CompileScanZonePreds(filters []logical.Scalar, cols []logical.ColumnID, ords []int) []storage.ZonePred {
	preds, _ := compileZonePreds(filters, func(id logical.ColumnID) (int, bool) {
		for i, cid := range cols {
			if cid == id {
				return ords[i], true
			}
		}
		return 0, false
	})
	return preds
}

// scanPruner is the per-scan elimination state: the table's sealed-segment
// layout and each segment's disposition under the scan predicate.
type scanPruner struct {
	layout []storage.SegmentInfo
	disp   []storage.ZoneDisp
	// full: every filter conjunct compiled to a zone predicate, so ZoneAll
	// segments may skip filter evaluation entirely.
	full   bool
	sealed int // rows covered by sealed segments
	total  int // total row count (sealed + unsealed tail)
}

// buildPruner compiles the scan's filter against the table's segment zone
// maps. Returns nil for tables without sealed segments (in-memory mode),
// which keeps every scan operator on its historical path. Ctx.NoPrune leaves
// the predicates uncompiled, so every segment reads as ZoneSome.
func (c *Ctx) buildPruner(tab *storage.Table, filter []logical.Scalar, cols []logical.ColumnID, colOrds []int) *scanPruner {
	layout := tab.SegmentLayout()
	if len(layout) == 0 {
		return nil
	}
	var preds []storage.ZonePred
	var full bool
	if !c.NoPrune {
		preds, full = compileZonePreds(filter, func(id logical.ColumnID) (int, bool) {
			for i, cid := range cols {
				if cid == id {
					return colOrds[i], true
				}
			}
			return 0, false
		})
	}
	last := layout[len(layout)-1]
	return &scanPruner{
		layout: layout,
		disp:   tab.SegmentDispositions(preds),
		full:   full,
		sealed: last.StartRow + last.Rows,
		total:  tab.RowCount(),
	}
}

// segIndex returns the index of the sealed segment containing row.
func (p *scanPruner) segIndex(row int) int {
	return sort.Search(len(p.layout), func(i int) bool {
		return p.layout[i].StartRow+p.layout[i].Rows > row
	})
}

// dispRange folds the dispositions of all segments overlapping rows [lo, hi)
// (plus ZoneSome for any unsealed-tail overlap — the tail has no zone maps):
// uniform ZoneNone/ZoneAll survive, any mix degrades to ZoneSome.
func (p *scanPruner) dispRange(lo, hi int) storage.ZoneDisp {
	const unset = storage.ZoneDisp(255)
	disp := unset
	fold := func(d storage.ZoneDisp) bool {
		switch {
		case disp == unset:
			disp = d
		case disp != d:
			disp = storage.ZoneSome
			return false
		}
		return true
	}
	pos := lo
	for pos < hi && pos < p.sealed {
		i := p.segIndex(pos)
		if !fold(p.disp[i]) {
			return storage.ZoneSome
		}
		pos = p.layout[i].StartRow + p.layout[i].Rows
	}
	if pos < hi && !fold(storage.ZoneSome) {
		return storage.ZoneSome
	}
	if disp == unset {
		return storage.ZoneSome
	}
	return disp
}

// scanRegion is one contiguous row range a pruned scan must read.
type scanRegion struct {
	lo, hi int
	disp   storage.ZoneDisp
}

// liveRegions returns the row ranges that survive elimination, in row order:
// every non-ZoneNone segment plus the unsealed tail.
func (p *scanPruner) liveRegions() []scanRegion {
	out := make([]scanRegion, 0, len(p.layout)+1)
	for i, seg := range p.layout {
		if p.disp[i] == storage.ZoneNone {
			continue
		}
		out = append(out, scanRegion{lo: seg.StartRow, hi: seg.StartRow + seg.Rows, disp: p.disp[i]})
	}
	if p.total > p.sealed {
		out = append(out, scanRegion{lo: p.sealed, hi: p.total, disp: storage.ZoneSome})
	}
	return out
}

// notePruner records the elimination outcome once per scan operator: segment
// read/pruned counts, and buffer-pool page touches for the segments (and
// tail) the scan will read — eliminated segments charge nothing, which is how
// pruning shows up in PagesRead. Called on the coordinating goroutine only.
func (c *Ctx) notePruner(tab *storage.Table, p *scanPruner) {
	var read, pruned int64
	page := 0
	name := tab.Def.Name
	for i, seg := range p.layout {
		pages := int((seg.Bytes + storage.PageSize - 1) / storage.PageSize)
		if pages < 1 {
			pages = 1
		}
		if p.disp[i] == storage.ZoneNone {
			pruned++
			page += pages
			continue
		}
		read++
		for k := 0; k < pages; k++ {
			c.touchPage(name, page+k)
		}
		page += pages
	}
	if p.total > p.sealed {
		rpp := rowsPerPage(tab)
		tailPages := (p.total - p.sealed + rpp - 1) / rpp
		for k := 0; k < tailPages; k++ {
			c.touchPage(name, page+k)
		}
	}
	c.noteSegments(read, pruned)
}
