// Spill-to-disk graceful degradation (the resource governor's answer to §5.2's
// buffer-dependent operator costs): when an operator's working memory cannot
// be reserved from the query's MemAccount, it degrades instead of failing —
//
//   - Sort runs an external merge sort: budget-sized runs are sorted in
//     memory, spilled to temp files, and k-way merged back.
//   - Hash join runs a grace hash join: the build side is hash-partitioned to
//     temp files and each partition is built and probed on its own, so only
//     one partition's hash table is ever in memory.
//   - Hash aggregation partitions its input rows to temp files by group-key
//     hash and aggregates one partition at a time.
//
// All three degraded paths emit exactly the rows, in exactly the order, of
// their in-memory counterparts (runs and probes carry original row indexes,
// and partition outputs are merged back by them), so a query under a 64 KiB
// budget is bit-identical to the same query with no budget at all. Only when
// even a single partition cannot fit — e.g. a hash join whose build keys are
// all equal — does the query fail, with ErrMemoryBudgetExceeded.
//
// Spill files live in Ctx.TempDir (default os.TempDir) and every create,
// write and read passes through the fault injector under the operation names
// "spill.create", "spill.write" and "spill.read".
package exec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/datum"
	"repro/internal/logical"
	"repro/internal/physical"
)

// minSpillChunk is the minimum working set a degraded operator uses even when
// the budget is smaller — the governor's minimal memory grant; without it a
// one-byte budget would mean one-row spill files.
const minSpillChunk = 64 << 10

// spillFloor is the per-partition reservation granted unconditionally to
// degraded operators (see MemAccount.GrowFloor). It is twice the fanout
// target so ordinary hash skew — partitions moderately above the average —
// still completes; only pathological skew (e.g. one key holding most rows)
// exceeds it and fails with the typed budget error.
const spillFloor = 2 * minSpillChunk

// maxSpillFanout bounds how many partitions/runs one spill pass produces.
const maxSpillFanout = 64

// spillFanout picks the partition count that makes one partition's working
// set about half the available budget.
func spillFanout(totalBytes, avail int64) int {
	target := avail / 2
	if target < minSpillChunk {
		target = minSpillChunk
	}
	p := int((totalBytes + target - 1) / target)
	if p < 2 {
		p = 2
	}
	if p > maxSpillFanout {
		p = maxSpillFanout
	}
	return p
}

// rowSetBytes is the modeled working-memory footprint of holding rows in an
// operator-owned structure (hash table, sort buffer): data bytes plus a
// per-entry bookkeeping overhead.
func rowSetBytes(rows []datum.Row) int64 {
	var n int64
	for _, r := range rows {
		n += int64(r.Size()) + entryOverhead
	}
	return n
}

// --- spill files ---

// spillWriter writes (tag, row) records to a temp file through the fault
// injector. Tags carry original row indexes so readers can restore the
// in-memory row order.
type spillWriter struct {
	c     *Ctx
	f     *os.File
	w     *bufio.Writer
	bytes int64
	rows  int64
}

func (c *Ctx) newSpillWriter() (*spillWriter, error) {
	if err := c.step("spill.create"); err != nil {
		return nil, err
	}
	f, err := os.CreateTemp(c.TempDir, "qopt-spill-*")
	if err != nil {
		return nil, fmt.Errorf("exec: create spill file: %w", err)
	}
	return &spillWriter{c: c, f: f, w: bufio.NewWriterSize(f, 16<<10)}, nil
}

// discard removes the spill file (writer or reader side may call it once).
func (sw *spillWriter) discard() {
	if sw == nil || sw.f == nil {
		return
	}
	name := sw.f.Name()
	sw.f.Close()
	os.Remove(name)
	sw.f = nil
}

func (sw *spillWriter) writeRow(tag int64, r datum.Row) error {
	if err := sw.c.step("spill.write"); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], tag)
	if _, err := sw.w.Write(buf[:n]); err != nil {
		return err
	}
	sw.bytes += int64(n)
	n2, err := encodeRow(sw.w, r)
	if err != nil {
		return err
	}
	sw.bytes += n2
	sw.rows++
	return nil
}

// finish flushes the file and records the spill against the counters and the
// current operator's metrics. A writer with zero rows still counts: the
// partition existed, it was just empty.
func (sw *spillWriter) finish() error {
	if err := sw.w.Flush(); err != nil {
		return fmt.Errorf("exec: flush spill file: %w", err)
	}
	sw.c.noteSpill(1, sw.bytes)
	return nil
}

// reader rewinds the file and returns a record reader over it.
func (sw *spillWriter) reader() (*spillReader, error) {
	if _, err := sw.f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return &spillReader{c: sw.c, r: bufio.NewReaderSize(sw.f, 16<<10), left: sw.rows}, nil
}

// spillReader streams (tag, row) records back.
type spillReader struct {
	c    *Ctx
	r    *bufio.Reader
	left int64
}

// next returns the next record, or ok=false at end of stream.
func (sr *spillReader) next() (int64, datum.Row, bool, error) {
	if sr.left == 0 {
		return 0, nil, false, nil
	}
	if err := sr.c.step("spill.read"); err != nil {
		return 0, nil, false, err
	}
	tag, err := binary.ReadVarint(sr.r)
	if err != nil {
		return 0, nil, false, fmt.Errorf("exec: read spill record: %w", err)
	}
	row, err := decodeRow(sr.r)
	if err != nil {
		return 0, nil, false, err
	}
	sr.left--
	return tag, row, true, nil
}

// encodeRow writes a row as: uvarint column count, then one kind byte and
// payload per datum. Floats are stored as raw IEEE bits, so a spilled row
// decodes bit-identically.
func encodeRow(w *bufio.Writer, r datum.Row) (int64, error) {
	var buf [binary.MaxVarintLen64]byte
	var written int64
	put := func(b []byte) error {
		_, err := w.Write(b)
		written += int64(len(b))
		return err
	}
	if err := put(buf[:binary.PutUvarint(buf[:], uint64(len(r)))]); err != nil {
		return written, err
	}
	for _, d := range r {
		if err := w.WriteByte(byte(d.Kind())); err != nil {
			return written, err
		}
		written++
		switch d.Kind() {
		case datum.KindNull:
		case datum.KindBool:
			b := byte(0)
			if d.Bool() {
				b = 1
			}
			if err := w.WriteByte(b); err != nil {
				return written, err
			}
			written++
		case datum.KindInt:
			if err := put(buf[:binary.PutVarint(buf[:], d.Int())]); err != nil {
				return written, err
			}
		case datum.KindFloat:
			binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(d.Float()))
			if err := put(buf[:8]); err != nil {
				return written, err
			}
		case datum.KindString:
			s := d.Str()
			if err := put(buf[:binary.PutUvarint(buf[:], uint64(len(s)))]); err != nil {
				return written, err
			}
			if _, err := w.WriteString(s); err != nil {
				return written, err
			}
			written += int64(len(s))
		default:
			return written, fmt.Errorf("exec: cannot spill datum kind %v", d.Kind())
		}
	}
	return written, nil
}

func decodeRow(r *bufio.Reader) (datum.Row, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	row := make(datum.Row, n)
	for i := range row {
		kb, err := r.ReadByte()
		if err != nil {
			return nil, err
		}
		switch datum.Kind(kb) {
		case datum.KindNull:
			row[i] = datum.Null
		case datum.KindBool:
			b, err := r.ReadByte()
			if err != nil {
				return nil, err
			}
			row[i] = datum.NewBool(b != 0)
		case datum.KindInt:
			v, err := binary.ReadVarint(r)
			if err != nil {
				return nil, err
			}
			row[i] = datum.NewInt(v)
		case datum.KindFloat:
			var buf [8]byte
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return nil, err
			}
			row[i] = datum.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
		case datum.KindString:
			ln, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			buf := make([]byte, ln)
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, err
			}
			row[i] = datum.NewString(string(buf))
		default:
			return nil, fmt.Errorf("exec: corrupt spill record: kind %d", kb)
		}
	}
	return row, nil
}

// discardAll removes a set of spill files.
func discardAll(ws []*spillWriter) {
	for _, w := range ws {
		w.discard()
	}
}

// --- external merge sort ---

// externalSortRows sorts rows by spec using budget-sized sorted runs spilled
// to temp files and an order-preserving k-way merge. Ties break on the
// original row index, so the output is exactly the serial stable sort.
func (c *Ctx) externalSortRows(rows []datum.Row, spec []datum.SortSpec) ([]datum.Row, error) {
	runBytes := c.Mem.Available() / 2
	if runBytes < minSpillChunk {
		runBytes = minSpillChunk
	}
	var maxRun int64

	var writers []*spillWriter
	defer func() { discardAll(writers) }()

	// Cut the input into runs of about runBytes, sort each by (spec, index),
	// and spill it in sorted order.
	lo := 0
	for lo < len(rows) {
		if err := c.canceled(); err != nil {
			return nil, err
		}
		hi := lo
		var sz int64
		for hi < len(rows) && (sz < runBytes || hi == lo) {
			sz += int64(rows[hi].Size()) + entryOverhead
			hi++
		}
		if sz > maxRun {
			maxRun = sz
		}
		run := make([]int, hi-lo)
		for i := range run {
			run[i] = lo + i
		}
		sort.Slice(run, func(a, b int) bool {
			c.Counters.Comparisons++
			cmp := datum.CompareRows(rows[run[a]], rows[run[b]], spec)
			if cmp != 0 {
				return cmp < 0
			}
			return run[a] < run[b]
		})
		w, err := c.newSpillWriter()
		if err != nil {
			return nil, err
		}
		writers = append(writers, w)
		for _, idx := range run {
			if err := w.writeRow(int64(idx), rows[idx]); err != nil {
				return nil, err
			}
		}
		if err := w.finish(); err != nil {
			return nil, err
		}
		lo = hi
	}
	// The sort's real working set is one run buffer (plus run heads during
	// the merge); report it without reserving — runs always complete.
	c.Mem.NotePeak(maxRun)
	c.noteMemBytes(maxRun)

	// K-way merge by (key, original index): each run is sorted by it, so a
	// linear tournament over the run heads reproduces the stable order.
	type head struct {
		tag int64
		row datum.Row
		sr  *spillReader
	}
	heads := make([]*head, 0, len(writers))
	for _, w := range writers {
		sr, err := w.reader()
		if err != nil {
			return nil, err
		}
		tag, row, ok, err := sr.next()
		if err != nil {
			return nil, err
		}
		if ok {
			heads = append(heads, &head{tag: tag, row: row, sr: sr})
		}
	}
	out := make([]datum.Row, 0, len(rows))
	for len(heads) > 0 {
		best := 0
		for i := 1; i < len(heads); i++ {
			c.Counters.Comparisons++
			cmp := datum.CompareRows(heads[i].row, heads[best].row, spec)
			if cmp < 0 || (cmp == 0 && heads[i].tag < heads[best].tag) {
				best = i
			}
		}
		h := heads[best]
		out = append(out, h.row)
		if len(out)%MorselSize == 0 {
			if err := c.canceled(); err != nil {
				return nil, err
			}
		}
		tag, row, ok, err := h.sr.next()
		if err != nil {
			return nil, err
		}
		if ok {
			h.tag, h.row = tag, row
		} else {
			heads = append(heads[:best], heads[best+1:]...)
		}
	}
	return out, nil
}

// --- grace hash join ---

// graceHashJoin executes a hash join whose build side does not fit the
// budget: build rows are hash-partitioned to temp files, then each partition
// is loaded, built and probed on its own, and the per-partition outputs are
// merged back into the exact serial emission order using the original left
// row indexes (all matches of one probe row live in one partition, because
// equal keys hash equally).
func (c *Ctx) graceHashJoin(t *physical.HashJoin, left, right []datum.Row, lOff, rOff []int) ([]datum.Row, error) {
	leftLayout, rightLayout := t.Left.Columns(), t.Right.Columns()
	combined := append(append([]logical.ColumnID{}, leftLayout...), rightLayout...)
	leftWidth, rightWidth := len(leftLayout), len(rightLayout)
	needMatched := t.Kind == logical.FullOuterJoin

	nParts := spillFanout(rowSetBytes(right), c.Mem.Available())

	// Partition the build side to disk. NULL build keys never match; they go
	// straight to the full-outer leftovers.
	writers := make([]*spillWriter, nParts)
	defer func() { discardAll(writers) }()
	for p := range writers {
		w, err := c.newSpillWriter()
		if err != nil {
			return nil, err
		}
		writers[p] = w
	}
	type tagged struct {
		tag int64
		row datum.Row
	}
	var leftovers []tagged // unmatched right rows for FULL OUTER, by tag
	for i, rr := range right {
		if hasNullAt(rr, rOff) {
			if needMatched {
				leftovers = append(leftovers, tagged{int64(i), rr})
			}
			continue
		}
		c.Counters.HashOps++
		p := int(rr.Hash(rOff) % uint64(nParts))
		if err := writers[p].writeRow(int64(i), rr); err != nil {
			return nil, err
		}
	}
	for _, w := range writers {
		if err := w.finish(); err != nil {
			return nil, err
		}
	}

	// Assign each probe row to its partition (-1 for NULL keys, handled
	// directly in the merge).
	leftPart := make([]int32, len(left))
	for i, lr := range left {
		if hasNullAt(lr, lOff) {
			leftPart[i] = -1
			continue
		}
		leftPart[i] = int32(lr.Hash(lOff) % uint64(nParts))
	}

	// Build and probe one partition at a time. outs[p] holds that
	// partition's emissions keyed by ascending left index (or, for rows a
	// full outer join emits from the build side, recorded into leftovers).
	type emission struct {
		li   int64
		rows []datum.Row
	}
	outs := make([][]emission, nParts)
	e := newEnv(combined, nil)
	var outTotal int
	for p := 0; p < nParts; p++ {
		if err := c.canceled(); err != nil {
			return nil, err
		}
		sr, err := writers[p].reader()
		if err != nil {
			return nil, err
		}
		var tags []int64
		var rows []datum.Row
		var partBytes int64
		for {
			tag, row, ok, err := sr.next()
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			tags = append(tags, tag)
			rows = append(rows, row)
			partBytes += int64(row.Size()) + entryOverhead
		}
		if err := c.Mem.GrowFloor("hash join build partition", partBytes, 0, spillFloor); err != nil {
			return nil, err
		}
		c.noteMemBytes(partBytes)
		build := make(map[uint64][]int, len(rows))
		for i, rr := range rows {
			c.Counters.HashOps++
			h := rr.Hash(rOff)
			build[h] = append(build[h], i)
		}
		matched := make([]bool, len(rows))
		var out []emission
		for li, lr := range left {
			if int(leftPart[li]) != p {
				continue
			}
			if li%MorselSize == 0 {
				if err := c.canceled(); err != nil {
					c.Mem.Shrink(partBytes)
					return nil, err
				}
			}
			c.Counters.HashOps++
			h := lr.Hash(lOff)
			var emitted []datum.Row
			lrMatched := false
			for _, ri := range build[h] {
				rr := rows[ri]
				if !datum.EqualOn(lr, rr, lOff, rOff) {
					continue
				}
				c.Counters.RowsProcessed++
				e.row = lr.Concat(rr)
				ok, err := c.filterRow(t.ExtraOn, e)
				if err != nil {
					c.Mem.Shrink(partBytes)
					return nil, err
				}
				if !ok {
					continue
				}
				lrMatched = true
				matched[ri] = true
				switch t.Kind {
				case logical.InnerJoin, logical.LeftOuterJoin, logical.FullOuterJoin:
					emitted = append(emitted, lr.Concat(rr))
				case logical.SemiJoin:
					emitted = append(emitted, lr)
				}
				if t.Kind == logical.SemiJoin || t.Kind == logical.AntiJoin {
					break
				}
			}
			switch t.Kind {
			case logical.LeftOuterJoin, logical.FullOuterJoin:
				if !lrMatched {
					emitted = append(emitted, lr.Concat(nullRow(rightWidth)))
				}
			case logical.AntiJoin:
				if !lrMatched {
					emitted = append(emitted, lr)
				}
			}
			if len(emitted) > 0 {
				out = append(out, emission{li: int64(li), rows: emitted})
				outTotal += len(emitted)
			}
		}
		if needMatched {
			for ri := range rows {
				if !matched[ri] {
					leftovers = append(leftovers, tagged{tags[ri], rows[ri]})
				}
			}
		}
		outs[p] = out
		c.Mem.Shrink(partBytes)
	}

	// Merge partition outputs back into the serial emission order: left rows
	// in ascending index, each contributing its partition's emissions; NULL-
	// key left rows are handled inline exactly as the in-memory join would.
	cursors := make([]int, nParts)
	out := make([]datum.Row, 0, outTotal)
	for li := range left {
		p := leftPart[li]
		if p < 0 {
			switch t.Kind {
			case logical.LeftOuterJoin, logical.FullOuterJoin:
				out = append(out, left[li].Concat(nullRow(rightWidth)))
			case logical.AntiJoin:
				out = append(out, left[li])
			}
			continue
		}
		if cur := cursors[p]; cur < len(outs[p]) && outs[p][cur].li == int64(li) {
			out = append(out, outs[p][cur].rows...)
			cursors[p]++
		}
	}
	if needMatched {
		// The serial join appends unmatched build rows in build order.
		sort.Slice(leftovers, func(a, b int) bool { return leftovers[a].tag < leftovers[b].tag })
		for _, lv := range leftovers {
			out = append(out, nullRow(leftWidth).Concat(lv.row))
		}
	}
	return out, nil
}

// --- spilling hash aggregation ---

// spillGroupBy executes hash aggregation whose group table does not fit the
// budget: input rows are hash-partitioned to temp files by group key (tagged
// with their original index), each partition is aggregated on its own, and
// the final groups are ordered by the index of their first input row — which
// is exactly the in-memory table's first-seen emission order.
func (c *Ctx) spillGroupBy(in []datum.Row, layout []logical.ColumnID, keyOff []int, groupCols []logical.ColumnID, aggs []logical.AggItem) ([]datum.Row, error) {
	nParts := spillFanout(rowSetBytes(in), c.Mem.Available())
	writers := make([]*spillWriter, nParts)
	defer func() { discardAll(writers) }()
	for p := range writers {
		w, err := c.newSpillWriter()
		if err != nil {
			return nil, err
		}
		writers[p] = w
	}
	key := make(datum.Row, len(keyOff))
	for i, r := range in {
		c.Counters.HashOps++
		for j, off := range keyOff {
			key[j] = r[off]
		}
		p := int(key.Hash(seqOffsets(len(key))) % uint64(nParts))
		if err := writers[p].writeRow(int64(i), r); err != nil {
			return nil, err
		}
	}
	for _, w := range writers {
		if err := w.finish(); err != nil {
			return nil, err
		}
	}

	type taggedGroup struct {
		tag int64
		row datum.Row
	}
	var groups []taggedGroup
	e := newEnv(layout, nil)
	ectx := c.evalCtx(e)
	for p := 0; p < nParts; p++ {
		if err := c.canceled(); err != nil {
			return nil, err
		}
		sr, err := writers[p].reader()
		if err != nil {
			return nil, err
		}
		gt := newGroupTable(len(groupCols), aggs)
		gt.mem = c.Mem
		gt.memOp = "hash aggregation partition"
		gt.floor = spillFloor
		var tags []int64
		for {
			tag, r, ok, err := sr.next()
			if err != nil {
				gt.release()
				return nil, err
			}
			if !ok {
				break
			}
			c.Counters.RowsProcessed++
			e.row = r
			k := make(datum.Row, len(keyOff))
			for j, off := range keyOff {
				k[j] = r[off]
			}
			args := make([]datum.D, len(aggs))
			for j, a := range aggs {
				if a.Arg == nil {
					args[j] = datum.NewInt(1)
					continue
				}
				v, err := logical.Eval(a.Arg, ectx)
				if err != nil {
					gt.release()
					return nil, err
				}
				args[j] = v
			}
			before := len(gt.order)
			if err := gt.add(k, k.Hash(seqOffsets(len(k))), args); err != nil {
				gt.release()
				return nil, err
			}
			if len(gt.order) > before {
				// Rows arrive in ascending tag order, so the creation tag is
				// the group's global first occurrence.
				tags = append(tags, tag)
			}
		}
		for i, row := range gt.rows() {
			groups = append(groups, taggedGroup{tags[i], row})
		}
		c.noteMemBytes(gt.charged)
		gt.release()
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].tag < groups[b].tag })
	out := make([]datum.Row, len(groups))
	for i, g := range groups {
		out[i] = g.row
	}
	c.noteMem(int64(len(out)))
	return out, nil
}

// isBudgetErr reports whether an operator failed on a memory reservation —
// the signal to degrade to its spilling implementation.
func isBudgetErr(err error) bool { return errors.Is(err, ErrMemoryBudgetExceeded) }
