package exec

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/datum"
	"repro/internal/logical"
	"repro/internal/physical"
)

// spillCtx is a minimal context for driving the spill machinery directly.
func spillCtx(t *testing.T, budget int64) *Ctx {
	t.Helper()
	c := NewCtx(nil, nil)
	c.Mem = NewMemAccount(budget)
	c.TempDir = t.TempDir()
	return c
}

func randSpillRows(rng *rand.Rand, n int) []datum.Row {
	strs := []string{"ant", "bee", "cat", "dog", "elk", ""}
	rows := make([]datum.Row, n)
	for i := range rows {
		var key datum.D
		switch rng.Intn(10) {
		case 0:
			key = datum.Null
		case 1:
			key = datum.NewString(strs[rng.Intn(len(strs))])
		default:
			key = datum.NewInt(int64(rng.Intn(50)))
		}
		rows[i] = datum.Row{
			key,
			datum.NewInt(int64(i)),
			datum.NewFloat(float64(rng.Intn(100000))/7 - 5000),
		}
	}
	return rows
}

func TestSpillFileRoundTripIsBitExact(t *testing.T) {
	c := spillCtx(t, 0)
	rows := []datum.Row{
		{datum.Null, datum.NewBool(true), datum.NewBool(false)},
		{datum.NewInt(-1 << 62), datum.NewInt(0), datum.NewInt(1<<62 - 1)},
		{datum.NewFloat(0.1), datum.NewFloat(-0.0), datum.NewFloat(math.MaxFloat64)},
		{datum.NewFloat(math.SmallestNonzeroFloat64), datum.NewString(""), datum.NewString("héllo\x00world")},
		{},
	}
	w, err := c.newSpillWriter()
	if err != nil {
		t.Fatal(err)
	}
	defer w.discard()
	for i, r := range rows {
		if err := w.writeRow(int64(i*7), r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.finish(); err != nil {
		t.Fatal(err)
	}
	sr, err := w.reader()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range rows {
		tag, got, ok, err := sr.next()
		if err != nil || !ok {
			t.Fatalf("record %d: ok=%v err=%v", i, ok, err)
		}
		if tag != int64(i*7) {
			t.Fatalf("record %d tag = %d", i, tag)
		}
		if len(got) != len(want) {
			t.Fatalf("record %d width %d != %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j].Kind() != want[j].Kind() {
				t.Fatalf("record %d col %d kind %v != %v", i, j, got[j].Kind(), want[j].Kind())
			}
			if want[j].Kind() == datum.KindFloat {
				if math.Float64bits(got[j].Float()) != math.Float64bits(want[j].Float()) {
					t.Fatalf("record %d col %d float bits differ", i, j)
				}
			} else if !want[j].IsNull() && datum.Compare(got[j], want[j]) != 0 {
				t.Fatalf("record %d col %d = %v, want %v", i, j, got[j], want[j])
			}
		}
	}
	if _, _, ok, _ := sr.next(); ok {
		t.Fatal("reader returned extra record")
	}
	if c.Counters.Spills != 1 || c.Counters.SpillBytes != w.bytes {
		t.Fatalf("spill counters = %d/%d", c.Counters.Spills, c.Counters.SpillBytes)
	}
}

func TestSpillFanoutBounds(t *testing.T) {
	cases := []struct {
		total, avail int64
		want         int
	}{
		{0, 1 << 30, 2},                   // at least two partitions
		{1 << 30, 1 << 20, 64},            // capped at the max fanout
		{1 << 20, 1 << 20, 2},             // total/(avail/2) = 2
		{200 << 10, 10, 4},                // tiny budget: floor of 64 KiB chunks
	}
	for _, tc := range cases {
		if got := spillFanout(tc.total, tc.avail); got != tc.want {
			t.Errorf("spillFanout(%d, %d) = %d, want %d", tc.total, tc.avail, got, tc.want)
		}
	}
}

// TestExternalSortMatchesStableSort: the degraded sort must reproduce the
// in-memory stable sort exactly — same keys, same tie order — at several
// budgets so both single-run and many-run merges are covered.
func TestExternalSortMatchesStableSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rows := randSpillRows(rng, 5000)
	spec := []datum.SortSpec{{Col: 0}, {Col: 2, Desc: true}}
	want := append([]datum.Row(nil), rows...)
	sort.SliceStable(want, func(i, j int) bool {
		return datum.CompareRows(want[i], want[j], spec) < 0
	})
	for _, budget := range []int64{1, 4 << 10, 1 << 20} {
		c := spillCtx(t, budget)
		got, err := c.externalSortRows(append([]datum.Row(nil), rows...), spec)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if len(got) != len(want) {
			t.Fatalf("budget %d: %d rows, want %d", budget, len(got), len(want))
		}
		for i := range want {
			if got[i].String() != want[i].String() {
				t.Fatalf("budget %d: row %d = %s, want %s", budget, i, got[i], want[i])
			}
		}
		if c.Counters.Spills == 0 {
			t.Fatalf("budget %d: external sort wrote no runs", budget)
		}
		if c.Mem.Used() != 0 {
			t.Fatalf("budget %d: leaked %d reserved bytes", budget, c.Mem.Used())
		}
	}
}

// buildHashJoinFixture returns a hash-join node plus materialized inputs over
// two synthetic tables (left probe, right build).
func buildHashJoinFixture(kind logical.JoinKind, left, right []datum.Row) (*physical.HashJoin, []int, []int) {
	lCols := []logical.ColumnID{1, 2, 3}
	rCols := []logical.ColumnID{4, 5}
	lv := &physical.ValuesOp{Cols: lCols}
	rv := &physical.ValuesOp{Cols: rCols}
	hj := &physical.HashJoin{
		Kind: kind, Left: lv, Right: rv,
		LeftKeys: lCols[:1], RightKeys: rCols[:1],
	}
	return hj, []int{0}, []int{0}
}

// TestGraceHashJoinMatchesInMemory: for every join kind, the grace join's
// output must equal the in-memory hash join's rows in the identical order.
func TestGraceHashJoinMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	left := randSpillRows(rng, 3000)
	right := randSpillRows(rng, 2500)
	kinds := []logical.JoinKind{
		logical.InnerJoin, logical.LeftOuterJoin, logical.FullOuterJoin,
		logical.SemiJoin, logical.AntiJoin,
	}
	for _, kind := range kinds {
		hj, lOff, rOff := buildHashJoinFixture(kind, left, right)
		// In-memory truth via the serial hash join body (unlimited budget).
		truth := NewCtx(nil, nil)
		want, err := truth.hashJoinRows(hj, left, right, lOff, rOff)
		if err != nil {
			t.Fatalf("%v in-memory: %v", kind, err)
		}
		c := spillCtx(t, 1) // any build fails -> grace join, floor keeps partitions alive
		got, err := c.graceHashJoin(hj, left, right, lOff, rOff)
		if err != nil {
			t.Fatalf("%v grace: %v", kind, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d rows, want %d", kind, len(got), len(want))
		}
		for i := range want {
			if got[i].String() != want[i].String() {
				t.Fatalf("%v: row %d = %s, want %s", kind, i, got[i], want[i])
			}
		}
		if c.Counters.Spills == 0 {
			t.Fatalf("%v: grace join spilled nothing", kind)
		}
		if c.Mem.Used() != 0 {
			t.Fatalf("%v: leaked %d reserved bytes", kind, c.Mem.Used())
		}
	}
}

// hashJoinRows runs the serial in-memory hash join over materialized inputs —
// test helper mirroring runHashJoin's post-materialization body.
func (c *Ctx) hashJoinRows(t *physical.HashJoin, left, right []datum.Row, lOff, rOff []int) ([]datum.Row, error) {
	build := make(map[uint64][]int, len(right))
	for i, rr := range right {
		if hasNullAt(rr, rOff) {
			continue
		}
		build[rr.Hash(rOff)] = append(build[rr.Hash(rOff)], i)
	}
	leftLayout, rightLayout := t.Left.Columns(), t.Right.Columns()
	combined := append(append([]logical.ColumnID{}, leftLayout...), rightLayout...)
	e := newEnv(combined, nil)
	rightWidth := len(rightLayout)
	rightMatched := make([]bool, len(right))
	var out []datum.Row
	for _, lr := range left {
		matched := false
		if !hasNullAt(lr, lOff) {
			for _, ri := range build[lr.Hash(lOff)] {
				rr := right[ri]
				if !datum.EqualOn(lr, rr, lOff, rOff) {
					continue
				}
				e.row = lr.Concat(rr)
				ok, err := c.filterRow(t.ExtraOn, e)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
				matched = true
				rightMatched[ri] = true
				switch t.Kind {
				case logical.InnerJoin, logical.LeftOuterJoin, logical.FullOuterJoin:
					out = append(out, lr.Concat(rr))
				case logical.SemiJoin:
					out = append(out, lr)
				}
				if t.Kind == logical.SemiJoin || t.Kind == logical.AntiJoin {
					break
				}
			}
		}
		switch t.Kind {
		case logical.LeftOuterJoin, logical.FullOuterJoin:
			if !matched {
				out = append(out, lr.Concat(nullRow(rightWidth)))
			}
		case logical.AntiJoin:
			if !matched {
				out = append(out, lr)
			}
		}
	}
	if t.Kind == logical.FullOuterJoin {
		leftWidth := len(leftLayout)
		for ri, rr := range right {
			if !rightMatched[ri] {
				out = append(out, nullRow(leftWidth).Concat(rr))
			}
		}
	}
	return out, nil
}

// TestGraceHashJoinSkewFailsTyped: a build side whose keys are all equal
// collapses into one partition; when that partition exceeds both the minimal
// working set and the budget, the query fails with the typed budget error
// instead of thrashing.
func TestGraceHashJoinSkewFailsTyped(t *testing.T) {
	// ~100 bytes/row x 3000 rows ≈ 300 KB in one partition (> spillFloor).
	right := make([]datum.Row, 3000)
	for i := range right {
		right[i] = datum.Row{datum.NewInt(7), datum.NewString("padding-padding-padding-padding-padding-padding")}
	}
	left := []datum.Row{{datum.NewInt(7), datum.NewInt(1), datum.NewInt(2)}}
	lCols := []logical.ColumnID{1, 2, 3}
	rCols := []logical.ColumnID{4, 5}
	hj := &physical.HashJoin{
		Kind: logical.InnerJoin,
		Left: &physical.ValuesOp{Cols: lCols}, Right: &physical.ValuesOp{Cols: rCols},
		LeftKeys: lCols[:1], RightKeys: rCols[:1],
	}
	c := spillCtx(t, 32<<10)
	_, err := c.graceHashJoin(hj, left, right, []int{0}, []int{0})
	if err == nil {
		t.Fatal("skewed grace join under tiny budget succeeded")
	}
	if !errors.Is(err, ErrMemoryBudgetExceeded) {
		t.Fatalf("error %v does not match ErrMemoryBudgetExceeded", err)
	}
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("error %T is not typed", err)
	}
	if be.Op != "hash join build partition" {
		t.Fatalf("error op = %q", be.Op)
	}
	if c.Mem.Used() != 0 {
		t.Fatalf("failed join leaked %d reserved bytes", c.Mem.Used())
	}
}

// TestSpillGroupByMatchesInMemory: partitioned aggregation must reproduce the
// in-memory group table's rows in first-seen order, bit-identical floats.
func TestSpillGroupByMatchesInMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := randSpillRows(rng, 4000)
	layout := []logical.ColumnID{1, 2, 3}
	groupCols := layout[:1]
	aggs := []logical.AggItem{
		{ID: 10, Fn: logical.AggCount},
		{ID: 11, Fn: logical.AggSum, Arg: &logical.Col{ID: 3}},
		{ID: 12, Fn: logical.AggMin, Arg: &logical.Col{ID: 2}},
	}
	truth := NewCtx(nil, nil)
	want, err := truth.memGroupBy(in, layout, []int{0}, groupCols, aggs)
	if err != nil {
		t.Fatal(err)
	}
	c := spillCtx(t, 1)
	got, err := c.spillGroupBy(in, layout, []int{0}, groupCols, aggs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d groups, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].String() != want[i].String() {
			t.Fatalf("group %d = %s, want %s", i, got[i], want[i])
		}
	}
	if c.Counters.Spills == 0 {
		t.Fatal("spill aggregation spilled nothing")
	}
	if c.Mem.Used() != 0 {
		t.Fatalf("leaked %d reserved bytes", c.Mem.Used())
	}
}

// memGroupBy is the in-memory truth: an uncharged group table fed serially.
func (c *Ctx) memGroupBy(in []datum.Row, layout []logical.ColumnID, keyOff []int, groupCols []logical.ColumnID, aggs []logical.AggItem) ([]datum.Row, error) {
	gt := newGroupTable(len(groupCols), aggs)
	e := newEnv(layout, nil)
	ectx := c.evalCtx(e)
	for _, r := range in {
		e.row = r
		key := make(datum.Row, len(keyOff))
		for i, off := range keyOff {
			key[i] = r[off]
		}
		args := make([]datum.D, len(aggs))
		for i, a := range aggs {
			if a.Arg == nil {
				args[i] = datum.NewInt(1)
				continue
			}
			v, err := logical.Eval(a.Arg, ectx)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		if err := gt.add(key, key.Hash(seqOffsets(len(key))), args); err != nil {
			return nil, err
		}
	}
	return gt.rows(), nil
}
