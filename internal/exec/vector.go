// The vectorized execution path: operators that produce and consume columnar
// batches (batch.go) through the typed kernels in kernels.go, integrated
// under the same morsel scheduler, memory governor, fault cadence and metrics
// as the row engine. Dispatch is structural — execPlanBatch claims an
// operator only when every predicate, projection item and aggregate has a
// kernel; anything else falls back to the row path automatically, so turning
// vectorization on never changes which queries run, only how fast. Claimed
// operators replicate the row path's observable behaviour exactly: the same
// counters (RowsProcessed, HashOps, IndexSeeks), the same page touches, the
// same step("scan") fault/cancel cadence per MorselSize rows, the same memory
// reservations with the same spill fallbacks, and bit-identical output rows.
package exec

import (
	"fmt"
	"time"

	"repro/internal/datum"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/storage"
)

// execVectorized attempts to run p on the batch path. ok=false means no
// vectorized implementation claimed the operator (the caller runs the row
// path); ok=true means the batch path ran (successfully or not).
func (c *Ctx) execVectorized(p physical.Plan) ([]datum.Row, bool, error) {
	b, ok, err := c.execPlanBatch(p)
	if !ok {
		return nil, false, nil
	}
	if err != nil {
		return nil, true, err
	}
	if c.curNode != nil {
		c.curNode.Vectorized = true
	}
	return b.ToRows(), true, nil
}

// execPlanBatch dispatches to the vectorized operator implementations.
// The bool result distinguishes "not vectorizable" (false) from "ran" (true);
// errors are only meaningful in the latter case.
func (c *Ctx) execPlanBatch(p physical.Plan) (*Batch, bool, error) {
	switch t := p.(type) {
	case *physical.TableScan:
		return c.vecTableScan(t)
	case *physical.IndexScan:
		return c.vecIndexScan(t)
	case *physical.Filter:
		return c.vecFilter(t)
	case *physical.Project:
		return c.vecProject(t)
	case *physical.HashGroupBy:
		return c.vecGroupBy(t)
	case *physical.HashJoin:
		return c.vecHashJoin(t)
	}
	return nil, false, nil
}

// inputBatch runs a vectorized operator's child, natively in batch form when
// the child is itself vectorized and via row materialization otherwise. It
// mirrors runPlan's metering so EXPLAIN ANALYZE sees child operators
// identically on both paths.
func (c *Ctx) inputBatch(p physical.Plan) (*Batch, error) {
	if err := c.canceled(); err != nil {
		return nil, err
	}
	if c.Metrics == nil {
		b, ok, err := c.execPlanBatch(p)
		if err != nil {
			return nil, err
		}
		if ok {
			return b, nil
		}
		rows, err := c.execPlan(p)
		if err != nil {
			return nil, err
		}
		return batchFromRows(p.Columns(), rows), nil
	}
	m := c.Metrics.Node(p)
	m.Invocations++
	prev := c.curNode
	c.curNode = m
	start := time.Now()
	b, ok, err := c.execPlanBatch(p)
	if ok {
		m.WallNanos += time.Since(start).Nanoseconds()
		if b != nil {
			m.ActualRows += int64(b.NumRows())
		}
		m.Vectorized = true
		c.curNode = prev
		return b, err
	}
	rows, err := c.execPlan(p)
	m.WallNanos += time.Since(start).Nanoseconds()
	m.ActualRows += int64(len(rows))
	c.curNode = prev
	if err != nil {
		return nil, err
	}
	return batchFromRows(p.Columns(), rows), nil
}

// identSel returns the identity selection vector [0, n).
func identSel(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

// liveSel returns the batch's live row indices, materializing the identity
// when no selection vector is present.
func (b *Batch) liveSel() []int32 {
	if b.Sel != nil {
		return b.Sel
	}
	return identSel(b.n)
}

// vecNullAt reports whether any of the key columns is NULL at row i.
func vecNullAt(vecs []*datum.Vec, offs []int, i int) bool {
	for _, o := range offs {
		if vecs[o].Null(i) {
			return true
		}
	}
	return false
}

// colKinds resolves the static column kinds of a scan layout from metadata.
func (c *Ctx) colKinds(cols []logical.ColumnID) []datum.Kind {
	kinds := make([]datum.Kind, len(cols))
	for i, id := range cols {
		kinds[i] = c.Meta.Column(id).Kind
	}
	return kinds
}

// scanScratch is the per-chunk working state of a filtered vectorized scan:
// one reusable vector per predicate-referenced column plus ping-pong
// selection buffers. Only the filter columns are filled before the kernels
// run — surviving rows are late-materialized afterwards.
type scanScratch struct {
	vecs       []*datum.Vec
	kinds      []datum.Kind
	predCols   []int
	ident      []int32
	selA, selB []int32
}

func newScanScratch(kinds []datum.Kind, preds []compiledPred) *scanScratch {
	s := &scanScratch{
		vecs:  make([]*datum.Vec, len(kinds)),
		kinds: kinds,
		ident: identSel(MorselSize),
		selA:  make([]int32, 0, MorselSize),
		selB:  make([]int32, 0, MorselSize),
	}
	seen := make(map[int]bool)
	note := func(col int) {
		if !seen[col] {
			seen[col] = true
			s.predCols = append(s.predCols, col)
			s.vecs[col] = datum.NewVec(kinds[col], MorselSize)
		}
	}
	for _, p := range preds {
		switch p.form {
		case predNever:
		case predColCol:
			note(p.col)
			note(p.col2)
		default:
			note(p.col)
		}
	}
	return s
}

// reset readies the scratch vectors for the next chunk.
func (s *scanScratch) reset() {
	for _, pc := range s.predCols {
		s.vecs[pc].Reset(s.kinds[pc])
	}
}

// filterChunk runs the compiled predicates over rows [0, chunkLen) of the
// scratch vectors and returns the surviving local indices. The returned slice
// aliases scratch buffers — consume it before the next chunk.
func (s *scanScratch) filterChunk(preds []compiledPred, chunkLen int) []int32 {
	cur := s.ident[:chunkLen]
	useA := true
	b := &Batch{Vecs: s.vecs, n: chunkLen}
	for _, p := range preds {
		var dst []int32
		if useA {
			dst = s.selA[:0]
		} else {
			dst = s.selB[:0]
		}
		cur = applyPred(b, p, cur, dst)
		if useA {
			s.selA = cur
		} else {
			s.selB = cur
		}
		useA = !useA
		if len(cur) == 0 {
			break
		}
	}
	return cur
}

// --- vectorized scans ---

func (c *Ctx) vecTableScan(t *physical.TableScan) (*Batch, bool, error) {
	preds, ok := compilePreds(t.Filter, t.Cols)
	if !ok {
		return nil, false, nil
	}
	tab, found := c.Store.Table(t.Table.Name)
	if !found {
		return nil, true, fmt.Errorf("exec: no storage for table %s", t.Table.Name)
	}
	pruner := c.buildPruner(tab, t.Filter, t.Cols, t.ColOrds)
	if pruner != nil {
		c.notePruner(tab, pruner)
	} else {
		c.touchScan(tab)
	}
	n := tab.RowCount()
	kinds := c.colKinds(t.Cols)

	if len(preds) == 0 {
		// Unfiltered scan: each column fills in one tight pass. The morsel
		// loop only keeps the governor cadence (step, counters, batches)
		// identical to the row path; the fill itself is bandwidth-bound, so
		// fanning it out buys nothing.
		if c.parallel() && n >= minParallelRows {
			err := c.forMorsels(n, func(wc *Ctx, m, lo, hi int) error {
				if err := wc.step("scan"); err != nil {
					return err
				}
				wc.Counters.RowsProcessed += int64(hi - lo)
				return nil
			})
			if err != nil {
				return nil, true, err
			}
		} else {
			if c.curNode != nil {
				c.curNode.Batches += int64(numMorsels(n))
			}
			for lo := 0; lo < n; lo += MorselSize {
				hi := min(lo+MorselSize, n)
				if err := c.step("scan"); err != nil {
					return nil, true, err
				}
				c.Counters.RowsProcessed += int64(hi - lo)
			}
		}
		vecs := make([]*datum.Vec, len(t.Cols))
		for ci := range t.Cols {
			v := datum.NewVec(kinds[ci], n)
			if err := c.fillRange(tab, t.ColOrds[ci], 0, n, v); err != nil {
				return nil, true, err
			}
			vecs[ci] = v
		}
		return &Batch{Cols: t.Cols, Vecs: vecs, n: n}, true, nil
	}

	// Filtered scan, late-materialized: fill only the predicate columns per
	// morsel, refine the selection with the kernels, then gather every output
	// column for the survivors in one pass. Over a disk-backed table the
	// pruner classifies each morsel first: eliminated morsels skip the fill
	// and the kernels (no I/O at all), full-match morsels keep every row
	// without running the kernels.
	morselDisp := func(lo, hi int) storage.ZoneDisp {
		if pruner == nil {
			return storage.ZoneSome
		}
		return pruner.dispRange(lo, hi)
	}
	identIDs := func(lo, hi int) []int {
		loc := make([]int, hi-lo)
		for k := range loc {
			loc[k] = lo + k
		}
		return loc
	}
	var ids []int
	if c.parallel() && n >= minParallelRows {
		idsPer := make([][]int, numMorsels(n))
		err := c.forMorsels(n, func(wc *Ctx, m, lo, hi int) error {
			disp := morselDisp(lo, hi)
			if disp == storage.ZoneNone {
				return nil
			}
			if err := wc.step("scan"); err != nil {
				return err
			}
			wc.Counters.RowsProcessed += int64(hi - lo)
			if disp == storage.ZoneAll && pruner.full {
				idsPer[m] = identIDs(lo, hi)
				return nil
			}
			scratch := newScanScratch(kinds, preds)
			for _, pc := range scratch.predCols {
				if err := wc.fillRange(tab, t.ColOrds[pc], lo, hi, scratch.vecs[pc]); err != nil {
					return err
				}
			}
			sel := scratch.filterChunk(preds, hi-lo)
			if len(sel) == 0 {
				return nil
			}
			loc := make([]int, len(sel))
			for k, i := range sel {
				loc[k] = lo + int(i)
			}
			idsPer[m] = loc
			return nil
		})
		if err != nil {
			return nil, true, err
		}
		for _, loc := range idsPer {
			ids = append(ids, loc...)
		}
	} else {
		if c.curNode != nil {
			c.curNode.Batches += int64(numMorsels(n))
		}
		scratch := newScanScratch(kinds, preds)
		for lo := 0; lo < n; lo += MorselSize {
			hi := min(lo+MorselSize, n)
			disp := morselDisp(lo, hi)
			if disp == storage.ZoneNone {
				continue
			}
			if err := c.step("scan"); err != nil {
				return nil, true, err
			}
			c.Counters.RowsProcessed += int64(hi - lo)
			if disp == storage.ZoneAll && pruner.full {
				ids = append(ids, identIDs(lo, hi)...)
				continue
			}
			scratch.reset()
			for _, pc := range scratch.predCols {
				if err := c.fillRange(tab, t.ColOrds[pc], lo, hi, scratch.vecs[pc]); err != nil {
					return nil, true, err
				}
			}
			for _, i := range scratch.filterChunk(preds, hi-lo) {
				ids = append(ids, lo+int(i))
			}
		}
	}
	vecs := make([]*datum.Vec, len(t.Cols))
	for ci := range t.Cols {
		v := datum.NewVec(kinds[ci], len(ids))
		if err := c.fillIDs(tab, t.ColOrds[ci], ids, v); err != nil {
			return nil, true, err
		}
		vecs[ci] = v
	}
	return &Batch{Cols: t.Cols, Vecs: vecs, n: len(ids)}, true, nil
}

func (c *Ctx) vecIndexScan(t *physical.IndexScan) (*Batch, bool, error) {
	preds, ok := compilePreds(t.Filter, t.Cols)
	if !ok {
		return nil, false, nil
	}
	tab, found := c.Store.Table(t.Table.Name)
	if !found {
		return nil, true, fmt.Errorf("exec: no storage for table %s", t.Table.Name)
	}
	ix, err := tab.Index(t.Index.Name)
	if err != nil {
		return nil, true, err
	}
	c.Counters.IndexSeeks++
	var ids []int
	switch {
	case len(t.EqKey) > 0 && (!t.Lo.IsNull() || !t.Hi.IsNull()):
		ids = ix.SeekEq(t.EqKey)
		rangeOrd := t.Index.Cols[len(t.EqKey)]
		ids, err = c.filterIDsByRange(tab, ids, rangeOrd, t.Lo, t.LoIncl, t.Hi, t.HiIncl)
		if err != nil {
			return nil, true, err
		}
	case len(t.EqKey) > 0:
		ids = ix.SeekEq(t.EqKey)
	default:
		ids = ix.SeekRange(t.Lo, t.LoIncl, t.Hi, t.HiIncl)
	}
	for _, id := range ids {
		c.touchRow(tab, id)
	}
	kinds := c.colKinds(t.Cols)

	keep := ids
	if len(preds) > 0 {
		keep = keep[:0:0]
		filterMorsel := func(wc *Ctx, scratch *scanScratch, lo, hi int) ([]int, error) {
			scratch.reset()
			for _, pc := range scratch.predCols {
				if err := wc.fillIDs(tab, t.ColOrds[pc], ids[lo:hi], scratch.vecs[pc]); err != nil {
					return nil, err
				}
			}
			sel := scratch.filterChunk(preds, hi-lo)
			if len(sel) == 0 {
				return nil, nil
			}
			loc := make([]int, len(sel))
			for k, i := range sel {
				loc[k] = ids[lo+int(i)]
			}
			return loc, nil
		}
		if c.parallel() && len(ids) >= minParallelRows {
			keepPer := make([][]int, numMorsels(len(ids)))
			err := c.forMorsels(len(ids), func(wc *Ctx, m, lo, hi int) error {
				if err := wc.step("scan"); err != nil {
					return err
				}
				wc.Counters.RowsProcessed += int64(hi - lo)
				loc, err := filterMorsel(wc, newScanScratch(kinds, preds), lo, hi)
				if err != nil {
					return err
				}
				keepPer[m] = loc
				return nil
			})
			if err != nil {
				return nil, true, err
			}
			for _, loc := range keepPer {
				keep = append(keep, loc...)
			}
		} else {
			if c.curNode != nil {
				c.curNode.Batches += int64(numMorsels(len(ids)))
			}
			scratch := newScanScratch(kinds, preds)
			for lo := 0; lo < len(ids); lo += MorselSize {
				hi := min(lo+MorselSize, len(ids))
				if err := c.step("scan"); err != nil {
					return nil, true, err
				}
				c.Counters.RowsProcessed += int64(hi - lo)
				loc, err := filterMorsel(c, scratch, lo, hi)
				if err != nil {
					return nil, true, err
				}
				keep = append(keep, loc...)
			}
		}
	} else {
		if c.curNode != nil {
			c.curNode.Batches += int64(numMorsels(len(ids)))
		}
		for lo := 0; lo < len(ids); lo += MorselSize {
			hi := min(lo+MorselSize, len(ids))
			if err := c.step("scan"); err != nil {
				return nil, true, err
			}
			c.Counters.RowsProcessed += int64(hi - lo)
		}
	}
	vecs := make([]*datum.Vec, len(t.Cols))
	for ci := range t.Cols {
		v := datum.NewVec(kinds[ci], len(keep))
		if err := c.fillIDs(tab, t.ColOrds[ci], keep, v); err != nil {
			return nil, true, err
		}
		vecs[ci] = v
	}
	return &Batch{Cols: t.Cols, Vecs: vecs, n: len(keep)}, true, nil
}

// --- vectorized filter and projection ---

func (c *Ctx) vecFilter(t *physical.Filter) (*Batch, bool, error) {
	preds, ok := compilePreds(t.Preds, t.Input.Columns())
	if !ok {
		return nil, false, nil
	}
	in, err := c.inputBatch(t.Input)
	if err != nil {
		return nil, true, err
	}
	c.Counters.RowsProcessed += int64(in.NumRows())
	if c.curNode != nil {
		c.curNode.Batches += int64(numMorsels(in.NumRows()))
	}
	sel := in.liveSel()
	for _, p := range preds {
		if len(sel) == 0 {
			break
		}
		sel = applyPred(in, p, sel, make([]int32, 0, len(sel)))
	}
	return &Batch{Cols: in.Cols, Vecs: in.Vecs, Sel: sel, n: in.n}, true, nil
}

func (c *Ctx) vecProject(t *physical.Project) (*Batch, bool, error) {
	layout := t.Input.Columns()
	offs := make([]int, len(t.Items))
	for i, it := range t.Items {
		col, isCol := it.Expr.(*logical.Col)
		if !isCol {
			return nil, false, nil
		}
		off := -1
		for j, id := range layout {
			if id == col.ID {
				off = j
				break
			}
		}
		if off < 0 {
			return nil, false, nil
		}
		offs[i] = off
	}
	in, err := c.inputBatch(t.Input)
	if err != nil {
		return nil, true, err
	}
	c.Counters.RowsProcessed += int64(in.NumRows())
	// Pure column selection: the output shares the input's vectors — a
	// projection costs len(items) pointer copies, not a row copy.
	vecs := make([]*datum.Vec, len(offs))
	for i, off := range offs {
		vecs[i] = in.Vecs[off]
	}
	return &Batch{Cols: t.Columns(), Vecs: vecs, Sel: in.Sel, n: in.n}, true, nil
}

// --- vectorized hash aggregation ---

// vecGroups is the batch path's group table: hash-bucketed group ids over
// interned key rows, charged to the memory account with the row path's exact
// per-entry model so both trip the budget at the same input.
type vecGroups struct {
	byHash  map[uint64][]int32
	keys    []datum.Row
	keyOff  []int
	nAggs   int
	mem     *MemAccount
	charged int64
}

func (g *vecGroups) release() {
	if g.charged > 0 {
		g.mem.Shrink(g.charged)
		g.charged = 0
	}
}

// assign returns the group id of batch row i, creating (and charging) the
// group on first sight. Group ids are dense and in first-appearance order, so
// emitting groups by id reproduces the row path's insertion order.
func (g *vecGroups) assign(in *Batch, i int, h uint64) (int32, error) {
	for _, gid := range g.byHash[h] {
		key := g.keys[gid]
		match := true
		for kc, ko := range g.keyOff {
			if !datum.Equal(in.Vecs[ko].D(i), key[kc]) {
				match = false
				break
			}
		}
		if match {
			return gid, nil
		}
	}
	key := make(datum.Row, len(g.keyOff))
	for kc, ko := range g.keyOff {
		key[kc] = in.Vecs[ko].D(i)
	}
	n := int64(key.Size()) + entryOverhead + int64(48*g.nAggs)
	if err := g.mem.GrowFloor("hash aggregation", n, g.charged, 0); err != nil {
		return 0, err
	}
	g.charged += n
	gid := int32(len(g.keys))
	g.keys = append(g.keys, key)
	g.byHash[h] = append(g.byHash[h], gid)
	return gid, nil
}

func (c *Ctx) vecGroupBy(t *physical.HashGroupBy) (*Batch, bool, error) {
	if c.parallel() {
		// Large inputs take the two-phase parallel row aggregation; claiming
		// them here would serialize the pipeline.
		return nil, false, nil
	}
	layout := t.Input.Columns()
	keyOff, err := offsetsOf(layout, t.GroupCols)
	if err != nil {
		return nil, false, nil
	}
	argOff := make([]int, len(t.Aggs))
	for i, a := range t.Aggs {
		if a.Distinct {
			return nil, false, nil
		}
		if a.Arg == nil {
			if a.Fn != logical.AggCount {
				return nil, false, nil
			}
			argOff[i] = -1
			continue
		}
		col, isCol := a.Arg.(*logical.Col)
		if !isCol {
			return nil, false, nil
		}
		off := -1
		for j, id := range layout {
			if id == col.ID {
				off = j
				break
			}
		}
		if off < 0 {
			return nil, false, nil
		}
		argOff[i] = off
	}

	in, err := c.inputBatch(t.Input)
	if err != nil {
		return nil, true, err
	}
	// Pre-size hash buckets from the optimizer's group-count estimate, capped
	// so a wild overestimate cannot make the presize itself the cost.
	hint := int(t.Rows)
	if hint < 0 {
		hint = 0
	}
	if hint > 1<<20 {
		hint = 1 << 20
	}
	g := &vecGroups{byHash: make(map[uint64][]int32, hint), keyOff: keyOff, nAggs: len(t.Aggs), mem: c.Mem}
	defer g.release()
	scalar := len(keyOff) == 0
	if scalar {
		// Like newGroupTable, the single global group of a scalar aggregation
		// exists before any accounting and is never charged.
		g.keys = append(g.keys, nil)
	}
	accs := make([]vecAccumulator, len(t.Aggs))
	for i, a := range t.Aggs {
		var arg *datum.Vec
		if argOff[i] >= 0 {
			arg = in.Vecs[argOff[i]]
		}
		if accs[i] = newVecAccumulator(a, arg); accs[i] == nil {
			return nil, false, nil
		}
	}

	sel := in.liveSel()
	if c.curNode != nil {
		c.curNode.Batches += int64(numMorsels(len(sel)))
	}
	gidBuf := make([]int32, MorselSize)
	for lo := 0; lo < len(sel); lo += MorselSize {
		hi := min(lo+MorselSize, len(sel))
		if err := c.canceled(); err != nil {
			return nil, true, err
		}
		chunk := sel[lo:hi]
		c.Counters.RowsProcessed += int64(len(chunk))
		c.Counters.HashOps += int64(len(chunk))
		gids := gidBuf[:len(chunk)]
		if scalar {
			for k := range gids {
				gids[k] = 0
			}
		} else {
			hs := getHashBuf(len(chunk))
			hashInit(hs)
			for _, ko := range keyOff {
				hashCombineVec(in.Vecs[ko], chunk, hs)
			}
			for k, i := range chunk {
				gid, aerr := g.assign(in, int(i), hs[k])
				if aerr != nil {
					// Budget exceeded: degrade to the partition-and-spill
					// aggregation, exactly like the row path.
					putHashBuf(hs)
					g.release()
					rows := in.ToRows()
					out, serr := c.spillGroupBy(rows, layout, keyOff, t.GroupCols, t.Aggs)
					if serr != nil {
						return nil, true, serr
					}
					return batchFromRows(t.Columns(), out), true, nil
				}
				gids[k] = gid
			}
			putHashBuf(hs)
		}
		ng := len(g.keys)
		for ai := range accs {
			var arg *datum.Vec
			if argOff[ai] >= 0 {
				arg = in.Vecs[argOff[ai]]
			}
			accs[ai].ensure(ng)
			accs[ai].accumulate(arg, chunk, gids)
		}
	}
	for ai := range accs {
		accs[ai].ensure(len(g.keys)) // scalar agg over empty input still emits
	}
	c.noteMem(int64(len(g.keys)))
	c.noteMemBytes(g.charged)

	outCols := t.Columns()
	vecs := make([]*datum.Vec, len(outCols))
	for kc := range keyOff {
		v := datum.NewVec(datum.KindNull, len(g.keys))
		for _, key := range g.keys {
			v.AppendD(key[kc])
		}
		vecs[kc] = v
	}
	for ai := range accs {
		v := datum.NewVec(datum.KindNull, len(g.keys))
		for gid := range g.keys {
			v.AppendD(accs[ai].result(gid))
		}
		vecs[len(keyOff)+ai] = v
	}
	return &Batch{Cols: outCols, Vecs: vecs, n: len(g.keys)}, true, nil
}

// --- vectorized hash join ---

// gatherVec materializes src rows named by idx into a fresh vector; negative
// indices produce NULL (the outer-join padding).
func gatherVec(src *datum.Vec, idx []int32) *datum.Vec {
	var out *datum.Vec
	if src.Boxed() {
		out = datum.NewAnyVec(len(idx))
	} else {
		out = datum.NewVec(src.Kind(), len(idx))
	}
	for _, i := range idx {
		if i < 0 {
			out.AppendNull()
		} else {
			out.AppendVec(src, int(i))
		}
	}
	return out
}

// vecKeysEqual reports whether the join keys match, with the row path's
// datum.EqualOn semantics (NULLs are pre-filtered by the callers).
func vecKeysEqual(l *Batch, lOff []int, li int, r *Batch, rOff []int, ri int) bool {
	for k := range lOff {
		if !datum.Equal(l.Vecs[lOff[k]].D(li), r.Vecs[rOff[k]].D(ri)) {
			return false
		}
	}
	return true
}

func (c *Ctx) vecHashJoin(t *physical.HashJoin) (*Batch, bool, error) {
	if c.parallel() || len(t.ExtraOn) > 0 {
		return nil, false, nil
	}
	leftLayout, rightLayout := t.Left.Columns(), t.Right.Columns()
	lOff, err := offsetsOf(leftLayout, t.LeftKeys)
	if err != nil {
		return nil, false, nil
	}
	rOff, err := offsetsOf(rightLayout, t.RightKeys)
	if err != nil {
		return nil, false, nil
	}
	left, err := c.inputBatch(t.Left)
	if err != nil {
		return nil, true, err
	}
	right, err := c.inputBatch(t.Right)
	if err != nil {
		return nil, true, err
	}
	buildBytes := batchRowBytes(right)
	if err := c.Mem.Grow("hash join build", buildBytes); err != nil {
		// Build side over budget: degrade to the grace hash join on
		// materialized rows, exactly like the row path.
		out, jerr := c.graceHashJoin(t, left.ToRows(), right.ToRows(), lOff, rOff)
		if jerr != nil {
			return nil, true, jerr
		}
		return batchFromRows(t.Columns(), out), true, nil
	}
	defer c.Mem.Shrink(buildBytes)
	c.noteMemBytes(buildBytes)

	// Build on the right: bucket lists hold batch row indices in selection
	// order, so every probe sees its matches in the serial row order.
	rsel := right.liveSel()
	build := make(map[uint64][]int32, len(rsel))
	for lo := 0; lo < len(rsel); lo += MorselSize {
		hi := min(lo+MorselSize, len(rsel))
		chunk := rsel[lo:hi]
		hs := getHashBuf(len(chunk))
		hashInit(hs)
		for _, ro := range rOff {
			hashCombineVec(right.Vecs[ro], chunk, hs)
		}
		for k, ri := range chunk {
			if vecNullAt(right.Vecs, rOff, int(ri)) {
				continue // NULL keys never match; FullOuter emits them below
			}
			c.Counters.HashOps++
			build[hs[k]] = append(build[hs[k]], ri)
		}
		putHashBuf(hs)
	}
	c.noteMem(int64(right.NumRows()))

	// Probe the left in selection order, emitting (left, right) index pairs;
	// ri = -1 pads unmatched outer rows with NULLs at gather time.
	lsel := left.liveSel()
	if c.curNode != nil {
		c.curNode.Batches += int64(numMorsels(len(lsel)))
	}
	semiShape := t.Kind == logical.SemiJoin || t.Kind == logical.AntiJoin
	var lIdx, rIdx []int32
	var rightMatched []bool
	if t.Kind == logical.FullOuterJoin {
		rightMatched = make([]bool, right.n)
	}
	for lo := 0; lo < len(lsel); lo += MorselSize {
		hi := min(lo+MorselSize, len(lsel))
		if err := c.canceled(); err != nil {
			return nil, true, err
		}
		chunk := lsel[lo:hi]
		hs := getHashBuf(len(chunk))
		hashInit(hs)
		for _, lo2 := range lOff {
			hashCombineVec(left.Vecs[lo2], chunk, hs)
		}
		for k, li := range chunk {
			matched := false
			if !vecNullAt(left.Vecs, lOff, int(li)) {
				c.Counters.HashOps++
				for _, ri := range build[hs[k]] {
					if !vecKeysEqual(left, lOff, int(li), right, rOff, int(ri)) {
						continue
					}
					c.Counters.RowsProcessed++
					matched = true
					if rightMatched != nil {
						rightMatched[ri] = true
					}
					switch t.Kind {
					case logical.InnerJoin, logical.LeftOuterJoin, logical.FullOuterJoin:
						lIdx = append(lIdx, li)
						rIdx = append(rIdx, ri)
					case logical.SemiJoin:
						lIdx = append(lIdx, li)
					}
					if semiShape {
						break
					}
				}
			}
			switch t.Kind {
			case logical.LeftOuterJoin, logical.FullOuterJoin:
				if !matched {
					lIdx = append(lIdx, li)
					rIdx = append(rIdx, -1)
				}
			case logical.AntiJoin:
				if !matched {
					lIdx = append(lIdx, li)
				}
			}
		}
		putHashBuf(hs)
	}
	if t.Kind == logical.FullOuterJoin {
		for _, ri := range rsel {
			if !rightMatched[ri] {
				lIdx = append(lIdx, -1)
				rIdx = append(rIdx, ri)
			}
		}
	}

	outCols := t.Columns()
	vecs := make([]*datum.Vec, 0, len(outCols))
	for _, v := range left.Vecs[:len(leftLayout)] {
		vecs = append(vecs, gatherVec(v, lIdx))
	}
	if !semiShape {
		for _, v := range right.Vecs[:len(rightLayout)] {
			vecs = append(vecs, gatherVec(v, rIdx))
		}
	}
	return &Batch{Cols: outCols, Vecs: vecs, n: len(lIdx)}, true, nil
}
