package experiments

// e_adaptive.go measures the adaptive greedy fast path: the same seeded
// random corpus of short statements is planned and executed twice, once with
// full System-R dynamic programming and once with every join block routed to
// the greedy orderer, and the planning-time saving is confronted with the
// execution-time cost of the (possibly worse) greedy join orders. Results
// must be identical between arms — tier selection is a planning-quality
// decision, never a correctness one. RunAdaptiveBench is shared by
// experiment E26 and `benchharness adaptive`, which writes
// BENCH_adaptive.json.

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/datum"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/workload"
)

// AdaptiveArm is one planning configuration measured over the corpus.
type AdaptiveArm struct {
	Name string `json:"name"`
	// PlanNanos and ExecNanos are wall-time totals over the whole corpus.
	PlanNanos int64 `json:"plan_nanos"`
	ExecNanos int64 `json:"exec_nanos"`
	// MeanPlanMicros and MeanExecMicros are per-statement means.
	MeanPlanMicros float64 `json:"mean_plan_micros"`
	MeanExecMicros float64 `json:"mean_exec_micros"`
	// Tiers counts statements by the planning tier that produced their plan.
	Tiers map[string]int `json:"tiers"`
	// TotalEstCost sums the optimizer's cost estimates (plan quality proxy).
	TotalEstCost float64 `json:"total_est_cost"`
}

// AdaptiveBenchResult is the full planning-vs-execution tradeoff run.
type AdaptiveBenchResult struct {
	Queries    int    `json:"queries"`
	EmpRows    int    `json:"emp_rows"`
	Seed       int64  `json:"seed"`
	Reps       int    `json:"plan_reps"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// IdenticalResults reports that both arms produced bit-identical row
	// multisets for every statement in the corpus.
	IdenticalResults bool `json:"identical_results"`
	// PlanSpeedup is DP planning time over greedy planning time (>1 means
	// the fast path planned faster); ExecRegression is greedy execution time
	// over DP execution time (>1 means greedy join orders executed slower).
	PlanSpeedup    float64       `json:"plan_speedup"`
	ExecRegression float64       `json:"exec_regression"`
	Arms           []AdaptiveArm `json:"arms"`
}

// exactDatum renders a datum so that float equality is bit-exact.
func exactDatum(d datum.D) string {
	if d.Kind() == datum.KindFloat {
		return strconv.FormatFloat(d.Float(), 'x', -1, 64)
	}
	return d.String()
}

// resultKey renders an execution result as a sorted row multiset.
func resultKey(rows []datum.Row) string {
	out := make([]string, len(rows))
	for i, r := range rows {
		cells := make([]string, len(r))
		for j, d := range r {
			cells[j] = exactDatum(d)
		}
		out[i] = strings.Join(cells, ",")
	}
	sort.Strings(out)
	return strings.Join(out, ";")
}

// adaptiveCorpus is the analyze corpus with every third statement replaced by
// a wider join chain (3–5 relations). The 2-way analyze shapes measure the
// fast path's overhead floor; the chains are where DP's exponential
// enumeration is real work a greedy order can skip.
func adaptiveCorpus(n int, rng *rand.Rand) []string {
	qs := analyzeCorpus(n, rng)
	for i := 0; i < len(qs); i += 3 {
		sal := 2000 + rng.Intn(18000)
		budget := 50 + rng.Intn(950)
		switch (i / 3) % 3 {
		case 0: // 3-relation chain
			qs[i] = fmt.Sprintf(
				"SELECT e.name, d.loc, m.sal FROM Emp e, Dept d, Emp m WHERE e.did = d.did AND m.eid = e.eid AND d.budget > %d", budget)
		case 1: // 4-relation chain
			qs[i] = fmt.Sprintf(
				"SELECT e.name, d2.dname FROM Emp e, Dept d, Emp m, Dept d2 WHERE e.did = d.did AND m.eid = e.eid AND d2.did = m.did AND e.sal > %d", sal)
		default: // 5-relation chain
			qs[i] = fmt.Sprintf(
				"SELECT e.eid, d.loc FROM Emp e, Dept d, Emp m, Dept d2, Emp m2 WHERE e.did = d.did AND m.eid = e.eid AND d2.did = m.did AND m2.eid = m.eid AND e.sal > %d AND d.budget > %d", sal, budget)
		}
	}
	return qs
}

// RunAdaptiveBench plans and executes the random corpus under both arms. Each
// statement is planned reps times per arm (planning a short statement is
// microseconds; repetition keeps the timer out of the noise) and executed
// once.
func RunAdaptiveBench(queries, empRows, reps int, seed int64) *AdaptiveBenchResult {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: empRows, Depts: 100, Seed: seed})
	db.Analyze(stats.AnalyzeOptions{})
	corpus := adaptiveCorpus(queries, rand.New(rand.NewSource(seed)))
	if reps < 1 {
		reps = 1
	}

	greedyOpts := systemr.DefaultOptions()
	greedyOpts.GreedyThreshold = 63
	arms := []struct {
		name string
		opts systemr.Options
	}{
		{"dp", systemr.DefaultOptions()},
		{"greedy", greedyOpts},
	}

	out := &AdaptiveBenchResult{
		Queries: queries, EmpRows: empRows, Seed: seed, Reps: reps,
		GOMAXPROCS: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
		IdenticalResults: true,
	}
	keys := make([][]string, len(arms))
	for ai, arm := range arms {
		pt := AdaptiveArm{Name: arm.name, Tiers: map[string]int{}}
		for _, text := range corpus {
			q := mustBuild(db, text)
			t0 := time.Now()
			plan, opt := optimize(db, q, arm.opts)
			for r := 1; r < reps; r++ {
				plan, opt = optimize(db, mustBuild(db, text), arm.opts)
			}
			pt.PlanNanos += time.Since(t0).Nanoseconds()
			pt.Tiers[string(opt.Tier)]++
			_, c := plan.Estimate()
			pt.TotalEstCost += c
			t1 := time.Now()
			res, _ := runPlan(db, q, plan)
			pt.ExecNanos += time.Since(t1).Nanoseconds()
			keys[ai] = append(keys[ai], resultKey(res.Rows))
		}
		pt.MeanPlanMicros = float64(pt.PlanNanos) / float64(queries*reps) / 1e3
		pt.MeanExecMicros = float64(pt.ExecNanos) / float64(queries) / 1e3
		out.Arms = append(out.Arms, pt)
	}
	for i := range keys[0] {
		if keys[0][i] != keys[1][i] {
			out.IdenticalResults = false
		}
	}
	if g := out.Arms[1].PlanNanos; g > 0 {
		out.PlanSpeedup = float64(out.Arms[0].PlanNanos) / float64(g)
	}
	if d := out.Arms[0].ExecNanos; d > 0 {
		out.ExecRegression = float64(out.Arms[1].ExecNanos) / float64(d)
	}
	return out
}

// E26AdaptivePlanning reproduces the adaptive-planning tradeoff: greedy join
// ordering cuts planning time on short statements while execution time stays
// bounded (§3's enumeration cost vs. §4's plan quality, resolved adaptively).
func E26AdaptivePlanning() Table {
	r := RunAdaptiveBench(60, 5000, 5, 7)
	t := Table{
		ID:    "E26",
		Title: "Adaptive planning: greedy fast path vs full DP",
		Claim: "for short statements, greedy join ordering planned faster than DP enumeration with bounded execution-time regression and identical results",
		Headers: []string{"arm", "mean plan (µs)", "mean exec (µs)", "total est cost", "tiers"},
	}
	for _, a := range r.Arms {
		var tiers []string
		for k, v := range a.Tiers {
			tiers = append(tiers, fmt.Sprintf("%s:%d", k, v))
		}
		sort.Strings(tiers)
		t.Rows = append(t.Rows, []string{
			a.Name, f1(a.MeanPlanMicros), f1(a.MeanExecMicros), f0(a.TotalEstCost), strings.Join(tiers, " "),
		})
	}
	t.Notes = fmt.Sprintf("plan speedup %.2fx, exec regression %.2fx, identical results: %v (%d statements, GOMAXPROCS=%d)",
		r.PlanSpeedup, r.ExecRegression, r.IdenticalResults, r.Queries, r.GOMAXPROCS)
	return t
}
