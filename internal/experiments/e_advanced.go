package experiments

import (
	"fmt"

	"repro/internal/cascades"
	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/matview"
	"repro/internal/parallel"
	"repro/internal/qgm"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/udp"
	"repro/internal/workload"
)

// E14Architectures compares the enumeration architectures of §6: Starburst's
// forward-chaining rewrite + bottom-up planning against Volcano/Cascades'
// single-phase goal-driven memo search, with System-R DP as the reference.
func E14Architectures() Table {
	t := Table{
		ID:      "E14",
		Title:   "Enumeration architectures (§6.1 vs §6.2)",
		Claim:   "Cascades memoizes (group, property) tasks top-down; Starburst separates heuristic rewrite from cost-based planning",
		Headers: []string{"relations", "architecture", "plans costed", "rules fired", "memo hits", "best est cost"},
	}
	for _, n := range []int{3, 4, 5, 6} {
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1000 * (1 + i%3)
		}
		db := workload.Chain(workload.ChainConfig{Tables: n, RowsPer: sizes, Seed: int64(n) * 7})
		db.Analyze(stats.AnalyzeOptions{})
		qs := workload.ChainQuery(n)

		// System-R DP.
		q1 := mustBuild(db, qs)
		plan1, opt1 := optimize(db, q1, systemr.DefaultOptions())
		_, c1 := plan1.Estimate()
		t.Rows = append(t.Rows, []string{d(n), "system-r DP", d(opt1.Metrics.PlansCosted), "-", "-", f1(c1)})

		// Starburst: rewrite engine + bottom-up planning.
		q2 := mustBuild(db, qs)
		sb := &qgm.Optimizer{
			Engine: qgm.DefaultEngine(),
			Plan:   systemr.New(stats.NewEstimator(q2.Meta), cost.DefaultModel(), systemr.DefaultOptions()),
		}
		plan2, st2, err := sb.Optimize(q2)
		if err != nil {
			panic(err)
		}
		_, c2 := plan2.Estimate()
		t.Rows = append(t.Rows, []string{
			d(n), "starburst", d(st2.Plan.PlansCosted), d(st2.Rewrite.TotalFired), "-", f1(c2)})

		// Cascades.
		q3 := mustBuild(db, qs)
		co := cascades.New(stats.NewEstimator(q3.Meta), cost.DefaultModel(), cascades.DefaultOptions())
		plan3, err := co.Optimize(q3)
		if err != nil {
			panic(err)
		}
		_, c3 := plan3.Estimate()
		t.Rows = append(t.Rows, []string{
			d(n), "cascades", d(co.Metrics.PlansCosted), d(co.Metrics.RulesFired),
			d(co.Metrics.WinnerHits + co.Memo().DedupHits), f1(c3)})
	}
	// A multi-block query shows Starburst's rewrite phase actually firing.
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 2000, Depts: 60})
	db.Analyze(stats.AnalyzeOptions{})
	nested := buildRaw(db, `SELECT d.dname FROM Dept d WHERE EXISTS
		(SELECT 1 FROM Emp e WHERE e.did = d.did AND e.sal > 12000)`)
	sb2 := &qgm.Optimizer{
		Engine: qgm.DefaultEngine(),
		Plan:   systemr.New(stats.NewEstimator(nested.Meta), cost.DefaultModel(), systemr.DefaultOptions()),
	}
	planN, stN, err := sb2.Optimize(nested)
	if err != nil {
		panic(err)
	}
	_, cn := planN.Estimate()
	t.Rows = append(t.Rows, []string{
		"2+subq", "starburst", d(stN.Plan.PlansCosted), d(stN.Rewrite.TotalFired), "-", f1(cn)})
	t.Notes = "all architectures share one cost model and executor; best costs track each other while search effort differs; the subquery row shows rewrite rules (unnesting) firing"
	return t
}

// E15ExpensivePredicates reproduces §7.2: rank ordering is optimal without
// joins; with joins the rank heuristic can lose, while treating the applied
// set as a physical property in DP is optimal.
func E15ExpensivePredicates() Table {
	t := Table{
		ID:      "E15",
		Title:   "Expensive user-defined predicates (§7.2, [29,30] vs [8])",
		Claim:   "pushdown is unsound for expensive predicates; rank order is optimal only without joins; DP with placement property is optimal",
		Headers: []string{"scenario", "pushdown cost", "rank cost", "optimal (DP) cost", "pushdown penalty"},
	}
	scenarios := []struct {
		name string
		pl   *udp.Pipeline
	}{
		{"cheap predicate", &udp.Pipeline{
			InputRows: 100000,
			Joins:     []udp.JoinStep{{Factor: 0.01, CostPerRow: 0.01}},
			Preds:     []udp.Predicate{{Name: "p", Cost: 0.001, Sel: 0.5}},
		}},
		{"expensive predicate, selective join", &udp.Pipeline{
			InputRows: 100000,
			Joins:     []udp.JoinStep{{Factor: 0.001, CostPerRow: 0.01}},
			Preds:     []udp.Predicate{{Name: "image-match", Cost: 50, Sel: 0.5}},
		}},
		{"two predicates, expanding then reducing join", &udp.Pipeline{
			InputRows: 10000,
			Joins: []udp.JoinStep{
				{Factor: 3.0, CostPerRow: 0.02},
				{Factor: 0.01, CostPerRow: 0.02},
			},
			Preds: []udp.Predicate{
				{Name: "cheap", Cost: 0.05, Sel: 0.3},
				{Name: "costly", Cost: 20, Sel: 0.6},
			},
		}},
	}
	for _, sc := range scenarios {
		push := sc.pl.Cost(sc.pl.PushdownPlacement())
		rank := sc.pl.Cost(sc.pl.RankPlacement())
		_, opt := sc.pl.OptimalPlacement()
		t.Rows = append(t.Rows, []string{
			sc.name, f1(push), f1(rank), f1(opt), fmt.Sprintf("%.1fx", push/opt),
		})
	}
	t.Notes = "for cheap predicates pushdown is fine; for expensive ones it pays the predicate on every pre-join row"
	return t
}

// E16MatViews reproduces §7.3: answering queries using materialized views,
// and the cost of optimizing rewrites separately versus together.
func E16MatViews() Table {
	t := Table{
		ID:      "E16",
		Title:   "Materialized views (§7.3)",
		Claim:   "substituting a view avoids recomputation; enumerating rewrites inside one optimization bounds the added effort",
		Headers: []string{"query", "base est cost", "view est cost", "improvement", "extra plans costed"},
	}
	db := workload.Star(workload.StarConfig{FactRows: 60000, DimRows: []int{50}, Seed: 16})
	db.Analyze(stats.AnalyzeOptions{})
	if _, err := matview.Materialize(db.Cat, db.Store, "sales_by_k1",
		"SELECT s.k1 AS k1, COUNT(*) AS cnt, SUM(s.amount) AS amt FROM sales s GROUP BY s.k1"); err != nil {
		panic(err)
	}
	if tab, ok := db.Store.Table("sales_by_k1"); ok {
		stats.Analyze(tab, stats.AnalyzeOptions{})
	}
	queries := []struct{ name, sql string }{
		{"exact", "SELECT s.k1, COUNT(*), SUM(s.amount) FROM sales s GROUP BY s.k1"},
		{"rollup-total", "SELECT COUNT(*), SUM(s.amount) FROM sales s GROUP BY s.k1"},
		{"unanswerable", "SELECT s.qty, SUM(s.amount) FROM sales s GROUP BY s.qty"},
	}
	for _, qc := range queries {
		q := mustBuild(db, qc.sql)
		basePlan, baseOpt := optimize(db, q, systemr.DefaultOptions())
		_, baseCost := basePlan.Estimate()

		best := baseCost
		extra := 0
		for _, rw := range matview.RewriteWithViews(q, db.Cat) {
			logical.PruneColumns(rw.Query)
			plan, opt := optimize(db, rw.Query, systemr.DefaultOptions())
			extra += opt.Metrics.PlansCosted
			if _, c := plan.Estimate(); c < best {
				best = c
			}
		}
		improvement := "-"
		if best < baseCost {
			improvement = fmt.Sprintf("%.1fx", baseCost/best)
		}
		_ = baseOpt
		t.Rows = append(t.Rows, []string{qc.name, f1(baseCost), f1(best), improvement, d(extra)})
	}
	t.Notes = "the unanswerable query pays no extra enumeration (no rewrite matches)"
	return t
}

// E17Parallel reproduces §7.1: response time scales with processors, total
// work does not shrink, and ignoring repartitioning cost in phase one (XPRS)
// can pick a plan that is worse once communication is expensive (Hasan).
func E17Parallel() Table {
	t := Table{
		ID:      "E17",
		Title:   "Two-phase parallel optimization (§7.1, XPRS vs Hasan)",
		Claim:   "parallelism reduces response time, not work; phase one must see communication costs when they matter",
		Headers: []string{"config", "strategy", "serial cost", "response time", "comm cost", "exchanged rows"},
	}
	db := workload.Star(workload.StarConfig{FactRows: 40000, DimRows: []int{40, 40}, Seed: 17})
	db.Analyze(stats.AnalyzeOptions{})
	q := mustBuild(db, workload.StarQuery(2, 5))
	estf := func() *stats.Estimator { return stats.NewEstimator(q.Meta) }

	for _, cfg := range []parallel.Config{
		{Degree: 8, CommCostPerRow: 0.0001},
		{Degree: 8, CommCostPerRow: 0.05},
	} {
		label := fmt.Sprintf("degree=%d comm=%.4f", cfg.Degree, cfg.CommCostPerRow)
		for _, strat := range []parallel.Strategy{parallel.XPRS, parallel.CommAware} {
			res, err := parallel.Optimize(q, estf, cost.DefaultModel(), cfg, strat)
			if err != nil {
				panic(err)
			}
			_, sc := res.Serial.Estimate()
			t.Rows = append(t.Rows, []string{
				label, strat.String(), f1(sc), f1(res.Parallel.ResponseTime),
				f1(res.Parallel.CommCost), f0(res.Parallel.ExchangedRows),
			})
		}
	}
	// Degree sweep with the XPRS plan.
	plan, _ := optimize(db, q, systemr.DefaultOptions())
	for _, degree := range []int{1, 2, 4, 8, 16} {
		par := parallel.Parallelize(plan, parallel.Config{Degree: degree, CommCostPerRow: 0.0005}, cost.DefaultModel())
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("sweep degree=%d", degree), "-", f1(par.TotalWork), f1(par.ResponseTime),
			f1(par.CommCost), f0(par.ExchangedRows),
		})
	}
	t.Notes = "comm-aware phase one matches XPRS under cheap communication and dominates under expensive communication"
	return t
}

// E18QueryGraph reproduces Figure 3: the query graph of the paper's Emp/Dept
// example, and shows how graph connectivity drives enumeration (Cartesian-
// product avoidance).
func E18QueryGraph() Table {
	t := Table{
		ID:      "E18",
		Title:   "Query graphs (Fig. 3) and connectivity-driven enumeration",
		Claim:   "the query graph captures join structure; disconnected subsets are skipped unless Cartesian products are enabled",
		Headers: []string{"query shape", "nodes", "edges", "local preds", "DP subsets (no CP)", "DP subsets (with CP)"},
	}
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 2000, Depts: 50})
	db.Analyze(stats.AnalyzeOptions{})
	// The Fig. 3 query: Emp ⋈ Dept plus a self-join through the manager.
	paperQ := `SELECT e.name FROM Emp e, Dept d, Emp e2
		WHERE e.did = d.did AND d.mgr = e2.eid AND e.sal > 5000`

	chain5 := workload.Chain(workload.ChainConfig{Tables: 5, RowsPer: []int{500, 500, 500, 500, 500}, Seed: 18})
	chain5.Analyze(stats.AnalyzeOptions{})
	star3 := workload.Star(workload.StarConfig{FactRows: 5000, DimRows: []int{20, 20, 20}, Seed: 18})
	star3.Analyze(stats.AnalyzeOptions{})

	cases := []struct {
		name string
		db   *workload.DB
		sql  string
	}{
		{"paper Fig.3 (Emp/Dept/Emp)", db, paperQ},
		{"chain-5", chain5, workload.ChainQuery(5)},
		{"star-3", star3, `SELECT sales.amount FROM sales, dim1, dim2, dim3
			WHERE sales.k1 = dim1.k AND sales.k2 = dim2.k AND sales.k3 = dim3.k`},
	}
	for _, c := range cases {
		q := mustBuild(c.db, c.sql)
		var g *logical.QueryGraph
		logical.VisitRel(q.Root, func(e logical.RelExpr) {
			if g != nil {
				return
			}
			if leaves, preds, ok := logical.ExtractJoinBlock(e); ok && len(leaves) > 1 {
				g = logical.BuildQueryGraph(leaves, preds)
			}
		})
		if g == nil {
			continue
		}
		local := 0
		for _, l := range g.Local {
			local += len(l)
		}
		_, noCP := optimize(c.db, mustBuild(c.db, c.sql), systemr.DefaultOptions())
		_, withCP := optimize(c.db, mustBuild(c.db, c.sql), systemr.Options{
			InterestingOrders: true, CartesianProducts: true, MaxRelations: 16})
		t.Rows = append(t.Rows, []string{
			c.name, d(len(g.Nodes)), d(len(g.Edges)), d(local),
			d(noCP.Metrics.PlansCosted), d(withCP.Metrics.PlansCosted),
		})
	}
	t.Notes = "plans costed (not subsets) shown: connectivity pruning shrinks the effective space most for chains"
	return t
}
