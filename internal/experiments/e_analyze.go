package experiments

// e_analyze.go drives a seeded random query corpus through the instrumented
// executor (the machinery behind EXPLAIN ANALYZE) and aggregates per-operator
// estimate-vs-actual q-errors. The resulting distribution quantifies how far
// the §5 statistical model drifts from runtime truth across operator kinds —
// the execution-feedback signal. RunAnalyzeBench is shared by experiment E22
// and `benchharness analyze`, which writes BENCH_analyze.json.

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/physical"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/workload"
)

// parallelize plans the exchanges for one optimized plan at the given degree.
func parallelize(plan physical.Plan, degree int) physical.Plan {
	model := cost.DefaultModel()
	par := parallel.Parallelize(plan, parallel.Config{Degree: degree, CommCostPerRow: model.CommCostPerRow}, model)
	return par.Plan
}

// AnalyzeOffender is one worst-misestimation observation in the report.
type AnalyzeOffender struct {
	Node   string  `json:"node"`
	Est    float64 `json:"est_rows"`
	Actual float64 `json:"actual_rows"`
	QError float64 `json:"q_error"`
}

// AnalyzeBenchPoint is the q-error distribution at one parallelism degree.
type AnalyzeBenchPoint struct {
	Degree        int     `json:"degree"`
	Nodes         int     `json:"nodes"`
	MeanQError    float64 `json:"mean_q_error"`
	GeoMeanQError float64 `json:"geomean_q_error"`
	P50QError     float64 `json:"p50_q_error"`
	P90QError     float64 `json:"p90_q_error"`
	P99QError     float64 `json:"p99_q_error"`
	MaxQError     float64 `json:"max_q_error"`
	// WithinFactor2 is the fraction of plan nodes whose estimate is within a
	// factor of two of the measured cardinality.
	WithinFactor2  float64           `json:"within_factor_2"`
	WorstOffenders []AnalyzeOffender `json:"worst_offenders"`
}

// AnalyzeBenchResult is the full corpus run.
type AnalyzeBenchResult struct {
	Queries int                 `json:"queries"`
	EmpRows int                 `json:"emp_rows"`
	Seed    int64               `json:"seed"`
	Points  []AnalyzeBenchPoint `json:"points"`
}

// analyzeCorpus generates n seeded random SPJ/aggregate/ORDER BY queries over
// the Emp/Dept schema: selections with conjunctive range predicates (where the
// independence assumption can err), equijoins, grouped aggregates and sorted
// prefixes.
func analyzeCorpus(n int, rng *rand.Rand) []string {
	qs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		sal := 2000 + rng.Intn(18000)
		age := 20 + rng.Intn(45)
		did := rng.Intn(100)
		budget := 50 + rng.Intn(950)
		switch i % 5 {
		case 0: // selection with a single range predicate
			qs = append(qs, fmt.Sprintf(
				"SELECT eid, sal FROM Emp WHERE sal > %d", sal))
		case 1: // conjunction: independence assumption territory
			qs = append(qs, fmt.Sprintf(
				"SELECT eid FROM Emp WHERE sal > %d AND age < %d AND did <> %d", sal, age, did))
		case 2: // equijoin with a dimension filter
			qs = append(qs, fmt.Sprintf(
				"SELECT e.name, d.dname FROM Emp e, Dept d WHERE e.did = d.did AND d.budget > %d", budget))
		case 3: // grouped aggregate over a filtered scan
			qs = append(qs, fmt.Sprintf(
				"SELECT did, COUNT(*), AVG(sal) FROM Emp WHERE age >= %d GROUP BY did", age))
		default: // join + aggregate + ORDER BY prefix
			qs = append(qs, fmt.Sprintf(
				"SELECT d.loc, SUM(e.sal) FROM Emp e, Dept d WHERE e.did = d.did AND e.sal > %d GROUP BY d.loc ORDER BY d.loc LIMIT 3", sal))
		}
	}
	return qs
}

// RunAnalyzeBench executes the random corpus with per-operator metrics
// enabled at each degree and aggregates the q-error distribution per degree.
func RunAnalyzeBench(queries, empRows int, degrees []int, seed int64) *AnalyzeBenchResult {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: empRows, Depts: 100, Seed: seed})
	db.Analyze(stats.AnalyzeOptions{})
	corpus := analyzeCorpus(queries, rand.New(rand.NewSource(seed)))

	maxDeg := 1
	for _, d := range degrees {
		if d > maxDeg {
			maxDeg = d
		}
	}
	var pool *exec.Pool
	if maxDeg > 1 {
		pool = exec.NewPool(maxDeg)
		defer pool.Close()
	}

	out := &AnalyzeBenchResult{Queries: queries, EmpRows: empRows, Seed: seed}
	for _, deg := range degrees {
		ring := physical.NewFeedbackRing(queries * 32)
		for _, text := range corpus {
			q := mustBuild(db, text)
			plan, _ := optimize(db, q, systemr.DefaultOptions())
			if deg > 1 {
				plan = parallelize(plan, deg)
			}
			ctx := exec.NewCtx(db.Store, q.Meta)
			if deg > 1 {
				ctx.Parallelism = deg
				ctx.Pool = pool
			}
			rm := ctx.EnableAnalyze()
			if _, err := exec.RunPlanQuery(plan, q, ctx); err != nil {
				panic(fmt.Sprintf("experiments: analyze bench %q: %v", text, err))
			}
			ring.RecordPlan(plan, q.Meta, rm, text)
		}
		out.Points = append(out.Points, summarizeQErrors(deg, ring))
	}
	return out
}

// summarizeQErrors reduces the ring's observations to a distribution point.
func summarizeQErrors(degree int, ring *physical.FeedbackRing) AnalyzeBenchPoint {
	entries := ring.Entries()
	qs := make([]float64, len(entries))
	sum, logSum, within2 := 0.0, 0.0, 0
	for i, e := range entries {
		qs[i] = e.QError
		sum += e.QError
		logSum += math.Log(e.QError)
		if e.QError <= 2 {
			within2++
		}
	}
	sort.Float64s(qs)
	pctile := func(p float64) float64 {
		if len(qs) == 0 {
			return 0
		}
		i := int(p * float64(len(qs)-1))
		return qs[i]
	}
	pt := AnalyzeBenchPoint{Degree: degree, Nodes: len(entries)}
	if len(entries) > 0 {
		pt.MeanQError = sum / float64(len(entries))
		pt.GeoMeanQError = math.Exp(logSum / float64(len(entries)))
		pt.P50QError = pctile(0.50)
		pt.P90QError = pctile(0.90)
		pt.P99QError = pctile(0.99)
		pt.MaxQError = qs[len(qs)-1]
		pt.WithinFactor2 = float64(within2) / float64(len(entries))
	}
	for _, w := range ring.WorstOffenders(5) {
		pt.WorstOffenders = append(pt.WorstOffenders, AnalyzeOffender{
			Node: w.Node, Est: w.Est, Actual: w.Actual, QError: w.QError,
		})
	}
	return pt
}

// E22AnalyzeFeedback runs the random corpus under per-operator
// instrumentation and reports the estimate-vs-actual q-error distribution at
// serial and parallel degrees. Fresh statistics on this mostly-uniform data
// keep the median near 1; the tail (conjunctions, post-join aggregates) is
// where the independence and uniformity assumptions of §5 give way.
func E22AnalyzeFeedback() Table {
	t := Table{
		ID:      "E22",
		Title:   "Execution feedback: estimate-vs-actual q-error (EXPLAIN ANALYZE)",
		Claim:   "fresh stats keep median q-error ~1; misestimation concentrates in conjunctive and post-join nodes",
		Headers: []string{"degree", "nodes", "geomean", "p50", "p90", "p99", "max", "within 2x"},
	}
	res := RunAnalyzeBench(60, 8000, []int{1, 4}, 22)
	for _, p := range res.Points {
		t.Rows = append(t.Rows, []string{
			d(p.Degree), d(p.Nodes),
			f2(p.GeoMeanQError), f2(p.P50QError), f2(p.P90QError), f2(p.P99QError), f2(p.MaxQError),
			pct(p.WithinFactor2),
		})
	}
	if len(res.Points) > 0 && len(res.Points[0].WorstOffenders) > 0 {
		w := res.Points[0].WorstOffenders[0]
		t.Notes = fmt.Sprintf("worst offender: %s est=%.0f actual=%.0f q_err=%.1f",
			w.Node, w.Est, w.Actual, w.QError)
	}
	return t
}
