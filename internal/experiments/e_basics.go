package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/rewrite"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/workload"
)

// E1OperatorTree reproduces Figure 1: a three-way join whose chosen plan is a
// physical operator tree mixing join algorithms — a merge join feeding an
// index nested-loop join, exactly the paper's illustration.
func E1OperatorTree() Table {
	// One join predicate has no index (payload), one does (fk = pk), and the
	// query wants an order — inviting a mix of hash/merge, index-nested-loop
	// and sort operators in one tree, as in the paper's figure.
	db := workload.Chain(workload.ChainConfig{Tables: 3, RowsPer: []int{5000, 5000, 200}, Seed: 1})
	db.Analyze(stats.AnalyzeOptions{})
	q := mustBuild(db, `SELECT r1.payload FROM r1, r2, r3
		WHERE r1.payload = r2.payload AND r2.fk = r3.pk AND r3.payload < 100
		ORDER BY r1.payload`)
	plan, _ := optimize(db, q, systemr.DefaultOptions())
	_, counters := runPlan(db, q, plan)
	t := Table{
		ID:      "E1",
		Title:   "Figure 1: physical operator tree",
		Claim:   "SQL executes as a tree of physical operators; the optimizer mixes join algorithms within one plan",
		Headers: []string{"operator", "est rows", "est cost"},
	}
	var walk func(p physical.Plan, depth int)
	walk = func(p physical.Plan, depth int) {
		rows, c := p.Estimate()
		name := fmt.Sprintf("%T", p)
		name = strings.Repeat("  ", depth) + name[strings.LastIndex(name, ".")+1:]
		t.Rows = append(t.Rows, []string{name, f0(rows), f1(c)})
		for _, ch := range physical.Children(p) {
			walk(ch, depth+1)
		}
	}
	walk(plan, 0)
	t.Notes = fmt.Sprintf("measured: %d simulated pages, %d rows processed, %d index seeks",
		counters.PagesRead, counters.RowsProcessed, counters.IndexSeeks)
	return t
}

// E2DPvsNaive reproduces §3's enumeration claim: dynamic programming costs
// O(n·2^(n-1)) plans where exhaustive permutation enumeration costs O(n!),
// while finding a plan at least as good.
func E2DPvsNaive() Table {
	t := Table{
		ID:      "E2",
		Title:   "DP vs naive join enumeration (§3)",
		Claim:   "DP enumerates O(n·2^n) plans instead of O(n!) with no loss of plan quality",
		Headers: []string{"relations", "DP plans costed", "naive plans costed", "ratio", "DP cost", "naive cost"},
	}
	rows := []int{500, 800, 300, 700, 400, 600, 350, 450}
	for n := 3; n <= 7; n++ {
		db := workload.Chain(workload.ChainConfig{Tables: n, RowsPer: rows[:n], Seed: int64(n)})
		db.Analyze(stats.AnalyzeOptions{})
		q := mustBuild(db, workload.ChainQuery(n))
		dpPlan, dpOpt := optimize(db, q, systemr.DefaultOptions())
		nvOpt := systemr.New(stats.NewEstimator(q.Meta), cost.DefaultModel(), systemr.DefaultOptions())
		nvPlan, err := nvOpt.OptimizeNaive(q)
		if err != nil {
			panic(err)
		}
		_, dpCost := dpPlan.Estimate()
		_, nvCost := nvPlan.Estimate()
		t.Rows = append(t.Rows, []string{
			d(n), d(dpOpt.Metrics.PlansCosted), d(nvOpt.Metrics.PlansCosted),
			f1(float64(nvOpt.Metrics.PlansCosted) / float64(dpOpt.Metrics.PlansCosted)),
			f1(dpCost), f1(nvCost),
		})
	}
	t.Notes = "DP cost must never exceed naive cost; the plans-costed ratio grows factorially"
	return t
}

// E3InterestingOrders reproduces the §3 interesting-orders claim: pruning
// without regard to orderings discards plans whose sortedness pays off later.
func E3InterestingOrders() Table {
	t := Table{
		ID:      "E3",
		Title:   "Interesting orders (§3)",
		Claim:   "plans are comparable only within the same (expression, order); order-oblivious pruning loses optimality",
		Headers: []string{"relations", "with IO: cost", "entries kept", "without IO: cost", "entries kept", "penalty"},
	}
	for _, n := range []int{3, 4, 5} {
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 20000
		}
		db := workload.Chain(workload.ChainConfig{Tables: n, RowsPer: sizes, Seed: int64(n) * 3})
		db.Analyze(stats.AnalyzeOptions{})
		q := mustBuild(db, workload.ChainQuery(n))
		// Classic System R repertoire: nested-loop and sort-merge only, so
		// that orderings (not hash or index joins) carry the plans.
		base := systemr.Options{InterestingOrders: true, MaxRelations: 16,
			DisableHashJoin: true, DisableINLJoin: true}
		withPlan, withOpt := optimize(db, q, base)
		noIO := base
		noIO.InterestingOrders = false
		withoutPlan, withoutOpt := optimize(db, q, noIO)
		_, cw := withPlan.Estimate()
		_, co := withoutPlan.Estimate()
		t.Rows = append(t.Rows, []string{
			d(n), f1(cw), d(withOpt.Metrics.EntriesKept),
			f1(co), d(withoutOpt.Metrics.EntriesKept),
			fmt.Sprintf("%.2fx", co/cw),
		})
	}
	t.Notes = "penalty ≥ 1.00x: the interesting-order table retains more entries and never yields a worse plan"
	return t
}

// E4BushyAndStar reproduces §4.1.1: bushy trees widen the space (at a sharp
// enumeration cost) and star queries benefit from Cartesian products among
// selective dimension tables.
func E4BushyAndStar() Table {
	t := Table{
		ID:      "E4",
		Title:   "Linear vs bushy spaces; Cartesian products on star queries (§4.1.1, Fig. 2b)",
		Claim:   "bushy enumeration costs far more but can win; star queries profit from dimension Cartesian products",
		Headers: []string{"scenario", "space", "plans costed", "best est cost"},
	}
	// Chain query: linear vs bushy.
	db := workload.Chain(workload.ChainConfig{Tables: 6, RowsPer: []int{3000, 50, 3000, 50, 3000, 50}, Seed: 4})
	db.Analyze(stats.AnalyzeOptions{})
	q := mustBuild(db, workload.ChainQuery(6))
	linPlan, linOpt := optimize(db, q, systemr.DefaultOptions())
	bushyPlan, bushyOpt := optimize(db, q, systemr.Options{Bushy: true, InterestingOrders: true, MaxRelations: 16})
	_, lc := linPlan.Estimate()
	_, bc := bushyPlan.Estimate()
	t.Rows = append(t.Rows,
		[]string{"chain-6", "linear", d(linOpt.Metrics.PlansCosted), f1(lc)},
		[]string{"chain-6", "bushy", d(bushyOpt.Metrics.PlansCosted), f1(bc)},
	)
	// Star query: with and without Cartesian products.
	star := workload.Star(workload.StarConfig{FactRows: 40000, DimRows: []int{40, 40}, Seed: 4})
	star.Analyze(stats.AnalyzeOptions{})
	sq := mustBuild(star, `SELECT sales.amount FROM sales, dim1, dim2
		WHERE sales.k1 = dim1.k AND sales.k2 = dim2.k AND dim1.filt < 1 AND dim2.filt < 1`)
	noCP, noCPOpt := optimize(star, sq, systemr.Options{InterestingOrders: true, MaxRelations: 16})
	withCP, withCPOpt := optimize(star, sq, systemr.Options{InterestingOrders: true, Bushy: true, CartesianProducts: true, MaxRelations: 16})
	_, nc := noCP.Estimate()
	_, wc := withCP.Estimate()
	t.Rows = append(t.Rows,
		[]string{"star-2dim", "no Cartesian", d(noCPOpt.Metrics.PlansCosted), f1(nc)},
		[]string{"star-2dim", "with Cartesian", d(withCPOpt.Metrics.PlansCosted), f1(wc)},
	)
	t.Notes = "the wider space never yields a worse best plan; its enumeration cost is the tradeoff"
	return t
}

// E5OuterjoinReorder reproduces §4.1.2: Join(R, S LOJ T) = Join(R,S) LOJ T
// when the join predicate spans R and S only. A selective join over R makes
// evaluating the join block before the outerjoin a large win; the identity
// must still be applied cost-based (the paper's caveat), which the second
// scenario shows by making the original form cheaper.
func E5OuterjoinReorder() Table {
	t := Table{
		ID:      "E5",
		Title:   "Join/outerjoin associativity (§4.1.2)",
		Claim:   "Join(R, S LOJ T) = Join(R,S) LOJ T lets joins evaluate before outerjoins; use is cost-based",
		Headers: []string{"scenario", "form", "est cost", "pages", "rows processed"},
	}
	measure := func(db *workload.DB, scenario, qs string) {
		before := mustBuild(db, qs)
		planB, _ := optimize(db, before, systemr.DefaultOptions())
		_, cb := planB.Estimate()
		_, countersB := runPlan(db, before, planB)
		after := mustBuild(db, qs)
		rewrite.AssociateJoinOuterjoin(after)
		logical.NormalizeQuery(after, logical.DefaultNormalize())
		planA, _ := optimize(db, after, systemr.DefaultOptions())
		_, ca := planA.Estimate()
		_, countersA := runPlan(db, after, planA)
		t.Rows = append(t.Rows,
			[]string{scenario, "original (LOJ inside)", f1(cb), d64(countersB.PagesRead), d64(countersB.RowsProcessed)},
			[]string{scenario, "reassociated (joins first)", f1(ca), d64(countersA.PagesRead), d64(countersA.RowsProcessed)},
		)
	}
	// Selective R: the join block shrinks the stream before the outerjoin.
	db := workload.Chain(workload.ChainConfig{Tables: 3, RowsPer: []int{200, 20000, 20000}, Seed: 5})
	db.Analyze(stats.AnalyzeOptions{})
	measure(db, "selective R",
		`SELECT r1.payload FROM r1 JOIN (r2 LEFT OUTER JOIN r3 ON r2.fk = r3.pk) ON r1.fk = r2.pk`)
	// Unselective R: the identity does not pay; a cost-based optimizer keeps
	// the original shape.
	db2 := workload.Chain(workload.ChainConfig{Tables: 3, RowsPer: []int{20000, 200, 20000}, Seed: 5})
	db2.Analyze(stats.AnalyzeOptions{})
	measure(db2, "unselective R",
		`SELECT r1.payload FROM r1 JOIN (r2 LEFT OUTER JOIN r3 ON r2.fk = r3.pk) ON r1.fk = r2.pk`)
	t.Notes = "both forms return identical rows; the identity is applied only when it lowers estimated cost"
	return t
}
