package experiments

// e_compression.go measures compressed columnar execution (dictionary +
// run-length encoded segments with code-native kernels): a scan+filter over a
// low-cardinality string corpus with long shared prefixes, compressed vs
// DisableCompression directories over identical data, against the in-memory
// heap as the correctness baseline. The compressed arm must read a fraction
// of the bytes (encoded blocks on disk), filter without decoding (string
// equality becomes one integer compare per row against a translated
// dictionary code), and return bit-identical rows at every parallelism
// degree. RunCompressionBench is shared by experiment E29 (small workload)
// and `benchharness compression`, which writes the larger run to
// BENCH_compression.json.

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/storage"
)

// CompressionBenchRow is one (parallelism, arm) measurement.
type CompressionBenchRow struct {
	Parallelism int `json:"parallelism"`
	// Arm is "compressed" (dictionary/RLE encoding on) or "uncompressed"
	// (plain blocks, the DisableCompression control).
	Arm           string  `json:"arm"`
	ColdWallSec   float64 `json:"cold_wall_seconds"`
	WarmWallSec   float64 `json:"warm_wall_seconds"`
	MemWallSec    float64 `json:"mem_wall_seconds"`
	ColdBytesRead int64   `json:"cold_bytes_read"`
	BlocksDict    int64   `json:"blocks_dict"`
	BlocksRLE     int64   `json:"blocks_rle"`
	BlocksPlain   int64   `json:"blocks_plain"`
	// WarmRowsPerSec is scan+filter throughput with the column cache hot —
	// the kernel-speed comparison, free of disk noise.
	WarmRowsPerSec float64 `json:"warm_rows_per_sec"`
	OutputRows     int     `json:"output_rows"`
	// Identical certifies the disk arm returned exactly the in-memory
	// engine's rows, in order, floats bit-exact.
	Identical bool `json:"identical"`
}

// CompressionBenchResult is the full sweep plus host information and the
// headline ratios (parallelism 1).
type CompressionBenchResult struct {
	Rows        int                   `json:"rows"`
	SegmentRows int                   `json:"segment_rows"`
	GOMAXPROCS  int                   `json:"gomaxprocs"`
	CPUs        int                   `json:"cpus"`
	Workloads   []CompressionBenchRow `json:"workloads"`
	// BytesReduction is uncompressed/compressed cold bytes read; Speedup is
	// compressed/uncompressed warm scan+filter throughput (both serial).
	BytesReduction float64 `json:"bytes_reduction"`
	Speedup        float64 `json:"speedup"`
}

func compressionBenchDef() *catalog.Table {
	return &catalog.Table{
		Name: "cev",
		Cols: []catalog.Column{
			{Name: "id", Kind: datum.KindInt, NotNull: true},
			{Name: "city", Kind: datum.KindString},
			{Name: "status", Kind: datum.KindInt},
			{Name: "v", Kind: datum.KindFloat},
		},
	}
}

// RunCompressionBench loads a corpus whose string column has 8 distinct
// values sharing a long prefix (the realistic worst case for plain string
// compares, the best case for dictionary codes) and whose status column is
// sorted (long constant runs), then runs a string-equality scan+filter on
// compressed and uncompressed stores at each parallelism degree. Best of
// reps.
func RunCompressionBench(rows, segRows, reps int) *CompressionBenchResult {
	if segRows <= 0 {
		segRows = storage.DefaultSegmentRows
	}
	def := compressionBenchDef()
	cities := make([]string, 8)
	for i := range cities {
		cities[i] = fmt.Sprintf("warehouse-district-fulfillment-zone-%d", i)
	}
	rng := rand.New(rand.NewSource(29))
	data := make([]datum.Row, rows)
	for i := range data {
		data[i] = datum.Row{
			datum.NewInt(int64(i)),
			datum.NewString(cities[i%len(cities)]),
			datum.NewInt(int64(i * 10 / rows)), // sorted, 10 long runs
			datum.NewFloat(rng.NormFloat64() * 100),
		}
	}
	fail := func(err error) {
		if err != nil {
			panic(fmt.Sprintf("experiments: compression bench: %v", err))
		}
	}
	memStore := storage.NewStore()
	memTab, err := memStore.CreateTable(def)
	fail(err)
	fail(memTab.InsertBatch(data))

	dirs := map[string]string{}
	for _, arm := range []string{"compressed", "uncompressed"} {
		dir, err := os.MkdirTemp("", "qopt-compression-bench-*")
		fail(err)
		defer os.RemoveAll(dir)
		dirs[arm] = dir
		st := storage.NewStoreWith(storage.StoreConfig{
			Dir: dir, SegmentRows: segRows, DisableCompression: arm == "uncompressed",
		})
		tab, err := st.CreateTable(def)
		fail(err)
		fail(tab.InsertBatch(data))
		fail(tab.Flush())
	}

	md := logical.NewMetadata()
	cols := md.AddTable(def, "cev")
	// The city filter runs first over every row — the kernel under test: one
	// dictionary-code compare vs a long-shared-prefix string compare. The v
	// filter then thins survivors to ~0.6% so output materialization (paid
	// equally by both arms) stays out of the ratio; v is random per segment,
	// so unlike status it cannot be zone-map pruned away.
	plan := &physical.TableScan{
		Table: def, Binding: "cev", Cols: cols, ColOrds: []int{0, 1, 2, 3},
		Filter: []logical.Scalar{
			&logical.Cmp{
				Op: logical.CmpEq, L: &logical.Col{ID: cols[1]},
				R: &logical.Const{Val: datum.NewString(cities[3])},
			},
			&logical.Cmp{
				Op: logical.CmpGt, L: &logical.Col{ID: cols[3]},
				R: &logical.Const{Val: datum.NewFloat(250)},
			},
		},
	}
	run := func(store *storage.Store, par int) (float64, *exec.Counters, []datum.Row) {
		ctx := exec.NewCtx(store, md)
		ctx.Parallelism = par
		defer ctx.Close()
		start := time.Now()
		res, err := exec.Run(plan, ctx)
		sec := time.Since(start).Seconds()
		fail(err)
		return sec, &ctx.Counters, res.Rows
	}

	out := &CompressionBenchResult{
		Rows: rows, SegmentRows: segRows,
		GOMAXPROCS: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU(),
	}
	for _, par := range []int{1, 4, 8} {
		memSec, _, memRows := run(memStore, par)
		for _, arm := range []string{"compressed", "uncompressed"} {
			var best CompressionBenchRow
			for rep := 0; rep < reps; rep++ {
				// Cold: a fresh store over the same directory starts with an
				// empty column cache.
				store := storage.NewStoreWith(storage.StoreConfig{Dir: dirs[arm], SegmentRows: segRows})
				if _, err := store.CreateTable(def); err != nil {
					fail(err)
				}
				coldSec, coldCtr, _ := run(store, par)
				warmSec, _, warmRows := run(store, par)
				if rep == 0 || warmSec < best.WarmWallSec {
					identical := len(warmRows) == len(memRows)
					if identical {
						for i := range warmRows {
							if warmRows[i].String() != memRows[i].String() {
								identical = false
								break
							}
						}
					}
					best = CompressionBenchRow{
						Parallelism: par, Arm: arm,
						ColdWallSec: coldSec, WarmWallSec: warmSec, MemWallSec: memSec,
						ColdBytesRead: coldCtr.BytesRead,
						BlocksDict:    coldCtr.BlocksDict,
						BlocksRLE:     coldCtr.BlocksRLE,
						BlocksPlain:   coldCtr.BlocksPlain,
						WarmRowsPerSec: float64(rows) / warmSec,
						OutputRows:     len(warmRows), Identical: identical,
					}
				}
			}
			out.Workloads = append(out.Workloads, best)
		}
	}
	var compBytes, plainBytes int64
	var compTput, plainTput float64
	for _, w := range out.Workloads {
		if w.Parallelism != 1 {
			continue
		}
		if w.Arm == "compressed" {
			compBytes, compTput = w.ColdBytesRead, w.WarmRowsPerSec
		} else {
			plainBytes, plainTput = w.ColdBytesRead, w.WarmRowsPerSec
		}
	}
	if compBytes > 0 {
		out.BytesReduction = float64(plainBytes) / float64(compBytes)
	}
	if plainTput > 0 {
		out.Speedup = compTput / plainTput
	}
	return out
}

// E29Compression measures dictionary + run-length encoded segments with
// code-native kernels: string equality over a dictionary column translates to
// one integer compare per row, and encoded blocks shrink cold-scan I/O, while
// the `identical` column certifies bit-exact results against the in-memory
// heap at every parallelism degree.
func E29Compression() Table {
	t := Table{
		ID:      "E29",
		Title:   "Compressed columnar execution: dictionary + RLE segments, code-native kernels",
		Claim:   "encoded blocks cut scan bytes and string filters run as code compares, at identical results",
		Headers: []string{"par", "arm", "cold ms", "warm ms", "mem ms", "cold bytes", "dict/rle/plain", "out rows", "identical"},
	}
	res := RunCompressionBench(40000, 1024, 2)
	for _, w := range res.Workloads {
		t.Rows = append(t.Rows, []string{
			d(w.Parallelism),
			w.Arm,
			f2(w.ColdWallSec * 1000),
			f2(w.WarmWallSec * 1000),
			f2(w.MemWallSec * 1000),
			d(int(w.ColdBytesRead)),
			fmt.Sprintf("%d/%d/%d", w.BlocksDict, w.BlocksRLE, w.BlocksPlain),
			d(w.OutputRows),
			fmt.Sprintf("%v", w.Identical),
		})
	}
	t.Notes = fmt.Sprintf("rows=%d segment_rows=%d gomaxprocs=%d cpus=%d; bytes_reduction=%.1fx speedup=%.1fx (serial, warm); parallel wall-clock only separates from serial on multi-CPU hosts",
		res.Rows, res.SegmentRows, res.GOMAXPROCS, res.CPUs, res.BytesReduction, res.Speedup)
	return t
}
