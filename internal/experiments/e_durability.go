package experiments

// e_durability.go measures what crash consistency costs (and saves): the
// wall-clock overhead of CRC32C verification on cold and warm full scans
// (verification happens once per block decode, so a hot column cache should
// amortize it to ~nothing), recovery time — manifest replay plus full segment
// verification — as a function of segment count, and a full-directory scrub
// over the same state. RunDurabilityBench is shared by experiment E28 (small
// workload) and `benchharness durability`, which writes the larger run to
// BENCH_durability.json.

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/storage"
)

// DurabilityScanRow is one checksum arm of the full-scan comparison.
type DurabilityScanRow struct {
	// Arm is "checksum" (verify-on-decode, the default) or "nochecksum"
	// (DisableChecksums, trust the bytes).
	Arm         string  `json:"arm"`
	ColdWallSec float64 `json:"cold_wall_seconds"`
	WarmWallSec float64 `json:"warm_wall_seconds"`
	OutputRows  int     `json:"output_rows"`
	// Identical certifies this arm returned exactly the in-memory engine's
	// rows, in order, floats bit-exact.
	Identical bool `json:"identical"`
}

// DurabilityRecoveryRow is one point of the recovery-time sweep.
type DurabilityRecoveryRow struct {
	Segments       int     `json:"segments"`
	Rows           int     `json:"rows"`
	RecoverWallSec float64 `json:"recover_wall_seconds"`
	ScrubWallSec   float64 `json:"scrub_wall_seconds"`
	// Clean certifies recovery adopted every segment with no quarantine, no
	// manifest repair and no corruption, and the scrub found nothing.
	Clean bool `json:"clean"`
}

// DurabilityBenchResult is the full sweep plus host information.
type DurabilityBenchResult struct {
	Rows        int `json:"rows"`
	SegmentRows int `json:"segment_rows"`
	GOMAXPROCS  int `json:"gomaxprocs"`
	CPUs        int `json:"cpus"`
	// ColdOverhead and WarmOverhead are checksum/nochecksum wall-clock
	// ratios for the full scan (1.0 = free).
	ColdOverhead float64                 `json:"cold_overhead"`
	WarmOverhead float64                 `json:"warm_overhead"`
	Scans        []DurabilityScanRow     `json:"scans"`
	Recovery     []DurabilityRecoveryRow `json:"recovery"`
}

// RunDurabilityBench loads one table, seals it, and (a) full-scans it cold
// and warm with verification on and off, against the in-memory heap as the
// correctness baseline; (b) reopens directories of recoveryCounts segments
// each, timing recovery and a follow-up scrub. Best of reps.
func RunDurabilityBench(rows, segRows, reps int, recoveryCounts []int) *DurabilityBenchResult {
	if segRows <= 0 {
		segRows = storage.DefaultSegmentRows
	}
	def := storageBenchDef()
	rng := rand.New(rand.NewSource(28))
	data := make([]datum.Row, rows)
	for i := range data {
		data[i] = datum.Row{datum.NewInt(int64(i)), datum.NewFloat(rng.NormFloat64() * 100)}
	}
	fill := func(dir string, rows []datum.Row) {
		s := storage.NewStoreWith(storage.StoreConfig{Dir: dir, SegmentRows: segRows})
		tab, err := s.CreateTable(def)
		if err == nil {
			err = tab.InsertBatch(rows)
		}
		if err == nil {
			err = tab.Flush()
		}
		if err != nil {
			panic(fmt.Sprintf("experiments: durability bench: %v", err))
		}
	}
	dir, err := os.MkdirTemp("", "qopt-durability-bench-*")
	if err != nil {
		panic(fmt.Sprintf("experiments: durability bench: %v", err))
	}
	defer os.RemoveAll(dir)
	fill(dir, data)

	memStore := storage.NewStore()
	memTab, err := memStore.CreateTable(def)
	if err == nil {
		err = memTab.InsertBatch(data)
	}
	if err != nil {
		panic(fmt.Sprintf("experiments: durability bench: %v", err))
	}

	md := logical.NewMetadata()
	cols := md.AddTable(def, "m")
	plan := &physical.TableScan{Table: def, Binding: "m", Cols: cols, ColOrds: []int{0, 1}}
	run := func(store *storage.Store) (float64, []datum.Row) {
		ctx := exec.NewCtx(store, md)
		ctx.Vectorize = true
		start := time.Now()
		res, err := exec.Run(plan, ctx)
		sec := time.Since(start).Seconds()
		if err != nil {
			panic(fmt.Sprintf("experiments: durability bench: %v", err))
		}
		return sec, res.Rows
	}
	_, memRows := run(memStore)

	out := &DurabilityBenchResult{
		Rows: rows, SegmentRows: segRows,
		GOMAXPROCS: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU(),
	}
	arms := []struct {
		name    string
		disable bool
	}{{"checksum", false}, {"nochecksum", true}}
	best := make([]DurabilityScanRow, len(arms))
	// Arms interleave within each rep (and GC before every timed run) so both
	// see the same allocator and page-cache state; best of reps per metric,
	// since cold and warm vary independently at millisecond scales.
	for rep := 0; rep < reps; rep++ {
		for ai, arm := range arms {
			cold := storage.NewStoreWith(storage.StoreConfig{
				Dir: dir, SegmentRows: segRows, DisableChecksums: arm.disable,
			})
			if _, err := cold.CreateTable(def); err != nil {
				panic(fmt.Sprintf("experiments: durability bench: %v", err))
			}
			runtime.GC()
			coldSec, _ := run(cold)
			runtime.GC()
			warmSec, warmRows := run(cold)
			if s, _ := run(cold); s < warmSec {
				warmSec = s
			}
			if rep == 0 {
				identical := len(warmRows) == len(memRows)
				if identical {
					for i := range warmRows {
						if warmRows[i].String() != memRows[i].String() {
							identical = false
							break
						}
					}
				}
				best[ai] = DurabilityScanRow{
					Arm: arm.name, ColdWallSec: coldSec, WarmWallSec: warmSec,
					OutputRows: len(warmRows), Identical: identical,
				}
				continue
			}
			if coldSec < best[ai].ColdWallSec {
				best[ai].ColdWallSec = coldSec
			}
			if warmSec < best[ai].WarmWallSec {
				best[ai].WarmWallSec = warmSec
			}
		}
	}
	out.Scans = append(out.Scans, best...)
	if out.Scans[1].ColdWallSec > 0 {
		out.ColdOverhead = out.Scans[0].ColdWallSec / out.Scans[1].ColdWallSec
	}
	if out.Scans[1].WarmWallSec > 0 {
		out.WarmOverhead = out.Scans[0].WarmWallSec / out.Scans[1].WarmWallSec
	}

	for _, nseg := range recoveryCounts {
		rdir, err := os.MkdirTemp("", "qopt-durability-recover-*")
		if err != nil {
			panic(fmt.Sprintf("experiments: durability bench: %v", err))
		}
		n := nseg * segRows
		rdata := make([]datum.Row, n)
		for i := range rdata {
			rdata[i] = datum.Row{datum.NewInt(int64(i)), datum.NewFloat(float64(i))}
		}
		fill(rdir, rdata)
		var row DurabilityRecoveryRow
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			s := storage.NewStoreWith(storage.StoreConfig{Dir: rdir, SegmentRows: segRows})
			if _, err := s.CreateTable(def); err != nil {
				panic(fmt.Sprintf("experiments: durability bench: %v", err))
			}
			recSec := time.Since(start).Seconds()
			start = time.Now()
			found := s.Scrub()
			scrubSec := time.Since(start).Seconds()
			clean := len(found) == 0
			for _, rep := range s.Recovery() {
				clean = clean && rep.Clean()
			}
			if rep == 0 || recSec < row.RecoverWallSec {
				row = DurabilityRecoveryRow{
					Segments: nseg, Rows: n,
					RecoverWallSec: recSec, ScrubWallSec: scrubSec, Clean: clean,
				}
			}
		}
		out.Recovery = append(out.Recovery, row)
		os.RemoveAll(rdir)
	}
	return out
}

// E28Durability measures the price of crash consistency: CRC32C verification
// on every block decode costs a bounded fraction of a cold scan and ~nothing
// warm (the column cache pays it once), full recovery — manifest replay plus
// whole-file verification of every adopted segment — scales linearly in
// segment count, and the `identical` column certifies verification changes no
// answer.
func E28Durability() Table {
	t := Table{
		ID:      "E28",
		Title:   "Crash consistency: checksum overhead and recovery time",
		Claim:   "verified reads cost ~nothing warm; recovery is linear in segment count",
		Headers: []string{"measurement", "arm", "cold ms", "warm ms", "out rows", "identical/clean"},
	}
	res := RunDurabilityBench(20000, 1024, 2, []int{4, 16, 64})
	for _, w := range res.Scans {
		t.Rows = append(t.Rows, []string{
			"full scan", w.Arm,
			f2(w.ColdWallSec * 1000), f2(w.WarmWallSec * 1000),
			d(w.OutputRows), fmt.Sprintf("%v", w.Identical),
		})
	}
	for _, r := range res.Recovery {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("recover %d segs", r.Segments),
			fmt.Sprintf("%d rows", r.Rows),
			f2(r.RecoverWallSec * 1000), f2(r.ScrubWallSec * 1000),
			"-", fmt.Sprintf("%v", r.Clean),
		})
	}
	t.Notes = fmt.Sprintf("segment_rows=%d gomaxprocs=%d cpus=%d; cold overhead=%.2fx warm overhead=%.2fx; recover = open+verify every manifest entry, scrub = full re-read",
		res.SegmentRows, res.GOMAXPROCS, res.CPUs, res.ColdOverhead, res.WarmOverhead)
	return t
}
