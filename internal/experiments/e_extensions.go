package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/datum"
	"repro/internal/histogram"
	"repro/internal/parametric"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/workload"
)

// E19Parametric exercises the §7.4 "future work" direction the paper points
// to: parametric / dynamic query optimization ([19,33]) — defer the plan
// choice until the parameter value is known.
func E19Parametric() Table {
	t := Table{
		ID:      "E19",
		Title:   "Extension: parametric / dynamic plans (§7.4, [19,33])",
		Claim:   "the optimal plan changes with the parameter; a plan frozen for one value pays a growing penalty elsewhere",
		Headers: []string{"param (did <=)", "diagram plan", "dynamic pages", "static-plan pages", "regret"},
	}
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 100000, Depts: 2000})
	db.Analyze(stats.AnalyzeOptions{Buckets: 40})
	var candidates []datum.D
	for _, v := range []int64{1, 5, 20, 100, 400, 1000, 1999} {
		candidates = append(candidates, datum.NewInt(v))
	}
	dp, err := parametric.Prepare(db, "SELECT name FROM Emp WHERE did <= $1", candidates, systemr.DefaultOptions())
	if err != nil {
		panic(err)
	}
	rep := datum.NewInt(1) // static plan frozen for the most selective case
	for _, v := range []int64{1, 20, 400, 1999} {
		val := datum.NewInt(v)
		_, dyn, err := dp.Execute(db, val)
		if err != nil {
			panic(err)
		}
		_, static, err := dp.ExecuteStatic(db, rep, val)
		if err != nil {
			panic(err)
		}
		sig := "?"
		for _, r := range dp.Ranges {
			if datum.Compare(val, r.Lo) >= 0 && datum.Compare(val, r.Hi) <= 0 {
				sig = shortSig(r.Signature)
			}
		}
		t.Rows = append(t.Rows, []string{
			d(int(v)), sig, d64(dyn.PagesRead), d64(static.PagesRead),
			fmt.Sprintf("%.1fx", float64(static.PagesRead)/float64(max64(dyn.PagesRead, 1))),
		})
	}
	t.Notes = fmt.Sprintf("plan diagram has %d distinct plans over the parameter space; the static plan was frozen at did<=1", dp.NumPlans())
	return t
}

func shortSig(sig string) string {
	if len(sig) > 40 {
		return sig[:37] + "..."
	}
	return sig
}

// E20JointDistribution exercises the §5.1.1 "joint distribution" option:
// 2-D histograms remove the independence error on correlated conjunctions.
func E20JointDistribution() Table {
	t := Table{
		ID:      "E20",
		Title:   "Extension: 2-D histograms for correlated columns (§5.1.1, [45,51])",
		Claim:   "joint distributions fix the independence assumption's underestimate on correlated predicates",
		Headers: []string{"correlation", "range", "actual sel", "independence est", "2-D histogram est"},
	}
	rng := rand.New(rand.NewSource(20))
	for _, noise := range []int64{10, 200, 1000} {
		var as, bs []datum.D
		n := 30000
		for i := 0; i < n; i++ {
			a := rng.Int63n(1000)
			b := a + rng.Int63n(noise*2+1) - noise
			as = append(as, datum.NewInt(a))
			bs = append(bs, datum.NewInt(b))
		}
		label := "strong"
		if noise >= 1000 {
			label = "none"
		} else if noise >= 200 {
			label = "moderate"
		}
		h2 := histogram.Build2D(as, bs, 20, 10)
		ha := histogram.BuildEquiDepth(as, 30)
		hb := histogram.BuildEquiDepth(bs, 30)
		for _, hi := range []int64{200, 600} {
			exact := 0.0
			for i := range as {
				if as[i].Int() <= hi && bs[i].Int() <= hi {
					exact++
				}
			}
			exact /= float64(n)
			joint := h2.SelectivityRanges(datum.Null, false, datum.NewInt(hi), true,
				datum.Null, false, datum.NewInt(hi), true)
			indep := ha.SelectivityRange(datum.Null, false, datum.NewInt(hi), true) *
				hb.SelectivityRange(datum.Null, false, datum.NewInt(hi), true)
			t.Rows = append(t.Rows, []string{
				label, fmt.Sprintf("a,b <= %d", hi), pct(exact), pct(indep), pct(joint),
			})
		}
	}
	t.Notes = "with no correlation both estimators agree; under strong correlation independence underestimates ~2x while the 2-D histogram stays within a point"
	return t
}
