package experiments

// e_parallel.go measures the morsel-driven parallel executor: the same
// optimized plan is run serially and at increasing degrees through
// parallel.Parallelize, and wall-clock throughput is compared against the
// cost model's predicted ResponseTime (§7.1). RunParallelBench is shared by
// experiment E21 (small workload) and `benchharness parallel`, which writes
// the larger run to BENCH_parallel.json.

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/parallel"
	"repro/internal/physical"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/workload"
)

// ParallelBenchPoint is one measured degree of the serial-vs-parallel sweep.
type ParallelBenchPoint struct {
	Degree              int     `json:"degree"`
	WallSeconds         float64 `json:"wall_seconds"`
	RowsPerSec          float64 `json:"rows_per_sec"`
	Speedup             float64 `json:"speedup_vs_serial"`
	ModeledResponseTime float64 `json:"modeled_response_time"`
	ExchangedRows       int64   `json:"exchanged_rows"`
}

// ParallelBenchResult is the full sweep, with enough host information to
// interpret the speedups (degree > GOMAXPROCS cannot show real scaling).
type ParallelBenchResult struct {
	FactRows                 int                  `json:"fact_rows"`
	OutputRows               int                  `json:"output_rows"`
	GOMAXPROCS               int                  `json:"gomaxprocs"`
	CPUs                     int                  `json:"cpus"`
	DefaultCommCostPerRow    float64              `json:"default_comm_cost_per_row"`
	CalibratedCommCostPerRow float64              `json:"calibrated_comm_cost_per_row"`
	Points                   []ParallelBenchPoint `json:"points"`
}

// RunParallelBench optimizes one large star join serially, then executes it
// at each degree on the morsel engine, best-of-`reps` wall clock. It also
// calibrates the cost model's CommCostPerRow from the measured exchange
// overhead.
func RunParallelBench(factRows int, degrees []int, reps int) *ParallelBenchResult {
	db := workload.Star(workload.StarConfig{FactRows: factRows, DimRows: []int{60, 60}, Seed: 21})
	db.Analyze(stats.AnalyzeOptions{})
	q := mustBuild(db, workload.StarQuery(2, 30))
	plan, _ := optimize(db, q, systemr.DefaultOptions())
	model := cost.DefaultModel()

	maxDeg := 1
	for _, d := range degrees {
		if d > maxDeg {
			maxDeg = d
		}
	}
	pool := exec.NewPool(maxDeg)
	defer pool.Close()

	out := &ParallelBenchResult{
		FactRows:              factRows,
		GOMAXPROCS:            runtime.GOMAXPROCS(0),
		CPUs:                  runtime.NumCPU(),
		DefaultCommCostPerRow: model.CommCostPerRow,
	}

	timeRun := func(p physical.Plan, degree int) (float64, *exec.Result, exec.Counters) {
		best := -1.0
		var res *exec.Result
		var counters exec.Counters
		for rep := 0; rep < reps; rep++ {
			ctx := exec.NewCtx(db.Store, q.Meta)
			if degree > 1 {
				ctx.Parallelism = degree
				ctx.Pool = pool
			}
			start := time.Now()
			r, err := exec.RunPlanQuery(p, q, ctx)
			sec := time.Since(start).Seconds()
			if err != nil {
				panic(fmt.Sprintf("experiments: parallel bench: %v", err))
			}
			if best < 0 || sec < best {
				best, res, counters = sec, r, ctx.Counters
			}
		}
		return best, res, counters
	}

	var serialSec float64
	for _, d := range degrees {
		runPlan := plan
		modeled, _ := plan.Estimate()
		if d > 1 {
			par := parallel.Parallelize(plan, parallel.Config{Degree: d, CommCostPerRow: model.CommCostPerRow}, model)
			runPlan = par.Plan
			modeled = par.ResponseTime
		}
		sec, res, counters := timeRun(runPlan, d)
		if d == 1 || serialSec == 0 {
			serialSec = sec
		}
		out.OutputRows = len(res.Rows)
		pt := ParallelBenchPoint{
			Degree:              d,
			WallSeconds:         sec,
			RowsPerSec:          float64(factRows) / sec,
			Speedup:             serialSec / sec,
			ModeledResponseTime: modeled,
			ExchangedRows:       counters.ExchangedRows,
		}
		out.Points = append(out.Points, pt)
	}

	out.CalibratedCommCostPerRow = calibrateComm(db, pool, reps)
	return out
}

// calibrateComm measures the exchange overhead per row against the sequential
// scan cost per page — the executor's realization of the model's cost unit —
// and converts it into a CommCostPerRow for the §7.1 model.
func calibrateComm(db *workload.DB, pool *exec.Pool, reps int) float64 {
	q := mustBuild(db, "SELECT sales.k1, sales.qty FROM sales")
	scanPlan, _ := optimize(db, q, systemr.DefaultOptions())
	const degree = 4

	timed := func(p physical.Plan, parallelism int) (float64, exec.Counters, int) {
		best := -1.0
		var counters exec.Counters
		rows := 0
		for rep := 0; rep < reps; rep++ {
			ctx := exec.NewCtx(db.Store, q.Meta)
			if parallelism > 1 {
				ctx.Parallelism = parallelism
				ctx.Pool = pool
			}
			start := time.Now()
			res, err := exec.Run(p, ctx)
			sec := time.Since(start).Seconds()
			if err != nil {
				panic(fmt.Sprintf("experiments: calibrate: %v", err))
			}
			if best < 0 || sec < best {
				best, counters, rows = sec, ctx.Counters, len(res.Rows)
			}
		}
		return best, counters, rows
	}

	scanSec, counters, rows := timed(scanPlan, 1)
	if counters.PagesRead == 0 || rows == 0 {
		return cost.DefaultModel().CommCostPerRow
	}
	scanSecPerPage := scanSec / float64(counters.PagesRead)

	// The exchange's marginal cost = (scan+exchange) - scan, both parallel.
	scan4Sec, _, _ := timed(scanPlan, degree)
	ex := &physical.Exchange{Input: scanPlan, Degree: degree, PartitionCols: scanPlan.Columns()[:1]}
	exSec, _, _ := timed(ex, degree)
	perRow := (exSec - scan4Sec) / float64(rows)
	return cost.CalibrateCommPerRow(perRow, scanSecPerPage)
}

// E21ParallelExecution runs the measured serial-vs-parallel sweep on a small
// workload: §7.1's claim — response time shrinks with degree while total work
// does not — checked against the real executor rather than the cost model
// alone. On hosts where GOMAXPROCS=1 the measured speedup stays ~1 (there is
// no second core to run on); the modeled response time column still shows the
// intended scaling.
func E21ParallelExecution() Table {
	t := Table{
		ID:      "E21",
		Title:   "Morsel-driven parallel execution, measured (§7.1)",
		Claim:   "executed exchanges deliver wall-clock speedup bounded by cores; modeled response time tracks 1/degree",
		Headers: []string{"degree", "wall ms", "rows/sec", "speedup", "modeled response", "exchanged rows"},
	}
	res := RunParallelBench(30000, []int{1, 2, 4, 8}, 3)
	for _, p := range res.Points {
		t.Rows = append(t.Rows, []string{
			d(p.Degree),
			f2(p.WallSeconds * 1000),
			f0(p.RowsPerSec),
			f2(p.Speedup),
			f1(p.ModeledResponseTime),
			d64(p.ExchangedRows),
		})
	}
	t.Notes = fmt.Sprintf(
		"gomaxprocs=%d cpus=%d; calibrated CommCostPerRow=%.4f (default %.4f)",
		res.GOMAXPROCS, res.CPUs, res.CalibratedCommCostPerRow, res.DefaultCommCostPerRow)
	return t
}
