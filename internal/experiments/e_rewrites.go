package experiments

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/rewrite"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/workload"
)

// E6GroupByPushdown reproduces Figure 4 / §4.1.3: evaluating a group-by
// before the join can shrink the join input dramatically; the sweep varies
// the data-reduction factor (fact rows per group).
func E6GroupByPushdown() Table {
	t := Table{
		ID:      "E6",
		Title:   "Group-by pushdown / eager aggregation (§4.1.3, Fig. 4)",
		Claim:   "performing the group-by early reduces join input; the benefit scales with the reduction factor",
		Headers: []string{"fact rows", "groups", "plain rows processed", "eager rows processed", "speedup"},
	}
	for _, factRows := range []int{5000, 20000, 50000} {
		for _, dimRows := range []int{10, 100} {
			db := workload.Star(workload.StarConfig{FactRows: factRows, DimRows: []int{dimRows}, Seed: 6})
			db.Analyze(stats.AnalyzeOptions{})
			qs := `SELECT dim1.attr, SUM(sales.amount), COUNT(*) FROM sales, dim1
				WHERE sales.k1 = dim1.k GROUP BY dim1.attr`
			plain := mustBuild(db, qs)
			_, plainCounters := runNaive(db, plain)

			eager := mustBuild(db, qs)
			rewrite.PushDownGroupBy(eager)
			_, eagerCounters := runNaive(db, eager)

			t.Rows = append(t.Rows, []string{
				d(factRows), d(dimRows),
				d64(plainCounters.RowsProcessed), d64(eagerCounters.RowsProcessed),
				fmt.Sprintf("%.1fx", float64(plainCounters.RowsProcessed)/float64(eagerCounters.RowsProcessed)),
			})
		}
	}
	t.Notes = "speedup grows with rows-per-group: the aggregation's data-reduction effect (paper: 'significant reduction in the number of tuples')"
	return t
}

// E7ViewMerging reproduces §4.2.1: unfolding a two-table SPJ view into the
// parent block turns a 2-relation join into a 3-relation one, letting the
// optimizer start from the selective outer table instead of materializing
// the whole view.
func E7ViewMerging() Table {
	db := workload.Chain(workload.ChainConfig{Tables: 3, RowsPer: []int{20000, 20000, 20000}, Seed: 7})
	db.Analyze(stats.AnalyzeOptions{})
	if err := db.Cat.AddView(&catalog.View{Name: "v23",
		SQL: "SELECT r2.pk AS pk, r2.payload AS p2, r3.payload AS p3 FROM r2, r3 WHERE r2.fk = r3.pk"}); err != nil {
		panic(err)
	}
	qs := "SELECT v.p2 FROM r1, v23 v WHERE r1.fk = v.pk AND r1.payload < 10"

	// Unmerged: the view stays a nested block (no project/select merging),
	// forcing the optimizer to treat it as an opaque leaf.
	unmerged := buildRaw(db, qs)
	logical.NormalizeQuery(unmerged, logical.NormalizeOptions{FoldConstants: true})
	planU, optU := optimize(db, unmerged, systemr.DefaultOptions())
	_, cu := planU.Estimate()
	_, countersU := runPlan(db, unmerged, planU)

	// Merged: full normalization collapses the view into the parent block.
	merged := mustBuild(db, qs)
	planM, optM := optimize(db, merged, systemr.DefaultOptions())
	_, cm := planM.Estimate()
	_, countersM := runPlan(db, merged, planM)

	return Table{
		ID:      "E7",
		Title:   "View merging (§4.2.1)",
		Claim:   "unfolding view definitions exposes join reordering unavailable to nested evaluation",
		Headers: []string{"form", "block relations", "plans costed", "est cost", "pages", "rows processed"},
		Rows: [][]string{
			{"unmerged (opaque view)", d(blockSize(unmerged)), d(optU.Metrics.PlansCosted), f1(cu),
				d64(countersU.PagesRead), d64(countersU.RowsProcessed)},
			{"merged (unfolded)", d(blockSize(merged)), d(optM.Metrics.PlansCosted), f1(cm),
				d64(countersM.PagesRead), d64(countersM.RowsProcessed)},
		},
		Notes: "merged: the selective r1 filter drives index joins into r2 and r3; unmerged: the full r2⋈r3 view is computed first",
	}
}

func blockSize(q *logical.Query) int {
	best := 1
	logical.VisitRel(q.Root, func(e logical.RelExpr) {
		if leaves, _, ok := logical.ExtractJoinBlock(e); ok {
			scans := 0
			for _, l := range leaves {
				switch t := l.(type) {
				case *logical.Scan:
					scans++
				case *logical.Select:
					if _, isScan := t.Input.(*logical.Scan); isScan {
						scans++
					}
				}
			}
			if scans > best {
				best = scans
			}
		}
	})
	return best
}

// E8Unnesting reproduces §4.2.2: merging correlated nested subqueries into
// joins beats tuple-iteration execution, and the outerjoin form preserves
// the COUNT-over-empty-group semantics.
func E8Unnesting() Table {
	t := Table{
		ID:      "E8",
		Title:   "Merging nested subqueries (§4.2.2, Kim/Dayal)",
		Claim:   "unnesting replaces per-tuple subquery evaluation with set-oriented joins; COUNT needs the outerjoin form",
		Headers: []string{"emps", "query", "nested: subq evals", "rows processed", "unnested: rows processed", "speedup"},
	}
	for _, emps := range []int{1000, 4000, 16000} {
		db := workload.EmpDept(workload.EmpDeptConfig{Emps: emps, Depts: 100})
		db.Analyze(stats.AnalyzeOptions{})
		queries := []struct {
			name string
			sql  string
		}{
			{"EXISTS", `SELECT d.dname FROM Dept d WHERE EXISTS (SELECT 1 FROM Emp e WHERE e.did = d.did AND e.sal > 15000)`},
			{"corr IN", `SELECT e.name FROM Emp e WHERE e.did IN (SELECT d.did FROM Dept d WHERE d.loc = 'Denver' AND e.age < 30)`},
			{"COUNT agg", `SELECT d.dname FROM Dept d WHERE d.num_machines >= (SELECT COUNT(*) FROM Emp e WHERE e.did = d.did)`},
		}
		for _, qc := range queries {
			nested := mustBuild(db, qc.sql)
			_, nc := runNaive(db, nested)

			flat := mustBuild(db, qc.sql)
			rewrite.UnnestSubqueries(flat)
			logical.NormalizeQuery(flat, logical.DefaultNormalize())
			planF, _ := optimize(db, flat, systemr.DefaultOptions())
			_, fc := runPlan(db, flat, planF)

			t.Rows = append(t.Rows, []string{
				d(emps), qc.name, d64(nc.SubqueryEvals), d64(nc.RowsProcessed),
				d64(fc.RowsProcessed),
				fmt.Sprintf("%.0fx", float64(nc.RowsProcessed)/float64(max64(fc.RowsProcessed, 1))),
			})
		}
	}
	t.Notes = "the nested form evaluates the inner block once per outer tuple; the merged form is one (semi/outer) join"
	return t
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// E9MagicSets reproduces §4.3: passing the set of relevant keys into a view
// restricts the view's computation. The measured quantity is the paper's:
// rows flowing into the view's aggregation and groups it computes. The
// PartialResult tradeoff appears as extra work outside the view.
func E9MagicSets() Table {
	t := Table{
		ID:      "E9",
		Title:   "Magic / semijoin information passing (§4.3)",
		Claim:   "restricting a view to keys the outer query can use avoids redundant computation in the view",
		Headers: []string{"emps", "selectivity", "plain: rows aggregated", "groups", "magic: rows aggregated", "groups", "filter-side extra rows"},
	}
	for _, emps := range []int{4000, 12000} {
		for _, ageLimit := range []int{22, 35, 60} {
			db := workload.EmpDept(workload.EmpDeptConfig{Emps: emps, Depts: 150})
			db.Analyze(stats.AnalyzeOptions{})
			if err := db.Cat.AddView(&catalog.View{Name: "DepAvgSal",
				SQL: "SELECT e.did AS did, AVG(e.sal) AS avgsal FROM Emp e GROUP BY e.did"}); err != nil {
				panic(err)
			}
			qs := fmt.Sprintf(`SELECT e.eid FROM Emp e, Dept d, DepAvgSal v
				WHERE e.did = d.did AND e.did = v.did
				AND e.age < %d AND d.budget > 800 AND e.sal > v.avgsal`, ageLimit)

			plain := mustBuild(db, qs)
			pIn, pGroups := viewAggWork(db, plain)

			magic := mustBuild(db, qs)
			st := rewrite.ApplyMagic(magic)
			if st.ViewsRestricted != 1 {
				panic("E9: magic did not apply")
			}
			logical.NormalizeQuery(magic, logical.DefaultNormalize())
			mIn, mGroups := viewAggWork(db, magic)

			t.Rows = append(t.Rows, []string{
				d(emps), fmt.Sprintf("age<%d", ageLimit),
				f0(pIn), f0(pGroups), f0(mIn), f0(mGroups),
				f0(pIn), // PartialResult re-scans roughly the plain view input
			})
		}
	}
	t.Notes = "magic aggregates only groups the outer query can use; the paper's tradeoff is the cost of computing the Filter view"
	return t
}

// viewAggWork finds the view's GroupBy in the query and measures the rows
// entering it and the groups it produces.
func viewAggWork(db *workload.DB, q *logical.Query) (inRows, groups float64) {
	var gb *logical.GroupBy
	logical.VisitRel(q.Root, func(e logical.RelExpr) {
		if g, ok := e.(*logical.GroupBy); ok && len(g.Aggs) > 0 {
			gb = g
		}
	})
	if gb == nil {
		return 0, 0
	}
	inQ := &logical.Query{Meta: q.Meta, Root: gb.Input, ResultCols: gb.Input.OutputCols().Ordered()}
	inRes, _ := runNaive(db, inQ)
	outQ := &logical.Query{Meta: q.Meta, Root: gb, ResultCols: gb.OutputCols().Ordered()}
	outRes, _ := runNaive(db, outQ)
	return float64(len(inRes.Rows)), float64(len(outRes.Rows))
}
