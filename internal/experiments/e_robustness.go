package experiments

// e_robustness.go measures the resource governor: the same star join is run
// with shrinking memory budgets — forcing hash joins, aggregations and sorts
// to degrade to their spilling forms — and the overhead of disk-backed
// execution is compared against the in-memory run, row-for-row identical.
// The second half measures cancellation latency: how long a mid-flight query
// takes to unwind after its context fires, at increasing parallelism.
// RunRobustnessBench is shared by experiment E23 and `benchharness
// robustness`, which writes the larger run to BENCH_robustness.json.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/workload"
)

// SpillBenchPoint is one budget level of the graceful-degradation sweep.
type SpillBenchPoint struct {
	// BudgetBytes is the per-query memory cap; 0 means unlimited (the
	// baseline row).
	BudgetBytes  int64   `json:"budget_bytes"`
	WallSeconds  float64 `json:"wall_seconds"`
	Spills       int64   `json:"spills"`
	SpillBytes   int64   `json:"spill_bytes"`
	PeakMemBytes int64   `json:"peak_mem_bytes"`
	// OverheadVsInMemory is WallSeconds relative to the unlimited run.
	OverheadVsInMemory float64 `json:"overhead_vs_in_memory"`
	OutputRows         int     `json:"output_rows"`
	// RowsIdentical records that the budgeted run returned exactly the
	// baseline's rows in the baseline's order.
	RowsIdentical bool `json:"rows_identical"`
}

// CancelBenchPoint is one degree of the cancellation-latency sweep.
type CancelBenchPoint struct {
	Degree int `json:"degree"`
	// LatencySeconds is the wall time from the context firing mid-query to
	// the executor returning context.Canceled.
	LatencySeconds float64 `json:"latency_seconds"`
	// QuerySeconds is the uncanceled wall time at the same degree, for scale.
	QuerySeconds float64 `json:"query_seconds"`
}

// RobustnessBenchResult is the full governor sweep.
type RobustnessBenchResult struct {
	FactRows     int                `json:"fact_rows"`
	GOMAXPROCS   int                `json:"gomaxprocs"`
	CPUs         int                `json:"cpus"`
	SpillPoints  []SpillBenchPoint  `json:"spill_points"`
	CancelPoints []CancelBenchPoint `json:"cancel_points"`
}

// RunRobustnessBench optimizes one star join, runs it unbudgeted and then
// under each budget (best-of-reps wall clock), verifying the budgeted rows
// are identical to the baseline, and finally measures cancellation latency
// at each degree by firing a context mid-query.
func RunRobustnessBench(factRows int, budgets []int64, degrees []int, reps int) *RobustnessBenchResult {
	db := workload.Star(workload.StarConfig{FactRows: factRows, DimRows: []int{60, 60}, Seed: 23})
	db.Analyze(stats.AnalyzeOptions{})
	q := mustBuild(db, workload.StarQuery(2, 30)+" ORDER BY 3")
	plan, _ := optimize(db, q, systemr.DefaultOptions())

	out := &RobustnessBenchResult{
		FactRows:   factRows,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
	}

	timeRun := func(budget int64) (float64, *exec.Result, exec.Counters, int64) {
		best := -1.0
		var res *exec.Result
		var counters exec.Counters
		var peak int64
		for rep := 0; rep < reps; rep++ {
			ctx := exec.NewCtx(db.Store, q.Meta)
			ctx.Mem = exec.NewMemAccount(budget)
			start := time.Now()
			r, err := exec.RunPlanQuery(plan, q, ctx)
			sec := time.Since(start).Seconds()
			if err != nil {
				panic(fmt.Sprintf("experiments: robustness bench (budget %d): %v", budget, err))
			}
			if best < 0 || sec < best {
				best, res, counters, peak = sec, r, ctx.Counters, ctx.Mem.Peak()
			}
		}
		return best, res, counters, peak
	}

	baseSec, baseRes, _, basePeak := timeRun(0)
	out.SpillPoints = append(out.SpillPoints, SpillBenchPoint{
		WallSeconds: baseSec, PeakMemBytes: basePeak,
		OverheadVsInMemory: 1, OutputRows: len(baseRes.Rows), RowsIdentical: true,
	})
	for _, b := range budgets {
		sec, res, counters, peak := timeRun(b)
		identical := len(res.Rows) == len(baseRes.Rows)
		if identical {
			for i := range baseRes.Rows {
				if baseRes.Rows[i].String() != res.Rows[i].String() {
					identical = false
					break
				}
			}
		}
		out.SpillPoints = append(out.SpillPoints, SpillBenchPoint{
			BudgetBytes: b, WallSeconds: sec,
			Spills: counters.Spills, SpillBytes: counters.SpillBytes, PeakMemBytes: peak,
			OverheadVsInMemory: sec / baseSec,
			OutputRows:         len(res.Rows), RowsIdentical: identical,
		})
	}

	maxDeg := 1
	for _, d := range degrees {
		if d > maxDeg {
			maxDeg = d
		}
	}
	pool := exec.NewPool(maxDeg)
	defer pool.Close()
	for _, d := range degrees {
		out.CancelPoints = append(out.CancelPoints, measureCancel(db, q, plan, pool, d, reps))
	}
	return out
}

// measureCancel times one uncanceled run for scale, then reruns the query
// firing the context roughly a quarter of the way through, reporting the wall
// time from the firing to the executor's return. Attempts where the query
// finished before the timer fired are retried with an earlier trigger.
func measureCancel(db *workload.DB, q *logical.Query, plan physical.Plan, pool *exec.Pool, degree, reps int) CancelBenchPoint {
	newCtx := func() *exec.Ctx {
		ctx := exec.NewCtx(db.Store, q.Meta)
		if degree > 1 {
			ctx.Parallelism = degree
			ctx.Pool = pool
		}
		return ctx
	}
	start := time.Now()
	if _, err := exec.RunPlanQuery(plan, q, newCtx()); err != nil {
		panic(fmt.Sprintf("experiments: cancel bench warmup: %v", err))
	}
	querySec := time.Since(start).Seconds()

	delay := time.Duration(querySec * float64(time.Second) / 4)
	best := -1.0
	for rep := 0; rep < reps*4 && best < 0; rep++ {
		cctx, cancel := context.WithCancel(context.Background())
		var firedAt atomic.Int64
		timer := time.AfterFunc(delay, func() {
			firedAt.Store(time.Now().UnixNano())
			cancel()
		})
		ctx := newCtx()
		ctx.Context = cctx
		_, err := exec.RunPlanQuery(plan, q, ctx)
		returned := time.Now()
		timer.Stop()
		cancel()
		if err == nil {
			// The query outran the timer; fire earlier next attempt.
			delay /= 2
			continue
		}
		if !errors.Is(err, context.Canceled) {
			panic(fmt.Sprintf("experiments: cancel bench: %v", err))
		}
		if at := firedAt.Load(); at != 0 {
			best = returned.Sub(time.Unix(0, at)).Seconds()
		}
	}
	if best < 0 {
		best = 0 // query too fast to catch mid-flight at this scale
	}
	return CancelBenchPoint{Degree: degree, LatencySeconds: best, QuerySeconds: querySec}
}

// E23Robustness runs the governor sweep on a small workload: graceful
// degradation must keep results identical while bounding memory, and
// cancellation must unwind mid-flight queries in a small fraction of their
// runtime at every degree.
func E23Robustness() Table {
	t := Table{
		ID:      "E23",
		Title:   "Resource governor: memory budgets, spilling and cancellation",
		Claim:   "budgeted queries degrade to disk with identical results; cancellation unwinds promptly at any degree",
		Headers: []string{"budget", "wall ms", "spills", "spill KB", "peak KB", "overhead", "identical"},
	}
	res := RunRobustnessBench(30000, []int64{1 << 20, 64 << 10, 4 << 10}, []int{1, 4, 8}, 3)
	budgetLabel := func(b int64) string {
		if b == 0 {
			return "unlimited"
		}
		return fmt.Sprintf("%dKB", b>>10)
	}
	for _, p := range res.SpillPoints {
		t.Rows = append(t.Rows, []string{
			budgetLabel(p.BudgetBytes),
			f2(p.WallSeconds * 1000),
			d64(p.Spills),
			d64(p.SpillBytes >> 10),
			d64(p.PeakMemBytes >> 10),
			f2(p.OverheadVsInMemory),
			fmt.Sprintf("%v", p.RowsIdentical),
		})
	}
	var notes strings.Builder
	fmt.Fprintf(&notes, "cancellation latency:")
	for _, c := range res.CancelPoints {
		fmt.Fprintf(&notes, " degree %d = %.2fms (query %.1fms);", c.Degree, c.LatencySeconds*1000, c.QuerySeconds*1000)
	}
	t.Notes = notes.String()
	return t
}
