package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cost"
	"repro/internal/datum"
	"repro/internal/histogram"
	"repro/internal/physical"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/workload"
)

// E10HistogramAccuracy reproduces the §5.1.1 claims about histogram
// structures: compressed (end-biased) histograms beat plain equi-depth on
// skewed data, and both crush the uniform assumption.
func E10HistogramAccuracy() Table {
	t := Table{
		ID:      "E10",
		Title:   "Histogram accuracy across skew (§5.1.1, [52])",
		Claim:   "compressed histograms are effective for high- or low-skew data; the uniform assumption degrades with skew",
		Headers: []string{"zipf s", "uniform-assumption err", "equi-depth err", "compressed err"},
	}
	rng := rand.New(rand.NewSource(10))
	n, dom, buckets := 50000, 1000, 20
	for _, s := range []float64{0, 1.1, 1.5, 2.0} {
		var vals []datum.D
		if s == 0 {
			for i := 0; i < n; i++ {
				vals = append(vals, datum.NewInt(rng.Int63n(int64(dom))))
			}
		} else {
			z := rand.NewZipf(rng, s, 1, uint64(dom-1))
			for i := 0; i < n; i++ {
				vals = append(vals, datum.NewInt(int64(z.Uint64())))
			}
		}
		freq := map[int64]float64{}
		distinct := 0.0
		for _, v := range vals {
			if freq[v.Int()] == 0 {
				distinct++
			}
			freq[v.Int()]++
		}
		ed := histogram.BuildEquiDepth(vals, buckets)
		cp := histogram.BuildCompressed(vals, buckets, buckets/2)
		// Mean relative error of equality estimates over sampled values.
		errOf := func(est func(datum.D) float64) float64 {
			sum, cnt := 0.0, 0
			for v, f := range freq {
				if f < 5 {
					continue
				}
				e := est(datum.NewInt(v))
				sum += math.Abs(e-f) / f
				cnt++
			}
			if cnt == 0 {
				return 0
			}
			return sum / float64(cnt)
		}
		uniform := func(datum.D) float64 { return float64(n) / distinct }
		t.Rows = append(t.Rows, []string{
			f1(s), pct(errOf(uniform)), pct(errOf(ed.EstimateEq)), pct(errOf(cp.EstimateEq)),
		})
	}
	t.Notes = "equality-estimate mean relative error over values with ≥5 occurrences; lower is better"
	return t
}

// E11SamplingAndDistinct reproduces §5.1.2: small samples yield accurate
// histograms, while distinct-value estimation is provably error-prone —
// naive scale-up fails where the GEE estimator stays within its bound.
func E11SamplingAndDistinct() Table {
	t := Table{
		ID:      "E11",
		Title:   "Sampling for histograms and distinct-value estimation (§5.1.2, [48,11,27])",
		Claim:   "a small sample builds an accurate histogram, but distinct-count estimation from samples has guaranteed worst cases",
		Headers: []string{"sample", "range est err", "distinct: scale-up err", "GEE err", "jackknife err"},
	}
	rng := rand.New(rand.NewSource(11))
	n := 100000
	// Low-distinct data (the adversarial case for scale-up).
	vals := make([]datum.D, n)
	for i := range vals {
		vals[i] = datum.NewInt(rng.Int63n(200))
	}
	exactDistinct := histogram.ExactDistinct(vals)
	exactRange := func(lo, hi int64) float64 {
		c := 0.0
		for _, v := range vals {
			if v.Int() >= lo && v.Int() <= hi {
				c++
			}
		}
		return c
	}
	for _, m := range []int{100, 1000, 10000} {
		sample := histogram.Sample(vals, m, rng)
		h := histogram.BuildFromSample(sample, n, 20)
		// Range error averaged over a few ranges.
		sumErr, cnt := 0.0, 0
		for _, rg := range [][2]int64{{0, 49}, {50, 149}, {100, 199}} {
			est := h.EstimateRange(datum.NewInt(rg[0]), true, datum.NewInt(rg[1]), true)
			exact := exactRange(rg[0], rg[1])
			sumErr += math.Abs(est-exact) / exact
			cnt++
		}
		relErr := func(est float64) float64 { return math.Abs(est-exactDistinct) / exactDistinct }
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d (%.1f%%)", m, 100*float64(m)/float64(n)),
			pct(sumErr / float64(cnt)),
			pct(relErr(histogram.DistinctScaleUp(sample, n))),
			pct(relErr(histogram.DistinctGEE(sample, n))),
			pct(relErr(histogram.DistinctJackknife(sample, n))),
		})
	}
	t.Notes = "data has only 200 distinct values in 100k rows; scale-up overestimates grossly at small samples"
	return t
}

// E12Propagation reproduces §5.1.3: the independence assumption
// underestimates correlated conjunctions; histogram joining beats the
// ad-hoc constants of [55].
func E12Propagation() Table {
	t := Table{
		ID:      "E12",
		Title:   "Propagation of statistics through operators (§5.1.3)",
		Claim:   "correlation breaks the independence assumption; joining histograms beats constant selectivities",
		Headers: []string{"case", "actual rows", "independence est", "most-selective est", "no-histogram est"},
	}
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 20000, Depts: 100})
	db.Analyze(stats.AnalyzeOptions{Buckets: 40})

	cases := []struct {
		name string
		sql  string
	}{
		{"correlated conjunction", "SELECT eid FROM Emp WHERE age >= 30 AND age >= 35 AND age >= 40"},
		{"independent conjunction", "SELECT eid FROM Emp WHERE age >= 40 AND sal > 10000"},
		{"FK join", "SELECT e.eid FROM Emp e, Dept d WHERE e.did = d.did"},
		{"join + filter", "SELECT e.eid FROM Emp e, Dept d WHERE e.did = d.did AND d.budget > 900"},
	}
	for _, c := range cases {
		q := mustBuild(db, c.sql)
		_, counters := runNaive(db, q)
		actualRows := float64(0)
		if res, _ := runNaive(db, q); res != nil {
			actualRows = float64(len(res.Rows))
		}
		_ = counters

		ind := stats.NewEstimator(q.Meta)
		ind.Mode = stats.Independence
		ms := stats.NewEstimator(q.Meta)
		ms.Mode = stats.MostSelective
		noHist := stats.NewEstimator(q.Meta)
		noHist.UseHistograms = false

		t.Rows = append(t.Rows, []string{
			c.name, f0(actualRows),
			f0(ind.Stats(q.Root).Rows), f0(ms.Stats(q.Root).Rows), f0(noHist.Stats(q.Root).Rows),
		})
	}
	t.Notes = "independence underestimates the correlated case; most-selective overestimates independent conjunctions"
	return t
}

// E13BufferModel reproduces §5.2 / [40]: modeling buffer utilization changes
// which plan the optimizer picks for repeated index probes.
func E13BufferModel() Table {
	// Emp fits in the modeled buffer pool, so repeated index probes are warm.
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 12000, Depts: 400})
	db.Analyze(stats.AnalyzeOptions{})
	qs := "SELECT e.eid FROM Dept d, Emp e WHERE d.did = e.did AND d.budget > 900"
	q := mustBuild(db, qs)

	withBuf := cost.DefaultModel() // BufferPages = 256
	noBuf := cost.DefaultModel()
	noBuf.BufferPages = 0

	planOf := func(m cost.Model) (string, float64, exec0) {
		opt := systemr.New(stats.NewEstimator(q.Meta), m, systemr.DefaultOptions())
		plan, err := opt.Optimize(q)
		if err != nil {
			panic(err)
		}
		_, c := plan.Estimate()
		_, counters := runPlan(db, q, plan)
		return joinAlgoOf(plan), c, exec0{counters.PagesRead, counters.IndexSeeks}
	}
	algoWith, costWith, mWith := planOf(withBuf)
	algoNo, costNo, mNo := planOf(noBuf)
	return Table{
		ID:      "E13",
		Title:   "Buffer-utilization modeling (§5.2, Mackert/Lohman [40])",
		Claim:   "accounting for buffer hits on repeated index probes changes the chosen join method",
		Headers: []string{"cost model", "chosen join", "est cost", "measured pages", "index seeks"},
		Rows: [][]string{
			{"with buffer model", algoWith, f1(costWith), d64(mWith.pages), d64(mWith.seeks)},
			{"no buffer model", algoNo, f1(costNo), d64(mNo.pages), d64(mNo.seeks)},
		},
		Notes: "with buffering, repeated probes hit warm pages, making index nested-loop competitive (the DB2 locality observation [17])",
	}
}

type exec0 struct{ pages, seeks int64 }

func joinAlgoOf(p physical.Plan) string {
	switch t := p.(type) {
	case *physical.NLJoin:
		return "nested-loop"
	case *physical.HashJoin:
		return "hash"
	case *physical.MergeJoin:
		return "merge"
	case *physical.INLJoin:
		return "index-nested-loop"
	default:
		for _, c := range physical.Children(p) {
			if a := joinAlgoOf(c); a != "" {
				return a
			}
		}
		_ = t
	}
	return ""
}
