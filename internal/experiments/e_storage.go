package experiments

// e_storage.go measures the disk-backed columnar segment store
// (internal/storage): scan wall-clock cold (fresh store, column cache empty)
// and warm (cache hot) at three predicate selectivities, with zone-map
// segment elimination on and off, against the in-memory heap as the
// correctness baseline. The pruned arm must read a small fraction of the
// segments at high selectivity while returning bit-identical rows.
// RunStorageBench is shared by experiment E27 (small workload) and
// `benchharness storage`, which writes the larger run to BENCH_storage.json.

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/storage"
)

// StorageBenchRow is one (selectivity, arm) measurement.
type StorageBenchRow struct {
	Selectivity float64 `json:"selectivity"`
	// Arm is "pruned" (zone maps on) or "unpruned" (every segment read).
	Arm            string  `json:"arm"`
	ColdWallSec    float64 `json:"cold_wall_seconds"`
	WarmWallSec    float64 `json:"warm_wall_seconds"`
	MemWallSec     float64 `json:"mem_wall_seconds"`
	SegmentsRead   int64   `json:"segments_read"`
	SegmentsPruned int64   `json:"segments_pruned"`
	ColdBytesRead  int64   `json:"cold_bytes_read"`
	OutputRows     int     `json:"output_rows"`
	// Identical certifies the disk arm returned exactly the in-memory
	// engine's rows, in order, floats bit-exact.
	Identical bool `json:"identical"`
}

// StorageBenchResult is the full sweep plus host information.
type StorageBenchResult struct {
	Rows        int               `json:"rows"`
	SegmentRows int               `json:"segment_rows"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	CPUs        int               `json:"cpus"`
	Workloads   []StorageBenchRow `json:"workloads"`
}

func storageBenchDef() *catalog.Table {
	return &catalog.Table{
		Name: "m",
		Cols: []catalog.Column{
			{Name: "k", Kind: datum.KindInt, NotNull: true},
			{Name: "v", Kind: datum.KindFloat},
		},
	}
}

// RunStorageBench loads a table clustered on k (so zone maps carry tight,
// disjoint ranges), then scans it with `k < rows*sel` for each selectivity:
// cold and warm, pruned and unpruned, and in memory. Best of reps.
func RunStorageBench(rows, segRows, reps int) *StorageBenchResult {
	if segRows <= 0 {
		segRows = storage.DefaultSegmentRows
	}
	dir, err := os.MkdirTemp("", "qopt-storage-bench-*")
	if err != nil {
		panic(fmt.Sprintf("experiments: storage bench: %v", err))
	}
	defer os.RemoveAll(dir)

	def := storageBenchDef()
	rng := rand.New(rand.NewSource(27))
	data := make([]datum.Row, rows)
	for i := range data {
		data[i] = datum.Row{datum.NewInt(int64(i)), datum.NewFloat(rng.NormFloat64() * 100)}
	}

	memStore := storage.NewStore()
	memTab, err := memStore.CreateTable(def)
	if err == nil {
		err = memTab.InsertBatch(data)
	}
	if err != nil {
		panic(fmt.Sprintf("experiments: storage bench: %v", err))
	}
	diskStore := storage.NewStoreWith(storage.StoreConfig{Dir: dir, SegmentRows: segRows})
	diskTab, err := diskStore.CreateTable(def)
	if err == nil {
		err = diskTab.InsertBatch(data)
	}
	if err == nil {
		err = diskTab.Flush() // seal the tail so reopened stores see every row
	}
	if err != nil {
		panic(fmt.Sprintf("experiments: storage bench: %v", err))
	}

	md := logical.NewMetadata()
	cols := md.AddTable(def, "m")
	scanPlan := func(limit int64) physical.Plan {
		return &physical.TableScan{
			Table: def, Binding: "m", Cols: cols, ColOrds: []int{0, 1},
			Filter: []logical.Scalar{&logical.Cmp{
				Op: logical.CmpLt, L: &logical.Col{ID: cols[0]}, R: &logical.Const{Val: datum.NewInt(limit)},
			}},
		}
	}
	run := func(store *storage.Store, p physical.Plan, noPrune bool) (float64, *exec.Counters, []datum.Row) {
		ctx := exec.NewCtx(store, md)
		ctx.Vectorize = true
		ctx.NoPrune = noPrune
		start := time.Now()
		res, err := exec.Run(p, ctx)
		sec := time.Since(start).Seconds()
		if err != nil {
			panic(fmt.Sprintf("experiments: storage bench: %v", err))
		}
		return sec, &ctx.Counters, res.Rows
	}

	out := &StorageBenchResult{
		Rows: rows, SegmentRows: segRows,
		GOMAXPROCS: runtime.GOMAXPROCS(0), CPUs: runtime.NumCPU(),
	}
	for _, sel := range []float64{0.001, 0.1, 1.0} {
		p := scanPlan(int64(float64(rows) * sel))
		memSec, _, memRows := run(memStore, p, false)
		for _, arm := range []struct {
			name    string
			noPrune bool
		}{{"pruned", false}, {"unpruned", true}} {
			var best StorageBenchRow
			for rep := 0; rep < reps; rep++ {
				// Cold: a fresh store over the same directory starts with an
				// empty column cache; only segment footers are read at open.
				coldStore := storage.NewStoreWith(storage.StoreConfig{Dir: dir, SegmentRows: segRows})
				if _, err := coldStore.CreateTable(def); err != nil {
					panic(fmt.Sprintf("experiments: storage bench: %v", err))
				}
				coldSec, coldCtr, _ := run(coldStore, p, arm.noPrune)
				warmSec, warmCtr, warmRows := run(coldStore, p, arm.noPrune)
				if rep == 0 || coldSec < best.ColdWallSec {
					identical := len(warmRows) == len(memRows)
					if identical {
						for i := range warmRows {
							if warmRows[i].String() != memRows[i].String() {
								identical = false
								break
							}
						}
					}
					best = StorageBenchRow{
						Selectivity: sel, Arm: arm.name,
						ColdWallSec: coldSec, WarmWallSec: warmSec, MemWallSec: memSec,
						SegmentsRead: warmCtr.SegmentsRead, SegmentsPruned: warmCtr.SegmentsPruned,
						ColdBytesRead: coldCtr.BytesRead,
						OutputRows:    len(warmRows), Identical: identical,
					}
				}
			}
			out.Workloads = append(out.Workloads, best)
		}
	}
	return out
}

// E27Storage measures disk-backed columnar segments with zone-map pruning:
// the §5.2 I/O cost term made real. Min/max zone maps over clustered keys
// let the scan eliminate segments without reading them, so the pages charged
// (and the bytes read) track predicate selectivity instead of table size;
// the unpruned arm is the control. The `identical` column certifies the disk
// path returned exactly the in-memory rows.
func E27Storage() Table {
	t := Table{
		ID:      "E27",
		Title:   "Disk-backed columnar segments with zone-map pruning (§5.2)",
		Claim:   "segment elimination makes scan I/O track selectivity, at identical results",
		Headers: []string{"selectivity", "arm", "segs read", "segs pruned", "cold ms", "warm ms", "mem ms", "out rows", "identical"},
	}
	res := RunStorageBench(40000, 1024, 2)
	for _, w := range res.Workloads {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f", w.Selectivity),
			w.Arm,
			d(int(w.SegmentsRead)),
			d(int(w.SegmentsPruned)),
			f2(w.ColdWallSec * 1000),
			f2(w.WarmWallSec * 1000),
			f2(w.MemWallSec * 1000),
			d(w.OutputRows),
			fmt.Sprintf("%v", w.Identical),
		})
	}
	t.Notes = fmt.Sprintf("rows=%d segment_rows=%d gomaxprocs=%d cpus=%d; single-threaded; cold = fresh store (empty column cache), warm = cache hot",
		res.Rows, res.SegmentRows, res.GOMAXPROCS, res.CPUs)
	return t
}
