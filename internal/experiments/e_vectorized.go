package experiments

// e_vectorized.go measures the vectorized batch execution path (columnar
// batches + typed kernels, exec/vector.go) against row-at-a-time execution of
// the *same physical plans*: scan+filter, hash aggregation and hash join
// microworkloads over the star schema, single-threaded, best-of-reps wall
// clock. Plans are constructed by hand so the shapes are fixed — the
// comparison isolates the execution model, not plan choice. RunVectorizedBench
// is shared by experiment E24 (small workload) and `benchharness vectorized`,
// which writes the larger run to BENCH_vectorized.json.

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/workload"
)

// VectorizedBenchRow is one microworkload's row-vs-vectorized measurement.
type VectorizedBenchRow struct {
	Workload      string  `json:"workload"`
	InputRows     int     `json:"input_rows"`
	OutputRows    int     `json:"output_rows"`
	RowWallSec    float64 `json:"row_wall_seconds"`
	VecWallSec    float64 `json:"vec_wall_seconds"`
	RowRowsPerSec float64 `json:"row_rows_per_sec"`
	VecRowsPerSec float64 `json:"vec_rows_per_sec"`
	Speedup       float64 `json:"speedup"`
	// Identical is the exactness guarantee: the vectorized run emitted the
	// same rows in the same order, floats compared by shortest round-trip
	// representation (i.e. bit-exact up to NaN payloads).
	Identical bool `json:"identical"`
}

// VectorizedBenchResult is the full comparison plus host information.
type VectorizedBenchResult struct {
	FactRows   int                  `json:"fact_rows"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	CPUs       int                  `json:"cpus"`
	Workloads  []VectorizedBenchRow `json:"workloads"`
}

// RunVectorizedBench executes the three microworkloads with vectorization off
// and on (same plans, same serial context otherwise), best-of-reps.
func RunVectorizedBench(factRows, reps int) *VectorizedBenchResult {
	db := workload.Star(workload.StarConfig{FactRows: factRows, DimRows: []int{1000}, Seed: 24})
	sales, _ := db.Cat.Table("sales")
	dim1, _ := db.Cat.Table("dim1")

	md := logical.NewMetadata()
	salesCols := md.AddTable(sales, "sales") // k1, qty, amount
	dimCols := md.AddTable(dim1, "dim1")     // k, attr, filt
	k1, qty, amount := salesCols[0], salesCols[1], salesCols[2]
	newCol := func(name string, k datum.Kind) logical.ColumnID {
		return md.AddColumn(logical.ColumnMeta{Name: name, Kind: k})
	}

	salesScan := func(filter []logical.Scalar) *physical.TableScan {
		return &physical.TableScan{
			Table: sales, Binding: "sales", Cols: salesCols, ColOrds: []int{0, 1, 2},
			Filter: filter,
		}
	}
	// qty is uniform on [1, 20], so qty < 5 keeps ~20% of the fact rows.
	scanFilter := salesScan([]logical.Scalar{
		&logical.Cmp{Op: logical.CmpLt, L: &logical.Col{ID: qty}, R: &logical.Const{Val: datum.NewInt(5)}},
	})
	hashAgg := &physical.HashGroupBy{
		Props:     physical.Props{Rows: 1000},
		Input:     salesScan(nil),
		GroupCols: []logical.ColumnID{k1},
		Aggs: []logical.AggItem{
			{ID: newCol("cnt", datum.KindInt), Fn: logical.AggCount},
			{ID: newCol("sum_qty", datum.KindInt), Fn: logical.AggSum, Arg: &logical.Col{ID: qty}},
			{ID: newCol("min_qty", datum.KindInt), Fn: logical.AggMin, Arg: &logical.Col{ID: qty}},
			{ID: newCol("max_amt", datum.KindFloat), Fn: logical.AggMax, Arg: &logical.Col{ID: amount}},
			{ID: newCol("avg_amt", datum.KindFloat), Fn: logical.AggAvg, Arg: &logical.Col{ID: amount}},
		},
	}
	hashJoin := &physical.HashJoin{
		Kind: logical.InnerJoin, Left: salesScan(nil),
		Right: &physical.TableScan{Table: dim1, Binding: "dim1", Cols: dimCols, ColOrds: []int{0, 1, 2}},
		LeftKeys:  []logical.ColumnID{k1},
		RightKeys: []logical.ColumnID{dimCols[0]},
	}

	timed := func(p physical.Plan, vectorize bool) (float64, []datum.Row) {
		best := -1.0
		var rows []datum.Row
		for rep := 0; rep < reps; rep++ {
			ctx := exec.NewCtx(db.Store, md)
			ctx.Vectorize = vectorize
			start := time.Now()
			res, err := exec.Run(p, ctx)
			sec := time.Since(start).Seconds()
			if err != nil {
				panic(fmt.Sprintf("experiments: vectorized bench: %v", err))
			}
			if best < 0 || sec < best {
				best, rows = sec, res.Rows
			}
		}
		return best, rows
	}

	out := &VectorizedBenchResult{
		FactRows:   factRows,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
	}
	for _, w := range []struct {
		name string
		plan physical.Plan
	}{
		{"scan+filter", scanFilter},
		{"hash-agg", hashAgg},
		{"hash-join", hashJoin},
	} {
		rowSec, rowRows := timed(w.plan, false)
		vecSec, vecRows := timed(w.plan, true)
		identical := len(rowRows) == len(vecRows)
		if identical {
			for i := range rowRows {
				if rowRows[i].String() != vecRows[i].String() {
					identical = false
					break
				}
			}
		}
		out.Workloads = append(out.Workloads, VectorizedBenchRow{
			Workload:      w.name,
			InputRows:     factRows,
			OutputRows:    len(vecRows),
			RowWallSec:    rowSec,
			VecWallSec:    vecSec,
			RowRowsPerSec: float64(factRows) / rowSec,
			VecRowsPerSec: float64(factRows) / vecSec,
			Speedup:       rowSec / vecSec,
			Identical:     identical,
		})
	}
	return out
}

// E24Vectorized compares row-at-a-time and vectorized execution of identical
// plans (§5.2's CPU cost term attacked at the execution layer): the per-row
// interpretation overhead — interface dispatch, datum boxing, per-row filter
// evaluation — is what columnar batches and typed kernels eliminate, so the
// speedup column is a direct measurement of that overhead. Single-threaded by
// construction; the `identical` column certifies the vectorized rows matched
// the row engine's exactly (floats bit-exact).
func E24Vectorized() Table {
	t := Table{
		ID:      "E24",
		Title:   "Vectorized batch execution vs row-at-a-time (§5.2)",
		Claim:   "typed kernels over columnar batches beat per-row interpretation at equal results",
		Headers: []string{"workload", "rows", "out rows", "row ms", "vec ms", "row rows/s", "vec rows/s", "speedup", "identical"},
	}
	res := RunVectorizedBench(30000, 3)
	for _, w := range res.Workloads {
		t.Rows = append(t.Rows, []string{
			w.Workload,
			d(w.InputRows),
			d(w.OutputRows),
			f2(w.RowWallSec * 1000),
			f2(w.VecWallSec * 1000),
			f0(w.RowRowsPerSec),
			f0(w.VecRowsPerSec),
			f2(w.Speedup),
			fmt.Sprintf("%v", w.Identical),
		})
	}
	t.Notes = fmt.Sprintf("gomaxprocs=%d cpus=%d; single-threaded comparison (speedup is per-core CPU efficiency, not parallelism)",
		res.GOMAXPROCS, res.CPUs)
	return t
}
