// Package experiments implements the reproduction harness: one experiment
// per figure/claim of the paper (see DESIGN.md §2 for the E1–E21 map). Every
// experiment returns a Table whose rows are recorded in EXPERIMENTS.md; the
// cmd/benchharness binary prints them and bench_test.go wraps each in a
// testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/workload"
)

// Table is one experiment's result table.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper's claim being reproduced
	Headers []string
	Rows    [][]string
	Notes   string
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&sb, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&sb, "%-*s  ", widths[i], c)
			}
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	var sep []string
	for _, w := range widths {
		sep = append(sep, strings.Repeat("-", w))
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	if t.Notes != "" {
		fmt.Fprintf(&sb, "note: %s\n", t.Notes)
	}
	return sb.String()
}

// All runs every experiment in order.
func All() []Table {
	return []Table{
		E1OperatorTree(),
		E2DPvsNaive(),
		E3InterestingOrders(),
		E4BushyAndStar(),
		E5OuterjoinReorder(),
		E6GroupByPushdown(),
		E7ViewMerging(),
		E8Unnesting(),
		E9MagicSets(),
		E10HistogramAccuracy(),
		E11SamplingAndDistinct(),
		E12Propagation(),
		E13BufferModel(),
		E14Architectures(),
		E15ExpensivePredicates(),
		E16MatViews(),
		E17Parallel(),
		E18QueryGraph(),
		E19Parametric(),
		E20JointDistribution(),
		E21ParallelExecution(),
		E22AnalyzeFeedback(),
		E23Robustness(),
		E24Vectorized(),
		E26AdaptivePlanning(),
		E27Storage(),
		E28Durability(),
		E29Compression(),
	}
}

// ByID returns the experiment with the given id (e.g. "E7").
func ByID(id string) (Table, bool) {
	for _, t := range All() {
		if strings.EqualFold(t.ID, id) {
			return t, true
		}
	}
	return Table{}, false
}

// --- shared helpers ---

func mustBuild(db *workload.DB, q string) *logical.Query {
	sel, err := sql.ParseSelect(q)
	if err != nil {
		panic(fmt.Sprintf("experiments: parse %q: %v", q, err))
	}
	query, err := logical.NewBuilder(db.Cat).Build(sel)
	if err != nil {
		panic(fmt.Sprintf("experiments: build %q: %v", q, err))
	}
	logical.NormalizeQuery(query, logical.DefaultNormalize())
	logical.PruneColumns(query)
	return query
}

// buildRaw skips normalization (for experiments that compare against it).
func buildRaw(db *workload.DB, q string) *logical.Query {
	sel, err := sql.ParseSelect(q)
	if err != nil {
		panic(err)
	}
	query, err := logical.NewBuilder(db.Cat).Build(sel)
	if err != nil {
		panic(err)
	}
	return query
}

func optimize(db *workload.DB, q *logical.Query, opts systemr.Options) (physical.Plan, *systemr.Optimizer) {
	opt := systemr.New(stats.NewEstimator(q.Meta), cost.DefaultModel(), opts)
	plan, err := opt.Optimize(q)
	if err != nil {
		panic(fmt.Sprintf("experiments: optimize: %v", err))
	}
	return plan, opt
}

func runPlan(db *workload.DB, q *logical.Query, plan physical.Plan) (*exec.Result, exec.Counters) {
	ctx := exec.NewCtx(db.Store, q.Meta)
	res, err := exec.RunPlanQuery(plan, q, ctx)
	if err != nil {
		panic(fmt.Sprintf("experiments: execute: %v\n%s", err, physical.Format(plan, q.Meta)))
	}
	return res, ctx.Counters
}

func runNaive(db *workload.DB, q *logical.Query) (*exec.Result, exec.Counters) {
	ctx := exec.NewCtx(db.Store, q.Meta)
	res, err := ctx.RunQuery(q)
	if err != nil {
		panic(fmt.Sprintf("experiments: naive execute: %v", err))
	}
	return res, ctx.Counters
}

func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func d(v int) string       { return fmt.Sprintf("%d", v) }
func d64(v int64) string   { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
