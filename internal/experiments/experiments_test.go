package experiments

import (
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsProduceTables is the harness's own regression net: every
// experiment must run, produce rows, and uphold its headline invariant.
func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped under -short")
	}
	tables := All()
	if len(tables) != 28 {
		t.Fatalf("expected 28 experiments, got %d", len(tables))
	}
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" || tb.Claim == "" {
			t.Errorf("%s: missing metadata", tb.ID)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s: no rows", tb.ID)
		}
		for _, r := range tb.Rows {
			if len(r) != len(tb.Headers) {
				t.Errorf("%s: row width %d != headers %d", tb.ID, len(r), len(tb.Headers))
			}
		}
		if out := tb.Format(); !strings.Contains(out, tb.ID) {
			t.Errorf("%s: Format missing id", tb.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tb, ok := ByID("e15")
	if !ok || tb.ID != "E15" {
		t.Fatal("ByID case-insensitive lookup failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("unknown id should fail")
	}
}

// TestHeadlineInvariants spot-checks the quantitative shape of key
// experiments so regressions in the optimizer show up as failures here, not
// just as changed numbers in the harness output.
func TestHeadlineInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// E2: the naive/DP plans-costed ratio must grow with n and DP cost must
	// equal naive cost in every row.
	e2 := E2DPvsNaive()
	prevRatio := 0.0
	for _, r := range e2.Rows {
		ratio := atof(t, r[3])
		if ratio < prevRatio {
			t.Errorf("E2: ratio should grow with n: %v", e2.Rows)
		}
		prevRatio = ratio
		if r[4] != r[5] {
			t.Errorf("E2: DP cost %s != naive cost %s", r[4], r[5])
		}
	}

	// E3: penalty factor ≥ 1 in every row, > 1 in at least one.
	e3 := E3InterestingOrders()
	sawGain := false
	for _, r := range e3.Rows {
		pen := atof(t, strings.TrimSuffix(r[5], "x"))
		if pen < 0.999 {
			t.Errorf("E3: interesting orders made a plan worse: %v", r)
		}
		if pen > 1.01 {
			sawGain = true
		}
	}
	if !sawGain {
		t.Error("E3: expected at least one row where interesting orders help")
	}

	// E6: every speedup > 1.
	for _, r := range E6GroupByPushdown().Rows {
		if sp := atof(t, strings.TrimSuffix(r[4], "x")); sp <= 1 {
			t.Errorf("E6: eager aggregation should always win here: %v", r)
		}
	}

	// E10: compressed ≤ equi-depth ≤ uniform error on the most skewed row.
	e10 := E10HistogramAccuracy()
	last := e10.Rows[len(e10.Rows)-1]
	uni, ed, cp := pctVal(t, last[1]), pctVal(t, last[2]), pctVal(t, last[3])
	if !(cp <= ed && ed <= uni) {
		t.Errorf("E10: error ordering violated at max skew: uniform %v equi %v compressed %v", uni, ed, cp)
	}

	// E13: the buffer model must flip the join choice.
	e13 := E13BufferModel()
	if e13.Rows[0][1] == e13.Rows[1][1] {
		t.Errorf("E13: buffer model should change the chosen join: %v", e13.Rows)
	}

	// E15: pushdown penalty must exceed 100x on the expensive-predicate row.
	e15 := E15ExpensivePredicates()
	if pen := atof(t, strings.TrimSuffix(e15.Rows[1][4], "x")); pen < 100 {
		t.Errorf("E15: expected a large pushdown penalty, got %v", pen)
	}

	// E24: vectorized results must be identical to row mode on every
	// workload, and the scan+filter kernels must actually win.
	e24 := E24Vectorized()
	for _, r := range e24.Rows {
		if r[len(r)-1] != "true" {
			t.Errorf("E24: %s not bit-identical to row mode: %v", r[0], r)
		}
	}
	if sp := atof(t, e24.Rows[0][7]); sp <= 1 {
		t.Errorf("E24: scan+filter shows no vectorized speedup: %v", e24.Rows[0])
	}

	// E27: disk results must be bit-identical to memory on every row, and
	// the most selective pruned scan must read well under half the segments.
	e27 := E27Storage()
	for _, r := range e27.Rows {
		if r[len(r)-1] != "true" {
			t.Errorf("E27: %s/%s not bit-identical to memory: %v", r[0], r[1], r)
		}
	}
	first := e27.Rows[0] // selectivity 0.001, pruned arm
	read, pruned := atof(t, first[2]), atof(t, first[3])
	if first[1] != "pruned" || read*2 >= read+pruned {
		t.Errorf("E27: expected the selective pruned scan to skip most segments: %v", first)
	}

	// E28: every scan arm must be bit-identical to memory and every
	// recovery row clean.
	e28 := E28Durability()
	for _, r := range e28.Rows {
		if r[len(r)-1] != "true" {
			t.Errorf("E28: %s/%s not identical/clean: %v", r[0], r[1], r)
		}
	}

	// E29: every arm must be bit-identical to memory, and the compressed
	// arm must decode dictionary and run-length blocks where the
	// uncompressed control decodes only plain ones.
	e29 := E29Compression()
	for _, r := range e29.Rows {
		if r[len(r)-1] != "true" {
			t.Errorf("E29: par %s/%s not bit-identical to memory: %v", r[0], r[1], r)
		}
		var nd, nr, np int
		if _, err := fmt.Sscanf(r[6], "%d/%d/%d", &nd, &nr, &np); err != nil {
			t.Fatalf("E29: bad block column %q: %v", r[6], err)
		}
		switch r[1] {
		case "compressed":
			if nd == 0 || nr == 0 {
				t.Errorf("E29: compressed arm decoded no encoded blocks: %v", r)
			}
		case "uncompressed":
			if nd != 0 || nr != 0 || np == 0 {
				t.Errorf("E29: uncompressed arm saw encoded blocks: %v", r)
			}
		}
	}

	// E19: the last row's regret must exceed 10x.
	e19 := E19Parametric()
	lastRow := e19.Rows[len(e19.Rows)-1]
	if reg := atof(t, strings.TrimSuffix(lastRow[4], "x")); reg < 10 {
		t.Errorf("E19: expected large static-plan regret, got %v", reg)
	}
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func pctVal(t *testing.T, s string) float64 {
	return atof(t, strings.TrimSuffix(s, "%"))
}
