// Package faultfs is the fault-injection layer of the resource governor: a
// deterministic, thread-safe injector of errors and latency into named I/O
// operation streams (storage scan batches, spill-file create/write/read).
// The executor consults the injector at every batch boundary and spill I/O
// call, so tests can prove that a failure raised by any worker, at any
// parallelism degree, propagates to the caller exactly once, promptly, and
// without leaking goroutines.
//
// Rules trigger on a per-operation counter: "fail the Nth scan batch",
// "delay every spill write by 1ms". Counters are global across workers (one
// atomic stream per op name), so a rule fires exactly once no matter which
// worker happens to hit the Nth operation.
package faultfs

import (
	"errors"
	"sync"
	"time"
)

// ErrInjected is the default error returned by triggered rules that do not
// carry their own; tests match it with errors.Is.
var ErrInjected = errors.New("faultfs: injected fault")

// Rule configures one fault: after After occurrences of Op (1-based: After=1
// fires on the first), return Err (or ErrInjected when nil). Every, when >0,
// re-fires the rule each Every further occurrences. Latency, when >0, is
// slept on every occurrence of Op whether or not the rule fires.
type Rule struct {
	// Op names the operation stream the rule watches (e.g. "scan",
	// "spill.write"). An empty Op matches every operation.
	Op string
	// After is the 1-based occurrence count at which the rule fires.
	After int64
	// Every re-fires the rule periodically after the first firing (0 = once).
	Every int64
	// Err is the injected error (nil = ErrInjected).
	Err error
	// Latency is injected on every matching operation.
	Latency time.Duration
}

// Injector applies fault rules to operation streams. The zero value injects
// nothing; a nil *Injector is safe and free to check.
type Injector struct {
	mu     sync.Mutex
	rules  []Rule
	counts map[string]int64
}

// New returns an injector with the given rules.
func New(rules ...Rule) *Injector {
	return &Injector{rules: rules, counts: make(map[string]int64)}
}

// Add appends a rule.
func (in *Injector) Add(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.counts == nil {
		in.counts = make(map[string]int64)
	}
	in.rules = append(in.rules, r)
}

// Count reports how many times op has been checked.
func (in *Injector) Count(op string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// Check records one occurrence of op, applies any configured latency, and
// returns the injected error when a rule fires. Safe for concurrent use.
func (in *Injector) Check(op string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	if in.counts == nil {
		in.counts = make(map[string]int64)
	}
	in.counts[op]++
	n := in.counts[op]
	var sleep time.Duration
	var fired error
	for _, r := range in.rules {
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Latency > sleep {
			sleep = r.Latency
		}
		if r.After > 0 && fires(n, r.After, r.Every) && fired == nil {
			fired = r.Err
			if fired == nil {
				fired = ErrInjected
			}
		}
	}
	in.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	return fired
}

// fires reports whether occurrence n triggers a rule at (after, every).
func fires(n, after, every int64) bool {
	if n == after {
		return true
	}
	return every > 0 && n > after && (n-after)%every == 0
}
