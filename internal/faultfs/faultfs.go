// Package faultfs is the fault-injection layer of the resource governor and
// the storage crash harness: a deterministic, thread-safe injector of errors,
// latency, torn writes and simulated crashes into named I/O operation streams
// (storage scan batches, spill-file create/write/read, segment seal and
// manifest-append sites). The executor consults the injector at every batch
// boundary and spill I/O call, so tests can prove that a failure raised by
// any worker, at any parallelism degree, propagates to the caller exactly
// once, promptly, and without leaking goroutines. The storage layer consults
// it at every durability-relevant syscall site (write, fsync, rename,
// manifest append), so the crash-matrix tests can kill a write path at every
// point and prove recovery restores an exact pre- or post-operation state.
//
// Rules trigger on a per-operation counter: "fail the Nth scan batch",
// "delay every spill write by 1ms", "tear the 3rd segment file write in
// half". Counters are global across workers (one atomic stream per op name),
// so a rule fires exactly once no matter which worker happens to hit the Nth
// operation.
package faultfs

import (
	"errors"
	"sync"
	"time"
)

// ErrInjected is the default error returned by triggered rules that do not
// carry their own; tests match it with errors.Is.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrTransient marks an injected fault as transient: retry logic (e.g. the
// storage layer's bounded retry-with-backoff) may retry the operation, and
// with Rule.Times set the fault clears after that many occurrences. Permanent
// faults (any error not matching ErrTransient) must propagate without retry.
// Match with errors.Is.
var ErrTransient = errors.New("faultfs: transient injected fault")

// Rule configures one fault: after After occurrences of Op (1-based: After=1
// fires on the first), return Err (or ErrInjected when nil). Times, when >0,
// makes the fault fire on Times consecutive occurrences starting at After and
// then clear — the transient-error mode, testable separately from permanent
// failure propagation. Every, when >0, re-fires the rule each Every further
// occurrences. Latency, when >0, is slept on every occurrence of Op whether
// or not the rule fires.
type Rule struct {
	// Op names the operation stream the rule watches (e.g. "scan",
	// "spill.write", "segment.fsync", "manifest.append"). An empty Op matches
	// every operation.
	Op string
	// After is the 1-based occurrence count at which the rule fires.
	After int64
	// Times, when >0, fires the rule on occurrences After..After+Times-1 and
	// then clears it (the fault is transient: attempt After+Times succeeds).
	// 0 keeps the one-shot (plus Every) semantics.
	Times int64
	// Every re-fires the rule periodically after the first firing (0 = once).
	// Ignored when Times > 0.
	Every int64
	// Err is the injected error (nil = ErrInjected).
	Err error
	// Partial marks the firing as a torn write: callers that support it (the
	// segment temp-file and manifest-append writers) write roughly half the
	// payload before failing, simulating a crash mid-write. Callers that
	// consult Check instead of CheckPartial treat it as a plain error.
	Partial bool
	// Latency is injected on every matching operation.
	Latency time.Duration
}

// Injector applies fault rules to operation streams. The zero value injects
// nothing; a nil *Injector is safe and free to check.
type Injector struct {
	mu     sync.Mutex
	rules  []Rule
	counts map[string]int64
}

// New returns an injector with the given rules.
func New(rules ...Rule) *Injector {
	return &Injector{rules: rules, counts: make(map[string]int64)}
}

// Add appends a rule.
func (in *Injector) Add(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.counts == nil {
		in.counts = make(map[string]int64)
	}
	in.rules = append(in.rules, r)
}

// Count reports how many times op has been checked.
func (in *Injector) Count(op string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[op]
}

// Check records one occurrence of op, applies any configured latency, and
// returns the injected error when a rule fires. Safe for concurrent use.
func (in *Injector) Check(op string) error {
	_, err := in.CheckPartial(op)
	return err
}

// CheckPartial is Check for write sites that can simulate torn writes: it
// additionally reports whether the firing rule asks for a partial write
// (write about half the payload, then fail with the returned error). partial
// is never true with a nil error.
func (in *Injector) CheckPartial(op string) (partial bool, err error) {
	if in == nil {
		return false, nil
	}
	in.mu.Lock()
	if in.counts == nil {
		in.counts = make(map[string]int64)
	}
	in.counts[op]++
	n := in.counts[op]
	var sleep time.Duration
	var fired error
	for _, r := range in.rules {
		if r.Op != "" && r.Op != op {
			continue
		}
		if r.Latency > sleep {
			sleep = r.Latency
		}
		if r.After > 0 && fires(n, r.After, r.Times, r.Every) && fired == nil {
			fired = r.Err
			if fired == nil {
				fired = ErrInjected
			}
			partial = r.Partial
		}
	}
	in.mu.Unlock()
	if sleep > 0 {
		time.Sleep(sleep)
	}
	if fired == nil {
		return false, nil
	}
	return partial, fired
}

// fires reports whether occurrence n triggers a rule at (after, times, every).
func fires(n, after, times, every int64) bool {
	if times > 0 {
		return n >= after && n < after+times
	}
	if n == after {
		return true
	}
	return every > 0 && n > after && (n-after)%every == 0
}
