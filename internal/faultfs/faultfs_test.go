package faultfs

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilInjectorIsFree(t *testing.T) {
	var in *Injector
	if err := in.Check("scan"); err != nil {
		t.Fatalf("nil injector injected %v", err)
	}
	if in.Count("scan") != 0 {
		t.Fatal("nil injector counted")
	}
}

func TestRuleFiresAtNthOccurrence(t *testing.T) {
	in := New(Rule{Op: "scan", After: 3})
	for i := 1; i <= 5; i++ {
		err := in.Check("scan")
		if i == 3 {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("occurrence 3: got %v, want ErrInjected", err)
			}
		} else if err != nil {
			t.Fatalf("occurrence %d: unexpected %v", i, err)
		}
	}
	if in.Count("scan") != 5 {
		t.Fatalf("count = %d, want 5", in.Count("scan"))
	}
}

func TestRuleEveryRefires(t *testing.T) {
	in := New(Rule{Op: "spill.write", After: 2, Every: 3})
	var fired []int
	for i := 1; i <= 10; i++ {
		if in.Check("spill.write") != nil {
			fired = append(fired, i)
		}
	}
	want := []int{2, 5, 8}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

func TestCustomErrorAndOpScoping(t *testing.T) {
	boom := errors.New("boom")
	in := New(Rule{Op: "scan", After: 1, Err: boom})
	if err := in.Check("spill.read"); err != nil {
		t.Fatalf("unscoped op injected %v", err)
	}
	if err := in.Check("scan"); !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestEmptyOpMatchesEverything(t *testing.T) {
	in := New(Rule{After: 1, Every: 1})
	for _, op := range []string{"scan", "spill.create", "anything"} {
		if in.Check(op) == nil {
			t.Fatalf("op %q not injected by wildcard rule", op)
		}
	}
}

func TestLatencyInjection(t *testing.T) {
	in := New(Rule{Op: "scan", Latency: 5 * time.Millisecond})
	start := time.Now()
	if err := in.Check("scan"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("latency not applied: %v", d)
	}
}

// TestTransientClearsAfterTimes: a Times=N rule fires on exactly N
// consecutive occurrences starting at After, then clears — the transient
// mode retry loops are tested against.
func TestTransientClearsAfterTimes(t *testing.T) {
	in := New(Rule{Op: "segment.fsync", After: 2, Times: 3, Err: ErrTransient})
	var fired []int
	for i := 1; i <= 8; i++ {
		if err := in.Check("segment.fsync"); err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("occurrence %d: got %v, want ErrTransient", i, err)
			}
			fired = append(fired, i)
		}
	}
	want := []int{2, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired at %v, want %v", fired, want)
		}
	}
}

// TestPartialWriteFlag: CheckPartial reports the torn-write request of a
// Partial rule, and plain Check still surfaces the error.
func TestPartialWriteFlag(t *testing.T) {
	in := New(Rule{Op: "manifest.append", After: 1, Partial: true})
	partial, err := in.CheckPartial("manifest.append")
	if !partial || !errors.Is(err, ErrInjected) {
		t.Fatalf("CheckPartial = (%v, %v), want (true, ErrInjected)", partial, err)
	}
	if partial, err := in.CheckPartial("manifest.append"); partial || err != nil {
		t.Fatalf("after firing: (%v, %v), want (false, nil)", partial, err)
	}
	in2 := New(Rule{Op: "segment.writefile", After: 1, Partial: true})
	if err := in2.Check("segment.writefile"); !errors.Is(err, ErrInjected) {
		t.Fatalf("Check on a partial rule: got %v, want ErrInjected", err)
	}
}

// TestConcurrentCountersFireOnce: the counter stream is global across
// goroutines, so an After=N rule fires exactly once no matter which worker
// hits the Nth occurrence.
func TestConcurrentCountersFireOnce(t *testing.T) {
	in := New(Rule{Op: "scan", After: 500})
	const workers, perWorker = 8, 250
	var wg sync.WaitGroup
	var mu sync.Mutex
	var fired int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if in.Check("scan") != nil {
					mu.Lock()
					fired++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	if fired != 1 {
		t.Fatalf("rule fired %d times, want exactly once", fired)
	}
	if n := in.Count("scan"); n != workers*perWorker {
		t.Fatalf("count = %d, want %d", n, workers*perWorker)
	}
}
