package histogram

import (
	"math"
	"sort"

	"repro/internal/datum"
)

// Hist2D is a two-dimensional histogram (§5.1.1: "one option is to consider
// 2-dimensional histograms [45,51]"): the first column is equi-depth
// bucketized, and each slice holds an equi-depth histogram of the second
// column restricted to that slice. It captures the joint distribution that
// per-column histograms plus the independence assumption cannot.
type Hist2D struct {
	Slices []Slice2D
	Total  float64
}

// Slice2D is one first-column range with the conditional distribution of the
// second column inside it.
type Slice2D struct {
	Lower, Upper datum.D
	Count        float64
	Inner        *Histogram
}

// Build2D constructs a 2-D histogram over (a, b) pairs with kOuter slices of
// a and kInner buckets of b per slice. Pairs where either value is NULL are
// ignored.
func Build2D(as, bs []datum.D, kOuter, kInner int) *Hist2D {
	if len(as) != len(bs) {
		panic("histogram: Build2D requires parallel slices")
	}
	type pair struct{ a, b datum.D }
	var pairs []pair
	for i := range as {
		if as[i].IsNull() || bs[i].IsNull() {
			continue
		}
		pairs = append(pairs, pair{as[i], bs[i]})
	}
	h := &Hist2D{}
	n := len(pairs)
	if n == 0 {
		return h
	}
	sort.Slice(pairs, func(i, j int) bool { return datum.Compare(pairs[i].a, pairs[j].a) < 0 })
	if kOuter < 1 {
		kOuter = 1
	}
	if kOuter > n {
		kOuter = n
	}
	per := n / kOuter
	rem := n % kOuter
	i := 0
	for s := 0; s < kOuter && i < n; s++ {
		size := per
		if s < rem {
			size++
		}
		j := i + size
		if j > n {
			j = n
		}
		// Never split equal first-column values across slices.
		for j < n && datum.Equal(pairs[j].a, pairs[j-1].a) {
			j++
		}
		bVals := make([]datum.D, 0, j-i)
		for k := i; k < j; k++ {
			bVals = append(bVals, pairs[k].b)
		}
		h.Slices = append(h.Slices, Slice2D{
			Lower: pairs[i].a,
			Upper: pairs[j-1].a,
			Count: float64(j - i),
			Inner: BuildEquiDepth(bVals, kInner),
		})
		i = j
	}
	for _, s := range h.Slices {
		h.Total += s.Count
	}
	return h
}

// SelectivityRanges estimates the fraction of rows with a in [aLo, aHi] and
// b in [bLo, bHi] (NULL bounds unbounded, inclusivity per flag) using the
// joint distribution.
func (h *Hist2D) SelectivityRanges(aLo datum.D, aLoIncl bool, aHi datum.D, aHiIncl bool,
	bLo datum.D, bLoIncl bool, bHi datum.D, bHiIncl bool) float64 {
	if h.Total == 0 {
		return 0
	}
	est := 0.0
	for _, s := range h.Slices {
		frac := sliceOverlap(s, aLo, aLoIncl, aHi, aHiIncl)
		if frac <= 0 {
			continue
		}
		est += frac * s.Inner.EstimateRange(bLo, bLoIncl, bHi, bHiIncl)
	}
	return clamp01(est / h.Total)
}

// sliceOverlap returns the fraction of the slice's rows with a in range
// (uniform-spread within the slice when partially covered).
func sliceOverlap(s Slice2D, lo datum.D, loIncl bool, hi datum.D, hiIncl bool) float64 {
	b := Bucket{Lower: s.Lower, Upper: s.Upper, Count: s.Count, Distinct: math.Max(1, s.Count)}
	var h Histogram
	covered := h.bucketOverlap(b, lo, loIncl, hi, hiIncl)
	if s.Count <= 0 {
		return 0
	}
	return covered / s.Count
}
