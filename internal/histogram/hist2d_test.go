package histogram

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datum"
)

// correlatedPairs builds columns where b tracks a closely (b = a + noise).
func correlatedPairs(n int, rng *rand.Rand) (as, bs []datum.D) {
	for i := 0; i < n; i++ {
		a := rng.Int63n(1000)
		b := a + rng.Int63n(20) - 10
		as = append(as, datum.NewInt(a))
		bs = append(bs, datum.NewInt(b))
	}
	return
}

func exactJointSel(as, bs []datum.D, aHi, bHi int64) float64 {
	n, hits := 0, 0
	for i := range as {
		if as[i].IsNull() || bs[i].IsNull() {
			continue
		}
		n++
		if as[i].Int() <= aHi && bs[i].Int() <= bHi {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

func TestHist2DCorrelatedBeatsIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	as, bs := correlatedPairs(40000, rng)
	h2 := Build2D(as, bs, 20, 10)
	ha := BuildEquiDepth(as, 30)
	hb := BuildEquiDepth(bs, 30)

	for _, hi := range []int64{100, 300, 500, 800} {
		exact := exactJointSel(as, bs, hi, hi)
		joint := h2.SelectivityRanges(datum.Null, false, datum.NewInt(hi), true,
			datum.Null, false, datum.NewInt(hi), true)
		indep := ha.SelectivityRange(datum.Null, false, datum.NewInt(hi), true) *
			hb.SelectivityRange(datum.Null, false, datum.NewInt(hi), true)
		jointErr := math.Abs(joint - exact)
		indepErr := math.Abs(indep - exact)
		if jointErr > indepErr {
			t.Errorf("hi=%d: joint err %.4f should beat independence err %.4f (exact %.4f, joint %.4f, indep %.4f)",
				hi, jointErr, indepErr, exact, joint, indep)
		}
		if jointErr > 0.05 {
			t.Errorf("hi=%d: joint estimate off by %.4f (exact %.4f, joint %.4f)", hi, jointErr, exact, joint)
		}
	}
}

func TestHist2DIndependentColumnsStillFine(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var as, bs []datum.D
	for i := 0; i < 20000; i++ {
		as = append(as, datum.NewInt(rng.Int63n(1000)))
		bs = append(bs, datum.NewInt(rng.Int63n(1000)))
	}
	h2 := Build2D(as, bs, 15, 10)
	exact := exactJointSel(as, bs, 500, 500)
	got := h2.SelectivityRanges(datum.Null, false, datum.NewInt(500), true,
		datum.Null, false, datum.NewInt(500), true)
	if math.Abs(got-exact) > 0.05 {
		t.Errorf("independent columns: got %.4f, exact %.4f", got, exact)
	}
}

func TestHist2DEdgeCases(t *testing.T) {
	h := Build2D(nil, nil, 4, 4)
	if h.Total != 0 {
		t.Error("empty 2D histogram")
	}
	if got := h.SelectivityRanges(datum.Null, false, datum.Null, false, datum.Null, false, datum.Null, false); got != 0 {
		t.Error("empty histogram selectivity should be 0")
	}
	// NULLs ignored.
	as := []datum.D{datum.NewInt(1), datum.Null, datum.NewInt(2)}
	bs := []datum.D{datum.NewInt(1), datum.NewInt(5), datum.Null}
	h = Build2D(as, bs, 2, 2)
	if h.Total != 1 {
		t.Errorf("Total = %v, want 1 (rows with any NULL dropped)", h.Total)
	}
	// Unbounded ranges select everything.
	if got := h.SelectivityRanges(datum.Null, false, datum.Null, false, datum.Null, false, datum.Null, false); got != 1 {
		t.Errorf("unbounded selectivity = %v, want 1", got)
	}
	// Mismatched lengths panic.
	defer func() {
		if recover() == nil {
			t.Error("mismatched slices should panic")
		}
	}()
	Build2D([]datum.D{datum.NewInt(1)}, nil, 2, 2)
}

func TestHist2DSelectivityBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	as, bs := correlatedPairs(5000, rng)
	h2 := Build2D(as, bs, 10, 8)
	for trial := 0; trial < 200; trial++ {
		aLo, aHi := rng.Int63n(1200)-100, rng.Int63n(1200)-100
		if aLo > aHi {
			aLo, aHi = aHi, aLo
		}
		bLo, bHi := rng.Int63n(1200)-100, rng.Int63n(1200)-100
		if bLo > bHi {
			bLo, bHi = bHi, bLo
		}
		got := h2.SelectivityRanges(datum.NewInt(aLo), true, datum.NewInt(aHi), true,
			datum.NewInt(bLo), true, datum.NewInt(bHi), true)
		if got < 0 || got > 1 {
			t.Fatalf("selectivity %v out of [0,1]", got)
		}
	}
}
