// Package histogram implements the statistical summaries of Section 5.1 of
// the paper: equi-depth and compressed (end-biased) histograms, construction
// from full data or from random samples, incremental maintenance in the style
// of Gibbons/Matias/Poosala, and sampling-based distinct-value estimation.
//
// A histogram describes the distribution of non-NULL values in one column.
// NULL counts are tracked by the catalog, outside the histogram.
package histogram

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/datum"
)

// Kind distinguishes histogram construction strategies.
type Kind uint8

// Histogram kinds, per §5.1.1.
const (
	// EquiDepth divides the sorted values into buckets of (nearly) equal
	// row count.
	EquiDepth Kind = iota
	// Compressed places frequently occurring values in singleton buckets
	// and equi-depth-buckets the rest; effective for high- or low-skew
	// data (Poosala et al., the paper's [52]).
	Compressed
)

func (k Kind) String() string {
	switch k {
	case EquiDepth:
		return "equi-depth"
	case Compressed:
		return "compressed"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Bucket summarizes one value range (Lower, Upper], except the first bucket
// which is inclusive at both ends. Singleton buckets have Lower == Upper and
// DistinctCount == 1.
type Bucket struct {
	Lower     datum.D
	Upper     datum.D
	Count     float64 // number of rows whose value falls in the bucket
	Distinct  float64 // estimated number of distinct values in the bucket
	Singleton bool    // exactly one value, counted precisely
}

// Histogram is a bucketized summary of a column's non-NULL values.
type Histogram struct {
	Kind     Kind
	Buckets  []Bucket
	Total    float64 // total row count summarized (sum of bucket counts)
	Distinct float64 // estimated total distinct values
}

// uniformWithin is the within-bucket assumption the paper discusses: values
// inside a bucket occur with uniform spread between its endpoints.

// TotalCount returns the number of rows summarized.
func (h *Histogram) TotalCount() float64 { return h.Total }

// Min returns the smallest summarized value, or NULL for an empty histogram.
func (h *Histogram) Min() datum.D {
	if len(h.Buckets) == 0 {
		return datum.Null
	}
	return h.Buckets[0].Lower
}

// Max returns the largest summarized value, or NULL for an empty histogram.
func (h *Histogram) Max() datum.D {
	if len(h.Buckets) == 0 {
		return datum.Null
	}
	return h.Buckets[len(h.Buckets)-1].Upper
}

// BuildEquiDepth constructs a k-bucket equi-depth histogram over values.
// NULLs in the input are ignored. The input slice is not modified.
func BuildEquiDepth(values []datum.D, k int) *Histogram {
	vals := sortedNonNull(values)
	return buildEquiDepthSorted(vals, k, EquiDepth)
}

// BuildCompressed constructs a compressed histogram: values whose frequency
// exceeds total/k are placed in singleton buckets (up to maxSingletons) and
// the remaining values are equi-depth-bucketized into the remaining budget.
func BuildCompressed(values []datum.D, k, maxSingletons int) *Histogram {
	vals := sortedNonNull(values)
	if len(vals) == 0 {
		return &Histogram{Kind: Compressed}
	}
	if k < 1 {
		k = 1
	}
	threshold := float64(len(vals)) / float64(k)
	type vf struct {
		v datum.D
		f int
	}
	var freqs []vf
	for i := 0; i < len(vals); {
		j := i
		for j < len(vals) && datum.Equal(vals[j], vals[i]) {
			j++
		}
		freqs = append(freqs, vf{vals[i], j - i})
		i = j
	}
	// Pick singletons: frequent values, highest frequency first.
	cand := make([]int, 0, len(freqs))
	for i, f := range freqs {
		if float64(f.f) > threshold {
			cand = append(cand, i)
		}
	}
	sort.Slice(cand, func(a, b int) bool { return freqs[cand[a]].f > freqs[cand[b]].f })
	if maxSingletons >= 0 && len(cand) > maxSingletons {
		cand = cand[:maxSingletons]
	}
	isSingleton := make(map[int]bool, len(cand))
	for _, i := range cand {
		isSingleton[i] = true
	}

	var rest []datum.D
	var singles []Bucket
	for i, f := range freqs {
		if isSingleton[i] {
			singles = append(singles, Bucket{
				Lower: f.v, Upper: f.v, Count: float64(f.f), Distinct: 1, Singleton: true,
			})
		} else {
			for n := 0; n < f.f; n++ {
				rest = append(rest, f.v)
			}
		}
	}
	budget := k - len(singles)
	if budget < 1 {
		budget = 1
	}
	base := buildEquiDepthSorted(rest, budget, Compressed)
	base.Kind = Compressed
	base.Buckets = mergeSorted(base.Buckets, singles)
	base.Total = 0
	base.Distinct = 0
	for _, b := range base.Buckets {
		base.Total += b.Count
		base.Distinct += b.Distinct
	}
	return base
}

// mergeSorted merges regular buckets and singleton buckets into one ordered
// bucket list (singletons are already disjoint from the regular buckets'
// values because their rows were removed before equi-depth construction, but
// ranges may interleave).
func mergeSorted(a, b []Bucket) []Bucket {
	out := append(append([]Bucket{}, a...), b...)
	sort.Slice(out, func(i, j int) bool {
		c := datum.Compare(out[i].Upper, out[j].Upper)
		if c != 0 {
			return c < 0
		}
		return datum.Compare(out[i].Lower, out[j].Lower) < 0
	})
	return out
}

func sortedNonNull(values []datum.D) []datum.D {
	vals := make([]datum.D, 0, len(values))
	for _, v := range values {
		if !v.IsNull() {
			vals = append(vals, v)
		}
	}
	sort.Slice(vals, func(i, j int) bool { return datum.Compare(vals[i], vals[j]) < 0 })
	return vals
}

func buildEquiDepthSorted(vals []datum.D, k int, kind Kind) *Histogram {
	h := &Histogram{Kind: kind}
	n := len(vals)
	if n == 0 {
		return h
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	per := n / k
	rem := n % k
	i := 0
	for b := 0; b < k && i < n; b++ {
		size := per
		if b < rem {
			size++
		}
		j := i + size
		if j > n {
			j = n
		}
		// Extend bucket to include all duplicates of the boundary value so a
		// single value never straddles buckets.
		for j < n && datum.Equal(vals[j], vals[j-1]) {
			j++
		}
		distinct := countDistinctSorted(vals[i:j])
		h.Buckets = append(h.Buckets, Bucket{
			Lower:    vals[i],
			Upper:    vals[j-1],
			Count:    float64(j - i),
			Distinct: float64(distinct),
		})
		i = j
	}
	for _, b := range h.Buckets {
		h.Total += b.Count
		h.Distinct += b.Distinct
	}
	return h
}

func countDistinctSorted(vals []datum.D) int {
	if len(vals) == 0 {
		return 0
	}
	n := 1
	for i := 1; i < len(vals); i++ {
		if !datum.Equal(vals[i], vals[i-1]) {
			n++
		}
	}
	return n
}

// EstimateEq estimates the number of rows with value v.
func (h *Histogram) EstimateEq(v datum.D) float64 {
	if v.IsNull() || len(h.Buckets) == 0 {
		return 0
	}
	for _, b := range h.Buckets {
		if datum.Compare(v, b.Lower) >= 0 && datum.Compare(v, b.Upper) <= 0 {
			if b.Singleton {
				if datum.Equal(v, b.Lower) {
					return b.Count
				}
				continue
			}
			if b.Distinct <= 0 {
				return 0
			}
			return b.Count / b.Distinct
		}
	}
	return 0
}

// EstimateRange estimates the number of rows with lo <(=) value <(=) hi.
// A NULL bound means unbounded on that side.
func (h *Histogram) EstimateRange(lo datum.D, loIncl bool, hi datum.D, hiIncl bool) float64 {
	total := 0.0
	for _, b := range h.Buckets {
		total += h.bucketOverlap(b, lo, loIncl, hi, hiIncl)
	}
	return total
}

// bucketOverlap estimates how many of bucket b's rows satisfy the range.
func (h *Histogram) bucketOverlap(b Bucket, lo datum.D, loIncl bool, hi datum.D, hiIncl bool) float64 {
	// Entirely below or above?
	if !lo.IsNull() {
		c := datum.Compare(b.Upper, lo)
		if c < 0 || (c == 0 && !loIncl) {
			return 0
		}
	}
	if !hi.IsNull() {
		c := datum.Compare(b.Lower, hi)
		if c > 0 || (c == 0 && !hiIncl) {
			return 0
		}
	}
	// Entirely inside?
	inLo := lo.IsNull() || datum.Compare(b.Lower, lo) > 0 || (datum.Compare(b.Lower, lo) == 0 && loIncl)
	inHi := hi.IsNull() || datum.Compare(b.Upper, hi) < 0 || (datum.Compare(b.Upper, hi) == 0 && hiIncl)
	if inLo && inHi {
		return b.Count
	}
	// Partial overlap: uniform-spread assumption within the bucket
	// (numeric interpolation when possible, else half the bucket).
	frac := overlapFraction(b, lo, loIncl, hi, hiIncl)
	est := b.Count * frac
	if est < 0 {
		est = 0
	}
	if est > b.Count {
		est = b.Count
	}
	return est
}

func overlapFraction(b Bucket, lo datum.D, loIncl bool, hi datum.D, hiIncl bool) float64 {
	if b.Lower.Kind().Numeric() && b.Upper.Kind().Numeric() {
		lowEnd, highEnd := b.Lower.Float(), b.Upper.Float()
		width := highEnd - lowEnd
		if width <= 0 {
			return 1
		}
		l, r := lowEnd, highEnd
		if !lo.IsNull() && lo.Kind().Numeric() && lo.Float() > l {
			l = lo.Float()
		}
		if !hi.IsNull() && hi.Kind().Numeric() && hi.Float() < r {
			r = hi.Float()
		}
		if r < l {
			return 0
		}
		f := (r - l) / width
		// Nudge for exclusive endpoints on (near-)discrete domains.
		if b.Distinct > 0 {
			unit := 1 / b.Distinct
			if !loIncl && !lo.IsNull() && lo.Float() >= l {
				f -= unit * 0.5
			}
			if !hiIncl && !hi.IsNull() && hi.Float() <= r {
				f -= unit * 0.5
			}
		}
		if f < 0 {
			f = 0
		}
		return f
	}
	return 0.5
}

// SelectivityEq returns the fraction of summarized rows equal to v.
func (h *Histogram) SelectivityEq(v datum.D) float64 {
	if h.Total == 0 {
		return 0
	}
	return clamp01(h.EstimateEq(v) / h.Total)
}

// SelectivityRange returns the fraction of summarized rows in the range.
func (h *Histogram) SelectivityRange(lo datum.D, loIncl bool, hi datum.D, hiIncl bool) float64 {
	if h.Total == 0 {
		return 0
	}
	return clamp01(h.EstimateRange(lo, loIncl, hi, hiIncl) / h.Total)
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// FilterRange returns a new histogram describing the rows that satisfy the
// range predicate — statistical propagation through a selection (§5.1.3).
func (h *Histogram) FilterRange(lo datum.D, loIncl bool, hi datum.D, hiIncl bool) *Histogram {
	out := &Histogram{Kind: h.Kind}
	for _, b := range h.Buckets {
		cnt := h.bucketOverlap(b, lo, loIncl, hi, hiIncl)
		if cnt <= 0 {
			continue
		}
		nb := b
		nb.Count = cnt
		if !lo.IsNull() && datum.Compare(nb.Lower, lo) < 0 {
			nb.Lower = lo
		}
		if !hi.IsNull() && datum.Compare(nb.Upper, hi) > 0 {
			nb.Upper = hi
		}
		if frac := cnt / b.Count; frac < 1 && !b.Singleton {
			nb.Distinct = math.Max(1, b.Distinct*frac)
		}
		out.Buckets = append(out.Buckets, nb)
	}
	for _, b := range out.Buckets {
		out.Total += b.Count
		out.Distinct += b.Distinct
	}
	return out
}

// JoinCardinality estimates |R ⋈ S| on an equality predicate between the two
// histogrammed columns by aligning buckets (the "joining histograms" of
// §5.1.3). Within an aligned fragment it applies the containment assumption:
// each value of the smaller distinct set matches in the larger.
func JoinCardinality(a, b *Histogram) float64 {
	if a == nil || b == nil || len(a.Buckets) == 0 || len(b.Buckets) == 0 {
		return 0
	}
	total := 0.0
	for _, ba := range a.Buckets {
		for _, bb := range b.Buckets {
			total += bucketJoin(ba, bb)
		}
	}
	return total
}

func bucketJoin(a, b Bucket) float64 {
	lo, hi := a.Lower, a.Upper
	if datum.Compare(b.Lower, lo) > 0 {
		lo = b.Lower
	}
	if datum.Compare(b.Upper, hi) < 0 {
		hi = b.Upper
	}
	if datum.Compare(lo, hi) > 0 {
		return 0
	}
	fa := overlapFraction(a, lo, true, hi, true)
	fb := overlapFraction(b, lo, true, hi, true)
	ca, cb := a.Count*fa, b.Count*fb
	da, db := math.Max(1, a.Distinct*fa), math.Max(1, b.Distinct*fb)
	dmax := math.Max(da, db)
	return ca * cb / dmax
}

// String renders the histogram for diagnostics.
func (h *Histogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s histogram: total=%.0f distinct=%.0f\n", h.Kind, h.Total, h.Distinct)
	for i, b := range h.Buckets {
		tag := ""
		if b.Singleton {
			tag = " [singleton]"
		}
		fmt.Fprintf(&sb, "  b%d: [%s, %s] count=%.1f distinct=%.1f%s\n",
			i, b.Lower, b.Upper, b.Count, b.Distinct, tag)
	}
	return sb.String()
}
