package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/datum"
)

func ints(vs ...int64) []datum.D {
	out := make([]datum.D, len(vs))
	for i, v := range vs {
		out[i] = datum.NewInt(v)
	}
	return out
}

func uniformInts(n int, lo, hi int64, rng *rand.Rand) []datum.D {
	out := make([]datum.D, n)
	for i := range out {
		out[i] = datum.NewInt(lo + rng.Int63n(hi-lo+1))
	}
	return out
}

// zipfInts draws n values over [1, dom] with Zipfian skew s.
func zipfInts(n, dom int, s float64, rng *rand.Rand) []datum.D {
	z := rand.NewZipf(rng, s, 1, uint64(dom-1))
	out := make([]datum.D, n)
	for i := range out {
		out[i] = datum.NewInt(int64(z.Uint64()) + 1)
	}
	return out
}

func exactRange(values []datum.D, lo datum.D, loIncl bool, hi datum.D, hiIncl bool) float64 {
	n := 0.0
	for _, v := range values {
		if v.IsNull() {
			continue
		}
		if !lo.IsNull() {
			c := datum.Compare(v, lo)
			if c < 0 || (c == 0 && !loIncl) {
				continue
			}
		}
		if !hi.IsNull() {
			c := datum.Compare(v, hi)
			if c > 0 || (c == 0 && !hiIncl) {
				continue
			}
		}
		n++
	}
	return n
}

func TestBuildEquiDepthBasic(t *testing.T) {
	vals := ints(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	h := BuildEquiDepth(vals, 5)
	if h.Total != 10 {
		t.Fatalf("Total = %v, want 10", h.Total)
	}
	if len(h.Buckets) != 5 {
		t.Fatalf("buckets = %d, want 5", len(h.Buckets))
	}
	for _, b := range h.Buckets {
		if b.Count != 2 {
			t.Errorf("equi-depth bucket count = %v, want 2", b.Count)
		}
	}
	if h.Distinct != 10 {
		t.Errorf("Distinct = %v, want 10", h.Distinct)
	}
}

func TestBuildEquiDepthIgnoresNulls(t *testing.T) {
	vals := append(ints(1, 2, 3), datum.Null, datum.Null)
	h := BuildEquiDepth(vals, 2)
	if h.Total != 3 {
		t.Fatalf("Total = %v, want 3 (NULLs ignored)", h.Total)
	}
}

func TestBuildEquiDepthEmpty(t *testing.T) {
	h := BuildEquiDepth(nil, 4)
	if h.Total != 0 || len(h.Buckets) != 0 {
		t.Fatal("empty histogram should have no buckets")
	}
	if !h.Min().IsNull() || !h.Max().IsNull() {
		t.Fatal("empty histogram min/max should be NULL")
	}
	if h.EstimateEq(datum.NewInt(1)) != 0 {
		t.Fatal("empty histogram estimates 0")
	}
}

func TestDuplicatesDontStraddle(t *testing.T) {
	// 50 copies of value 5 plus others; 5 must live in exactly one bucket.
	var vals []datum.D
	for i := 0; i < 50; i++ {
		vals = append(vals, datum.NewInt(5))
	}
	vals = append(vals, ints(1, 2, 3, 4, 6, 7, 8, 9)...)
	h := BuildEquiDepth(vals, 4)
	holding := 0
	for _, b := range h.Buckets {
		if datum.Compare(datum.NewInt(5), b.Lower) >= 0 && datum.Compare(datum.NewInt(5), b.Upper) <= 0 {
			holding++
		}
	}
	if holding != 1 {
		t.Errorf("value 5 covered by %d buckets, want 1", holding)
	}
	// Equi-depth smears the heavy value across its bucket; compressed
	// histograms isolate it exactly — the paper's motivation for them.
	hc := BuildCompressed(vals, 4, 2)
	if got := hc.EstimateEq(datum.NewInt(5)); got != 50 {
		t.Errorf("compressed EstimateEq(5) = %v, want exactly 50", got)
	}
}

func TestCompressedSingletons(t *testing.T) {
	var vals []datum.D
	for i := 0; i < 100; i++ {
		vals = append(vals, datum.NewInt(7))
	}
	for i := 0; i < 80; i++ {
		vals = append(vals, datum.NewInt(13))
	}
	rng := rand.New(rand.NewSource(3))
	vals = append(vals, uniformInts(100, 1000, 1050, rng)...) // disjoint from 7 and 13
	h := BuildCompressed(vals, 10, 4)
	var s7, s13 bool
	for _, b := range h.Buckets {
		if b.Singleton && datum.Equal(b.Lower, datum.NewInt(7)) {
			s7 = true
			if b.Count != 100 {
				t.Errorf("singleton 7 count = %v, want 100", b.Count)
			}
		}
		if b.Singleton && datum.Equal(b.Lower, datum.NewInt(13)) {
			s13 = true
		}
	}
	if !s7 || !s13 {
		t.Fatalf("expected singleton buckets for 7 and 13; got:\n%s", h)
	}
	if got := h.EstimateEq(datum.NewInt(7)); got != 100 {
		t.Errorf("EstimateEq(7) = %v, want exactly 100", got)
	}
}

func TestCompressedBeatsEquiDepthOnSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := zipfInts(20000, 1000, 1.5, rng)
	ed := BuildEquiDepth(vals, 20)
	cp := BuildCompressed(vals, 20, 10)
	// Compare mean relative error of equality estimates on the hottest values.
	freq := map[int64]float64{}
	for _, v := range vals {
		freq[v.Int()]++
	}
	errOf := func(h *Histogram) float64 {
		var sum float64
		var n int
		for v, f := range freq {
			if f < 50 {
				continue // only hot values
			}
			est := h.EstimateEq(datum.NewInt(v))
			sum += math.Abs(est-f) / f
			n++
		}
		return sum / float64(n)
	}
	if e1, e2 := errOf(cp), errOf(ed); e1 > e2 {
		t.Errorf("compressed error %.3f should beat equi-depth %.3f on skewed data", e1, e2)
	}
}

func TestEstimateRangeAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := uniformInts(10000, 0, 999, rng)
	h := BuildEquiDepth(vals, 50)
	for _, rg := range [][2]int64{{100, 200}, {0, 999}, {500, 501}, {900, 2000}} {
		lo, hi := datum.NewInt(rg[0]), datum.NewInt(rg[1])
		got := h.EstimateRange(lo, true, hi, true)
		want := exactRange(vals, lo, true, hi, true)
		if want > 100 && math.Abs(got-want)/want > 0.15 {
			t.Errorf("range [%d,%d]: est %.0f vs exact %.0f", rg[0], rg[1], got, want)
		}
	}
}

func TestEstimateRangeOpenEnds(t *testing.T) {
	vals := ints(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	h := BuildEquiDepth(vals, 5)
	if got := h.EstimateRange(datum.Null, false, datum.Null, false); got != 10 {
		t.Errorf("unbounded range = %v, want 10", got)
	}
	got := h.EstimateRange(datum.NewInt(5), false, datum.Null, false) // > 5
	if math.Abs(got-5) > 2 {
		t.Errorf("> 5 estimate = %v, want near 5", got)
	}
}

func TestSelectivityBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := zipfInts(5000, 100, 1.2, rng)
	h := BuildCompressed(vals, 10, 5)
	for v := int64(0); v < 120; v++ {
		s := h.SelectivityEq(datum.NewInt(v))
		if s < 0 || s > 1 {
			t.Fatalf("SelectivityEq(%d) = %v out of [0,1]", v, s)
		}
	}
	for i := 0; i < 100; i++ {
		a, b := rng.Int63n(120), rng.Int63n(120)
		if a > b {
			a, b = b, a
		}
		s := h.SelectivityRange(datum.NewInt(a), true, datum.NewInt(b), true)
		if s < 0 || s > 1 {
			t.Fatalf("SelectivityRange = %v out of [0,1]", s)
		}
	}
}

// Property: bucket counts sum to total, boundaries are ordered, every input
// value is covered by some bucket.
func TestHistogramInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 100; iter++ {
		n := 1 + rng.Intn(500)
		k := 1 + rng.Intn(20)
		var vals []datum.D
		if iter%2 == 0 {
			vals = uniformInts(n, -50, 50, rng)
		} else {
			vals = zipfInts(n, 40, 1.3, rng)
		}
		var h *Histogram
		if iter%3 == 0 {
			h = BuildCompressed(vals, k, k/2)
		} else {
			h = BuildEquiDepth(vals, k)
		}
		var sum float64
		for i, b := range h.Buckets {
			sum += b.Count
			if datum.Compare(b.Lower, b.Upper) > 0 {
				t.Fatalf("iter %d bucket %d: lower > upper", iter, i)
			}
			if b.Count <= 0 || b.Distinct <= 0 {
				t.Fatalf("iter %d bucket %d: nonpositive count/distinct", iter, i)
			}
		}
		if math.Abs(sum-float64(n)) > 1e-6 {
			t.Fatalf("iter %d: counts sum %.1f != n %d", iter, sum, n)
		}
		for _, v := range vals {
			covered := false
			for _, b := range h.Buckets {
				if datum.Compare(v, b.Lower) >= 0 && datum.Compare(v, b.Upper) <= 0 {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("iter %d: value %s not covered\n%s", iter, v, h)
			}
		}
	}
}

func TestFilterRangePropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	vals := uniformInts(10000, 0, 999, rng)
	h := BuildEquiDepth(vals, 40)
	f := h.FilterRange(datum.NewInt(100), true, datum.NewInt(299), true)
	want := exactRange(vals, datum.NewInt(100), true, datum.NewInt(299), true)
	if math.Abs(f.Total-want)/want > 0.15 {
		t.Errorf("filtered total %.0f vs exact %.0f", f.Total, want)
	}
	if datum.Compare(f.Min(), datum.NewInt(100)) < 0 {
		t.Errorf("filtered min %s below bound", f.Min())
	}
	if datum.Compare(f.Max(), datum.NewInt(299)) > 0 {
		t.Errorf("filtered max %s above bound", f.Max())
	}
	// Estimates on the filtered histogram should be sane.
	got := f.EstimateRange(datum.NewInt(150), true, datum.NewInt(199), true)
	exact := exactRange(vals, datum.NewInt(150), true, datum.NewInt(199), true)
	if exact > 100 && math.Abs(got-exact)/exact > 0.3 {
		t.Errorf("post-filter range est %.0f vs exact %.0f", got, exact)
	}
}

func TestJoinCardinality(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	// Foreign-key-like join: R.fk uniform over [0,99], S.pk = 0..99 once.
	r := uniformInts(5000, 0, 99, rng)
	s := make([]datum.D, 100)
	for i := range s {
		s[i] = datum.NewInt(int64(i))
	}
	hr := BuildEquiDepth(r, 20)
	hs := BuildEquiDepth(s, 20)
	got := JoinCardinality(hr, hs)
	// Exact join size is 5000 (every R row matches exactly one S row).
	if math.Abs(got-5000)/5000 > 0.25 {
		t.Errorf("join cardinality %.0f, want near 5000", got)
	}
	if JoinCardinality(nil, hs) != 0 || JoinCardinality(hr, &Histogram{}) != 0 {
		t.Error("nil/empty join should be 0")
	}
}

func TestJoinCardinalityDisjoint(t *testing.T) {
	a := BuildEquiDepth(ints(1, 2, 3, 4, 5), 2)
	b := BuildEquiDepth(ints(100, 200, 300), 2)
	if got := JoinCardinality(a, b); got != 0 {
		t.Errorf("disjoint join cardinality = %v, want 0", got)
	}
}

func TestStringColumnHistogram(t *testing.T) {
	vals := []datum.D{
		datum.NewString("alpha"), datum.NewString("beta"), datum.NewString("beta"),
		datum.NewString("gamma"), datum.NewString("delta"), datum.NewString("zeta"),
	}
	h := BuildEquiDepth(vals, 3)
	if h.Total != 6 {
		t.Fatalf("Total = %v", h.Total)
	}
	if got := h.EstimateEq(datum.NewString("beta")); got <= 0 {
		t.Errorf("string eq estimate = %v, want > 0", got)
	}
	// Range over strings uses the half-bucket fallback; must stay bounded.
	got := h.EstimateRange(datum.NewString("b"), true, datum.NewString("g"), true)
	if got < 0 || got > 6 {
		t.Errorf("string range estimate %v out of bounds", got)
	}
}

func TestString(t *testing.T) {
	h := BuildEquiDepth(ints(1, 2, 3), 2)
	s := h.String()
	if s == "" {
		t.Error("String() empty")
	}
}

// Property (testing/quick): widening a range never decreases the estimate,
// and estimates never exceed the total.
func TestRangeMonotonicityQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	vals := zipfInts(20000, 500, 1.2, rng)
	hists := []*Histogram{
		BuildEquiDepth(vals, 16),
		BuildCompressed(vals, 16, 8),
	}
	f := func(lo8, hi8, widen8 uint8) bool {
		lo, hi := int64(lo8), int64(lo8)+int64(hi8)
		widen := int64(widen8)
		for _, h := range hists {
			inner := h.EstimateRange(datum.NewInt(lo), true, datum.NewInt(hi), true)
			outer := h.EstimateRange(datum.NewInt(lo-widen), true, datum.NewInt(hi+widen), true)
			if inner > outer+1e-9 {
				return false
			}
			if outer > h.Total+1e-9 || inner < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: filtered histograms never report more rows than the original for
// any sub-range.
func TestFilterShrinksQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	vals := uniformInts(20000, 0, 999, rng)
	h := BuildEquiDepth(vals, 24)
	f := func(cut16 uint16, lo8, span8 uint8) bool {
		cut := int64(cut16 % 1000)
		fh := h.FilterRange(datum.Null, false, datum.NewInt(cut), true)
		lo := int64(lo8) * 4
		hi := lo + int64(span8)
		a := fh.EstimateRange(datum.NewInt(lo), true, datum.NewInt(hi), true)
		b := h.EstimateRange(datum.NewInt(lo), true, datum.NewInt(hi), true)
		return a <= b*1.05+1 // small tolerance for re-bucketing noise
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
