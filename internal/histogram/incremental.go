package histogram

import (
	"sort"

	"repro/internal/datum"
)

// Incremental wraps a histogram with approximate maintenance under inserts,
// in the spirit of Gibbons/Matias/Poosala (the paper's [18]): inserts update
// bucket counts in place; when a bucket grows past a split threshold it is
// split at its midpoint, and when the bucket budget is exceeded the two
// smallest adjacent buckets are merged. The result stays an approximate
// equi-depth histogram without rescanning the table.
type Incremental struct {
	H *Histogram
	// MaxBuckets is the bucket budget; splits that would exceed it trigger
	// a merge of the cheapest adjacent pair.
	MaxBuckets int
	// SplitFactor: a bucket splits when its count exceeds
	// SplitFactor * (Total/MaxBuckets). 2.0 is the classical setting.
	SplitFactor float64
}

// NewIncremental starts incremental maintenance over an existing histogram.
func NewIncremental(h *Histogram, maxBuckets int) *Incremental {
	if maxBuckets < 1 {
		maxBuckets = 1
	}
	return &Incremental{H: h, MaxBuckets: maxBuckets, SplitFactor: 2.0}
}

// Insert records one new value.
func (inc *Incremental) Insert(v datum.D) {
	if v.IsNull() {
		return
	}
	h := inc.H
	if len(h.Buckets) == 0 {
		h.Buckets = append(h.Buckets, Bucket{Lower: v, Upper: v, Count: 1, Distinct: 1, Singleton: true})
		h.Total = 1
		h.Distinct = 1
		return
	}
	i := inc.findBucket(v)
	b := &h.Buckets[i]
	// Widen boundary buckets to absorb out-of-range inserts.
	if datum.Compare(v, b.Lower) < 0 {
		b.Lower = v
		b.Distinct++
		h.Distinct++
		b.Singleton = false
	} else if datum.Compare(v, b.Upper) > 0 {
		b.Upper = v
		b.Distinct++
		h.Distinct++
		b.Singleton = false
	}
	b.Count++
	h.Total++
	if b.Count > inc.SplitFactor*h.Total/float64(inc.MaxBuckets) && !b.Singleton {
		inc.split(i)
	}
}

func (inc *Incremental) findBucket(v datum.D) int {
	h := inc.H
	n := len(h.Buckets)
	i := sort.Search(n, func(i int) bool {
		return datum.Compare(h.Buckets[i].Upper, v) >= 0
	})
	if i >= n {
		return n - 1
	}
	return i
}

// split divides bucket i at its (numeric) midpoint, assuming uniform spread.
// Non-numeric buckets are left intact (counts only grow; accuracy degrades
// gracefully, which the experiments measure).
func (inc *Incremental) split(i int) {
	h := inc.H
	b := h.Buckets[i]
	if !b.Lower.Kind().Numeric() || !b.Upper.Kind().Numeric() {
		return
	}
	lo, hi := b.Lower.Float(), b.Upper.Float()
	if hi <= lo {
		return
	}
	mid := (lo + hi) / 2
	left := Bucket{Lower: b.Lower, Upper: datum.NewFloat(mid), Count: b.Count / 2, Distinct: b.Distinct / 2}
	right := Bucket{Lower: datum.NewFloat(mid), Upper: b.Upper, Count: b.Count / 2, Distinct: b.Distinct / 2}
	nb := make([]Bucket, 0, len(h.Buckets)+1)
	nb = append(nb, h.Buckets[:i]...)
	nb = append(nb, left, right)
	nb = append(nb, h.Buckets[i+1:]...)
	h.Buckets = nb
	if len(h.Buckets) > inc.MaxBuckets {
		inc.mergeSmallestPair()
	}
}

func (inc *Incremental) mergeSmallestPair() {
	h := inc.H
	if len(h.Buckets) < 2 {
		return
	}
	best, bestSum := -1, 0.0
	for i := 0; i+1 < len(h.Buckets); i++ {
		s := h.Buckets[i].Count + h.Buckets[i+1].Count
		if best == -1 || s < bestSum {
			best, bestSum = i, s
		}
	}
	a, b := h.Buckets[best], h.Buckets[best+1]
	merged := Bucket{
		Lower:    a.Lower,
		Upper:    b.Upper,
		Count:    a.Count + b.Count,
		Distinct: a.Distinct + b.Distinct,
	}
	nb := make([]Bucket, 0, len(h.Buckets)-1)
	nb = append(nb, h.Buckets[:best]...)
	nb = append(nb, merged)
	nb = append(nb, h.Buckets[best+2:]...)
	h.Buckets = nb
}
