package histogram

import (
	"math"
	"math/rand"

	"repro/internal/datum"
)

// Sample draws a uniform random sample of size m (without replacement) from
// values, using the provided source for reproducibility. If m >= len(values)
// the whole input is returned (copied).
func Sample(values []datum.D, m int, rng *rand.Rand) []datum.D {
	n := len(values)
	if m >= n {
		out := make([]datum.D, n)
		copy(out, values)
		return out
	}
	// Reservoir sampling keeps memory proportional to the sample.
	out := make([]datum.D, m)
	copy(out, values[:m])
	for i := m; i < n; i++ {
		j := rng.Intn(i + 1)
		if j < m {
			out[j] = values[i]
		}
	}
	return out
}

// BuildFromSample constructs a k-bucket equi-depth histogram from a sample of
// the column and scales counts to the full table size n (§5.1.2,
// Piatetsky-Shapiro/Connell and Chaudhuri/Motwani/Narasayya). Distinct counts
// per bucket are scaled with a first-order correction because raw scaling of
// sample distincts is biased.
func BuildFromSample(sample []datum.D, n int, k int) *Histogram {
	h := BuildEquiDepth(sample, k)
	if h.Total == 0 || n <= len(sample) {
		return h
	}
	scale := float64(n) / h.Total
	h.Total = 0
	h.Distinct = 0
	for i := range h.Buckets {
		b := &h.Buckets[i]
		b.Count *= scale
		// Distinct values cannot exceed the (scaled) row count; scaling the
		// observed distincts by sqrt(scale) is the GEE-style compromise.
		b.Distinct = math.Min(b.Count, b.Distinct*math.Sqrt(scale))
		h.Total += b.Count
		h.Distinct += b.Distinct
	}
	return h
}

// DistinctScaleUp naively scales the sample's distinct count by n/m. The
// paper (§5.1.2, citing [27,50]) notes such estimators are provably
// error-prone; E11 quantifies this.
func DistinctScaleUp(sample []datum.D, n int) float64 {
	m := len(sample)
	if m == 0 {
		return 0
	}
	d := distinctCount(sample)
	return math.Min(float64(n), float64(d)*float64(n)/float64(m))
}

// DistinctGEE implements the Guaranteed-Error Estimator of
// Charikar/Chaudhuri/Motwani/Narasayya: sqrt(n/m)·f1 + Σ_{i≥2} f_i, where
// f_i is the number of values appearing exactly i times in the sample. It
// achieves the optimal worst-case ratio error of sqrt(n/m).
func DistinctGEE(sample []datum.D, n int) float64 {
	m := len(sample)
	if m == 0 {
		return 0
	}
	freq := valueFrequencies(sample)
	var f1, rest float64
	for _, f := range freq {
		if f == 1 {
			f1++
		} else {
			rest++
		}
	}
	est := math.Sqrt(float64(n)/float64(m))*f1 + rest
	return math.Min(float64(n), math.Max(est, float64(len(freq))))
}

// DistinctJackknife is the first-order jackknife estimator:
// d̂ = d / (1 - f1·(1-q)/m) approximated as d + f1·(1/q - 1) for small q,
// where q = m/n is the sampling fraction.
func DistinctJackknife(sample []datum.D, n int) float64 {
	m := len(sample)
	if m == 0 {
		return 0
	}
	freq := valueFrequencies(sample)
	d := float64(len(freq))
	var f1 float64
	for _, f := range freq {
		if f == 1 {
			f1++
		}
	}
	q := float64(m) / float64(n)
	if q >= 1 {
		return d
	}
	est := d / (1 - (1-q)*f1/float64(m))
	return math.Min(float64(n), math.Max(est, d))
}

func distinctCount(values []datum.D) int {
	return len(valueFrequencies(values))
}

func valueFrequencies(values []datum.D) map[uint64]int {
	freq := make(map[uint64]int)
	for _, v := range values {
		if v.IsNull() {
			continue
		}
		freq[v.Hash()]++
	}
	return freq
}

// ExactDistinct counts distinct non-NULL values exactly (ground truth for
// experiments).
func ExactDistinct(values []datum.D) float64 {
	return float64(distinctCount(values))
}
