package histogram

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datum"
)

func TestSampleSizeAndMembership(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := uniformInts(1000, 0, 99, rng)
	s := Sample(vals, 100, rng)
	if len(s) != 100 {
		t.Fatalf("sample size %d, want 100", len(s))
	}
	s2 := Sample(vals, 5000, rng)
	if len(s2) != 1000 {
		t.Fatalf("oversized sample should return all %d values, got %d", 1000, len(s2))
	}
}

func TestBuildFromSampleAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 50000
	vals := uniformInts(n, 0, 9999, rng)
	sample := Sample(vals, 2000, rng)
	h := BuildFromSample(sample, n, 25)
	if math.Abs(h.Total-float64(n)) > 1 {
		t.Fatalf("scaled total %.0f, want %d", h.Total, n)
	}
	// Shapiro–Connell claim: small sample yields accurate range estimates.
	for _, rg := range [][2]int64{{1000, 2000}, {0, 4999}, {9000, 9999}} {
		lo, hi := datum.NewInt(rg[0]), datum.NewInt(rg[1])
		got := h.EstimateRange(lo, true, hi, true)
		want := exactRange(vals, lo, true, hi, true)
		if math.Abs(got-want)/want > 0.2 {
			t.Errorf("sampled histogram range [%d,%d]: est %.0f vs exact %.0f", rg[0], rg[1], got, want)
		}
	}
}

func TestDistinctEstimators(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40000
	// Low-distinct column: 100 values.
	low := uniformInts(n, 0, 99, rng)
	// High-distinct column: mostly unique.
	high := make([]datum.D, n)
	for i := range high {
		high[i] = datum.NewInt(int64(i))
	}
	sampleLow := Sample(low, 1000, rng)
	sampleHigh := Sample(high, 1000, rng)

	exactLow, exactHigh := ExactDistinct(low), ExactDistinct(high)

	// GEE should be within its guaranteed sqrt(n/m) ratio bound on both.
	bound := math.Sqrt(float64(n) / 1000.0)
	for name, c := range map[string][2]float64{
		"low":  {DistinctGEE(sampleLow, n), exactLow},
		"high": {DistinctGEE(sampleHigh, n), exactHigh},
	} {
		ratio := c[0] / c[1]
		if ratio < 1/(bound*1.5) || ratio > bound*1.5 {
			t.Errorf("GEE %s: est %.0f exact %.0f ratio %.2f exceeds bound %.2f", name, c[0], c[1], ratio, bound)
		}
	}

	// Naive scale-up drastically overestimates the low-distinct column —
	// the "provably error-prone" behaviour the paper cites.
	naiveLow := DistinctScaleUp(sampleLow, n)
	if naiveLow < exactLow*5 {
		t.Errorf("scale-up on low-distinct: est %.0f vs exact %.0f — expected gross overestimate", naiveLow, exactLow)
	}

	// Jackknife stays within n and above sample distinct count.
	jk := DistinctJackknife(sampleHigh, n)
	if jk > float64(n) || jk < ExactDistinct(sampleHigh) {
		t.Errorf("jackknife %.0f out of sane bounds", jk)
	}
}

func TestDistinctEstimatorsEmpty(t *testing.T) {
	if DistinctGEE(nil, 100) != 0 || DistinctScaleUp(nil, 100) != 0 || DistinctJackknife(nil, 100) != 0 {
		t.Error("empty sample should estimate 0")
	}
}

func TestIncrementalMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	initial := uniformInts(5000, 0, 999, rng)
	h := BuildEquiDepth(initial, 20)
	inc := NewIncremental(h, 20)

	inserts := uniformInts(5000, 0, 1999, rng) // domain grows
	all := append(append([]datum.D{}, initial...), inserts...)
	for _, v := range inserts {
		inc.Insert(v)
	}
	if math.Abs(h.Total-10000) > 1e-6 {
		t.Fatalf("total after inserts = %v, want 10000", h.Total)
	}
	if len(h.Buckets) > 21 {
		t.Fatalf("bucket budget exceeded: %d", len(h.Buckets))
	}
	// Range accuracy should remain reasonable after incremental updates.
	for _, rg := range [][2]int64{{0, 499}, {500, 1499}, {1500, 1999}} {
		lo, hi := datum.NewInt(rg[0]), datum.NewInt(rg[1])
		got := h.EstimateRange(lo, true, hi, true)
		want := exactRange(all, lo, true, hi, true)
		if want > 500 && math.Abs(got-want)/want > 0.5 {
			t.Errorf("incremental range [%d,%d]: est %.0f vs exact %.0f", rg[0], rg[1], got, want)
		}
	}
}

func TestIncrementalFromEmpty(t *testing.T) {
	h := &Histogram{}
	inc := NewIncremental(h, 8)
	inc.Insert(datum.Null) // ignored
	if h.Total != 0 {
		t.Fatal("NULL insert should be ignored")
	}
	for i := 0; i < 100; i++ {
		inc.Insert(datum.NewInt(int64(i % 10)))
	}
	if h.Total != 100 {
		t.Fatalf("total = %v, want 100", h.Total)
	}
	if len(h.Buckets) == 0 || len(h.Buckets) > 8 {
		t.Fatalf("bucket count %d out of budget", len(h.Buckets))
	}
}
