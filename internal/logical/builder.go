package logical

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/sql"
)

// maxViewDepth bounds view expansion to catch recursive definitions.
const maxViewDepth = 16

// Builder translates a parsed SELECT into the logical algebra, resolving
// names against the catalog. Views are expanded inline as nested query trees
// (the unfolding of §4.2.1); normalization and the rewrite package then merge
// or keep them as the optimizer decides.
type Builder struct {
	cat    *catalog.Catalog
	md     *Metadata
	depth  int
	udfs   map[string]udpTemplate
	params []datum.D
}

// udpTemplate describes a registered user-defined predicate (§7.2).
type udpTemplate struct {
	perTupleCost float64
	selectivity  float64
	fn           func([]datum.D) bool
}

// NewBuilder returns a builder over the given catalog.
func NewBuilder(cat *catalog.Catalog) *Builder {
	return &Builder{cat: cat, md: NewMetadata()}
}

// BindParams supplies values for the statement's parameter placeholders:
// `$n` resolves to vals[n-1]. Each placeholder becomes a Const tagged with
// its ordinal, so the physical plan built from this query can later be
// re-bound to different values (physical.BindParams) without re-optimizing.
func (b *Builder) BindParams(vals []datum.D) { b.params = vals }

// RegisterUDP makes a user-defined predicate callable from SQL. The declared
// per-tuple cost and selectivity drive the §7.2 optimizations; fn supplies
// executable behaviour.
func (b *Builder) RegisterUDP(name string, perTupleCost, selectivity float64, fn func([]datum.D) bool) {
	if b.udfs == nil {
		b.udfs = map[string]udpTemplate{}
	}
	b.udfs[strings.ToUpper(name)] = udpTemplate{perTupleCost, selectivity, fn}
}

// Build translates the statement into a Query.
func (b *Builder) Build(stmt *sql.SelectStmt) (*Query, error) {
	out, err := b.buildSelect(stmt, nil)
	if err != nil {
		return nil, err
	}
	q := &Query{
		Meta:       b.md,
		Root:       out.rel,
		ResultCols: out.resultCols,
		ColNames:   out.resultNames,
		OrderBy:    out.ordering,
	}
	return q, nil
}

// scopeCol is one name binding visible in a scope.
type scopeCol struct {
	binding string // table alias; may be empty for derived columns
	name    string
	id      ColumnID
}

// scope resolves column names; failed lookups escalate to the parent and are
// recorded as outer (correlated) references.
type scope struct {
	parent *scope
	cols   []scopeCol
	outer  ColSet
}

func (s *scope) resolve(table, name string) (ColumnID, bool) {
	var found ColumnID
	matches := 0
	for _, c := range s.cols {
		if !strings.EqualFold(c.name, name) {
			continue
		}
		if table != "" && !strings.EqualFold(c.binding, table) {
			continue
		}
		found = c.id
		matches++
	}
	if matches == 1 {
		return found, true
	}
	if matches > 1 {
		return 0, false // ambiguous; caller reports
	}
	if s.parent != nil {
		if id, ok := s.parent.resolve(table, name); ok {
			s.outer.Add(id)
			return id, true
		}
	}
	return 0, false
}

func (s *scope) ambiguous(table, name string) bool {
	matches := 0
	for _, c := range s.cols {
		if strings.EqualFold(c.name, name) && (table == "" || strings.EqualFold(c.binding, table)) {
			matches++
		}
	}
	return matches > 1
}

// selectOut is the result of building one SELECT block.
type selectOut struct {
	rel         RelExpr
	resultCols  []ColumnID
	resultNames []string
	ordering    Ordering
}

func (b *Builder) buildSelect(sel *sql.SelectStmt, parent *scope) (*selectOut, error) {
	b.depth++
	defer func() { b.depth-- }()
	if b.depth > maxViewDepth {
		return nil, fmt.Errorf("logical: view/subquery nesting exceeds %d (recursive view?)", maxViewDepth)
	}

	// CUBE / ROLLUP expand into a UNION ALL of plain group-bys over the
	// grouping sets (the classical lowering of §7.4's CUBE [24]).
	if sel.Grouping != sql.GroupPlain {
		expanded, err := expandGroupingSets(sel)
		if err != nil {
			return nil, err
		}
		return b.buildSelect(expanded, parent)
	}
	if len(sel.Union) > 0 {
		return b.buildUnion(sel, parent)
	}

	// FROM.
	fromScope := &scope{parent: parent}
	var rel RelExpr
	if len(sel.From) == 0 {
		rel = &Values{Rows: [][]Scalar{{}}}
	} else {
		for _, te := range sel.From {
			r, err := b.buildTableExpr(te, fromScope, parent)
			if err != nil {
				return nil, err
			}
			if rel == nil {
				rel = r
			} else {
				rel = &Join{Kind: InnerJoin, Left: rel, Right: r}
			}
		}
	}

	// WHERE.
	if sel.Where != nil {
		filt, err := b.buildScalar(sel.Where, fromScope)
		if err != nil {
			return nil, err
		}
		if err := rejectAggregates(sel.Where); err != nil {
			return nil, err
		}
		rel = &Select{Input: rel, Filters: SplitConjunction(filt)}
	}

	// Aggregation: GROUP BY plus aggregates appearing in SELECT/HAVING/ORDER BY.
	aggCalls := collectAggCalls(sel)
	grouped := len(sel.GroupBy) > 0 || len(aggCalls) > 0

	// post maps the string form of a built scalar to the column holding it
	// after grouping.
	post := map[string]ColumnID{}
	var groupCols []ColumnID

	if grouped {
		// Build group-by expressions; non-column expressions are projected
		// below the GroupBy.
		var preItems []ProjectItem
		for _, ge := range sel.GroupBy {
			gs, err := b.buildScalar(ge, fromScope)
			if err != nil {
				return nil, err
			}
			if c, ok := gs.(*Col); ok {
				groupCols = append(groupCols, c.ID)
				post[gs.String()] = c.ID
				continue
			}
			id := b.md.AddColumn(ColumnMeta{Name: fmt.Sprintf("group%d", len(groupCols)+1), Kind: kindOf(gs, b.md)})
			preItems = append(preItems, ProjectItem{ID: id, Expr: gs})
			groupCols = append(groupCols, id)
			post[gs.String()] = id
		}
		if len(preItems) > 0 {
			// Pass through every input column alongside the computed keys.
			items := passthroughItems(rel)
			items = append(items, preItems...)
			rel = &Project{Input: rel, Items: items}
		}

		// Build aggregate items.
		var aggs []AggItem
		aggKey := map[string]ColumnID{}
		for _, fc := range aggCalls {
			item, err := b.buildAggItem(fc, fromScope)
			if err != nil {
				return nil, err
			}
			k := item.String() // canonical: fn + arg string
			if id, ok := aggKey[aggItemKey(item)]; ok {
				post[aggCallKey(fc, item)] = id
				continue
			}
			aggs = append(aggs, item)
			aggKey[aggItemKey(item)] = item.ID
			post[aggCallKey(fc, item)] = item.ID
			_ = k
		}
		rel = &GroupBy{Input: rel, GroupCols: groupCols, Aggs: aggs}
	}

	// buildPost builds a scalar in the post-grouping environment: aggregate
	// calls and group-by expressions become column references.
	buildPost := func(e sql.Expr) (Scalar, error) {
		if !grouped {
			return b.buildScalar(e, fromScope)
		}
		return b.buildGroupedScalar(e, fromScope, post)
	}

	// HAVING.
	if sel.Having != nil {
		if !grouped {
			return nil, fmt.Errorf("logical: HAVING requires GROUP BY or aggregates")
		}
		h, err := buildPost(sel.Having)
		if err != nil {
			return nil, err
		}
		rel = &Select{Input: rel, Filters: SplitConjunction(h)}
	}

	// SELECT list.
	var items []ProjectItem
	var resultCols []ColumnID
	var resultNames []string
	addItem := func(name string, sc Scalar) {
		if c, ok := sc.(*Col); ok {
			items = append(items, ProjectItem{ID: c.ID, Expr: sc})
			resultCols = append(resultCols, c.ID)
			resultNames = append(resultNames, name)
			return
		}
		id := b.md.AddColumn(ColumnMeta{Name: name, Kind: kindOf(sc, b.md)})
		items = append(items, ProjectItem{ID: id, Expr: sc})
		resultCols = append(resultCols, id)
		resultNames = append(resultNames, name)
	}
	for _, item := range sel.Select {
		switch {
		case item.Star:
			if grouped {
				return nil, fmt.Errorf("logical: SELECT * with GROUP BY is not supported")
			}
			for _, c := range fromScope.cols {
				addItem(c.name, &Col{ID: c.id})
			}
		case item.TableStar != "":
			if grouped {
				return nil, fmt.Errorf("logical: SELECT t.* with GROUP BY is not supported")
			}
			n := 0
			for _, c := range fromScope.cols {
				if strings.EqualFold(c.binding, item.TableStar) {
					addItem(c.name, &Col{ID: c.id})
					n++
				}
			}
			if n == 0 {
				return nil, fmt.Errorf("logical: unknown table %q in %s.*", item.TableStar, item.TableStar)
			}
		default:
			sc, err := buildPost(item.Expr)
			if err != nil {
				return nil, err
			}
			name := item.Alias
			if name == "" {
				name = displayName(item.Expr)
			}
			addItem(name, sc)
		}
	}

	// ORDER BY: resolve against aliases first, then the post-group scope.
	var ordering Ordering
	var extraItems []ProjectItem
	for _, oi := range sel.OrderBy {
		var sc Scalar
		if cr, ok := oi.Expr.(*sql.ColRef); ok && cr.Table == "" {
			for i, n := range resultNames {
				if strings.EqualFold(n, cr.Name) {
					sc = &Col{ID: resultCols[i]}
					break
				}
			}
		}
		if sc == nil {
			var err error
			sc, err = buildPost(oi.Expr)
			if err != nil {
				return nil, err
			}
		}
		var id ColumnID
		if c, ok := sc.(*Col); ok {
			id = c.ID
			// Ensure the column survives projection.
			if !containsID(resultCols, id) && !containsItem(items, id) && !containsItem(extraItems, id) {
				extraItems = append(extraItems, ProjectItem{ID: id, Expr: sc})
			}
		} else {
			id = b.md.AddColumn(ColumnMeta{Name: "orderby", Kind: kindOf(sc, b.md)})
			extraItems = append(extraItems, ProjectItem{ID: id, Expr: sc})
		}
		ordering = append(ordering, OrderSpec{Col: id, Desc: oi.Desc})
	}
	items = append(items, extraItems...)
	rel = &Project{Input: rel, Items: items}

	// DISTINCT.
	if sel.Distinct {
		rel = &GroupBy{Input: rel, GroupCols: append([]ColumnID{}, outputIDs(items)...)}
	}

	// LIMIT.
	if sel.Limit != nil {
		rel = &Limit{Input: rel, N: *sel.Limit}
	}

	return &selectOut{rel: rel, resultCols: resultCols, resultNames: resultNames, ordering: ordering}, nil
}

func outputIDs(items []ProjectItem) []ColumnID {
	out := make([]ColumnID, len(items))
	for i, it := range items {
		out[i] = it.ID
	}
	return out
}

func containsID(ids []ColumnID, id ColumnID) bool {
	for _, c := range ids {
		if c == id {
			return true
		}
	}
	return false
}

func containsItem(items []ProjectItem, id ColumnID) bool {
	for _, it := range items {
		if it.ID == id {
			return true
		}
	}
	return false
}

func passthroughItems(rel RelExpr) []ProjectItem {
	var items []ProjectItem
	rel.OutputCols().ForEach(func(c ColumnID) {
		items = append(items, ProjectItem{ID: c, Expr: &Col{ID: c}})
	})
	return items
}

func displayName(e sql.Expr) string {
	if cr, ok := e.(*sql.ColRef); ok {
		return cr.Name
	}
	if fc, ok := e.(*sql.FuncCall); ok {
		return strings.ToLower(fc.Name)
	}
	return e.String()
}

// kindOf infers the datum kind a scalar produces (best effort, for metadata).
func kindOf(s Scalar, md *Metadata) datumKind {
	switch t := s.(type) {
	case *Col:
		return md.Column(t.ID).Kind
	case *Const:
		return t.Val.Kind()
	case *Arith:
		lk, rk := kindOf(t.L, md), kindOf(t.R, md)
		if lk == kindFloat || rk == kindFloat {
			return kindFloat
		}
		return lk
	case *Cmp, *And, *Or, *Not, *IsNull, *InList, *UDPRef:
		return kindBool
	case *Subquery:
		if t.Mode == SubScalar && t.Plan != nil {
			// First output column of the subplan.
			cols := t.Plan.OutputCols().Ordered()
			if len(cols) > 0 {
				return md.Column(cols[0]).Kind
			}
		}
		return kindBool
	}
	return kindNull
}

func (b *Builder) buildTableExpr(te sql.TableExpr, sc *scope, parent *scope) (RelExpr, error) {
	switch t := te.(type) {
	case *sql.TableName:
		return b.buildTableName(t, sc, parent)
	case *sql.JoinExpr:
		return b.buildJoin(t, sc, parent)
	case *sql.SubqueryTable:
		out, err := b.buildSelect(t.Select, parent)
		if err != nil {
			return nil, err
		}
		for i, id := range out.resultCols {
			sc.cols = append(sc.cols, scopeCol{binding: t.Alias, name: out.resultNames[i], id: id})
		}
		return out.rel, nil
	}
	return nil, fmt.Errorf("logical: unsupported table expression %T", te)
}

func (b *Builder) buildTableName(t *sql.TableName, sc *scope, parent *scope) (RelExpr, error) {
	if tab, ok := b.cat.Table(t.Name); ok {
		ids := b.md.AddTable(tab, t.Binding())
		for i, c := range tab.Cols {
			sc.cols = append(sc.cols, scopeCol{binding: t.Binding(), name: c.Name, id: ids[i]})
		}
		return &Scan{Table: tab, Binding: t.Binding(), Cols: ids}, nil
	}
	if v, ok := b.cat.View(t.Name); ok {
		def, err := sql.ParseSelect(v.SQL)
		if err != nil {
			return nil, fmt.Errorf("logical: view %s: %w", v.Name, err)
		}
		out, err := b.buildSelect(def, parent)
		if err != nil {
			return nil, fmt.Errorf("logical: view %s: %w", v.Name, err)
		}
		for i, id := range out.resultCols {
			sc.cols = append(sc.cols, scopeCol{binding: t.Binding(), name: out.resultNames[i], id: id})
		}
		return out.rel, nil
	}
	return nil, fmt.Errorf("logical: unknown table or view %q", t.Name)
}

func (b *Builder) buildJoin(t *sql.JoinExpr, sc *scope, parent *scope) (RelExpr, error) {
	left, err := b.buildTableExpr(t.Left, sc, parent)
	if err != nil {
		return nil, err
	}
	right, err := b.buildTableExpr(t.Right, sc, parent)
	if err != nil {
		return nil, err
	}
	var on []Scalar
	if t.On != nil {
		cond, err := b.buildScalar(t.On, sc)
		if err != nil {
			return nil, err
		}
		on = SplitConjunction(cond)
	}
	switch t.Kind {
	case sql.JoinInner, sql.JoinCross:
		return &Join{Kind: InnerJoin, Left: left, Right: right, On: on}, nil
	case sql.JoinLeftOuter:
		return &Join{Kind: LeftOuterJoin, Left: left, Right: right, On: on}, nil
	case sql.JoinRightOuter:
		// Normalize: A RIGHT JOIN B == B LEFT JOIN A.
		return &Join{Kind: LeftOuterJoin, Left: right, Right: left, On: on}, nil
	case sql.JoinFullOuter:
		return &Join{Kind: FullOuterJoin, Left: left, Right: right, On: on}, nil
	}
	return nil, fmt.Errorf("logical: unsupported join kind %v", t.Kind)
}

// buildScalar translates an AST expression in the given scope. Aggregates are
// rejected here; grouped contexts use buildGroupedScalar.
func (b *Builder) buildScalar(e sql.Expr, sc *scope) (Scalar, error) {
	switch t := e.(type) {
	case *sql.Lit:
		return &Const{Val: t.Val}, nil
	case *sql.Param:
		if t.Ord < 1 || t.Ord > len(b.params) {
			return nil, fmt.Errorf("logical: parameter $%d not bound (%d value(s) supplied)", t.Ord, len(b.params))
		}
		return &Const{Val: b.params[t.Ord-1], Param: t.Ord}, nil
	case *sql.ColRef:
		if sc.ambiguous(t.Table, t.Name) {
			return nil, fmt.Errorf("logical: ambiguous column %q", t.String())
		}
		id, ok := sc.resolve(t.Table, t.Name)
		if !ok {
			return nil, fmt.Errorf("logical: unknown column %q", t.String())
		}
		return &Col{ID: id}, nil
	case *sql.BinExpr:
		l, err := b.buildScalar(t.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := b.buildScalar(t.R, sc)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case sql.OpAnd:
			return &And{L: l, R: r}, nil
		case sql.OpOr:
			return &Or{L: l, R: r}, nil
		case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe, sql.OpLike:
			return &Cmp{Op: cmpOpOf(t.Op), L: l, R: r}, nil
		case sql.OpAdd, sql.OpSub, sql.OpMul, sql.OpDiv, sql.OpMod:
			return &Arith{Op: arithOpOf(t.Op), L: l, R: r}, nil
		}
		return nil, fmt.Errorf("logical: unsupported operator %v", t.Op)
	case *sql.NotExpr:
		inner, err := b.buildScalar(t.E, sc)
		if err != nil {
			return nil, err
		}
		return &Not{E: inner}, nil
	case *sql.NegExpr:
		inner, err := b.buildScalar(t.E, sc)
		if err != nil {
			return nil, err
		}
		return &Arith{Op: ArithSub, L: &Const{Val: zeroFor(kindOf(inner, b.md))}, R: inner}, nil
	case *sql.IsNullExpr:
		inner, err := b.buildScalar(t.E, sc)
		if err != nil {
			return nil, err
		}
		return &IsNull{E: inner, Negated: t.Negated}, nil
	case *sql.BetweenExpr:
		inner, err := b.buildScalar(t.E, sc)
		if err != nil {
			return nil, err
		}
		lo, err := b.buildScalar(t.Lo, sc)
		if err != nil {
			return nil, err
		}
		hi, err := b.buildScalar(t.Hi, sc)
		if err != nil {
			return nil, err
		}
		rng := Scalar(&And{
			L: &Cmp{Op: CmpGe, L: inner, R: lo},
			R: &Cmp{Op: CmpLe, L: inner, R: hi},
		})
		if t.Negated {
			rng = &Not{E: rng}
		}
		return rng, nil
	case *sql.InExpr:
		inner, err := b.buildScalar(t.E, sc)
		if err != nil {
			return nil, err
		}
		if t.Sub == nil {
			list := make([]Scalar, len(t.List))
			for i, item := range t.List {
				list[i], err = b.buildScalar(item, sc)
				if err != nil {
					return nil, err
				}
			}
			return &InList{E: inner, List: list, Negated: t.Negated}, nil
		}
		sub, err := b.buildSubquery(t.Sub, sc)
		if err != nil {
			return nil, err
		}
		sub.Mode = SubIn
		sub.Scalar = inner
		sub.Negated = t.Negated
		return sub, nil
	case *sql.ExistsExpr:
		sub, err := b.buildSubquery(t.Sub, sc)
		if err != nil {
			return nil, err
		}
		sub.Mode = SubExists
		sub.Negated = t.Negated
		return sub, nil
	case *sql.SubqueryExpr:
		sub, err := b.buildSubquery(t.Sub, sc)
		if err != nil {
			return nil, err
		}
		sub.Mode = SubScalar
		return sub, nil
	case *sql.FuncCall:
		if t.IsAggregate() {
			return nil, fmt.Errorf("logical: aggregate %s not allowed here", t.Name)
		}
		if tpl, ok := b.udfs[t.Name]; ok {
			args := make([]Scalar, len(t.Args))
			for i, a := range t.Args {
				arg, err := b.buildScalar(a, sc)
				if err != nil {
					return nil, err
				}
				args[i] = arg
			}
			return &UDPRef{
				Name:         strings.ToLower(t.Name),
				Args:         args,
				PerTupleCost: tpl.perTupleCost,
				Selectivity:  tpl.selectivity,
				EvalFn:       tpl.fn,
			}, nil
		}
		return nil, fmt.Errorf("logical: unknown function %s", t.Name)
	}
	return nil, fmt.Errorf("logical: unsupported expression %T", e)
}

// buildSubquery builds a nested SELECT as a Subquery scalar; correlated
// references resolve through sc and are recorded as OuterCols.
func (b *Builder) buildSubquery(sel *sql.SelectStmt, sc *scope) (*Subquery, error) {
	inner := &scope{parent: sc}
	// buildSelect wants the parent scope; the inner scope it creates will
	// chain to sc. We pass sc directly.
	out, err := b.buildSelect(sel, sc)
	if err != nil {
		return nil, err
	}
	_ = inner
	// Outer references were recorded on sc's child scopes during the build;
	// recompute them as: columns referenced by the subplan that it does not
	// itself produce.
	free := freeCols(out.rel)
	sub := &Subquery{Plan: out.rel, OuterCols: free}
	if len(out.resultCols) > 0 {
		sub.OutCol = out.resultCols[0]
	}
	return sub, nil
}

// freeCols returns columns referenced but not produced within the tree.
func freeCols(e RelExpr) ColSet {
	var produced, referenced ColSet
	VisitRel(e, func(n RelExpr) {
		switch t := n.(type) {
		case *Scan:
			produced = produced.Union(t.OutputCols())
		case *Values:
			produced = produced.Union(t.OutputCols())
		case *Project:
			for _, it := range t.Items {
				produced.Add(it.ID)
			}
		case *GroupBy:
			for _, a := range t.Aggs {
				produced.Add(a.ID)
			}
		case *Union:
			for _, c := range t.Cols {
				produced.Add(c)
			}
		}
		for _, s := range Scalars(n) {
			referenced = referenced.Union(ScalarCols(s))
		}
		if g, ok := n.(*GroupBy); ok {
			for _, c := range g.GroupCols {
				referenced.Add(c)
			}
		}
	})
	return referenced.Difference(produced)
}

// FreeCols is the exported form of freeCols for other packages.
func FreeCols(e RelExpr) ColSet { return freeCols(e) }

// collectAggCalls gathers aggregate FuncCalls from the SELECT list, HAVING
// and ORDER BY.
func collectAggCalls(sel *sql.SelectStmt) []*sql.FuncCall {
	var out []*sql.FuncCall
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		switch t := e.(type) {
		case nil:
		case *sql.FuncCall:
			if t.IsAggregate() {
				out = append(out, t)
				return // no nested aggregates
			}
			for _, a := range t.Args {
				walk(a)
			}
		case *sql.BinExpr:
			walk(t.L)
			walk(t.R)
		case *sql.NotExpr:
			walk(t.E)
		case *sql.NegExpr:
			walk(t.E)
		case *sql.IsNullExpr:
			walk(t.E)
		case *sql.BetweenExpr:
			walk(t.E)
			walk(t.Lo)
			walk(t.Hi)
		case *sql.InExpr:
			walk(t.E)
			for _, it := range t.List {
				walk(it)
			}
		}
	}
	for _, item := range sel.Select {
		walk(item.Expr)
	}
	walk(sel.Having)
	for _, oi := range sel.OrderBy {
		walk(oi.Expr)
	}
	return out
}

func rejectAggregates(e sql.Expr) error {
	var found *sql.FuncCall
	var walk func(sql.Expr)
	walk = func(e sql.Expr) {
		switch t := e.(type) {
		case nil:
		case *sql.FuncCall:
			if t.IsAggregate() {
				found = t
			}
		case *sql.BinExpr:
			walk(t.L)
			walk(t.R)
		case *sql.NotExpr:
			walk(t.E)
		case *sql.NegExpr:
			walk(t.E)
		case *sql.IsNullExpr:
			walk(t.E)
		case *sql.BetweenExpr:
			walk(t.E)
			walk(t.Lo)
			walk(t.Hi)
		case *sql.InExpr:
			walk(t.E)
			for _, it := range t.List {
				walk(it)
			}
		}
	}
	walk(e)
	if found != nil {
		return fmt.Errorf("logical: aggregate %s not allowed in WHERE", found.Name)
	}
	return nil
}

func (b *Builder) buildAggItem(fc *sql.FuncCall, sc *scope) (AggItem, error) {
	var fn AggFn
	switch fc.Name {
	case "COUNT":
		fn = AggCount
	case "SUM":
		fn = AggSum
	case "AVG":
		fn = AggAvg
	case "MIN":
		fn = AggMin
	case "MAX":
		fn = AggMax
	default:
		return AggItem{}, fmt.Errorf("logical: unknown aggregate %s", fc.Name)
	}
	item := AggItem{Fn: fn, Distinct: fc.Distinct}
	var kind datumKind
	if fc.Star {
		if fn != AggCount {
			return AggItem{}, fmt.Errorf("logical: %s(*) is not valid", fc.Name)
		}
		kind = kindInt
	} else {
		if len(fc.Args) != 1 {
			return AggItem{}, fmt.Errorf("logical: %s expects one argument", fc.Name)
		}
		arg, err := b.buildScalar(fc.Args[0], sc)
		if err != nil {
			return AggItem{}, err
		}
		item.Arg = arg
		switch fn {
		case AggCount:
			kind = kindInt
		case AggAvg:
			kind = kindFloat
		default:
			kind = kindOf(arg, b.md)
		}
	}
	item.ID = b.md.AddColumn(ColumnMeta{Name: strings.ToLower(fc.Name), Kind: kind})
	return item, nil
}

// aggItemKey identifies semantically identical aggregates for dedup.
func aggItemKey(a AggItem) string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	return fmt.Sprintf("%s|%v|%s", a.Fn, a.Distinct, arg)
}

// aggCallKey identifies the AST call with its built form so buildGroupedScalar
// can map the call to the aggregate's output column.
func aggCallKey(fc *sql.FuncCall, item AggItem) string {
	return "agg:" + fc.String()
}

// buildGroupedScalar builds an expression in the post-GROUP BY environment:
// aggregate calls and group-by expressions are replaced by column references;
// any other column reference is an error (not functionally determined by the
// group).
func (b *Builder) buildGroupedScalar(e sql.Expr, sc *scope, post map[string]ColumnID) (Scalar, error) {
	// Aggregate call?
	if fc, ok := e.(*sql.FuncCall); ok && fc.IsAggregate() {
		if id, ok := post["agg:"+fc.String()]; ok {
			return &Col{ID: id}, nil
		}
		return nil, fmt.Errorf("logical: aggregate %s was not collected", fc)
	}
	// Whole expression equals a group-by expression?
	if built, err := b.buildScalar(e, sc); err == nil {
		if id, ok := post[built.String()]; ok {
			return &Col{ID: id}, nil
		}
		// A bare column must be a grouping column.
		if c, ok := built.(*Col); ok {
			return nil, fmt.Errorf("logical: column %s is not in GROUP BY", b.md.QualifiedName(c.ID))
		}
	}
	// Recurse structurally.
	switch t := e.(type) {
	case *sql.Lit:
		return &Const{Val: t.Val}, nil
	case *sql.Param:
		if t.Ord < 1 || t.Ord > len(b.params) {
			return nil, fmt.Errorf("logical: parameter $%d not bound (%d value(s) supplied)", t.Ord, len(b.params))
		}
		return &Const{Val: b.params[t.Ord-1], Param: t.Ord}, nil
	case *sql.BinExpr:
		l, err := b.buildGroupedScalar(t.L, sc, post)
		if err != nil {
			return nil, err
		}
		r, err := b.buildGroupedScalar(t.R, sc, post)
		if err != nil {
			return nil, err
		}
		switch t.Op {
		case sql.OpAnd:
			return &And{L: l, R: r}, nil
		case sql.OpOr:
			return &Or{L: l, R: r}, nil
		case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe, sql.OpLike:
			return &Cmp{Op: cmpOpOf(t.Op), L: l, R: r}, nil
		default:
			return &Arith{Op: arithOpOf(t.Op), L: l, R: r}, nil
		}
	case *sql.NotExpr:
		inner, err := b.buildGroupedScalar(t.E, sc, post)
		if err != nil {
			return nil, err
		}
		return &Not{E: inner}, nil
	case *sql.NegExpr:
		inner, err := b.buildGroupedScalar(t.E, sc, post)
		if err != nil {
			return nil, err
		}
		return &Arith{Op: ArithSub, L: &Const{Val: zeroFor(kindOf(inner, b.md))}, R: inner}, nil
	case *sql.IsNullExpr:
		inner, err := b.buildGroupedScalar(t.E, sc, post)
		if err != nil {
			return nil, err
		}
		return &IsNull{E: inner, Negated: t.Negated}, nil
	}
	return nil, fmt.Errorf("logical: expression %s is not derivable from GROUP BY", e)
}

func cmpOpOf(op sql.BinOp) CmpOp {
	switch op {
	case sql.OpEq:
		return CmpEq
	case sql.OpNe:
		return CmpNe
	case sql.OpLt:
		return CmpLt
	case sql.OpLe:
		return CmpLe
	case sql.OpGt:
		return CmpGt
	case sql.OpGe:
		return CmpGe
	case sql.OpLike:
		return CmpLike
	}
	panic(fmt.Sprintf("not a comparison: %v", op))
}

func arithOpOf(op sql.BinOp) ArithOp {
	switch op {
	case sql.OpAdd:
		return ArithAdd
	case sql.OpSub:
		return ArithSub
	case sql.OpMul:
		return ArithMul
	case sql.OpDiv:
		return ArithDiv
	case sql.OpMod:
		return ArithMod
	}
	panic(fmt.Sprintf("not arithmetic: %v", op))
}
