// Package logical defines the optimizer's algebra: globally numbered columns,
// scalar expressions with SQL three-valued semantics, relational operators
// (the query trees of §2/§4 of the paper), the query graph (Fig. 3), a
// catalog-driven builder from the SQL AST, and a normalizer.
//
// Every base-table occurrence receives fresh global column IDs at build time,
// so transformations (join reordering, unnesting, view merging) never rename
// variables — a column ID means the same thing everywhere in a query.
package logical

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// ColumnID identifies one column within a query. IDs are 1-based; 0 is
// invalid.
type ColumnID int

// ColSet is a set of ColumnIDs implemented as a bitset.
type ColSet struct {
	words []uint64
}

// MakeColSet returns a set containing the given columns.
func MakeColSet(cols ...ColumnID) ColSet {
	var s ColSet
	for _, c := range cols {
		s.Add(c)
	}
	return s
}

// Add inserts c into the set.
func (s *ColSet) Add(c ColumnID) {
	if c <= 0 {
		panic(fmt.Sprintf("logical: invalid ColumnID %d", c))
	}
	w := int(c) / 64
	for len(s.words) <= w {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (uint(c) % 64)
}

// Remove deletes c from the set.
func (s *ColSet) Remove(c ColumnID) {
	w := int(c) / 64
	if w < len(s.words) {
		s.words[w] &^= 1 << (uint(c) % 64)
	}
}

// Contains reports membership.
func (s ColSet) Contains(c ColumnID) bool {
	w := int(c) / 64
	return w >= 0 && w < len(s.words) && s.words[w]&(1<<(uint(c)%64)) != 0
}

// Empty reports whether the set has no members.
func (s ColSet) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of members.
func (s ColSet) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Union returns s ∪ o.
func (s ColSet) Union(o ColSet) ColSet {
	n := len(s.words)
	if len(o.words) > n {
		n = len(o.words)
	}
	out := ColSet{words: make([]uint64, n)}
	copy(out.words, s.words)
	for i, w := range o.words {
		out.words[i] |= w
	}
	return out
}

// Intersect returns s ∩ o.
func (s ColSet) Intersect(o ColSet) ColSet {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	out := ColSet{words: make([]uint64, n)}
	for i := 0; i < n; i++ {
		out.words[i] = s.words[i] & o.words[i]
	}
	return out
}

// Difference returns s \ o.
func (s ColSet) Difference(o ColSet) ColSet {
	out := ColSet{words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	for i, w := range o.words {
		if i < len(out.words) {
			out.words[i] &^= w
		}
	}
	return out
}

// SubsetOf reports s ⊆ o.
func (s ColSet) SubsetOf(o ColSet) bool {
	for i, w := range s.words {
		var ow uint64
		if i < len(o.words) {
			ow = o.words[i]
		}
		if w&^ow != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s ∩ o is nonempty.
func (s ColSet) Intersects(o ColSet) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equals reports set equality.
func (s ColSet) Equals(o ColSet) bool {
	return s.SubsetOf(o) && o.SubsetOf(s)
}

// Ordered returns the members in ascending order.
func (s ColSet) Ordered() []ColumnID {
	out := make([]ColumnID, 0, s.Len())
	s.ForEach(func(c ColumnID) { out = append(out, c) })
	return out
}

// ForEach calls f for each member in ascending order.
func (s ColSet) ForEach(f func(ColumnID)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(ColumnID(wi*64 + b))
			w &^= 1 << uint(b)
		}
	}
}

// SingleCol returns the only member; it panics unless Len() == 1.
func (s ColSet) SingleCol() ColumnID {
	if s.Len() != 1 {
		panic(fmt.Sprintf("logical: SingleCol on set of size %d", s.Len()))
	}
	return s.Ordered()[0]
}

// Copy returns an independent copy.
func (s ColSet) Copy() ColSet {
	out := ColSet{words: make([]uint64, len(s.words))}
	copy(out.words, s.words)
	return out
}

// Key returns a canonical string usable as a map key.
func (s ColSet) Key() string {
	ids := s.Ordered()
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(int(id))
	}
	return strings.Join(parts, ",")
}

// String renders the set as "(1,3,7)".
func (s ColSet) String() string {
	ids := s.Ordered()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprint(int(id))
	}
	return "(" + strings.Join(parts, ",") + ")"
}
