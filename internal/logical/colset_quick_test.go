package logical

import (
	"testing"
	"testing/quick"
)

// mkSet builds a ColSet from a byte slice (bounded IDs keep sets small).
func mkSet(bs []byte) ColSet {
	var s ColSet
	for _, b := range bs {
		s.Add(ColumnID(int(b)%200 + 1))
	}
	return s
}

// Property: union is commutative and associative; intersection distributes
// over union; difference removes exactly the intersection.
func TestColSetAlgebraQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}

	if err := quick.Check(func(a, b []byte) bool {
		x, y := mkSet(a), mkSet(b)
		return x.Union(y).Equals(y.Union(x))
	}, cfg); err != nil {
		t.Errorf("union commutativity: %v", err)
	}

	if err := quick.Check(func(a, b, c []byte) bool {
		x, y, z := mkSet(a), mkSet(b), mkSet(c)
		return x.Union(y.Union(z)).Equals(x.Union(y).Union(z))
	}, cfg); err != nil {
		t.Errorf("union associativity: %v", err)
	}

	if err := quick.Check(func(a, b, c []byte) bool {
		x, y, z := mkSet(a), mkSet(b), mkSet(c)
		return x.Intersect(y.Union(z)).Equals(x.Intersect(y).Union(x.Intersect(z)))
	}, cfg); err != nil {
		t.Errorf("distributivity: %v", err)
	}

	if err := quick.Check(func(a, b []byte) bool {
		x, y := mkSet(a), mkSet(b)
		d := x.Difference(y)
		// d and y are disjoint, and d ∪ (x ∩ y) = x.
		return !d.Intersects(y) && d.Union(x.Intersect(y)).Equals(x)
	}, cfg); err != nil {
		t.Errorf("difference laws: %v", err)
	}

	if err := quick.Check(func(a, b []byte) bool {
		x, y := mkSet(a), mkSet(b)
		// Subset consistency with union/intersection.
		return x.Intersect(y).SubsetOf(x) && x.SubsetOf(x.Union(y))
	}, cfg); err != nil {
		t.Errorf("subset laws: %v", err)
	}

	if err := quick.Check(func(a []byte) bool {
		x := mkSet(a)
		// Len equals number of iterated members; Ordered is sorted unique.
		ord := x.Ordered()
		if len(ord) != x.Len() {
			return false
		}
		for i := 1; i < len(ord); i++ {
			if ord[i-1] >= ord[i] {
				return false
			}
		}
		for _, c := range ord {
			if !x.Contains(c) {
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Errorf("ordered/len consistency: %v", err)
	}

	if err := quick.Check(func(a, b []byte) bool {
		x, y := mkSet(a), mkSet(b)
		// Key is canonical: equal sets share keys, different sets do not.
		if x.Equals(y) {
			return x.Key() == y.Key()
		}
		return x.Key() != y.Key()
	}, cfg); err != nil {
		t.Errorf("key canonicality: %v", err)
	}
}

// Property: Ordering.SatisfiedBy is reflexive and respects extension.
func TestOrderingSatisfactionQuick(t *testing.T) {
	mkOrd := func(bs []byte) Ordering {
		var o Ordering
		seen := map[ColumnID]bool{}
		for _, b := range bs {
			c := ColumnID(int(b)%20 + 1)
			if seen[c] {
				continue
			}
			seen[c] = true
			o = append(o, OrderSpec{Col: c, Desc: b%2 == 0})
		}
		return o
	}
	if err := quick.Check(func(a, ext []byte) bool {
		o := mkOrd(a)
		longer := append(append(Ordering{}, o...), mkOrd(ext)...)
		return o.SatisfiedBy(o) && o.SatisfiedBy(longer)
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
