package logical

import (
	"fmt"
	"strings"

	"repro/internal/datum"
)

// EvalContext supplies the environment for scalar evaluation: a column
// binding and (optionally) a subquery evaluator supplied by the execution
// engine.
type EvalContext struct {
	// Lookup returns the value of a column in the current row(s).
	Lookup func(ColumnID) (datum.D, error)
	// EvalSubquery evaluates a Subquery node against the current bindings
	// (tuple-iteration semantics). It returns the scalar result: a boolean
	// datum for EXISTS/IN, the single value for scalar subqueries.
	EvalSubquery func(*Subquery, *EvalContext) (datum.D, error)
}

// Eval evaluates s under SQL three-valued semantics. Boolean results are
// KindBool or NULL (unknown).
func Eval(s Scalar, ctx *EvalContext) (datum.D, error) {
	switch t := s.(type) {
	case *Const:
		return t.Val, nil
	case *Col:
		if ctx == nil || ctx.Lookup == nil {
			return datum.Null, fmt.Errorf("logical: no binding for column @%d", int(t.ID))
		}
		return ctx.Lookup(t.ID)
	case *Cmp:
		l, err := Eval(t.L, ctx)
		if err != nil {
			return datum.Null, err
		}
		r, err := Eval(t.R, ctx)
		if err != nil {
			return datum.Null, err
		}
		return evalCmp(t.Op, l, r)
	case *Arith:
		l, err := Eval(t.L, ctx)
		if err != nil {
			return datum.Null, err
		}
		r, err := Eval(t.R, ctx)
		if err != nil {
			return datum.Null, err
		}
		return evalArith(t.Op, l, r)
	case *And:
		l, err := Eval(t.L, ctx)
		if err != nil {
			return datum.Null, err
		}
		// Short-circuit: FALSE AND x = FALSE.
		if !l.IsNull() && l.Kind() == datum.KindBool && !l.Bool() {
			return datum.NewBool(false), nil
		}
		r, err := Eval(t.R, ctx)
		if err != nil {
			return datum.Null, err
		}
		return and3(l, r)
	case *Or:
		l, err := Eval(t.L, ctx)
		if err != nil {
			return datum.Null, err
		}
		if !l.IsNull() && l.Kind() == datum.KindBool && l.Bool() {
			return datum.NewBool(true), nil
		}
		r, err := Eval(t.R, ctx)
		if err != nil {
			return datum.Null, err
		}
		return or3(l, r)
	case *Not:
		v, err := Eval(t.E, ctx)
		if err != nil {
			return datum.Null, err
		}
		if v.IsNull() {
			return datum.Null, nil
		}
		if v.Kind() != datum.KindBool {
			return datum.Null, fmt.Errorf("logical: NOT on non-boolean %s", v.Kind())
		}
		return datum.NewBool(!v.Bool()), nil
	case *IsNull:
		v, err := Eval(t.E, ctx)
		if err != nil {
			return datum.Null, err
		}
		return datum.NewBool(v.IsNull() != t.Negated), nil
	case *InList:
		v, err := Eval(t.E, ctx)
		if err != nil {
			return datum.Null, err
		}
		sawNull := v.IsNull()
		matched := false
		for _, item := range t.List {
			iv, err := Eval(item, ctx)
			if err != nil {
				return datum.Null, err
			}
			if iv.IsNull() || v.IsNull() {
				sawNull = true
				continue
			}
			if datum.Compare(v, iv) == 0 {
				matched = true
				break
			}
		}
		var res datum.D
		switch {
		case matched:
			res = datum.NewBool(true)
		case sawNull:
			res = datum.Null
		default:
			res = datum.NewBool(false)
		}
		if t.Negated {
			return not3(res), nil
		}
		return res, nil
	case *Subquery:
		if ctx == nil || ctx.EvalSubquery == nil {
			return datum.Null, fmt.Errorf("logical: no subquery evaluator available")
		}
		v, err := ctx.EvalSubquery(t, ctx)
		if err != nil {
			return datum.Null, err
		}
		if t.Negated {
			return not3(v), nil
		}
		return v, nil
	case *UDPRef:
		args := make([]datum.D, len(t.Args))
		for i, a := range t.Args {
			v, err := Eval(a, ctx)
			if err != nil {
				return datum.Null, err
			}
			args[i] = v
		}
		if t.EvalFn == nil {
			return datum.Null, fmt.Errorf("logical: UDP %s has no evaluator", t.Name)
		}
		return datum.NewBool(t.EvalFn(args)), nil
	}
	return datum.Null, fmt.Errorf("logical: cannot evaluate %T", s)
}

func not3(v datum.D) datum.D {
	if v.IsNull() {
		return datum.Null
	}
	return datum.NewBool(!v.Bool())
}

func and3(l, r datum.D) (datum.D, error) {
	lb, ln, err := boolOrNull(l)
	if err != nil {
		return datum.Null, err
	}
	rb, rn, err := boolOrNull(r)
	if err != nil {
		return datum.Null, err
	}
	switch {
	case !ln && !lb, !rn && !rb:
		return datum.NewBool(false), nil
	case ln || rn:
		return datum.Null, nil
	default:
		return datum.NewBool(true), nil
	}
}

func or3(l, r datum.D) (datum.D, error) {
	lb, ln, err := boolOrNull(l)
	if err != nil {
		return datum.Null, err
	}
	rb, rn, err := boolOrNull(r)
	if err != nil {
		return datum.Null, err
	}
	switch {
	case !ln && lb, !rn && rb:
		return datum.NewBool(true), nil
	case ln || rn:
		return datum.Null, nil
	default:
		return datum.NewBool(false), nil
	}
}

func boolOrNull(v datum.D) (val bool, isNull bool, err error) {
	if v.IsNull() {
		return false, true, nil
	}
	if v.Kind() != datum.KindBool {
		return false, false, fmt.Errorf("logical: expected boolean, got %s", v.Kind())
	}
	return v.Bool(), false, nil
}

func evalCmp(op CmpOp, l, r datum.D) (datum.D, error) {
	if l.IsNull() || r.IsNull() {
		return datum.Null, nil
	}
	if op == CmpLike {
		if l.Kind() != datum.KindString || r.Kind() != datum.KindString {
			return datum.Null, fmt.Errorf("logical: LIKE requires strings")
		}
		return datum.NewBool(matchLike(l.Str(), r.Str())), nil
	}
	c := datum.Compare(l, r)
	var res bool
	switch op {
	case CmpEq:
		res = c == 0
	case CmpNe:
		res = c != 0
	case CmpLt:
		res = c < 0
	case CmpLe:
		res = c <= 0
	case CmpGt:
		res = c > 0
	case CmpGe:
		res = c >= 0
	}
	return datum.NewBool(res), nil
}

// matchLike implements SQL LIKE with % (any run) and _ (any single char).
func matchLike(s, pattern string) bool {
	// Dynamic programming over pattern positions.
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	// Iterative two-pointer with backtracking on the last %.
	si, pi := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			si++
			pi++
		case pi < len(p) && p[pi] == '%':
			starP, starS = pi, si
			pi++
		case starP >= 0:
			starS++
			si, pi = starS, starP+1
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// EvalConst evaluates s when it references no columns and contains no
// subqueries; ok is false otherwise. Scalars containing parameter-tagged
// constants also refuse: folding `$1 + 1` would bake the probe value into
// the result and lose the parameter's identity, breaking plan-cache
// re-binding.
func EvalConst(s Scalar) (datum.D, bool) {
	if !ScalarCols(s).Empty() || HasSubquery(s) || hasUDP(s) || HasParam(s) {
		return datum.Null, false
	}
	v, err := Eval(s, &EvalContext{})
	if err != nil {
		return datum.Null, false
	}
	return v, true
}

// HasParam reports whether s contains a parameter-tagged constant.
func HasParam(s Scalar) bool {
	found := false
	VisitScalar(s, func(sc Scalar) {
		if c, ok := sc.(*Const); ok && c.Param != 0 {
			found = true
		}
	})
	return found
}

func hasUDP(s Scalar) bool {
	found := false
	VisitScalar(s, func(sc Scalar) {
		if _, ok := sc.(*UDPRef); ok {
			found = true
		}
	})
	return found
}

func evalArith(op ArithOp, l, r datum.D) (datum.D, error) {
	if l.IsNull() || r.IsNull() {
		return datum.Null, nil
	}
	if l.Kind() == datum.KindString && r.Kind() == datum.KindString && op == ArithAdd {
		return datum.NewString(l.Str() + r.Str()), nil
	}
	if !l.Kind().Numeric() || !r.Kind().Numeric() {
		return datum.Null, fmt.Errorf("logical: arithmetic on %s and %s", l.Kind(), r.Kind())
	}
	if l.Kind() == datum.KindInt && r.Kind() == datum.KindInt {
		a, b := l.Int(), r.Int()
		switch op {
		case ArithAdd:
			return datum.NewInt(a + b), nil
		case ArithSub:
			return datum.NewInt(a - b), nil
		case ArithMul:
			return datum.NewInt(a * b), nil
		case ArithDiv:
			if b == 0 {
				return datum.Null, fmt.Errorf("logical: division by zero")
			}
			return datum.NewInt(a / b), nil
		case ArithMod:
			if b == 0 {
				return datum.Null, fmt.Errorf("logical: modulo by zero")
			}
			return datum.NewInt(a % b), nil
		}
	}
	a, b := l.Float(), r.Float()
	switch op {
	case ArithAdd:
		return datum.NewFloat(a + b), nil
	case ArithSub:
		return datum.NewFloat(a - b), nil
	case ArithMul:
		return datum.NewFloat(a * b), nil
	case ArithDiv:
		if b == 0 {
			return datum.Null, fmt.Errorf("logical: division by zero")
		}
		return datum.NewFloat(a / b), nil
	case ArithMod:
		return datum.Null, fmt.Errorf("logical: modulo on floats")
	}
	return datum.Null, fmt.Errorf("logical: unknown arithmetic op")
}

// TruthValue reports whether a filter result admits the row: only TRUE does.
func TruthValue(v datum.D) bool {
	return !v.IsNull() && v.Kind() == datum.KindBool && v.Bool()
}

// LikePrefix extracts the literal prefix of a LIKE pattern (up to the first
// wildcard), used for selectivity estimation and index range derivation.
func LikePrefix(pattern string) string {
	i := strings.IndexAny(pattern, "%_")
	if i < 0 {
		return pattern
	}
	return pattern[:i]
}
