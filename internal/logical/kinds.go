package logical

import "repro/internal/datum"

// Local aliases keep kind-inference code in the builder concise.
type datumKind = datum.Kind

const (
	kindNull  = datum.KindNull
	kindBool  = datum.KindBool
	kindInt   = datum.KindInt
	kindFloat = datum.KindFloat
)

// zeroFor returns the additive identity used to lower unary minus.
func zeroFor(k datumKind) datum.D {
	if k == kindFloat {
		return datum.NewFloat(0)
	}
	return datum.NewInt(0)
}
