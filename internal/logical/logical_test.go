package logical

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/sql"
)

// paperCatalog builds the Emp/Dept schema used throughout the paper's
// examples.
func paperCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	emp := &catalog.Table{
		Name: "Emp",
		Cols: []catalog.Column{
			{Name: "eid", Kind: datum.KindInt, NotNull: true},
			{Name: "name", Kind: datum.KindString},
			{Name: "did", Kind: datum.KindInt},
			{Name: "sal", Kind: datum.KindFloat},
			{Name: "age", Kind: datum.KindInt},
		},
		PrimaryKey: []int{0},
		Indexes: []*catalog.Index{
			{Name: "emp_pk", Cols: []int{0}, Unique: true, Clustered: true},
			{Name: "emp_did", Cols: []int{2}},
		},
	}
	dept := &catalog.Table{
		Name: "Dept",
		Cols: []catalog.Column{
			{Name: "did", Kind: datum.KindInt, NotNull: true},
			{Name: "dname", Kind: datum.KindString},
			{Name: "loc", Kind: datum.KindString},
			{Name: "budget", Kind: datum.KindFloat},
			{Name: "mgr", Kind: datum.KindInt},
		},
		PrimaryKey: []int{0},
	}
	if err := c.AddTable(emp); err != nil {
		t.Fatal(err)
	}
	if err := c.AddTable(dept); err != nil {
		t.Fatal(err)
	}
	return c
}

func build(t *testing.T, c *catalog.Catalog, q string) *Query {
	t.Helper()
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	query, err := NewBuilder(c).Build(sel)
	if err != nil {
		t.Fatalf("build %q: %v", q, err)
	}
	return query
}

func buildErr(t *testing.T, c *catalog.Catalog, q string) error {
	t.Helper()
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	_, err = NewBuilder(c).Build(sel)
	if err == nil {
		t.Fatalf("build %q: expected error", q)
	}
	return err
}

func TestColSetBasics(t *testing.T) {
	s := MakeColSet(1, 3, 70)
	if !s.Contains(1) || !s.Contains(70) || s.Contains(2) {
		t.Error("membership")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	s.Remove(3)
	if s.Contains(3) || s.Len() != 2 {
		t.Error("Remove")
	}
	u := MakeColSet(1, 2).Union(MakeColSet(2, 65))
	if u.Len() != 3 {
		t.Error("Union")
	}
	i := MakeColSet(1, 2, 3).Intersect(MakeColSet(2, 3, 4))
	if !i.Equals(MakeColSet(2, 3)) {
		t.Error("Intersect")
	}
	d := MakeColSet(1, 2, 3).Difference(MakeColSet(2))
	if !d.Equals(MakeColSet(1, 3)) {
		t.Error("Difference")
	}
	if !MakeColSet(1).SubsetOf(MakeColSet(1, 2)) || MakeColSet(3).SubsetOf(MakeColSet(1, 2)) {
		t.Error("SubsetOf")
	}
	if !MakeColSet(1, 2).Intersects(MakeColSet(2, 9)) || MakeColSet(1).Intersects(MakeColSet(2)) {
		t.Error("Intersects")
	}
	if MakeColSet().Len() != 0 || !MakeColSet().Empty() {
		t.Error("empty set")
	}
	if MakeColSet(5, 1).Key() != "1,5" {
		t.Errorf("Key = %q", MakeColSet(5, 1).Key())
	}
	if MakeColSet(2, 1).String() != "(1,2)" {
		t.Errorf("String = %q", MakeColSet(2, 1).String())
	}
	if MakeColSet(7).SingleCol() != 7 {
		t.Error("SingleCol")
	}
	got := MakeColSet(9, 2, 5).Ordered()
	if len(got) != 3 || got[0] != 2 || got[2] != 9 {
		t.Errorf("Ordered = %v", got)
	}
}

func TestColSetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(0) should panic")
		}
	}()
	var s ColSet
	s.Add(0)
}

func TestBuildSimpleScan(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, "SELECT name, sal FROM Emp WHERE sal > 100")
	if len(q.ResultCols) != 2 || q.ColNames[0] != "name" {
		t.Fatalf("result cols %v names %v", q.ResultCols, q.ColNames)
	}
	// Shape: Project(Select(Scan)).
	p, ok := q.Root.(*Project)
	if !ok {
		t.Fatalf("root %T", q.Root)
	}
	s, ok := p.Input.(*Select)
	if !ok {
		t.Fatalf("project input %T", p.Input)
	}
	if _, ok := s.Input.(*Scan); !ok {
		t.Fatalf("select input %T", s.Input)
	}
}

func TestBuildJoinAndQualifiedNames(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, "SELECT e.name, d.dname FROM Emp e, Dept d WHERE e.did = d.did")
	if q.Meta.NumColumns() != 10 {
		t.Errorf("expected 10 base columns, got %d", q.Meta.NumColumns())
	}
	if got := q.Meta.QualifiedName(q.ResultCols[0]); got != "e.name" {
		t.Errorf("qualified name = %q", got)
	}
}

func TestBuildSelfJoinFreshIDs(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, "SELECT e1.name FROM Emp e1, Emp e2 WHERE e1.did = e2.did")
	// Two occurrences of Emp must have disjoint column IDs.
	var scans []*Scan
	VisitRel(q.Root, func(e RelExpr) {
		if s, ok := e.(*Scan); ok {
			scans = append(scans, s)
		}
	})
	if len(scans) != 2 {
		t.Fatalf("scans = %d", len(scans))
	}
	if scans[0].OutputCols().Intersects(scans[1].OutputCols()) {
		t.Error("self-join occurrences share column IDs")
	}
}

func TestBuildAmbiguousAndUnknown(t *testing.T) {
	c := paperCatalog(t)
	if err := buildErr(t, c, "SELECT did FROM Emp, Dept"); !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("want ambiguous error, got %v", err)
	}
	buildErr(t, c, "SELECT nosuch FROM Emp")
	buildErr(t, c, "SELECT name FROM NoTable")
	buildErr(t, c, "SELECT x.name FROM Emp e")
}

func TestBuildGroupBy(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, "SELECT did, COUNT(*), AVG(sal) FROM Emp GROUP BY did HAVING COUNT(*) > 2")
	// Shape: Project(Select(GroupBy(...))).
	p := q.Root.(*Project)
	s, ok := p.Input.(*Select)
	if !ok {
		t.Fatalf("expected HAVING Select, got %T", p.Input)
	}
	g, ok := s.Input.(*GroupBy)
	if !ok {
		t.Fatalf("expected GroupBy, got %T", s.Input)
	}
	if len(g.GroupCols) != 1 || len(g.Aggs) != 2 {
		t.Fatalf("group cols %d aggs %d", len(g.GroupCols), len(g.Aggs))
	}
	// COUNT(*) in select and HAVING should dedup to one agg item.
	for _, a := range g.Aggs {
		if a.Fn == AggCount && a.Arg != nil {
			t.Error("COUNT(*) should have nil arg")
		}
	}
}

func TestBuildGroupByValidation(t *testing.T) {
	c := paperCatalog(t)
	buildErr(t, c, "SELECT name FROM Emp GROUP BY did")
	buildErr(t, c, "SELECT did FROM Emp HAVING did > 1") // HAVING without grouping
	buildErr(t, c, "SELECT COUNT(*) FROM Emp WHERE COUNT(*) > 1")
	buildErr(t, c, "SELECT * FROM Emp GROUP BY did")
	buildErr(t, c, "SELECT MAX(*) FROM Emp")
	buildErr(t, c, "SELECT SUM(sal, age) FROM Emp")
}

func TestBuildScalarGroupBy(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, "SELECT COUNT(*), MIN(sal) FROM Emp")
	p := q.Root.(*Project)
	g, ok := p.Input.(*GroupBy)
	if !ok {
		t.Fatalf("expected scalar GroupBy, got %T", p.Input)
	}
	if len(g.GroupCols) != 0 || len(g.Aggs) != 2 {
		t.Error("scalar aggregation shape wrong")
	}
}

func TestBuildDistinct(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, "SELECT DISTINCT did FROM Emp")
	g, ok := q.Root.(*GroupBy)
	if !ok || len(g.Aggs) != 0 {
		t.Fatalf("DISTINCT should build GroupBy with no aggs, got %T", q.Root)
	}
}

func TestBuildOrderByAliasAndHidden(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, "SELECT name AS n FROM Emp ORDER BY n")
	if len(q.OrderBy) != 1 || q.OrderBy[0].Col != q.ResultCols[0] {
		t.Error("ORDER BY alias should resolve to result column")
	}
	q = build(t, c, "SELECT name FROM Emp ORDER BY sal DESC")
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc {
		t.Fatal("ORDER BY missing")
	}
	// sal must survive projection even though not selected.
	if !q.Root.OutputCols().Contains(q.OrderBy[0].Col) {
		t.Error("hidden order column not projected")
	}
}

func TestBuildLimit(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, "SELECT name FROM Emp LIMIT 5")
	l, ok := q.Root.(*Limit)
	if !ok || l.N != 5 {
		t.Fatalf("limit missing: %T", q.Root)
	}
}

func TestBuildCorrelatedSubquery(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, `SELECT name FROM Emp WHERE did IN
		(SELECT did FROM Dept WHERE loc = 'Denver' AND Emp.eid = Dept.mgr)`)
	var sub *Subquery
	VisitRel(q.Root, func(e RelExpr) {
		if s, ok := e.(*Select); ok {
			for _, f := range s.Filters {
				VisitScalar(f, func(sc Scalar) {
					if sq, ok := sc.(*Subquery); ok {
						sub = sq
					}
				})
			}
		}
	})
	if sub == nil {
		t.Fatal("no subquery found")
	}
	if sub.Mode != SubIn {
		t.Errorf("mode = %v", sub.Mode)
	}
	if sub.OuterCols.Len() != 1 {
		t.Errorf("outer cols = %v, want exactly the Emp.eid correlation", sub.OuterCols)
	}
}

func TestBuildExistsAndScalarSub(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, `SELECT dname FROM Dept WHERE EXISTS (SELECT 1 FROM Emp WHERE Emp.did = Dept.did)`)
	found := false
	VisitRel(q.Root, func(e RelExpr) {
		for _, s := range Scalars(e) {
			VisitScalar(s, func(sc Scalar) {
				if sq, ok := sc.(*Subquery); ok && sq.Mode == SubExists {
					found = true
				}
			})
		}
	})
	if !found {
		t.Error("EXISTS subquery not built")
	}
	q = build(t, c, `SELECT dname FROM Dept WHERE budget > (SELECT AVG(sal) FROM Emp WHERE Emp.did = Dept.did)`)
	found = false
	VisitRel(q.Root, func(e RelExpr) {
		for _, s := range Scalars(e) {
			VisitScalar(s, func(sc Scalar) {
				if sq, ok := sc.(*Subquery); ok && sq.Mode == SubScalar {
					found = true
				}
			})
		}
	})
	if !found {
		t.Error("scalar subquery not built")
	}
}

func TestBuildViewExpansion(t *testing.T) {
	c := paperCatalog(t)
	if err := c.AddView(&catalog.View{Name: "denver_emps",
		SQL: "SELECT e.eid, e.name, e.sal FROM Emp e, Dept d WHERE e.did = d.did AND d.loc = 'Denver'"}); err != nil {
		t.Fatal(err)
	}
	q := build(t, c, "SELECT v.name FROM denver_emps v WHERE v.sal > 50")
	scans := 0
	VisitRel(q.Root, func(e RelExpr) {
		if _, ok := e.(*Scan); ok {
			scans++
		}
	})
	if scans != 2 {
		t.Errorf("view should expand to 2 scans, got %d", scans)
	}
}

func TestBuildRecursiveViewFails(t *testing.T) {
	c := paperCatalog(t)
	if err := c.AddView(&catalog.View{Name: "v1", SQL: "SELECT * FROM v1"}); err != nil {
		t.Fatal(err)
	}
	buildErr(t, c, "SELECT * FROM v1")
}

func TestBuildOuterJoinNormalization(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, "SELECT e.name FROM Emp e RIGHT OUTER JOIN Dept d ON e.did = d.did")
	var join *Join
	VisitRel(q.Root, func(e RelExpr) {
		if j, ok := e.(*Join); ok {
			join = j
		}
	})
	if join == nil || join.Kind != LeftOuterJoin {
		t.Fatalf("right join should normalize to left, got %v", join)
	}
	// Dept becomes the preserved (left) side.
	if s, ok := join.Left.(*Scan); !ok || !strings.EqualFold(s.Table.Name, "Dept") {
		t.Error("RIGHT JOIN should swap sides")
	}
}

func TestEval3VL(t *testing.T) {
	nullC := &Const{Val: datum.Null}
	tr := &Const{Val: datum.NewBool(true)}
	fa := &Const{Val: datum.NewBool(false)}
	cases := []struct {
		e    Scalar
		want datum.D
	}{
		{&And{L: tr, R: nullC}, datum.Null},
		{&And{L: fa, R: nullC}, datum.NewBool(false)},
		{&And{L: nullC, R: fa}, datum.NewBool(false)},
		{&Or{L: tr, R: nullC}, datum.NewBool(true)},
		{&Or{L: nullC, R: tr}, datum.NewBool(true)},
		{&Or{L: fa, R: nullC}, datum.Null},
		{&Not{E: nullC}, datum.Null},
		{&Not{E: tr}, datum.NewBool(false)},
		{&Cmp{Op: CmpEq, L: nullC, R: nullC}, datum.Null},
		{&Cmp{Op: CmpEq, L: &Const{Val: datum.NewInt(1)}, R: &Const{Val: datum.NewFloat(1)}}, datum.NewBool(true)},
		{&IsNull{E: nullC}, datum.NewBool(true)},
		{&IsNull{E: tr, Negated: true}, datum.NewBool(true)},
		{&InList{E: &Const{Val: datum.NewInt(2)}, List: []Scalar{&Const{Val: datum.NewInt(1)}, nullC}}, datum.Null},
		{&InList{E: &Const{Val: datum.NewInt(1)}, List: []Scalar{&Const{Val: datum.NewInt(1)}, nullC}}, datum.NewBool(true)},
		{&InList{E: &Const{Val: datum.NewInt(3)}, List: []Scalar{&Const{Val: datum.NewInt(1)}}, Negated: true}, datum.NewBool(true)},
		{&Arith{Op: ArithAdd, L: &Const{Val: datum.NewInt(2)}, R: &Const{Val: datum.NewInt(3)}}, datum.NewInt(5)},
		{&Arith{Op: ArithAdd, L: nullC, R: &Const{Val: datum.NewInt(3)}}, datum.Null},
		{&Arith{Op: ArithDiv, L: &Const{Val: datum.NewFloat(7)}, R: &Const{Val: datum.NewFloat(2)}}, datum.NewFloat(3.5)},
		{&Arith{Op: ArithAdd, L: &Const{Val: datum.NewString("a")}, R: &Const{Val: datum.NewString("b")}}, datum.NewString("ab")},
	}
	for i, tc := range cases {
		got, err := Eval(tc.e, &EvalContext{})
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if got.IsNull() != tc.want.IsNull() || (!got.IsNull() && datum.Compare(got, tc.want) != 0) {
			t.Errorf("case %d (%s): got %s, want %s", i, tc.e, got, tc.want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := Eval(&Arith{Op: ArithDiv, L: &Const{Val: datum.NewInt(1)}, R: &Const{Val: datum.NewInt(0)}}, nil); err == nil {
		t.Error("div by zero should error")
	}
	if _, err := Eval(&Col{ID: 1}, &EvalContext{}); err == nil {
		t.Error("unbound column should error")
	}
	if _, err := Eval(&Not{E: &Const{Val: datum.NewInt(1)}}, nil); err == nil {
		t.Error("NOT on int should error")
	}
	if _, err := Eval(&Subquery{}, &EvalContext{}); err == nil {
		t.Error("subquery without evaluator should error")
	}
}

func TestLikeMatching(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "h_o", false},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abcdef", "a%c%f", true},
		{"abcdef", "a%x%f", false},
	}
	for _, c := range cases {
		got, err := evalCmp(CmpLike, datum.NewString(c.s), datum.NewString(c.p))
		if err != nil {
			t.Fatal(err)
		}
		if got.Bool() != c.want {
			t.Errorf("LIKE(%q, %q) = %v, want %v", c.s, c.p, got.Bool(), c.want)
		}
	}
	if LikePrefix("abc%def") != "abc" || LikePrefix("plain") != "plain" || LikePrefix("_x") != "" {
		t.Error("LikePrefix wrong")
	}
}

func TestNormalizePushdown(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, "SELECT e.name FROM Emp e, Dept d WHERE e.did = d.did AND e.sal > 10 AND d.loc = 'LA'")
	q.Root = Normalize(q.Root, DefaultNormalize())
	// After pushdown the join should carry the equi-join predicate and each
	// scan should sit under its local filter.
	var join *Join
	VisitRel(q.Root, func(e RelExpr) {
		if j, ok := e.(*Join); ok {
			join = j
		}
	})
	if join == nil {
		t.Fatal("no join")
	}
	if len(join.On) != 1 {
		t.Errorf("join On = %d preds, want 1", len(join.On))
	}
	countSelectsOverScans := 0
	VisitRel(q.Root, func(e RelExpr) {
		if s, ok := e.(*Select); ok {
			if _, ok := s.Input.(*Scan); ok {
				countSelectsOverScans++
			}
		}
	})
	if countSelectsOverScans != 2 {
		t.Errorf("local filters over scans = %d, want 2", countSelectsOverScans)
	}
}

func TestNormalizeViewMerge(t *testing.T) {
	c := paperCatalog(t)
	if err := c.AddView(&catalog.View{Name: "v", SQL: "SELECT eid, did FROM Emp WHERE sal > 10"}); err != nil {
		t.Fatal(err)
	}
	q := build(t, c, "SELECT v.eid FROM v, Dept d WHERE v.did = d.did")
	q.Root = Normalize(q.Root, DefaultNormalize())
	root := q.Root
	if p, ok := root.(*Project); ok {
		root = p.Input
	}
	leaves, preds, ok := ExtractJoinBlock(root)
	if !ok {
		t.Fatal("extract failed")
	}
	// The view body must have merged into the parent block: two scan
	// leaves, with both the join predicate and the view's filter extracted.
	if len(leaves) != 2 {
		t.Fatalf("leaves = %d, want 2 (view merged)", len(leaves))
	}
	if len(preds) != 2 {
		t.Fatalf("preds = %d, want 2 (join pred + view filter)", len(preds))
	}
}

func TestNormalizeOuterJoinSimplification(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, `SELECT e.name FROM Emp e LEFT OUTER JOIN Dept d ON e.did = d.did WHERE d.budget > 100`)
	q.Root = Normalize(q.Root, DefaultNormalize())
	var join *Join
	VisitRel(q.Root, func(e RelExpr) {
		if j, ok := e.(*Join); ok {
			join = j
		}
	})
	if join == nil || join.Kind != InnerJoin {
		t.Fatalf("null-rejecting WHERE should turn LOJ into inner join, got %v", join.Kind)
	}
	// IS NULL is not null-rejecting: LOJ must be preserved.
	q = build(t, c, `SELECT e.name FROM Emp e LEFT OUTER JOIN Dept d ON e.did = d.did WHERE d.budget IS NULL`)
	q.Root = Normalize(q.Root, DefaultNormalize())
	join = nil
	VisitRel(q.Root, func(e RelExpr) {
		if j, ok := e.(*Join); ok {
			join = j
		}
	})
	if join == nil || join.Kind != LeftOuterJoin {
		t.Fatal("IS NULL should not simplify the outer join")
	}
}

func TestNormalizeConstantFolding(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, "SELECT name FROM Emp WHERE 1 + 1 = 2")
	q.Root = Normalize(q.Root, DefaultNormalize())
	// Filter folds to TRUE and the Select disappears.
	VisitRel(q.Root, func(e RelExpr) {
		if _, ok := e.(*Select); ok {
			t.Error("constant-true filter should be removed")
		}
	})
}

func TestPruneColumns(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, "SELECT e.name FROM Emp e, Dept d WHERE e.did = d.did")
	q.Root = Normalize(q.Root, DefaultNormalize())
	PruneColumns(q)
	VisitRel(q.Root, func(e RelExpr) {
		if s, ok := e.(*Scan); ok {
			if strings.EqualFold(s.Table.Name, "Emp") && len(s.Cols) != 2 {
				t.Errorf("Emp scan cols = %d, want 2 (name, did)", len(s.Cols))
			}
			if strings.EqualFold(s.Table.Name, "Dept") && len(s.Cols) != 1 {
				t.Errorf("Dept scan cols = %d, want 1 (did)", len(s.Cols))
			}
		}
	})
}

func TestQueryGraphPaperExample(t *testing.T) {
	// Fig. 3: Emp joins Dept, self-join on Emp (E2).
	c := paperCatalog(t)
	q := build(t, c, `SELECT e.name FROM Emp e, Dept d, Emp e2
		WHERE e.did = d.did AND d.mgr = e2.eid AND e.sal > 10`)
	q.Root = Normalize(q.Root, NormalizeOptions{FoldConstants: true}) // keep filters unpushed
	leaves, preds, ok := ExtractJoinBlock(q.Root.(*Project).Input)
	if !ok || len(leaves) != 3 {
		t.Fatalf("leaves = %d ok=%v", len(leaves), ok)
	}
	g := BuildQueryGraph(leaves, preds)
	if len(g.Edges) != 2 {
		t.Fatalf("edges = %d, want 2\n%s", len(g.Edges), g)
	}
	localCount := 0
	for _, l := range g.Local {
		localCount += len(l)
	}
	if localCount != 1 {
		t.Errorf("local preds = %d, want 1", localCount)
	}
	if !g.Connected([]int{0, 1, 2}) {
		t.Error("graph should be connected")
	}
	if g.Connected([]int{0, 2}) {
		t.Error("e and e2 are not directly connected")
	}
	if between := g.EdgesBetween([]int{0}, []int{1}); len(between) != 1 {
		t.Errorf("EdgesBetween = %d", len(between))
	}
}

func TestQueryGraphStar(t *testing.T) {
	c := catalog.New()
	mk := func(name string) {
		tb := &catalog.Table{Name: name, Cols: []catalog.Column{
			{Name: "k", Kind: datum.KindInt},
			{Name: "d1", Kind: datum.KindInt},
			{Name: "d2", Kind: datum.KindInt},
			{Name: "d3", Kind: datum.KindInt},
		}}
		if err := c.AddTable(tb); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range []string{"fact", "dim1", "dim2", "dim3"} {
		mk(n)
	}
	q := build(t, c, `SELECT * FROM fact f, dim1 a, dim2 b, dim3 cc
		WHERE f.d1 = a.k AND f.d2 = b.k AND f.d3 = cc.k`)
	leaves, preds, _ := ExtractJoinBlock(q.Root.(*Project).Input)
	g := BuildQueryGraph(leaves, preds)
	hub, ok := g.Star()
	if !ok || hub != 0 {
		t.Errorf("star detection: hub=%d ok=%v", hub, ok)
	}
}

func TestScalarUtilities(t *testing.T) {
	e := &And{
		L: &Cmp{Op: CmpEq, L: &Col{ID: 1}, R: &Col{ID: 2}},
		R: &Cmp{Op: CmpGt, L: &Col{ID: 3}, R: &Const{Val: datum.NewInt(5)}},
	}
	if !ScalarCols(e).Equals(MakeColSet(1, 2, 3)) {
		t.Error("ScalarCols")
	}
	conj := SplitConjunction(e)
	if len(conj) != 2 {
		t.Error("SplitConjunction")
	}
	if Conjoin(conj).String() != e.String() {
		t.Error("Conjoin should rebuild")
	}
	if Conjoin(nil) != nil {
		t.Error("Conjoin(nil)")
	}
	m := map[ColumnID]ColumnID{1: 10, 3: 30}
	r := RemapScalar(e, m)
	if !ScalarCols(r).Equals(MakeColSet(10, 2, 30)) {
		t.Errorf("RemapScalar: %v", ScalarCols(r))
	}
	if CmpLt.Commute() != CmpGt || CmpEq.Commute() != CmpEq || CmpGe.Commute() != CmpLe {
		t.Error("Commute")
	}
}

func TestOrderingHelpers(t *testing.T) {
	o := Ordering{{Col: 1}, {Col: 2, Desc: true}}
	if o.Key() != "+1-2" {
		t.Errorf("Key = %q", o.Key())
	}
	if !o.SatisfiedBy(Ordering{{Col: 1}, {Col: 2, Desc: true}, {Col: 3}}) {
		t.Error("stronger ordering should satisfy")
	}
	if o.SatisfiedBy(Ordering{{Col: 1}}) {
		t.Error("prefix does not satisfy")
	}
	if o.SatisfiedBy(Ordering{{Col: 2, Desc: true}, {Col: 1}}) {
		t.Error("order matters")
	}
	if o.String() == "" {
		t.Error("String")
	}
}

func TestFormatAndRemapRel(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, "SELECT did, COUNT(*) FROM Emp WHERE sal > 1 GROUP BY did ORDER BY did LIMIT 3")
	s := Format(q.Root, q.Meta)
	for _, frag := range []string{"limit 3", "group-by", "select", "scan Emp"} {
		if !strings.Contains(s, frag) {
			t.Errorf("Format missing %q:\n%s", frag, s)
		}
	}
	// Remap all columns by +100 and confirm structure holds.
	mapping := map[ColumnID]ColumnID{}
	for i := 1; i <= q.Meta.NumColumns(); i++ {
		mapping[ColumnID(i)] = ColumnID(i + 100)
	}
	r := RemapRel(q.Root, mapping)
	r.OutputCols().ForEach(func(cid ColumnID) {
		if cid <= 100 {
			t.Errorf("column %d not remapped", cid)
		}
	})
}

func TestFreeColsAndInputCols(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, `SELECT dname FROM Dept WHERE EXISTS (SELECT 1 FROM Emp WHERE Emp.did = Dept.did)`)
	// The subquery plan has one free column (Dept.did).
	var sub *Subquery
	VisitRel(q.Root, func(e RelExpr) {
		for _, s := range Scalars(e) {
			VisitScalar(s, func(sc Scalar) {
				if sq, ok := sc.(*Subquery); ok {
					sub = sq
				}
			})
		}
	})
	if sub == nil {
		t.Fatal("no subquery")
	}
	if sub.OuterCols.Len() != 1 {
		t.Errorf("OuterCols = %v", sub.OuterCols)
	}
	if got := FreeCols(sub.Plan); !got.Equals(sub.OuterCols) {
		t.Errorf("FreeCols = %v, want %v", got, sub.OuterCols)
	}
}

func TestWithChildrenAllOps(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, "SELECT DISTINCT did FROM Emp WHERE sal > 1 ORDER BY did LIMIT 2")
	var check func(e RelExpr)
	check = func(e RelExpr) {
		ch := Children(e)
		cp := WithChildren(e, ch)
		if len(Children(cp)) != len(ch) {
			t.Errorf("WithChildren changed arity for %T", e)
		}
		for _, c := range ch {
			check(c)
		}
	}
	check(q.Root)
}

func TestBuildUnionAndFormat(t *testing.T) {
	c := paperCatalog(t)
	q := build(t, c, `SELECT name FROM Emp WHERE sal > 100
		UNION ALL SELECT dname FROM Dept
		UNION SELECT loc FROM Dept
		ORDER BY name DESC LIMIT 4`)
	// Shape: Limit over GroupBy(distinct) over Union over (Union, Project).
	lim, ok := q.Root.(*Limit)
	if !ok {
		t.Fatalf("root %T", q.Root)
	}
	g, ok := lim.Input.(*GroupBy)
	if !ok || len(g.Aggs) != 0 {
		t.Fatalf("distinct layer %T", lim.Input)
	}
	u, ok := g.Input.(*Union)
	if !ok {
		t.Fatalf("union %T", g.Input)
	}
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc {
		t.Error("union ORDER BY lost")
	}
	if !q.OrderBy[0:1].SatisfiedBy(Ordering{{Col: u.Cols[0], Desc: true}}) {
		t.Error("order column should be the union output")
	}
	s := Format(q.Root, q.Meta)
	if !strings.Contains(s, "union-all") {
		t.Errorf("Format missing union:\n%s", s)
	}
	// Remap the whole tree; output cols must move.
	mapping := map[ColumnID]ColumnID{}
	for i := 1; i <= q.Meta.NumColumns(); i++ {
		mapping[ColumnID(i)] = ColumnID(i + 500)
	}
	r := RemapRel(q.Root, mapping).(*Limit).Input.(*GroupBy).Input.(*Union)
	for _, cid := range r.Cols {
		if cid <= 500 {
			t.Fatalf("union col %d not remapped", cid)
		}
	}
	// WithChildren/Children round-trip on Union.
	ch := Children(u)
	if len(ch) != 2 {
		t.Fatal("union children")
	}
	cp := WithChildren(u, ch).(*Union)
	if len(cp.Cols) != len(u.Cols) {
		t.Fatal("WithChildren lost payload")
	}
}

func TestBuildUnionErrors(t *testing.T) {
	c := paperCatalog(t)
	buildErr(t, c, "SELECT name, sal FROM Emp UNION SELECT dname FROM Dept")
	buildErr(t, c, "SELECT name FROM Emp UNION SELECT dname FROM Dept ORDER BY sal")
	buildErr(t, c, "SELECT name FROM Emp UNION SELECT dname FROM Dept ORDER BY Emp.name")
}

func TestExpandGroupingSetsShapes(t *testing.T) {
	c := paperCatalog(t)
	// ROLLUP(a, b) → 3 arms; CUBE(a, b) → 4 arms.
	q := build(t, c, "SELECT did, age, COUNT(*) FROM Emp GROUP BY ROLLUP (did, age)")
	unions := 0
	VisitRel(q.Root, func(e RelExpr) {
		if _, ok := e.(*Union); ok {
			unions++
		}
	})
	if unions != 2 { // 3 arms chain into 2 union nodes
		t.Errorf("rollup unions = %d, want 2", unions)
	}
	q = build(t, c, "SELECT did, age, COUNT(*) FROM Emp GROUP BY CUBE (did, age)")
	unions = 0
	VisitRel(q.Root, func(e RelExpr) {
		if _, ok := e.(*Union); ok {
			unions++
		}
	})
	if unions != 3 {
		t.Errorf("cube unions = %d, want 3", unions)
	}
	// Aggregate args must keep their references even when the column is
	// rolled away: SUM(sal) with sal not grouped is unaffected by null-out.
	q = build(t, c, "SELECT did, SUM(sal) FROM Emp GROUP BY ROLLUP (did)")
	sums := 0
	VisitRel(q.Root, func(e RelExpr) {
		if g, ok := e.(*GroupBy); ok {
			for _, a := range g.Aggs {
				if a.Fn == AggSum && a.Arg != nil {
					sums++
				}
			}
		}
	})
	if sums != 2 {
		t.Errorf("both arms should aggregate sal: %d", sums)
	}
}
