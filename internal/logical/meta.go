package logical

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/datum"
)

// ColumnMeta describes one query column: where it came from and how to
// display it.
type ColumnMeta struct {
	// Name is the column's display name (base column name or alias).
	Name string
	// Binding is the table binding (alias) the column belongs to; empty for
	// synthesized columns (aggregates, projections).
	Binding string
	Kind    datum.Kind
	// Base links back to the base table and ordinal for columns read from
	// storage; Base == nil for synthesized columns.
	Base    *catalog.Table
	BaseOrd int
}

// Metadata allocates and describes the query's global column IDs.
type Metadata struct {
	cols []ColumnMeta // index i holds ColumnID(i+1)
}

// NewMetadata returns an empty metadata.
func NewMetadata() *Metadata { return &Metadata{} }

// AddColumn allocates a fresh column ID.
func (m *Metadata) AddColumn(cm ColumnMeta) ColumnID {
	m.cols = append(m.cols, cm)
	return ColumnID(len(m.cols))
}

// Column returns the metadata for id.
func (m *Metadata) Column(id ColumnID) ColumnMeta {
	if id <= 0 || int(id) > len(m.cols) {
		panic(fmt.Sprintf("logical: unknown ColumnID %d", id))
	}
	return m.cols[id-1]
}

// NumColumns returns the number of allocated columns.
func (m *Metadata) NumColumns() int { return len(m.cols) }

// QualifiedName renders "binding.name" (or just the name) for diagnostics.
func (m *Metadata) QualifiedName(id ColumnID) string {
	cm := m.Column(id)
	if cm.Binding != "" {
		return cm.Binding + "." + cm.Name
	}
	if cm.Name != "" {
		return cm.Name
	}
	return fmt.Sprintf("col%d", int(id))
}

// AddTable allocates fresh IDs for every column of a base-table occurrence
// under the given binding and returns them in table-ordinal order.
func (m *Metadata) AddTable(t *catalog.Table, binding string) []ColumnID {
	ids := make([]ColumnID, len(t.Cols))
	for i, c := range t.Cols {
		ids[i] = m.AddColumn(ColumnMeta{
			Name:    c.Name,
			Binding: binding,
			Kind:    c.Kind,
			Base:    t,
			BaseOrd: i,
		})
	}
	return ids
}
