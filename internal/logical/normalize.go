package logical

import (
	"repro/internal/datum"
)

// NormalizeOptions controls which normalization rules run, letting
// experiments compare merged vs. unmerged query shapes (E7).
type NormalizeOptions struct {
	// FoldConstants evaluates constant subexpressions.
	FoldConstants bool
	// PushSelections pushes filters toward the leaves and into join
	// conditions.
	PushSelections bool
	// MergeProjects collapses Project(Project) and removes identity
	// projections — this is what "unfolds" SPJ views into the parent block
	// (§4.2.1).
	MergeProjects bool
	// SimplifyOuterJoins converts outer joins to inner joins under
	// null-rejecting predicates.
	SimplifyOuterJoins bool
}

// DefaultNormalize enables every rule.
func DefaultNormalize() NormalizeOptions {
	return NormalizeOptions{
		FoldConstants:      true,
		PushSelections:     true,
		MergeProjects:      true,
		SimplifyOuterJoins: true,
	}
}

// Normalize applies the enabled rewrite rules to fixpoint (bounded) and
// returns the new root.
func Normalize(e RelExpr, opts NormalizeOptions) RelExpr {
	for pass := 0; pass < 20; pass++ {
		changed := false
		e = normalizeNode(e, opts, &changed)
		if !changed {
			break
		}
	}
	return e
}

// NormalizeQuery normalizes q.Root in place.
func NormalizeQuery(q *Query, opts NormalizeOptions) {
	q.Root = Normalize(q.Root, opts)
}

func normalizeNode(e RelExpr, opts NormalizeOptions, changed *bool) RelExpr {
	// Recurse first (bottom-up).
	ch := Children(e)
	if len(ch) > 0 {
		nch := make([]RelExpr, len(ch))
		mutated := false
		for i, c := range ch {
			nch[i] = normalizeNode(c, opts, changed)
			if nch[i] != c {
				mutated = true
			}
		}
		if mutated {
			e = WithChildren(e, nch)
		}
	}

	if opts.FoldConstants {
		e = foldConstantsNode(e, changed)
	}

	switch t := e.(type) {
	case *Select:
		// Drop always-true filters.
		var kept []Scalar
		for _, f := range t.Filters {
			// Param-tagged constants are kept: a TRUE binding is only true for
			// this probe, and the filter must survive for re-binding.
			if c, ok := f.(*Const); ok && c.Param == 0 && !c.Val.IsNull() && c.Val.Kind() == datum.KindBool && c.Val.Bool() {
				*changed = true
				continue
			}
			kept = append(kept, f)
		}
		if len(kept) == 0 {
			*changed = true
			return t.Input
		}
		if len(kept) != len(t.Filters) {
			t = &Select{Input: t.Input, Filters: kept}
		}
		// Merge Select(Select).
		if inner, ok := t.Input.(*Select); ok {
			*changed = true
			return &Select{Input: inner.Input, Filters: append(append([]Scalar{}, inner.Filters...), t.Filters...)}
		}
		if opts.PushSelections {
			if out, did := pushSelect(t, opts); did {
				*changed = true
				return out
			}
		}
		return t
	case *Project:
		if opts.MergeProjects {
			// Merge Project(Project): substitute inner expressions.
			if inner, ok := t.Input.(*Project); ok {
				sub := map[ColumnID]Scalar{}
				for _, it := range inner.Items {
					sub[it.ID] = it.Expr
				}
				items := make([]ProjectItem, len(t.Items))
				ok := true
				for i, it := range t.Items {
					ni := ProjectItem{ID: it.ID, Expr: substituteCols(it.Expr, sub)}
					if ni.Expr == nil {
						ok = false
						break
					}
					items[i] = ni
				}
				if ok {
					*changed = true
					return &Project{Input: inner.Input, Items: items}
				}
			}
			// Passthrough projections only restrict columns; removing them
			// exposes the block underneath (view merging). Column pruning
			// re-narrows scans afterwards.
			if t.Passthrough() {
				*changed = true
				return t.Input
			}
		}
		return t
	case *Join:
		if opts.SimplifyOuterJoins && t.Kind == LeftOuterJoin {
			// A LEFT JOIN with a null-rejecting predicate over right columns
			// in a parent Select is handled in pushSelect; here we simplify
			// degenerate cases like an outer join whose On includes FALSE.
		}
		return t
	}
	return e
}

// foldConstantsNode folds constant scalar subexpressions in e's scalars.
func foldConstantsNode(e RelExpr, changed *bool) RelExpr {
	fold := func(s Scalar) Scalar {
		return RewriteScalar(s, func(sc Scalar) Scalar {
			switch sc.(type) {
			case *Const, *Col:
				return sc
			}
			if v, ok := EvalConst(sc); ok {
				*changed = true
				return &Const{Val: v}
			}
			return sc
		})
	}
	switch t := e.(type) {
	case *Select:
		nf := make([]Scalar, len(t.Filters))
		for i, f := range t.Filters {
			nf[i] = fold(f)
		}
		return &Select{Input: t.Input, Filters: nf}
	case *Project:
		items := make([]ProjectItem, len(t.Items))
		for i, it := range t.Items {
			items[i] = ProjectItem{ID: it.ID, Expr: fold(it.Expr)}
		}
		return &Project{Input: t.Input, Items: items}
	case *Join:
		cp := *t
		cp.On = make([]Scalar, len(t.On))
		for i, f := range t.On {
			cp.On[i] = fold(f)
		}
		return &cp
	}
	return e
}

// substituteCols replaces column references with the given expressions. It
// returns nil if a subquery prevents safe substitution.
func substituteCols(s Scalar, sub map[ColumnID]Scalar) Scalar {
	bad := false
	out := RewriteScalar(s, func(sc Scalar) Scalar {
		if c, ok := sc.(*Col); ok {
			if e, ok := sub[c.ID]; ok {
				return e
			}
		}
		if q, ok := sc.(*Subquery); ok {
			// Substituting inside correlated subqueries would require
			// rewriting the subplan; only allow when no outer col is mapped.
			affected := false
			q.OuterCols.ForEach(func(c ColumnID) {
				if _, ok := sub[c]; ok {
					affected = true
				}
			})
			if affected {
				bad = true
			}
		}
		return sc
	})
	if bad {
		return nil
	}
	return out
}

// pushSelect pushes the filters of sel one level down when possible.
func pushSelect(sel *Select, opts NormalizeOptions) (RelExpr, bool) {
	switch in := sel.Input.(type) {
	case *Project:
		// Rewrite each filter through the projection and push below.
		sub := map[ColumnID]Scalar{}
		for _, it := range in.Items {
			sub[it.ID] = it.Expr
		}
		var pushed, stay []Scalar
		for _, f := range sel.Filters {
			nf := substituteCols(f, sub)
			if nf == nil {
				stay = append(stay, f)
				continue
			}
			pushed = append(pushed, nf)
		}
		if len(pushed) == 0 {
			return sel, false
		}
		out := RelExpr(&Project{Input: &Select{Input: in.Input, Filters: pushed}, Items: in.Items})
		if len(stay) > 0 {
			out = &Select{Input: out, Filters: stay}
		}
		return out, true
	case *Join:
		leftCols := in.Left.OutputCols()
		rightCols := in.Right.OutputCols()
		var toLeft, toRight, toOn, stay []Scalar
		kind := in.Kind
		for _, f := range sel.Filters {
			cols := ScalarCols(f)
			switch {
			case cols.SubsetOf(leftCols):
				if kind == FullOuterJoin {
					// Null-rejecting filters on either side reduce FULL to
					// one-sided; conservatively keep unless null-rejecting.
					if opts.SimplifyOuterJoins && nullRejecting(f, leftCols) {
						kind = LeftOuterJoin
						toLeft = append(toLeft, f)
					} else {
						stay = append(stay, f)
					}
					continue
				}
				toLeft = append(toLeft, f)
			case cols.SubsetOf(rightCols):
				switch kind {
				case InnerJoin, SemiJoin, AntiJoin:
					if kind == AntiJoin {
						stay = append(stay, f) // right cols invisible anyway
						continue
					}
					toRight = append(toRight, f)
				case LeftOuterJoin:
					if opts.SimplifyOuterJoins && nullRejecting(f, rightCols) {
						// §4.1.2-style simplification: the filter rejects
						// NULL-padded rows, so the outer join is an inner join.
						kind = InnerJoin
						toRight = append(toRight, f)
					} else {
						stay = append(stay, f)
					}
				default:
					stay = append(stay, f)
				}
			default:
				if kind == InnerJoin {
					toOn = append(toOn, f)
				} else if opts.SimplifyOuterJoins && kind == LeftOuterJoin && nullRejecting(f, rightCols) {
					kind = InnerJoin
					toOn = append(toOn, f)
				} else {
					stay = append(stay, f)
				}
			}
		}
		if len(toLeft)+len(toRight)+len(toOn) == 0 && kind == in.Kind {
			return sel, false
		}
		left := in.Left
		if len(toLeft) > 0 {
			left = &Select{Input: left, Filters: toLeft}
		}
		right := in.Right
		if len(toRight) > 0 {
			right = &Select{Input: right, Filters: toRight}
		}
		out := RelExpr(&Join{Kind: kind, Left: left, Right: right, On: append(append([]Scalar{}, in.On...), toOn...)})
		if len(stay) > 0 {
			out = &Select{Input: out, Filters: stay}
		}
		return out, true
	case *GroupBy:
		var groupSet ColSet
		for _, c := range in.GroupCols {
			groupSet.Add(c)
		}
		var pushed, stay []Scalar
		for _, f := range sel.Filters {
			if ScalarCols(f).SubsetOf(groupSet) && !HasSubquery(f) {
				pushed = append(pushed, f)
			} else {
				stay = append(stay, f)
			}
		}
		if len(pushed) == 0 {
			return sel, false
		}
		out := RelExpr(&GroupBy{
			Input:     &Select{Input: in.Input, Filters: pushed},
			GroupCols: in.GroupCols,
			Aggs:      in.Aggs,
		})
		if len(stay) > 0 {
			out = &Select{Input: out, Filters: stay}
		}
		return out, true
	}
	return sel, false
}

// nullRejecting reports whether f cannot evaluate to TRUE when all columns in
// `over` that f references are NULL. Comparisons and IS NOT NULL over those
// columns reject NULLs; IS NULL and disjunctions are conservatively kept.
func nullRejecting(f Scalar, over ColSet) bool {
	refs := ScalarCols(f).Intersect(over)
	if refs.Empty() {
		return false
	}
	switch t := f.(type) {
	case *Cmp:
		return true // any NULL operand makes the comparison UNKNOWN
	case *IsNull:
		return t.Negated
	case *And:
		return nullRejecting(t.L, over) || nullRejecting(t.R, over)
	case *InList:
		return !t.Negated
	case *UDPRef:
		return false
	default:
		return false
	}
}

// PruneColumns removes unused columns from the tree, trimming Scan column
// lists and Project items. The needed set at the root is the query's result
// columns plus ordering columns.
func PruneColumns(q *Query) {
	var needed ColSet
	for _, c := range q.ResultCols {
		needed.Add(c)
	}
	for _, o := range q.OrderBy {
		needed.Add(o.Col)
	}
	q.Root = pruneRel(q.Root, needed)
}

func pruneRel(e RelExpr, needed ColSet) RelExpr {
	switch t := e.(type) {
	case *Scan:
		var cols []ColumnID
		for _, c := range t.Cols {
			if needed.Contains(c) {
				cols = append(cols, c)
			}
		}
		if len(cols) == 0 && len(t.Cols) > 0 {
			cols = []ColumnID{t.Cols[0]} // keep arity ≥ 1 for EXISTS-style plans
		}
		return &Scan{Table: t.Table, Binding: t.Binding, Cols: cols}
	case *Values:
		return t
	case *Select:
		in := needed.Copy()
		for _, f := range t.Filters {
			in = in.Union(ScalarCols(f))
		}
		return &Select{Input: pruneRel(t.Input, in), Filters: t.Filters}
	case *Project:
		var items []ProjectItem
		in := ColSet{}
		for _, it := range t.Items {
			if needed.Contains(it.ID) {
				items = append(items, it)
				in = in.Union(ScalarCols(it.Expr))
			}
		}
		if len(items) == 0 && len(t.Items) > 0 {
			items = t.Items[:1]
			in = in.Union(ScalarCols(items[0].Expr))
		}
		return &Project{Input: pruneRel(t.Input, in), Items: items}
	case *Join:
		in := needed.Copy()
		for _, f := range t.On {
			in = in.Union(ScalarCols(f))
		}
		leftNeeded := in.Intersect(t.Left.OutputCols())
		rightNeeded := in.Intersect(t.Right.OutputCols())
		cp := *t
		cp.Left = pruneRel(t.Left, leftNeeded)
		cp.Right = pruneRel(t.Right, rightNeeded)
		return &cp
	case *GroupBy:
		var aggs []AggItem
		in := ColSet{}
		for _, c := range t.GroupCols {
			in.Add(c)
		}
		for _, a := range t.Aggs {
			if needed.Contains(a.ID) {
				aggs = append(aggs, a)
				if a.Arg != nil {
					in = in.Union(ScalarCols(a.Arg))
				}
			}
		}
		cp := *t
		cp.Aggs = aggs
		cp.Input = pruneRel(t.Input, in)
		return &cp
	case *Limit:
		cp := *t
		cp.Input = pruneRel(t.Input, needed)
		return &cp
	case *Union:
		// Union arms keep their full aligned column lists.
		cp := *t
		var ln, rn ColSet
		for _, c := range t.LeftCols {
			ln.Add(c)
		}
		for _, c := range t.RightCols {
			rn.Add(c)
		}
		cp.Left = pruneRel(t.Left, ln)
		cp.Right = pruneRel(t.Right, rn)
		return &cp
	}
	return e
}
