package logical

import (
	"testing"

	"repro/internal/datum"
	"repro/internal/sql"
)

// buildParams builds a query with parameter placeholders bound to vals.
func buildParams(t *testing.T, q string, vals ...datum.D) *Query {
	t.Helper()
	c := paperCatalog(t)
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	b := NewBuilder(c)
	b.BindParams(vals)
	query, err := b.Build(sel)
	if err != nil {
		t.Fatalf("build %q: %v", q, err)
	}
	return query
}

// countParams walks every scalar in the tree counting param-tagged consts.
func countParams(e RelExpr) int {
	n := 0
	VisitRel(e, func(r RelExpr) {
		for _, s := range Scalars(r) {
			VisitScalar(s, func(sc Scalar) {
				if c, ok := sc.(*Const); ok && c.Param != 0 {
					n++
				}
			})
		}
	})
	return n
}

func TestParamBindingSurvivesNormalize(t *testing.T) {
	q := buildParams(t, `SELECT name FROM Emp WHERE sal > $1 AND did = $2`,
		datum.NewFloat(100), datum.NewInt(7))
	NormalizeQuery(q, DefaultNormalize())
	if got := countParams(q.Root); got != 2 {
		t.Fatalf("param-tagged consts after normalize = %d, want 2", got)
	}
}

func TestParamArithmeticNotFolded(t *testing.T) {
	// $1 + 1 must not fold into a derived constant: the probe value would be
	// baked into the plan and re-binding would silently use it.
	q := buildParams(t, `SELECT name FROM Emp WHERE sal > $1 + 1`, datum.NewFloat(100))
	NormalizeQuery(q, DefaultNormalize())
	if got := countParams(q.Root); got != 1 {
		t.Fatalf("param-tagged consts after normalize = %d, want 1 (fold would erase it)", got)
	}
}

func TestParamTrueFilterNotDropped(t *testing.T) {
	// A boolean parameter bound to TRUE is only true for this probe; the
	// filter must survive normalization for re-binding.
	q := buildParams(t, `SELECT name FROM Emp WHERE $1`, datum.NewBool(true))
	NormalizeQuery(q, DefaultNormalize())
	if got := countParams(q.Root); got != 1 {
		t.Fatalf("param TRUE filter was dropped (tagged consts = %d, want 1)", got)
	}
}

func TestUnboundParamErrors(t *testing.T) {
	c := paperCatalog(t)
	sel, err := sql.ParseSelect(`SELECT name FROM Emp WHERE sal > $2`)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(c)
	b.BindParams([]datum.D{datum.NewFloat(1)})
	if _, err := b.Build(sel); err == nil {
		t.Fatal("expected unbound-parameter error for $2 with one value")
	}
}
