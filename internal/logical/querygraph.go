package logical

import (
	"fmt"
	"strings"
)

// QueryGraph is the calculus-oriented representation of Figure 3 of the
// paper: nodes are relations (correlation variables) of one join block,
// labeled edges are the join predicates connecting them. Local (single-
// relation) predicates annotate the nodes.
type QueryGraph struct {
	// Nodes are the leaf relational expressions of the join block.
	Nodes []RelExpr
	// NodeCols[i] holds the output columns of Nodes[i].
	NodeCols []ColSet
	// Edges connect pairs of nodes with their join predicates.
	Edges []GraphEdge
	// Local[i] are predicates referencing only Nodes[i].
	Local [][]Scalar
	// Complex are predicates spanning three or more nodes (kept aside; they
	// are applied once all their relations are joined).
	Complex []Scalar
}

// GraphEdge is a labeled edge between two graph nodes.
type GraphEdge struct {
	A, B  int
	Preds []Scalar
}

// ExtractJoinBlock flattens a tree of inner joins and selections into its
// leaf relations and the full predicate list. ok is false if e is not an
// inner-join block root (a single leaf still succeeds with one relation).
func ExtractJoinBlock(e RelExpr) (leaves []RelExpr, preds []Scalar, ok bool) {
	switch t := e.(type) {
	case *Select:
		l, p, ok := ExtractJoinBlock(t.Input)
		if !ok {
			return nil, nil, false
		}
		return l, append(p, t.Filters...), true
	case *Join:
		if t.Kind != InnerJoin {
			return []RelExpr{e}, nil, true // treat non-inner join as a leaf
		}
		ll, lp, ok := ExtractJoinBlock(t.Left)
		if !ok {
			return nil, nil, false
		}
		rl, rp, ok := ExtractJoinBlock(t.Right)
		if !ok {
			return nil, nil, false
		}
		leaves = append(ll, rl...)
		preds = append(append(lp, rp...), t.On...)
		return leaves, preds, true
	default:
		return []RelExpr{e}, nil, true
	}
}

// BuildQueryGraph classifies the block's predicates into local predicates,
// binary join edges and complex (hyper-)predicates.
func BuildQueryGraph(leaves []RelExpr, preds []Scalar) *QueryGraph {
	g := &QueryGraph{
		Nodes:    leaves,
		NodeCols: make([]ColSet, len(leaves)),
		Local:    make([][]Scalar, len(leaves)),
	}
	for i, l := range leaves {
		g.NodeCols[i] = l.OutputCols()
	}
	edgeIndex := map[[2]int]int{}
	for _, p := range preds {
		cols := ScalarCols(p)
		var touching []int
		for i, nc := range g.NodeCols {
			if cols.Intersects(nc) {
				touching = append(touching, i)
			}
		}
		switch len(touching) {
		case 0:
			// Constant or outer-referencing predicate: treat as complex.
			g.Complex = append(g.Complex, p)
		case 1:
			g.Local[touching[0]] = append(g.Local[touching[0]], p)
		case 2:
			key := [2]int{touching[0], touching[1]}
			if idx, ok := edgeIndex[key]; ok {
				g.Edges[idx].Preds = append(g.Edges[idx].Preds, p)
			} else {
				edgeIndex[key] = len(g.Edges)
				g.Edges = append(g.Edges, GraphEdge{A: key[0], B: key[1], Preds: []Scalar{p}})
			}
		default:
			g.Complex = append(g.Complex, p)
		}
	}
	return g
}

// Connected reports whether the subset of nodes (by index) forms a connected
// subgraph — used by enumerators to avoid Cartesian products.
func (g *QueryGraph) Connected(subset []int) bool {
	if len(subset) <= 1 {
		return true
	}
	inSet := map[int]bool{}
	for _, i := range subset {
		inSet[i] = true
	}
	adj := map[int][]int{}
	for _, e := range g.Edges {
		if inSet[e.A] && inSet[e.B] {
			adj[e.A] = append(adj[e.A], e.B)
			adj[e.B] = append(adj[e.B], e.A)
		}
	}
	seen := map[int]bool{subset[0]: true}
	stack := []int{subset[0]}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return len(seen) == len(subset)
}

// EdgesBetween returns the predicates connecting any node in a to any node
// in b.
func (g *QueryGraph) EdgesBetween(a, b []int) []Scalar {
	inA := map[int]bool{}
	for _, i := range a {
		inA[i] = true
	}
	inB := map[int]bool{}
	for _, i := range b {
		inB[i] = true
	}
	var out []Scalar
	for _, e := range g.Edges {
		if (inA[e.A] && inB[e.B]) || (inA[e.B] && inB[e.A]) {
			out = append(out, e.Preds...)
		}
	}
	return out
}

// Star reports whether the graph is a star: one hub connected to every other
// node, with no other edges — the decision-support shape §4.1.1 discusses.
func (g *QueryGraph) Star() (hub int, ok bool) {
	n := len(g.Nodes)
	if n < 3 {
		return 0, false
	}
	deg := make([]int, n)
	for _, e := range g.Edges {
		deg[e.A]++
		deg[e.B]++
	}
	hub = -1
	for i, d := range deg {
		if d == n-1 {
			hub = i
		} else if d != 1 {
			return 0, false
		}
	}
	if hub < 0 {
		return 0, false
	}
	return hub, len(g.Edges) == n-1
}

// String renders the graph for diagnostics.
func (g *QueryGraph) String() string {
	var sb strings.Builder
	for i := range g.Nodes {
		name := fmt.Sprintf("R%d", i)
		if s, ok := g.Nodes[i].(*Scan); ok {
			name = s.Binding
		}
		fmt.Fprintf(&sb, "node %d: %s local=%d\n", i, name, len(g.Local[i]))
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&sb, "edge %d--%d (%d preds)\n", e.A, e.B, len(e.Preds))
	}
	if len(g.Complex) > 0 {
		fmt.Fprintf(&sb, "complex preds: %d\n", len(g.Complex))
	}
	return sb.String()
}
