package logical

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
)

// RelExpr is a logical relational operator (a node of the paper's query
// trees).
type RelExpr interface {
	rel()
	// OutputCols returns the columns the operator produces.
	OutputCols() ColSet
}

// Scan reads one base-table occurrence. Cols[i] is the global column ID for
// table ordinal i.
type Scan struct {
	Table   *catalog.Table
	Binding string
	Cols    []ColumnID
}

func (*Scan) rel() {}

// OutputCols returns all of the occurrence's columns.
func (s *Scan) OutputCols() ColSet {
	var set ColSet
	for _, c := range s.Cols {
		set.Add(c)
	}
	return set
}

// ColFor returns the global column ID for a base-table ordinal.
func (s *Scan) ColFor(ord int) ColumnID { return s.Cols[ord] }

// Values produces literal rows (used for FROM-less selects and tests).
type Values struct {
	Cols []ColumnID
	Rows [][]Scalar
}

func (*Values) rel() {}

// OutputCols returns the value columns.
func (v *Values) OutputCols() ColSet {
	var set ColSet
	for _, c := range v.Cols {
		set.Add(c)
	}
	return set
}

// Select filters its input by a conjunction of predicates.
type Select struct {
	Input   RelExpr
	Filters []Scalar
}

func (*Select) rel() {}

// OutputCols passes through the input columns.
func (s *Select) OutputCols() ColSet { return s.Input.OutputCols() }

// ProjectItem computes one output column.
type ProjectItem struct {
	ID   ColumnID
	Expr Scalar
}

// Project computes a new column list from its input.
type Project struct {
	Input RelExpr
	Items []ProjectItem
}

func (*Project) rel() {}

// OutputCols returns the projected column IDs.
func (p *Project) OutputCols() ColSet {
	var set ColSet
	for _, it := range p.Items {
		set.Add(it.ID)
	}
	return set
}

// Passthrough reports whether every item is a bare column reference.
func (p *Project) Passthrough() bool {
	for _, it := range p.Items {
		if c, ok := it.Expr.(*Col); !ok || c.ID != it.ID {
			return false
		}
	}
	return true
}

// JoinKind enumerates logical join operators.
type JoinKind uint8

// Logical join kinds. Right outer joins are normalized to left outer joins at
// build time.
const (
	InnerJoin JoinKind = iota
	LeftOuterJoin
	FullOuterJoin
	SemiJoin
	AntiJoin
)

func (k JoinKind) String() string {
	switch k {
	case InnerJoin:
		return "inner-join"
	case LeftOuterJoin:
		return "left-outer-join"
	case FullOuterJoin:
		return "full-outer-join"
	case SemiJoin:
		return "semi-join"
	case AntiJoin:
		return "anti-join"
	}
	return "join"
}

// PreservesRight reports whether right-side columns appear in the output.
func (k JoinKind) PreservesRight() bool {
	return k == InnerJoin || k == LeftOuterJoin || k == FullOuterJoin
}

// Join combines two inputs on a conjunction of predicates. An empty On list
// is a Cartesian product.
type Join struct {
	Kind  JoinKind
	Left  RelExpr
	Right RelExpr
	On    []Scalar
}

func (*Join) rel() {}

// OutputCols returns left ∪ right for preserving kinds, left for semi/anti.
func (j *Join) OutputCols() ColSet {
	if j.Kind.PreservesRight() {
		return j.Left.OutputCols().Union(j.Right.OutputCols())
	}
	return j.Left.OutputCols()
}

// AggFn enumerates aggregate functions.
type AggFn uint8

// Aggregate functions.
const (
	AggCount AggFn = iota // COUNT(expr) or COUNT(*) when Arg == nil
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (f AggFn) String() string {
	return [...]string{"count", "sum", "avg", "min", "max"}[f]
}

// SplittableForStaging reports whether Agg(S ∪ S') is computable from partial
// aggregates — the condition §4.1.3 requires for staged (two-phase)
// aggregation. AVG is handled by splitting into SUM/COUNT at higher layers,
// so it is not splittable by itself.
func (f AggFn) SplittableForStaging() bool {
	switch f {
	case AggCount, AggSum, AggMin, AggMax:
		return true
	}
	return false
}

// AggItem computes one aggregate output column.
type AggItem struct {
	ID       ColumnID
	Fn       AggFn
	Arg      Scalar // nil means COUNT(*)
	Distinct bool
}

func (a AggItem) String() string {
	arg := "*"
	if a.Arg != nil {
		arg = a.Arg.String()
	}
	d := ""
	if a.Distinct {
		d = "distinct "
	}
	return fmt.Sprintf("@%d=%s(%s%s)", int(a.ID), a.Fn, d, arg)
}

// GroupBy groups its input and computes aggregates. An empty GroupCols list
// is scalar aggregation (always one output row). A GroupBy with no Aggs is
// DISTINCT.
type GroupBy struct {
	Input     RelExpr
	GroupCols []ColumnID
	Aggs      []AggItem
}

func (*GroupBy) rel() {}

// OutputCols returns the grouping columns plus aggregate outputs.
func (g *GroupBy) OutputCols() ColSet {
	var set ColSet
	for _, c := range g.GroupCols {
		set.Add(c)
	}
	for _, a := range g.Aggs {
		set.Add(a.ID)
	}
	return set
}

// Limit returns the first N input rows.
type Limit struct {
	Input RelExpr
	N     int64
}

func (*Limit) rel() {}

// OutputCols passes through the input columns.
func (l *Limit) OutputCols() ColSet { return l.Input.OutputCols() }

// OrderSpec is one ordering key over a query column.
type OrderSpec struct {
	Col  ColumnID
	Desc bool
}

// Ordering is a sequence of ordering keys — the physical property of §3.
type Ordering []OrderSpec

// Key returns a canonical map key for the ordering.
func (o Ordering) Key() string {
	var sb strings.Builder
	for _, s := range o {
		if s.Desc {
			fmt.Fprintf(&sb, "-%d", int(s.Col))
		} else {
			fmt.Fprintf(&sb, "+%d", int(s.Col))
		}
	}
	return sb.String()
}

// SatisfiedBy reports whether an actual ordering provides the required one
// (actual may be stronger, i.e. have more trailing keys).
func (o Ordering) SatisfiedBy(actual Ordering) bool {
	if len(actual) < len(o) {
		return false
	}
	for i, s := range o {
		if actual[i] != s {
			return false
		}
	}
	return true
}

func (o Ordering) String() string {
	parts := make([]string, len(o))
	for i, s := range o {
		dir := "+"
		if s.Desc {
			dir = "-"
		}
		parts[i] = fmt.Sprintf("%s@%d", dir, int(s.Col))
	}
	return strings.Join(parts, ",")
}

// Query is a fully built statement: the root relational expression plus
// presentation details.
type Query struct {
	Meta *Metadata
	Root RelExpr
	// ResultCols are the output columns in presentation order.
	ResultCols []ColumnID
	// ColNames are the display names for ResultCols.
	ColNames []string
	// OrderBy is the required ordering of the final result (a physical
	// property of the root, not a logical operator).
	OrderBy Ordering
}

// --- Tree utilities ---

// Children returns the relational children of e in a fixed order.
func Children(e RelExpr) []RelExpr {
	switch t := e.(type) {
	case *Scan, *Values:
		return nil
	case *Select:
		return []RelExpr{t.Input}
	case *Project:
		return []RelExpr{t.Input}
	case *Join:
		return []RelExpr{t.Left, t.Right}
	case *GroupBy:
		return []RelExpr{t.Input}
	case *Limit:
		return []RelExpr{t.Input}
	case *Union:
		return []RelExpr{t.Left, t.Right}
	}
	panic(fmt.Sprintf("logical: unknown RelExpr %T", e))
}

// WithChildren returns a copy of e with its relational children replaced.
func WithChildren(e RelExpr, ch []RelExpr) RelExpr {
	switch t := e.(type) {
	case *Scan:
		cp := *t
		return &cp
	case *Values:
		cp := *t
		return &cp
	case *Select:
		cp := *t
		cp.Input = ch[0]
		return &cp
	case *Project:
		cp := *t
		cp.Input = ch[0]
		return &cp
	case *Join:
		cp := *t
		cp.Left, cp.Right = ch[0], ch[1]
		return &cp
	case *GroupBy:
		cp := *t
		cp.Input = ch[0]
		return &cp
	case *Limit:
		cp := *t
		cp.Input = ch[0]
		return &cp
	case *Union:
		cp := *t
		cp.Left, cp.Right = ch[0], ch[1]
		return &cp
	}
	panic(fmt.Sprintf("logical: unknown RelExpr %T", e))
}

// VisitRel walks the tree depth-first (pre-order), including subquery plans
// inside scalar expressions.
func VisitRel(e RelExpr, f func(RelExpr)) {
	if e == nil {
		return
	}
	f(e)
	for _, s := range Scalars(e) {
		VisitScalar(s, func(sc Scalar) {
			if sub, ok := sc.(*Subquery); ok {
				VisitRel(sub.Plan, f)
			}
		})
	}
	for _, c := range Children(e) {
		VisitRel(c, f)
	}
}

// Scalars returns the scalar expressions attached to the node itself.
func Scalars(e RelExpr) []Scalar {
	switch t := e.(type) {
	case *Select:
		return t.Filters
	case *Project:
		out := make([]Scalar, len(t.Items))
		for i, it := range t.Items {
			out[i] = it.Expr
		}
		return out
	case *Join:
		return t.On
	case *GroupBy:
		var out []Scalar
		for _, a := range t.Aggs {
			if a.Arg != nil {
				out = append(out, a.Arg)
			}
		}
		return out
	case *Values:
		var out []Scalar
		for _, row := range t.Rows {
			out = append(out, row...)
		}
		return out
	}
	return nil
}

// InputCols returns the columns e consumes from below plus free (outer)
// references: the union of column references in its scalars minus its own
// synthesized outputs.
func InputCols(e RelExpr) ColSet {
	var set ColSet
	for _, s := range Scalars(e) {
		set = set.Union(ScalarCols(s))
	}
	if g, ok := e.(*GroupBy); ok {
		for _, c := range g.GroupCols {
			set.Add(c)
		}
	}
	return set
}

// RemapRel rewrites the tree replacing column IDs per the mapping, both in
// scalars and in operator column lists.
func RemapRel(e RelExpr, mapping map[ColumnID]ColumnID) RelExpr {
	if e == nil {
		return nil
	}
	mapID := func(c ColumnID) ColumnID {
		if to, ok := mapping[c]; ok {
			return to
		}
		return c
	}
	ch := Children(e)
	nch := make([]RelExpr, len(ch))
	for i, c := range ch {
		nch[i] = RemapRel(c, mapping)
	}
	switch t := e.(type) {
	case *Scan:
		cp := *t
		cp.Cols = make([]ColumnID, len(t.Cols))
		for i, c := range t.Cols {
			cp.Cols[i] = mapID(c)
		}
		return &cp
	case *Values:
		cp := *t
		cp.Cols = make([]ColumnID, len(t.Cols))
		for i, c := range t.Cols {
			cp.Cols[i] = mapID(c)
		}
		cp.Rows = make([][]Scalar, len(t.Rows))
		for i, row := range t.Rows {
			nrow := make([]Scalar, len(row))
			for j, s := range row {
				nrow[j] = RemapScalar(s, mapping)
			}
			cp.Rows[i] = nrow
		}
		return &cp
	case *Select:
		cp := *t
		cp.Input = nch[0]
		cp.Filters = remapScalars(t.Filters, mapping)
		return &cp
	case *Project:
		cp := *t
		cp.Input = nch[0]
		cp.Items = make([]ProjectItem, len(t.Items))
		for i, it := range t.Items {
			cp.Items[i] = ProjectItem{ID: mapID(it.ID), Expr: RemapScalar(it.Expr, mapping)}
		}
		return &cp
	case *Join:
		cp := *t
		cp.Left, cp.Right = nch[0], nch[1]
		cp.On = remapScalars(t.On, mapping)
		return &cp
	case *GroupBy:
		cp := *t
		cp.Input = nch[0]
		cp.GroupCols = make([]ColumnID, len(t.GroupCols))
		for i, c := range t.GroupCols {
			cp.GroupCols[i] = mapID(c)
		}
		cp.Aggs = make([]AggItem, len(t.Aggs))
		for i, a := range t.Aggs {
			na := a
			na.ID = mapID(a.ID)
			if a.Arg != nil {
				na.Arg = RemapScalar(a.Arg, mapping)
			}
			cp.Aggs[i] = na
		}
		return &cp
	case *Limit:
		cp := *t
		cp.Input = nch[0]
		return &cp
	case *Union:
		cp := *t
		cp.Left, cp.Right = nch[0], nch[1]
		remapIDs := func(ids []ColumnID) []ColumnID {
			out := make([]ColumnID, len(ids))
			for i, c := range ids {
				out[i] = mapID(c)
			}
			return out
		}
		cp.LeftCols = remapIDs(t.LeftCols)
		cp.RightCols = remapIDs(t.RightCols)
		cp.Cols = remapIDs(t.Cols)
		return &cp
	}
	panic(fmt.Sprintf("logical: unknown RelExpr %T", e))
}

func remapScalars(ss []Scalar, mapping map[ColumnID]ColumnID) []Scalar {
	out := make([]Scalar, len(ss))
	for i, s := range ss {
		out[i] = RemapScalar(s, mapping)
	}
	return out
}

// Format renders the tree with indentation for EXPLAIN output.
func Format(e RelExpr, md *Metadata) string {
	var sb strings.Builder
	formatRel(&sb, e, md, 0)
	return sb.String()
}

func formatRel(sb *strings.Builder, e RelExpr, md *Metadata, depth int) {
	indent := strings.Repeat("  ", depth)
	switch t := e.(type) {
	case *Scan:
		fmt.Fprintf(sb, "%sscan %s", indent, t.Table.Name)
		if t.Binding != "" && !strings.EqualFold(t.Binding, t.Table.Name) {
			fmt.Fprintf(sb, " as %s", t.Binding)
		}
		sb.WriteByte('\n')
	case *Values:
		fmt.Fprintf(sb, "%svalues (%d rows)\n", indent, len(t.Rows))
	case *Select:
		fmt.Fprintf(sb, "%sselect %s\n", indent, formatFilters(t.Filters, md))
		formatRel(sb, t.Input, md, depth+1)
	case *Project:
		var items []string
		for _, it := range t.Items {
			items = append(items, fmt.Sprintf("%s=%s", md.QualifiedName(it.ID), FormatScalar(it.Expr, md)))
		}
		fmt.Fprintf(sb, "%sproject %s\n", indent, strings.Join(items, ", "))
		formatRel(sb, t.Input, md, depth+1)
	case *Join:
		fmt.Fprintf(sb, "%s%s %s\n", indent, t.Kind, formatFilters(t.On, md))
		formatRel(sb, t.Left, md, depth+1)
		formatRel(sb, t.Right, md, depth+1)
	case *GroupBy:
		var groups []string
		for _, c := range t.GroupCols {
			groups = append(groups, md.QualifiedName(c))
		}
		var aggs []string
		for _, a := range t.Aggs {
			arg := "*"
			if a.Arg != nil {
				arg = FormatScalar(a.Arg, md)
			}
			d := ""
			if a.Distinct {
				d = "distinct "
			}
			aggs = append(aggs, fmt.Sprintf("%s=%s(%s%s)", md.QualifiedName(a.ID), a.Fn, d, arg))
		}
		label := "group-by"
		if len(t.Aggs) == 0 {
			label = "distinct"
		}
		fmt.Fprintf(sb, "%s%s [%s] %s\n", indent, label, strings.Join(groups, ","), strings.Join(aggs, ", "))
		formatRel(sb, t.Input, md, depth+1)
	case *Limit:
		fmt.Fprintf(sb, "%slimit %d\n", indent, t.N)
		formatRel(sb, t.Input, md, depth+1)
	case *Union:
		fmt.Fprintf(sb, "%sunion-all\n", indent)
		formatRel(sb, t.Left, md, depth+1)
		formatRel(sb, t.Right, md, depth+1)
	default:
		fmt.Fprintf(sb, "%s%T\n", indent, e)
	}
}

func formatFilters(fs []Scalar, md *Metadata) string {
	if len(fs) == 0 {
		return ""
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = FormatScalar(f, md)
	}
	return "[" + strings.Join(parts, " AND ") + "]"
}

// HasSubqueryRel reports whether any scalar anywhere in the tree contains a
// Subquery node.
func HasSubqueryRel(e RelExpr) bool {
	found := false
	VisitRel(e, func(n RelExpr) {
		for _, s := range Scalars(n) {
			if HasSubquery(s) {
				found = true
			}
		}
	})
	return found
}

// Union combines two inputs with UNION ALL semantics (set-union is layered
// as a DISTINCT GroupBy above). Cols are the fresh output columns;
// LeftCols/RightCols give each child's columns in output order.
type Union struct {
	Left, Right         RelExpr
	LeftCols, RightCols []ColumnID
	Cols                []ColumnID
}

func (*Union) rel() {}

// OutputCols returns the union's output columns.
func (u *Union) OutputCols() ColSet {
	var set ColSet
	for _, c := range u.Cols {
		set.Add(c)
	}
	return set
}
