package logical

import (
	"fmt"
	"strings"

	"repro/internal/datum"
)

// Scalar is a scalar expression over query columns.
type Scalar interface {
	scalar()
	String() string
}

// Col references a query column by ID.
type Col struct{ ID ColumnID }

func (*Col) scalar()          {}
func (c *Col) String() string { return fmt.Sprintf("@%d", int(c.ID)) }

// Const is a literal value. Param, when non-zero, tags the constant as the
// binding of statement parameter $Param: Val then holds the value the plan
// was built (probed) at, and plan-cache execution substitutes fresh bindings
// for it (physical.BindParams). Param-tagged constants are never folded into
// derived constants — EvalConst refuses scalars containing them — so the tag
// survives normalization and optimization into the physical plan.
type Const struct {
	Val   datum.D
	Param int
}

func (*Const) scalar() {}
func (c *Const) String() string {
	if c.Param != 0 {
		// The tag is part of the constant's identity: memo fingerprints and
		// canonical forms must never conflate a parameter binding with an
		// equal-valued plain constant.
		return fmt.Sprintf("$%d", c.Param)
	}
	return c.Val.String()
}

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
	CmpLike
)

func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "<>"
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	case CmpLike:
		return "LIKE"
	}
	return "?"
}

// Commute returns the operator with operands swapped (a op b == b op' a).
func (op CmpOp) Commute() CmpOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	}
	return op
}

// Cmp is a comparison producing a (possibly NULL) boolean.
type Cmp struct {
	Op   CmpOp
	L, R Scalar
}

func (*Cmp) scalar()          {}
func (c *Cmp) String() string { return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R) }

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	ArithAdd ArithOp = iota
	ArithSub
	ArithMul
	ArithDiv
	ArithMod
)

func (op ArithOp) String() string {
	return [...]string{"+", "-", "*", "/", "%"}[op]
}

// Arith is an arithmetic expression.
type Arith struct {
	Op   ArithOp
	L, R Scalar
}

func (*Arith) scalar()          {}
func (a *Arith) String() string { return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R) }

// And is a conjunction (three-valued).
type And struct{ L, R Scalar }

func (*And) scalar()          {}
func (a *And) String() string { return fmt.Sprintf("(%s AND %s)", a.L, a.R) }

// Or is a disjunction (three-valued).
type Or struct{ L, R Scalar }

func (*Or) scalar()          {}
func (o *Or) String() string { return fmt.Sprintf("(%s OR %s)", o.L, o.R) }

// Not is a negation (three-valued).
type Not struct{ E Scalar }

func (*Not) scalar()          {}
func (n *Not) String() string { return fmt.Sprintf("NOT %s", n.E) }

// IsNull tests for NULL; it never returns NULL itself.
type IsNull struct {
	E       Scalar
	Negated bool
}

func (*IsNull) scalar() {}
func (e *IsNull) String() string {
	if e.Negated {
		return fmt.Sprintf("(%s IS NOT NULL)", e.E)
	}
	return fmt.Sprintf("(%s IS NULL)", e.E)
}

// InList tests membership in a literal list.
type InList struct {
	E       Scalar
	List    []Scalar
	Negated bool
}

func (*InList) scalar() {}
func (e *InList) String() string {
	var items []string
	for _, it := range e.List {
		items = append(items, it.String())
	}
	neg := ""
	if e.Negated {
		neg = "NOT "
	}
	return fmt.Sprintf("(%s %sIN (%s))", e.E, neg, strings.Join(items, ", "))
}

// SubqueryMode distinguishes how a subquery is used in a scalar context.
type SubqueryMode uint8

// Subquery modes.
const (
	SubExists SubqueryMode = iota // EXISTS (sub)
	SubIn                         // e IN (sub)
	SubScalar                     // (sub) as a value; must return <= 1 row
)

func (m SubqueryMode) String() string {
	switch m {
	case SubExists:
		return "EXISTS"
	case SubIn:
		return "IN"
	case SubScalar:
		return "SCALAR"
	}
	return "?"
}

// Subquery embeds a relational subplan in a scalar expression. Correlated
// column references appear as Col nodes whose IDs are produced outside Plan
// (the OuterCols). Before optimization the unnesting rewrites of §4.2 remove
// Subquery nodes where possible; the executor can also evaluate them directly
// with tuple-iteration semantics — the baseline the paper's unnesting work
// improves on.
type Subquery struct {
	Mode SubqueryMode
	// Scalar is the left operand for SubIn; nil otherwise.
	Scalar Scalar
	// Plan is the subquery's relational plan.
	Plan RelExpr
	// OutCol is the column of Plan holding the compared/returned value for
	// SubIn/SubScalar (zero when the subquery produces no columns).
	OutCol ColumnID
	// OuterCols are the correlated columns referenced by Plan but produced
	// by the enclosing query.
	OuterCols ColSet
	Negated   bool
}

func (*Subquery) scalar() {}
func (s *Subquery) String() string {
	neg := ""
	if s.Negated {
		neg = "NOT "
	}
	corr := ""
	if !s.OuterCols.Empty() {
		corr = " corr=" + s.OuterCols.String()
	}
	if s.Mode == SubIn {
		return fmt.Sprintf("(%s %sIN <subquery%s>)", s.Scalar, neg, corr)
	}
	return fmt.Sprintf("%s%s <subquery%s>", neg, s.Mode, corr)
}

// UDPRef is a user-defined predicate applied to columns (§7.2). Its cost and
// selectivity are declared, not derived; EvalFn supplies executable behaviour
// for the simulation.
type UDPRef struct {
	Name         string
	Args         []Scalar
	PerTupleCost float64
	Selectivity  float64
	EvalFn       func([]datum.D) bool
}

func (*UDPRef) scalar() {}
func (u *UDPRef) String() string {
	var args []string
	for _, a := range u.Args {
		args = append(args, a.String())
	}
	return fmt.Sprintf("%s(%s)[cost=%.1f,sel=%.2f]", u.Name, strings.Join(args, ","), u.PerTupleCost, u.Selectivity)
}

// --- Scalar utilities ---

// ScalarCols returns the set of column IDs referenced by s, including
// correlated references inside subqueries.
func ScalarCols(s Scalar) ColSet {
	var set ColSet
	VisitScalar(s, func(sc Scalar) {
		switch t := sc.(type) {
		case *Col:
			set.Add(t.ID)
		case *Subquery:
			set = set.Union(t.OuterCols)
		}
	})
	return set
}

// VisitScalar walks s depth-first, calling f on every node. It does not
// descend into subquery plans (their outer references are summarized by
// OuterCols).
func VisitScalar(s Scalar, f func(Scalar)) {
	if s == nil {
		return
	}
	f(s)
	switch t := s.(type) {
	case *Cmp:
		VisitScalar(t.L, f)
		VisitScalar(t.R, f)
	case *Arith:
		VisitScalar(t.L, f)
		VisitScalar(t.R, f)
	case *And:
		VisitScalar(t.L, f)
		VisitScalar(t.R, f)
	case *Or:
		VisitScalar(t.L, f)
		VisitScalar(t.R, f)
	case *Not:
		VisitScalar(t.E, f)
	case *IsNull:
		VisitScalar(t.E, f)
	case *InList:
		VisitScalar(t.E, f)
		for _, e := range t.List {
			VisitScalar(e, f)
		}
	case *Subquery:
		if t.Scalar != nil {
			VisitScalar(t.Scalar, f)
		}
	case *UDPRef:
		for _, a := range t.Args {
			VisitScalar(a, f)
		}
	}
}

// RewriteScalar rebuilds s bottom-up, replacing each node by f(node). f is
// applied to the node after its children have been rewritten.
func RewriteScalar(s Scalar, f func(Scalar) Scalar) Scalar {
	if s == nil {
		return nil
	}
	switch t := s.(type) {
	case *Cmp:
		s = &Cmp{Op: t.Op, L: RewriteScalar(t.L, f), R: RewriteScalar(t.R, f)}
	case *Arith:
		s = &Arith{Op: t.Op, L: RewriteScalar(t.L, f), R: RewriteScalar(t.R, f)}
	case *And:
		s = &And{L: RewriteScalar(t.L, f), R: RewriteScalar(t.R, f)}
	case *Or:
		s = &Or{L: RewriteScalar(t.L, f), R: RewriteScalar(t.R, f)}
	case *Not:
		s = &Not{E: RewriteScalar(t.E, f)}
	case *IsNull:
		s = &IsNull{E: RewriteScalar(t.E, f), Negated: t.Negated}
	case *InList:
		list := make([]Scalar, len(t.List))
		for i, e := range t.List {
			list[i] = RewriteScalar(e, f)
		}
		s = &InList{E: RewriteScalar(t.E, f), List: list, Negated: t.Negated}
	case *Subquery:
		cp := *t
		if t.Scalar != nil {
			cp.Scalar = RewriteScalar(t.Scalar, f)
		}
		s = &cp
	case *UDPRef:
		cp := *t
		cp.Args = make([]Scalar, len(t.Args))
		for i, a := range t.Args {
			cp.Args[i] = RewriteScalar(a, f)
		}
		s = &cp
	}
	return f(s)
}

// RemapScalar replaces column references according to the mapping (IDs not in
// the map are unchanged).
func RemapScalar(s Scalar, mapping map[ColumnID]ColumnID) Scalar {
	return RewriteScalar(s, func(sc Scalar) Scalar {
		if c, ok := sc.(*Col); ok {
			if to, ok := mapping[c.ID]; ok {
				return &Col{ID: to}
			}
		}
		if sub, ok := sc.(*Subquery); ok {
			cp := *sub
			var outer ColSet
			sub.OuterCols.ForEach(func(c ColumnID) {
				if to, ok := mapping[c]; ok {
					outer.Add(to)
				} else {
					outer.Add(c)
				}
			})
			cp.OuterCols = outer
			cp.Plan = RemapRel(sub.Plan, mapping)
			if to, ok := mapping[sub.OutCol]; ok {
				cp.OutCol = to
			}
			return &cp
		}
		return sc
	})
}

// SplitConjunction flattens nested ANDs into a list of conjuncts.
func SplitConjunction(s Scalar) []Scalar {
	if s == nil {
		return nil
	}
	if a, ok := s.(*And); ok {
		return append(SplitConjunction(a.L), SplitConjunction(a.R)...)
	}
	return []Scalar{s}
}

// Conjoin combines conjuncts with AND; it returns nil for an empty list.
func Conjoin(conjuncts []Scalar) Scalar {
	var out Scalar
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = &And{L: out, R: c}
		}
	}
	return out
}

// HasSubquery reports whether s contains any Subquery node.
func HasSubquery(s Scalar) bool {
	found := false
	VisitScalar(s, func(sc Scalar) {
		if _, ok := sc.(*Subquery); ok {
			found = true
		}
	})
	return found
}

// FormatScalar renders s with human-readable column names from md.
func FormatScalar(s Scalar, md *Metadata) string {
	if s == nil {
		return ""
	}
	str := s.String()
	// Replace @N with qualified names, longest IDs first to avoid @1 eating @12.
	for id := md.NumColumns(); id >= 1; id-- {
		str = strings.ReplaceAll(str, fmt.Sprintf("@%d", id), md.QualifiedName(ColumnID(id)))
	}
	return str
}
