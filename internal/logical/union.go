package logical

import (
	"fmt"

	"repro/internal/datum"
	"repro/internal/sql"
)

// buildUnion builds a chain of UNION [ALL] arms. Each arm is built
// independently (fresh column IDs); the union allocates fresh output columns
// named after the first arm. ORDER BY on a union may reference output
// columns by name only, per standard SQL.
func (b *Builder) buildUnion(sel *sql.SelectStmt, parent *scope) (*selectOut, error) {
	first := *sel
	first.Union = nil
	first.OrderBy = nil
	first.Limit = nil
	head, err := b.buildSelect(&first, parent)
	if err != nil {
		return nil, err
	}
	outs := []*selectOut{head}
	for _, arm := range sel.Union {
		if len(arm.Stmt.OrderBy) > 0 || arm.Stmt.Limit != nil {
			return nil, fmt.Errorf("logical: ORDER BY/LIMIT must follow the last UNION arm")
		}
		o, err := b.buildSelect(arm.Stmt, parent)
		if err != nil {
			return nil, err
		}
		if len(o.resultCols) != len(head.resultCols) {
			return nil, fmt.Errorf("logical: UNION arms have %d vs %d columns",
				len(head.resultCols), len(o.resultCols))
		}
		outs = append(outs, o)
	}

	// Fresh output columns, named and typed after the first arm.
	unionCols := make([]ColumnID, len(head.resultCols))
	for i, id := range head.resultCols {
		cm := b.md.Column(id)
		unionCols[i] = b.md.AddColumn(ColumnMeta{Name: head.resultNames[i], Kind: cm.Kind})
	}

	acc := head.rel
	accCols := head.resultCols
	for k, arm := range sel.Union {
		right := outs[k+1]
		u := RelExpr(&Union{
			Left: acc, Right: right.rel,
			LeftCols: accCols, RightCols: right.resultCols,
			Cols: unionCols,
		})
		if !arm.All {
			// UNION (distinct) deduplicates the entire result so far.
			u = &GroupBy{Input: u, GroupCols: append([]ColumnID{}, unionCols...)}
		}
		acc = u
		accCols = unionCols
	}

	out := &selectOut{rel: acc, resultCols: unionCols, resultNames: head.resultNames}
	// ORDER BY: names of the union's output columns only.
	for _, oi := range sel.OrderBy {
		cr, ok := oi.Expr.(*sql.ColRef)
		if !ok || cr.Table != "" {
			return nil, fmt.Errorf("logical: ORDER BY on a UNION must name an output column")
		}
		found := ColumnID(0)
		for i, n := range head.resultNames {
			if equalFold(n, cr.Name) {
				found = unionCols[i]
				break
			}
		}
		if found == 0 {
			return nil, fmt.Errorf("logical: unknown ORDER BY column %q in UNION", cr.Name)
		}
		out.ordering = append(out.ordering, OrderSpec{Col: found, Desc: oi.Desc})
	}
	if sel.Limit != nil {
		out.rel = &Limit{Input: out.rel, N: *sel.Limit}
	}
	return out, nil
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// expandGroupingSets lowers GROUP BY CUBE/ROLLUP into a UNION ALL of plain
// group-bys, replacing the grouping columns excluded from each set with NULL
// in the select list, HAVING and ORDER BY (outside aggregate arguments).
func expandGroupingSets(sel *sql.SelectStmt) (*sql.SelectStmt, error) {
	k := len(sel.GroupBy)
	if k == 0 {
		return nil, fmt.Errorf("logical: CUBE/ROLLUP requires grouping columns")
	}
	if sel.Grouping == sql.GroupCube && k > 8 {
		return nil, fmt.Errorf("logical: CUBE over %d columns expands to %d sets; max 8 columns", k, 1<<uint(k))
	}
	var sets [][]sql.Expr
	switch sel.Grouping {
	case sql.GroupCube:
		for mask := (1 << uint(k)) - 1; mask >= 0; mask-- {
			var set []sql.Expr
			for i := 0; i < k; i++ {
				if mask&(1<<uint(i)) != 0 {
					set = append(set, sel.GroupBy[i])
				}
			}
			sets = append(sets, set)
		}
	case sql.GroupRollup:
		for n := k; n >= 0; n-- {
			sets = append(sets, append([]sql.Expr{}, sel.GroupBy[:n]...))
		}
	default:
		return nil, fmt.Errorf("logical: unexpected grouping mode")
	}

	arms := make([]*sql.SelectStmt, len(sets))
	for si, set := range sets {
		included := map[string]bool{}
		for _, e := range set {
			included[e.String()] = true
		}
		arm := *sel
		arm.Grouping = sql.GroupPlain
		arm.GroupBy = set
		arm.Union = nil
		arm.OrderBy = nil
		arm.Limit = nil
		arm.Select = make([]sql.SelectItem, len(sel.Select))
		for i, it := range sel.Select {
			ni := it
			if it.Expr != nil {
				ni.Expr = nullOutExcluded(it.Expr, sel.GroupBy, included)
				if ni.Alias == "" {
					ni.Alias = displayName(it.Expr)
				}
			}
			arm.Select[i] = ni
		}
		if sel.Having != nil {
			arm.Having = nullOutExcluded(sel.Having, sel.GroupBy, included)
		}
		arms[si] = &arm
	}
	top := arms[0]
	for _, arm := range arms[1:] {
		top.Union = append(top.Union, sql.UnionArm{All: true, Stmt: arm})
	}
	top.OrderBy = sel.OrderBy
	top.Limit = sel.Limit
	return top, nil
}

// nullOutExcluded replaces references to grouping expressions that are not in
// the current grouping set with NULL, without descending into aggregate
// arguments.
func nullOutExcluded(e sql.Expr, groupBy []sql.Expr, included map[string]bool) sql.Expr {
	excluded := map[string]bool{}
	for _, g := range groupBy {
		if !included[g.String()] {
			excluded[g.String()] = true
		}
	}
	var walk func(e sql.Expr) sql.Expr
	walk = func(e sql.Expr) sql.Expr {
		if e == nil {
			return nil
		}
		if excluded[e.String()] {
			return &sql.Lit{Val: datum.Null}
		}
		switch t := e.(type) {
		case *sql.FuncCall:
			if t.IsAggregate() {
				return t // aggregate args keep their references
			}
			cp := *t
			cp.Args = make([]sql.Expr, len(t.Args))
			for i, a := range t.Args {
				cp.Args[i] = walk(a)
			}
			return &cp
		case *sql.BinExpr:
			return &sql.BinExpr{Op: t.Op, L: walk(t.L), R: walk(t.R)}
		case *sql.NotExpr:
			return &sql.NotExpr{E: walk(t.E)}
		case *sql.NegExpr:
			return &sql.NegExpr{E: walk(t.E)}
		case *sql.IsNullExpr:
			return &sql.IsNullExpr{E: walk(t.E), Negated: t.Negated}
		case *sql.BetweenExpr:
			return &sql.BetweenExpr{E: walk(t.E), Lo: walk(t.Lo), Hi: walk(t.Hi), Negated: t.Negated}
		}
		return e
	}
	return walk(e)
}
