package matview

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/sql"
	"repro/internal/storage"
)

// Materialize computes a view's result and stores it as a backing table,
// registering the materialized view in the catalog. The backing table is
// named like the view and carries the view's result column names and kinds.
func Materialize(cat *catalog.Catalog, store *storage.Store, name, sqlText string) (*catalog.MaterializedView, error) {
	sel, err := sql.ParseSelect(sqlText)
	if err != nil {
		return nil, fmt.Errorf("matview %s: %w", name, err)
	}
	q, err := logical.NewBuilder(cat).Build(sel)
	if err != nil {
		return nil, fmt.Errorf("matview %s: %w", name, err)
	}
	logical.NormalizeQuery(q, logical.DefaultNormalize())
	ctx := exec.NewCtx(store, q.Meta)
	res, err := ctx.RunQuery(q)
	if err != nil {
		return nil, fmt.Errorf("matview %s: %w", name, err)
	}
	def := &catalog.Table{Name: name}
	for i, id := range q.ResultCols {
		def.Cols = append(def.Cols, catalog.Column{
			Name: q.ColNames[i],
			Kind: q.Meta.Column(id).Kind,
		})
	}
	// Computed kinds can drift from declared ones (e.g. SUM over ints yields
	// INTEGER where metadata guessed FLOAT); trust the data.
	for i := range def.Cols {
		for _, r := range res.Rows {
			if !r[i].IsNull() {
				def.Cols[i].Kind = r[i].Kind()
				break
			}
		}
	}
	if err := cat.AddTable(def); err != nil {
		return nil, err
	}
	tab, err := store.CreateTable(def)
	if err != nil {
		return nil, err
	}
	for _, r := range res.Rows {
		if err := tab.Insert(r); err != nil {
			return nil, err
		}
	}
	mv := &catalog.MaterializedView{Name: name, SQL: sqlText, Table: def}
	if err := cat.AddMaterializedView(mv); err != nil {
		return nil, err
	}
	return mv, nil
}
