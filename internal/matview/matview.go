// Package matview implements answering queries using materialized views
// (§7.3 of the paper). Matching is restricted — as the literature the paper
// cites is — to single-block SPJ and SPJ+GROUP BY queries and views without
// self-joins: a view V is usable for query Q when V's tables and predicates
// are a subset of Q's, every column Q still needs is available from V's
// output, and (for aggregate views) Q's grouping is equal to or coarser than
// V's with re-aggregatable functions. The rewrite substitutes the view's
// backing table for the covered part of the query; the optimizer then costs
// original and rewritten forms together.
package matview

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/sql"
)

// blockInfo is the canonical single-block decomposition of a query: leaf
// tables keyed by lower-cased table name, predicates keyed by a canonical
// (binding-independent) rendering, and the optional top aggregation.
type blockInfo struct {
	query *logical.Query
	// scans by canonical table name (self-joins are rejected).
	scans map[string]*logical.Scan
	// preds: canonical string → original scalar.
	preds map[string]logical.Scalar
	// group is the top GroupBy, if the block aggregates.
	group *logical.GroupBy
	// project is the top projection (above group, if any).
	project *logical.Project
	// canonical column naming: ColumnID → "table.col".
	colName map[logical.ColumnID]string
	// blockRoot is the node the join block hangs from.
	blockRoot logical.RelExpr
}

// analyze decomposes a built, normalized query into blockInfo; ok is false
// when the query does not fit the supported shape.
func analyze(q *logical.Query) (*blockInfo, bool) {
	info := &blockInfo{
		query:   q,
		scans:   map[string]*logical.Scan{},
		preds:   map[string]logical.Scalar{},
		colName: map[logical.ColumnID]string{},
	}
	e := q.Root
	if lim, ok := e.(*logical.Limit); ok {
		e = lim.Input // limit handled above the rewrite
		return nil, false
	}
	if p, ok := e.(*logical.Project); ok {
		info.project = p
		e = p.Input
	}
	if g, ok := e.(*logical.GroupBy); ok {
		info.group = g
		e = g.Input
	}
	info.blockRoot = e
	leaves, preds, ok := logical.ExtractJoinBlock(e)
	if !ok {
		return nil, false
	}
	for _, leaf := range leaves {
		scan, isScan := leaf.(*logical.Scan)
		if !isScan {
			return nil, false
		}
		key := strings.ToLower(scan.Table.Name)
		if _, dup := info.scans[key]; dup {
			return nil, false // self-join: canonical naming would be ambiguous
		}
		info.scans[key] = scan
		for _, id := range scan.Cols {
			cm := q.Meta.Column(id)
			info.colName[id] = strings.ToLower(scan.Table.Name + "." + cm.Name)
		}
	}
	for _, p := range preds {
		if logical.HasSubquery(p) {
			return nil, false
		}
		key, ok := canonicalPred(p, info.colName)
		if !ok {
			return nil, false
		}
		info.preds[key] = p
	}
	return info, true
}

// canonicalPred renders a predicate with table-qualified column names,
// normalizing commutative comparisons so "a = b" and "b = a" match.
func canonicalPred(p logical.Scalar, names map[logical.ColumnID]string) (string, bool) {
	ok := true
	var render func(s logical.Scalar) string
	render = func(s logical.Scalar) string {
		switch t := s.(type) {
		case *logical.Col:
			n, found := names[t.ID]
			if !found {
				ok = false
				return "?"
			}
			return n
		case *logical.Const:
			if t.Param != 0 {
				// A parameter's probe value must not match a view constant:
				// the match would only hold for this one binding.
				ok = false
				return "?"
			}
			return t.Val.String()
		case *logical.Cmp:
			l, r := render(t.L), render(t.R)
			op := t.Op
			if op == logical.CmpEq || op == logical.CmpNe {
				if l > r {
					l, r = r, l
				}
			} else if l > r && t.Op != logical.CmpLike {
				l, r = r, l
				op = t.Op.Commute()
			}
			return fmt.Sprintf("(%s %s %s)", l, op, r)
		case *logical.And:
			return fmt.Sprintf("(%s AND %s)", render(t.L), render(t.R))
		case *logical.Or:
			return fmt.Sprintf("(%s OR %s)", render(t.L), render(t.R))
		case *logical.Not:
			return "NOT " + render(t.E)
		case *logical.IsNull:
			if t.Negated {
				return render(t.E) + " IS NOT NULL"
			}
			return render(t.E) + " IS NULL"
		case *logical.Arith:
			return fmt.Sprintf("(%s %s %s)", render(t.L), t.Op, render(t.R))
		case *logical.InList:
			var items []string
			for _, e := range t.List {
				items = append(items, render(e))
			}
			neg := ""
			if t.Negated {
				neg = "NOT "
			}
			return fmt.Sprintf("(%s %sIN (%s))", render(t.E), neg, strings.Join(items, ","))
		default:
			ok = false
			return "?"
		}
	}
	s := render(p)
	return s, ok
}

// Rewritten is one alternative query form using a materialized view.
type Rewritten struct {
	MV    *catalog.MaterializedView
	Query *logical.Query
}

// RewriteWithViews returns every safe rewriting of the query using the
// catalog's materialized views. The input query must be built and normalized;
// it is not modified.
func RewriteWithViews(q *logical.Query, cat *catalog.Catalog) []Rewritten {
	qInfo, ok := analyze(q)
	if !ok {
		return nil
	}
	var out []Rewritten
	for _, mv := range cat.MaterializedViews() {
		if mv.Table == nil {
			continue
		}
		vSel, err := sql.ParseSelect(mv.SQL)
		if err != nil {
			continue
		}
		vq, err := logical.NewBuilder(cat).Build(vSel)
		if err != nil {
			continue
		}
		logical.NormalizeQuery(vq, logical.DefaultNormalize())
		vInfo, ok := analyze(vq)
		if !ok {
			continue
		}
		if rw, ok := tryRewrite(qInfo, vInfo, mv); ok {
			out = append(out, Rewritten{MV: mv, Query: rw})
		}
	}
	return out
}

// viewOutput maps canonical expressions the view exposes to the backing
// table ordinal: plain columns "t.c", and (for aggregate views) group
// columns and aggregate expressions like "sum(t.c)".
func viewOutput(v *blockInfo) (map[string]int, bool) {
	out := map[string]int{}
	// An identity projection may have been normalized away; the query's
	// declared result columns define the backing table's layout either way.
	items := make([]logical.ProjectItem, 0, len(v.query.ResultCols))
	if v.project != nil {
		items = v.project.Items
	} else {
		for _, id := range v.query.ResultCols {
			items = append(items, logical.ProjectItem{ID: id, Expr: &logical.Col{ID: id}})
		}
	}
	for i, it := range items {
		switch e := it.Expr.(type) {
		case *logical.Col:
			if v.group != nil {
				// Either a group column or an aggregate output.
				if name, ok := v.colName[e.ID]; ok {
					out[name] = i
					continue
				}
				if agg := findAgg(v.group, e.ID); agg != nil {
					key, ok := aggKey(agg, v.colName)
					if !ok {
						return nil, false
					}
					out[key] = i
					continue
				}
				return nil, false
			}
			name, ok := v.colName[e.ID]
			if !ok {
				return nil, false
			}
			out[name] = i
		default:
			return nil, false
		}
	}
	return out, true
}

func findAgg(g *logical.GroupBy, id logical.ColumnID) *logical.AggItem {
	for i := range g.Aggs {
		if g.Aggs[i].ID == id {
			return &g.Aggs[i]
		}
	}
	return nil
}

func aggKey(a *logical.AggItem, names map[logical.ColumnID]string) (string, bool) {
	arg := "*"
	if a.Arg != nil {
		c, ok := a.Arg.(*logical.Col)
		if !ok {
			return "", false
		}
		n, ok := names[c.ID]
		if !ok {
			return "", false
		}
		arg = n
	}
	d := ""
	if a.Distinct {
		d = "distinct "
	}
	return fmt.Sprintf("%s(%s%s)", a.Fn, d, arg), true
}
