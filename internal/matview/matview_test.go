package matview

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/workload"
)

func buildQuery(t *testing.T, db *workload.DB, q string) *logical.Query {
	t.Helper()
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	query, err := logical.NewBuilder(db.Cat).Build(sel)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	logical.NormalizeQuery(query, logical.DefaultNormalize())
	return query
}

func runRows(t *testing.T, db *workload.DB, q *logical.Query) []string {
	t.Helper()
	ctx := exec.NewCtx(db.Store, q.Meta)
	res, err := ctx.RunQuery(q)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, logical.Format(q.Root, q.Meta))
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		var sb strings.Builder
		for j, d := range r {
			if j > 0 {
				sb.WriteString("|")
			}
			if !d.IsNull() && d.Kind() == datum.KindFloat {
				fmt.Fprintf(&sb, "%.4g", d.Float())
			} else {
				sb.WriteString(d.String())
			}
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}

func TestMaterializeAndMatchSPJ(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 800, Depts: 40})
	db.Analyze(stats.AnalyzeOptions{})
	mv, err := Materialize(db.Cat, db.Store, "denver_emps",
		"SELECT e.eid AS eid, e.name AS name, e.sal AS sal, e.did AS did FROM Emp e, Dept d WHERE e.did = d.did AND d.loc = 'Denver'")
	if err != nil {
		t.Fatal(err)
	}
	if mv.Table.Stats == nil {
		mvTab, _ := db.Store.Table("denver_emps")
		stats.Analyze(mvTab, stats.AnalyzeOptions{})
	}

	// A query subsuming the view's predicates.
	qs := "SELECT e.name FROM Emp e, Dept d WHERE e.did = d.did AND d.loc = 'Denver' AND e.sal > 10000"
	q := buildQuery(t, db, qs)
	rewrites := RewriteWithViews(q, db.Cat)
	if len(rewrites) != 1 {
		t.Fatalf("expected 1 rewrite, got %d", len(rewrites))
	}
	want := runRows(t, db, buildQuery(t, db, qs))
	got := runRows(t, db, rewrites[0].Query)
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("rewritten query differs\ngot:  %.300v\nwant: %.300v\n%s",
			got, want, logical.Format(rewrites[0].Query.Root, rewrites[0].Query.Meta))
	}
	// The rewrite must actually scan the backing table and not Dept.
	usesMV, usesDept := false, false
	logical.VisitRel(rewrites[0].Query.Root, func(e logical.RelExpr) {
		if s, ok := e.(*logical.Scan); ok {
			switch strings.ToLower(s.Table.Name) {
			case "denver_emps":
				usesMV = true
			case "dept":
				usesDept = true
			}
		}
	})
	if !usesMV || usesDept {
		t.Errorf("rewrite should replace Emp ⋈ Dept with the view: mv=%v dept=%v", usesMV, usesDept)
	}
}

func TestNoMatchWhenPredicatesNotContained(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 300, Depts: 20})
	if _, err := Materialize(db.Cat, db.Store, "rich_emps",
		"SELECT e.eid AS eid, e.did AS did FROM Emp e WHERE e.sal > 15000"); err != nil {
		t.Fatal(err)
	}
	// Query wants MORE rows than the view holds: no rewrite.
	q := buildQuery(t, db, "SELECT e.eid FROM Emp e WHERE e.sal > 1000")
	if got := RewriteWithViews(q, db.Cat); len(got) != 0 {
		t.Errorf("view with stronger predicate must not match, got %d rewrites", len(got))
	}
}

func TestNoMatchWhenColumnMissing(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 300, Depts: 20})
	if _, err := Materialize(db.Cat, db.Store, "emp_ids",
		"SELECT e.eid AS eid FROM Emp e WHERE e.sal > 100"); err != nil {
		t.Fatal(err)
	}
	// Query needs e.name, which the view does not expose.
	q := buildQuery(t, db, "SELECT e.name FROM Emp e WHERE e.sal > 100")
	if got := RewriteWithViews(q, db.Cat); len(got) != 0 {
		t.Errorf("view missing a needed column must not match, got %d", len(got))
	}
}

func TestAggregateExactMatch(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 600, Depts: 30})
	if _, err := Materialize(db.Cat, db.Store, "dept_stats",
		"SELECT e.did AS did, COUNT(*) AS cnt, SUM(e.sal) AS total FROM Emp e GROUP BY e.did"); err != nil {
		t.Fatal(err)
	}
	qs := "SELECT e.did, COUNT(*), SUM(e.sal) FROM Emp e GROUP BY e.did"
	q := buildQuery(t, db, qs)
	rewrites := RewriteWithViews(q, db.Cat)
	if len(rewrites) != 1 {
		t.Fatalf("expected exact aggregate match, got %d", len(rewrites))
	}
	want := runRows(t, db, buildQuery(t, db, qs))
	got := runRows(t, db, rewrites[0].Query)
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("aggregate rewrite differs\ngot:  %.300v\nwant: %.300v", got, want)
	}
	// Exact match must not re-aggregate.
	hasGB := false
	logical.VisitRel(rewrites[0].Query.Root, func(e logical.RelExpr) {
		if _, ok := e.(*logical.GroupBy); ok {
			hasGB = true
		}
	})
	if hasGB {
		t.Error("exact aggregate match should read the view directly")
	}
}

func TestAggregateRollup(t *testing.T) {
	db := workload.Star(workload.StarConfig{FactRows: 3000, DimRows: []int{30}, Seed: 3})
	if _, err := Materialize(db.Cat, db.Store, "sales_by_k1_qty",
		"SELECT s.k1 AS k1, s.qty AS qty, COUNT(*) AS cnt, SUM(s.amount) AS amt FROM sales s GROUP BY s.k1, s.qty"); err != nil {
		t.Fatal(err)
	}
	// Coarser grouping: roll the view up.
	qs := "SELECT s.k1, COUNT(*), SUM(s.amount) FROM sales s GROUP BY s.k1"
	q := buildQuery(t, db, qs)
	rewrites := RewriteWithViews(q, db.Cat)
	if len(rewrites) != 1 {
		t.Fatalf("expected rollup match, got %d", len(rewrites))
	}
	want := runRows(t, db, buildQuery(t, db, qs))
	got := runRows(t, db, rewrites[0].Query)
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatalf("rollup rewrite differs\ngot:  %.200v\nwant: %.200v\n%s",
			got, want, logical.Format(rewrites[0].Query.Root, rewrites[0].Query.Meta))
	}
}

func TestAggregateRollupRejectsAvg(t *testing.T) {
	db := workload.Star(workload.StarConfig{FactRows: 1000, DimRows: []int{10}, Seed: 5})
	if _, err := Materialize(db.Cat, db.Store, "avg_view",
		"SELECT s.k1 AS k1, s.qty AS qty, AVG(s.amount) AS a FROM sales s GROUP BY s.k1, s.qty"); err != nil {
		t.Fatal(err)
	}
	q := buildQuery(t, db, "SELECT s.k1, AVG(s.amount) FROM sales s GROUP BY s.k1")
	if got := RewriteWithViews(q, db.Cat); len(got) != 0 {
		t.Errorf("AVG cannot roll up, got %d rewrites", len(got))
	}
}

func TestSelfJoinRejected(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 100, Depts: 10})
	if _, err := Materialize(db.Cat, db.Store, "emp_all",
		"SELECT e.eid AS eid, e.did AS did FROM Emp e"); err != nil {
		t.Fatal(err)
	}
	q := buildQuery(t, db, "SELECT e1.eid FROM Emp e1, Emp e2 WHERE e1.did = e2.did")
	if got := RewriteWithViews(q, db.Cat); len(got) != 0 {
		t.Errorf("self-join queries are out of scope, got %d", len(got))
	}
}

func TestExtraPredOnViewOutput(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 500, Depts: 25})
	if _, err := Materialize(db.Cat, db.Store, "emp_slim",
		"SELECT e.eid AS eid, e.sal AS sal, e.did AS did FROM Emp e WHERE e.age < 40"); err != nil {
		t.Fatal(err)
	}
	qs := "SELECT e.eid FROM Emp e WHERE e.age < 40 AND e.sal > 12000"
	q := buildQuery(t, db, qs)
	rewrites := RewriteWithViews(q, db.Cat)
	if len(rewrites) != 1 {
		t.Fatalf("expected 1 rewrite, got %d", len(rewrites))
	}
	want := runRows(t, db, buildQuery(t, db, qs))
	got := runRows(t, db, rewrites[0].Query)
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Fatal("extra predicate over view output must survive the rewrite")
	}
}
