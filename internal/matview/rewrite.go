package matview

import (
	"strings"

	"repro/internal/catalog"
	"repro/internal/logical"
)

// tryRewrite checks containment and builds the substituted query.
func tryRewrite(q, v *blockInfo, mv *catalog.MaterializedView) (*logical.Query, bool) {
	// V's tables and predicates must be contained in Q's.
	for name := range v.scans {
		if _, ok := q.scans[name]; !ok {
			return nil, false
		}
	}
	for key := range v.preds {
		if _, ok := q.preds[key]; !ok {
			return nil, false
		}
	}
	viewOut, ok := viewOutput(v)
	if !ok {
		return nil, false
	}
	if v.group == nil {
		return rewriteSPJ(q, v, mv, viewOut)
	}
	return rewriteAgg(q, v, mv, viewOut)
}

// usedCols collects every column the query references above the join block.
func usedCols(q *blockInfo) logical.ColSet {
	var used logical.ColSet
	for _, id := range q.query.ResultCols {
		used.Add(id)
	}
	for _, o := range q.query.OrderBy {
		used.Add(o.Col)
	}
	if q.project != nil {
		for _, it := range q.project.Items {
			used = used.Union(logical.ScalarCols(it.Expr))
		}
	}
	if q.group != nil {
		for _, c := range q.group.GroupCols {
			used.Add(c)
		}
		for _, a := range q.group.Aggs {
			if a.Arg != nil {
				used = used.Union(logical.ScalarCols(a.Arg))
			}
		}
	}
	return used
}

// rewriteSPJ substitutes an SPJ view: the view's backing table replaces the
// covered tables; uncovered tables keep joining; predicates the view already
// applied disappear.
func rewriteSPJ(q, v *blockInfo, mv *catalog.MaterializedView, viewOut map[string]int) (*logical.Query, bool) {
	meta := q.query.Meta
	binding := "mv_" + strings.ToLower(mv.Name)
	mvCols := meta.AddTable(mv.Table, binding)
	mvScan := &logical.Scan{Table: mv.Table, Binding: binding, Cols: mvCols}

	// Map covered base columns to backing-table columns.
	mapping := map[logical.ColumnID]logical.ColumnID{}
	coveredCols := logical.ColSet{}
	for name, scan := range q.scans {
		if _, covered := v.scans[name]; !covered {
			continue
		}
		for _, id := range scan.Cols {
			coveredCols.Add(id)
			if ord, ok := viewOut[q.colName[id]]; ok {
				mapping[id] = mvCols[ord]
			}
		}
	}

	// Remaining predicates (not absorbed by the view).
	var remaining []logical.Scalar
	remainingUsed := logical.ColSet{}
	for key, p := range q.preds {
		if _, inV := v.preds[key]; inV {
			continue
		}
		remaining = append(remaining, p)
		remainingUsed = remainingUsed.Union(logical.ScalarCols(p))
	}

	// Every covered column still referenced must be exposed by the view.
	needed := usedCols(q).Union(remainingUsed).Intersect(coveredCols)
	okAll := true
	needed.ForEach(func(c logical.ColumnID) {
		if _, ok := mapping[c]; !ok {
			okAll = false
		}
	})
	if !okAll {
		return nil, false
	}

	// Rebuild the block: view scan joined with uncovered tables.
	var tree logical.RelExpr = mvScan
	for name, scan := range q.scans {
		if _, covered := v.scans[name]; covered {
			continue
		}
		tree = &logical.Join{Kind: logical.InnerJoin, Left: tree, Right: scan}
	}
	if len(remaining) > 0 {
		tree = &logical.Select{Input: tree, Filters: remaining}
	}
	if q.group != nil {
		tree = &logical.GroupBy{Input: tree, GroupCols: q.group.GroupCols, Aggs: q.group.Aggs}
	}
	if q.project != nil {
		tree = &logical.Project{Input: tree, Items: q.project.Items}
	}
	return finish(q, tree, mapping)
}

// rewriteAgg substitutes an aggregate view: exact grouping reads the view
// directly; coarser grouping re-aggregates (SUM of partial counts/sums,
// MIN/MAX of partial extremes).
func rewriteAgg(q, v *blockInfo, mv *catalog.MaterializedView, viewOut map[string]int) (*logical.Query, bool) {
	if q.group == nil {
		return nil, false
	}
	// Tables must match exactly: an extra query table would need a join
	// below the view's aggregation.
	if len(q.scans) != len(v.scans) {
		return nil, false
	}
	meta := q.query.Meta
	binding := "mv_" + strings.ToLower(mv.Name)
	mvCols := meta.AddTable(mv.Table, binding)
	mvScan := &logical.Scan{Table: mv.Table, Binding: binding, Cols: mvCols}

	mapping := map[logical.ColumnID]logical.ColumnID{}
	// Group columns must be exposed plainly.
	var qGroupNames, vGroupNames []string
	for _, c := range q.group.GroupCols {
		name, ok := q.colName[c]
		if !ok {
			return nil, false
		}
		ord, ok := viewOut[name]
		if !ok {
			return nil, false
		}
		mapping[c] = mvCols[ord]
		qGroupNames = append(qGroupNames, name)
	}
	for _, c := range v.group.GroupCols {
		name, ok := v.colName[c]
		if !ok {
			return nil, false
		}
		vGroupNames = append(vGroupNames, name)
	}
	exact := len(qGroupNames) == len(vGroupNames) && subset(qGroupNames, vGroupNames) && subset(vGroupNames, qGroupNames)

	// Extra query predicates must be expressible over exposed columns.
	var remaining []logical.Scalar
	for key, p := range q.preds {
		if _, inV := v.preds[key]; inV {
			continue
		}
		okCols := true
		logical.ScalarCols(p).ForEach(func(c logical.ColumnID) {
			if _, ok := mapping[c]; !ok {
				if name, has := q.colName[c]; has {
					if ord, exp := viewOut[name]; exp {
						mapping[c] = mvCols[ord]
						return
					}
				}
				okCols = false
			}
		})
		if !okCols {
			return nil, false
		}
		remaining = append(remaining, p)
	}

	var tree logical.RelExpr = mvScan
	if len(remaining) > 0 {
		tree = &logical.Select{Input: tree, Filters: remaining}
	}
	if exact {
		// Aggregate outputs map directly to view columns.
		for i := range q.group.Aggs {
			a := &q.group.Aggs[i]
			key, ok := aggKey(a, q.colName)
			if !ok {
				return nil, false
			}
			ord, ok := viewOut[key]
			if !ok {
				return nil, false
			}
			mapping[a.ID] = mvCols[ord]
		}
	} else {
		// Rollup: combine partial aggregates.
		var combined []logical.AggItem
		for i := range q.group.Aggs {
			a := &q.group.Aggs[i]
			if a.Distinct {
				return nil, false
			}
			key, ok := aggKey(a, q.colName)
			if !ok {
				return nil, false
			}
			ord, ok := viewOut[key]
			if !ok {
				return nil, false
			}
			fn := a.Fn
			switch a.Fn {
			case logical.AggCount:
				fn = logical.AggSum
			case logical.AggSum, logical.AggMin, logical.AggMax:
			default:
				return nil, false // AVG needs exact grouping
			}
			combined = append(combined, logical.AggItem{ID: a.ID, Fn: fn, Arg: &logical.Col{ID: mvCols[ord]}})
		}
		tree = &logical.GroupBy{Input: tree, GroupCols: q.group.GroupCols, Aggs: combined}
	}
	if q.project != nil {
		tree = &logical.Project{Input: tree, Items: q.project.Items}
	}
	return finish(q, tree, mapping)
}

func subset(a, b []string) bool {
	set := map[string]bool{}
	for _, s := range b {
		set[s] = true
	}
	for _, s := range a {
		if !set[s] {
			return false
		}
	}
	return true
}

// finish remaps and assembles the rewritten query.
func finish(q *blockInfo, tree logical.RelExpr, mapping map[logical.ColumnID]logical.ColumnID) (*logical.Query, bool) {
	tree = logical.RemapRel(tree, mapping)
	remapID := func(id logical.ColumnID) logical.ColumnID {
		if to, ok := mapping[id]; ok {
			return to
		}
		return id
	}
	nq := &logical.Query{
		Meta:     q.query.Meta,
		Root:     tree,
		ColNames: q.query.ColNames,
	}
	for _, id := range q.query.ResultCols {
		nq.ResultCols = append(nq.ResultCols, remapID(id))
	}
	for _, o := range q.query.OrderBy {
		nq.OrderBy = append(nq.OrderBy, logical.OrderSpec{Col: remapID(o.Col), Desc: o.Desc})
	}
	logical.NormalizeQuery(nq, logical.DefaultNormalize())
	return nq, true
}
