// Package parallel implements the parallel-database material of §7.1 of the
// paper: two-phase optimization in the XPRS style (pick a serial plan first,
// then parallelize and schedule it) and Hasan's refinement that accounts for
// repartitioning (communication) cost when choosing the plan, treating the
// partitioning of a data stream as a physical property.
//
// The Exchange operators this package inserts are executed for real: plans
// annotated by Parallelize run on exec's morsel-driven worker pool
// (exec.Ctx.Parallelism), which fans each exchange out over hash or
// round-robin partitions and merges order-preservingly when a MergeOrdering
// is present. The cost model here remains the phase-one/phase-two modeling
// the paper describes; measured wall-clock comparisons live in
// cmd/benchharness (BENCH_parallel.json).
package parallel

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/physical"
)

// Config describes the modeled parallel machine.
type Config struct {
	// Degree is the number of processors.
	Degree int
	// CommCostPerRow is the cost of moving one row between processors
	// (repartitioning or broadcasting).
	CommCostPerRow float64
}

// Result is a parallelized plan with its modeled execution metrics.
type Result struct {
	Plan physical.Plan // with Exchange operators inserted
	// TotalWork is the sum of all operator costs (what a serial machine
	// would pay, §7.1 footnote: parallelism may increase total work).
	TotalWork float64
	// CommCost is the total repartitioning/broadcast cost.
	CommCost float64
	// ResponseTime is the modeled parallel response time:
	// partitionable work / degree + serial fractions + communication.
	ResponseTime float64
	// ExchangedRows counts rows crossing exchange boundaries.
	ExchangedRows float64
}

// annotated carries parallelization state up the tree.
type annotated struct {
	plan physical.Plan
	// part is the hash-partitioning key of the stream (nil = arbitrary
	// round-robin partitioning; the stream is still spread over workers).
	part []logical.ColumnID
	work float64
	comm float64
	rows float64
}

// Parallelize inserts exchange operators into a serial plan and models its
// parallel cost under the configuration.
func Parallelize(plan physical.Plan, cfg Config, model cost.Model) *Result {
	if cfg.Degree < 1 {
		cfg.Degree = 1
	}
	p := &parallelizer{cfg: cfg, model: model}
	a := p.rec(plan)
	return &Result{
		Plan:          a.plan,
		TotalWork:     a.work,
		CommCost:      a.comm,
		ResponseTime:  a.work/float64(cfg.Degree) + a.comm,
		ExchangedRows: p.exchangedRows,
	}
}

type parallelizer struct {
	cfg           Config
	model         cost.Model
	exchangedRows float64
}

// exchange repartitions a stream onto the given key. Exchanges are
// order-preserving: any ordering the input stream carries survives the
// repartitioning through a merging fan-in, so ordering properties the serial
// plan established (and operators above that rely on them, e.g. Limit under
// ORDER BY) remain valid when the exchange is actually executed.
func (p *parallelizer) exchange(a annotated, key []logical.ColumnID, mergeOrder logical.Ordering) annotated {
	if len(mergeOrder) == 0 {
		mergeOrder = a.plan.Ordering()
	}
	comm := a.rows * p.cfg.CommCostPerRow
	p.exchangedRows += a.rows
	ex := &physical.Exchange{
		Props:         physical.Props{Rows: a.rows, Cost: planCost(a.plan) + comm},
		Input:         a.plan,
		PartitionCols: key,
		Degree:        p.cfg.Degree,
		MergeOrdering: mergeOrder,
	}
	return annotated{plan: ex, part: key, work: a.work, comm: a.comm + comm, rows: a.rows}
}

func planCost(p physical.Plan) float64 {
	_, c := p.Estimate()
	return c
}

func planRows(p physical.Plan) float64 {
	r, _ := p.Estimate()
	return r
}

// opCost extracts the operator's own (non-cumulative) cost.
func opCost(p physical.Plan) float64 {
	c := planCost(p)
	for _, ch := range physical.Children(p) {
		c -= planCost(ch)
	}
	if c < 0 {
		c = 0
	}
	return c
}

func samePartition(a, b []logical.ColumnID) bool {
	if len(a) == 0 || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (p *parallelizer) rec(plan physical.Plan) annotated {
	switch t := plan.(type) {
	case *physical.TableScan, *physical.IndexScan, *physical.ValuesOp:
		// Base data is horizontally partitioned round-robin.
		return annotated{plan: plan, part: nil, work: planCost(plan), rows: planRows(plan)}
	case *physical.Filter:
		in := p.rec(t.Input)
		np := *t
		np.Input = in.plan
		return annotated{plan: &np, part: in.part, work: in.work + opCost(plan), comm: in.comm, rows: planRows(plan)}
	case *physical.Project:
		in := p.rec(t.Input)
		np := *t
		np.Input = in.plan
		return annotated{plan: &np, part: in.part, work: in.work + opCost(plan), comm: in.comm, rows: planRows(plan)}
	case *physical.Sort:
		in := p.rec(t.Input)
		np := *t
		np.Input = in.plan
		// Local sorts merge through an order-preserving exchange.
		a := annotated{plan: &np, part: in.part, work: in.work + opCost(plan), comm: in.comm, rows: planRows(plan)}
		return p.exchange(a, nil, t.By)
	case *physical.LimitOp:
		in := p.rec(t.Input)
		np := *t
		np.Input = in.plan
		return annotated{plan: &np, part: in.part, work: in.work + opCost(plan), comm: in.comm, rows: planRows(plan)}
	case *physical.HashJoin:
		return p.recKeyJoin(plan, t.Left, t.Right, t.LeftKeys, t.RightKeys, func(l, r physical.Plan) physical.Plan {
			np := *t
			np.Left, np.Right = l, r
			return &np
		})
	case *physical.MergeJoin:
		return p.recKeyJoin(plan, t.Left, t.Right, t.LeftKeys, t.RightKeys, func(l, r physical.Plan) physical.Plan {
			np := *t
			np.Left, np.Right = l, r
			return &np
		})
	case *physical.NLJoin:
		l := p.rec(t.Left)
		r := p.rec(t.Right)
		// The inner is broadcast to every worker.
		bcast := r.rows * float64(p.cfg.Degree-1) * p.cfg.CommCostPerRow
		p.exchangedRows += r.rows * float64(p.cfg.Degree-1)
		np := *t
		np.Left, np.Right = l.plan, r.plan
		return annotated{
			plan: &np, part: l.part,
			work: l.work + r.work + opCost(plan),
			comm: l.comm + r.comm + bcast,
			rows: planRows(plan),
		}
	case *physical.INLJoin:
		l := p.rec(t.Left)
		// The inner table's index is available on every worker (shared
		// storage); probes stay local.
		np := *t
		np.Left = l.plan
		return annotated{plan: &np, part: l.part, work: l.work + opCost(plan), comm: l.comm, rows: planRows(plan)}
	case *physical.HashGroupBy:
		in := p.rec(t.Input)
		if len(t.GroupCols) > 0 && !samePartition(in.part, t.GroupCols) {
			in = p.exchange(in, t.GroupCols, nil)
		}
		np := *t
		np.Input = in.plan
		return annotated{plan: &np, part: in.part, work: in.work + opCost(plan), comm: in.comm, rows: planRows(plan)}
	case *physical.StreamGroupBy:
		in := p.rec(t.Input)
		if len(t.GroupCols) > 0 && !samePartition(in.part, t.GroupCols) {
			var ord logical.Ordering
			for _, c := range t.GroupCols {
				ord = append(ord, logical.OrderSpec{Col: c})
			}
			in = p.exchange(in, t.GroupCols, ord)
		}
		np := *t
		np.Input = in.plan
		return annotated{plan: &np, part: in.part, work: in.work + opCost(plan), comm: in.comm, rows: planRows(plan)}
	case *physical.UnionAll:
		// Both arms run partitioned; concatenation needs no repartitioning but
		// destroys any arm-local partitioning property.
		l := p.rec(t.Left)
		r := p.rec(t.Right)
		np := *t
		np.Left, np.Right = l.plan, r.plan
		return annotated{
			plan: &np, part: nil,
			work: l.work + r.work + opCost(plan),
			comm: l.comm + r.comm,
			rows: planRows(plan),
		}
	case *physical.Exchange:
		in := p.rec(t.Input)
		return p.exchange(in, t.PartitionCols, t.MergeOrdering)
	}
	panic(fmt.Sprintf("parallel: unknown operator %T", plan))
}

// recKeyJoin repartitions both inputs onto the join keys unless they already
// carry the right partitioning (the physical-property view of Hasan).
func (p *parallelizer) recKeyJoin(plan physical.Plan, left, right physical.Plan,
	lKeys, rKeys []logical.ColumnID, rebuild func(l, r physical.Plan) physical.Plan) annotated {
	l := p.rec(left)
	r := p.rec(right)
	if !samePartition(l.part, lKeys) {
		l = p.exchange(l, lKeys, nil)
	}
	if !samePartition(r.part, rKeys) {
		r = p.exchange(r, rKeys, nil)
	}
	np := rebuild(l.plan, r.plan)
	return annotated{
		plan: np, part: lKeys,
		work: l.work + r.work + opCost(plan),
		comm: l.comm + r.comm,
		rows: planRows(plan),
	}
}

// --- Phase 2: processor scheduling ---

// Segment is a pipelined fragment of the plan: a maximal chain of operators
// between blocking boundaries (sorts, build sides, exchanges).
type Segment struct {
	ID   int
	Work float64
	// DependsOn lists segments that must finish first (precedence
	// constraints, e.g. a hash join's probe depends on its build).
	DependsOn []int
	Ops       []string
}

// Segments decomposes a plan into pipeline segments.
func Segments(plan physical.Plan) []Segment {
	var segs []Segment
	build(plan, &segs)
	return segs
}

// build returns the id of the segment producing the node's output.
func build(plan physical.Plan, segs *[]Segment) int {
	newSeg := func(work float64, op string, deps ...int) int {
		id := len(*segs)
		*segs = append(*segs, Segment{ID: id, Work: work, DependsOn: deps, Ops: []string{op}})
		return id
	}
	extend := func(seg int, work float64, op string) int {
		(*segs)[seg].Work += work
		(*segs)[seg].Ops = append((*segs)[seg].Ops, op)
		return seg
	}
	name := fmt.Sprintf("%T", plan)
	name = name[strings.LastIndex(name, ".")+1:]
	switch t := plan.(type) {
	case *physical.TableScan, *physical.IndexScan, *physical.ValuesOp:
		return newSeg(opCost(plan), name)
	case *physical.Filter:
		return extend(build(t.Input, segs), opCost(plan), name)
	case *physical.Project:
		return extend(build(t.Input, segs), opCost(plan), name)
	case *physical.LimitOp:
		return extend(build(t.Input, segs), opCost(plan), name)
	case *physical.Sort:
		in := build(t.Input, segs)
		return newSeg(opCost(plan), name, in) // sort blocks the pipeline
	case *physical.Exchange:
		in := build(t.Input, segs)
		return newSeg(opCost(plan), name, in)
	case *physical.NLJoin:
		l := build(t.Left, segs)
		r := build(t.Right, segs) // inner materializes before the probe starts
		(*segs)[l].DependsOn = append((*segs)[l].DependsOn, r)
		return extend(l, opCost(plan), name+dep(segs, r))
	case *physical.INLJoin:
		return extend(build(t.Left, segs), opCost(plan), name)
	case *physical.HashJoin:
		l := build(t.Left, segs)
		r := build(t.Right, segs) // build side blocks
		(*segs)[l].DependsOn = append((*segs)[l].DependsOn, r)
		return extend(l, opCost(plan), name+dep(segs, r))
	case *physical.MergeJoin:
		l := build(t.Left, segs)
		r := build(t.Right, segs)
		return newSeg(opCost(plan), name, l, r)
	case *physical.HashGroupBy:
		in := build(t.Input, segs)
		return newSeg(opCost(plan), name, in)
	case *physical.StreamGroupBy:
		return extend(build(t.Input, segs), opCost(plan), name)
	}
	panic(fmt.Sprintf("parallel: unknown operator %T", plan))
}

// dep renders a precedence annotation for an operator whose segment must wait
// on segment r (e.g. "HashJoin<-S2": the probe pipeline depends on S2, the
// materialized build/inner side), making Segments output self-describing.
func dep(segs *[]Segment, r int) string { return fmt.Sprintf("<-S%d", (*segs)[r].ID) }

// Makespan schedules the segments on `procs` processors with greedy list
// scheduling honoring precedence, returning the modeled completion time —
// the second phase of two-phase optimization.
func Makespan(segs []Segment, procs int) float64 {
	if procs < 1 {
		procs = 1
	}
	done := make([]float64, len(segs)) // finish time; 0 = unscheduled
	scheduled := make([]bool, len(segs))
	procFree := make([]float64, procs)
	remaining := len(segs)
	for remaining > 0 {
		// Ready segments: all dependencies scheduled.
		type ready struct {
			id    int
			avail float64
		}
		var rs []ready
		for i := range segs {
			if scheduled[i] {
				continue
			}
			avail := 0.0
			ok := true
			for _, d := range segs[i].DependsOn {
				if !scheduled[d] {
					ok = false
					break
				}
				avail = math.Max(avail, done[d])
			}
			if ok {
				rs = append(rs, ready{i, avail})
			}
		}
		if len(rs) == 0 {
			break // cycle (should not happen)
		}
		// Longest work first.
		sort.Slice(rs, func(a, b int) bool { return segs[rs[a].id].Work > segs[rs[b].id].Work })
		r := rs[0]
		// Earliest-free processor.
		pi := 0
		for i := range procFree {
			if procFree[i] < procFree[pi] {
				pi = i
			}
		}
		start := math.Max(procFree[pi], r.avail)
		finish := start + segs[r.id].Work
		procFree[pi] = finish
		done[r.id] = finish
		scheduled[r.id] = true
		remaining--
	}
	max := 0.0
	for _, d := range done {
		max = math.Max(max, d)
	}
	return max
}
