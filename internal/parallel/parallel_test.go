package parallel

import (
	"testing"

	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/workload"
)

func buildQuery(t *testing.T, db *workload.DB, q string) *logical.Query {
	t.Helper()
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	query, err := logical.NewBuilder(db.Cat).Build(sel)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	logical.NormalizeQuery(query, logical.DefaultNormalize())
	logical.PruneColumns(query)
	return query
}

func serialPlan(t *testing.T, db *workload.DB, qs string) (*logical.Query, physical.Plan) {
	t.Helper()
	q := buildQuery(t, db, qs)
	opt := systemr.New(stats.NewEstimator(q.Meta), cost.DefaultModel(), systemr.DefaultOptions())
	plan, err := opt.Optimize(q)
	if err != nil {
		t.Fatal(err)
	}
	return q, plan
}

func TestParallelizeReducesResponseTime(t *testing.T) {
	db := workload.Star(workload.StarConfig{FactRows: 30000, DimRows: []int{100, 100}, Seed: 3})
	db.Analyze(stats.AnalyzeOptions{})
	_, plan := serialPlan(t, db, workload.StarQuery(2, 0))
	serialCost := 0.0
	if _, c := plan.Estimate(); true {
		serialCost = c
	}
	par := Parallelize(plan, Config{Degree: 8, CommCostPerRow: 0.0001}, cost.DefaultModel())
	if par.ResponseTime >= serialCost {
		t.Errorf("8-way parallelism should beat serial: response %v vs serial %v", par.ResponseTime, serialCost)
	}
	if par.TotalWork < serialCost*0.5 {
		t.Errorf("total work should not shrink dramatically: %v vs %v", par.TotalWork, serialCost)
	}
}

func TestParallelismIncreasesTotalWork(t *testing.T) {
	// §7.1 footnote: parallel execution may increase total work (comm).
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 5000, Depts: 100})
	db.Analyze(stats.AnalyzeOptions{})
	_, plan := serialPlan(t, db, "SELECT e.name, d.dname FROM Emp e, Dept d WHERE e.did = d.did")
	par := Parallelize(plan, Config{Degree: 4, CommCostPerRow: 0.01}, cost.DefaultModel())
	_, serialCost := plan.Estimate()
	if par.TotalWork+par.CommCost <= serialCost {
		t.Errorf("work + comm (%v) should exceed serial work (%v)", par.TotalWork+par.CommCost, serialCost)
	}
	if par.CommCost <= 0 || par.ExchangedRows <= 0 {
		t.Error("repartitioning should cost something")
	}
}

func TestExchangeInsertedForGroupBy(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 3000, Depts: 60})
	db.Analyze(stats.AnalyzeOptions{})
	_, plan := serialPlan(t, db, "SELECT did, COUNT(*) FROM Emp GROUP BY did")
	par := Parallelize(plan, Config{Degree: 4, CommCostPerRow: 0.001}, cost.DefaultModel())
	exchanges := 0
	var walk func(p physical.Plan)
	walk = func(p physical.Plan) {
		if _, ok := p.(*physical.Exchange); ok {
			exchanges++
		}
		for _, c := range physical.Children(p) {
			walk(c)
		}
	}
	walk(par.Plan)
	if exchanges == 0 {
		t.Errorf("group-by should require a repartitioning exchange:\n%s", physical.Format(par.Plan, nil))
	}
}

func TestDegreeScaling(t *testing.T) {
	db := workload.Star(workload.StarConfig{FactRows: 20000, DimRows: []int{50}, Seed: 7})
	db.Analyze(stats.AnalyzeOptions{})
	_, plan := serialPlan(t, db, workload.StarQuery(1, 0))
	prev := 0.0
	for i, degree := range []int{1, 2, 4, 8, 16} {
		par := Parallelize(plan, Config{Degree: degree, CommCostPerRow: 0.0001}, cost.DefaultModel())
		if i > 0 && par.ResponseTime >= prev {
			t.Errorf("degree %d response %v should improve on %v", degree, par.ResponseTime, prev)
		}
		prev = par.ResponseTime
	}
}

func TestCommAwareBeatsXPRSUnderExpensiveComm(t *testing.T) {
	db := workload.Star(workload.StarConfig{FactRows: 30000, DimRows: []int{40, 40}, Seed: 9})
	db.Analyze(stats.AnalyzeOptions{})
	q := buildQuery(t, db, workload.StarQuery(2, 5))
	cfg := Config{Degree: 8, CommCostPerRow: 0.05} // expensive network
	estf := func() *stats.Estimator { return stats.NewEstimator(q.Meta) }

	xprs, err := Optimize(q, estf, cost.DefaultModel(), cfg, XPRS)
	if err != nil {
		t.Fatal(err)
	}
	aware, err := Optimize(q, estf, cost.DefaultModel(), cfg, CommAware)
	if err != nil {
		t.Fatal(err)
	}
	if aware.Parallel.ResponseTime > xprs.Parallel.ResponseTime*1.0001 {
		t.Errorf("comm-aware phase one must not be worse: %v vs %v",
			aware.Parallel.ResponseTime, xprs.Parallel.ResponseTime)
	}
	if xprs.Candidates == 0 || aware.Candidates == 0 {
		t.Error("candidates should be counted")
	}
}

func TestSegmentsAndMakespan(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 4000, Depts: 80})
	db.Analyze(stats.AnalyzeOptions{})
	_, plan := serialPlan(t, db, `SELECT d.loc, COUNT(*) FROM Emp e, Dept d WHERE e.did = d.did GROUP BY d.loc`)
	segs := Segments(plan)
	if len(segs) < 2 {
		t.Fatalf("expected multiple pipeline segments, got %d", len(segs))
	}
	total := 0.0
	for _, s := range segs {
		if s.Work < 0 {
			t.Errorf("segment %d negative work", s.ID)
		}
		total += s.Work
	}
	m1 := Makespan(segs, 1)
	m4 := Makespan(segs, 4)
	if m4 > m1 {
		t.Errorf("more processors should not increase makespan: %v vs %v", m4, m1)
	}
	if m1 < total*0.99 {
		t.Errorf("single processor makespan %v should be ~total work %v", m1, total)
	}
	// Precedence must be honored: makespan at infinite processors is at
	// least the critical path, which is > 0.
	if Makespan(segs, 1000) <= 0 {
		t.Error("critical path should be positive")
	}
}
