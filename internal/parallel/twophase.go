package parallel

import (
	"math"

	"repro/internal/cost"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/stats"
	"repro/internal/systemr"
)

// Strategy selects how the serial plan (phase one) is chosen.
type Strategy uint8

const (
	// XPRS picks the serial plan with the best *serial* cost and only then
	// parallelizes — Hong/Stonebraker's two-phase approach, which ignores
	// communication in phase one.
	XPRS Strategy = iota
	// CommAware evaluates serial candidates by their *parallel* response
	// time, folding repartitioning costs into the choice — Hasan's
	// refinement.
	CommAware
)

func (s Strategy) String() string {
	if s == XPRS {
		return "XPRS"
	}
	return "comm-aware"
}

// TwoPhaseResult reports the chosen plan of a two-phase optimization.
type TwoPhaseResult struct {
	Strategy Strategy
	Serial   physical.Plan
	Parallel *Result
	// Candidates is the number of serial plans considered in phase one.
	Candidates int
}

// candidateOptions enumerates serial-plan alternatives by toggling optimizer
// knobs — a pragmatic stand-in for a full plan-diversity enumeration.
func candidateOptions() []systemr.Options {
	base := systemr.DefaultOptions()
	bushy := base
	bushy.Bushy = true
	noHash := base
	noHash.DisableHashJoin = true
	noMerge := base
	noMerge.DisableMergeJoin = true
	noINL := base
	noINL.DisableINLJoin = true
	// Index-nested-loop-only plans probe shared indexes locally and need no
	// repartitioning exchanges — the exchange-free alternative a comm-aware
	// phase one can prefer.
	inlOnly := base
	inlOnly.DisableHashJoin = true
	inlOnly.DisableMergeJoin = true
	return []systemr.Options{base, bushy, noHash, noMerge, noINL, inlOnly}
}

// Optimize runs two-phase optimization for the query under the strategy.
func Optimize(q *logical.Query, est func() *stats.Estimator, model cost.Model, cfg Config, strategy Strategy) (*TwoPhaseResult, error) {
	res := &TwoPhaseResult{Strategy: strategy}
	bestScore := math.Inf(1)
	for _, opts := range candidateOptions() {
		opt := systemr.New(est(), model, opts)
		serial, err := opt.Optimize(q)
		if err != nil {
			return nil, err
		}
		res.Candidates++
		par := Parallelize(serial, cfg, model)
		var score float64
		if strategy == XPRS {
			_, score = serial.Estimate() // serial cost only
		} else {
			score = par.ResponseTime
		}
		if score < bestScore {
			bestScore = score
			res.Serial = serial
			res.Parallel = par
		}
	}
	return res, nil
}
