// Package parametric implements the §7.4 direction the paper highlights:
// "being able to defer generation of complete plans subject to availability
// of runtime information" (Graefe/Ward dynamic plans [19], Ioannidis et al.
// parametric query optimization [33]).
//
// A query template contains the marker `$1` in a predicate position. Prepare
// probes the optimizer at several candidate parameter values, records the
// chosen plan per value, and merges adjacent values with structurally
// identical plans into ranges — the template's *plan diagram*. Execution for
// an actual value picks the range's plan and substitutes the runtime value
// for the probe constant (the choose-plan dispatch of [19]); a static
// baseline always runs the plan optimized for one representative value,
// exposing the regret that motivates dynamic plans.
package parametric

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cost"
	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/workload"
)

// Marker is the parameter placeholder in query templates.
const Marker = "$1"

// PlanRange is one contiguous parameter interval sharing a plan shape.
type PlanRange struct {
	// Lo and Hi are the smallest and largest probed values in the range.
	Lo, Hi datum.D
	// Probe is the value the stored plan was optimized for.
	Probe datum.D
	// Plan is the physical plan optimized at Probe.
	Plan physical.Plan
	// Query is the logical query built at Probe (metadata for execution).
	Query *logical.Query
	// Signature is the structural fingerprint shared by the range.
	Signature string
	// EstCost is the optimizer's estimate at the probe value.
	EstCost float64
}

// DynamicPlan is a prepared template with its plan diagram.
type DynamicPlan struct {
	Template string
	Ranges   []PlanRange
}

// Signature fingerprints a plan's structure: operator kinds, join algorithms
// and access paths, ignoring constants and cardinalities.
func Signature(p physical.Plan) string {
	var sb strings.Builder
	var walk func(p physical.Plan)
	walk = func(p physical.Plan) {
		switch t := p.(type) {
		case *physical.TableScan:
			fmt.Fprintf(&sb, "scan(%s)", t.Table.Name)
		case *physical.IndexScan:
			fmt.Fprintf(&sb, "ixscan(%s.%s)", t.Table.Name, t.Index.Name)
		case *physical.INLJoin:
			fmt.Fprintf(&sb, "inl[%v,%s.%s](", t.Kind, t.Table.Name, t.Index.Name)
		case *physical.NLJoin:
			fmt.Fprintf(&sb, "nl[%v](", t.Kind)
		case *physical.HashJoin:
			fmt.Fprintf(&sb, "hash[%v](", t.Kind)
		case *physical.MergeJoin:
			fmt.Fprintf(&sb, "merge[%v](", t.Kind)
		case *physical.Sort:
			sb.WriteString("sort(")
		case *physical.Filter:
			sb.WriteString("filter(")
		case *physical.Project:
			sb.WriteString("project(")
		case *physical.HashGroupBy:
			sb.WriteString("hashgb(")
		case *physical.StreamGroupBy:
			sb.WriteString("streamgb(")
		case *physical.LimitOp:
			sb.WriteString("limit(")
		case *physical.ValuesOp:
			sb.WriteString("values")
		case *physical.Exchange:
			sb.WriteString("exchange(")
		}
		ch := physical.Children(p)
		for i, c := range ch {
			if i > 0 {
				sb.WriteByte(',')
			}
			walk(c)
		}
		if len(ch) > 0 {
			sb.WriteByte(')')
		}
	}
	walk(p)
	return sb.String()
}

// Prepare probes the optimizer across the candidate values (sorted
// ascending) and builds the plan diagram.
func Prepare(db *workload.DB, template string, candidates []datum.D, opts systemr.Options) (*DynamicPlan, error) {
	if !strings.Contains(template, Marker) {
		return nil, fmt.Errorf("parametric: template has no %s marker", Marker)
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("parametric: no candidate values")
	}
	vals := append([]datum.D{}, candidates...)
	sort.Slice(vals, func(i, j int) bool { return datum.Compare(vals[i], vals[j]) < 0 })

	dp := &DynamicPlan{Template: template}
	for _, v := range vals {
		q, plan, err := optimizeAt(db, template, v, opts)
		if err != nil {
			return nil, err
		}
		sig := Signature(plan)
		_, c := plan.Estimate()
		if n := len(dp.Ranges); n > 0 && dp.Ranges[n-1].Signature == sig {
			dp.Ranges[n-1].Hi = v
			continue
		}
		dp.Ranges = append(dp.Ranges, PlanRange{
			Lo: v, Hi: v, Probe: v, Plan: plan, Query: q, Signature: sig, EstCost: c,
		})
	}
	return dp, nil
}

func optimizeAt(db *workload.DB, template string, v datum.D, opts systemr.Options) (*logical.Query, physical.Plan, error) {
	text := strings.ReplaceAll(template, Marker, v.String())
	sel, err := sql.ParseSelect(text)
	if err != nil {
		return nil, nil, err
	}
	q, err := logical.NewBuilder(db.Cat).Build(sel)
	if err != nil {
		return nil, nil, err
	}
	logical.NormalizeQuery(q, logical.DefaultNormalize())
	logical.PruneColumns(q)
	opt := systemr.New(stats.NewEstimator(q.Meta), cost.DefaultModel(), opts)
	plan, err := opt.Optimize(q)
	if err != nil {
		return nil, nil, err
	}
	return q, plan, nil
}

// rangeFor returns the plan range covering v: the range whose [Lo, Hi]
// contains it, else the nearest boundary range.
func (dp *DynamicPlan) rangeFor(v datum.D) *PlanRange {
	for i := range dp.Ranges {
		r := &dp.Ranges[i]
		if datum.Compare(v, r.Lo) >= 0 && datum.Compare(v, r.Hi) <= 0 {
			return r
		}
	}
	if datum.Compare(v, dp.Ranges[0].Lo) < 0 {
		return &dp.Ranges[0]
	}
	return &dp.Ranges[len(dp.Ranges)-1]
}

// NumPlans returns the number of distinct plan shapes in the diagram.
func (dp *DynamicPlan) NumPlans() int { return len(dp.Ranges) }

// Execute runs the template for an actual parameter value using the plan
// diagram: the covering range's plan is taken and the runtime value replaces
// the probe constant. The probe value must not collide with other constants
// in the template (documented restriction of this substitution scheme).
func (dp *DynamicPlan) Execute(db *workload.DB, v datum.D) (*exec.Result, exec.Counters, error) {
	r := dp.rangeFor(v)
	return runSubstituted(db, r, v)
}

// ExecuteStatic runs the plan of the range containing `rep` (a
// representative value chosen at prepare time) for the actual value v — the
// static-plan baseline dynamic plans improve on.
func (dp *DynamicPlan) ExecuteStatic(db *workload.DB, rep, v datum.D) (*exec.Result, exec.Counters, error) {
	r := dp.rangeFor(rep)
	return runSubstituted(db, r, v)
}

func runSubstituted(db *workload.DB, r *PlanRange, v datum.D) (*exec.Result, exec.Counters, error) {
	plan := substituteConst(r.Plan, r.Probe, v)
	ctx := exec.NewCtx(db.Store, r.Query.Meta)
	res, err := exec.RunPlanQuery(plan, r.Query, ctx)
	if err != nil {
		return nil, ctx.Counters, err
	}
	return res, ctx.Counters, nil
}

// substituteConst deep-copies the plan replacing every constant equal to old
// with new — in filters, join conditions, projections and index bounds.
func substituteConst(p physical.Plan, old, new datum.D) physical.Plan {
	if datum.Compare(old, new) == 0 {
		return p
	}
	subScalar := func(s logical.Scalar) logical.Scalar {
		return logical.RewriteScalar(s, func(sc logical.Scalar) logical.Scalar {
			if k, ok := sc.(*logical.Const); ok && !k.Val.IsNull() && !old.IsNull() && datum.Compare(k.Val, old) == 0 {
				return &logical.Const{Val: new}
			}
			return sc
		})
	}
	subScalars := func(ss []logical.Scalar) []logical.Scalar {
		out := make([]logical.Scalar, len(ss))
		for i, s := range ss {
			out[i] = subScalar(s)
		}
		return out
	}
	subDatum := func(d datum.D) datum.D {
		if !d.IsNull() && datum.Compare(d, old) == 0 {
			return new
		}
		return d
	}
	switch t := p.(type) {
	case *physical.TableScan:
		cp := *t
		cp.Filter = subScalars(t.Filter)
		return &cp
	case *physical.IndexScan:
		cp := *t
		cp.Filter = subScalars(t.Filter)
		cp.EqKey = append(datum.Row{}, t.EqKey...)
		for i := range cp.EqKey {
			cp.EqKey[i] = subDatum(cp.EqKey[i])
		}
		cp.Lo, cp.Hi = subDatum(t.Lo), subDatum(t.Hi)
		return &cp
	case *physical.Filter:
		cp := *t
		cp.Input = substituteConst(t.Input, old, new)
		cp.Preds = subScalars(t.Preds)
		return &cp
	case *physical.Project:
		cp := *t
		cp.Input = substituteConst(t.Input, old, new)
		items := make([]logical.ProjectItem, len(t.Items))
		for i, it := range t.Items {
			items[i] = logical.ProjectItem{ID: it.ID, Expr: subScalar(it.Expr)}
		}
		cp.Items = items
		return &cp
	case *physical.Sort:
		cp := *t
		cp.Input = substituteConst(t.Input, old, new)
		return &cp
	case *physical.NLJoin:
		cp := *t
		cp.Left = substituteConst(t.Left, old, new)
		cp.Right = substituteConst(t.Right, old, new)
		cp.On = subScalars(t.On)
		return &cp
	case *physical.INLJoin:
		cp := *t
		cp.Left = substituteConst(t.Left, old, new)
		cp.ExtraOn = subScalars(t.ExtraOn)
		return &cp
	case *physical.HashJoin:
		cp := *t
		cp.Left = substituteConst(t.Left, old, new)
		cp.Right = substituteConst(t.Right, old, new)
		cp.ExtraOn = subScalars(t.ExtraOn)
		return &cp
	case *physical.MergeJoin:
		cp := *t
		cp.Left = substituteConst(t.Left, old, new)
		cp.Right = substituteConst(t.Right, old, new)
		cp.ExtraOn = subScalars(t.ExtraOn)
		return &cp
	case *physical.HashGroupBy:
		cp := *t
		cp.Input = substituteConst(t.Input, old, new)
		return &cp
	case *physical.StreamGroupBy:
		cp := *t
		cp.Input = substituteConst(t.Input, old, new)
		return &cp
	case *physical.LimitOp:
		cp := *t
		cp.Input = substituteConst(t.Input, old, new)
		return &cp
	case *physical.Exchange:
		cp := *t
		cp.Input = substituteConst(t.Input, old, new)
		return &cp
	case *physical.ValuesOp:
		return t
	}
	return p
}
