package parametric

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/workload"
)

func prep(t *testing.T) (*workload.DB, *DynamicPlan) {
	t.Helper()
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 100000, Depts: 2000})
	db.Analyze(stats.AnalyzeOptions{Buckets: 40})
	// Selectivity of did <= $1 sweeps ~0%..100%: the secondary-index plan
	// wins while matches are few and flips to a sequential scan past the
	// random-I/O crossover (§5.2).
	template := "SELECT name FROM Emp WHERE did <= $1"
	var candidates []datum.D
	for _, v := range []int64{1, 5, 20, 100, 400, 1000, 1600, 1999} {
		candidates = append(candidates, datum.NewInt(v))
	}
	dp, err := Prepare(db, template, candidates, systemr.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return db, dp
}

func TestPlanDiagramHasCrossover(t *testing.T) {
	_, dp := prep(t)
	if dp.NumPlans() < 2 {
		for _, r := range dp.Ranges {
			t.Logf("range [%s,%s]: %s", r.Lo, r.Hi, r.Signature)
		}
		t.Fatalf("expected a plan crossover across selectivities, got %d plan(s)", dp.NumPlans())
	}
	// The low-selectivity end should use the did index; the high end a scan.
	first, last := dp.Ranges[0], dp.Ranges[len(dp.Ranges)-1]
	if !strings.Contains(first.Signature, "ixscan") {
		t.Errorf("selective end should use an index: %s", first.Signature)
	}
	if strings.Contains(last.Signature, "ixscan(Emp.emp_did)") {
		t.Errorf("unselective end should not use the secondary index: %s", last.Signature)
	}
}

func TestDynamicExecutionCorrect(t *testing.T) {
	db, dp := prep(t)
	for _, v := range []int64{2, 47, 500, 1900} {
		res, _, err := dp.Execute(db, datum.NewInt(v))
		if err != nil {
			t.Fatal(err)
		}
		want := referenceRows(t, db, v)
		got := sortedNames(res)
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Fatalf("param %d: dynamic plan returned %d rows, reference %d", v, len(got), len(want))
		}
	}
}

func TestStaticPlanRegret(t *testing.T) {
	db, dp := prep(t)
	// Static plan chosen for a very selective representative, then run at an
	// unselective actual value: it keeps probing the secondary index and
	// reads far more pages than the dynamic choice.
	rep := datum.NewInt(1)
	actual := datum.NewInt(1999)
	_, staticCounters, err := dp.ExecuteStatic(db, rep, actual)
	if err != nil {
		t.Fatal(err)
	}
	_, dynCounters, err := dp.Execute(db, actual)
	if err != nil {
		t.Fatal(err)
	}
	if staticCounters.PagesRead <= dynCounters.PagesRead {
		t.Errorf("static plan should pay for its stale choice: static %d pages vs dynamic %d",
			staticCounters.PagesRead, dynCounters.PagesRead)
	}
	// Both must return the same rows.
	sres, _, _ := dp.ExecuteStatic(db, rep, actual)
	dres, _, _ := dp.Execute(db, actual)
	if len(sres.Rows) != len(dres.Rows) {
		t.Fatalf("static and dynamic plans disagree: %d vs %d rows", len(sres.Rows), len(dres.Rows))
	}
}

func TestPrepareValidation(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 100, Depts: 10})
	db.Analyze(stats.AnalyzeOptions{})
	if _, err := Prepare(db, "SELECT name FROM Emp", []datum.D{datum.NewInt(1)}, systemr.DefaultOptions()); err == nil {
		t.Error("template without marker should fail")
	}
	if _, err := Prepare(db, "SELECT name FROM Emp WHERE did <= $1", nil, systemr.DefaultOptions()); err == nil {
		t.Error("no candidates should fail")
	}
	if _, err := Prepare(db, "SELECT nope FROM Emp WHERE did <= $1",
		[]datum.D{datum.NewInt(1)}, systemr.DefaultOptions()); err == nil {
		t.Error("bad template should surface build errors")
	}
}

func TestRangeForBoundaries(t *testing.T) {
	db, dp := prep(t)
	_ = db
	below := dp.rangeFor(datum.NewInt(-5))
	if below != &dp.Ranges[0] {
		t.Error("values below the diagram should clamp to the first range")
	}
	above := dp.rangeFor(datum.NewInt(10_000))
	if above != &dp.Ranges[len(dp.Ranges)-1] {
		t.Error("values above the diagram should clamp to the last range")
	}
}

func referenceRows(t *testing.T, db *workload.DB, v int64) []string {
	t.Helper()
	sel, err := sql.ParseSelect("SELECT name FROM Emp WHERE did <= " + datum.NewInt(v).String())
	if err != nil {
		t.Fatal(err)
	}
	q, err := logical.NewBuilder(db.Cat).Build(sel)
	if err != nil {
		t.Fatal(err)
	}
	ctx := exec.NewCtx(db.Store, q.Meta)
	res, err := ctx.RunQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	return sortedNames(res)
}

func sortedNames(res *exec.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = r[0].Str()
	}
	sort.Strings(out)
	return out
}

func TestJoinTemplateSubstitution(t *testing.T) {
	// A template whose plans include joins, projections, filters and sorts,
	// exercising constant substitution across every operator kind.
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 5000, Depts: 100})
	db.Analyze(stats.AnalyzeOptions{})
	template := `SELECT e.name FROM Emp e, Dept d
		WHERE e.did = d.did AND e.age < $1 ORDER BY e.name`
	var candidates []datum.D
	for _, v := range []int64{21, 30, 45, 64} {
		candidates = append(candidates, datum.NewInt(v))
	}
	dp, err := Prepare(db, template, candidates, systemr.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{22, 40, 64} {
		res, _, err := dp.Execute(db, datum.NewInt(v))
		if err != nil {
			t.Fatal(err)
		}
		// Reference via fresh build.
		sel, err := sql.ParseSelect(strings.ReplaceAll(template, Marker, datum.NewInt(v).String()))
		if err != nil {
			t.Fatal(err)
		}
		q, err := logical.NewBuilder(db.Cat).Build(sel)
		if err != nil {
			t.Fatal(err)
		}
		ctx := exec.NewCtx(db.Store, q.Meta)
		want, err := ctx.RunQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != len(want.Rows) {
			t.Fatalf("age<%d: dynamic %d rows vs reference %d", v, len(res.Rows), len(want.Rows))
		}
	}
	// Substitution with the same value is the identity.
	r := &dp.Ranges[0]
	if got := substituteConst(r.Plan, r.Probe, r.Probe); got != r.Plan {
		t.Error("identity substitution should return the original plan")
	}
	if Signature(r.Plan) == "" {
		t.Error("signature should be nonempty")
	}
}
