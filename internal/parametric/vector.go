package parametric

import (
	"fmt"

	"repro/internal/datum"
	"repro/internal/logical"
	"repro/internal/physical"
)

// This file generalizes the single-marker plan diagram of parametric.go to a
// vector of parameters, for the prepared-statement plan cache: each cached
// statement holds a Diagram whose boxes are axis-aligned regions of the
// parameter space sharing one plan shape. Dispatch at execute time picks the
// box containing the binding vector (or the nearest box when the binding
// falls outside every box) and re-binds its plan via physical.BindParams.
//
// Unlike Prepare, which probes a candidate grid eagerly, the Diagram is grown
// online: every cache miss optimizes at the actual bindings and either
// extends a same-signature box to cover them or adds a new box. Because
// BindParams substitutes the real bindings into whichever plan is chosen, the
// dispatch affects plan *quality* only, never correctness.

// Box is one axis-aligned region of parameter space sharing a plan shape.
type Box struct {
	// Lo and Hi are per-dimension inclusive bounds over the bindings this
	// box has absorbed. NULL bindings participate via datum ordering
	// (NULL sorts before every non-NULL value).
	Lo, Hi []datum.D
	// Probe is the binding vector the stored plan was optimized for.
	Probe []datum.D
	// Plan is the physical plan optimized at Probe, with parameter-tagged
	// constants still in place for BindParams.
	Plan physical.Plan
	// Query carries the metadata execution needs.
	Query *logical.Query
	// Signature is the structural fingerprint shared by the box.
	Signature string
	// EstCost is the optimizer's estimate at the probe vector.
	EstCost float64
}

// Contains reports whether vals lies within the box on every dimension.
func (b *Box) Contains(vals []datum.D) bool {
	if len(vals) != len(b.Lo) {
		return false
	}
	for i, v := range vals {
		if datum.Compare(v, b.Lo[i]) < 0 || datum.Compare(v, b.Hi[i]) > 0 {
			return false
		}
	}
	return true
}

// containedDims counts the dimensions on which vals is inside the box —
// the nearness measure for out-of-diagram dispatch.
func (b *Box) containedDims(vals []datum.D) int {
	n := 0
	for i, v := range vals {
		if i < len(b.Lo) && datum.Compare(v, b.Lo[i]) >= 0 && datum.Compare(v, b.Hi[i]) <= 0 {
			n++
		}
	}
	return n
}

// Diagram is a multi-parameter plan diagram: the boxes partition (an online,
// growing subset of) the parameter space by plan shape.
type Diagram struct {
	NParams int
	Boxes   []Box
}

// NewDiagram returns an empty diagram over nParams parameters.
func NewDiagram(nParams int) *Diagram { return &Diagram{NParams: nParams} }

// Find returns the first box containing vals, or nil if none does.
func (d *Diagram) Find(vals []datum.D) *Box {
	if len(vals) != d.NParams {
		return nil
	}
	for i := range d.Boxes {
		if d.Boxes[i].Contains(vals) {
			return &d.Boxes[i]
		}
	}
	return nil
}

// Nearest returns the box covering vals on the most dimensions — the
// choose-plan fallback for bindings outside every box. Ties go to the
// earliest box. Returns nil only when the diagram is empty or the vector
// has the wrong arity.
func (d *Diagram) Nearest(vals []datum.D) *Box {
	if len(vals) != d.NParams || len(d.Boxes) == 0 {
		return nil
	}
	best, bestDims := 0, -1
	for i := range d.Boxes {
		if n := d.Boxes[i].containedDims(vals); n > bestDims {
			best, bestDims = i, n
		}
	}
	return &d.Boxes[best]
}

// Add records that optimizing at vals produced plan (with fingerprint sig).
// A box with the same signature is extended to cover vals (per-dimension
// min/max); otherwise a new point box is appended. Extension is sound
// because BindParams makes any stored plan correct for any binding — the
// merged box can only cost a dispatch-quality loss, exactly as merging
// same-signature probes does in Prepare. Returns the covering box.
func (d *Diagram) Add(vals []datum.D, plan physical.Plan, q *logical.Query, sig string, estCost float64) (*Box, error) {
	if len(vals) != d.NParams {
		return nil, fmt.Errorf("parametric: binding arity %d, diagram has %d parameter(s)", len(vals), d.NParams)
	}
	for i := range d.Boxes {
		b := &d.Boxes[i]
		if b.Signature != sig {
			continue
		}
		for dim, v := range vals {
			if datum.Compare(v, b.Lo[dim]) < 0 {
				b.Lo[dim] = v
			}
			if datum.Compare(v, b.Hi[dim]) > 0 {
				b.Hi[dim] = v
			}
		}
		return b, nil
	}
	probe := append([]datum.D{}, vals...)
	d.Boxes = append(d.Boxes, Box{
		Lo:    append([]datum.D{}, vals...),
		Hi:    append([]datum.D{}, vals...),
		Probe: probe,
		Plan:  plan, Query: q, Signature: sig, EstCost: estCost,
	})
	return &d.Boxes[len(d.Boxes)-1], nil
}

// NumPlans returns the number of distinct plan shapes in the diagram.
func (d *Diagram) NumPlans() int { return len(d.Boxes) }
