package parametric

import (
	"testing"

	"repro/internal/datum"
)

func ints(vs ...int64) []datum.D {
	out := make([]datum.D, len(vs))
	for i, v := range vs {
		out[i] = datum.NewInt(v)
	}
	return out
}

func TestDiagramAddExtendsSameSignature(t *testing.T) {
	d := NewDiagram(2)
	if _, err := d.Add(ints(10, 100), nil, nil, "sigA", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(ints(30, 50), nil, nil, "sigA", 1); err != nil {
		t.Fatal(err)
	}
	if d.NumPlans() != 1 {
		t.Fatalf("same-signature add split into %d boxes", d.NumPlans())
	}
	// The box now covers the bounding rectangle of both probes.
	if b := d.Find(ints(20, 75)); b == nil || b.Signature != "sigA" {
		t.Fatalf("Find inside merged box = %v", b)
	}
	// A new signature gets its own box.
	if _, err := d.Add(ints(1000, 1), nil, nil, "sigB", 2); err != nil {
		t.Fatal(err)
	}
	if d.NumPlans() != 2 {
		t.Fatalf("distinct-signature add merged: %d boxes", d.NumPlans())
	}
	if b := d.Find(ints(1000, 1)); b == nil || b.Signature != "sigB" {
		t.Fatalf("Find at sigB probe = %v", b)
	}
}

func TestDiagramOutOfRangeFallsBackToNearest(t *testing.T) {
	d := NewDiagram(2)
	d.Add(ints(10, 10), nil, nil, "low", 1)
	d.Add(ints(100, 100), nil, nil, "high", 1)
	d.Add(ints(100, 10), nil, nil, "mixed", 1)

	// Outside every box entirely.
	if b := d.Find(ints(-5, 500)); b != nil {
		t.Fatalf("Find outside all boxes = %v, want nil", b)
	}
	// Nearest prefers the box matching the most dimensions: (100, 500)
	// matches "high" and "mixed" on dim 0 only — tie goes to the earlier.
	if b := d.Nearest(ints(100, 500)); b == nil || b.Signature != "high" {
		t.Fatalf("Nearest = %v, want high", b)
	}
	// (100, 10) exactly hits "mixed" on both dims.
	if b := d.Nearest(ints(100, 10)); b == nil || b.Signature != "mixed" {
		t.Fatalf("Nearest = %v, want mixed", b)
	}
	// Matching no dimension still returns some box (never nil).
	if b := d.Nearest(ints(-5, 500)); b == nil {
		t.Fatal("Nearest on fully-outside vector returned nil")
	}
}

func TestDiagramNullParameters(t *testing.T) {
	d := NewDiagram(2)
	d.Add([]datum.D{datum.Null, datum.NewInt(5)}, nil, nil, "withnull", 1)
	// NULL compares equal to NULL: the point box contains the same vector.
	if b := d.Find([]datum.D{datum.Null, datum.NewInt(5)}); b == nil || b.Signature != "withnull" {
		t.Fatalf("Find with NULL binding = %v", b)
	}
	// A non-NULL value in the NULL dimension is outside the point box.
	if b := d.Find([]datum.D{datum.NewInt(1), datum.NewInt(5)}); b != nil {
		t.Fatalf("Find(1, 5) = %v, want nil", b)
	}
	// Extending the same signature with a non-NULL binding widens the box:
	// NULL sorts before every value, so [NULL, 1] covers both.
	d.Add([]datum.D{datum.NewInt(1), datum.NewInt(5)}, nil, nil, "withnull", 1)
	if d.NumPlans() != 1 {
		t.Fatalf("NULL + non-NULL same signature split into %d boxes", d.NumPlans())
	}
	if b := d.Find([]datum.D{datum.Null, datum.NewInt(5)}); b == nil {
		t.Fatal("widened box lost its NULL corner")
	}
}

func TestDiagramArityMismatch(t *testing.T) {
	d := NewDiagram(2)
	if _, err := d.Add(ints(1), nil, nil, "s", 1); err == nil {
		t.Fatal("Add with wrong arity succeeded")
	}
	d.Add(ints(1, 2), nil, nil, "s", 1)
	if b := d.Find(ints(1)); b != nil {
		t.Fatalf("Find with wrong arity = %v, want nil", b)
	}
	if b := d.Nearest(ints(1)); b != nil {
		t.Fatalf("Nearest with wrong arity = %v, want nil", b)
	}
}

// The legacy single-marker diagram must clamp out-of-range values to the
// boundary ranges (choose-plan dispatch never fails on unseen bindings).
func TestRangeForClampsOutOfRange(t *testing.T) {
	dp := &DynamicPlan{Ranges: []PlanRange{
		{Lo: datum.NewInt(10), Hi: datum.NewInt(20), Signature: "a"},
		{Lo: datum.NewInt(30), Hi: datum.NewInt(40), Signature: "b"},
	}}
	if r := dp.rangeFor(datum.NewInt(-100)); r.Signature != "a" {
		t.Fatalf("below all ranges → %s, want a", r.Signature)
	}
	if r := dp.rangeFor(datum.NewInt(9999)); r.Signature != "b" {
		t.Fatalf("above all ranges → %s, want b", r.Signature)
	}
	if r := dp.rangeFor(datum.NewInt(35)); r.Signature != "b" {
		t.Fatalf("inside second range → %s, want b", r.Signature)
	}
	// Between ranges: falls through to the last (nearest-boundary policy).
	if r := dp.rangeFor(datum.NewInt(25)); r == nil {
		t.Fatal("gap value returned nil")
	}
}
