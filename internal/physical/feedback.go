package physical

import (
	"sort"
	"sync"

	"repro/internal/logical"
)

// FeedbackEntry is one (plan node, estimated rows, actual rows) observation
// recorded by an analyzed execution — the raw material of execution feedback.
type FeedbackEntry struct {
	Node   string  // operator description (Describe output)
	Est    float64 // optimizer's estimated cardinality
	Actual float64 // measured cardinality
	QError float64 // misestimation factor, QError(Est, Actual)
}

// FeedbackRing is a fixed-capacity ring buffer of estimate-vs-actual
// observations. Analyzed executions append to it; reports over the retained
// window surface the worst q-error offenders, the places where collecting
// better statistics (or abandoning the independence assumption) would pay
// off most. The ring is safe for concurrent use.
type FeedbackRing struct {
	mu   sync.Mutex
	buf  []FeedbackEntry
	next int
	full bool
}

// NewFeedbackRing returns a ring retaining the last capacity observations
// (minimum 1).
func NewFeedbackRing(capacity int) *FeedbackRing {
	if capacity < 1 {
		capacity = 1
	}
	return &FeedbackRing{buf: make([]FeedbackEntry, capacity)}
}

// Record appends one observation, evicting the oldest when full.
func (r *FeedbackRing) Record(node string, est, actual float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = FeedbackEntry{Node: node, Est: est, Actual: actual, QError: QError(est, actual)}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Len reports how many observations the ring currently retains.
func (r *FeedbackRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Entries returns the retained observations, oldest first.
func (r *FeedbackRing) Entries() []FeedbackEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]FeedbackEntry{}, r.buf[:r.next]...)
	}
	out := make([]FeedbackEntry, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// WorstOffenders returns up to k retained observations ordered by descending
// q-error — the report that tells the optimizer (or its operator) which
// estimates runtime truth contradicts hardest.
func (r *FeedbackRing) WorstOffenders(k int) []FeedbackEntry {
	entries := r.Entries()
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].QError > entries[j].QError })
	if k < len(entries) {
		entries = entries[:k]
	}
	return entries
}

// RecordPlan walks an analyzed plan and records one observation per executed
// node — the hook an analyzed execution calls at completion.
func (r *FeedbackRing) RecordPlan(p Plan, md *logical.Metadata, rm *RunMetrics) {
	if r == nil || rm == nil {
		return
	}
	var walk func(Plan)
	walk = func(n Plan) {
		if m := rm.Lookup(n); m != nil {
			est, _ := n.Estimate()
			r.Record(Describe(n, md), est, float64(m.ActualRows))
		}
		for _, c := range Children(n) {
			walk(c)
		}
	}
	walk(p)
}
