package physical

import (
	"sort"
	"sync"

	"repro/internal/logical"
)

// FeedbackEntry is one (plan node, estimated rows, actual rows) observation
// recorded by an analyzed execution — the raw material of execution feedback.
type FeedbackEntry struct {
	// Statement is the normalized statement text the observation came from.
	// Identically-shaped nodes from different statements (e.g. "project" over
	// two different tables) would otherwise alias in reports and in the
	// stats-patching path.
	Statement string
	Node      string  // operator description (Describe output)
	Est       float64 // optimizer's estimated cardinality
	Actual    float64 // measured cardinality
	QError    float64 // misestimation factor, QError(Est, Actual)
}

// FeedbackRing is a fixed-capacity ring buffer of estimate-vs-actual
// observations. Analyzed executions append to it; reports over the retained
// window surface the worst q-error offenders, the places where collecting
// better statistics (or abandoning the independence assumption) would pay
// off most. The ring is safe for concurrent use.
type FeedbackRing struct {
	mu   sync.Mutex
	buf  []FeedbackEntry
	next int
	full bool
}

// NewFeedbackRing returns a ring retaining the last capacity observations
// (minimum 1).
func NewFeedbackRing(capacity int) *FeedbackRing {
	if capacity < 1 {
		capacity = 1
	}
	return &FeedbackRing{buf: make([]FeedbackEntry, capacity)}
}

// Record appends one observation, evicting the oldest when full.
func (r *FeedbackRing) Record(node string, est, actual float64) {
	r.RecordStmt("", node, est, actual)
}

// RecordStmt is Record with the originating statement's normalized text, so
// observations from different statements never alias.
func (r *FeedbackRing) RecordStmt(stmt, node string, est, actual float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = FeedbackEntry{Statement: stmt, Node: node, Est: est, Actual: actual, QError: QError(est, actual)}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Len reports how many observations the ring currently retains.
func (r *FeedbackRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Entries returns the retained observations, oldest first.
func (r *FeedbackRing) Entries() []FeedbackEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]FeedbackEntry{}, r.buf[:r.next]...)
	}
	out := make([]FeedbackEntry, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// WorstOffenders returns up to k distinct offenders ordered by descending
// q-error — the report that tells the optimizer (or its operator) which
// estimates runtime truth contradicts hardest. Observations of the same
// (statement, node) pair across executions collapse to one entry keeping the
// maximum q-error, so a hot statement re-run many times cannot fill every
// report slot with copies of a single operator.
func (r *FeedbackRing) WorstOffenders(k int) []FeedbackEntry {
	entries := r.Entries()
	type key struct{ stmt, node string }
	best := make(map[key]FeedbackEntry, len(entries))
	order := make([]key, 0, len(entries))
	for _, e := range entries {
		kk := key{e.Statement, e.Node}
		cur, seen := best[kk]
		if !seen {
			order = append(order, kk)
		}
		if !seen || e.QError > cur.QError {
			best[kk] = e
		}
	}
	deduped := make([]FeedbackEntry, 0, len(order))
	for _, kk := range order {
		deduped = append(deduped, best[kk])
	}
	sort.SliceStable(deduped, func(i, j int) bool { return deduped[i].QError > deduped[j].QError })
	if k < len(deduped) {
		deduped = deduped[:k]
	}
	return deduped
}

// RecordPlan walks an analyzed plan and records one observation per executed
// node — the hook an analyzed execution calls at completion. stmt is the
// normalized statement text keying the observations. Nodes the execution
// never actually invoked (e.g. subtrees short-circuited to zero loops) carry
// no information — recording them as actual=0 would poison reports and
// stats-patching with bogus q-errors — so they are skipped.
func (r *FeedbackRing) RecordPlan(p Plan, md *logical.Metadata, rm *RunMetrics, stmt string) {
	if r == nil || rm == nil {
		return
	}
	var walk func(Plan)
	walk = func(n Plan) {
		if m := rm.Lookup(n); m != nil && m.Invocations > 0 {
			est, _ := n.Estimate()
			r.RecordStmt(stmt, Describe(n, md), est, float64(m.ActualRows))
		}
		for _, c := range Children(n) {
			walk(c)
		}
	}
	walk(p)
}
