package physical

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/logical"
)

// feedbackFixture builds a Project-over-TableScan plan for a fresh table of
// the given name and estimated size. Each call uses its own Metadata, so two
// fixtures produce identical Describe strings ("project") for their roots —
// the aliasing scenario the statement keying exists for.
func feedbackFixture(name string, estRows float64) (*logical.Metadata, *Project, *TableScan) {
	md := logical.NewMetadata()
	tbl := &catalog.Table{Name: name, Cols: []catalog.Column{{Name: "a", Kind: datum.KindInt}}}
	ids := md.AddTable(tbl, name)
	scan := &TableScan{
		Props: Props{Rows: estRows, Cost: estRows},
		Table: tbl, Binding: name, Cols: ids, ColOrds: []int{0},
	}
	proj := &Project{
		Props: Props{Rows: estRows, Cost: estRows},
		Input: scan,
		Items: []logical.ProjectItem{{ID: ids[0], Expr: &logical.Col{ID: ids[0]}}},
	}
	return md, proj, scan
}

// A statement re-analyzed many times must not flood the offender report:
// repeated observations of one (statement, node) pair collapse to a single
// entry carrying the worst q-error, leaving room for genuinely distinct
// offenders.
func TestWorstOffendersDedupesRepeatedStatement(t *testing.T) {
	ring := NewFeedbackRing(256)
	// One hot statement observed 50 times, worst q-error 40 (est 10, actual
	// varies up to 400).
	for i := 1; i <= 50; i++ {
		ring.RecordStmt("select * from hot", "table-scan hot", 10, float64(8*i))
	}
	// Five distinct offenders with q-errors 2..6.
	for i := 2; i <= 6; i++ {
		ring.RecordStmt("select * from cold", string(rune('a'+i)), 1, float64(i))
	}
	got := ring.WorstOffenders(10)
	if len(got) != 6 {
		t.Fatalf("WorstOffenders = %d entries, want 6 (1 deduped hot + 5 distinct): %+v", len(got), got)
	}
	if got[0].Node != "table-scan hot" || got[0].QError != 40 {
		t.Errorf("worst entry = %+v, want the hot statement at its max q-error 40", got[0])
	}
	for i := 1; i < len(got); i++ {
		if got[i].QError > got[i-1].QError {
			t.Errorf("entries not sorted by descending q-error: %+v", got)
		}
		if got[i].Node == "table-scan hot" {
			t.Errorf("hot statement appears more than once: %+v", got)
		}
	}
}

// Identically-described nodes from different statements must stay distinct
// observations: here two Project roots over tables of very different sizes
// both describe as "project", and only the statement text separates them.
func TestRecordPlanKeysByStatement(t *testing.T) {
	mdX, projX, scanX := feedbackFixture("x", 10)
	mdY, projY, scanY := feedbackFixture("y", 10)

	rmX := NewRunMetrics()
	m := rmX.Node(projX)
	m.ActualRows, m.Invocations = 1000, 1
	m = rmX.Node(scanX)
	m.ActualRows, m.Invocations = 1000, 1

	rmY := NewRunMetrics()
	m = rmY.Node(projY)
	m.ActualRows, m.Invocations = 10, 1
	m = rmY.Node(scanY)
	m.ActualRows, m.Invocations = 10, 1

	ring := NewFeedbackRing(16)
	ring.RecordPlan(projX, mdX, rmX, "select a from x")
	ring.RecordPlan(projY, mdY, rmY, "select a from y")

	if ring.Len() != 4 {
		t.Fatalf("ring has %d observations, want 4", ring.Len())
	}
	got := ring.WorstOffenders(10)
	projects := 0
	for _, e := range got {
		if e.Node == "project" {
			projects++
			switch e.Statement {
			case "select a from x":
				if e.QError != 100 {
					t.Errorf("x's project q-error = %v, want 100", e.QError)
				}
			case "select a from y":
				if e.QError != 1 {
					t.Errorf("y's project q-error = %v, want 1", e.QError)
				}
			default:
				t.Errorf("project entry with unexpected statement %q", e.Statement)
			}
		}
	}
	if projects != 2 {
		t.Fatalf("got %d project entries, want 2 (one per statement): %+v", projects, got)
	}
}

// A plan node registered by execution setup but never invoked reports
// ActualRows=0 as an artifact, not an observation; RecordPlan must skip it
// rather than record a bogus q-error.
func TestRecordPlanSkipsNeverExecutedNodes(t *testing.T) {
	md, proj, scan := feedbackFixture("t", 500)
	rm := NewRunMetrics()
	m := rm.Node(proj)
	m.ActualRows, m.Invocations = 500, 1
	// The scan was registered (Node called) but never pulled: zero
	// invocations, zero rows.
	rm.Node(scan)

	ring := NewFeedbackRing(16)
	ring.RecordPlan(proj, md, rm, "select a from t")
	if ring.Len() != 1 {
		t.Fatalf("ring has %d observations, want 1 (never-executed scan skipped)", ring.Len())
	}
	if e := ring.Entries()[0]; e.Node != "project" {
		t.Errorf("retained observation is %q, want the executed project", e.Node)
	}
}
