// Runtime metrics for EXPLAIN ANALYZE: per-operator actual row counts,
// invocation/batch counts, wall-clock time, peak buffered rows and per-worker
// row counts, confronted with the optimizer's estimates. The estimate-vs-
// actual q-error per node is the execution-feedback signal industrial
// optimizers use to survive cardinality misestimation — the dominant source
// of bad plans per the survey literature the paper's §5 anticipates.
package physical

import (
	"fmt"
	"strings"

	"repro/internal/logical"
)

// NodeMetrics aggregates the measured runtime behaviour of one plan node
// over an execution. Counters accumulate across invocations (an inner input
// re-materialized twice reports the total).
type NodeMetrics struct {
	// ActualRows is the number of rows the node emitted.
	ActualRows int64
	// Invocations counts how many times the node was executed.
	Invocations int64
	// Batches counts morsel batches fanned out by the parallel paths
	// (0 means the node ran serially).
	Batches int64
	// Vectorized reports that the node ran on the columnar batch path
	// (typed kernels over column vectors) rather than row at a time.
	Vectorized bool
	// WallNanos is inclusive wall-clock time: the node plus its inputs.
	WallNanos int64
	// PeakMemRows is the peak number of buffered rows the node held at once
	// (hash-table build entries, group-table entries, sort buffers).
	PeakMemRows int64
	// PeakMemBytes is the peak working memory the node reserved from the
	// query's memory account, in modeled bytes.
	PeakMemBytes int64
	// Spills counts temp files (sort runs, join/aggregation partitions) the
	// node wrote when its working memory exceeded the budget.
	Spills int64
	// SpillBytes is the total bytes written to those temp files.
	SpillBytes int64
	// WorkerRows are per-worker processed-row counts for parallel operators
	// (per-partition row counts for Exchange) — non-uniform values expose
	// partition skew.
	WorkerRows []int64
	// SegmentsRead / SegmentsPruned count disk-backed columnar segments a
	// scan actually opened vs eliminated by zone maps without touching disk.
	// Both stay zero for in-memory tables.
	SegmentsRead   int64
	SegmentsPruned int64
	// BytesRead is real segment-file bytes read from disk (cache misses
	// only — a warm scan reads zero).
	BytesRead int64
	// BlocksDict / BlocksRLE / BlocksPlain count column blocks the node
	// decoded from disk by representation: dictionary-encoded, run-length
	// encoded, and plain typed/boxed. Cache hits add nothing, like BytesRead.
	BlocksDict  int64
	BlocksRLE   int64
	BlocksPlain int64
}

// NoteMem records a buffered-rows observation, keeping the peak.
func (m *NodeMetrics) NoteMem(n int64) {
	if n > m.PeakMemRows {
		m.PeakMemRows = n
	}
}

// NoteMemBytes records a reserved-working-memory observation, keeping the peak.
func (m *NodeMetrics) NoteMemBytes(n int64) {
	if n > m.PeakMemBytes {
		m.PeakMemBytes = n
	}
}

// NoteSpill accumulates spill activity: files temp files holding bytes bytes.
func (m *NodeMetrics) NoteSpill(files, bytes int64) {
	m.Spills += files
	m.SpillBytes += bytes
}

// AddWorkerRows accumulates rows processed by worker slot w.
func (m *NodeMetrics) AddWorkerRows(w int, n int64) {
	for len(m.WorkerRows) <= w {
		m.WorkerRows = append(m.WorkerRows, 0)
	}
	m.WorkerRows[w] += n
}

// RunMetrics is the collected metrics tree of one execution, keyed by plan
// node identity. It is written by the executor's coordinating goroutine only
// (workers report through per-worker contexts merged at barriers), so it
// needs no locking.
type RunMetrics struct {
	nodes map[Plan]*NodeMetrics
}

// NewRunMetrics returns an empty metrics collection.
func NewRunMetrics() *RunMetrics {
	return &RunMetrics{nodes: make(map[Plan]*NodeMetrics)}
}

// Node returns the metrics for p, creating them on first use.
func (r *RunMetrics) Node(p Plan) *NodeMetrics {
	m, ok := r.nodes[p]
	if !ok {
		m = &NodeMetrics{}
		r.nodes[p] = m
	}
	return m
}

// Lookup returns the metrics for p, or nil when p never executed.
func (r *RunMetrics) Lookup(p Plan) *NodeMetrics {
	if r == nil {
		return nil
	}
	return r.nodes[p]
}

// QError is the multiplicative misestimation factor between an estimated and
// an actual cardinality: max(est/actual, actual/est), with both sides floored
// at one row so empty results yield finite factors. 1.0 is a perfect
// estimate; the factor is symmetric in over- and underestimation.
func QError(est, actual float64) float64 {
	if est < 1 {
		est = 1
	}
	if actual < 1 {
		actual = 1
	}
	if est > actual {
		return est / actual
	}
	return actual / est
}

// FormatAnalyze renders the plan annotated with runtime metrics — the body
// of EXPLAIN ANALYZE output. Each node shows the optimizer's estimates next
// to the measured truth plus its q-error; parallel operators additionally
// show per-worker row counts.
func FormatAnalyze(p Plan, md *logical.Metadata, rm *RunMetrics) string {
	var sb strings.Builder
	formatAnalyzeNode(&sb, p, md, rm, 0)
	return sb.String()
}

func formatAnalyzeNode(sb *strings.Builder, p Plan, md *logical.Metadata, rm *RunMetrics, depth int) {
	indent := strings.Repeat("  ", depth)
	rows, cost := p.Estimate()
	line := Describe(p, md)
	fmt.Fprintf(sb, "%s%s  (est_rows=%.0f cost=%.1f)", indent, line, rows, cost)
	m := rm.Lookup(p)
	if m == nil {
		sb.WriteString("  (never executed)\n")
	} else {
		children := Children(p)
		self := m.WallNanos
		for _, c := range children {
			if cm := rm.Lookup(c); cm != nil {
				self -= cm.WallNanos
			}
		}
		if self < 0 {
			self = 0
		}
		fmt.Fprintf(sb, "  (actual_rows=%d q_err=%.2f time=%.3fms",
			m.ActualRows, QError(rows, float64(m.ActualRows)), float64(self)/1e6)
		if m.Invocations > 1 {
			fmt.Fprintf(sb, " loops=%d", m.Invocations)
		}
		if m.Batches > 0 {
			fmt.Fprintf(sb, " batches=%d", m.Batches)
		}
		if m.Vectorized {
			sb.WriteString(" vectorized=true")
		}
		if m.PeakMemRows > 0 {
			fmt.Fprintf(sb, " mem_rows=%d", m.PeakMemRows)
		}
		if m.PeakMemBytes > 0 {
			fmt.Fprintf(sb, " mem_bytes=%d", m.PeakMemBytes)
		}
		if m.Spills > 0 {
			fmt.Fprintf(sb, " spills=%d spill_bytes=%d", m.Spills, m.SpillBytes)
		}
		if m.SegmentsRead > 0 || m.SegmentsPruned > 0 {
			fmt.Fprintf(sb, " segments_read=%d segments_pruned=%d", m.SegmentsRead, m.SegmentsPruned)
		}
		if m.BytesRead > 0 {
			fmt.Fprintf(sb, " bytes_read=%d", m.BytesRead)
		}
		if m.BlocksDict > 0 || m.BlocksRLE > 0 || m.BlocksPlain > 0 {
			fmt.Fprintf(sb, " blocks_dict=%d blocks_rle=%d blocks_plain=%d",
				m.BlocksDict, m.BlocksRLE, m.BlocksPlain)
		}
		if len(m.WorkerRows) > 0 {
			parts := make([]string, len(m.WorkerRows))
			for i, n := range m.WorkerRows {
				parts[i] = fmt.Sprintf("%d", n)
			}
			fmt.Fprintf(sb, " worker_rows=[%s]", strings.Join(parts, " "))
		}
		sb.WriteString(")\n")
	}
	for _, c := range Children(p) {
		formatAnalyzeNode(sb, c, md, rm, depth+1)
	}
}
