// Package physical defines physical operator trees — the execution plans of
// Figure 1 of the paper. Each node fixes a concrete output column layout, an
// estimated cardinality and a cumulative estimated cost, and declares the
// ordering (physical property, §3) its output provides.
package physical

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/logical"
)

// Plan is a physical operator tree node.
type Plan interface {
	phys()
	// Columns returns the output layout: column IDs in row order.
	Columns() []logical.ColumnID
	// Ordering returns the ordering the output is guaranteed to have.
	Ordering() logical.Ordering
	// Estimate returns (cardinality, cumulative cost).
	Estimate() (rows, cost float64)
}

// Props carries the estimates every node stores.
type Props struct {
	Rows float64 // estimated output cardinality
	Cost float64 // estimated cumulative cost of the subtree
}

// Estimate implements part of Plan.
func (p Props) Estimate() (float64, float64) { return p.Rows, p.Cost }

// TableScan reads a heap sequentially.
type TableScan struct {
	Props
	Table   *catalog.Table
	Binding string
	Cols    []logical.ColumnID // layout; parallel to ColOrds
	ColOrds []int              // base-table ordinals for each output column
	// Filter is applied during the scan (pushed-down predicates).
	Filter []logical.Scalar
}

func (*TableScan) phys() {}

// Columns returns the scan layout.
func (t *TableScan) Columns() []logical.ColumnID { return t.Cols }

// Ordering: a heap scan provides the clustered index order if one exists.
func (t *TableScan) Ordering() logical.Ordering {
	ci := t.Table.ClusteredIndex()
	if ci == nil {
		return nil
	}
	var ord logical.Ordering
	for _, baseOrd := range ci.Cols {
		id, ok := t.colForOrd(baseOrd)
		if !ok {
			return ord
		}
		ord = append(ord, logical.OrderSpec{Col: id})
	}
	return ord
}

func (t *TableScan) colForOrd(ord int) (logical.ColumnID, bool) {
	for i, o := range t.ColOrds {
		if o == ord {
			return t.Cols[i], true
		}
	}
	return 0, false
}

// IndexScan seeks/scans an index and fetches matching rows.
type IndexScan struct {
	Props
	Table   *catalog.Table
	Index   *catalog.Index
	Binding string
	Cols    []logical.ColumnID
	ColOrds []int
	// EqKey, when non-nil, restricts the leading index column(s) to these
	// constant values.
	EqKey datum.Row
	// EqKeyParams, when non-nil, parallels EqKey: entry i is the 1-based
	// statement parameter whose binding produced EqKey[i], or 0 for a plain
	// constant. BindParams substitutes fresh bindings through it.
	EqKeyParams []int
	// Lo/Hi bound the column after the equality prefix (or the leading
	// column when EqKey is empty); NULL means unbounded.
	Lo, Hi         datum.D
	LoIncl, HiIncl bool
	// LoParam/HiParam are the parameter ordinals behind Lo/Hi (0 = constant).
	LoParam, HiParam int
	// Filter holds residual predicates evaluated after the fetch.
	Filter []logical.Scalar
}

func (*IndexScan) phys() {}

// Columns returns the output layout.
func (i *IndexScan) Columns() []logical.ColumnID { return i.Cols }

// Ordering: index order on the index columns (ascending).
func (i *IndexScan) Ordering() logical.Ordering {
	var ord logical.Ordering
	for _, baseOrd := range i.Index.Cols {
		id, ok := i.colForOrd(baseOrd)
		if !ok {
			return ord
		}
		ord = append(ord, logical.OrderSpec{Col: id})
	}
	return ord
}

func (i *IndexScan) colForOrd(ord int) (logical.ColumnID, bool) {
	for j, o := range i.ColOrds {
		if o == ord {
			return i.Cols[j], true
		}
	}
	return 0, false
}

// ValuesOp produces literal rows.
type ValuesOp struct {
	Props
	Cols []logical.ColumnID
	Rows [][]logical.Scalar
}

func (*ValuesOp) phys() {}

// Columns returns the layout.
func (v *ValuesOp) Columns() []logical.ColumnID { return v.Cols }

// Ordering of literal rows is unspecified.
func (v *ValuesOp) Ordering() logical.Ordering { return nil }

// Filter drops rows failing its predicates.
type Filter struct {
	Props
	Input Plan
	Preds []logical.Scalar
}

func (*Filter) phys() {}

// Columns passes through the input layout.
func (f *Filter) Columns() []logical.ColumnID { return f.Input.Columns() }

// Ordering passes through.
func (f *Filter) Ordering() logical.Ordering { return f.Input.Ordering() }

// Project computes a new layout.
type Project struct {
	Props
	Input Plan
	Items []logical.ProjectItem
}

func (*Project) phys() {}

// Columns returns the projected layout.
func (p *Project) Columns() []logical.ColumnID {
	out := make([]logical.ColumnID, len(p.Items))
	for i, it := range p.Items {
		out[i] = it.ID
	}
	return out
}

// Ordering is preserved for the passthrough prefix of the input ordering.
func (p *Project) Ordering() logical.Ordering {
	in := p.Input.Ordering()
	keep := map[logical.ColumnID]bool{}
	for _, it := range p.Items {
		if c, ok := it.Expr.(*logical.Col); ok && c.ID == it.ID {
			keep[it.ID] = true
		}
	}
	var out logical.Ordering
	for _, s := range in {
		if !keep[s.Col] {
			break
		}
		out = append(out, s)
	}
	return out
}

// Sort orders its input — the enforcer operator of §6.2.
type Sort struct {
	Props
	Input Plan
	By    logical.Ordering
}

func (*Sort) phys() {}

// Columns passes through.
func (s *Sort) Columns() []logical.ColumnID { return s.Input.Columns() }

// Ordering is exactly the sort key.
func (s *Sort) Ordering() logical.Ordering { return s.By }

// JoinSide layouts combine left then right for right-preserving kinds.
func joinColumns(kind logical.JoinKind, left, right Plan) []logical.ColumnID {
	cols := append([]logical.ColumnID{}, left.Columns()...)
	if kind.PreservesRight() {
		cols = append(cols, right.Columns()...)
	}
	return cols
}

// NLJoin is the (block) nested-loop join.
type NLJoin struct {
	Props
	Kind  logical.JoinKind
	Left  Plan
	Right Plan
	On    []logical.Scalar
}

func (*NLJoin) phys() {}

// Columns is left ⧺ right (kind permitting).
func (j *NLJoin) Columns() []logical.ColumnID { return joinColumns(j.Kind, j.Left, j.Right) }

// Ordering: the outer (left) input's order survives.
func (j *NLJoin) Ordering() logical.Ordering { return j.Left.Ordering() }

// INLJoin is the index nested-loop join: for each outer row, seek the inner
// table's index with the outer key.
type INLJoin struct {
	Props
	Kind  logical.JoinKind
	Left  Plan
	Table *catalog.Table
	Index *catalog.Index
	// Binding and Cols/ColOrds describe the inner occurrence layout.
	Binding string
	Cols    []logical.ColumnID
	ColOrds []int
	// LeftKeys are outer columns equated with the index's leading columns.
	LeftKeys []logical.ColumnID
	// ExtraOn holds residual join predicates.
	ExtraOn []logical.Scalar
}

func (*INLJoin) phys() {}

// Columns is left ⧺ inner columns (kind permitting).
func (j *INLJoin) Columns() []logical.ColumnID {
	cols := append([]logical.ColumnID{}, j.Left.Columns()...)
	if j.Kind.PreservesRight() {
		cols = append(cols, j.Cols...)
	}
	return cols
}

// Ordering: outer order survives.
func (j *INLJoin) Ordering() logical.Ordering { return j.Left.Ordering() }

// MergeJoin joins two inputs sorted on their keys.
type MergeJoin struct {
	Props
	Kind      logical.JoinKind
	Left      Plan
	Right     Plan
	LeftKeys  []logical.ColumnID
	RightKeys []logical.ColumnID
	ExtraOn   []logical.Scalar
}

func (*MergeJoin) phys() {}

// Columns is left ⧺ right (kind permitting).
func (j *MergeJoin) Columns() []logical.ColumnID { return joinColumns(j.Kind, j.Left, j.Right) }

// Ordering: merge output is ordered on the left keys.
func (j *MergeJoin) Ordering() logical.Ordering {
	var out logical.Ordering
	for _, k := range j.LeftKeys {
		out = append(out, logical.OrderSpec{Col: k})
	}
	return out
}

// HashJoin builds a hash table on the right input.
type HashJoin struct {
	Props
	Kind      logical.JoinKind
	Left      Plan
	Right     Plan
	LeftKeys  []logical.ColumnID
	RightKeys []logical.ColumnID
	ExtraOn   []logical.Scalar
}

func (*HashJoin) phys() {}

// Columns is left ⧺ right (kind permitting).
func (j *HashJoin) Columns() []logical.ColumnID { return joinColumns(j.Kind, j.Left, j.Right) }

// Ordering: probe-side order survives (streaming probe).
func (j *HashJoin) Ordering() logical.Ordering { return j.Left.Ordering() }

// HashGroupBy aggregates with a hash table (no input order required).
type HashGroupBy struct {
	Props
	Input     Plan
	GroupCols []logical.ColumnID
	Aggs      []logical.AggItem
}

func (*HashGroupBy) phys() {}

// Columns: group columns then aggregates.
func (g *HashGroupBy) Columns() []logical.ColumnID {
	out := append([]logical.ColumnID{}, g.GroupCols...)
	for _, a := range g.Aggs {
		out = append(out, a.ID)
	}
	return out
}

// Ordering: hash output is unordered.
func (g *HashGroupBy) Ordering() logical.Ordering { return nil }

// StreamGroupBy aggregates an input already sorted on the group columns.
type StreamGroupBy struct {
	Props
	Input     Plan
	GroupCols []logical.ColumnID
	Aggs      []logical.AggItem
}

func (*StreamGroupBy) phys() {}

// Columns: group columns then aggregates.
func (g *StreamGroupBy) Columns() []logical.ColumnID {
	out := append([]logical.ColumnID{}, g.GroupCols...)
	for _, a := range g.Aggs {
		out = append(out, a.ID)
	}
	return out
}

// Ordering: output stays ordered on the group columns.
func (g *StreamGroupBy) Ordering() logical.Ordering {
	var out logical.Ordering
	for _, c := range g.GroupCols {
		out = append(out, logical.OrderSpec{Col: c})
	}
	return out
}

// LimitOp returns the first N rows.
type LimitOp struct {
	Props
	Input Plan
	N     int64
}

func (*LimitOp) phys() {}

// Columns passes through.
func (l *LimitOp) Columns() []logical.ColumnID { return l.Input.Columns() }

// Ordering passes through.
func (l *LimitOp) Ordering() logical.Ordering { return l.Input.Ordering() }

// UnionAll concatenates two aligned inputs.
type UnionAll struct {
	Props
	Left, Right         Plan
	LeftCols, RightCols []logical.ColumnID
	Cols                []logical.ColumnID
}

func (*UnionAll) phys() {}

// Columns returns the union layout.
func (u *UnionAll) Columns() []logical.ColumnID { return u.Cols }

// Ordering: concatenation destroys order.
func (u *UnionAll) Ordering() logical.Ordering { return nil }

// Exchange models a parallel repartitioning boundary (§7.1): its input runs
// partitioned Degree ways on PartitionCols and is re-merged or re-hashed.
type Exchange struct {
	Props
	Input Plan
	// PartitionCols is the hash-partitioning key (empty = round robin).
	PartitionCols []logical.ColumnID
	Degree        int
	// MergeOrdering, when set, merges sorted streams preserving the order.
	MergeOrdering logical.Ordering
}

func (*Exchange) phys() {}

// Columns passes through.
func (e *Exchange) Columns() []logical.ColumnID { return e.Input.Columns() }

// Ordering: only preserved when merging sorted streams.
func (e *Exchange) Ordering() logical.Ordering { return e.MergeOrdering }

// Children returns the plan children of p.
func Children(p Plan) []Plan {
	switch t := p.(type) {
	case *TableScan, *IndexScan, *ValuesOp:
		return nil
	case *Filter:
		return []Plan{t.Input}
	case *Project:
		return []Plan{t.Input}
	case *Sort:
		return []Plan{t.Input}
	case *NLJoin:
		return []Plan{t.Left, t.Right}
	case *INLJoin:
		return []Plan{t.Left}
	case *MergeJoin:
		return []Plan{t.Left, t.Right}
	case *HashJoin:
		return []Plan{t.Left, t.Right}
	case *HashGroupBy:
		return []Plan{t.Input}
	case *StreamGroupBy:
		return []Plan{t.Input}
	case *LimitOp:
		return []Plan{t.Input}
	case *Exchange:
		return []Plan{t.Input}
	case *UnionAll:
		return []Plan{t.Left, t.Right}
	}
	panic(fmt.Sprintf("physical: unknown plan %T", p))
}

// Format renders the plan tree for EXPLAIN output.
func Format(p Plan, md *logical.Metadata) string {
	var sb strings.Builder
	formatPlan(&sb, p, md, 0)
	return sb.String()
}

func formatPlan(sb *strings.Builder, p Plan, md *logical.Metadata, depth int) {
	indent := strings.Repeat("  ", depth)
	rows, cost := p.Estimate()
	line := Describe(p, md)
	fmt.Fprintf(sb, "%s%s  (rows=%.0f cost=%.1f)\n", indent, line, rows, cost)
	for _, c := range Children(p) {
		formatPlan(sb, c, md, depth+1)
	}
}

// Describe renders one plan node as a single line (operator name plus its
// salient arguments) — shared by EXPLAIN, EXPLAIN ANALYZE and the feedback
// report.
func Describe(p Plan, md *logical.Metadata) string {
	switch t := p.(type) {
	case *TableScan:
		s := fmt.Sprintf("table-scan %s", t.Table.Name)
		if len(t.Filter) > 0 {
			s += " filter=" + formatPreds(t.Filter, md)
		}
		return s
	case *IndexScan:
		s := fmt.Sprintf("index-scan %s.%s", t.Table.Name, t.Index.Name)
		if len(t.EqKey) > 0 {
			s += fmt.Sprintf(" eq=%s", t.EqKey)
		}
		if !t.Lo.IsNull() || !t.Hi.IsNull() {
			s += fmt.Sprintf(" range=[%s,%s]", t.Lo, t.Hi)
		}
		if len(t.Filter) > 0 {
			s += " filter=" + formatPreds(t.Filter, md)
		}
		return s
	case *ValuesOp:
		return fmt.Sprintf("values (%d rows)", len(t.Rows))
	case *Filter:
		return "filter " + formatPreds(t.Preds, md)
	case *Project:
		return "project"
	case *Sort:
		return "sort " + t.By.String()
	case *NLJoin:
		return fmt.Sprintf("nested-loop-%s %s", t.Kind, formatPreds(t.On, md))
	case *INLJoin:
		return fmt.Sprintf("index-nl-%s %s.%s", t.Kind, t.Table.Name, t.Index.Name)
	case *MergeJoin:
		return fmt.Sprintf("merge-%s", t.Kind)
	case *HashJoin:
		return fmt.Sprintf("hash-%s", t.Kind)
	case *HashGroupBy:
		return "hash-group-by"
	case *StreamGroupBy:
		return "stream-group-by"
	case *LimitOp:
		return fmt.Sprintf("limit %d", t.N)
	case *Exchange:
		s := fmt.Sprintf("exchange degree=%d", t.Degree)
		if len(t.PartitionCols) > 0 {
			parts := make([]string, len(t.PartitionCols))
			for i, c := range t.PartitionCols {
				parts[i] = logical.FormatScalar(&logical.Col{ID: c}, md)
			}
			s += " hash(" + strings.Join(parts, ",") + ")"
		} else {
			s += " round-robin"
		}
		if len(t.MergeOrdering) > 0 {
			s += " merge " + t.MergeOrdering.String()
		}
		return s
	case *UnionAll:
		return "union-all"
	}
	return fmt.Sprintf("%T", p)
}

func formatPreds(preds []logical.Scalar, md *logical.Metadata) string {
	if len(preds) == 0 {
		return "[]"
	}
	parts := make([]string, len(preds))
	for i, f := range preds {
		parts[i] = logical.FormatScalar(f, md)
	}
	return "[" + strings.Join(parts, " AND ") + "]"
}
