package physical

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/logical"
)

func fixturePlans() (md *logical.Metadata, scan *TableScan, ixScan *IndexScan) {
	md = logical.NewMetadata()
	tbl := &catalog.Table{
		Name: "t",
		Cols: []catalog.Column{
			{Name: "a", Kind: datum.KindInt},
			{Name: "b", Kind: datum.KindInt},
		},
		Indexes: []*catalog.Index{
			{Name: "t_a", Cols: []int{0}, Clustered: true},
			{Name: "t_b", Cols: []int{1}},
		},
	}
	ids := md.AddTable(tbl, "t")
	scan = &TableScan{
		Props: Props{Rows: 100, Cost: 10},
		Table: tbl, Binding: "t", Cols: ids, ColOrds: []int{0, 1},
	}
	ixScan = &IndexScan{
		Props: Props{Rows: 5, Cost: 2},
		Table: tbl, Index: tbl.Indexes[1], Binding: "t",
		Cols: ids, ColOrds: []int{0, 1},
		EqKey: datum.Row{datum.NewInt(7)},
	}
	return md, scan, ixScan
}

func TestOrderingProperties(t *testing.T) {
	_, scan, ixScan := fixturePlans()
	// Heap scan carries the clustered index order (column a).
	ord := scan.Ordering()
	if len(ord) != 1 || ord[0].Col != scan.Cols[0] {
		t.Errorf("clustered scan ordering = %v", ord)
	}
	// Index scan carries the index order (column b).
	iord := ixScan.Ordering()
	if len(iord) != 1 || iord[0].Col != scan.Cols[1] {
		t.Errorf("index scan ordering = %v", iord)
	}
	// Sort declares its key; filter passes through; hash group-by drops it.
	s := &Sort{Input: scan, By: logical.Ordering{{Col: scan.Cols[1], Desc: true}}}
	if s.Ordering().Key() != "-"+itoa(int(scan.Cols[1])) {
		t.Errorf("sort ordering = %v", s.Ordering())
	}
	f := &Filter{Input: s}
	if f.Ordering().Key() != s.Ordering().Key() {
		t.Error("filter should preserve ordering")
	}
	g := &HashGroupBy{Input: s, GroupCols: []logical.ColumnID{scan.Cols[0]}}
	if len(g.Ordering()) != 0 {
		t.Error("hash group-by output is unordered")
	}
	sg := &StreamGroupBy{Input: s, GroupCols: []logical.ColumnID{scan.Cols[0]}}
	if len(sg.Ordering()) != 1 {
		t.Error("stream group-by preserves group order")
	}
}

func itoa(v int) string {
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + itoa(v%10)
}

func TestProjectOrderingPrefix(t *testing.T) {
	_, scan, _ := fixturePlans()
	// Project keeps only column b: the clustered (a) ordering is lost.
	p := &Project{Input: scan, Items: []logical.ProjectItem{
		{ID: scan.Cols[1], Expr: &logical.Col{ID: scan.Cols[1]}},
	}}
	if len(p.Ordering()) != 0 {
		t.Errorf("projecting away the ordering column must drop the order, got %v", p.Ordering())
	}
	// Passthrough of the ordering column keeps it.
	p2 := &Project{Input: scan, Items: []logical.ProjectItem{
		{ID: scan.Cols[0], Expr: &logical.Col{ID: scan.Cols[0]}},
	}}
	if len(p2.Ordering()) != 1 {
		t.Error("passthrough of ordered column should keep the order")
	}
}

func TestJoinColumnsAndChildren(t *testing.T) {
	_, scan, ixScan := fixturePlans()
	for _, p := range []Plan{
		&NLJoin{Kind: logical.InnerJoin, Left: scan, Right: ixScan},
		&HashJoin{Kind: logical.SemiJoin, Left: scan, Right: ixScan},
		&MergeJoin{Kind: logical.LeftOuterJoin, Left: scan, Right: ixScan,
			LeftKeys: []logical.ColumnID{scan.Cols[0]}, RightKeys: []logical.ColumnID{ixScan.Cols[0]}},
	} {
		cols := p.Columns()
		switch j := p.(type) {
		case *HashJoin:
			if j.Kind == logical.SemiJoin && len(cols) != 2 {
				t.Errorf("semijoin columns = %d, want left only", len(cols))
			}
		default:
			if len(cols) != 4 {
				t.Errorf("%T columns = %d, want 4", p, len(cols))
			}
			_ = j
		}
		if len(Children(p)) != 2 {
			t.Errorf("%T children", p)
		}
	}
	inl := &INLJoin{Kind: logical.InnerJoin, Left: scan, Table: ixScan.Table,
		Index: ixScan.Index, Cols: ixScan.Cols, ColOrds: ixScan.ColOrds}
	if len(inl.Columns()) != 4 || len(Children(inl)) != 1 {
		t.Error("INL join shape wrong")
	}
	mj := &MergeJoin{Left: scan, Right: ixScan, LeftKeys: []logical.ColumnID{scan.Cols[0]}}
	if len(mj.Ordering()) != 1 {
		t.Error("merge join output ordered on left keys")
	}
}

func TestFormatIncludesEstimates(t *testing.T) {
	md, scan, ixScan := fixturePlans()
	plan := &NLJoin{
		Props: Props{Rows: 42, Cost: 99.5},
		Kind:  logical.InnerJoin, Left: scan, Right: ixScan,
		On: []logical.Scalar{&logical.Cmp{Op: logical.CmpEq,
			L: &logical.Col{ID: scan.Cols[0]}, R: &logical.Col{ID: ixScan.Cols[1]}}},
	}
	out := Format(plan, md)
	for _, frag := range []string{"nested-loop", "rows=42", "cost=99.5", "table-scan t", "index-scan t.t_b", "eq=(7)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Format missing %q:\n%s", frag, out)
		}
	}
}

func TestExchangeAndLimit(t *testing.T) {
	_, scan, _ := fixturePlans()
	ex := &Exchange{Input: scan, Degree: 4, MergeOrdering: logical.Ordering{{Col: scan.Cols[0]}}}
	if len(ex.Ordering()) != 1 {
		t.Error("merging exchange preserves order")
	}
	ex2 := &Exchange{Input: scan, Degree: 4}
	if len(ex2.Ordering()) != 0 {
		t.Error("hash exchange destroys order")
	}
	l := &LimitOp{Input: scan, N: 5}
	if len(l.Columns()) != 2 || len(l.Ordering()) != 1 {
		t.Error("limit passthrough wrong")
	}
	v := &ValuesOp{Cols: []logical.ColumnID{scan.Cols[0]}}
	if v.Ordering() != nil || len(v.Columns()) != 1 {
		t.Error("values op wrong")
	}
}
