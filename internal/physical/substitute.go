package physical

import (
	"repro/internal/datum"
	"repro/internal/logical"
)

// BindParams returns a copy of p with every parameter-tagged constant
// replaced by its fresh binding: binds[n-1] substitutes for parameter $n in
// scalars (filters, join conditions, projections, aggregate arguments) and in
// index-scan key fields (EqKey/Lo/Hi threaded through EqKeyParams and
// Lo/HiParam). The input plan is never mutated — the copy shares only
// immutable state (catalog pointers, column layouts, estimates) — so one
// cached plan can be re-bound and executed by many goroutines concurrently.
// Ordinals without a binding (n > len(binds)) keep their probe value.
func BindParams(p Plan, binds []datum.D) Plan {
	if len(binds) == 0 {
		return p
	}
	b := binder(binds)
	return b.plan(p)
}

type binder []datum.D

func (b binder) datum(d datum.D, param int) datum.D {
	if param >= 1 && param <= len(b) {
		return b[param-1]
	}
	return d
}

func (b binder) scalar(s logical.Scalar) logical.Scalar {
	return logical.RewriteScalar(s, func(sc logical.Scalar) logical.Scalar {
		if k, ok := sc.(*logical.Const); ok && k.Param >= 1 && k.Param <= len(b) {
			return &logical.Const{Val: b[k.Param-1], Param: k.Param}
		}
		return sc
	})
}

func (b binder) scalars(ss []logical.Scalar) []logical.Scalar {
	if ss == nil {
		return nil
	}
	out := make([]logical.Scalar, len(ss))
	for i, s := range ss {
		out[i] = b.scalar(s)
	}
	return out
}

func (b binder) aggs(as []logical.AggItem) []logical.AggItem {
	if as == nil {
		return nil
	}
	out := make([]logical.AggItem, len(as))
	for i, a := range as {
		out[i] = a
		if a.Arg != nil {
			out[i].Arg = b.scalar(a.Arg)
		}
	}
	return out
}

func (b binder) plan(p Plan) Plan {
	switch t := p.(type) {
	case *TableScan:
		cp := *t
		cp.Filter = b.scalars(t.Filter)
		return &cp
	case *IndexScan:
		cp := *t
		cp.Filter = b.scalars(t.Filter)
		if len(t.EqKeyParams) > 0 {
			cp.EqKey = append(datum.Row{}, t.EqKey...)
			for i, ord := range t.EqKeyParams {
				if i < len(cp.EqKey) {
					cp.EqKey[i] = b.datum(cp.EqKey[i], ord)
				}
			}
		}
		cp.Lo = b.datum(t.Lo, t.LoParam)
		cp.Hi = b.datum(t.Hi, t.HiParam)
		return &cp
	case *ValuesOp:
		cp := *t
		if t.Rows != nil {
			rows := make([][]logical.Scalar, len(t.Rows))
			for i, r := range t.Rows {
				rows[i] = b.scalars(r)
			}
			cp.Rows = rows
		}
		return &cp
	case *Filter:
		cp := *t
		cp.Input = b.plan(t.Input)
		cp.Preds = b.scalars(t.Preds)
		return &cp
	case *Project:
		cp := *t
		cp.Input = b.plan(t.Input)
		items := make([]logical.ProjectItem, len(t.Items))
		for i, it := range t.Items {
			items[i] = logical.ProjectItem{ID: it.ID, Expr: b.scalar(it.Expr)}
		}
		cp.Items = items
		return &cp
	case *Sort:
		cp := *t
		cp.Input = b.plan(t.Input)
		return &cp
	case *NLJoin:
		cp := *t
		cp.Left = b.plan(t.Left)
		cp.Right = b.plan(t.Right)
		cp.On = b.scalars(t.On)
		return &cp
	case *INLJoin:
		cp := *t
		cp.Left = b.plan(t.Left)
		cp.ExtraOn = b.scalars(t.ExtraOn)
		return &cp
	case *HashJoin:
		cp := *t
		cp.Left = b.plan(t.Left)
		cp.Right = b.plan(t.Right)
		cp.ExtraOn = b.scalars(t.ExtraOn)
		return &cp
	case *MergeJoin:
		cp := *t
		cp.Left = b.plan(t.Left)
		cp.Right = b.plan(t.Right)
		cp.ExtraOn = b.scalars(t.ExtraOn)
		return &cp
	case *HashGroupBy:
		cp := *t
		cp.Input = b.plan(t.Input)
		cp.Aggs = b.aggs(t.Aggs)
		return &cp
	case *StreamGroupBy:
		cp := *t
		cp.Input = b.plan(t.Input)
		cp.Aggs = b.aggs(t.Aggs)
		return &cp
	case *LimitOp:
		cp := *t
		cp.Input = b.plan(t.Input)
		return &cp
	case *UnionAll:
		cp := *t
		cp.Left = b.plan(t.Left)
		cp.Right = b.plan(t.Right)
		return &cp
	case *Exchange:
		cp := *t
		cp.Input = b.plan(t.Input)
		return &cp
	}
	return p
}

// HasSubqueryScalar reports whether any scalar anywhere in the plan contains
// a subquery. Subquery scalars embed logical subplans the parameter binder
// does not descend into, so plans containing them are not eligible for the
// prepared-statement plan cache (the engine re-optimizes those per execute).
func HasSubqueryScalar(p Plan) bool {
	found := false
	var walk func(Plan)
	check := func(ss ...logical.Scalar) {
		for _, s := range ss {
			if s != nil && logical.HasSubquery(s) {
				found = true
			}
		}
	}
	walk = func(p Plan) {
		if found || p == nil {
			return
		}
		switch t := p.(type) {
		case *TableScan:
			check(t.Filter...)
		case *IndexScan:
			check(t.Filter...)
		case *ValuesOp:
			for _, r := range t.Rows {
				check(r...)
			}
		case *Filter:
			check(t.Preds...)
		case *Project:
			for _, it := range t.Items {
				check(it.Expr)
			}
		case *NLJoin:
			check(t.On...)
		case *INLJoin:
			check(t.ExtraOn...)
		case *HashJoin:
			check(t.ExtraOn...)
		case *MergeJoin:
			check(t.ExtraOn...)
		case *HashGroupBy:
			for _, a := range t.Aggs {
				check(a.Arg)
			}
		case *StreamGroupBy:
			for _, a := range t.Aggs {
				check(a.Arg)
			}
		}
		for _, c := range Children(p) {
			walk(c)
		}
	}
	walk(p)
	return found
}
