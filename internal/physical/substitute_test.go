package physical

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/logical"
)

// paramPlan builds Filter($1 < col) over IndexScan(eq=[$1], lo=$2) — every
// substitution site in one small tree.
func paramPlan() (*Filter, *IndexScan) {
	tab := &catalog.Table{Name: "t", Cols: []catalog.Column{{Name: "a", Kind: datum.KindInt}}}
	ix := &catalog.Index{Name: "t_a", Cols: []int{0}}
	scan := &IndexScan{
		Table: tab, Index: ix,
		Cols: []logical.ColumnID{1}, ColOrds: []int{0},
		EqKey: datum.Row{datum.NewInt(10)}, EqKeyParams: []int{1},
		Lo: datum.NewInt(20), LoParam: 2, LoIncl: true,
		Filter: []logical.Scalar{
			&logical.Cmp{Op: logical.CmpGt, L: &logical.Col{ID: 1}, R: &logical.Const{Val: datum.NewInt(10), Param: 1}},
		},
	}
	f := &Filter{
		Input: scan,
		Preds: []logical.Scalar{
			&logical.Cmp{Op: logical.CmpLt, L: &logical.Const{Val: datum.NewInt(20), Param: 2}, R: &logical.Col{ID: 1}},
		},
	}
	return f, scan
}

func TestBindParamsSubstitutes(t *testing.T) {
	f, _ := paramPlan()
	bound := BindParams(f, []datum.D{datum.NewInt(77), datum.NewInt(88)}).(*Filter)
	scan := bound.Input.(*IndexScan)
	if got := scan.EqKey[0].Int(); got != 77 {
		t.Fatalf("EqKey[0] = %d, want 77", got)
	}
	if got := scan.Lo.Int(); got != 88 {
		t.Fatalf("Lo = %d, want 88", got)
	}
	if c := scan.Filter[0].(*logical.Cmp).R.(*logical.Const); c.Val.Int() != 77 || c.Param != 1 {
		t.Fatalf("scan filter const = %v (param %d), want 77 (param 1)", c.Val, c.Param)
	}
	if c := bound.Preds[0].(*logical.Cmp).L.(*logical.Const); c.Val.Int() != 88 {
		t.Fatalf("filter const = %v, want 88", c.Val)
	}
}

func TestBindParamsDoesNotAliasOriginal(t *testing.T) {
	f, scan := paramPlan()
	b1 := BindParams(f, []datum.D{datum.NewInt(1), datum.NewInt(2)}).(*Filter)
	b2 := BindParams(f, []datum.D{datum.NewInt(3), datum.NewInt(4)}).(*Filter)

	// The original template keeps its probe values.
	if scan.EqKey[0].Int() != 10 || scan.Lo.Int() != 20 {
		t.Fatalf("original plan mutated: eq=%v lo=%v", scan.EqKey[0], scan.Lo)
	}
	// The two bindings are independent trees.
	s1, s2 := b1.Input.(*IndexScan), b2.Input.(*IndexScan)
	if s1 == scan || s2 == scan || s1 == s2 {
		t.Fatal("BindParams aliased plan nodes")
	}
	if s1.EqKey[0].Int() != 1 || s2.EqKey[0].Int() != 3 {
		t.Fatalf("bindings interfered: %v vs %v", s1.EqKey[0], s2.EqKey[0])
	}
	// Scalar nodes must not be shared either.
	if s1.Filter[0] == scan.Filter[0] || s1.Filter[0] == s2.Filter[0] {
		t.Fatal("BindParams aliased scalar nodes")
	}
}

func TestBindParamsKeepsUnboundOrdinals(t *testing.T) {
	f, _ := paramPlan()
	// Only one binding supplied: $2 keeps its probe value.
	bound := BindParams(f, []datum.D{datum.NewInt(5)}).(*Filter)
	scan := bound.Input.(*IndexScan)
	if scan.EqKey[0].Int() != 5 || scan.Lo.Int() != 20 {
		t.Fatalf("partial bind wrong: eq=%v lo=%v", scan.EqKey[0], scan.Lo)
	}
}
