// Package plancache is a bounded, thread-safe LRU map used by the engine's
// prepared-statement plan cache: keys are normalized statement texts plus
// parameter-type signatures, values are the cached plan diagrams. The cache
// only manages lifetime and recency — invalidation policy (catalog versions)
// and hit accounting at plan granularity live with the caller.
package plancache

import (
	"container/list"
	"sync"
)

// Cache is a fixed-capacity LRU cache. The zero value is not usable; call New.
type Cache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List
	items     map[string]*list.Element
	evictions int64
}

type lruEntry struct {
	key string
	val any
}

// New returns a cache holding at most capacity entries (minimum 1).
func New(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the value for key, marking it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// GetOrPut returns the value for key, inserting mk() if absent. The returned
// value is canonical: concurrent callers for the same key all observe the
// same stored value (mk runs under the cache lock, so keep it cheap). The
// bool reports whether the entry already existed.
func (c *Cache) GetOrPut(key string, mk func() any) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruEntry).val, true
	}
	v := mk()
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: v})
	c.evict()
	return v, false
}

// Put inserts or replaces the value for key, marking it most recently used.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	c.evict()
}

// evict drops least-recently-used entries until the cache fits its capacity.
// Callers hold c.mu.
func (c *Cache) evict() {
	for c.ll.Len() > c.cap {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*lruEntry).key)
		c.evictions++
	}
}

// Delete removes key if present.
func (c *Cache) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

// Clear removes every entry (does not count as evictions).
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Evictions returns the number of entries dropped by capacity pressure.
func (c *Cache) Evictions() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
