package plancache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // a is now most recent
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("LRU entry b survived eviction")
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("recently-used entry a evicted (got %v, %v)", v, ok)
	}
	if c.Len() != 2 || c.Evictions() != 1 {
		t.Fatalf("len=%d evictions=%d, want 2, 1", c.Len(), c.Evictions())
	}
}

func TestGetOrPutCanonical(t *testing.T) {
	c := New(8)
	v1, existed := c.GetOrPut("k", func() any { return &sync.Mutex{} })
	if existed {
		t.Fatal("first GetOrPut reported existing")
	}
	v2, existed := c.GetOrPut("k", func() any { return &sync.Mutex{} })
	if !existed || v1 != v2 {
		t.Fatal("GetOrPut returned a non-canonical value")
	}
}

func TestDeleteClear(t *testing.T) {
	c := New(4)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Delete("a")
	if _, ok := c.Get("a"); ok {
		t.Fatal("deleted entry still present")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len after Clear = %d", c.Len())
	}
	c.Delete("missing") // no-op
}

func TestConcurrentAccess(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", i%32)
				c.GetOrPut(k, func() any { return i })
				c.Get(k)
				if i%50 == 0 {
					c.Delete(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}
