package qgm

import (
	"fmt"

	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/rewrite"
	"repro/internal/systemr"
)

// Rule is a Starburst rewrite rule: a pair of functions — the condition
// checks applicability, the action enforces the transformation in place and
// reports whether it changed the query (§6.1: "rules are modeled as pairs of
// arbitrary functions").
type Rule struct {
	Name      string
	Class     string
	Condition func(*logical.Query) bool
	Action    func(*logical.Query) bool
}

// Engine is a forward-chaining rule engine over rule classes. Classes run in
// order; within a class, rules fire repeatedly until a full pass changes
// nothing or the budget is exhausted.
type Engine struct {
	Rules []Rule
	// Budget caps total rule firings (one of the "knobs" §6 mentions).
	Budget int
}

// EngineStats reports the rewrite phase's work.
type EngineStats struct {
	Firings     map[string]int
	TotalFired  int
	Passes      int
	BudgetSpent bool
}

// Run applies the rules to the query.
func (e *Engine) Run(q *logical.Query) EngineStats {
	st := EngineStats{Firings: map[string]int{}}
	budget := e.Budget
	if budget <= 0 {
		budget = 1000
	}
	// Collect class order (first appearance).
	var classes []string
	seen := map[string]bool{}
	for _, r := range e.Rules {
		if !seen[r.Class] {
			seen[r.Class] = true
			classes = append(classes, r.Class)
		}
	}
	for _, class := range classes {
		for pass := 0; pass < 20; pass++ {
			st.Passes++
			changed := false
			for _, r := range e.Rules {
				if r.Class != class {
					continue
				}
				if st.TotalFired >= budget {
					st.BudgetSpent = true
					return st
				}
				if r.Condition != nil && !r.Condition(q) {
					continue
				}
				if r.Action(q) {
					st.Firings[r.Name]++
					st.TotalFired++
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	return st
}

// DefaultEngine wires the rewrite-phase rules in the classic Starburst
// ordering: normalization first, then subquery merging, then cost-improving
// heuristics (the rewrite phase has no cost information, which is exactly the
// limitation §6.1 notes — these rules are fired heuristically).
func DefaultEngine() *Engine {
	hasSubquery := func(q *logical.Query) bool {
		return logical.HasSubqueryRel(q.Root)
	}
	return &Engine{
		Budget: 1000,
		Rules: []Rule{
			{
				Name:  "normalize",
				Class: "normalization",
				Action: func(q *logical.Query) bool {
					before := logical.Format(q.Root, q.Meta)
					logical.NormalizeQuery(q, logical.DefaultNormalize())
					return logical.Format(q.Root, q.Meta) != before
				},
			},
			{
				Name:      "unnest-subqueries",
				Class:     "subquery-merge",
				Condition: hasSubquery,
				Action: func(q *logical.Query) bool {
					st := rewrite.UnnestSubqueries(q)
					return st.SemiJoins+st.AntiJoins+st.OuterJoinAggs > 0
				},
			},
			{
				Name:  "join-outerjoin-associate",
				Class: "reorder",
				Action: func(q *logical.Query) bool {
					return rewrite.AssociateJoinOuterjoin(q)
				},
			},
			{
				Name:  "predicate-move-around",
				Class: "reorder",
				Action: func(q *logical.Query) bool {
					return rewrite.MovePredicates(q) > 0
				},
			},
			{
				Name:  "magic-semijoin",
				Class: "magic",
				Action: func(q *logical.Query) bool {
					return rewrite.ApplyMagic(q).ViewsRestricted > 0
				},
			},
			{
				Name:  "eager-groupby",
				Class: "aggregation",
				Action: func(q *logical.Query) bool {
					return rewrite.PushDownGroupBy(q)
				},
			},
			{
				Name:  "renormalize",
				Class: "final",
				Action: func(q *logical.Query) bool {
					before := logical.Format(q.Root, q.Meta)
					logical.NormalizeQuery(q, logical.DefaultNormalize())
					return logical.Format(q.Root, q.Meta) != before
				},
			},
		},
	}
}

// Optimizer is the two-phase Starburst optimizer: query rewrite (QGM rules)
// followed by bottom-up plan optimization.
type Optimizer struct {
	Engine *Engine
	Plan   *systemr.Optimizer
}

// Stats aggregates both phases.
type Stats struct {
	Rewrite EngineStats
	Plan    systemr.Metrics
}

// Optimize rewrites then plans. The input query is modified in place by the
// rewrite phase.
func (o *Optimizer) Optimize(q *logical.Query) (physical.Plan, Stats, error) {
	var st Stats
	if o.Engine == nil || o.Plan == nil {
		return nil, st, fmt.Errorf("qgm: optimizer not fully configured")
	}
	st.Rewrite = o.Engine.Run(q)
	plan, err := o.Plan.Optimize(q)
	if err != nil {
		return nil, st, err
	}
	st.Plan = o.Plan.Metrics
	return plan, st, nil
}
