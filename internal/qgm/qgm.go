// Package qgm implements the Starburst architecture of §6.1 of the paper:
// a Query Graph Model view of a statement (boxes holding predicate structure,
// quantifiers ranging over other boxes or base tables), a query-rewrite phase
// driven by a forward-chaining rule engine — rules are pairs of condition and
// action functions, grouped into rule classes with firing budgets — and a
// second plan-optimization phase that delegates to the System-R style
// bottom-up enumerator. Contrast with package cascades, which folds both
// phases into one goal-driven search.
package qgm

import (
	"fmt"
	"strings"

	"repro/internal/logical"
)

// BoxKind classifies QGM boxes.
type BoxKind uint8

// Box kinds.
const (
	SelectBox BoxKind = iota // an SPJ block
	GroupByBox
	BaseTableBox
)

func (k BoxKind) String() string {
	switch k {
	case SelectBox:
		return "SELECT"
	case GroupByBox:
		return "GROUP BY"
	case BaseTableBox:
		return "BASE"
	}
	return "?"
}

// QuantifierType is the role a quantifier plays in its box.
type QuantifierType uint8

// Quantifier types: F (ForEach — a range variable), E (Existential — from
// subquery predicates), A (All — universal).
const (
	ForEach QuantifierType = iota
	Existential
	All
)

func (t QuantifierType) String() string {
	switch t {
	case ForEach:
		return "F"
	case Existential:
		return "E"
	case All:
		return "A"
	}
	return "?"
}

// Quantifier ranges over another box (a table reference or nested block).
type Quantifier struct {
	Type   QuantifierType
	Name   string // binding name (or synthesized)
	Ranges *Box
}

// Box is one QGM box: a query block with quantifiers and predicates.
type Box struct {
	Kind        BoxKind
	Table       string // for BaseTableBox
	Quantifiers []Quantifier
	// Preds are the predicate strings of the block (display form).
	Preds []string
	// Ordered records whether the box's output stream carries an order.
	Ordered bool
}

// BuildQGM derives the QGM structure from a built logical query — one box per
// query block, with quantifiers for base tables and nested blocks.
func BuildQGM(q *logical.Query) *Box {
	root := buildBox(q.Root, q.Meta)
	root.Ordered = len(q.OrderBy) > 0
	return root
}

func buildBox(e logical.RelExpr, md *logical.Metadata) *Box {
	box := &Box{Kind: SelectBox}
	fill(box, e, md)
	return box
}

// fill walks one block, stopping at block boundaries (GroupBy starts a new
// box; subqueries become existential quantifiers).
func fill(box *Box, e logical.RelExpr, md *logical.Metadata) {
	switch t := e.(type) {
	case *logical.Scan:
		box.Quantifiers = append(box.Quantifiers, Quantifier{
			Type: ForEach, Name: t.Binding,
			Ranges: &Box{Kind: BaseTableBox, Table: t.Table.Name},
		})
	case *logical.Values:
		box.Quantifiers = append(box.Quantifiers, Quantifier{
			Type: ForEach, Name: "values",
			Ranges: &Box{Kind: BaseTableBox, Table: "VALUES"},
		})
	case *logical.Select:
		for _, f := range t.Filters {
			box.Preds = append(box.Preds, logical.FormatScalar(f, md))
			addSubqueryQuantifiers(box, f, md)
		}
		fill(box, t.Input, md)
	case *logical.Project:
		fill(box, t.Input, md)
	case *logical.Limit:
		fill(box, t.Input, md)
	case *logical.Join:
		for _, f := range t.On {
			box.Preds = append(box.Preds, logical.FormatScalar(f, md))
			addSubqueryQuantifiers(box, f, md)
		}
		if t.Kind == logical.InnerJoin {
			fill(box, t.Left, md)
			fill(box, t.Right, md)
			return
		}
		// Non-inner joins keep block structure: each side is a nested box.
		box.Quantifiers = append(box.Quantifiers,
			Quantifier{Type: ForEach, Name: t.Kind.String() + "-left", Ranges: buildBox(t.Left, md)},
			Quantifier{Type: quantifierFor(t.Kind), Name: t.Kind.String() + "-right", Ranges: buildBox(t.Right, md)},
		)
	case *logical.Union:
		box.Quantifiers = append(box.Quantifiers,
			Quantifier{Type: ForEach, Name: "union-left", Ranges: buildBox(t.Left, md)},
			Quantifier{Type: ForEach, Name: "union-right", Ranges: buildBox(t.Right, md)},
		)
	case *logical.GroupBy:
		inner := buildBox(t.Input, md)
		gb := &Box{Kind: GroupByBox, Quantifiers: []Quantifier{{Type: ForEach, Name: "grouped", Ranges: inner}}}
		box.Quantifiers = append(box.Quantifiers, Quantifier{Type: ForEach, Name: "agg", Ranges: gb})
	}
}

func quantifierFor(k logical.JoinKind) QuantifierType {
	switch k {
	case logical.SemiJoin:
		return Existential
	case logical.AntiJoin:
		return All
	default:
		return ForEach
	}
}

func addSubqueryQuantifiers(box *Box, f logical.Scalar, md *logical.Metadata) {
	logical.VisitScalar(f, func(sc logical.Scalar) {
		if sub, ok := sc.(*logical.Subquery); ok {
			qt := Existential
			if sub.Negated {
				qt = All
			}
			box.Quantifiers = append(box.Quantifiers, Quantifier{
				Type: qt, Name: strings.ToLower(sub.Mode.String()),
				Ranges: buildBox(sub.Plan, md),
			})
		}
	})
}

// Blocks counts the boxes in the QGM (a multi-block query has > 1).
func (b *Box) Blocks() int {
	n := 1
	for _, q := range b.Quantifiers {
		if q.Ranges != nil && q.Ranges.Kind != BaseTableBox {
			n += q.Ranges.Blocks()
		}
	}
	return n
}

// String renders the QGM for diagnostics.
func (b *Box) String() string {
	var sb strings.Builder
	writeBox(&sb, b, 0)
	return sb.String()
}

func writeBox(sb *strings.Builder, b *Box, depth int) {
	indent := strings.Repeat("  ", depth)
	if b.Kind == BaseTableBox {
		fmt.Fprintf(sb, "%sbase %s\n", indent, b.Table)
		return
	}
	fmt.Fprintf(sb, "%sbox %s", indent, b.Kind)
	if len(b.Preds) > 0 {
		fmt.Fprintf(sb, " preds=[%s]", strings.Join(b.Preds, " AND "))
	}
	sb.WriteByte('\n')
	for _, q := range b.Quantifiers {
		fmt.Fprintf(sb, "%s  quantifier %s(%s):\n", indent, q.Name, q.Type)
		writeBox(sb, q.Ranges, depth+2)
	}
}
