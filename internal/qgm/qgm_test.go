package qgm

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/physical"
	"repro/internal/sql"
	"repro/internal/stats"
	"repro/internal/systemr"
	"repro/internal/workload"
)

func buildQuery(t *testing.T, db *workload.DB, q string) *logical.Query {
	t.Helper()
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	query, err := logical.NewBuilder(db.Cat).Build(sel)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return query
}

func TestQGMStructure(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 100, Depts: 10})
	q := buildQuery(t, db, `SELECT e.name FROM Emp e WHERE e.did IN
		(SELECT d.did FROM Dept d WHERE d.loc = 'Denver')`)
	box := BuildQGM(q)
	if box.Blocks() < 2 {
		t.Errorf("nested query should yield multiple blocks, got %d\n%s", box.Blocks(), box)
	}
	s := box.String()
	for _, frag := range []string{"base Emp", "base Dept", "quantifier"} {
		if !strings.Contains(s, frag) {
			t.Errorf("QGM missing %q:\n%s", frag, s)
		}
	}
	// The IN subquery must appear as an existential quantifier.
	if !strings.Contains(s, "(E)") {
		t.Errorf("IN subquery should be existential:\n%s", s)
	}
}

func TestQGMSingleBlock(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 100, Depts: 10})
	q := buildQuery(t, db, "SELECT e.name FROM Emp e, Dept d WHERE e.did = d.did")
	box := BuildQGM(q)
	if box.Blocks() != 1 {
		t.Errorf("flat SPJ should be a single block, got %d", box.Blocks())
	}
	if len(box.Quantifiers) != 2 {
		t.Errorf("expected 2 F quantifiers, got %d", len(box.Quantifiers))
	}
}

func TestQGMGroupByBox(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 100, Depts: 10})
	q := buildQuery(t, db, "SELECT did, COUNT(*) FROM Emp GROUP BY did")
	box := BuildQGM(q)
	if !strings.Contains(box.String(), "GROUP BY") {
		t.Errorf("group-by box missing:\n%s", box)
	}
}

func TestEngineFiresAndConverges(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 500, Depts: 20})
	q := buildQuery(t, db, `SELECT d.dname FROM Dept d WHERE EXISTS
		(SELECT 1 FROM Emp e WHERE e.did = d.did AND e.sal > 5000)`)
	eng := DefaultEngine()
	st := eng.Run(q)
	if st.Firings["unnest-subqueries"] != 1 {
		t.Errorf("unnest should fire once: %+v", st.Firings)
	}
	if st.BudgetSpent {
		t.Error("engine should converge before budget")
	}
	if logical.HasSubqueryRel(q.Root) {
		t.Error("subquery should be rewritten away")
	}
}

func TestEngineBudget(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 100, Depts: 10})
	q := buildQuery(t, db, "SELECT name FROM Emp WHERE sal > 1 AND sal > 2 AND sal > 3")
	fired := 0
	eng := &Engine{
		Budget: 3,
		Rules: []Rule{{
			Name:  "always",
			Class: "test",
			Action: func(*logical.Query) bool {
				fired++
				return true // never converges
			},
		}},
	}
	st := eng.Run(q)
	if !st.BudgetSpent || fired != 3 {
		t.Errorf("budget should stop the engine: fired=%d spent=%v", fired, st.BudgetSpent)
	}
}

func TestStarburstTwoPhaseEndToEnd(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 1500, Depts: 40})
	db.Analyze(stats.AnalyzeOptions{})
	queries := []string{
		`SELECT d.dname FROM Dept d WHERE EXISTS (SELECT 1 FROM Emp e WHERE e.did = d.did AND e.sal > 12000)`,
		`SELECT e.name, d.dname FROM Emp e, Dept d WHERE e.did = d.did AND d.budget > 500`,
		`SELECT d.loc, COUNT(*) FROM Emp e, Dept d WHERE e.did = d.did GROUP BY d.loc`,
	}
	for _, qs := range queries {
		q := buildQuery(t, db, qs)
		// The reference must run on an untouched copy.
		ref := buildQuery(t, db, qs)
		opt := &Optimizer{
			Engine: DefaultEngine(),
			Plan:   systemr.New(stats.NewEstimator(q.Meta), cost.DefaultModel(), systemr.DefaultOptions()),
		}
		plan, st, err := opt.Optimize(q)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		if st.Plan.PlansCosted == 0 {
			t.Error("plan phase should cost plans")
		}
		ctx := exec.NewCtx(db.Store, q.Meta)
		got, err := exec.RunPlanQuery(plan, q, ctx)
		if err != nil {
			t.Fatalf("%s: execute: %v\n%s", qs, err, physical.Format(plan, q.Meta))
		}
		refCtx := exec.NewCtx(db.Store, ref.Meta)
		want, err := refCtx.RunQuery(ref)
		if err != nil {
			t.Fatal(err)
		}
		g := rowSet(got)
		w := rowSet(want)
		if strings.Join(g, ";") != strings.Join(w, ";") {
			t.Errorf("%s: results disagree\ngot:  %.300v\nwant: %.300v", qs, g, w)
		}
	}
}

func rowSet(r *exec.Result) []string {
	out := make([]string, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.String()
	}
	sort.Strings(out)
	return out
}

func TestOptimizerMisconfigured(t *testing.T) {
	o := &Optimizer{}
	if _, _, err := o.Optimize(&logical.Query{}); err == nil {
		t.Error("unconfigured optimizer should error")
	}
}
