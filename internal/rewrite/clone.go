// Package rewrite implements the algebraic transformations of Section 4 of
// the paper: merging nested subqueries into joins (§4.2.2, Kim/Dayal/
// Muralikrishna), eager/staged group-by pushdown (§4.1.3, Chaudhuri-Shim and
// Yan-Larson), the join/outerjoin associativity identity (§4.1.2), and
// magic-set / semijoin style information passing across query blocks (§4.3).
// All transformations preserve SQL multiset semantics including NULLs and
// duplicates; the tests verify each against the naive reference executor.
package rewrite

import (
	"repro/internal/logical"
)

// CloneWithFreshCols deep-copies a relational tree, allocating fresh column
// IDs for every column the subtree produces. The returned mapping translates
// old IDs to new ones. Sharing a subtree between two places in one query
// (as magic rewriting does) requires this: column IDs must stay unique per
// occurrence.
func CloneWithFreshCols(e logical.RelExpr, md *logical.Metadata) (logical.RelExpr, map[logical.ColumnID]logical.ColumnID) {
	mapping := map[logical.ColumnID]logical.ColumnID{}
	// First pass: allocate new IDs for every produced column.
	logical.VisitRel(e, func(n logical.RelExpr) {
		switch t := n.(type) {
		case *logical.Scan:
			for _, id := range t.Cols {
				if _, ok := mapping[id]; !ok {
					cm := md.Column(id)
					mapping[id] = md.AddColumn(cm)
				}
			}
		case *logical.Values:
			for _, id := range t.Cols {
				if _, ok := mapping[id]; !ok {
					cm := md.Column(id)
					mapping[id] = md.AddColumn(cm)
				}
			}
		case *logical.Project:
			for _, it := range t.Items {
				if _, ok := mapping[it.ID]; !ok {
					cm := md.Column(it.ID)
					mapping[it.ID] = md.AddColumn(cm)
				}
			}
		case *logical.GroupBy:
			for _, a := range t.Aggs {
				if _, ok := mapping[a.ID]; !ok {
					cm := md.Column(a.ID)
					mapping[a.ID] = md.AddColumn(cm)
				}
			}
		}
	})
	// Second pass: remap. Columns not produced inside (outer references)
	// keep their IDs.
	return logical.RemapRel(e, mapping), mapping
}
