package rewrite

import (
	"repro/internal/datum"
	"repro/internal/logical"
)

// PushDownGroupBy implements eager (staged) aggregation — Figure 4 of the
// paper: a GroupBy above an inner equi-join, whose aggregate arguments all
// come from one join side, is split into a partial aggregate below the join
// on that side (grouped by the needed group columns plus the join columns)
// and a combining aggregate above. This is valid because every row of a
// partial group carries identical join keys, so the join multiplies whole
// partitions uniformly; COUNT combines by SUM, SUM by SUM, MIN/MAX by
// themselves, and AVG is split into SUM and COUNT (recombined by a projection
// above). DISTINCT aggregates are not splittable and block the rewrite.
//
// It returns whether the tree changed.
func PushDownGroupBy(q *logical.Query) bool {
	changed := false
	q.Root = pushGroupByRel(q.Root, q.Meta, &changed)
	return changed
}

func pushGroupByRel(e logical.RelExpr, md *logical.Metadata, changed *bool) logical.RelExpr {
	ch := logical.Children(e)
	if len(ch) > 0 {
		nch := make([]logical.RelExpr, len(ch))
		for i, c := range ch {
			nch[i] = pushGroupByRel(c, md, changed)
		}
		e = logical.WithChildren(e, nch)
	}
	g, ok := e.(*logical.GroupBy)
	if !ok || len(g.Aggs) == 0 || len(g.GroupCols) == 0 {
		return e
	}
	join, ok := g.Input.(*logical.Join)
	if !ok || join.Kind != logical.InnerJoin {
		return e
	}
	if out, ok := eagerAggregate(g, join, md); ok {
		*changed = true
		return out
	}
	return e
}

// eagerAggregate builds the staged form, trying the left side then the right.
func eagerAggregate(g *logical.GroupBy, join *logical.Join, md *logical.Metadata) (logical.RelExpr, bool) {
	for _, side := range []bool{true, false} {
		if out, ok := eagerAggregateSide(g, join, md, side); ok {
			return out, true
		}
	}
	return nil, false
}

func eagerAggregateSide(g *logical.GroupBy, join *logical.Join, md *logical.Metadata, left bool) (logical.RelExpr, bool) {
	target := join.Left
	if !left {
		target = join.Right
	}
	// Idempotence: if the side is already an aggregation (a partial from a
	// previous application, or a view), pushing again only stacks redundant
	// group-bys.
	if _, ok := target.(*logical.GroupBy); ok {
		return nil, false
	}
	targetCols := target.OutputCols()

	// Every aggregate argument must come from the target side; DISTINCT
	// blocks staging.
	for _, a := range g.Aggs {
		if a.Distinct {
			return nil, false
		}
		if a.Arg != nil && !logical.ScalarCols(a.Arg).SubsetOf(targetCols) {
			return nil, false
		}
	}
	// Join predicates must be column-to-column equalities (so partial groups
	// share join behaviour); collect the target-side join columns.
	var joinCols []logical.ColumnID
	for _, p := range join.On {
		cmp, ok := p.(*logical.Cmp)
		if !ok || cmp.Op != logical.CmpEq {
			return nil, false
		}
		l, lok := cmp.L.(*logical.Col)
		r, rok := cmp.R.(*logical.Col)
		if !lok || !rok {
			return nil, false
		}
		switch {
		case targetCols.Contains(l.ID):
			joinCols = append(joinCols, l.ID)
		case targetCols.Contains(r.ID):
			joinCols = append(joinCols, r.ID)
		default:
			return nil, false
		}
	}

	// Partial group columns: group columns from the target side + join cols.
	var partialGroup []logical.ColumnID
	seen := map[logical.ColumnID]bool{}
	for _, c := range g.GroupCols {
		if targetCols.Contains(c) {
			partialGroup = append(partialGroup, c)
			seen[c] = true
		}
	}
	for _, c := range joinCols {
		if !seen[c] {
			partialGroup = append(partialGroup, c)
			seen[c] = true
		}
	}
	if len(partialGroup) == 0 {
		return nil, false
	}

	// Build partial aggregates and the combining forms.
	var partialAggs []logical.AggItem
	var finalAggs []logical.AggItem
	// avgFix maps an original AVG output to (sumCol, cntCol) for the
	// recombination projection.
	type avgParts struct{ sum, cnt logical.ColumnID }
	avgFix := map[logical.ColumnID]avgParts{}

	newCol := func(name string, kind datum.Kind) logical.ColumnID {
		return md.AddColumn(logical.ColumnMeta{Name: name, Kind: kind})
	}

	for _, a := range g.Aggs {
		switch a.Fn {
		case logical.AggCount:
			p := newCol("cnt1", datum.KindInt)
			partialAggs = append(partialAggs, logical.AggItem{ID: p, Fn: logical.AggCount, Arg: a.Arg})
			finalAggs = append(finalAggs, logical.AggItem{ID: a.ID, Fn: logical.AggSum, Arg: &logical.Col{ID: p}})
		case logical.AggSum:
			p := newCol("sum1", md.Column(a.ID).Kind)
			partialAggs = append(partialAggs, logical.AggItem{ID: p, Fn: logical.AggSum, Arg: a.Arg})
			finalAggs = append(finalAggs, logical.AggItem{ID: a.ID, Fn: logical.AggSum, Arg: &logical.Col{ID: p}})
		case logical.AggMin:
			p := newCol("min1", md.Column(a.ID).Kind)
			partialAggs = append(partialAggs, logical.AggItem{ID: p, Fn: logical.AggMin, Arg: a.Arg})
			finalAggs = append(finalAggs, logical.AggItem{ID: a.ID, Fn: logical.AggMin, Arg: &logical.Col{ID: p}})
		case logical.AggMax:
			p := newCol("max1", md.Column(a.ID).Kind)
			partialAggs = append(partialAggs, logical.AggItem{ID: p, Fn: logical.AggMax, Arg: a.Arg})
			finalAggs = append(finalAggs, logical.AggItem{ID: a.ID, Fn: logical.AggMax, Arg: &logical.Col{ID: p}})
		case logical.AggAvg:
			ps := newCol("avgsum1", datum.KindFloat)
			pc := newCol("avgcnt1", datum.KindInt)
			fs := newCol("avgsum", datum.KindFloat)
			fc := newCol("avgcnt", datum.KindInt)
			partialAggs = append(partialAggs,
				logical.AggItem{ID: ps, Fn: logical.AggSum, Arg: a.Arg},
				logical.AggItem{ID: pc, Fn: logical.AggCount, Arg: a.Arg},
			)
			finalAggs = append(finalAggs,
				logical.AggItem{ID: fs, Fn: logical.AggSum, Arg: &logical.Col{ID: ps}},
				logical.AggItem{ID: fc, Fn: logical.AggSum, Arg: &logical.Col{ID: pc}},
			)
			avgFix[a.ID] = avgParts{sum: fs, cnt: fc}
		default:
			return nil, false
		}
	}

	partial := &logical.GroupBy{Input: target, GroupCols: partialGroup, Aggs: partialAggs}
	var newJoin *logical.Join
	if left {
		newJoin = &logical.Join{Kind: logical.InnerJoin, Left: partial, Right: join.Right, On: join.On}
	} else {
		newJoin = &logical.Join{Kind: logical.InnerJoin, Left: join.Left, Right: partial, On: join.On}
	}
	final := &logical.GroupBy{Input: newJoin, GroupCols: g.GroupCols, Aggs: finalAggs}
	if len(avgFix) == 0 {
		return final, true
	}
	// Recombine AVG columns, preserving the original output column IDs.
	var items []logical.ProjectItem
	for _, c := range g.GroupCols {
		items = append(items, logical.ProjectItem{ID: c, Expr: &logical.Col{ID: c}})
	}
	for _, a := range g.Aggs {
		if parts, ok := avgFix[a.ID]; ok {
			items = append(items, logical.ProjectItem{
				ID: a.ID,
				Expr: &logical.Arith{Op: logical.ArithDiv,
					L: &logical.Col{ID: parts.sum}, R: &logical.Col{ID: parts.cnt}},
			})
		} else {
			items = append(items, logical.ProjectItem{ID: a.ID, Expr: &logical.Col{ID: a.ID}})
		}
	}
	return &logical.Project{Input: final, Items: items}, true
}
