package rewrite

import (
	"repro/internal/logical"
)

// MagicStats reports what the magic pass did.
type MagicStats struct {
	ViewsRestricted int
}

// ApplyMagic implements the semijoin-style information passing of §4.3: when
// an inner-join block contains a GroupBy-rooted leaf (a view or unnested
// aggregate block) joined on its grouping column, the set of relevant keys —
// computed by joining the *other* relations of the block with their local
// predicates (the paper's PartialResult/Filter views) — is pushed into the
// view's input as a semijoin, restricting the aggregation to groups the
// outer query can actually use.
//
// The filter subtree is cloned with fresh column IDs because the same
// relations keep their original roles in the main query.
func ApplyMagic(q *logical.Query) MagicStats {
	var st MagicStats
	q.Root = magicRel(q.Root, q.Meta, &st)
	return st
}

func magicRel(e logical.RelExpr, md *logical.Metadata, st *MagicStats) logical.RelExpr {
	ch := logical.Children(e)
	if len(ch) > 0 {
		nch := make([]logical.RelExpr, len(ch))
		for i, c := range ch {
			nch[i] = magicRel(c, md, st)
		}
		e = logical.WithChildren(e, nch)
	}
	// Only join-block roots are interesting; avoid re-entering from inside
	// the block by requiring the parent dispatcher to call us on the root.
	switch e.(type) {
	case *logical.Select, *logical.Join:
	default:
		return e
	}
	leaves, preds, ok := logical.ExtractJoinBlock(e)
	if !ok || len(leaves) < 2 {
		return e
	}
	g := logical.BuildQueryGraph(leaves, preds)
	for vi, leaf := range leaves {
		gb := groupByRoot(leaf)
		if gb == nil || len(gb.GroupCols) == 0 {
			continue
		}
		// Already restricted (the pass runs bottom-up over nested roots).
		if sj, ok := gb.Input.(*logical.Join); ok && sj.Kind == logical.SemiJoin {
			continue
		}
		// Find an equi edge between a grouping column of the view and some
		// other leaf.
		viewCols := g.NodeCols[vi]
		var keyInView, keyOutside logical.ColumnID
		var otherIdx = -1
		for _, edge := range g.Edges {
			if edge.A != vi && edge.B != vi {
				continue
			}
			other := edge.A
			if other == vi {
				other = edge.B
			}
			for _, p := range edge.Preds {
				cmp, ok := p.(*logical.Cmp)
				if !ok || cmp.Op != logical.CmpEq {
					continue
				}
				l, lok := cmp.L.(*logical.Col)
				r, rok := cmp.R.(*logical.Col)
				if !lok || !rok {
					continue
				}
				var vcol, ocol logical.ColumnID
				if viewCols.Contains(l.ID) {
					vcol, ocol = l.ID, r.ID
				} else if viewCols.Contains(r.ID) {
					vcol, ocol = r.ID, l.ID
				} else {
					continue
				}
				if !isGroupCol(gb, vcol) {
					continue
				}
				keyInView, keyOutside, otherIdx = vcol, ocol, other
				break
			}
			if otherIdx >= 0 {
				break
			}
		}
		if otherIdx < 0 {
			continue
		}
		// Build the magic filter: all other leaves with their local
		// predicates and connecting edges, projected (distinct) onto the
		// outside key column — then cloned with fresh IDs.
		filterRel := buildFilterRel(g, vi, keyOutside)
		if filterRel == nil {
			continue
		}
		cloned, mapping := CloneWithFreshCols(filterRel, md)
		magicKey, ok := mapping[keyOutside]
		if !ok {
			continue
		}
		// Restrict the view's input with a semijoin on the grouping column.
		newView := restrictView(gb, keyInView, cloned, magicKey)
		if newView == nil {
			continue
		}
		leaves[vi] = newView
		st.ViewsRestricted++
		// Rebuild the block: leaves joined left-deep with all predicates.
		return rebuildBlock(leaves, preds)
	}
	return e
}

// groupByRoot unwraps passthrough projections to find a GroupBy leaf root.
func groupByRoot(e logical.RelExpr) *logical.GroupBy {
	switch t := e.(type) {
	case *logical.GroupBy:
		return t
	case *logical.Project:
		if t.Passthrough() {
			return groupByRoot(t.Input)
		}
	}
	return nil
}

func isGroupCol(g *logical.GroupBy, c logical.ColumnID) bool {
	for _, gc := range g.GroupCols {
		if gc == c {
			return true
		}
	}
	return false
}

// buildFilterRel joins every leaf except vi (with local predicates and
// inter-leaf edges) and projects the distinct key values.
func buildFilterRel(g *logical.QueryGraph, vi int, key logical.ColumnID) logical.RelExpr {
	var rel logical.RelExpr
	included := map[int]bool{}
	for i, leaf := range g.Nodes {
		if i == vi {
			continue
		}
		node := leaf
		if len(g.Local[i]) > 0 {
			node = &logical.Select{Input: node, Filters: g.Local[i]}
		}
		if rel == nil {
			rel = node
		} else {
			rel = &logical.Join{Kind: logical.InnerJoin, Left: rel, Right: node}
		}
		included[i] = true
	}
	if rel == nil {
		return nil
	}
	var on []logical.Scalar
	for _, e := range g.Edges {
		if included[e.A] && included[e.B] {
			on = append(on, e.Preds...)
		}
	}
	if j, ok := rel.(*logical.Join); ok {
		j.On = on
	} else if len(on) > 0 {
		rel = &logical.Select{Input: rel, Filters: on}
	}
	if !rel.OutputCols().Contains(key) {
		return nil
	}
	// DISTINCT key values (the paper's Filter view).
	return &logical.GroupBy{
		Input:     &logical.Project{Input: rel, Items: []logical.ProjectItem{{ID: key, Expr: &logical.Col{ID: key}}}},
		GroupCols: []logical.ColumnID{key},
	}
}

// restrictView pushes a semijoin against the magic set into the view's input.
func restrictView(g *logical.GroupBy, viewKey logical.ColumnID, magic logical.RelExpr, magicKey logical.ColumnID) logical.RelExpr {
	if !g.Input.OutputCols().Contains(viewKey) {
		return nil
	}
	semi := &logical.Join{
		Kind:  logical.SemiJoin,
		Left:  g.Input,
		Right: magic,
		On:    []logical.Scalar{&logical.Cmp{Op: logical.CmpEq, L: &logical.Col{ID: viewKey}, R: &logical.Col{ID: magicKey}}},
	}
	return &logical.GroupBy{Input: semi, GroupCols: g.GroupCols, Aggs: g.Aggs}
}

// rebuildBlock joins the (possibly rewritten) leaves left-deep, attaching
// each predicate at the first point where its columns are available, so the
// rebuilt tree stays efficiently executable even without re-optimization.
func rebuildBlock(leaves []logical.RelExpr, preds []logical.Scalar) logical.RelExpr {
	placed := make([]bool, len(preds))
	take := func(cols logical.ColSet) []logical.Scalar {
		var out []logical.Scalar
		for i, p := range preds {
			if placed[i] {
				continue
			}
			if logical.ScalarCols(p).SubsetOf(cols) {
				placed[i] = true
				out = append(out, p)
			}
		}
		return out
	}
	rel := leaves[0]
	cols := rel.OutputCols()
	if local := take(cols); len(local) > 0 {
		rel = &logical.Select{Input: rel, Filters: local}
	}
	for _, l := range leaves[1:] {
		cols = cols.Union(l.OutputCols())
		rel = &logical.Join{Kind: logical.InnerJoin, Left: rel, Right: l, On: take(cols)}
	}
	var rest []logical.Scalar
	for i, p := range preds {
		if !placed[i] {
			rest = append(rest, p)
		}
	}
	if len(rest) > 0 {
		rel = &logical.Select{Input: rel, Filters: rest}
	}
	return rel
}
