package rewrite

import (
	"repro/internal/logical"
)

// AssociateJoinOuterjoin applies the §4.1.2 identity
//
//	Join(R, S LOJ T)  =  Join(R, S) LOJ T
//
// whenever the inner join's predicates touch only R and S. Repeated
// application moves the block of joins below the block of outerjoins, after
// which the inner joins reorder freely (the Rosenthal/Galindo-Legaria
// class). It returns whether anything changed.
func AssociateJoinOuterjoin(q *logical.Query) bool {
	changed := false
	for pass := 0; pass < 10; pass++ {
		did := false
		q.Root = associateRel(q.Root, &did)
		if !did {
			break
		}
		changed = true
	}
	return changed
}

func associateRel(e logical.RelExpr, changed *bool) logical.RelExpr {
	ch := logical.Children(e)
	if len(ch) > 0 {
		nch := make([]logical.RelExpr, len(ch))
		for i, c := range ch {
			nch[i] = associateRel(c, changed)
		}
		e = logical.WithChildren(e, nch)
	}
	j, ok := e.(*logical.Join)
	if !ok || j.Kind != logical.InnerJoin {
		return e
	}
	// Join(R, LOJ(S, T)) with preds ⊆ R ∪ S → LOJ(Join(R, S), T).
	if loj, ok := j.Right.(*logical.Join); ok && loj.Kind == logical.LeftOuterJoin {
		rs := j.Left.OutputCols().Union(loj.Left.OutputCols())
		if allPredsWithin(j.On, rs) {
			*changed = true
			inner := &logical.Join{Kind: logical.InnerJoin, Left: j.Left, Right: loj.Left, On: j.On}
			return &logical.Join{Kind: logical.LeftOuterJoin, Left: inner, Right: loj.Right, On: loj.On}
		}
	}
	// Mirror: Join(LOJ(S, T), R) with preds ⊆ S ∪ R → LOJ(Join(S, R), T).
	if loj, ok := j.Left.(*logical.Join); ok && loj.Kind == logical.LeftOuterJoin {
		sr := loj.Left.OutputCols().Union(j.Right.OutputCols())
		if allPredsWithin(j.On, sr) {
			*changed = true
			inner := &logical.Join{Kind: logical.InnerJoin, Left: loj.Left, Right: j.Right, On: j.On}
			return &logical.Join{Kind: logical.LeftOuterJoin, Left: inner, Right: loj.Right, On: loj.On}
		}
	}
	return e
}

func allPredsWithin(preds []logical.Scalar, cols logical.ColSet) bool {
	for _, p := range preds {
		if !logical.ScalarCols(p).SubsetOf(cols) {
			return false
		}
	}
	return true
}
