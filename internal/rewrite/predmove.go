package rewrite

import (
	"repro/internal/datum"
	"repro/internal/logical"
)

// MovePredicates implements predicate move-around (§4.3's "simpler technique
// ... generalized in [36]", Levy/Mumick/Sagiv): within each inner-join
// block, columns connected by equality predicates form equivalence classes,
// and any column-vs-constant comparison on one member is implied for every
// other member. Deriving those predicates lets the optimizer filter other
// relations early (often via their indexes). It returns the number of
// predicates derived.
func MovePredicates(q *logical.Query) int {
	derived := 0
	q.Root = movePredRel(q.Root, &derived)
	return derived
}

func movePredRel(e logical.RelExpr, derived *int) logical.RelExpr {
	// Bottom-up so nested blocks (views, subquery plans) are handled first.
	ch := logical.Children(e)
	if len(ch) > 0 {
		nch := make([]logical.RelExpr, len(ch))
		for i, c := range ch {
			nch[i] = movePredRel(c, derived)
		}
		e = logical.WithChildren(e, nch)
	}
	switch e.(type) {
	case *logical.Select, *logical.Join:
	default:
		return e
	}
	leaves, preds, ok := logical.ExtractJoinBlock(e)
	if !ok || len(leaves) < 2 || len(preds) == 0 {
		return e
	}

	// Union-find over columns connected by equality predicates.
	parent := map[logical.ColumnID]logical.ColumnID{}
	var find func(c logical.ColumnID) logical.ColumnID
	find = func(c logical.ColumnID) logical.ColumnID {
		p, ok := parent[c]
		if !ok || p == c {
			parent[c] = c
			return c
		}
		r := find(p)
		parent[c] = r
		return r
	}
	union := func(a, b logical.ColumnID) { parent[find(a)] = find(b) }

	type constPred struct {
		col  logical.ColumnID
		op   logical.CmpOp
		val  datum.D
		orig logical.Scalar
	}
	var constPreds []constPred
	seen := map[string]bool{}
	for _, p := range preds {
		seen[p.String()] = true
		cmp, ok := p.(*logical.Cmp)
		if !ok {
			continue
		}
		if l, lok := cmp.L.(*logical.Col); lok {
			if r, rok := cmp.R.(*logical.Col); rok && cmp.Op == logical.CmpEq {
				union(l.ID, r.ID)
				continue
			}
			if k, kok := cmp.R.(*logical.Const); kok && cmp.Op != logical.CmpLike {
				constPreds = append(constPreds, constPred{l.ID, cmp.Op, k.Val, p})
			}
			continue
		}
		if r, rok := cmp.R.(*logical.Col); rok {
			if k, kok := cmp.L.(*logical.Const); kok && cmp.Op != logical.CmpLike {
				constPreds = append(constPreds, constPred{r.ID, cmp.Op.Commute(), k.Val, p})
			}
		}
	}
	if len(constPreds) == 0 {
		return e
	}
	// Group equivalence-class members.
	members := map[logical.ColumnID][]logical.ColumnID{}
	for c := range parent {
		r := find(c)
		members[r] = append(members[r], c)
	}
	newPreds := append([]logical.Scalar{}, preds...)
	added := 0
	for _, cp := range constPreds {
		root, ok := parent[cp.col]
		_ = root
		if !ok {
			continue // column not in any equivalence class
		}
		for _, other := range members[find(cp.col)] {
			if other == cp.col {
				continue
			}
			np := &logical.Cmp{Op: cp.op, L: &logical.Col{ID: other}, R: &logical.Const{Val: cp.val}}
			key := np.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			newPreds = append(newPreds, np)
			added++
		}
	}
	if added == 0 {
		return e
	}
	*derived += added
	return rebuildBlock(leaves, newPreds)
}
