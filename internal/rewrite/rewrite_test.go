package rewrite

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/datum"
	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/sql"
	"repro/internal/workload"
)

func buildQuery(t *testing.T, db *workload.DB, q string) *logical.Query {
	t.Helper()
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	query, err := logical.NewBuilder(db.Cat).Build(sel)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	logical.NormalizeQuery(query, logical.DefaultNormalize())
	return query
}

func runQ(t *testing.T, db *workload.DB, q *logical.Query) []string {
	t.Helper()
	ctx := exec.NewCtx(db.Store, q.Meta)
	res, err := ctx.RunQuery(q)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, logical.Format(q.Root, q.Meta))
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		var sb strings.Builder
		for j, d := range r {
			if j > 0 {
				sb.WriteString("|")
			}
			if !d.IsNull() && d.Kind() == datum.KindFloat {
				fmt.Fprintf(&sb, "%.6g", d.Float())
			} else {
				sb.WriteString(d.String())
			}
		}
		out[i] = sb.String()
	}
	sort.Strings(out)
	return out
}

// checkEquivalent verifies that a transformation preserved results.
func checkEquivalent(t *testing.T, db *workload.DB, qs string, transform func(*logical.Query)) (*logical.Query, *logical.Query) {
	t.Helper()
	before := buildQuery(t, db, qs)
	after := buildQuery(t, db, qs)
	transform(after)
	bRows := runQ(t, db, before)
	aRows := runQ(t, db, after)
	if strings.Join(bRows, ";") != strings.Join(aRows, ";") {
		t.Fatalf("transformation changed results for %q\nbefore (%d): %.400v\nafter  (%d): %.400v\nplan:\n%s",
			qs, len(bRows), bRows, len(aRows), aRows, logical.Format(after.Root, after.Meta))
	}
	return before, after
}

func countSubqueries(q *logical.Query) int {
	n := 0
	logical.VisitRel(q.Root, func(e logical.RelExpr) {
		for _, s := range logical.Scalars(e) {
			logical.VisitScalar(s, func(sc logical.Scalar) {
				if _, ok := sc.(*logical.Subquery); ok {
					n++
				}
			})
		}
	})
	return n
}

func countJoinKind(q *logical.Query, kind logical.JoinKind) int {
	n := 0
	logical.VisitRel(q.Root, func(e logical.RelExpr) {
		if j, ok := e.(*logical.Join); ok && j.Kind == kind {
			n++
		}
	})
	return n
}

func TestUnnestInSubquery(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 500, Depts: 20})
	// The paper's §4.2.2 example: correlated IN.
	qs := `SELECT e.name FROM Emp e WHERE e.did IN
		(SELECT d.did FROM Dept d WHERE d.loc = 'Denver' AND e.eid = d.mgr)`
	_, after := checkEquivalent(t, db, qs, func(q *logical.Query) {
		st := UnnestSubqueries(q)
		if st.SemiJoins != 1 {
			t.Errorf("expected 1 semijoin, got %+v", st)
		}
	})
	if countSubqueries(after) != 0 {
		t.Error("subquery should be gone")
	}
	if countJoinKind(after, logical.SemiJoin) != 1 {
		t.Error("semijoin missing")
	}
}

func TestUnnestExists(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 500, Depts: 20})
	qs := `SELECT d.dname FROM Dept d WHERE EXISTS
		(SELECT 1 FROM Emp e WHERE e.did = d.did AND e.sal > 10000)`
	checkEquivalent(t, db, qs, func(q *logical.Query) {
		st := UnnestSubqueries(q)
		if st.SemiJoins != 1 {
			t.Errorf("expected 1 semijoin, got %+v", st)
		}
	})
	qs = `SELECT d.dname FROM Dept d WHERE NOT EXISTS
		(SELECT 1 FROM Emp e WHERE e.did = d.did)`
	checkEquivalent(t, db, qs, func(q *logical.Query) {
		st := UnnestSubqueries(q)
		if st.AntiJoins != 1 {
			t.Errorf("expected 1 antijoin, got %+v", st)
		}
	})
}

func TestUnnestNotInNullable(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 500, Depts: 20})
	// Emp.did is nullable: NOT IN must NOT unnest (NULL semantics).
	qs := `SELECT d.dname FROM Dept d WHERE d.did NOT IN (SELECT e.did FROM Emp e)`
	_, after := checkEquivalent(t, db, qs, func(q *logical.Query) {
		st := UnnestSubqueries(q)
		if st.AntiJoins != 0 {
			t.Errorf("nullable NOT IN must not become antijoin: %+v", st)
		}
	})
	if countSubqueries(after) == 0 {
		t.Error("subquery should remain for tuple-iteration")
	}
	// eid/did keys are NOT NULL: this one may unnest.
	qs = `SELECT e.name FROM Emp e WHERE e.eid NOT IN (SELECT d.mgr FROM Dept d WHERE d.budget > 500)`
	// Dept.mgr is nullable per schema? mgr has no NOT NULL: check it stays.
	checkEquivalent(t, db, qs, func(q *logical.Query) { UnnestSubqueries(q) })
	qs = `SELECT e.name FROM Emp e WHERE e.eid NOT IN (SELECT d.did FROM Dept d WHERE d.budget > 900)`
	checkEquivalent(t, db, qs, func(q *logical.Query) {
		st := UnnestSubqueries(q)
		if st.AntiJoins != 1 {
			t.Errorf("NOT NULL NOT IN should become antijoin: %+v", st)
		}
	})
}

func TestUnnestScalarAggCountBug(t *testing.T) {
	// The paper's COUNT example: departments where num_machines >= the
	// number of employees — including departments with NO employees, which
	// the naive join-based flattening would lose.
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 200, Depts: 40})
	qs := `SELECT d.dname FROM Dept d WHERE d.num_machines >=
		(SELECT COUNT(*) FROM Emp e WHERE e.did = d.did)`
	_, after := checkEquivalent(t, db, qs, func(q *logical.Query) {
		st := UnnestSubqueries(q)
		if st.OuterJoinAggs != 1 {
			t.Errorf("expected outerjoin+agg unnesting, got %+v", st)
		}
	})
	if countJoinKind(after, logical.LeftOuterJoin) != 1 {
		t.Error("left outer join missing after unnesting")
	}
	if countSubqueries(after) != 0 {
		t.Error("subquery should be gone")
	}
}

func TestUnnestScalarAggAvg(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 300, Depts: 30})
	qs := `SELECT e.name FROM Emp e WHERE e.sal >
		(SELECT AVG(e2.sal) FROM Emp e2 WHERE e2.did = e.did)`
	checkEquivalent(t, db, qs, func(q *logical.Query) {
		st := UnnestSubqueries(q)
		if st.OuterJoinAggs != 1 {
			t.Errorf("expected outerjoin+agg unnesting, got %+v", st)
		}
	})
}

func TestUnnestReducesSubqueryEvals(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 1000, Depts: 30})
	qs := `SELECT d.dname FROM Dept d WHERE EXISTS
		(SELECT 1 FROM Emp e WHERE e.did = d.did)`
	nested := buildQuery(t, db, qs)
	ctxN := exec.NewCtx(db.Store, nested.Meta)
	if _, err := ctxN.RunQuery(nested); err != nil {
		t.Fatal(err)
	}
	flat := buildQuery(t, db, qs)
	UnnestSubqueries(flat)
	ctxF := exec.NewCtx(db.Store, flat.Meta)
	if _, err := ctxF.RunQuery(flat); err != nil {
		t.Fatal(err)
	}
	if ctxN.Counters.SubqueryEvals != 30 {
		t.Errorf("tuple iteration should evaluate the subquery once per Dept row: %d", ctxN.Counters.SubqueryEvals)
	}
	if ctxF.Counters.SubqueryEvals != 0 {
		t.Errorf("unnested query should not evaluate subqueries: %d", ctxF.Counters.SubqueryEvals)
	}
	if ctxF.Counters.RowsProcessed >= ctxN.Counters.RowsProcessed {
		t.Errorf("unnested should process fewer rows: %d vs %d",
			ctxF.Counters.RowsProcessed, ctxN.Counters.RowsProcessed)
	}
}

func TestPushDownGroupBy(t *testing.T) {
	db := workload.Star(workload.StarConfig{FactRows: 5000, DimRows: []int{50}, Seed: 3})
	qs := `SELECT dim1.attr, SUM(sales.amount), COUNT(*), MIN(sales.qty), AVG(sales.amount)
		FROM sales, dim1 WHERE sales.k1 = dim1.k GROUP BY dim1.attr`
	_, after := checkEquivalent(t, db, qs, func(q *logical.Query) {
		if !PushDownGroupBy(q) {
			t.Error("pushdown should apply")
		}
	})
	// Two GroupBys now: partial below the join, final above.
	n := 0
	logical.VisitRel(after.Root, func(e logical.RelExpr) {
		if _, ok := e.(*logical.GroupBy); ok {
			n++
		}
	})
	if n != 2 {
		t.Errorf("expected staged aggregation (2 group-bys), got %d\n%s", n, logical.Format(after.Root, after.Meta))
	}
}

func TestPushDownGroupByReducesWork(t *testing.T) {
	db := workload.Star(workload.StarConfig{FactRows: 20000, DimRows: []int{20}, Seed: 5})
	qs := `SELECT dim1.attr, SUM(sales.amount) FROM sales, dim1
		WHERE sales.k1 = dim1.k GROUP BY dim1.attr`
	plain := buildQuery(t, db, qs)
	ctxP := exec.NewCtx(db.Store, plain.Meta)
	if _, err := ctxP.RunQuery(plain); err != nil {
		t.Fatal(err)
	}
	pushed := buildQuery(t, db, qs)
	PushDownGroupBy(pushed)
	ctxQ := exec.NewCtx(db.Store, pushed.Meta)
	if _, err := ctxQ.RunQuery(pushed); err != nil {
		t.Fatal(err)
	}
	// Early aggregation collapses 20000 fact rows to ≤20 partials before
	// the join: the join side work must shrink dramatically.
	if ctxQ.Counters.RowsProcessed >= ctxP.Counters.RowsProcessed {
		t.Errorf("eager aggregation should reduce rows processed: %d vs %d",
			ctxQ.Counters.RowsProcessed, ctxP.Counters.RowsProcessed)
	}
}

func TestPushDownGroupBySkipsDistinct(t *testing.T) {
	db := workload.Star(workload.StarConfig{FactRows: 1000, DimRows: []int{20}, Seed: 7})
	qs := `SELECT dim1.attr, COUNT(DISTINCT sales.qty) FROM sales, dim1
		WHERE sales.k1 = dim1.k GROUP BY dim1.attr`
	checkEquivalent(t, db, qs, func(q *logical.Query) {
		if PushDownGroupBy(q) {
			t.Error("DISTINCT aggregates must not be staged")
		}
	})
}

func TestAssociateJoinOuterjoin(t *testing.T) {
	db := workload.Chain(workload.ChainConfig{Tables: 3, RowsPer: []int{300, 100, 50}, Seed: 9})
	// R join (S LOJ T) with join pred touching R and S only.
	qs := `SELECT r1.payload FROM r1 JOIN (r2 LEFT OUTER JOIN r3 ON r2.fk = r3.pk) ON r1.fk = r2.pk`
	_, after := checkEquivalent(t, db, qs, func(q *logical.Query) {
		if !AssociateJoinOuterjoin(q) {
			t.Error("associativity should apply")
		}
	})
	// The LOJ must now be the root join with the inner join below-left.
	var topJoin *logical.Join
	logical.VisitRel(after.Root, func(e logical.RelExpr) {
		if j, ok := e.(*logical.Join); ok && topJoin == nil {
			topJoin = j
		}
	})
	if topJoin == nil || topJoin.Kind != logical.LeftOuterJoin {
		t.Fatalf("expected LOJ on top, got %v", topJoin)
	}
	if inner, ok := topJoin.Left.(*logical.Join); !ok || inner.Kind != logical.InnerJoin {
		t.Error("inner join should have moved below the outer join")
	}
}

func TestAssociateDoesNotApplyAcrossT(t *testing.T) {
	db := workload.Chain(workload.ChainConfig{Tables: 3, RowsPer: []int{100, 50, 30}, Seed: 11})
	// Join predicate touches T: identity must not fire.
	qs := `SELECT r1.payload FROM r1 JOIN (r2 LEFT OUTER JOIN r3 ON r2.fk = r3.pk) ON r1.fk = r3.pk`
	checkEquivalent(t, db, qs, func(q *logical.Query) {
		if AssociateJoinOuterjoin(q) {
			t.Error("identity must not apply when the join predicate references T")
		}
	})
}

func TestApplyMagicPaperExample(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 800, Depts: 50})
	if err := db.Cat.AddView(&catalog.View{Name: "DepAvgSal",
		SQL: "SELECT e.did AS did, AVG(e.sal) AS avgsal FROM Emp e GROUP BY e.did"}); err != nil {
		t.Fatal(err)
	}
	// The §4.3 query.
	qs := `SELECT e.eid, e.sal FROM Emp e, Dept d, DepAvgSal v
		WHERE e.did = d.did AND e.did = v.did
		AND e.age < 30 AND d.budget > 900 AND e.sal > v.avgsal`
	_, after := checkEquivalent(t, db, qs, func(q *logical.Query) {
		st := ApplyMagic(q)
		if st.ViewsRestricted != 1 {
			t.Errorf("expected the view to be restricted, got %+v", st)
		}
	})
	if countJoinKind(after, logical.SemiJoin) != 1 {
		t.Error("magic semijoin missing")
	}
}

func TestApplyMagicReducesWork(t *testing.T) {
	db := workload.EmpDept(workload.EmpDeptConfig{Emps: 1200, Depts: 80})
	if err := db.Cat.AddView(&catalog.View{Name: "DepAvgSal",
		SQL: "SELECT e.did AS did, AVG(e.sal) AS avgsal FROM Emp e GROUP BY e.did"}); err != nil {
		t.Fatal(err)
	}
	qs := `SELECT e.eid FROM Emp e, Dept d, DepAvgSal v
		WHERE e.did = d.did AND e.did = v.did
		AND e.age < 24 AND d.budget > 950 AND e.sal > v.avgsal`
	plain := buildQuery(t, db, qs)
	ctxP := exec.NewCtx(db.Store, plain.Meta)
	resP, err := ctxP.RunQuery(plain)
	if err != nil {
		t.Fatal(err)
	}
	magic := buildQuery(t, db, qs)
	ApplyMagic(magic)
	ctxM := exec.NewCtx(db.Store, magic.Meta)
	resM, err := ctxM.RunQuery(magic)
	if err != nil {
		t.Fatal(err)
	}
	if len(resP.Rows) != len(resM.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(resP.Rows), len(resM.Rows))
	}
}

func TestMovePredicates(t *testing.T) {
	db := workload.Chain(workload.ChainConfig{Tables: 2, RowsPer: []int{900, 900}, Seed: 21})
	// r1.fk = r2.pk and r1.fk < 50: the derived r2.pk < 50 can use r2's
	// clustered primary index.
	qs := "SELECT r1.payload FROM r1, r2 WHERE r1.fk = r2.pk AND r1.fk < 50"
	_, after := checkEquivalent(t, db, qs, func(q *logical.Query) {
		if got := MovePredicates(q); got != 1 {
			t.Errorf("derived = %d, want 1", got)
		}
	})
	// The derived predicate must reference r2.pk.
	found := false
	logical.VisitRel(after.Root, func(e logical.RelExpr) {
		for _, s := range logical.Scalars(e) {
			for _, c := range logical.SplitConjunction(s) {
				cmp, ok := c.(*logical.Cmp)
				if !ok || cmp.Op != logical.CmpLt {
					continue
				}
				if col, ok := cmp.L.(*logical.Col); ok {
					cm := after.Meta.Column(col.ID)
					if cm.Binding == "r2" && cm.Name == "pk" {
						found = true
					}
				}
			}
		}
	})
	if !found {
		t.Errorf("derived predicate on r2.pk missing:\n%s", logical.Format(after.Root, after.Meta))
	}
	// Idempotent: a second pass derives nothing.
	if got := MovePredicates(after); got != 0 {
		t.Errorf("second pass derived %d predicates", got)
	}
}

func TestMovePredicatesTransitive(t *testing.T) {
	db := workload.Chain(workload.ChainConfig{Tables: 3, RowsPer: []int{500, 500, 500}, Seed: 23})
	// Equality chain r1.fk = r2.pk, r2.pk = r3.payload plus a range on r1.fk:
	// both other class members gain the range.
	qs := "SELECT r1.payload FROM r1, r2, r3 WHERE r1.fk = r2.pk AND r2.pk = r3.payload AND r1.fk BETWEEN 5 AND 90"
	checkEquivalent(t, db, qs, func(q *logical.Query) {
		if got := MovePredicates(q); got != 4 { // two bounds × two members
			t.Errorf("derived = %d, want 4", got)
		}
	})
}

func TestMovePredicatesNoEquiClasses(t *testing.T) {
	db := workload.Chain(workload.ChainConfig{Tables: 2, RowsPer: []int{100, 100}, Seed: 25})
	q := buildQuery(t, db, "SELECT r1.payload FROM r1, r2 WHERE r1.fk < r2.pk AND r1.payload = 7")
	if got := MovePredicates(q); got != 0 {
		t.Errorf("non-equi join should derive nothing, got %d", got)
	}
}
