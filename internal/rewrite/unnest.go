package rewrite

import (
	"repro/internal/datum"
	"repro/internal/logical"
)

// UnnestStats reports what the unnesting pass accomplished (E8 reads these).
type UnnestStats struct {
	SemiJoins     int // IN / EXISTS turned into semijoins
	AntiJoins     int // NOT IN / NOT EXISTS turned into antijoins
	OuterJoinAggs int // correlated scalar-aggregate subqueries turned into LOJ + group-by
	Remaining     int // subqueries left for tuple-iteration execution
}

// UnnestSubqueries rewrites nested subqueries in filters into joins where the
// transformation is semantics-preserving (§4.2.2):
//
//   - [NOT] EXISTS (corr. SPJ)   → semi/anti join (Dayal's semijoin view)
//   - e IN (corr. SPJ)           → semijoin on e = output ∧ correlation
//   - e NOT IN (...)             → antijoin, only when NULLs are impossible
//   - e ⟨cmp⟩ (corr. scalar agg) → left outerjoin + group-by + having
//     (the Muralikrishna/Dayal form; COUNT(*) becomes a count over a marker
//     column so empty groups count zero)
//
// Subqueries that do not match a safe pattern are left in place; the executor
// evaluates them with tuple-iteration semantics.
func UnnestSubqueries(q *logical.Query) UnnestStats {
	var st UnnestStats
	q.Root = unnestRel(q.Root, q.Meta, &st)
	logical.VisitRel(q.Root, func(e logical.RelExpr) {
		for _, s := range logical.Scalars(e) {
			logical.VisitScalar(s, func(sc logical.Scalar) {
				if _, ok := sc.(*logical.Subquery); ok {
					st.Remaining++
				}
			})
		}
	})
	return st
}

func unnestRel(e logical.RelExpr, md *logical.Metadata, st *UnnestStats) logical.RelExpr {
	// Bottom-up.
	ch := logical.Children(e)
	if len(ch) > 0 {
		nch := make([]logical.RelExpr, len(ch))
		for i, c := range ch {
			nch[i] = unnestRel(c, md, st)
		}
		e = logical.WithChildren(e, nch)
	}
	sel, ok := e.(*logical.Select)
	if !ok {
		return e
	}
	input := sel.Input
	var remaining []logical.Scalar
	for i := 0; i < len(sel.Filters); i++ {
		f := normalizeNegation(sel.Filters[i])
		if out, ok := unnestFilter(input, f, md, st); ok {
			input = out
			continue
		}
		remaining = append(remaining, sel.Filters[i])
	}
	if len(remaining) == 0 {
		return input
	}
	return &logical.Select{Input: input, Filters: remaining}
}

// normalizeNegation folds NOT(subquery) into the subquery's Negated flag.
func normalizeNegation(f logical.Scalar) logical.Scalar {
	if n, ok := f.(*logical.Not); ok {
		if sub, ok := n.E.(*logical.Subquery); ok {
			cp := *sub
			cp.Negated = !sub.Negated
			return &cp
		}
	}
	return f
}

// unnestFilter attempts to convert one filter over the current input into a
// join; it returns the new input and true on success.
func unnestFilter(input logical.RelExpr, f logical.Scalar, md *logical.Metadata, st *UnnestStats) (logical.RelExpr, bool) {
	switch t := f.(type) {
	case *logical.Subquery:
		switch t.Mode {
		case logical.SubExists:
			return unnestExists(input, t, md, st)
		case logical.SubIn:
			return unnestIn(input, t, md, st)
		}
	case *logical.Cmp:
		// e cmp (scalar agg subquery) — on either side.
		if sub, ok := t.R.(*logical.Subquery); ok && sub.Mode == logical.SubScalar && !sub.Negated {
			return unnestScalarAgg(input, t, sub, false, md, st)
		}
		if sub, ok := t.L.(*logical.Subquery); ok && sub.Mode == logical.SubScalar && !sub.Negated {
			return unnestScalarAgg(input, t, sub, true, md, st)
		}
	}
	return input, false
}

func unnestExists(input logical.RelExpr, sub *logical.Subquery, md *logical.Metadata, st *UnnestStats) (logical.RelExpr, bool) {
	if hasGroupBy(sub.Plan) || logical.HasSubqueryRel(sub.Plan) {
		return input, false
	}
	plan, preds, ok := pullCorrelated(sub.Plan, sub.OuterCols)
	if !ok {
		return input, false
	}
	kind := logical.SemiJoin
	if sub.Negated {
		kind = logical.AntiJoin
		st.AntiJoins++
	} else {
		st.SemiJoins++
	}
	return &logical.Join{Kind: kind, Left: input, Right: plan, On: preds}, true
}

func unnestIn(input logical.RelExpr, sub *logical.Subquery, md *logical.Metadata, st *UnnestStats) (logical.RelExpr, bool) {
	if hasGroupBy(sub.Plan) || logical.HasSubqueryRel(sub.Plan) {
		return input, false
	}
	out := sub.OutCol
	if out == 0 {
		var ok bool
		out, ok = firstOutputCol(sub.Plan)
		if !ok {
			return input, false
		}
	}
	if sub.Negated {
		// NOT IN is an antijoin only when neither side can be NULL.
		lcol, lok := sub.Scalar.(*logical.Col)
		if !lok || !notNullCol(lcol.ID, md) || !notNullCol(out, md) {
			return input, false
		}
	}
	plan, preds, ok := pullCorrelated(sub.Plan, sub.OuterCols)
	if !ok {
		return input, false
	}
	preds = append(preds, &logical.Cmp{Op: logical.CmpEq, L: sub.Scalar, R: &logical.Col{ID: out}})
	kind := logical.SemiJoin
	if sub.Negated {
		kind = logical.AntiJoin
		st.AntiJoins++
	} else {
		st.SemiJoins++
	}
	return &logical.Join{Kind: kind, Left: input, Right: plan, On: preds}, true
}

// unnestScalarAgg handles e ⟨cmp⟩ (SELECT agg(...) FROM ... WHERE corr) — the
// paper's Dept.num_machines ≥ (SELECT COUNT(*) ...) example. The outer block
// must expose unique keys (primary keys of all its base tables) so grouping
// restores exactly one row per outer row.
func unnestScalarAgg(input logical.RelExpr, cmp *logical.Cmp, sub *logical.Subquery, subOnLeft bool, md *logical.Metadata, st *UnnestStats) (logical.RelExpr, bool) {
	if sub.OuterCols.Empty() {
		return input, false // uncorrelated: evaluated once anyway
	}
	// Peel passthrough projections to reach the scalar GroupBy.
	plan := sub.Plan
	refID := logical.ColumnID(0)
	for {
		if p, ok := plan.(*logical.Project); ok && p.Passthrough() {
			if refID == 0 {
				if len(p.Items) == 0 {
					return input, false
				}
				refID = p.Items[0].ID
			}
			plan = p.Input
			continue
		}
		break
	}
	g, ok := plan.(*logical.GroupBy)
	if !ok || len(g.GroupCols) != 0 || len(g.Aggs) == 0 {
		return input, false
	}
	if refID == 0 {
		refID = g.Aggs[0].ID
	}
	// The compared value must be the (single) aggregate output.
	aggIdx := -1
	for i, a := range g.Aggs {
		if a.ID == refID {
			aggIdx = i
		}
	}
	if aggIdx < 0 {
		return input, false
	}
	if hasGroupBy(g.Input) || logical.HasSubqueryRel(g.Input) {
		return input, false
	}
	// The outer side needs unique keys to group back to one row per input row.
	if !hasUniqueKeys(input, md) {
		return input, false
	}
	body, preds, ok := pullCorrelated(g.Input, sub.OuterCols)
	if !ok || len(preds) == 0 {
		return input, false
	}
	// Add a marker column so COUNT(*) counts matches, not padded rows.
	marker := md.AddColumn(logical.ColumnMeta{Name: "m", Kind: datum.KindInt})
	items := passthroughOf(body)
	items = append(items, logical.ProjectItem{ID: marker, Expr: &logical.Const{Val: datum.NewInt(1)}})
	body = &logical.Project{Input: body, Items: items}

	loj := &logical.Join{Kind: logical.LeftOuterJoin, Left: input, Right: body, On: preds}

	// Group on every outer column (the unique keys make groups = rows).
	groupCols := input.OutputCols().Ordered()
	aggs := make([]logical.AggItem, len(g.Aggs))
	for i, a := range g.Aggs {
		na := a
		if a.Fn == logical.AggCount && a.Arg == nil {
			na.Arg = &logical.Col{ID: marker} // COUNT(*) → COUNT(m)
		}
		aggs[i] = na
	}
	grouped := &logical.GroupBy{Input: loj, GroupCols: groupCols, Aggs: aggs}

	// The comparison becomes a HAVING-style filter above the grouping.
	var filter logical.Scalar
	if subOnLeft {
		filter = &logical.Cmp{Op: cmp.Op, L: &logical.Col{ID: refID}, R: cmp.R}
	} else {
		filter = &logical.Cmp{Op: cmp.Op, L: cmp.L, R: &logical.Col{ID: refID}}
	}
	st.OuterJoinAggs++
	return &logical.Select{Input: grouped, Filters: []logical.Scalar{filter}}, true
}

// passthroughOf builds identity projection items for a node's outputs.
func passthroughOf(e logical.RelExpr) []logical.ProjectItem {
	var items []logical.ProjectItem
	e.OutputCols().ForEach(func(c logical.ColumnID) {
		items = append(items, logical.ProjectItem{ID: c, Expr: &logical.Col{ID: c}})
	})
	return items
}

// hasUniqueKeys reports whether every base table occurrence in e declares a
// primary key whose columns appear in e's output (so the output has a key).
func hasUniqueKeys(e logical.RelExpr, md *logical.Metadata) bool {
	out := e.OutputCols()
	ok := true
	sawScan := false
	logical.VisitRel(e, func(n logical.RelExpr) {
		switch t := n.(type) {
		case *logical.Scan:
			sawScan = true
			if len(t.Table.PrimaryKey) == 0 {
				ok = false
				return
			}
			for _, ord := range t.Table.PrimaryKey {
				found := false
				for _, id := range t.Cols {
					if md.Column(id).BaseOrd == ord {
						if out.Contains(id) {
							found = true
						}
						break
					}
				}
				if !found {
					ok = false
				}
			}
		case *logical.GroupBy, *logical.Limit, *logical.Values:
			ok = false
		}
	})
	return ok && sawScan
}

func notNullCol(id logical.ColumnID, md *logical.Metadata) bool {
	cm := md.Column(id)
	return cm.Base != nil && cm.Base.Cols[cm.BaseOrd].NotNull
}

func hasGroupBy(e logical.RelExpr) bool {
	found := false
	logical.VisitRel(e, func(n logical.RelExpr) {
		if _, ok := n.(*logical.GroupBy); ok {
			found = true
		}
	})
	return found
}

// firstOutputCol finds the column ID of the subquery's first (and for IN,
// only) projected column.
func firstOutputCol(e logical.RelExpr) (logical.ColumnID, bool) {
	switch t := e.(type) {
	case *logical.Project:
		if len(t.Items) == 0 {
			return 0, false
		}
		return t.Items[0].ID, true
	case *logical.GroupBy:
		if len(t.GroupCols) > 0 {
			return t.GroupCols[0], true
		}
		if len(t.Aggs) > 0 {
			return t.Aggs[0].ID, true
		}
		return 0, false
	case *logical.Select:
		return firstOutputCol(t.Input)
	case *logical.Limit:
		return firstOutputCol(t.Input)
	case *logical.Scan:
		if len(t.Cols) == 0 {
			return 0, false
		}
		return t.Cols[0], true
	case *logical.Values:
		if len(t.Cols) == 0 {
			return 0, false
		}
		return t.Cols[0], true
	}
	return 0, false
}

// pullCorrelated removes conjuncts referencing outer columns from Select
// nodes inside e, returning the cleansed tree and the pulled predicates. It
// fails (ok=false) when a correlated predicate sits somewhere it cannot be
// pulled from (under grouping, limits or the null-producing side of an outer
// join), or when pulled predicates would reference pruned columns.
func pullCorrelated(e logical.RelExpr, outer logical.ColSet) (logical.RelExpr, []logical.Scalar, bool) {
	switch t := e.(type) {
	case *logical.Select:
		in, preds, ok := pullCorrelated(t.Input, outer)
		if !ok {
			return nil, nil, false
		}
		var keep []logical.Scalar
		for _, f := range t.Filters {
			if logical.ScalarCols(f).Intersects(outer) {
				preds = append(preds, f)
			} else {
				keep = append(keep, f)
			}
		}
		if len(keep) == 0 {
			return in, preds, true
		}
		return &logical.Select{Input: in, Filters: keep}, preds, true
	case *logical.Project:
		in, preds, ok := pullCorrelated(t.Input, outer)
		if !ok {
			return nil, nil, false
		}
		if len(preds) == 0 {
			return &logical.Project{Input: in, Items: t.Items}, nil, true
		}
		// Extend the projection so pulled predicates keep their inputs.
		items := append([]logical.ProjectItem{}, t.Items...)
		have := t.OutputCols()
		for _, p := range preds {
			logical.ScalarCols(p).Difference(outer).ForEach(func(c logical.ColumnID) {
				if !have.Contains(c) && in.OutputCols().Contains(c) {
					items = append(items, logical.ProjectItem{ID: c, Expr: &logical.Col{ID: c}})
					have.Add(c)
				}
			})
		}
		// If a needed column is still missing, the projection computed it
		// away; give up.
		for _, p := range preds {
			if !logical.ScalarCols(p).Difference(outer).SubsetOf(have) {
				return nil, nil, false
			}
		}
		return &logical.Project{Input: in, Items: items}, preds, true
	case *logical.Join:
		if t.Kind == logical.InnerJoin {
			l, lp, ok := pullCorrelated(t.Left, outer)
			if !ok {
				return nil, nil, false
			}
			r, rp, ok := pullCorrelated(t.Right, outer)
			if !ok {
				return nil, nil, false
			}
			var on, pulled []logical.Scalar
			for _, f := range t.On {
				if logical.ScalarCols(f).Intersects(outer) {
					pulled = append(pulled, f)
				} else {
					on = append(on, f)
				}
			}
			pulled = append(pulled, lp...)
			pulled = append(pulled, rp...)
			return &logical.Join{Kind: logical.InnerJoin, Left: l, Right: r, On: on}, pulled, true
		}
		// Correlation under other join kinds is unsafe to pull.
		if logical.FreeCols(e).Intersects(outer) {
			return nil, nil, false
		}
		return e, nil, true
	case *logical.Scan, *logical.Values:
		return e, nil, true
	default:
		if logical.FreeCols(e).Intersects(outer) {
			return nil, nil, false
		}
		return e, nil, true
	}
}
