// Package servingbench measures the concurrent serving layer: N session
// goroutines each issue a stream of parameterized queries against one shared
// engine, in three modes — plain Exec with literals inlined (parse + optimize
// every time), prepared statements with the plan cache disabled (parse once,
// optimize every time), and prepared statements with the cache on (parse
// once, optimize only on plan-cache misses). Every query carries an ORDER BY
// or is a single-row aggregate, so results are order-deterministic and the
// bench certifies all three modes bit-identical per query instance.
//
// It lives outside internal/experiments because it drives the top-level
// engine package, which the experiments package cannot import (the engine's
// own benchmarks import experiments).
package servingbench

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	queryopt "repro"
)

// Point is one (mode, sessions) measurement.
type Point struct {
	Mode     string  `json:"mode"`
	Sessions int     `json:"sessions"`
	Queries  int     `json:"queries"`
	WallSec  float64 `json:"wall_seconds"`
	QPS      float64 `json:"qps"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	// HitRate is plan-cache hits / executions (0 for modes that never hit).
	HitRate float64 `json:"hit_rate"`
	// Identical certifies every query instance returned exactly the rows the
	// exec-literal baseline returned.
	Identical bool `json:"identical"`
}

// Result is the full sweep plus host information (qps on one core measures
// dispatch overhead, not parallel speedup).
type Result struct {
	TableRows  int     `json:"table_rows"`
	PerSession int     `json:"queries_per_session"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	CPUs       int     `json:"cpus"`
	Points     []Point `json:"points"`
}

// query is one corpus template: parameterized text for Prepare, a literal
// formatter for the Exec baseline, and a binding generator.
type query struct {
	param string
	lit   func(args []int64) string
	args  func(g, i int) []int64
}

// corpus returns the bench queries. Bindings rotate over a small set of
// distinct values per template so the plan cache warms quickly; every
// result is order-deterministic.
func corpus() []query {
	fk := func(g, i int) int64 { return int64(((g*7 + i) % 16) * 12) }
	av := func(g, i int) int64 { return int64((g + i) % 8 * 2) }
	return []query{
		{
			param: "SELECT pk, a FROM r WHERE fk = ? ORDER BY pk",
			lit: func(a []int64) string {
				return fmt.Sprintf("SELECT pk, a FROM r WHERE fk = %d ORDER BY pk", a[0])
			},
			args: func(g, i int) []int64 { return []int64{fk(g, i)} },
		},
		{
			param: "SELECT COUNT(*), SUM(f) FROM r WHERE a > ?",
			lit: func(a []int64) string {
				return fmt.Sprintf("SELECT COUNT(*), SUM(f) FROM r WHERE a > %d", a[0])
			},
			args: func(g, i int) []int64 { return []int64{av(g, i)} },
		},
		{
			param: "SELECT fk, COUNT(*) FROM r WHERE a > ? GROUP BY fk ORDER BY fk",
			lit: func(a []int64) string {
				return fmt.Sprintf("SELECT fk, COUNT(*) FROM r WHERE a > %d GROUP BY fk ORDER BY fk", a[0])
			},
			args: func(g, i int) []int64 { return []int64{av(g, i)} },
		},
		{
			param: "SELECT pk FROM r WHERE fk >= $1 AND fk < $2 ORDER BY pk",
			lit: func(a []int64) string {
				return fmt.Sprintf("SELECT pk FROM r WHERE fk >= %d AND fk < %d ORDER BY pk", a[0], a[1])
			},
			args: func(g, i int) []int64 { lo := fk(g, i); return []int64{lo, lo + 24} },
		},
	}
}

// newEngine builds the bench schema: one indexed table sized so queries stay
// short (OLTP-style), keeping parse/optimize a measurable share of latency.
func newEngine(tableRows int, planCacheSize int) (*queryopt.Engine, error) {
	e := queryopt.New(queryopt.Options{PlanCacheSize: planCacheSize})
	if _, err := e.Exec(`CREATE TABLE r (pk INT NOT NULL, fk INT, a INT, f FLOAT, PRIMARY KEY (pk))`); err != nil {
		return nil, err
	}
	if _, err := e.Exec(`CREATE INDEX r_fk ON r (fk)`); err != nil {
		return nil, err
	}
	rows := make([][]any, tableRows)
	for i := 0; i < tableRows; i++ {
		// Deterministic skew-free data; fk spans [0, 192), a spans [0, 20).
		rows[i] = []any{i, (i * 13) % 192, (i * 7) % 20, float64(i%1000) / 4}
	}
	if err := e.LoadRows("r", rows); err != nil {
		return nil, err
	}
	if _, err := e.Exec("ANALYZE"); err != nil {
		return nil, err
	}
	return e, nil
}

// fingerprint renders a result deterministically (floats exact).
func fingerprint(res *queryopt.Result) string {
	var sb strings.Builder
	for _, r := range res.Rows {
		for j, v := range r {
			if j > 0 {
				sb.WriteByte('|')
			}
			if f, ok := v.(float64); ok {
				sb.WriteString(strconv.FormatFloat(f, 'x', -1, 64))
			} else {
				fmt.Fprint(&sb, v)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Run sweeps the session counts for all three modes. tableRows sizes the
// table; perSession is the number of queries each session issues.
func Run(tableRows, perSession int, sessions []int) (*Result, error) {
	qs := corpus()
	out := &Result{
		TableRows:  tableRows,
		PerSession: perSession,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUs:       runtime.NumCPU(),
	}

	// Baseline answers, one per (session, query-index) instance, computed
	// once on a warm engine: modes are compared against these fingerprints.
	maxSessions := 0
	for _, s := range sessions {
		if s > maxSessions {
			maxSessions = s
		}
	}
	base, err := newEngine(tableRows, -1)
	if err != nil {
		return nil, err
	}
	want := make([][]string, maxSessions)
	for g := 0; g < maxSessions; g++ {
		want[g] = make([]string, perSession)
		for i := 0; i < perSession; i++ {
			q := qs[(g+i)%len(qs)]
			res, err := base.Exec(q.lit(q.args(g, i)))
			if err != nil {
				return nil, fmt.Errorf("servingbench: baseline %q: %w", q.param, err)
			}
			want[g][i] = fingerprint(res)
		}
	}

	type mode struct {
		name      string
		cacheSize int  // engine plan-cache size
		prepared  bool // use Stmt.Exec instead of literal Exec
	}
	modes := []mode{
		{"exec-literal", -1, false},
		{"prepared-reoptimize", -1, true},
		{"prepared-cached", 0, true},
	}

	for _, m := range modes {
		for _, nSessions := range sessions {
			e, err := newEngine(tableRows, m.cacheSize)
			if err != nil {
				return nil, err
			}
			var stmts []*queryopt.Stmt
			if m.prepared {
				for _, q := range qs {
					st, err := e.Prepare(q.param)
					if err != nil {
						return nil, fmt.Errorf("servingbench: prepare %q: %w", q.param, err)
					}
					stmts = append(stmts, st)
				}
			}
			latencies := make([][]float64, nSessions)
			identical := true
			var idMu sync.Mutex
			var wg sync.WaitGroup
			var firstErr error
			start := time.Now()
			for g := 0; g < nSessions; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					lats := make([]float64, 0, perSession)
					for i := 0; i < perSession; i++ {
						qi := (g + i) % len(qs)
						q := qs[qi]
						args := q.args(g, i)
						t0 := time.Now()
						var res *queryopt.Result
						var err error
						if m.prepared {
							goArgs := make([]any, len(args))
							for k, a := range args {
								goArgs[k] = a
							}
							res, err = stmts[qi].Exec(goArgs...)
						} else {
							res, err = e.Exec(q.lit(args))
						}
						lats = append(lats, time.Since(t0).Seconds())
						match := err == nil && fingerprint(res) == want[g][i]
						idMu.Lock()
						if err != nil && firstErr == nil {
							firstErr = fmt.Errorf("servingbench: %s: %w", m.name, err)
						}
						if err == nil && !match {
							identical = false
						}
						idMu.Unlock()
						if err != nil {
							return
						}
					}
					latencies[g] = lats
				}(g)
			}
			wg.Wait()
			wall := time.Since(start).Seconds()
			if firstErr != nil {
				return nil, firstErr
			}
			var all []float64
			for _, l := range latencies {
				all = append(all, l...)
			}
			sort.Float64s(all)
			pct := func(p float64) float64 {
				if len(all) == 0 {
					return 0
				}
				idx := int(p * float64(len(all)-1))
				return all[idx] * 1000
			}
			st := e.PlanCacheStats()
			hitRate := 0.0
			if st.Hits+st.Misses > 0 {
				hitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
			}
			total := nSessions * perSession
			out.Points = append(out.Points, Point{
				Mode:     m.name,
				Sessions: nSessions,
				Queries:  total,
				WallSec:  wall,
				QPS:      float64(total) / wall,
				P50Ms:    pct(0.50),
				P99Ms:    pct(0.99),
				HitRate:  hitRate,
				Identical: identical,
			})
		}
	}
	return out, nil
}
