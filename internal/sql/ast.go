package sql

import (
	"fmt"
	"strings"

	"repro/internal/datum"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any scalar expression node.
type Expr interface {
	expr()
	String() string
}

// TableExpr is any FROM-clause item.
type TableExpr interface{ tableExpr() }

// --- Statements ---

// SelectStmt is a (possibly nested) SELECT query block.
type SelectStmt struct {
	Distinct bool
	Select   []SelectItem
	From     []TableExpr // comma-joined items; each may itself be a JoinExpr
	Where    Expr        // nil if absent
	GroupBy  []Expr
	// Grouping selects plain GROUP BY or the CUBE/ROLLUP extensions (§7.4's
	// decision-support constructs [24]).
	Grouping GroupingMode
	Having   Expr
	OrderBy  []OrderItem
	Limit    *int64
	// Union chains additional SELECT arms combined with UNION [ALL]. The
	// OrderBy/Limit of this (first) statement apply to the whole union.
	Union []UnionArm
}

// GroupingMode distinguishes GROUP BY flavors.
type GroupingMode uint8

// Grouping modes.
const (
	GroupPlain GroupingMode = iota
	GroupCube
	GroupRollup
)

// UnionArm is one additional SELECT combined by UNION.
type UnionArm struct {
	// All keeps duplicates (UNION ALL); otherwise duplicates are removed.
	All  bool
	Stmt *SelectStmt
}

func (*SelectStmt) stmt() {}

// SelectItem is one projection in the select list.
type SelectItem struct {
	Star      bool   // SELECT *
	TableStar string // SELECT t.*  (table alias); empty otherwise
	Expr      Expr
	Alias     string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// CreateTableStmt creates a base table.
type CreateTableStmt struct {
	Name       string
	Cols       []ColDef
	PrimaryKey []string
}

func (*CreateTableStmt) stmt() {}

// ColDef is one column definition.
type ColDef struct {
	Name    string
	Kind    datum.Kind
	NotNull bool
}

// CreateIndexStmt creates an index.
type CreateIndexStmt struct {
	Name      string
	Table     string
	Cols      []string
	Unique    bool
	Clustered bool
}

func (*CreateIndexStmt) stmt() {}

// CreateViewStmt creates a (materialized) view.
type CreateViewStmt struct {
	Name         string
	Materialized bool
	Select       *SelectStmt
	// SQL is the original text of the SELECT body, retained so the catalog
	// can store the definition.
	SQL string
}

func (*CreateViewStmt) stmt() {}

// InsertStmt inserts literal rows.
type InsertStmt struct {
	Table string
	Rows  [][]Expr
}

func (*InsertStmt) stmt() {}

// AnalyzeStmt collects statistics for one table (or all when empty).
type AnalyzeStmt struct{ Table string }

func (*AnalyzeStmt) stmt() {}

// ExplainStmt wraps a statement whose plan should be displayed. With Analyze
// set (EXPLAIN ANALYZE <query>) the statement is also executed and the plan
// is annotated with per-operator runtime metrics.
type ExplainStmt struct {
	Stmt    Statement
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// --- Table expressions ---

// TableName references a base table or view, optionally aliased.
type TableName struct {
	Name  string
	Alias string // empty if none; effective name is Alias or Name
}

func (*TableName) tableExpr() {}

// Binding returns the name the table is known by in the query.
func (t *TableName) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// JoinKind enumerates join operators in the FROM clause.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeftOuter
	JoinRightOuter
	JoinFullOuter
	JoinCross
)

func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "INNER JOIN"
	case JoinLeftOuter:
		return "LEFT OUTER JOIN"
	case JoinRightOuter:
		return "RIGHT OUTER JOIN"
	case JoinFullOuter:
		return "FULL OUTER JOIN"
	case JoinCross:
		return "CROSS JOIN"
	}
	return "JOIN"
}

// JoinExpr is an explicit JOIN in the FROM clause.
type JoinExpr struct {
	Kind  JoinKind
	Left  TableExpr
	Right TableExpr
	On    Expr // nil for CROSS JOIN
}

func (*JoinExpr) tableExpr() {}

// SubqueryTable is a derived table: (SELECT ...) AS alias.
type SubqueryTable struct {
	Select *SelectStmt
	Alias  string
}

func (*SubqueryTable) tableExpr() {}

// --- Scalar expressions ---

// ColRef is a column reference, optionally qualified by table binding.
type ColRef struct {
	Table string // empty if unqualified
	Name  string
}

func (*ColRef) expr() {}
func (c *ColRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Lit is a literal value.
type Lit struct{ Val datum.D }

func (*Lit) expr()            {}
func (l *Lit) String() string { return l.Val.String() }

// Param is a statement parameter placeholder (`?` or `$n`). Ord is the
// 1-based ordinal; `?` placeholders are numbered left to right by the lexer.
type Param struct{ Ord int }

func (*Param) expr()            {}
func (p *Param) String() string { return fmt.Sprintf("$%d", p.Ord) }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpEq BinOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpLike
)

func (op BinOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpMod:
		return "%"
	case OpLike:
		return "LIKE"
	}
	return "?"
}

// Comparison reports whether the operator is a comparison (=, <>, <, <=, >, >=).
func (op BinOp) Comparison() bool { return op <= OpGe }

// BinExpr is a binary operation.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

func (*BinExpr) expr() {}
func (b *BinExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// NotExpr is logical negation.
type NotExpr struct{ E Expr }

func (*NotExpr) expr()            {}
func (n *NotExpr) String() string { return fmt.Sprintf("NOT %s", n.E) }

// NegExpr is arithmetic negation.
type NegExpr struct{ E Expr }

func (*NegExpr) expr()            {}
func (n *NegExpr) String() string { return fmt.Sprintf("-%s", n.E) }

// IsNullExpr tests for NULL.
type IsNullExpr struct {
	E       Expr
	Negated bool // IS NOT NULL
}

func (*IsNullExpr) expr() {}
func (e *IsNullExpr) String() string {
	if e.Negated {
		return fmt.Sprintf("%s IS NOT NULL", e.E)
	}
	return fmt.Sprintf("%s IS NULL", e.E)
}

// FuncCall is a function or aggregate invocation.
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool // COUNT(DISTINCT x)
}

func (*FuncCall) expr() {}
func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	var args []string
	for _, a := range f.Args {
		args = append(args, a.String())
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return f.Name + "(" + d + strings.Join(args, ", ") + ")"
}

// AggregateFuncs lists the supported aggregate function names.
var AggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// IsAggregate reports whether the call is an aggregate function.
func (f *FuncCall) IsAggregate() bool { return AggregateFuncs[f.Name] }

// InExpr is "e [NOT] IN (list)" or "e [NOT] IN (subquery)".
type InExpr struct {
	E       Expr
	List    []Expr      // nil when Sub is set
	Sub     *SelectStmt // nil when List is set
	Negated bool
}

func (*InExpr) expr() {}
func (e *InExpr) String() string {
	neg := ""
	if e.Negated {
		neg = "NOT "
	}
	if e.Sub != nil {
		return fmt.Sprintf("%s %sIN (<subquery>)", e.E, neg)
	}
	var items []string
	for _, it := range e.List {
		items = append(items, it.String())
	}
	return fmt.Sprintf("%s %sIN (%s)", e.E, neg, strings.Join(items, ", "))
}

// ExistsExpr is "[NOT] EXISTS (subquery)".
type ExistsExpr struct {
	Sub     *SelectStmt
	Negated bool
}

func (*ExistsExpr) expr() {}
func (e *ExistsExpr) String() string {
	if e.Negated {
		return "NOT EXISTS (<subquery>)"
	}
	return "EXISTS (<subquery>)"
}

// SubqueryExpr is a scalar subquery used as a value.
type SubqueryExpr struct{ Sub *SelectStmt }

func (*SubqueryExpr) expr()            {}
func (e *SubqueryExpr) String() string { return "(<scalar subquery>)" }

// BetweenExpr is "e [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	E, Lo, Hi Expr
	Negated   bool
}

func (*BetweenExpr) expr() {}
func (e *BetweenExpr) String() string {
	neg := ""
	if e.Negated {
		neg = "NOT "
	}
	return fmt.Sprintf("%s %sBETWEEN %s AND %s", e.E, neg, e.Lo, e.Hi)
}
