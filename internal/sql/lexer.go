// Package sql implements the SQL front end: a lexer, an AST, and a
// recursive-descent parser for the SQL subset the paper's techniques target —
// select-project-join blocks with grouping, ordering, nested subqueries
// (IN / EXISTS / scalar aggregates), outer joins, views and basic DDL/DML.
package sql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol // punctuation and operators
	TokParam  // statement parameter placeholder: `?` or `$n`; Text is the 1-based ordinal
)

// Token is one lexical token with its source position (1-based).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int    // byte offset in the input
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	case TokParam:
		return "$" + t.Text
	default:
		return t.Text
	}
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"DISTINCT": true, "ALL": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "IN": true, "EXISTS": true, "BETWEEN": true, "IS": true,
	"NULL": true, "TRUE": true, "FALSE": true, "LIKE": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"OUTER": true, "ON": true, "CROSS": true,
	"CREATE": true, "TABLE": true, "INDEX": true, "UNIQUE": true,
	"CLUSTERED": true, "VIEW": true, "MATERIALIZED": true, "PRIMARY": true,
	"KEY": true, "INTEGER": true, "INT": true, "FLOAT": true, "DOUBLE": true,
	"VARCHAR": true, "TEXT": true, "BOOLEAN": true, "BOOL": true,
	"INSERT": true, "INTO": true, "VALUES": true, "ANALYZE": true,
	"EXPLAIN": true, "UNION": true, "CUBE": true, "ROLLUP": true, "COUNT": false, // COUNT parses as ident
}

// Lex tokenizes the input. It returns an error for unterminated strings or
// illegal characters.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	nAnon := 0 // `?` placeholders seen so far; each takes the next ordinal
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-': // line comment
			for i < n && input[i] != '\n' {
				i++
			}
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(input[i])) {
				i++
			}
			word := input[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, Token{TokKeyword, up, start})
			} else {
				toks = append(toks, Token{TokIdent, word, start})
			}
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			start := i
			seenDot := false
			for i < n {
				d := input[i]
				if d >= '0' && d <= '9' {
					i++
				} else if d == '.' && !seenDot {
					seenDot = true
					i++
				} else {
					break
				}
			}
			toks = append(toks, Token{TokNumber, input[start:i], start})
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			toks = append(toks, Token{TokString, sb.String(), start})
		default:
			start := i
			switch c {
			case '<':
				if i+1 < n && (input[i+1] == '=' || input[i+1] == '>') {
					toks = append(toks, Token{TokSymbol, input[i : i+2], start})
					i += 2
				} else {
					toks = append(toks, Token{TokSymbol, "<", start})
					i++
				}
			case '>':
				if i+1 < n && input[i+1] == '=' {
					toks = append(toks, Token{TokSymbol, ">=", start})
					i += 2
				} else {
					toks = append(toks, Token{TokSymbol, ">", start})
					i++
				}
			case '!':
				if i+1 < n && input[i+1] == '=' {
					toks = append(toks, Token{TokSymbol, "!=", start})
					i += 2
				} else {
					return nil, fmt.Errorf("sql: unexpected '!' at offset %d", start)
				}
			case '?':
				nAnon++
				toks = append(toks, Token{TokParam, strconv.Itoa(nAnon), start})
				i++
			case '$':
				i++
				ds := i
				for i < n && input[i] >= '0' && input[i] <= '9' {
					i++
				}
				if ds == i {
					return nil, fmt.Errorf("sql: expected digits after '$' at offset %d", start)
				}
				ord, err := strconv.Atoi(input[ds:i])
				if err != nil || ord < 1 {
					return nil, fmt.Errorf("sql: invalid parameter ordinal %q at offset %d", input[start:i], start)
				}
				toks = append(toks, Token{TokParam, strconv.Itoa(ord), start})
			case '=', '+', '-', '*', '/', '%', '(', ')', ',', '.', ';':
				toks = append(toks, Token{TokSymbol, string(c), start})
				i++
			default:
				return nil, fmt.Errorf("sql: illegal character %q at offset %d", c, start)
			}
		}
	}
	toks = append(toks, Token{TokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }
