package sql

import "testing"

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasic(t *testing.T) {
	toks, err := Lex("SELECT a.b, 'it''s', 3.14, 42 FROM t WHERE x <= 5 AND y <> 'z'")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a", ".", "b", ",", "it's", ",", "3.14", ",", "42",
		"FROM", "t", "WHERE", "x", "<=", "5", "AND", "y", "<>", "z", ""}
	if len(texts) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(texts), texts, len(want))
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexKeywordCaseInsensitive(t *testing.T) {
	toks, err := Lex("select From wHeRe")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks[:3] {
		if tok.Kind != TokKeyword {
			t.Errorf("%q should be a keyword", tok.Text)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks, err := Lex("SELECT 1 -- trailing comment\n, 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 5 { // SELECT 1 , 2 EOF
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex("= <> != < <= > >= + - * / % ( ) . ;")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks[:len(toks)-1] {
		if tok.Kind != TokSymbol {
			t.Errorf("%q should be a symbol", tok.Text)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'oops"); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex("a ! b"); err == nil {
		t.Error("lone ! should fail")
	}
	if _, err := Lex("a # b"); err == nil {
		t.Error("illegal char should fail")
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("1 2.5 .5 100")
	if err != nil {
		t.Fatal(err)
	}
	wantTexts := []string{"1", "2.5", ".5", "100"}
	for i, w := range wantTexts {
		if toks[i].Kind != TokNumber || toks[i].Text != w {
			t.Errorf("token %d = %v, want number %q", i, toks[i], w)
		}
	}
}

func TestTokenString(t *testing.T) {
	if (Token{TokEOF, "", 0}).String() != "end of input" {
		t.Error("EOF token string")
	}
	if (Token{TokString, "x", 0}).String() != "'x'" {
		t.Error("string token string")
	}
}
