package sql

import (
	"strconv"
	"strings"
)

// Normalize returns the canonical statement text used to key the prepared-
// statement plan cache, plus the number of parameters the statement takes
// (the highest ordinal referenced). Two statements normalize identically
// exactly when they are the same token sequence modulo whitespace, comments,
// keyword/identifier case and placeholder style: tokens are joined with
// single spaces, keywords arrive upper-cased from the lexer, identifiers are
// lower-cased (resolution is case-insensitive), and every placeholder is
// rendered positionally as `$n`, so `select * from T where a=?` and
// `SELECT * FROM t WHERE a = $1` share a cache entry.
func Normalize(input string) (string, int, error) {
	toks, err := Lex(input)
	if err != nil {
		return "", 0, err
	}
	var sb strings.Builder
	nParams := 0
	for _, t := range toks {
		if t.Kind == TokEOF {
			break
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		switch t.Kind {
		case TokIdent:
			sb.WriteString(strings.ToLower(t.Text))
		case TokString:
			sb.WriteByte('\'')
			sb.WriteString(strings.ReplaceAll(t.Text, "'", "''"))
			sb.WriteByte('\'')
		case TokParam:
			ord, err := strconv.Atoi(t.Text)
			if err != nil || ord < 1 {
				return "", 0, err
			}
			if ord > nParams {
				nParams = ord
			}
			sb.WriteByte('$')
			sb.WriteString(t.Text)
		default:
			sb.WriteString(t.Text)
		}
	}
	// Statements normalize without a trailing ';' so `X` and `X;` coincide.
	out := strings.TrimSuffix(sb.String(), " ;")
	return out, nParams, nil
}

// Fingerprint returns the statement-family key the adaptive replan trigger
// uses: like Normalize, but string/number literals AND parameter
// placeholders all render as `?`, so an analyzed literal statement
// (`... WHERE a = 5`), its siblings at other constants, and the prepared
// form (`... WHERE a = $1`) share one key. Leading EXPLAIN [ANALYZE]
// keywords are dropped so `EXPLAIN ANALYZE SELECT ...` keys with the SELECT
// it executes.
func Fingerprint(input string) (string, error) {
	toks, err := Lex(input)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	for _, t := range toks {
		if t.Kind == TokEOF {
			break
		}
		if sb.Len() == 0 {
			up := strings.ToUpper(t.Text)
			if up == "EXPLAIN" || up == "ANALYZE" {
				continue
			}
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		switch t.Kind {
		case TokIdent:
			sb.WriteString(strings.ToLower(t.Text))
		case TokString, TokNumber, TokParam:
			sb.WriteByte('?')
		default:
			sb.WriteString(t.Text)
		}
	}
	return strings.TrimSuffix(sb.String(), " ;"), nil
}
