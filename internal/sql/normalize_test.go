package sql

import (
	"strings"
	"testing"
)

func TestLexParams(t *testing.T) {
	toks, err := Lex("a = ? AND b = ? OR c = $5")
	if err != nil {
		t.Fatal(err)
	}
	var params []string
	for _, tok := range toks {
		if tok.Kind == TokParam {
			params = append(params, tok.Text)
		}
	}
	if len(params) != 3 || params[0] != "1" || params[1] != "2" || params[2] != "5" {
		t.Fatalf("params = %v, want [1 2 5]", params)
	}
	if _, err := Lex("a = $"); err == nil {
		t.Fatal("expected error for bare '$'")
	}
}

func TestParseParam(t *testing.T) {
	stmt, err := Parse("SELECT a FROM t WHERE a = ? AND b > $2")
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	var ords []int
	var walk func(e Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Param:
			ords = append(ords, x.Ord)
		case *BinExpr:
			walk(x.L)
			walk(x.R)
		}
	}
	walk(sel.Where)
	if len(ords) != 2 || ords[0] != 1 || ords[1] != 2 {
		t.Fatalf("ordinals = %v, want [1 2]", ords)
	}
}

func TestNormalize(t *testing.T) {
	a, n, err := Normalize("select  name from EMP where sal > ? and did = ?;")
	if err != nil {
		t.Fatal(err)
	}
	b, n2, err := Normalize("SELECT name\nFROM emp -- comment\nWHERE sal > $1 AND did = $2")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("normalized forms differ:\n  %q\n  %q", a, b)
	}
	if n != 2 || n2 != 2 {
		t.Fatalf("param counts = %d, %d, want 2", n, n2)
	}
	// Different literals must NOT collide.
	c, _, _ := Normalize("SELECT name FROM emp WHERE sal > 10")
	d, _, _ := Normalize("SELECT name FROM emp WHERE sal > 20")
	if c == d {
		t.Fatal("distinct literals normalized identically")
	}
	// String literals keep their content (with escaping).
	s, _, err := Normalize("SELECT * FROM t WHERE s = 'o''brien'")
	if err != nil {
		t.Fatal(err)
	}
	if want := "SELECT * FROM t WHERE s = 'o''brien'"; s != want {
		t.Fatalf("normalized = %q, want %q", s, want)
	}
}

// Fingerprint collapses a statement to its family: literals and parameters
// both become '?', identifiers fold case, and EXPLAIN/ANALYZE prefixes are
// dropped so an analyzed run keys the same family as its plain executions.
func TestFingerprint(t *testing.T) {
	a, err := Fingerprint("select  name from EMP where sal > 10;")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fingerprint("SELECT name FROM emp WHERE sal > 9999")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Fingerprint("EXPLAIN ANALYZE SELECT name FROM emp WHERE sal > ?")
	if err != nil {
		t.Fatal(err)
	}
	if a != b || b != c {
		t.Fatalf("same statement family fingerprints differ:\n  %q\n  %q\n  %q", a, b, c)
	}
	// Different shapes stay distinct.
	d, _ := Fingerprint("SELECT name FROM emp WHERE sal < 10")
	if a == d {
		t.Fatal("distinct predicates fingerprinted identically")
	}
	// ANALYZE only skips as a statement prefix, not mid-statement.
	e, err := Fingerprint("SELECT analyze FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.ToUpper(e), "ANALYZE") {
		t.Fatalf("mid-statement ANALYZE token dropped: %q", e)
	}
}
