package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/datum"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks []Token
	pos  int
	src  string
}

// Parse parses a single SQL statement (an optional trailing ';' is allowed).
func Parse(input string) (Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: input}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// ParseSelect parses a SELECT statement, used for view definitions.
func ParseSelect(input string) (*SelectStmt, error) {
	stmt, err := Parse(input)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("sql: expected a SELECT statement")
	}
	return sel, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }

// peekAt looks n tokens past the cursor without consuming (EOF-saturating).
func (p *Parser) peekAt(n int) Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+n]
}
func (p *Parser) next() Token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parser) atEOF() bool   { return p.peek().Kind == TokEOF }
func (p *Parser) save() int     { return p.pos }
func (p *Parser) restore(s int) { p.pos = s }

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().Pos)
}

func (p *Parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *Parser) acceptSymbol(s string) bool {
	if t := p.peek(); t.Kind == TokSymbol && t.Text == s {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectSymbol(s string) error {
	if !p.acceptSymbol(s) {
		return p.errorf("expected %q, found %s", s, p.peek())
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	if t := p.peek(); t.Kind == TokIdent {
		p.pos++
		return t.Text, nil
	}
	return "", p.errorf("expected identifier, found %s", p.peek())
}

func (p *Parser) parseStatement() (Statement, error) {
	switch t := p.peek(); {
	case t.Kind == TokKeyword && t.Text == "SELECT":
		return p.parseSelect()
	case t.Kind == TokKeyword && t.Text == "CREATE":
		return p.parseCreate()
	case t.Kind == TokKeyword && t.Text == "INSERT":
		return p.parseInsert()
	case t.Kind == TokKeyword && t.Text == "ANALYZE":
		p.next()
		name := ""
		if p.peek().Kind == TokIdent {
			name = p.next().Text
		}
		return &AnalyzeStmt{Table: name}, nil
	case t.Kind == TokKeyword && t.Text == "EXPLAIN":
		p.next()
		// EXPLAIN ANALYZE <query> executes the query and annotates the plan
		// with runtime metrics. ANALYZE doubles as the statistics statement,
		// so only treat it as the EXPLAIN modifier when a query follows —
		// "EXPLAIN ANALYZE emp" still explains the stats command on emp.
		analyze := false
		if nt := p.peek(); nt.Kind == TokKeyword && nt.Text == "ANALYZE" {
			if ft := p.peekAt(1); ft.Kind == TokKeyword && ft.Text == "SELECT" {
				analyze = true
				p.next()
			}
		}
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Stmt: inner, Analyze: analyze}, nil
	default:
		return nil, p.errorf("expected a statement, found %s", t)
	}
}

// --- SELECT ---

// parseSelect parses a full query expression: one or more UNION-combined
// select cores followed by ORDER BY / LIMIT for the whole result.
func (p *Parser) parseSelect() (*SelectStmt, error) {
	sel, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("UNION") {
		all := p.acceptKeyword("ALL")
		arm, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		sel.Union = append(sel.Union, UnionArm{All: all, Stmt: arm})
	}
	if err := p.parseSelectSuffix(sel); err != nil {
		return nil, err
	}
	return sel, nil
}

// parseSelectCore parses SELECT ... [FROM/WHERE/GROUP BY/HAVING] without the
// trailing ORDER BY/LIMIT (which bind to the whole union).
func (p *Parser) parseSelectCore() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Select = append(sel.Select, item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		for {
			te, err := p.parseTableExpr()
			if err != nil {
				return nil, err
			}
			sel.From = append(sel.From, te)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		// CUBE (...) / ROLLUP (...) — the §7.4 decision-support extensions.
		parenList := false
		switch {
		case p.acceptKeyword("CUBE"):
			sel.Grouping = GroupCube
			parenList = true
		case p.acceptKeyword("ROLLUP"):
			sel.Grouping = GroupRollup
			parenList = true
		}
		if parenList {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if parenList {
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	return sel, nil
}

// parseSelectSuffix parses ORDER BY / LIMIT onto sel.
func (p *Parser) parseSelectSuffix(sel *SelectStmt) error {
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		t := p.peek()
		if t.Kind != TokNumber {
			return p.errorf("expected number after LIMIT, found %s", t)
		}
		p.next()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil || n < 0 {
			return p.errorf("invalid LIMIT %q", t.Text)
		}
		sel.Limit = &n
	}
	return nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.acceptSymbol("*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form
	if t := p.peek(); t.Kind == TokIdent {
		s := p.save()
		name := p.next().Text
		if p.acceptSymbol(".") && p.acceptSymbol("*") {
			return SelectItem{TableStar: name}, nil
		}
		p.restore(s)
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias
	} else if t := p.peek(); t.Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

// --- FROM clause ---

func (p *Parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parsePrimaryTable()
	if err != nil {
		return nil, err
	}
	for {
		kind, ok := p.acceptJoinKeyword()
		if !ok {
			return left, nil
		}
		right, err := p.parsePrimaryTable()
		if err != nil {
			return nil, err
		}
		var on Expr
		if kind != JoinCross {
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		left = &JoinExpr{Kind: kind, Left: left, Right: right, On: on}
	}
}

func (p *Parser) acceptJoinKeyword() (JoinKind, bool) {
	switch {
	case p.acceptKeyword("JOIN"):
		return JoinInner, true
	case p.acceptKeyword("INNER"):
		p.acceptKeyword("JOIN")
		return JoinInner, true
	case p.acceptKeyword("CROSS"):
		p.acceptKeyword("JOIN")
		return JoinCross, true
	case p.acceptKeyword("LEFT"):
		p.acceptKeyword("OUTER")
		p.acceptKeyword("JOIN")
		return JoinLeftOuter, true
	case p.acceptKeyword("RIGHT"):
		p.acceptKeyword("OUTER")
		p.acceptKeyword("JOIN")
		return JoinRightOuter, true
	case p.acceptKeyword("FULL"):
		p.acceptKeyword("OUTER")
		p.acceptKeyword("JOIN")
		return JoinFullOuter, true
	}
	return 0, false
}

func (p *Parser) parsePrimaryTable() (TableExpr, error) {
	if p.acceptSymbol("(") {
		if t := p.peek(); t.Kind == TokKeyword && t.Text == "SELECT" {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			p.acceptKeyword("AS")
			alias, err := p.expectIdent()
			if err != nil {
				return nil, fmt.Errorf("sql: derived table requires an alias: %w", err)
			}
			return &SubqueryTable{Select: sub, Alias: alias}, nil
		}
		// Parenthesized join expression.
		te, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return te, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	tn := &TableName{Name: name}
	if p.acceptKeyword("AS") {
		tn.Alias, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	} else if t := p.peek(); t.Kind == TokIdent {
		tn.Alias = p.next().Text
	}
	return tn, nil
}

// --- Expressions (precedence climbing) ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parsePredicate()
}

// parsePredicate parses comparisons, IN, BETWEEN, IS NULL, LIKE over additive
// expressions.
func (p *Parser) parsePredicate() (Expr, error) {
	// EXISTS (subquery)
	if p.acceptKeyword("EXISTS") {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Sub: sub}, nil
	}
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	negated := false
	if t := p.peek(); t.Kind == TokKeyword && t.Text == "NOT" {
		// lookahead for NOT IN / NOT BETWEEN / NOT LIKE
		s := p.save()
		p.next()
		if tt := p.peek(); tt.Kind == TokKeyword && (tt.Text == "IN" || tt.Text == "BETWEEN" || tt.Text == "LIKE") {
			negated = true
		} else {
			p.restore(s)
		}
	}
	switch t := p.peek(); {
	case t.Kind == TokSymbol && isCmpSymbol(t.Text):
		p.next()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinExpr{Op: cmpOp(t.Text), L: l, R: r}, nil
	case t.Kind == TokKeyword && t.Text == "IN":
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		if tt := p.peek(); tt.Kind == TokKeyword && tt.Text == "SELECT" {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &InExpr{E: l, Sub: sub, Negated: negated}, nil
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return &InExpr{E: l, List: list, Negated: negated}, nil
	case t.Kind == TokKeyword && t.Text == "BETWEEN":
		p.next()
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Negated: negated}, nil
	case t.Kind == TokKeyword && t.Text == "LIKE":
		p.next()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		e := Expr(&BinExpr{Op: OpLike, L: l, R: r})
		if negated {
			e = &NotExpr{E: e}
		}
		return e, nil
	case t.Kind == TokKeyword && t.Text == "IS":
		p.next()
		neg := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{E: l, Negated: neg}, nil
	}
	return l, nil
}

func isCmpSymbol(s string) bool {
	switch s {
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func cmpOp(s string) BinOp {
	switch s {
	case "=":
		return OpEq
	case "<>", "!=":
		return OpNe
	case "<":
		return OpLt
	case "<=":
		return OpLe
	case ">":
		return OpGt
	case ">=":
		return OpGe
	}
	panic("not a comparison: " + s)
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: OpAdd, L: l, R: r}
		case p.acceptSymbol("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: OpMul, L: l, R: r}
		case p.acceptSymbol("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: OpDiv, L: l, R: r}
		case p.acceptSymbol("%"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &BinExpr{Op: OpMod, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptSymbol("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Lit); ok && lit.Val.Kind().Numeric() {
			// Fold negation into the literal.
			if lit.Val.Kind() == datum.KindInt {
				return &Lit{Val: datum.NewInt(-lit.Val.Int())}, nil
			}
			return &Lit{Val: datum.NewFloat(-lit.Val.Float())}, nil
		}
		return &NegExpr{E: e}, nil
	}
	p.acceptSymbol("+")
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("invalid number %q", t.Text)
			}
			return &Lit{Val: datum.NewFloat(f)}, nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("invalid number %q", t.Text)
		}
		return &Lit{Val: datum.NewInt(n)}, nil
	case t.Kind == TokString:
		p.next()
		return &Lit{Val: datum.NewString(t.Text)}, nil
	case t.Kind == TokParam:
		p.next()
		ord, err := strconv.Atoi(t.Text)
		if err != nil || ord < 1 {
			return nil, p.errorf("invalid parameter %s", t)
		}
		return &Param{Ord: ord}, nil
	case t.Kind == TokKeyword && t.Text == "NULL":
		p.next()
		return &Lit{Val: datum.Null}, nil
	case t.Kind == TokKeyword && t.Text == "TRUE":
		p.next()
		return &Lit{Val: datum.NewBool(true)}, nil
	case t.Kind == TokKeyword && t.Text == "FALSE":
		p.next()
		return &Lit{Val: datum.NewBool(false)}, nil
	case t.Kind == TokSymbol && t.Text == "(":
		p.next()
		if tt := p.peek(); tt.Kind == TokKeyword && tt.Text == "SELECT" {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Sub: sub}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		p.next()
		name := t.Text
		// Function call?
		if p.acceptSymbol("(") {
			fc := &FuncCall{Name: strings.ToUpper(name)}
			if p.acceptSymbol("*") {
				fc.Star = true
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			if p.acceptKeyword("DISTINCT") {
				fc.Distinct = true
			}
			if !p.acceptSymbol(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					if !p.acceptSymbol(",") {
						break
					}
				}
				if err := p.expectSymbol(")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		// Qualified column?
		if p.acceptSymbol(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Name: col}, nil
		}
		return &ColRef{Name: name}, nil
	}
	return nil, p.errorf("expected an expression, found %s", t)
}

// --- DDL / DML ---

func (p *Parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	unique := p.acceptKeyword("UNIQUE")
	clustered := p.acceptKeyword("CLUSTERED")
	switch {
	case p.acceptKeyword("TABLE"):
		if unique || clustered {
			return nil, p.errorf("UNIQUE/CLUSTERED apply to indexes, not tables")
		}
		return p.parseCreateTable()
	case p.acceptKeyword("INDEX"):
		return p.parseCreateIndex(unique, clustered)
	case p.acceptKeyword("MATERIALIZED"):
		if err := p.expectKeyword("VIEW"); err != nil {
			return nil, err
		}
		return p.parseCreateView(true)
	case p.acceptKeyword("VIEW"):
		if unique || clustered {
			return nil, p.errorf("UNIQUE/CLUSTERED apply to indexes, not views")
		}
		return p.parseCreateView(false)
	}
	return nil, p.errorf("expected TABLE, INDEX or VIEW after CREATE")
}

func (p *Parser) parseCreateTable() (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	stmt := &CreateTableStmt{Name: name}
	for {
		if p.acceptKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			for {
				c, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				stmt.PrimaryKey = append(stmt.PrimaryKey, c)
				if !p.acceptSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		} else {
			colName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			kind, err := p.parseTypeName()
			if err != nil {
				return nil, err
			}
			cd := ColDef{Name: colName, Kind: kind}
			if p.acceptKeyword("NOT") {
				if err := p.expectKeyword("NULL"); err != nil {
					return nil, err
				}
				cd.NotNull = true
			}
			stmt.Cols = append(stmt.Cols, cd)
		}
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *Parser) parseTypeName() (datum.Kind, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return 0, p.errorf("expected a type name, found %s", t)
	}
	p.next()
	switch t.Text {
	case "INT", "INTEGER":
		return datum.KindInt, nil
	case "FLOAT", "DOUBLE":
		return datum.KindFloat, nil
	case "VARCHAR", "TEXT":
		// Optional length: VARCHAR(30)
		if p.acceptSymbol("(") {
			if p.peek().Kind != TokNumber {
				return 0, p.errorf("expected length in VARCHAR(n)")
			}
			p.next()
			if err := p.expectSymbol(")"); err != nil {
				return 0, err
			}
		}
		return datum.KindString, nil
	case "BOOL", "BOOLEAN":
		return datum.KindBool, nil
	}
	return 0, p.errorf("unknown type %s", t.Text)
}

func (p *Parser) parseCreateIndex(unique, clustered bool) (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	stmt := &CreateIndexStmt{Name: name, Table: table, Unique: unique, Clustered: clustered}
	for {
		c, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		stmt.Cols = append(stmt.Cols, c)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return stmt, nil
}

func (p *Parser) parseCreateView(materialized bool) (Statement, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	start := p.peek().Pos
	sel, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	end := p.peek().Pos
	return &CreateViewStmt{
		Name:         name,
		Materialized: materialized,
		Select:       sel,
		SQL:          strings.TrimSpace(p.src[start:min(end, len(p.src))]),
	}, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: table}
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if !p.acceptSymbol(",") {
			break
		}
	}
	return stmt, nil
}
